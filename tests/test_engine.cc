// Copyright 2026 The OCTOPUS Reproduction Authors
// Tests for the batched query engine: for every SpatialIndex
// implementation, batched execution (sequential default or OCTOPUS's
// parallel path, at 1 and 4 threads) must return exactly the same
// per-query result sets as the per-query RangeQuery path on a deformed
// mesh; OCTOPUS's merged stats counters must be independent of the
// thread count; PhaseStats merge/reset must be exact; and the thread
// pool must run every shard exactly once, every time.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "engine/thread_pool.h"
#include "index/adaptive_hash.h"
#include "index/linear_scan.h"
#include "index/lur_tree.h"
#include "index/octree.h"
#include "index/qu_trade.h"
#include "mesh/generators/grid_generator.h"
#include "mesh/generators/hexa_generator.h"
#include "mesh/hilbert_layout.h"
#include "mesh/mesh_io.h"
#include "octopus/hex_octopus.h"
#include "octopus/paged_executor.h"
#include "octopus/octopus_con.h"
#include "octopus/phase_stats.h"
#include "octopus/planner.h"
#include "octopus/query_executor.h"
#include "sim/random_deformer.h"
#include "sim/workload.h"
#include "test_util.h"

namespace octopus {
namespace {

using testing::BruteForceRangeQuery;
using testing::Sorted;

TetraMesh MakeBox(int n) {
  return GenerateBoxMesh(n, n, n, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
      .MoveValue();
}

// A deformed mesh plus an index that replayed the deformation through its
// maintenance path, as the harness protocol does.
struct DeformedSetup {
  TetraMesh mesh;
  std::vector<AABB> queries;
};

DeformedSetup MakeDeformedSetup(SpatialIndex* index, int steps = 4) {
  DeformedSetup setup{MakeBox(8), {}};
  index->Build(setup.mesh);
  RandomDeformer deformer(0.02f, /*seed=*/7);
  deformer.Bind(setup.mesh);
  for (int step = 1; step <= steps; ++step) {
    deformer.ApplyStep(step, &setup.mesh);
    index->BeforeQueries(setup.mesh);
  }
  QueryGenerator gen(setup.mesh);
  Rng rng(11);
  setup.queries = gen.MakeQueries(&rng, 30, 0.001, 0.03);
  // A query that misses the mesh entirely (empty result path).
  setup.queries.push_back(AABB(Vec3(5, 5, 5), Vec3(6, 6, 6)));
  return setup;
}

std::vector<std::unique_ptr<SpatialIndex>> AllIndexes() {
  std::vector<std::unique_ptr<SpatialIndex>> v;
  v.push_back(std::make_unique<Octopus>());
  v.push_back(std::make_unique<Octopus>(OctopusOptions{
      .visited_mode = VisitedMode::kHashSet}));
  v.push_back(std::make_unique<LinearScan>());
  v.push_back(std::make_unique<ThrowawayOctree>());
  v.push_back(std::make_unique<LURTree>());
  v.push_back(std::make_unique<QUTrade>());
  v.push_back(std::make_unique<AdaptiveHashIndex>());
  v.push_back(std::make_unique<OctopusCon>());
  return v;
}

TEST(QueryEngineTest, BatchParityAcrossAllIndexesAndThreadCounts) {
  for (auto& index : AllIndexes()) {
    SCOPED_TRACE(index->Name());
    const DeformedSetup setup = MakeDeformedSetup(index.get());

    // Ground truth: the per-query sequential path.
    std::vector<std::vector<VertexId>> expected;
    for (const AABB& q : setup.queries) {
      std::vector<VertexId> out;
      index->RangeQuery(setup.mesh, q, &out);
      expected.push_back(Sorted(out));
    }

    for (const int threads : {1, 4}) {
      SCOPED_TRACE(threads);
      engine::QueryEngine eng(
          engine::QueryEngineOptions{.threads = threads});
      engine::QueryBatchResult results;
      eng.Execute(*index, setup.mesh, setup.queries, &results);
      ASSERT_EQ(results.size(), setup.queries.size());
      for (size_t q = 0; q < expected.size(); ++q) {
        EXPECT_EQ(Sorted(results.per_query[q]), expected[q])
            << "query " << q;
      }
    }
  }
}

TEST(QueryEngineTest, MoreThreadsThanQueries) {
  // Regression: a pool wider than the batch must leave the excess
  // threads idle, not index past the per-shard contexts.
  Octopus octopus;
  const DeformedSetup setup = MakeDeformedSetup(&octopus);
  engine::QueryEngine eng(engine::QueryEngineOptions{.threads = 16});
  engine::QueryBatchResult results;
  std::vector<AABB> two(setup.queries.begin(), setup.queries.begin() + 2);
  eng.Execute(octopus, setup.mesh, two, &results);
  ASSERT_EQ(results.size(), 2u);
  for (size_t q = 0; q < two.size(); ++q) {
    EXPECT_EQ(Sorted(results.per_query[q]),
              BruteForceRangeQuery(setup.mesh, two[q]));
  }

  // Empty batch through a wide pool.
  eng.Execute(octopus, setup.mesh, std::vector<AABB>{}, &results);
  EXPECT_EQ(results.size(), 0u);
}

TEST(QueryEngineTest, BatchSizeEdgeCases) {
  // Empty batch, single-query batch, and a batch larger than the shard
  // count must all behave identically at 1 and 4 threads: the exact
  // per-query-path results, correctly sized result vectors, and stats
  // that account for exactly the executed queries. (Parity against the
  // per-query path, not brute force: on a deformed mesh a box can
  // contain mesh-disconnected vertex clusters, which the paper's crawl
  // by design reports per reachable component — exactness on connected
  // regions is covered by BatchMatchesBruteForceOnDeformedMesh.)
  Octopus octopus;
  const DeformedSetup setup = MakeDeformedSetup(&octopus);
  QueryGenerator gen(setup.mesh);
  Rng rng(33);

  auto expected_for = [&](const std::vector<AABB>& queries) {
    std::vector<std::vector<VertexId>> expected;
    for (const AABB& q : queries) {
      std::vector<VertexId> out;
      octopus.RangeQuery(setup.mesh, q, &out);
      expected.push_back(Sorted(out));
    }
    return expected;
  };

  const std::vector<AABB> one = gen.MakeQueries(&rng, 1, 0.01, 0.01);
  std::vector<AABB> nine = gen.MakeQueries(&rng, 8, 0.001, 0.02);
  nine.push_back(AABB(Vec3(5, 5, 5), Vec3(6, 6, 6)));  // miss
  const auto expected_one = expected_for(one);
  const auto expected_nine = expected_for(nine);

  for (const int threads : {1, 4}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    engine::QueryEngine eng(engine::QueryEngineOptions{.threads = threads});
    engine::QueryBatchResult results;

    // Empty batch: no results, no queries counted.
    octopus.ResetStats();
    eng.Execute(octopus, setup.mesh, std::vector<AABB>{}, &results);
    EXPECT_EQ(results.size(), 0u);
    EXPECT_EQ(results.TotalResults(), 0u);
    EXPECT_EQ(octopus.stats().queries, 0u);

    // Single-query batch: one shard does all the work, even on a wider
    // pool.
    octopus.ResetStats();
    eng.Execute(octopus, setup.mesh, one, &results);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(Sorted(results.per_query[0]), expected_one[0]);
    EXPECT_EQ(octopus.stats().queries, 1u);

    // Batch larger than the shard count: every shard gets multiple
    // queries and the contiguous split must cover all of them.
    octopus.ResetStats();
    eng.Execute(octopus, setup.mesh, nine, &results);
    ASSERT_EQ(results.size(), nine.size());
    for (size_t q = 0; q < nine.size(); ++q) {
      EXPECT_EQ(Sorted(results.per_query[q]), expected_nine[q])
          << "query " << q;
    }
    EXPECT_EQ(octopus.stats().queries, nine.size());
  }
}

TEST(QueryEngineTest, BatchMatchesBruteForceOnDeformedMesh) {
  Octopus octopus;
  const DeformedSetup setup = MakeDeformedSetup(&octopus);
  engine::QueryEngine eng(engine::QueryEngineOptions{.threads = 4});
  engine::QueryBatchResult results;
  eng.Execute(octopus, setup.mesh, setup.queries, &results);
  for (size_t q = 0; q < setup.queries.size(); ++q) {
    EXPECT_EQ(Sorted(results.per_query[q]),
              BruteForceRangeQuery(setup.mesh, setup.queries[q]))
        << "query " << q;
  }
}

TEST(QueryEngineTest, AdaptiveExecutorRunsThroughEngine) {
  // The planner routes per query; it inherits the sequential batch
  // default and must agree with its own per-query path.
  AdaptiveExecutor adaptive;
  const DeformedSetup setup = MakeDeformedSetup(&adaptive);
  std::vector<std::vector<VertexId>> expected;
  for (const AABB& q : setup.queries) {
    std::vector<VertexId> out;
    adaptive.RangeQuery(setup.mesh, q, &out);
    expected.push_back(Sorted(out));
  }
  engine::QueryEngine eng(engine::QueryEngineOptions{.threads = 4});
  engine::QueryBatchResult results;
  eng.Execute(adaptive, setup.mesh, setup.queries, &results);
  for (size_t q = 0; q < expected.size(); ++q) {
    EXPECT_EQ(Sorted(results.per_query[q]), expected[q]) << "query " << q;
  }
}

TEST(QueryEngineTest, HexOctopusBatchParity) {
  // The hexahedral executor shares the batch core; its batch path must
  // agree with its per-query path at any thread count.
  const HexaMesh mesh =
      GenerateHexBoxMesh(8, 8, 8, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
          .MoveValue();
  HexOctopus octo;
  octo.Build(mesh);

  std::vector<AABB> queries;
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const Vec3 lo = rng.NextPointIn(AABB(Vec3(0, 0, 0), Vec3(0.8f, 0.8f,
                                                             0.8f)));
    queries.push_back(AABB(lo, lo + Vec3(0.2f, 0.2f, 0.2f)));
  }
  queries.push_back(AABB(Vec3(3, 3, 3), Vec3(4, 4, 4)));  // miss

  std::vector<std::vector<VertexId>> expected;
  for (const AABB& q : queries) {
    std::vector<VertexId> out;
    octo.RangeQuery(mesh, q, &out);
    expected.push_back(Sorted(out));
  }

  for (const int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    engine::ThreadPool pool(threads);
    engine::QueryBatchResult results;
    octo.RangeQueryBatch(mesh, queries, &results,
                         threads > 1 ? &pool : nullptr);
    ASSERT_EQ(results.size(), queries.size());
    for (size_t q = 0; q < expected.size(); ++q) {
      EXPECT_EQ(Sorted(results.per_query[q]), expected[q]) << "query " << q;
    }
  }
}

// Out-of-core parity: the paged executor over a snapshot must return
// exactly the in-memory result sets and the identical non-I/O counters,
// for any pool size >= 2 pages and at 1 and 4 threads, in both layouts.
TEST(QueryEngineTest, PagedVsInMemoryParity) {
  const TetraMesh base = MakeBox(8);
  QueryGenerator gen(base);
  Rng rng(21);
  std::vector<AABB> queries = gen.MakeQueries(&rng, 24, 0.001, 0.02);
  queries.push_back(AABB(Vec3(5, 5, 5), Vec3(6, 6, 6)));  // miss

  constexpr size_t kPageBytes = 512;
  for (const auto layout : {storage::SnapshotLayout::kOriginal,
                            storage::SnapshotLayout::kHilbert}) {
    SCOPED_TRACE(storage::LayoutName(layout));
    const std::string path = ::testing::TempDir() + "/engine_parity_" +
                             storage::LayoutName(layout) + ".oct2";
    ASSERT_TRUE(
        SaveSnapshot(base, path,
                     storage::SnapshotOptions{.page_bytes = kPageBytes,
                                              .layout = layout})
            .ok());

    // The in-memory reference runs on the same vertex order the
    // snapshot was written in.
    const TetraMesh reference =
        layout == storage::SnapshotLayout::kHilbert
            ? ApplyPermutation(base, ComputeHilbertOrder(base))
            : base;
    Octopus octopus;
    octopus.Build(reference);
    engine::QueryEngine reference_engine;
    engine::QueryBatchResult expected;
    reference_engine.Execute(octopus, reference, queries, &expected);
    const PhaseStats reference_stats = octopus.stats();

    for (const size_t pool_bytes :
         {2 * kPageBytes, 16 * kPageBytes, size_t{1} << 20}) {
      for (const int threads : {1, 4}) {
        SCOPED_TRACE(std::to_string(pool_bytes) + " pool bytes, " +
                     std::to_string(threads) + " threads");
        PagedOctopus::Options options;
        options.pool.pool_bytes = pool_bytes;
        auto paged = PagedOctopus::Open(path, options);
        ASSERT_TRUE(paged.ok()) << paged.status().ToString();
        engine::QueryEngine eng(
            engine::QueryEngineOptions{.threads = threads});
        engine::QueryBatchResult results;
        eng.Execute(*paged.Value(), queries, &results);
        ASSERT_EQ(results.size(), queries.size());
        for (size_t q = 0; q < queries.size(); ++q) {
          EXPECT_EQ(Sorted(results.per_query[q]),
                    Sorted(expected.per_query[q]))
              << "query " << q;
        }
        // Identical algorithm -> identical non-I/O counters, regardless
        // of pool size or thread count.
        const PhaseStats& stats = paged.Value()->stats();
        EXPECT_EQ(stats.queries, reference_stats.queries);
        EXPECT_EQ(stats.probed_vertices, reference_stats.probed_vertices);
        EXPECT_EQ(stats.walk_invocations,
                  reference_stats.walk_invocations);
        EXPECT_EQ(stats.walk_vertices, reference_stats.walk_vertices);
        EXPECT_EQ(stats.crawl_edges, reference_stats.crawl_edges);
        EXPECT_EQ(stats.result_vertices, reference_stats.result_vertices);
        // The in-memory run does no page I/O; the paged one must.
        EXPECT_EQ(reference_stats.page_io.PageAccesses(), 0u);
        EXPECT_GT(stats.page_io.PageAccesses(), 0u);
      }
    }
    std::remove(path.c_str());
  }
}

TEST(QueryEngineTest, OctopusStatsCountersIndependentOfThreadCount) {
  PhaseStats counts[2];
  const int thread_options[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    Octopus octopus;
    const DeformedSetup setup = MakeDeformedSetup(&octopus);
    engine::QueryEngine eng(
        engine::QueryEngineOptions{.threads = thread_options[i]});
    engine::QueryBatchResult results;
    eng.Execute(octopus, setup.mesh, setup.queries, &results);
    counts[i] = octopus.stats();
  }
  EXPECT_EQ(counts[0].queries, counts[1].queries);
  EXPECT_EQ(counts[0].probed_vertices, counts[1].probed_vertices);
  EXPECT_EQ(counts[0].walk_invocations, counts[1].walk_invocations);
  EXPECT_EQ(counts[0].walk_vertices, counts[1].walk_vertices);
  EXPECT_EQ(counts[0].crawl_edges, counts[1].crawl_edges);
  EXPECT_EQ(counts[0].result_vertices, counts[1].result_vertices);
}

TEST(QueryEngineTest, ResultSlotsAreRecycledAcrossBatches) {
  LinearScan scan;
  const DeformedSetup setup = MakeDeformedSetup(&scan);
  engine::QueryEngine eng;
  engine::QueryBatchResult results;
  eng.Execute(scan, setup.mesh, setup.queries, &results);
  const size_t full = results.TotalResults();
  ASSERT_GT(full, 0u);
  // A smaller second batch must not leak results from the first.
  std::vector<AABB> tiny(setup.queries.begin(), setup.queries.begin() + 2);
  eng.Execute(scan, setup.mesh, tiny, &results);
  ASSERT_EQ(results.size(), 2u);
  std::vector<VertexId> expected;
  scan.RangeQuery(setup.mesh, tiny[0], &expected);
  EXPECT_EQ(Sorted(results.per_query[0]), Sorted(expected));
}

TEST(PhaseStatsTest, MergeSumsEveryCounter) {
  PhaseStats a;
  a.probe_nanos = 1;
  a.walk_nanos = 2;
  a.crawl_nanos = 3;
  a.queries = 4;
  a.probed_vertices = 5;
  a.walk_invocations = 6;
  a.walk_vertices = 7;
  a.crawl_edges = 8;
  a.result_vertices = 9;
  a.page_io.page_hits = 10;
  a.page_io.page_misses = 11;
  a.page_io.page_evictions = 12;
  PhaseStats b = a;
  b.Merge(a);
  EXPECT_EQ(b.probe_nanos, 2);
  EXPECT_EQ(b.walk_nanos, 4);
  EXPECT_EQ(b.crawl_nanos, 6);
  EXPECT_EQ(b.queries, 8u);
  EXPECT_EQ(b.probed_vertices, 10u);
  EXPECT_EQ(b.walk_invocations, 12u);
  EXPECT_EQ(b.walk_vertices, 14u);
  EXPECT_EQ(b.crawl_edges, 16u);
  EXPECT_EQ(b.result_vertices, 18u);
  EXPECT_EQ(b.page_io.page_hits, 20u);
  EXPECT_EQ(b.page_io.page_misses, 22u);
  EXPECT_EQ(b.page_io.page_evictions, 24u);
  EXPECT_EQ(b.page_io.PageAccesses(), 42u);
  EXPECT_EQ(b.TotalNanos(), 12);

  b.Reset();
  EXPECT_EQ(b.queries, 0u);
  EXPECT_EQ(b.TotalNanos(), 0);
  EXPECT_EQ(b.result_vertices, 0u);
  EXPECT_EQ(b.page_io.PageAccesses(), 0u);
  EXPECT_EQ(b.page_io.page_evictions, 0u);
}

TEST(ThreadPoolTest, RunsEveryShardExactlyOnceEveryTime) {
  engine::ThreadPool pool(4);
  ASSERT_EQ(pool.threads(), 4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> hits[4] = {0, 0, 0, 0};
    pool.Run([&](int shard) { ++hits[shard]; });
    for (int shard = 0; shard < 4; ++shard) {
      EXPECT_EQ(hits[shard].load(), 1) << "round " << round;
    }
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  engine::ThreadPool pool(1);
  ASSERT_EQ(pool.threads(), 1);
  int hits = 0;
  pool.Run([&](int shard) {
    EXPECT_EQ(shard, 0);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace octopus
