// Copyright 2026 The OCTOPUS Reproduction Authors
// Unit tests for the voxel-mask generator, implicit shapes and the dataset
// catalog.
#include <gtest/gtest.h>

#include <queue>

#include "mesh/generators/datasets.h"
#include "mesh/generators/grid_generator.h"
#include "mesh/generators/shapes.h"
#include "mesh/mesh_stats.h"

namespace octopus {
namespace {

// Number of connected components of the mesh graph.
size_t CountComponents(const TetraMesh& mesh) {
  std::vector<bool> seen(mesh.num_vertices(), false);
  size_t components = 0;
  for (VertexId start = 0; start < mesh.num_vertices(); ++start) {
    if (seen[start]) continue;
    ++components;
    std::queue<VertexId> q;
    q.push(start);
    seen[start] = true;
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      for (VertexId n : mesh.neighbors(v)) {
        if (!seen[n]) {
          seen[n] = true;
          q.push(n);
        }
      }
    }
  }
  return components;
}

TEST(GridGeneratorTest, BoxMeshCounts) {
  auto r = GenerateBoxMesh(4, 3, 2, AABB(Vec3(0, 0, 0), Vec3(4, 3, 2)));
  ASSERT_TRUE(r.ok());
  const TetraMesh& mesh = r.Value();
  EXPECT_EQ(mesh.num_vertices(), 5u * 4u * 3u);
  EXPECT_EQ(mesh.num_tetrahedra(), 6u * 4u * 3u * 2u);
}

TEST(GridGeneratorTest, BoxMeshIsConnected) {
  auto r = GenerateBoxMesh(3, 3, 3, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(CountComponents(r.Value()), 1u);
}

TEST(GridGeneratorTest, InteriorDegreeIsFourteen) {
  // The Kuhn subdivision gives interior lattice vertices exactly 14
  // neighbors — the mesh degree the paper reports for tetrahedral meshes.
  auto r = GenerateBoxMesh(6, 6, 6, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)));
  ASSERT_TRUE(r.ok());
  const TetraMesh& mesh = r.Value();
  const AABB interior(Vec3(0.3f, 0.3f, 0.3f), Vec3(0.7f, 0.7f, 0.7f));
  size_t checked = 0;
  for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
    if (interior.Contains(mesh.position(v))) {
      EXPECT_EQ(mesh.degree(v), 14u) << "vertex " << v;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(GridGeneratorTest, RejectsBadArguments) {
  EXPECT_FALSE(
      GenerateBoxMesh(0, 1, 1, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))).ok());
  EXPECT_FALSE(GenerateBoxMesh(2, 2, 2, AABB()).ok());
  EXPECT_FALSE(GenerateMaskedGrid(2, 2, 2, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)),
                                  [](int, int, int) { return false; })
                   .ok());
}

TEST(GridGeneratorTest, MaskSelectsSubsetOfCells) {
  // Only the k == 0 layer: a 4x4x1 slab.
  auto r = GenerateMaskedGrid(4, 4, 4, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)),
                              [](int, int, int k) { return k == 0; });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.Value().num_tetrahedra(), 6u * 16u);
  EXPECT_EQ(r.Value().num_vertices(), 5u * 5u * 2u);
}

TEST(GridGeneratorTest, DisjointMaskYieldsTwoComponents) {
  // Two separated slabs -> two connected components (the non-convex case
  // of paper Fig. 3).
  auto r = GenerateMaskedGrid(4, 4, 5, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)),
                              [](int, int, int k) {
                                return k == 0 || k == 4;
                              });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(CountComponents(r.Value()), 2u);
}

TEST(ShapesTest, SegmentDistance) {
  const Vec3 a(0, 0, 0);
  const Vec3 b(2, 0, 0);
  EXPECT_FLOAT_EQ(SquaredDistanceToSegment(Vec3(1, 1, 0), a, b), 1.0f);
  EXPECT_FLOAT_EQ(SquaredDistanceToSegment(Vec3(-1, 0, 0), a, b), 1.0f);
  EXPECT_FLOAT_EQ(SquaredDistanceToSegment(Vec3(3, 0, 0), a, b), 1.0f);
  EXPECT_FLOAT_EQ(SquaredDistanceToSegment(Vec3(1, 0, 0), a, b), 0.0f);
  // Degenerate segment behaves like a point.
  EXPECT_FLOAT_EQ(SquaredDistanceToSegment(Vec3(0, 3, 0), a, a), 9.0f);
}

TEST(ShapesTest, ImplicitSolidMembership) {
  ImplicitSolid solid;
  solid.AddBall(Vec3(0, 0, 0), 1.0f);
  solid.AddTube(Vec3(2, 0, 0), Vec3(4, 0, 0), 0.5f);
  solid.AddEllipsoid(Vec3(0, 5, 0), Vec3(2, 1, 1));
  EXPECT_TRUE(solid.Contains(Vec3(0.5f, 0, 0)));       // ball
  EXPECT_FALSE(solid.Contains(Vec3(1.4f, 0, 0)));      // gap
  EXPECT_TRUE(solid.Contains(Vec3(3, 0.4f, 0)));       // tube
  EXPECT_FALSE(solid.Contains(Vec3(3, 0.6f, 0)));      // outside tube
  EXPECT_TRUE(solid.Contains(Vec3(1.5f, 5, 0)));       // ellipsoid
  EXPECT_FALSE(solid.Contains(Vec3(0, 6.5f, 0)));      // outside ellipsoid
}

TEST(ShapesTest, NeuronCellIsNonTrivial) {
  ImplicitSolid solid;
  NeuronCellParams params;
  GrowNeuronCell(params, &solid);
  EXPECT_TRUE(solid.Contains(params.soma_center));
  EXPECT_FALSE(solid.Contains(params.soma_center + Vec3(10, 0, 0)));
}

TEST(DatasetsTest, NeuroLevelsGrowInSize) {
  size_t previous = 0;
  for (int level = 0; level < kNumNeuroLevels; ++level) {
    auto r = MakeNeuroMesh(level, /*scale=*/0.02);
    ASSERT_TRUE(r.ok()) << "level " << level;
    const size_t v = r.Value().num_vertices();
    EXPECT_GT(v, previous) << "level " << level;
    previous = v;
  }
}

TEST(DatasetsTest, NeuroSurfaceToVolumeDecreasesWithDetail) {
  // The core scaling property behind Fig. 7(b,d): finer meshes have a
  // smaller surface-to-volume ratio.
  const MeshStats coarse =
      ComputeMeshStats(MakeNeuroMesh(0, 0.05).MoveValue());
  const MeshStats fine =
      ComputeMeshStats(MakeNeuroMesh(4, 0.05).MoveValue());
  EXPECT_LT(fine.surface_to_volume, coarse.surface_to_volume);
}

TEST(DatasetsTest, NeuroMeshHasTwoCells) {
  auto r = MakeNeuroMesh(1, 0.05);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(CountComponents(r.Value()), 2u) << "two neuron cells expected";
}

TEST(DatasetsTest, NeuroRejectsBadLevel) {
  EXPECT_FALSE(MakeNeuroMesh(-1).ok());
  EXPECT_FALSE(MakeNeuroMesh(kNumNeuroLevels).ok());
}

TEST(DatasetsTest, EarthquakeSF1FinerThanSF2) {
  auto sf2 = MakeEarthquakeMesh(EarthquakeResolution::kSF2, 0.1);
  auto sf1 = MakeEarthquakeMesh(EarthquakeResolution::kSF1, 0.1);
  ASSERT_TRUE(sf2.ok());
  ASSERT_TRUE(sf1.ok());
  EXPECT_GT(sf1.Value().num_vertices(), sf2.Value().num_vertices());
  const MeshStats s2 = ComputeMeshStats(sf2.Value());
  const MeshStats s1 = ComputeMeshStats(sf1.Value());
  EXPECT_LT(s1.surface_to_volume, s2.surface_to_volume)
      << "SF1 must have the smaller S:V ratio (paper Fig. 8)";
}

TEST(DatasetsTest, AnimationMeshesOrderedBySurfaceRatio) {
  // Paper Fig. 14 ordering: facial (0.010) < camel (0.019) < horse (0.023).
  const MeshStats horse = ComputeMeshStats(
      MakeAnimationMesh(AnimationDataset::kHorseGallop, 0.08).MoveValue());
  const MeshStats face = ComputeMeshStats(
      MakeAnimationMesh(AnimationDataset::kFacialExpression, 0.08)
          .MoveValue());
  const MeshStats camel = ComputeMeshStats(
      MakeAnimationMesh(AnimationDataset::kCamelCompress, 0.08).MoveValue());
  EXPECT_LT(face.surface_to_volume, camel.surface_to_volume);
  EXPECT_LT(camel.surface_to_volume, horse.surface_to_volume);
}

TEST(DatasetsTest, AnimationMetadata) {
  EXPECT_EQ(AnimationTimeSteps(AnimationDataset::kHorseGallop), 48);
  EXPECT_EQ(AnimationTimeSteps(AnimationDataset::kFacialExpression), 9);
  EXPECT_EQ(AnimationTimeSteps(AnimationDataset::kCamelCompress), 53);
  EXPECT_EQ(AnimationMeshName(AnimationDataset::kHorseGallop),
            "Horse Gallop");
  EXPECT_EQ(NeuroMeshName(2), "neuro-L2");
  EXPECT_EQ(EarthquakeMeshName(EarthquakeResolution::kSF1), "SF1");
}

TEST(DatasetsTest, ScaleChangesResolution) {
  auto small = MakeNeuroMesh(0, 0.01);
  auto larger = MakeNeuroMesh(0, 0.08);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(larger.ok());
  EXPECT_LT(small.Value().num_vertices(), larger.Value().num_vertices());
}

}  // namespace
}  // namespace octopus
