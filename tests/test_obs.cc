// Copyright 2026 The OCTOPUS Reproduction Authors
// Unit tests of the observability layer: latency-histogram edge cases
// (0 ns, u64-max, percentile ordering, saturating sum), the derived
// connections-active gauge, flight-recorder ring semantics (disabled,
// wraparound, oldest-first snapshots), the Prometheus exposition
// writer, the Chrome trace-event rendering (server-only and merged
// client+server), client call-span JSONL round trips, and the lifecycle
// event journal (ring wrap, seq monotonicity, JSONL sink, disabled
// no-op). The live /metrics <-> OCTP STATS parity runs in
// test_server.cc against a real server.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "obs/event_journal.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "server/metrics.h"

namespace octopus {
namespace {

using obs::FlightRecorder;
using obs::MetricsRegistry;
using obs::QueryTraceRecord;
using server::LatencyHistogram;
using server::ServerMetrics;

constexpr uint64_t kU64Max = std::numeric_limits<uint64_t>::max();

TEST(LatencyHistogramTest, ZeroNanosLandsInTheFirstBucket) {
  LatencyHistogram h;
  h.Record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max_nanos(), 0u);
  EXPECT_EQ(h.sum_nanos(), 0u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  // Every percentile of an all-zero population is zero, not garbage.
  EXPECT_EQ(h.PercentileNanos(0.50), 0u);
  EXPECT_EQ(h.PercentileNanos(0.99), 0u);
  EXPECT_EQ(h.PercentileNanos(1.0), 0u);
}

TEST(LatencyHistogramTest, U64MaxLandsInTheTopBucket) {
  LatencyHistogram h;
  h.Record(kU64Max);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max_nanos(), kU64Max);
  // floor(log2(u64-max)) == 63: the top bucket, no out-of-range write.
  EXPECT_EQ(h.bucket_counts().back(), 1u);
  // The bucket upper bound would overflow; percentiles clamp to the
  // observed max instead.
  EXPECT_EQ(h.PercentileNanos(0.99), kU64Max);
}

TEST(LatencyHistogramTest, SumSaturatesInsteadOfWrapping) {
  LatencyHistogram h;
  h.Record(kU64Max);
  EXPECT_EQ(h.sum_nanos(), kU64Max);
  h.Record(1);  // would wrap to 0
  EXPECT_EQ(h.sum_nanos(), kU64Max);
  h.Record(kU64Max);  // and stays pinned
  EXPECT_EQ(h.sum_nanos(), kU64Max);
  EXPECT_EQ(h.count(), 3u);
}

TEST(LatencyHistogramTest, PercentilesAreMonotoneOverMixedSamples) {
  LatencyHistogram h;
  // 0, then a spread over five decades, then the extremes.
  for (uint64_t nanos : {uint64_t{0}, uint64_t{17}, uint64_t{900},
                         uint64_t{35'000}, uint64_t{2'000'000},
                         uint64_t{750'000'000}, kU64Max}) {
    h.Record(nanos);
  }
  const uint64_t p50 = h.PercentileNanos(0.50);
  const uint64_t p95 = h.PercentileNanos(0.95);
  const uint64_t p99 = h.PercentileNanos(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max_nanos());
}

TEST(ServerMetricsTest, ConnectionsActiveSaturatesAtZero) {
  ServerMetrics metrics;
  metrics.connections_accepted = 3;
  metrics.connections_closed = 3;
  EXPECT_EQ(metrics.connections_active(), 0u);
  // A double-close accounting bug must read as 0, not 2^64 - 1.
  metrics.connections_closed = 4;
  EXPECT_EQ(metrics.connections_active(), 0u);
  EXPECT_EQ(metrics.ToWire().connections_active, 0u);
  metrics.connections_accepted = 7;
  EXPECT_EQ(metrics.connections_active(), 3u);
}

QueryTraceRecord MakeRecord(uint32_t queries) {
  QueryTraceRecord rec;
  rec.session_id = 5;
  rec.request_id = 70 + queries;
  rec.queries = queries;
  rec.arrival_nanos = 1'000 * queries;
  rec.total_nanos = 100;
  return rec;
}

TEST(FlightRecorderTest, DisabledRingRecordsNothing) {
  FlightRecorder recorder(0);
  EXPECT_FALSE(recorder.enabled());
  EXPECT_EQ(recorder.Record(MakeRecord(1)), 0u);
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_EQ(recorder.size(), 0u);
  std::vector<QueryTraceRecord> snapshot;
  recorder.Snapshot(&snapshot);
  EXPECT_TRUE(snapshot.empty());
}

TEST(FlightRecorderTest, AssignsMonotone1BasedTraceIds) {
  FlightRecorder recorder(8);
  ASSERT_TRUE(recorder.enabled());
  EXPECT_EQ(recorder.Record(MakeRecord(1)), 1u);
  EXPECT_EQ(recorder.Record(MakeRecord(2)), 2u);
  EXPECT_EQ(recorder.Record(MakeRecord(3)), 3u);
  std::vector<QueryTraceRecord> snapshot;
  recorder.Snapshot(&snapshot);
  ASSERT_EQ(snapshot.size(), 3u);
  // The ring stamps the id into the stored copy.
  EXPECT_EQ(snapshot[0].trace_id, 1u);
  EXPECT_EQ(snapshot[2].trace_id, 3u);
  EXPECT_EQ(snapshot[1].queries, 2u);
}

TEST(FlightRecorderTest, WrapsOverwritingOldestAndSnapshotsInOrder) {
  constexpr size_t kSlots = 4;
  constexpr uint32_t kWrites = 11;  // wraps the ring 2.75 times
  FlightRecorder recorder(kSlots);
  for (uint32_t i = 1; i <= kWrites; ++i) {
    recorder.Record(MakeRecord(i));
  }
  EXPECT_EQ(recorder.total_recorded(), uint64_t{kWrites});
  EXPECT_EQ(recorder.size(), kSlots);
  EXPECT_EQ(recorder.capacity(), kSlots);
  std::vector<QueryTraceRecord> snapshot;
  recorder.Snapshot(&snapshot);
  ASSERT_EQ(snapshot.size(), kSlots);
  // The survivors are exactly the newest kSlots records, oldest first.
  for (size_t i = 0; i < kSlots; ++i) {
    EXPECT_EQ(snapshot[i].trace_id, kWrites - kSlots + 1 + i) << i;
    EXPECT_EQ(snapshot[i].queries, kWrites - kSlots + 1 + i) << i;
  }
}

TEST(MetricsRegistryTest, RendersCountersGaugesAndHelpTypePairs) {
  MetricsRegistry reg;
  reg.AddCounter("octopus_widgets_total", "Widgets made.", 42);
  reg.AddCounterSeconds("octopus_busy_seconds_total", "Busy time.", 1.5);
  reg.AddGauge("octopus_temperature", "Now.", -3.25);
  const std::string& text = reg.ExpositionText();
  EXPECT_NE(text.find("# HELP octopus_widgets_total Widgets made.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE octopus_widgets_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("\noctopus_widgets_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE octopus_busy_seconds_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("\noctopus_busy_seconds_total 1.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE octopus_temperature gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("\noctopus_temperature -3.25\n"), std::string::npos);
}

/// An `le` bound of `nanos`, rendered exactly as the registry renders
/// it (nanoseconds in base seconds, %.17g).
std::string LeBound(uint64_t nanos) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g",
                static_cast<double>(nanos) / 1e9);
  return buf;
}

TEST(LatencyHistogramTest, SubBucketsSeparateSameOctaveSamples) {
  // The point of the log-linear refinement: 1.0us and 1.5us share a
  // power-of-two octave (a single log2 bucket would collapse them and
  // with them p50/p95/p99 of any sub-2x latency spread), but land in
  // different sixteenth-of-an-octave sub-buckets.
  LatencyHistogram h;
  for (int i = 0; i < 95; ++i) h.Record(1'000);
  for (int i = 0; i < 5; ++i) h.Record(1'500);
  const uint64_t p50 = h.PercentileNanos(0.50);
  const uint64_t p99 = h.PercentileNanos(0.99);
  EXPECT_LT(p50, p99);
  // Each estimate stays within its sub-bucket's ~6% width.
  EXPECT_GE(p50, 1'000u);
  EXPECT_LE(p50, 1'023u);
  EXPECT_GE(p99, 1'472u);
  EXPECT_LE(p99, 1'535u);
}

TEST(LatencyHistogramTest, MergeAddsCountsAndKeepsMax) {
  // Per-I/O-thread stall shards merge into one histogram for
  // snapshots and scrapes.
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(100);
  a.Record(1'000);
  b.Record(1'000);
  b.Record(50'000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum_nanos(), 52'100u);
  EXPECT_EQ(a.max_nanos(), 50'000u);
  EXPECT_EQ(b.count(), 2u);  // the source shard is untouched
  EXPECT_LE(a.PercentileNanos(0.99), 50'000u);
}

TEST(MetricsRegistryTest, RendersNanosHistogramCumulativelyInSeconds) {
  LatencyHistogram h;
  h.Record(1);      // exact bucket: le 1 ns
  h.Record(1);      // same bucket again
  h.Record(3);      // exact bucket: le 3 ns
  h.Record(1'500);  // log-linear bucket: le 1535 ns
  MetricsRegistry reg;
  reg.AddNanosHistogram("octopus_lat_seconds", "Latency.",
                        h.bucket_counts(),
                        LatencyHistogram::BucketUpperBounds(),
                        static_cast<double>(h.sum_nanos()) / 1e9);
  const std::string& text = reg.ExpositionText();
  EXPECT_NE(text.find("# TYPE octopus_lat_seconds histogram\n"),
            std::string::npos);
  // Cumulative counts at each occupied bound, in base seconds.
  EXPECT_NE(text.find("octopus_lat_seconds_bucket{le=\"" + LeBound(1) +
                      "\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("octopus_lat_seconds_bucket{le=\"" + LeBound(3) +
                      "\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("octopus_lat_seconds_bucket{le=\"" + LeBound(1'535) +
                      "\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("octopus_lat_seconds_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("octopus_lat_seconds_count 4\n"), std::string::npos);
  char sum[64];
  std::snprintf(sum, sizeof(sum), "%.17g", 1505.0 / 1e9);
  EXPECT_NE(text.find("octopus_lat_seconds_sum " + std::string(sum) +
                      "\n"),
            std::string::npos);
  // Empty buckets are elided: the unoccupied bound between 1 ns and
  // 3 ns, and the whole tail past the last occupied bucket.
  EXPECT_EQ(text.find("le=\"" + LeBound(2) + "\""), std::string::npos);
  EXPECT_EQ(text.find("le=\"" + LeBound(1'599) + "\""), std::string::npos);
}

TEST(MetricsRegistryTest, EmptyHistogramRendersOnlyInfSumCount) {
  LatencyHistogram h;
  MetricsRegistry reg;
  reg.AddNanosHistogram("octopus_idle_seconds", "Never sampled.",
                        h.bucket_counts(),
                        LatencyHistogram::BucketUpperBounds(), 0.0);
  const std::string& text = reg.ExpositionText();
  EXPECT_NE(text.find("octopus_idle_seconds_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("octopus_idle_seconds_count 0\n"),
            std::string::npos);
  EXPECT_EQ(text.find("le=\"" + LeBound(1) + "\""), std::string::npos);
}

TEST(ChromeTraceTest, RendersEveryPhaseSpanEndToEnd) {
  QueryTraceRecord rec;
  rec.trace_id = 9;
  rec.session_id = 3;
  rec.request_id = 77;
  rec.epoch = 5;
  rec.epoch_step = 2;
  rec.queries = 4;
  rec.batch_queries = 8;
  rec.batch_requests = 2;
  rec.arrival_nanos = 1'000'000;
  rec.queue_wait_nanos = 1'000;
  rec.probe_nanos = 2'000;
  rec.walk_nanos = 3'000;
  rec.crawl_nanos = 4'000;
  rec.merge_nanos = 500;
  rec.serialize_nanos = 250;
  rec.total_nanos = 11'000;
  rec.page_accesses = 12;
  rec.lease_hits = 6;
  rec.result_vertices = 345;

  const std::string json = obs::ChromeTraceJson({rec});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // The parent span sits on the session's track at the arrival time
  // (microsecond timestamps), annotated with the record's counters.
  EXPECT_NE(json.find("\"name\":\"request\",\"ph\":\"X\",\"pid\":1,"
                      "\"tid\":3,\"ts\":1000.000,\"dur\":11.000"),
            std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":9"), std::string::npos);
  EXPECT_NE(json.find("\"result_vertices\":345"), std::string::npos);
  // All six child phases appear; queue starts at arrival, probe right
  // after it — laid end to end.
  for (const char* name : {"\"queue\"", "\"probe\"", "\"walk\"",
                           "\"crawl\"", "\"merge\"", "\"serialize\""}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  EXPECT_NE(json.find("\"name\":\"queue\",\"ph\":\"X\",\"pid\":1,"
                      "\"tid\":3,\"ts\":1000.000,\"dur\":1.000"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"probe\",\"ph\":\"X\",\"pid\":1,"
                      "\"tid\":3,\"ts\":1001.000,\"dur\":2.000"),
            std::string::npos);
}

TEST(ChromeTraceTest, ElidesZeroDurationSpansAndEmptyInput) {
  QueryTraceRecord rec;
  rec.session_id = 1;
  rec.total_nanos = 100;
  rec.probe_nanos = 100;  // the only non-zero phase
  const std::string json = obs::ChromeTraceJson({rec});
  EXPECT_NE(json.find("\"probe\""), std::string::npos);
  for (const char* name : {"\"queue\"", "\"walk\"", "\"crawl\"",
                           "\"merge\"", "\"serialize\""}) {
    EXPECT_EQ(json.find(name), std::string::npos) << name;
  }
  const std::string empty = obs::ChromeTraceJson({});
  EXPECT_NE(empty.find("\"traceEvents\":[\n\n]}"), std::string::npos);
}

TEST(ClientCallSpanTest, JsonRoundTripsEveryField) {
  obs::ClientCallSpan span;
  span.span_id = 7;
  span.request_id = 42;
  span.server_trace_id = 1234567890123456789ull;
  span.start_unix_nanos = 1'700'000'000'000'000'000;
  span.send_nanos = 1'500;
  span.wait_nanos = 250'000;
  span.recv_nanos = 3'200;
  span.queries = 16;
  span.epoch = 5;
  const std::string line = obs::ClientCallSpanJson(span);
  obs::ClientCallSpan parsed;
  ASSERT_TRUE(obs::ParseClientCallSpanJson(line, &parsed));
  EXPECT_EQ(parsed, span);
}

TEST(ClientCallSpanTest, ParserRejectsJunkAndToleratesMissingFields) {
  obs::ClientCallSpan out;
  EXPECT_FALSE(obs::ParseClientCallSpanJson("", &out));
  EXPECT_FALSE(obs::ParseClientCallSpanJson("# comment line", &out));
  EXPECT_FALSE(obs::ParseClientCallSpanJson("{\"span_id\":0}", &out));
  // A minimal line parses; absent fields default to zero.
  ASSERT_TRUE(obs::ParseClientCallSpanJson("{\"span_id\":3}", &out));
  EXPECT_EQ(out.span_id, 3u);
  EXPECT_EQ(out.server_trace_id, 0u);
  EXPECT_EQ(out.wait_nanos, 0);
}

TEST(MergedChromeTraceTest, NestsMatchedServerRecordInWaitWindow) {
  obs::ClientCallSpan span;
  span.span_id = 1;
  span.request_id = 11;
  span.server_trace_id = 9;
  span.start_unix_nanos = 1'000'000'000;  // rebased to ts 0
  span.send_nanos = 2'000;
  span.wait_nanos = 10'000;
  span.recv_nanos = 1'000;
  span.queries = 4;

  QueryTraceRecord rec;
  rec.trace_id = 9;
  rec.session_id = 3;
  rec.request_id = 11;
  rec.total_nanos = 6'000;
  rec.probe_nanos = 6'000;

  const std::string json = obs::MergedChromeTraceJson({rec}, {span});
  // Client call span at the rebased origin on pid 1.
  EXPECT_NE(json.find("\"name\":\"call\",\"ph\":\"X\",\"pid\":1,"
                      "\"tid\":1,\"ts\":0.000,\"dur\":13.000"),
            std::string::npos);
  // wait window is [2000, 12000) ns; slack = 10000 - 6000 = 4000, so
  // the server span starts at 2000 + 2000 = 4000 ns = 4 us on pid 2.
  EXPECT_NE(json.find("\"name\":\"request\",\"ph\":\"X\",\"pid\":2,"
                      "\"tid\":3,\"ts\":4.000,\"dur\":6.000"),
            std::string::npos);
  EXPECT_NE(json.find("\"wire_nanos\":4000"), std::string::npos);
  // Both process tracks are named.
  EXPECT_NE(json.find("\"args\":{\"name\":\"client\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"server\"}"), std::string::npos);
}

TEST(MergedChromeTraceTest, OmitsUnmatchedServerRecords) {
  obs::ClientCallSpan span;
  span.span_id = 1;
  span.server_trace_id = 0;  // server ran untraced
  span.start_unix_nanos = 500;
  span.send_nanos = 100;
  span.wait_nanos = 100;
  span.recv_nanos = 100;
  QueryTraceRecord stranger;  // some other client's request
  stranger.trace_id = 77;
  stranger.session_id = 8;
  stranger.total_nanos = 50;
  const std::string json = obs::MergedChromeTraceJson({stranger}, {span});
  EXPECT_NE(json.find("\"name\":\"call\""), std::string::npos);
  EXPECT_EQ(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_EQ(json.find("\"trace_id\":77"), std::string::npos);
}

using obs::EventJournal;
using obs::EventKind;
using obs::JournalEvent;

TEST(EventJournalTest, DisabledJournalIsANoOp) {
  EventJournal journal;  // no ring, no sink
  EXPECT_FALSE(journal.enabled());
  journal.Emit(EventKind::kStepApplied, 0, 0, 1, 2);
  EXPECT_EQ(journal.total_emitted(), 0u);
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.RenderJson(),
            "{\"total\":0,\"capacity\":0,\"events\":[]}");
}

TEST(EventJournalTest, StampsMonotoneSeqAndWallClock) {
  EventJournal journal(8);
  ASSERT_TRUE(journal.enabled());
  journal.Emit(EventKind::kSessionOpened, 0, 5, 1);
  journal.Emit(EventKind::kEpochPinned, 3, 5, 1);
  journal.Emit(EventKind::kSessionClosed, 0, 5, 0, 1);
  std::vector<JournalEvent> events;
  journal.Snapshot(&events);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[2].seq, 3u);
  EXPECT_EQ(events[0].kind, EventKind::kSessionOpened);
  EXPECT_EQ(events[1].epoch, 3u);
  EXPECT_EQ(events[1].session, 5u);
  EXPECT_EQ(events[2].b, 1u);
  EXPECT_GT(events[0].unix_nanos, 0);
  EXPECT_LE(events[0].unix_nanos, events[2].unix_nanos);
}

TEST(EventJournalTest, WrapsOverwritingOldestAndSnapshotsInOrder) {
  constexpr size_t kSlots = 4;
  constexpr uint64_t kWrites = 11;  // wraps the ring 2.75 times
  EventJournal journal(kSlots);
  for (uint64_t i = 1; i <= kWrites; ++i) {
    journal.Emit(EventKind::kStepApplied, 0, 0, i);
  }
  EXPECT_EQ(journal.total_emitted(), kWrites);
  EXPECT_EQ(journal.size(), kSlots);
  EXPECT_EQ(journal.capacity(), kSlots);
  std::vector<JournalEvent> events;
  journal.Snapshot(&events);
  ASSERT_EQ(events.size(), kSlots);
  // The survivors are the newest kSlots events, oldest first, and seq
  // reflects lifetime position — not ring position.
  for (size_t i = 0; i < kSlots; ++i) {
    EXPECT_EQ(events[i].seq, kWrites - kSlots + 1 + i) << i;
    EXPECT_EQ(events[i].a, kWrites - kSlots + 1 + i) << i;
  }
}

TEST(EventJournalTest, RenderJsonCapsToNewestEvents) {
  EventJournal journal(8);
  for (uint64_t i = 1; i <= 5; ++i) {
    journal.Emit(EventKind::kEpochPublished, i, 0, i * 10);
  }
  const std::string full = journal.RenderJson();
  EXPECT_NE(full.find("\"total\":5,\"capacity\":8"), std::string::npos);
  EXPECT_NE(full.find("\"seq\":1,"), std::string::npos);
  EXPECT_NE(full.find("\"kind\":\"epoch_published\""), std::string::npos);
  const std::string capped = journal.RenderJson(/*max_events=*/2);
  // Only the two newest survive the cap; total still reports lifetime.
  EXPECT_NE(capped.find("\"total\":5"), std::string::npos);
  EXPECT_EQ(capped.find("\"seq\":3,"), std::string::npos);
  EXPECT_NE(capped.find("\"seq\":4,"), std::string::npos);
  EXPECT_NE(capped.find("\"seq\":5,"), std::string::npos);
}

TEST(EventJournalTest, SinkGetsOneJsonLinePerEventEvenWithoutRing) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  {
    EventJournal journal(/*capacity=*/0, sink);
    ASSERT_TRUE(journal.enabled());  // sink alone enables it
    journal.Emit(EventKind::kEpochSpilled, 7, 0, 12, 49'152);
    journal.Emit(EventKind::kDrainBegan, 0, 0, 3);
    EXPECT_EQ(journal.total_emitted(), 2u);
    EXPECT_EQ(journal.size(), 0u);  // no ring
  }
  std::rewind(sink);
  char line[512];
  ASSERT_NE(std::fgets(line, sizeof(line), sink), nullptr);
  std::string first(line);
  EXPECT_NE(first.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(first.find("\"kind\":\"epoch_spilled\""), std::string::npos);
  EXPECT_NE(first.find("\"epoch\":7"), std::string::npos);
  EXPECT_NE(first.find("\"a\":12"), std::string::npos);
  EXPECT_NE(first.find("\"b\":49152"), std::string::npos);
  ASSERT_NE(std::fgets(line, sizeof(line), sink), nullptr);
  EXPECT_NE(std::string(line).find("\"kind\":\"drain_began\""),
            std::string::npos);
  EXPECT_EQ(std::fgets(line, sizeof(line), sink), nullptr);
  std::fclose(sink);
}

TEST(EventJournalTest, KindNamesAreWireStable) {
  EXPECT_STREQ(obs::EventKindName(EventKind::kStepApplied),
               "step_applied");
  EXPECT_STREQ(obs::EventKindName(EventKind::kOverloadRejected),
               "overload_rejected");
  EXPECT_STREQ(obs::EventKindName(EventKind::kDrainEnded), "drain_ended");
  EXPECT_STREQ(obs::EventKindName(static_cast<EventKind>(200)), "unknown");
}

}  // namespace
}  // namespace octopus
