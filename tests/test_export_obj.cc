// Copyright 2026 The OCTOPUS Reproduction Authors
// Tests for the OBJ exporter used by visualization monitoring.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "mesh/export_obj.h"
#include "mesh/generators/grid_generator.h"
#include "mesh/surface.h"
#include "test_util.h"

namespace octopus {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

size_t CountLinesStartingWith(const std::string& text, char c) {
  size_t count = 0;
  bool at_line_start = true;
  for (size_t i = 0; i < text.size(); ++i) {
    if (at_line_start && text[i] == c &&
        i + 1 < text.size() && text[i + 1] == ' ') {
      ++count;
    }
    at_line_start = text[i] == '\n';
  }
  return count;
}

TEST(ExportObjTest, SurfaceCountsMatchExtraction) {
  const TetraMesh mesh =
      GenerateBoxMesh(4, 4, 4, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
          .MoveValue();
  const std::string path = ::testing::TempDir() + "/octopus_surface.obj";
  ASSERT_TRUE(ExportSurfaceObj(mesh, path).ok());
  const std::string obj = ReadAll(path);
  const SurfaceInfo surface = ExtractSurface(mesh);
  EXPECT_EQ(CountLinesStartingWith(obj, 'v'),
            surface.surface_vertices.size());
  EXPECT_EQ(CountLinesStartingWith(obj, 'f'), surface.surface_faces.size());
  std::remove(path.c_str());
}

TEST(ExportObjTest, FaceIndicesAreOneBasedAndDense) {
  const TetraMesh mesh = testing::MakeSingleTetMesh();
  const std::string path = ::testing::TempDir() + "/octopus_tet.obj";
  ASSERT_TRUE(ExportSurfaceObj(mesh, path).ok());
  const std::string obj = ReadAll(path);
  // 4 vertices => all face indices in 1..4.
  std::istringstream in(obj);
  std::string word;
  while (in >> word) {
    if (word == "f") {
      for (int i = 0; i < 3; ++i) {
        size_t index = 0;
        in >> index;
        EXPECT_GE(index, 1u);
        EXPECT_LE(index, 4u);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(ExportObjTest, PointExportMatchesQueryResult) {
  const TetraMesh mesh =
      GenerateBoxMesh(5, 5, 5, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
          .MoveValue();
  const AABB q(Vec3(0.2f, 0.2f, 0.2f), Vec3(0.7f, 0.7f, 0.7f));
  const auto result = testing::BruteForceRangeQuery(mesh, q);
  const std::string path = ::testing::TempDir() + "/octopus_points.obj";
  ASSERT_TRUE(ExportPointsObj(mesh, result, path).ok());
  const std::string obj = ReadAll(path);
  EXPECT_EQ(CountLinesStartingWith(obj, 'v'), result.size());
  EXPECT_EQ(CountLinesStartingWith(obj, 'p'), result.size());
  std::remove(path.c_str());
}

TEST(ExportObjTest, ErrorsOnBadPathAndBadIds) {
  const TetraMesh mesh = testing::MakeSingleTetMesh();
  EXPECT_EQ(ExportSurfaceObj(mesh, "/nonexistent/dir/x.obj").code(),
            Status::Code::kIOError);
  const std::vector<VertexId> bad = {99};
  const std::string path = ::testing::TempDir() + "/octopus_bad.obj";
  EXPECT_EQ(ExportPointsObj(mesh, bad, path).code(),
            Status::Code::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace octopus
