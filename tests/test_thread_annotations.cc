// Copyright 2026 The OCTOPUS Reproduction Authors
// Behavioral tests of the annotated Mutex/MutexLock/CondVar wrappers
// (src/common/thread_annotations.h). The annotations themselves are
// checked by clang's -Wthread-safety CI job; these tests pin down the
// runtime semantics every annotated class now depends on — mutual
// exclusion, the early-Unlock/re-Lock cycle (the BufferManager::CopyOut
// pattern), adopt/release CondVar waits, and WaitFor's timeout
// convention.
#include "common/thread_annotations.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace octopus::common {
namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int counter = 0;  // int, not atomic: races here are UB TSan would flag
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  {
    MutexLock lock(mu);
    // Probe from another thread: try_lock on the owning thread would be
    // UB for std::mutex.
    bool acquired = true;
    std::thread([&] { acquired = mu.TryLock(); }).join();
    EXPECT_FALSE(acquired);
  }
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexLockTest, EarlyUnlockReleasesAndRelockRestores) {
  Mutex mu;
  MutexLock lock(mu);
  lock.Unlock();
  // The mutex really is free while "unlocked inside the scope".
  bool acquired = false;
  std::thread([&] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  }).join();
  EXPECT_TRUE(acquired);
  lock.Lock();  // destructor must unlock exactly once after this
}

TEST(MutexLockTest, DestructorAfterEarlyUnlockDoesNotDoubleUnlock) {
  Mutex mu;
  {
    MutexLock lock(mu);
    lock.Unlock();
  }  // a double-unlock here would be UB; reacquiring proves consistency
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVarTest, WaitReleasesMutexAndReacquiresOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = ready;  // guarded read: Wait must have re-acquired mu
  });
  {
    // If Wait failed to release the mutex this lock would deadlock.
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(CondVarTest, WaitForTimesOutFalseWhenNeverNotified) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_FALSE(cv.WaitFor(mu, std::chrono::milliseconds(5)));
}

TEST(CondVarTest, WaitForReturnsTrueWhenNotified) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread notifier([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  });
  bool notified = false;
  {
    MutexLock lock(mu);
    // Loop on the predicate: the notify can fire before we start
    // waiting, and WaitFor may also wake spuriously.
    while (!ready) {
      notified = cv.WaitFor(mu, std::chrono::seconds(30));
      if (!notified) break;
    }
    // Either we observed the predicate directly (notify-before-wait)
    // or a wait reported no_timeout.
    EXPECT_TRUE(ready);
  }
  notifier.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      ++awake;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& waiter : waiters) waiter.join();
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
}  // namespace octopus::common
