// Copyright 2026 The OCTOPUS Reproduction Authors
// Randomized property tests ("fuzz-lite"): exactness and robustness over
// randomly generated geometries, degenerate query shapes and adversarial
// index workloads. All RNG is seeded — failures reproduce exactly.
#include <gtest/gtest.h>

#include <unordered_set>

#include "index/rtree.h"
#include "index/uniform_grid.h"
#include "mesh/generators/grid_generator.h"
#include "mesh/generators/hexa_generator.h"
#include "mesh/generators/shapes.h"
#include "octopus/hex_octopus.h"
#include "octopus/query_executor.h"
#include "sim/random_deformer.h"
#include "test_util.h"

namespace octopus {
namespace {

using testing::BruteForceRangeQuery;
using testing::Sorted;

// Random solid: a few balls and tubes placed at random — non-convex and
// often multi-component, the general case the surface probe must handle.
ImplicitSolid RandomSolid(uint64_t seed) {
  Rng rng(seed);
  ImplicitSolid solid;
  const AABB domain(Vec3(0.15f, 0.15f, 0.15f), Vec3(0.85f, 0.85f, 0.85f));
  const int balls = 1 + static_cast<int>(rng.NextBelow(3));
  for (int i = 0; i < balls; ++i) {
    solid.AddBall(rng.NextPointIn(domain), rng.NextFloat(0.12f, 0.25f));
  }
  const int tubes = static_cast<int>(rng.NextBelow(3));
  for (int i = 0; i < tubes; ++i) {
    solid.AddTube(rng.NextPointIn(domain), rng.NextPointIn(domain),
                  rng.NextFloat(0.06f, 0.1f));
  }
  return solid;
}

class RandomSolidTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSolidTest, OctopusExactOnRandomGeometry) {
  const uint64_t seed = GetParam();
  const int n = 28;
  const AABB domain(Vec3(0, 0, 0), Vec3(1, 1, 1));
  const ImplicitSolid solid = RandomSolid(seed);
  auto mesh_result = GenerateMaskedGrid(n, n, n, domain,
                                        solid.MakeMask(n, n, n, domain));
  ASSERT_TRUE(mesh_result.ok());
  TetraMesh mesh = mesh_result.MoveValue();

  Octopus octopus;
  octopus.Build(mesh);
  RandomDeformer deformer(0.25f / n, seed);
  deformer.Bind(mesh);
  Rng rng(seed ^ 0xF00D);
  for (int step = 1; step <= 4; ++step) {
    deformer.ApplyStep(step, &mesh);
    for (int q = 0; q < 6; ++q) {
      // Queries several edge lengths wide (see DESIGN.md section 5).
      const float h = rng.NextFloat(0.12f, 0.3f);
      const VertexId center =
          static_cast<VertexId>(rng.NextBelow(mesh.num_vertices()));
      const AABB box = AABB::FromCenterHalfExtent(mesh.position(center),
                                                  Vec3(h, h, h));
      std::vector<VertexId> got;
      octopus.RangeQuery(mesh, box, &got);
      ASSERT_EQ(Sorted(got), BruteForceRangeQuery(mesh, box))
          << "seed " << seed << " step " << step << " query " << q;
    }
  }
}

TEST_P(RandomSolidTest, HexOctopusExactOnRandomGeometry) {
  const uint64_t seed = GetParam();
  const int n = 24;
  const AABB domain(Vec3(0, 0, 0), Vec3(1, 1, 1));
  const ImplicitSolid solid = RandomSolid(seed);
  auto mesh_result = GenerateMaskedHexGrid(n, n, n, domain,
                                           solid.MakeMask(n, n, n, domain));
  ASSERT_TRUE(mesh_result.ok());
  const HexaMesh& mesh = mesh_result.Value();

  HexOctopus octopus;
  octopus.Build(mesh);
  Rng rng(seed ^ 0xBEEF);
  for (int q = 0; q < 12; ++q) {
    const float h = rng.NextFloat(0.15f, 0.3f);
    const VertexId center =
        static_cast<VertexId>(rng.NextBelow(mesh.num_vertices()));
    const AABB box = AABB::FromCenterHalfExtent(mesh.position(center),
                                                Vec3(h, h, h));
    std::vector<VertexId> got;
    octopus.RangeQuery(mesh, box, &got);
    std::vector<VertexId> expected;
    for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
      if (box.Contains(mesh.position(v))) expected.push_back(v);
    }
    ASSERT_EQ(Sorted(got), expected) << "seed " << seed << " query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSolidTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

// ---------- Degenerate query shapes ----------

TEST(DegenerateQueryTest, PointQueryAtVertexPosition) {
  const TetraMesh mesh =
      GenerateBoxMesh(8, 8, 8, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
          .MoveValue();
  Octopus octopus;
  octopus.Build(mesh);
  // A zero-volume box exactly at an interior vertex's position.
  const Vec3 p = mesh.position(mesh.num_vertices() / 2);
  const AABB point_box(p, p);
  std::vector<VertexId> got;
  octopus.RangeQuery(mesh, point_box, &got);
  EXPECT_EQ(Sorted(got), BruteForceRangeQuery(mesh, point_box));
  EXPECT_GE(got.size(), 1u);
}

TEST(DegenerateQueryTest, PlaneSliceQuery) {
  const TetraMesh mesh =
      GenerateBoxMesh(8, 8, 8, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
          .MoveValue();
  Octopus octopus;
  octopus.Build(mesh);
  // Zero thickness in z, exactly on a lattice plane: all vertices of that
  // plane are inside; the crawl must traverse within the plane.
  const AABB slice(Vec3(0, 0, 0.5f), Vec3(1, 1, 0.5f));
  std::vector<VertexId> got;
  octopus.RangeQuery(mesh, slice, &got);
  EXPECT_EQ(Sorted(got), BruteForceRangeQuery(mesh, slice));
  EXPECT_EQ(got.size(), 81u);  // 9 x 9 lattice plane
}

TEST(DegenerateQueryTest, InvertedBoxIsEmpty) {
  const TetraMesh mesh =
      GenerateBoxMesh(4, 4, 4, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
          .MoveValue();
  Octopus octopus;
  octopus.Build(mesh);
  AABB empty;  // default box: min > max
  std::vector<VertexId> got;
  octopus.RangeQuery(mesh, empty, &got);
  EXPECT_TRUE(got.empty());
}

// ---------- R-tree with box entries under churn ----------

TEST(RTreeFuzzTest, BoxEntriesChurnMatchesBruteForce) {
  RTree::Options options;
  options.fanout = 8;
  RTree tree(options);
  Rng rng(0xF422);
  const AABB domain(Vec3(0, 0, 0), Vec3(1, 1, 1));
  std::unordered_map<VertexId, AABB> live;
  VertexId next_id = 0;

  for (int op = 0; op < 4000; ++op) {
    const double dice = rng.NextDouble();
    if (dice < 0.5 || live.empty()) {
      const Vec3 c = rng.NextPointIn(domain);
      const float h = rng.NextFloat(0.0f, 0.08f);
      const AABB box = AABB::FromCenterHalfExtent(c, Vec3(h, h, h));
      tree.Insert(next_id, box);
      live.emplace(next_id, box);
      ++next_id;
    } else if (dice < 0.8) {
      const VertexId id = live.begin()->first;
      ASSERT_TRUE(tree.Delete(id));
      live.erase(live.begin());
    } else {
      // Update: in-place if possible, else delete + insert.
      const VertexId id = live.begin()->first;
      const Vec3 c = rng.NextPointIn(domain);
      const AABB box = AABB::FromCenterHalfExtent(c, Vec3(0.01f, 0.01f,
                                                          0.01f));
      if (!tree.TryUpdateInPlace(id, box)) {
        ASSERT_TRUE(tree.Delete(id));
        tree.Insert(id, box);
      }
      live[id] = box;
    }
    if (op % 500 == 499) {
      ASSERT_TRUE(tree.CheckInvariants()) << "op " << op;
      const AABB q = AABB::FromCenterHalfExtent(
          rng.NextPointIn(domain), Vec3(0.2f, 0.2f, 0.2f));
      std::vector<VertexId> got;
      tree.QueryIds(q, &got);
      std::vector<VertexId> expected;
      for (const auto& [id, box] : live) {
        if (q.Intersects(box)) expected.push_back(id);
      }
      ASSERT_EQ(Sorted(got), Sorted(expected)) << "op " << op;
    }
  }
}

// ---------- Stale grid robustness (OCTOPUS-CON precondition) ----------

TEST(StaleGridTest, FindNearbyRemainsValidAfterHeavyDrift) {
  TetraMesh mesh =
      GenerateBoxMesh(10, 10, 10, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
          .MoveValue();
  UniformGrid grid(8);
  grid.Build(mesh.positions());
  // Drift the whole mesh far from where the grid thinks vertices are.
  for (Vec3& p : mesh.mutable_positions()) p += Vec3(0.4f, -0.3f, 0.2f);
  Rng rng(0x57A1E);
  for (int i = 0; i < 100; ++i) {
    const VertexId v = grid.FindNearbyVertex(
        rng.NextPointIn(AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))));
    // The hint may be spatially stale but must always be a live id.
    ASSERT_NE(v, kInvalidVertex);
    ASSERT_LT(v, mesh.num_vertices());
  }
}

}  // namespace
}  // namespace octopus
