// Copyright 2026 The OCTOPUS Reproduction Authors
// Unit and property tests for the baseline indexes: linear scan, octree,
// uniform grid, R-tree, LUR-Tree, QU-Trade. The governing invariant for
// all of them: after any update pattern, a range query returns exactly the
// brute-force result.
#include <gtest/gtest.h>

#include <unordered_set>

#include "index/linear_scan.h"
#include "index/lur_tree.h"
#include "index/octree.h"
#include "index/qu_trade.h"
#include "index/rtree.h"
#include "index/uniform_grid.h"
#include "mesh/generators/grid_generator.h"
#include "sim/random_deformer.h"
#include "sim/workload.h"
#include "test_util.h"

namespace octopus {
namespace {

using testing::BruteForceRangeQuery;
using testing::Sorted;

TetraMesh MakeBox(int n) {
  return GenerateBoxMesh(n, n, n, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
      .MoveValue();
}

std::vector<Vec3> RandomPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> points;
  points.reserve(n);
  const AABB box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  for (size_t i = 0; i < n; ++i) points.push_back(rng.NextPointIn(box));
  return points;
}

std::vector<VertexId> BruteForcePoints(const std::vector<Vec3>& points,
                                       const AABB& box) {
  std::vector<VertexId> out;
  for (size_t i = 0; i < points.size(); ++i) {
    if (box.Contains(points[i])) out.push_back(static_cast<VertexId>(i));
  }
  return out;
}

// ---------- LinearScan ----------

TEST(LinearScanTest, MatchesBruteForce) {
  const TetraMesh mesh = MakeBox(8);
  LinearScan scan;
  scan.Build(mesh);
  const AABB q(Vec3(0.2f, 0.2f, 0.2f), Vec3(0.6f, 0.5f, 0.9f));
  std::vector<VertexId> got;
  scan.RangeQuery(mesh, q, &got);
  EXPECT_EQ(Sorted(got), BruteForceRangeQuery(mesh, q));
  EXPECT_EQ(scan.FootprintBytes(), 0u);
  EXPECT_EQ(scan.Name(), "LinearScan");
}

// ---------- Octree ----------

class OctreeBucketTest : public ::testing::TestWithParam<int> {};

TEST_P(OctreeBucketTest, MatchesBruteForceOnRandomPoints) {
  const auto points = RandomPoints(4000, GetParam());
  Octree::Options options;
  options.bucket_size = GetParam();
  Octree tree(options);
  tree.Build(points);
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    const Vec3 c = rng.NextPointIn(AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)));
    const float h = rng.NextFloat(0.01f, 0.3f);
    const AABB q = AABB::FromCenterHalfExtent(c, Vec3(h, h, h));
    std::vector<VertexId> got;
    tree.Query(q, &got);
    EXPECT_EQ(Sorted(got), BruteForcePoints(points, q));
  }
}

INSTANTIATE_TEST_SUITE_P(BucketSizes, OctreeBucketTest,
                         ::testing::Values(1, 4, 16, 64, 256, 2048));

TEST(OctreeTest, EmptyPointSet) {
  Octree tree;
  tree.Build({});
  std::vector<VertexId> got;
  tree.Query(AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)), &got);
  EXPECT_TRUE(got.empty());
}

TEST(OctreeTest, DuplicatePointsDoNotRecurseForever) {
  std::vector<Vec3> points(5000, Vec3(0.5f, 0.5f, 0.5f));
  Octree::Options options;
  options.bucket_size = 8;
  Octree tree(options);
  tree.Build(points);  // must terminate via max_depth
  std::vector<VertexId> got;
  tree.Query(AABB(Vec3(0.4f, 0.4f, 0.4f), Vec3(0.6f, 0.6f, 0.6f)), &got);
  EXPECT_EQ(got.size(), 5000u);
}

TEST(OctreeTest, FullCoverQueryReturnsEverything) {
  const auto points = RandomPoints(2000, 7);
  Octree tree;
  tree.Build(points);
  std::vector<VertexId> got;
  tree.Query(AABB(Vec3(-1, -1, -1), Vec3(2, 2, 2)), &got);
  EXPECT_EQ(got.size(), points.size());
}

TEST(OctreeTest, SmallerBucketsMoreNodes) {
  const auto points = RandomPoints(5000, 8);
  Octree::Options small_opts;
  small_opts.bucket_size = 16;
  Octree::Options large_opts;
  large_opts.bucket_size = 1024;
  Octree small_tree(small_opts);
  Octree large_tree(large_opts);
  small_tree.Build(points);
  large_tree.Build(points);
  EXPECT_GT(small_tree.num_nodes(), large_tree.num_nodes());
  EXPECT_GT(small_tree.FootprintBytes(), 0u);
}

TEST(ThrowawayOctreeTest, RebuildTracksDeformation) {
  TetraMesh mesh = MakeBox(7);
  ThrowawayOctree index;
  index.Build(mesh);
  RandomDeformer deformer(0.01f);
  deformer.Bind(mesh);
  for (int step = 1; step <= 5; ++step) {
    deformer.ApplyStep(step, &mesh);
    index.BeforeQueries(mesh);  // throwaway rebuild
    const AABB q(Vec3(0.1f, 0.1f, 0.1f), Vec3(0.5f, 0.6f, 0.7f));
    std::vector<VertexId> got;
    index.RangeQuery(mesh, q, &got);
    EXPECT_EQ(Sorted(got), BruteForceRangeQuery(mesh, q)) << "step " << step;
  }
}

// ---------- UniformGrid ----------

class GridResolutionTest : public ::testing::TestWithParam<int> {};

TEST_P(GridResolutionTest, FindNearbyVertexAlwaysFindsSomething) {
  const auto points = RandomPoints(500, 21);
  UniformGrid grid(GetParam());
  grid.Build(points);
  Rng rng(22);
  for (int i = 0; i < 100; ++i) {
    const Vec3 p = rng.NextPointIn(AABB(Vec3(-0.5f, -0.5f, -0.5f),
                                        Vec3(1.5f, 1.5f, 1.5f)));
    const VertexId v = grid.FindNearbyVertex(p);
    ASSERT_NE(v, kInvalidVertex);
    EXPECT_LT(v, points.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, GridResolutionTest,
                         ::testing::Values(1, 2, 3, 6, 10, 18));

TEST(UniformGridTest, EmptyGrid) {
  UniformGrid grid(4);
  grid.Build({});
  EXPECT_EQ(grid.FindNearbyVertex(Vec3(0, 0, 0)), kInvalidVertex);
}

TEST(UniformGridTest, NearbyVertexIsActuallyNear) {
  // With a fine grid over dense points the returned vertex must be within
  // a few cell diagonals of the probe.
  const auto points = RandomPoints(20000, 23);
  UniformGrid grid(16);
  grid.Build(points);
  Rng rng(24);
  const float cell_diag = std::sqrt(3.0f) / 16.0f;
  for (int i = 0; i < 200; ++i) {
    const Vec3 p = rng.NextPointIn(AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)));
    const VertexId v = grid.FindNearbyVertex(p);
    ASSERT_NE(v, kInvalidVertex);
    EXPECT_LT(Distance(points[v], p), 3.0f * cell_diag);
  }
}

TEST(UniformGridTest, CollectCandidatesIsSuperset) {
  const auto points = RandomPoints(3000, 25);
  UniformGrid grid(8);
  grid.Build(points);
  const AABB q(Vec3(0.3f, 0.1f, 0.2f), Vec3(0.7f, 0.5f, 0.9f));
  std::vector<VertexId> candidates;
  grid.CollectCandidates(q, &candidates);
  const std::unordered_set<VertexId> candidate_set(candidates.begin(),
                                                   candidates.end());
  for (VertexId v : BruteForcePoints(points, q)) {
    EXPECT_TRUE(candidate_set.count(v)) << "missing vertex " << v;
  }
}

TEST(UniformGridTest, FootprintGrowsWithResolution) {
  const auto points = RandomPoints(1000, 26);
  UniformGrid coarse(2);
  UniformGrid fine(20);
  coarse.Build(points);
  fine.Build(points);
  EXPECT_GT(fine.FootprintBytes(), coarse.FootprintBytes());
}

// ---------- RTree ----------

std::vector<RTree::Entry> PointEntries(const std::vector<Vec3>& points) {
  std::vector<RTree::Entry> entries;
  entries.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    entries.push_back({static_cast<VertexId>(i),
                       AABB(points[i], points[i])});
  }
  return entries;
}

class RTreeFanoutTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeFanoutTest, BulkLoadMatchesBruteForce) {
  const auto points = RandomPoints(3000, 31);
  RTree::Options options;
  options.fanout = GetParam();
  RTree tree(options);
  tree.BulkLoad(PointEntries(points));
  EXPECT_EQ(tree.num_entries(), points.size());
  EXPECT_TRUE(tree.CheckInvariants());
  Rng rng(32);
  for (int i = 0; i < 40; ++i) {
    const Vec3 c = rng.NextPointIn(AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)));
    const float h = rng.NextFloat(0.02f, 0.25f);
    const AABB q = AABB::FromCenterHalfExtent(c, Vec3(h, h, h));
    std::vector<VertexId> got;
    tree.QueryIds(q, &got);
    EXPECT_EQ(Sorted(got), BruteForcePoints(points, q));
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, RTreeFanoutTest,
                         ::testing::Values(4, 8, 32, 110, 256));

TEST(RTreeTest, InsertOnlyMatchesBruteForce) {
  const auto points = RandomPoints(1200, 33);
  RTree::Options options;
  options.fanout = 16;
  RTree tree(options);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(static_cast<VertexId>(i), AABB(points[i], points[i]));
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.num_entries(), points.size());
  const AABB q(Vec3(0.25f, 0.25f, 0.25f), Vec3(0.75f, 0.6f, 0.8f));
  std::vector<VertexId> got;
  tree.QueryIds(q, &got);
  EXPECT_EQ(Sorted(got), BruteForcePoints(points, q));
}

TEST(RTreeTest, DeleteRemovesExactlyTheEntry) {
  const auto points = RandomPoints(500, 34);
  RTree::Options options;
  options.fanout = 8;
  RTree tree(options);
  tree.BulkLoad(PointEntries(points));
  EXPECT_TRUE(tree.Delete(42));
  EXPECT_FALSE(tree.Delete(42));  // already gone
  EXPECT_EQ(tree.num_entries(), points.size() - 1);
  std::vector<VertexId> got;
  tree.QueryIds(AABB(Vec3(-1, -1, -1), Vec3(2, 2, 2)), &got);
  EXPECT_EQ(got.size(), points.size() - 1);
  for (VertexId v : got) EXPECT_NE(v, 42u);
}

TEST(RTreeTest, TryUpdateInPlaceSemantics) {
  const auto points = RandomPoints(2000, 35);
  RTree::Options options;
  options.fanout = 32;
  RTree tree(options);
  tree.BulkLoad(PointEntries(points));

  // A tiny move almost always stays within the leaf MBR.
  size_t in_place = 0;
  Rng rng(36);
  for (VertexId id = 0; id < 200; ++id) {
    const Vec3 p = points[id] + rng.NextUnitVector() * 1e-5f;
    if (tree.TryUpdateInPlace(id, AABB(p, p))) {
      ++in_place;
      const AABB* stored = tree.FindEntryBox(id);
      ASSERT_NE(stored, nullptr);
      EXPECT_EQ(stored->min, p);
    }
  }
  EXPECT_GT(in_place, 150u);

  // A move across the domain must NOT be applied in place.
  EXPECT_FALSE(tree.TryUpdateInPlace(
      0, AABB(Vec3(50, 50, 50), Vec3(50, 50, 50))));
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, MixedWorkloadKeepsInvariants) {
  RTree::Options options;
  options.fanout = 8;
  RTree tree(options);
  Rng rng(37);
  std::unordered_set<VertexId> live;
  const AABB domain(Vec3(0, 0, 0), Vec3(1, 1, 1));
  VertexId next_id = 0;
  for (int op = 0; op < 3000; ++op) {
    const double dice = rng.NextDouble();
    if (dice < 0.6 || live.empty()) {
      const Vec3 p = rng.NextPointIn(domain);
      tree.Insert(next_id, AABB(p, p));
      live.insert(next_id);
      ++next_id;
    } else {
      // Delete a random live id.
      const VertexId id = *live.begin();
      EXPECT_TRUE(tree.Delete(id));
      live.erase(live.begin());
    }
  }
  EXPECT_EQ(tree.num_entries(), live.size());
  EXPECT_TRUE(tree.CheckInvariants());
  std::vector<VertexId> got;
  tree.QueryIds(AABB(Vec3(-1, -1, -1), Vec3(2, 2, 2)), &got);
  EXPECT_EQ(got.size(), live.size());
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  RTree::Options options;
  options.fanout = 4;
  RTree tree(options);
  const auto points = RandomPoints(1000, 38);
  tree.BulkLoad(PointEntries(points));
  // 1000 entries, fanout 4 -> ~250 leaves -> height ~ log4(250)+1 ~ 5..7.
  EXPECT_GE(tree.height(), 4);
  EXPECT_LE(tree.height(), 8);
}

TEST(RTreeTest, BoxEntriesQueryByIntersection) {
  // QU-Trade stores non-degenerate boxes: Query must return entries whose
  // BOX intersects, even when the box center is outside the query.
  RTree tree;
  tree.Insert(1, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)));
  tree.Insert(2, AABB(Vec3(5, 5, 5), Vec3(6, 6, 6)));
  std::vector<RTree::Entry> got;
  tree.Query(AABB(Vec3(0.9f, 0.9f, 0.9f), Vec3(1.5f, 1.5f, 1.5f)), &got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 1u);
}

TEST(RTreeTest, EmptyTreeQueries) {
  RTree tree;
  tree.BulkLoad({});
  std::vector<VertexId> got;
  tree.QueryIds(AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)), &got);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(tree.num_entries(), 0u);
}

// ---------- LUR-Tree ----------

TEST(LURTreeTest, TracksDeformationExactly) {
  TetraMesh mesh = MakeBox(7);
  LURTree index;
  index.Build(mesh);
  RandomDeformer deformer(0.008f);
  deformer.Bind(mesh);
  QueryGenerator gen(mesh);
  Rng rng(41);
  for (int step = 1; step <= 6; ++step) {
    deformer.ApplyStep(step, &mesh);
    index.BeforeQueries(mesh);
    for (int q = 0; q < 5; ++q) {
      const AABB box = gen.MakeQuery(&rng, 0.02);
      std::vector<VertexId> got;
      index.RangeQuery(mesh, box, &got);
      EXPECT_EQ(Sorted(got), BruteForceRangeQuery(mesh, box))
          << "step " << step << " query " << q;
    }
  }
}

TEST(LURTreeTest, SmallMovesMostlyInPlace) {
  TetraMesh mesh = MakeBox(10);
  LURTree index;
  index.Build(mesh);
  RandomDeformer deformer(0.002f);  // tiny moves vs leaf MBRs
  deformer.Bind(mesh);
  deformer.ApplyStep(1, &mesh);
  index.BeforeQueries(mesh);
  EXPECT_LT(index.last_reinsert_fraction(), 0.5);
}

TEST(LURTreeTest, FootprintNonTrivial) {
  TetraMesh mesh = MakeBox(6);
  LURTree index;
  index.Build(mesh);
  EXPECT_GT(index.FootprintBytes(),
            mesh.num_vertices() * sizeof(Vec3));  // holds a position copy
}

// ---------- QU-Trade ----------

TEST(QUTradeTest, TracksDeformationExactly) {
  TetraMesh mesh = MakeBox(7);
  QUTrade index;
  index.Build(mesh);
  RandomDeformer deformer(0.008f);
  deformer.Bind(mesh);
  QueryGenerator gen(mesh);
  Rng rng(43);
  for (int step = 1; step <= 6; ++step) {
    deformer.ApplyStep(step, &mesh);
    index.BeforeQueries(mesh);
    for (int q = 0; q < 5; ++q) {
      const AABB box = gen.MakeQuery(&rng, 0.02);
      std::vector<VertexId> got;
      index.RangeQuery(mesh, box, &got);
      EXPECT_EQ(Sorted(got), BruteForceRangeQuery(mesh, box))
          << "step " << step << " query " << q;
    }
  }
}

TEST(QUTradeTest, GraceWindowSuppressesTriggers) {
  TetraMesh mesh = MakeBox(9);
  QUTrade::Options options;
  options.initial_window = 0.05f;  // generous window vs 0.004 moves
  QUTrade index(options);
  index.Build(mesh);
  RandomDeformer deformer(0.002f);
  deformer.Bind(mesh);
  for (int step = 1; step <= 3; ++step) {
    deformer.ApplyStep(step, &mesh);
    index.BeforeQueries(mesh);
    EXPECT_LT(index.last_trigger_rate(), 0.01) << "step " << step;
  }
}

TEST(QUTradeTest, AdaptiveWindowGrowsUnderPressure) {
  TetraMesh mesh = MakeBox(8);
  QUTrade::Options options;
  options.initial_window = 1e-4f;  // far too small for the movement
  options.adaptive = true;
  QUTrade index(options);
  index.Build(mesh);
  const float before = index.window();
  RandomDeformer deformer(0.01f);
  deformer.Bind(mesh);
  for (int step = 1; step <= 5; ++step) {
    deformer.ApplyStep(step, &mesh);
    index.BeforeQueries(mesh);
  }
  EXPECT_GT(index.window(), before);
}

TEST(QUTradeTest, QueriesFilterStaleCandidates) {
  // With a huge window every candidate is stale; results must still be
  // exact thanks to the position filter.
  TetraMesh mesh = MakeBox(6);
  QUTrade::Options options;
  options.initial_window = 10.0f;
  options.adaptive = false;
  QUTrade index(options);
  index.Build(mesh);
  const AABB q(Vec3(0.4f, 0.4f, 0.4f), Vec3(0.6f, 0.6f, 0.6f));
  std::vector<VertexId> got;
  index.RangeQuery(mesh, q, &got);
  EXPECT_EQ(Sorted(got), BruteForceRangeQuery(mesh, q));
}

}  // namespace
}  // namespace octopus
