// Copyright 2026 The OCTOPUS Reproduction Authors
// Unit tests for Rng, HilbertCurve3D, Histogram3D, Table, Status/Result.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/hilbert.h"
#include "common/histogram3d.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"

namespace octopus {
namespace {

// ---------- Rng ----------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextFloatRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.NextFloat(-2.0f, 3.0f);
    EXPECT_GE(f, -2.0f);
    EXPECT_LT(f, 3.0f);
  }
}

TEST(RngTest, UnitVectorHasUnitNorm) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NEAR(rng.NextUnitVector().Norm(), 1.0f, 1e-5f);
  }
}

TEST(RngTest, PointInBoxStaysInBox) {
  Rng rng(13);
  const AABB box(Vec3(-1, 2, 0), Vec3(1, 5, 0.5f));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(box.Contains(rng.NextPointIn(box)));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

// ---------- Hilbert ----------

class HilbertBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(HilbertBitsTest, EncodeDecodeRoundTrip) {
  const int bits = GetParam();
  const HilbertCurve3D curve(bits);
  Rng rng(bits);
  const uint32_t mask = (1u << bits) - 1;
  for (int i = 0; i < 500; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextU64()) & mask;
    const uint32_t y = static_cast<uint32_t>(rng.NextU64()) & mask;
    const uint32_t z = static_cast<uint32_t>(rng.NextU64()) & mask;
    uint32_t dx, dy, dz;
    curve.Decode(curve.Encode(x, y, z), &dx, &dy, &dz);
    EXPECT_EQ(x, dx);
    EXPECT_EQ(y, dy);
    EXPECT_EQ(z, dz);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, HilbertBitsTest,
                         ::testing::Values(1, 2, 3, 5, 8, 10, 16, 21));

TEST(HilbertTest, IsBijectionAtLowPrecision) {
  const HilbertCurve3D curve(3);  // 512 cells
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < 8; ++x) {
    for (uint32_t y = 0; y < 8; ++y) {
      for (uint32_t z = 0; z < 8; ++z) {
        const uint64_t d = curve.Encode(x, y, z);
        EXPECT_LT(d, 512u);
        EXPECT_TRUE(seen.insert(d).second) << "duplicate key " << d;
      }
    }
  }
  EXPECT_EQ(seen.size(), 512u);
}

TEST(HilbertTest, ConsecutiveKeysAreNeighborCells) {
  // The defining property of the Hilbert curve: consecutive curve
  // positions are adjacent cells (Manhattan distance 1).
  const HilbertCurve3D curve(4);
  uint32_t px, py, pz;
  curve.Decode(0, &px, &py, &pz);
  for (uint64_t d = 1; d < (1ull << 12); ++d) {
    uint32_t x, y, z;
    curve.Decode(d, &x, &y, &z);
    const int manhattan = std::abs(static_cast<int>(x) - static_cast<int>(px)) +
                          std::abs(static_cast<int>(y) - static_cast<int>(py)) +
                          std::abs(static_cast<int>(z) - static_cast<int>(pz));
    ASSERT_EQ(manhattan, 1) << "jump at d=" << d;
    px = x;
    py = y;
    pz = z;
  }
}

TEST(HilbertTest, EncodePointClampsOutOfBounds) {
  const HilbertCurve3D curve(4);
  const AABB bounds(Vec3(0, 0, 0), Vec3(1, 1, 1));
  // Outside points must not crash and must map like boundary points.
  const uint64_t below = curve.EncodePoint(Vec3(-5, -5, -5), bounds);
  const uint64_t at_min = curve.EncodePoint(Vec3(0, 0, 0), bounds);
  EXPECT_EQ(below, at_min);
  const uint64_t above = curve.EncodePoint(Vec3(9, 9, 9), bounds);
  const uint64_t at_max = curve.EncodePoint(Vec3(1, 1, 1), bounds);
  EXPECT_EQ(above, at_max);
}

// ---------- Histogram3D ----------

TEST(HistogramTest, ExactForFullQuery) {
  Rng rng(3);
  std::vector<Vec3> points;
  const AABB box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  for (int i = 0; i < 5000; ++i) points.push_back(rng.NextPointIn(box));
  Histogram3D h(8);
  h.Build(points);
  EXPECT_NEAR(h.EstimateCount(box.Inflated(0.1f)), 5000.0, 0.5);
  EXPECT_NEAR(h.EstimateSelectivity(box.Inflated(0.1f)), 1.0, 1e-4);
}

TEST(HistogramTest, ZeroOutsideBounds) {
  std::vector<Vec3> points = {Vec3(0.5f, 0.5f, 0.5f)};
  Histogram3D h(4);
  h.Build(points);
  const AABB far_away(Vec3(10, 10, 10), Vec3(11, 11, 11));
  EXPECT_DOUBLE_EQ(h.EstimateCount(far_away), 0.0);
}

TEST(HistogramTest, UniformDataHalfQuery) {
  Rng rng(4);
  std::vector<Vec3> points;
  const AABB box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  for (int i = 0; i < 40000; ++i) points.push_back(rng.NextPointIn(box));
  Histogram3D h(16);
  h.Build(points, box);
  const AABB half(Vec3(0, 0, 0), Vec3(0.5f, 1, 1));
  EXPECT_NEAR(h.EstimateCount(half) / 40000.0, 0.5, 0.02);
}

TEST(HistogramTest, FractionalBucketOverlap) {
  // All mass in one bucket; a query covering half that bucket should
  // estimate about half the mass (uniform-within-bucket assumption).
  std::vector<Vec3> points;
  Rng rng(5);
  const AABB cell(Vec3(0, 0, 0), Vec3(1, 1, 1));
  for (int i = 0; i < 1000; ++i) points.push_back(rng.NextPointIn(cell));
  Histogram3D h(1);  // single bucket
  h.Build(points, cell);
  const AABB half(Vec3(0, 0, 0), Vec3(0.5f, 1, 1));
  EXPECT_NEAR(h.EstimateCount(half), 500.0, 1e-3);
}

TEST(HistogramTest, EmptyPoints) {
  Histogram3D h(4);
  h.Build({});
  EXPECT_DOUBLE_EQ(
      h.EstimateCount(AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))), 0.0);
  EXPECT_DOUBLE_EQ(
      h.EstimateSelectivity(AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))), 0.0);
}

TEST(HistogramTest, EstimateWithinToleranceOnClusteredData) {
  Rng rng(6);
  std::vector<Vec3> points;
  // Two clusters.
  for (int i = 0; i < 10000; ++i) {
    const Vec3 c = (i % 2 == 0) ? Vec3(0.25f, 0.25f, 0.25f)
                                : Vec3(0.75f, 0.75f, 0.75f);
    points.push_back(c + rng.NextUnitVector() * 0.1f *
                             static_cast<float>(rng.NextDouble()));
  }
  Histogram3D h(16);
  h.Build(points);
  const AABB around_first(Vec3(0.1f, 0.1f, 0.1f), Vec3(0.4f, 0.4f, 0.4f));
  const double est = h.EstimateCount(around_first);
  int exact = 0;
  for (const Vec3& p : points) {
    if (around_first.Contains(p)) ++exact;
  }
  EXPECT_NEAR(est, exact, 0.15 * exact + 50);
}

// ---------- Table ----------

TEST(TableTest, FormatsAlignedColumns) {
  Table t("demo");
  t.SetHeader({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer-name", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer-name"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, MissingCellsRenderEmpty) {
  Table t("demo");
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"1"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| 1"), std::string::npos);
}

TEST(TableTest, NumberFormatters) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
  EXPECT_EQ(Table::Count(0), "0");
  EXPECT_EQ(Table::Count(999), "999");
  EXPECT_EQ(Table::Count(1000), "1,000");
  EXPECT_EQ(Table::Count(1234567), "1,234,567");
  EXPECT_EQ(Table::Megabytes(1024 * 1024), "1.00 MB");
}

// ---------- Status / Result ----------

TEST(StatusTest, OkByDefault) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.Value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(ResultTest, MoveValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  const std::vector<int> v = r.MoveValue();
  EXPECT_EQ(v.size(), 3u);
}

Status FailingOperation() { return Status::IOError("disk on fire"); }
Status Propagates() {
  OCTOPUS_RETURN_NOT_OK(FailingOperation());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  const Status s = Propagates();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kIOError);
}

}  // namespace
}  // namespace octopus
