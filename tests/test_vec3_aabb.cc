// Copyright 2026 The OCTOPUS Reproduction Authors
// Unit tests for the Vec3 / AABB geometric substrate.
#include <gtest/gtest.h>

#include "common/aabb.h"
#include "common/rng.h"
#include "common/vec3.h"

namespace octopus {
namespace {

TEST(Vec3Test, Arithmetic) {
  const Vec3 a(1, 2, 3);
  const Vec3 b(4, 5, 6);
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0f, Vec3(2, 4, 6));
  EXPECT_EQ(2.0f * a, Vec3(2, 4, 6));
  EXPECT_EQ(a / 2.0f, Vec3(0.5f, 1.0f, 1.5f));
}

TEST(Vec3Test, CompoundAssignment) {
  Vec3 v(1, 1, 1);
  v += Vec3(1, 2, 3);
  EXPECT_EQ(v, Vec3(2, 3, 4));
  v -= Vec3(1, 1, 1);
  EXPECT_EQ(v, Vec3(1, 2, 3));
  v *= 3.0f;
  EXPECT_EQ(v, Vec3(3, 6, 9));
}

TEST(Vec3Test, DotCrossNorm) {
  const Vec3 x(1, 0, 0);
  const Vec3 y(0, 1, 0);
  EXPECT_FLOAT_EQ(x.Dot(y), 0.0f);
  EXPECT_EQ(x.Cross(y), Vec3(0, 0, 1));
  EXPECT_FLOAT_EQ(Vec3(3, 4, 0).Norm(), 5.0f);
  EXPECT_FLOAT_EQ(Vec3(3, 4, 0).SquaredNorm(), 25.0f);
}

TEST(Vec3Test, MinMax) {
  const Vec3 a(1, 5, 3);
  const Vec3 b(2, 4, 3);
  EXPECT_EQ(Vec3::Min(a, b), Vec3(1, 4, 3));
  EXPECT_EQ(Vec3::Max(a, b), Vec3(2, 5, 3));
}

TEST(Vec3Test, Distance) {
  EXPECT_FLOAT_EQ(Distance(Vec3(0, 0, 0), Vec3(1, 2, 2)), 3.0f);
  EXPECT_FLOAT_EQ(SquaredDistance(Vec3(0, 0, 0), Vec3(1, 2, 2)), 9.0f);
}

TEST(AABBTest, DefaultIsEmpty) {
  const AABB box;
  EXPECT_TRUE(box.Empty());
  EXPECT_DOUBLE_EQ(box.Volume(), 0.0);
  EXPECT_FALSE(box.Contains(Vec3(0, 0, 0)));
}

TEST(AABBTest, ExtendFromEmptyYieldsTightBound) {
  AABB box;
  box.Extend(Vec3(1, 2, 3));
  box.Extend(Vec3(-1, 0, 5));
  EXPECT_EQ(box.min, Vec3(-1, 0, 3));
  EXPECT_EQ(box.max, Vec3(1, 2, 5));
  EXPECT_FALSE(box.Empty());
}

TEST(AABBTest, ContainsIsClosed) {
  const AABB box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  EXPECT_TRUE(box.Contains(Vec3(0, 0, 0)));
  EXPECT_TRUE(box.Contains(Vec3(1, 1, 1)));
  EXPECT_TRUE(box.Contains(Vec3(0.5f, 0.5f, 0.5f)));
  EXPECT_FALSE(box.Contains(Vec3(1.0001f, 0.5f, 0.5f)));
  EXPECT_FALSE(box.Contains(Vec3(-0.0001f, 0.5f, 0.5f)));
}

TEST(AABBTest, ContainsBox) {
  const AABB outer(Vec3(0, 0, 0), Vec3(2, 2, 2));
  const AABB inner(Vec3(0.5f, 0.5f, 0.5f), Vec3(1, 1, 1));
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
  EXPECT_TRUE(outer.Contains(outer));
}

TEST(AABBTest, Intersects) {
  const AABB a(Vec3(0, 0, 0), Vec3(1, 1, 1));
  const AABB b(Vec3(0.5f, 0.5f, 0.5f), Vec3(2, 2, 2));
  const AABB c(Vec3(1.5f, 1.5f, 1.5f), Vec3(2, 2, 2));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  // Touching boxes intersect (closed boxes).
  const AABB d(Vec3(1, 0, 0), Vec3(2, 1, 1));
  EXPECT_TRUE(a.Intersects(d));
}

TEST(AABBTest, VolumeMarginCenter) {
  const AABB box(Vec3(0, 0, 0), Vec3(2, 3, 4));
  EXPECT_DOUBLE_EQ(box.Volume(), 24.0);
  EXPECT_DOUBLE_EQ(box.Margin(), 18.0);
  EXPECT_EQ(box.Center(), Vec3(1, 1.5f, 2));
}

TEST(AABBTest, UnionCoversBoth) {
  const AABB a(Vec3(0, 0, 0), Vec3(1, 1, 1));
  const AABB b(Vec3(2, -1, 0), Vec3(3, 0.5f, 2));
  const AABB u = AABB::Union(a, b);
  EXPECT_TRUE(u.Contains(a));
  EXPECT_TRUE(u.Contains(b));
}

TEST(AABBTest, Inflated) {
  const AABB box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  const AABB big = box.Inflated(0.5f);
  EXPECT_EQ(big.min, Vec3(-0.5f, -0.5f, -0.5f));
  EXPECT_EQ(big.max, Vec3(1.5f, 1.5f, 1.5f));
}

TEST(AABBTest, SquaredDistanceToInsideIsZero) {
  const AABB box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  EXPECT_FLOAT_EQ(box.SquaredDistanceTo(Vec3(0.5f, 0.5f, 0.5f)), 0.0f);
  EXPECT_FLOAT_EQ(box.SquaredDistanceTo(Vec3(0, 0, 0)), 0.0f);  // boundary
}

TEST(AABBTest, SquaredDistanceToOutside) {
  const AABB box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  EXPECT_FLOAT_EQ(box.SquaredDistanceTo(Vec3(2, 0.5f, 0.5f)), 1.0f);
  EXPECT_FLOAT_EQ(box.SquaredDistanceTo(Vec3(2, 2, 0.5f)), 2.0f);
  EXPECT_FLOAT_EQ(box.SquaredDistanceTo(Vec3(-1, -1, -1)), 3.0f);
}

TEST(AABBTest, SquaredDistanceConsistentWithContains) {
  Rng rng(7);
  const AABB box(Vec3(-1, -2, 0), Vec3(1, 0.5f, 3));
  const AABB sample_space(Vec3(-3, -4, -2), Vec3(3, 3, 5));
  for (int i = 0; i < 2000; ++i) {
    const Vec3 p = rng.NextPointIn(sample_space);
    const bool inside = box.Contains(p);
    const float d2 = box.SquaredDistanceTo(p);
    EXPECT_EQ(inside, d2 == 0.0f) << "point " << p << " d2=" << d2;
  }
}

TEST(AABBTest, FromCenterHalfExtent) {
  const AABB box =
      AABB::FromCenterHalfExtent(Vec3(1, 1, 1), Vec3(0.5f, 1, 2));
  EXPECT_EQ(box.min, Vec3(0.5f, 0, -1));
  EXPECT_EQ(box.max, Vec3(1.5f, 2, 3));
}

}  // namespace
}  // namespace octopus
