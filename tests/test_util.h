// Copyright 2026 The OCTOPUS Reproduction Authors
// Shared helpers for the OCTOPUS test suite.
#ifndef OCTOPUS_TESTS_TEST_UTIL_H_
#define OCTOPUS_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "common/aabb.h"
#include "mesh/mesh_builder.h"
#include "mesh/tetra_mesh.h"
#include "mesh/types.h"

namespace octopus::testing {

/// Ground truth: ids of vertices currently inside `box`, sorted.
inline std::vector<VertexId> BruteForceRangeQuery(const TetraMesh& mesh,
                                                  const AABB& box) {
  std::vector<VertexId> result;
  for (size_t v = 0; v < mesh.num_vertices(); ++v) {
    if (box.Contains(mesh.position(static_cast<VertexId>(v)))) {
      result.push_back(static_cast<VertexId>(v));
    }
  }
  return result;
}

/// Sorted copy, for order-insensitive comparisons.
inline std::vector<VertexId> Sorted(std::vector<VertexId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// A single regular tetrahedron.
inline TetraMesh MakeSingleTetMesh() {
  MeshBuilder b;
  const VertexId v0 = b.AddVertex(Vec3(0, 0, 0));
  const VertexId v1 = b.AddVertex(Vec3(1, 0, 0));
  const VertexId v2 = b.AddVertex(Vec3(0, 1, 0));
  const VertexId v3 = b.AddVertex(Vec3(0, 0, 1));
  b.AddTet(v0, v1, v2, v3);
  auto result = b.Build();
  return result.MoveValue();
}

/// Two tetrahedra sharing face (v1, v2, v3).
inline TetraMesh MakeTwoTetMesh() {
  MeshBuilder b;
  const VertexId v0 = b.AddVertex(Vec3(0, 0, 0));
  const VertexId v1 = b.AddVertex(Vec3(1, 0, 0));
  const VertexId v2 = b.AddVertex(Vec3(0, 1, 0));
  const VertexId v3 = b.AddVertex(Vec3(0, 0, 1));
  const VertexId v4 = b.AddVertex(Vec3(1, 1, 1));
  b.AddTet(v0, v1, v2, v3);
  b.AddTet(v4, v1, v2, v3);
  auto result = b.Build();
  return result.MoveValue();
}

}  // namespace octopus::testing

#endif  // OCTOPUS_TESTS_TEST_UTIL_H_
