// Copyright 2026 The OCTOPUS Reproduction Authors
// Integration tests: the full simulate -> monitor pipeline with every
// approach side by side, on all three dataset families.
#include <gtest/gtest.h>

#include <memory>

#include "index/linear_scan.h"
#include "index/lur_tree.h"
#include "index/octree.h"
#include "index/qu_trade.h"
#include "mesh/generators/datasets.h"
#include "octopus/octopus_con.h"
#include "octopus/query_executor.h"
#include "sim/animation_deformer.h"
#include "sim/plasticity_deformer.h"
#include "sim/simulation.h"
#include "sim/wave_deformer.h"
#include "sim/workload.h"
#include "test_util.h"

namespace octopus {
namespace {

using testing::BruteForceRangeQuery;
using testing::Sorted;

// Runs `steps` simulation steps; after each, every index must return the
// brute-force result for every generated query.
void RunEqualityPipeline(TetraMesh* mesh, Deformer* deformer, int steps,
                         int queries_per_step, double selectivity,
                         std::vector<std::unique_ptr<SpatialIndex>> indexes,
                         uint64_t seed) {
  for (auto& index : indexes) index->Build(*mesh);
  Simulation sim(mesh, deformer);
  QueryGenerator gen(*mesh);
  Rng rng(seed);
  sim.Run(steps, [&](int step) {
    for (auto& index : indexes) index->BeforeQueries(*mesh);
    for (int q = 0; q < queries_per_step; ++q) {
      const AABB box = gen.MakeQuery(&rng, selectivity);
      const auto expected = BruteForceRangeQuery(*mesh, box);
      for (auto& index : indexes) {
        std::vector<VertexId> got;
        index->RangeQuery(*mesh, box, &got);
        ASSERT_EQ(Sorted(got), expected)
            << index->Name() << " step " << step << " query " << q;
      }
    }
  });
}

std::vector<std::unique_ptr<SpatialIndex>> AllApproaches() {
  std::vector<std::unique_ptr<SpatialIndex>> v;
  v.push_back(std::make_unique<Octopus>());
  v.push_back(std::make_unique<LinearScan>());
  v.push_back(std::make_unique<ThrowawayOctree>());
  v.push_back(std::make_unique<LURTree>());
  v.push_back(std::make_unique<QUTrade>());
  return v;
}

TEST(IntegrationTest, NeuroscienceMonitoringAllApproachesAgree) {
  TetraMesh mesh = MakeNeuroMesh(0, 0.3).MoveValue();
  PlasticityDeformer deformer(0.3f * EstimateMeanEdgeLength(mesh));
  RunEqualityPipeline(&mesh, &deformer, /*steps=*/4, /*queries_per_step=*/4,
                      /*selectivity=*/0.03, AllApproaches(), 101);
}

TEST(IntegrationTest, EarthquakeConvexWithOctopusCon) {
  TetraMesh mesh =
      MakeEarthquakeMesh(EarthquakeResolution::kSF2, 0.1).MoveValue();
  WaveDeformer deformer(0.02f, 0.01f);
  auto indexes = AllApproaches();
  indexes.push_back(std::make_unique<OctopusCon>());
  RunEqualityPipeline(&mesh, &deformer, /*steps=*/4, /*queries_per_step=*/4,
                      /*selectivity=*/0.02, std::move(indexes), 103);
}

class AnimationIntegrationTest
    : public ::testing::TestWithParam<AnimationDataset> {};

TEST_P(AnimationIntegrationTest, AnimationSequenceAllApproachesAgree) {
  TetraMesh mesh = MakeAnimationMesh(GetParam(), 0.05).MoveValue();
  AnimationDeformer deformer(GetParam(),
                             2.0f * EstimateMeanEdgeLength(mesh));
  RunEqualityPipeline(&mesh, &deformer, /*steps=*/3, /*queries_per_step=*/3,
                      /*selectivity=*/0.02, AllApproaches(), 107);
}

INSTANTIATE_TEST_SUITE_P(
    AllSequences, AnimationIntegrationTest,
    ::testing::Values(AnimationDataset::kHorseGallop,
                      AnimationDataset::kFacialExpression,
                      AnimationDataset::kCamelCompress));

TEST(IntegrationTest, OctopusFootprintSmallestAmongIndexes) {
  // Paper Fig. 6(b): OCTOPUS uses less memory than every approach except
  // the (zero-overhead) linear scan. Needs a mesh with a realistic
  // surface-to-volume ratio (S shrinks with size; tiny test meshes are
  // almost all surface, which flatters nothing). The SF1 slab has
  // S ~ 0.15 at this scale.
  TetraMesh mesh =
      MakeEarthquakeMesh(EarthquakeResolution::kSF1, 0.5).MoveValue();
  auto indexes = AllApproaches();
  for (auto& index : indexes) {
    index->Build(mesh);
    index->BeforeQueries(mesh);
    // Touch the indexes with one query so lazily sized scratch exists.
    std::vector<VertexId> got;
    index->RangeQuery(
        mesh, AABB(Vec3(0.3f, 0.3f, 0.3f), Vec3(0.5f, 0.5f, 0.5f)), &got);
  }
  size_t octopus_bytes = 0;
  size_t linear_bytes = 0;
  size_t min_other = SIZE_MAX;
  for (auto& index : indexes) {
    if (index->Name() == "OCTOPUS") {
      octopus_bytes = index->FootprintBytes();
    } else if (index->Name() == "LinearScan") {
      linear_bytes = index->FootprintBytes();
    } else {
      min_other = std::min(min_other, index->FootprintBytes());
    }
  }
  EXPECT_EQ(linear_bytes, 0u);
  EXPECT_LT(octopus_bytes, min_other);
}

TEST(IntegrationTest, SixtyStepSoakOnSmallMesh) {
  // Long-run soak: 60 steps like the paper's experiments, small mesh.
  // Amplitude 0.1x edge length: over 60 steps the random-walk drift
  // accumulates to ~0.8 edge lengths, a realistic per-simulation strain.
  // (Far stronger accumulated strain eventually violates the *discrete*
  // internal-reachability premise near query boundaries; see DESIGN.md.)
  TetraMesh mesh = MakeNeuroMesh(0, 0.3).MoveValue();
  PlasticityDeformer deformer(0.1f * EstimateMeanEdgeLength(mesh));
  std::vector<std::unique_ptr<SpatialIndex>> indexes;
  indexes.push_back(std::make_unique<Octopus>());
  indexes.push_back(std::make_unique<LinearScan>());
  RunEqualityPipeline(&mesh, &deformer, /*steps=*/60, /*queries_per_step=*/2,
                      /*selectivity=*/0.05, std::move(indexes), 109);
}

}  // namespace
}  // namespace octopus
