// Copyright 2026 The OCTOPUS Reproduction Authors
// Epoch retention, spill and pinning: the bounded history layer. Covers
// the spill sidecar (append, pad, reload through the pool), the delta
// overlay's tail-page semantics (an unchanged tail is never spuriously
// rewritten, resident_bytes counts actual entry bytes, spilled pages
// read back byte-identically to the OCT2 writer), the EpochStore's
// retention policy (count cap, byte cap, history eviction, pin
// exemption), the O(window) memory bound on a K >> W run, and the
// atomicity of epoch publication under a concurrent stepper (the
// TSan-facing stress for the overlay-pointer/EpochInfo swap).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/query_engine.h"
#include "mesh/generators/grid_generator.h"
#include "mesh/mesh_io.h"
#include "server/epoch_store.h"
#include "server/versioned_backend.h"
#include "common/rng.h"
#include "sim/deformer_spec.h"
#include "sim/workload.h"
#include "storage/delta_overlay.h"
#include "storage/epoch_spill.h"
#include "storage/file_util.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace octopus {
namespace {

using server::EpochRetentionOptions;
using server::EpochStore;
using server::PinnedEpochState;
using server::VersionedBackend;

TetraMesh MakeBox(int n) {
  return GenerateBoxMesh(n, n, n, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
      .MoveValue();
}

DeformerSpec ParitySpec() {
  DeformerSpec spec;
  spec.kind = DeformerKind::kRandom;
  spec.amplitude = 0.02f;
  spec.seed = 2026;
  return spec;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// --- Retention option validation (the knobs octopus_cli serve takes) ---

TEST(EpochRetentionOptionsTest, RejectsWindowsBelowOneEpoch) {
  EpochRetentionOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.retention_epochs = 0;
  EXPECT_FALSE(options.Validate().ok());
  options.retention_epochs = 1;
  options.retention_bytes = 0;
  EXPECT_FALSE(options.Validate().ok());
  options.retention_bytes = 1;
  options.history_epochs = 0;  // smaller than the retention window
  EXPECT_FALSE(options.Validate().ok());
  options.history_epochs = 1;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(EpochRetentionOptionsTest, BackendRefusesLateAndBadConfiguration) {
  auto backend = VersionedBackend::FromMesh(MakeBox(4), 1);
  EpochRetentionOptions bad;
  bad.retention_epochs = 0;
  EXPECT_FALSE(backend->ConfigureRetention(bad).ok());
  EpochRetentionOptions good;
  EXPECT_TRUE(backend->ConfigureRetention(good).ok());
  ASSERT_TRUE(backend->BindDeformer(ParitySpec()).ok());
  // The store exists now; reconfiguring would strand its state.
  EXPECT_FALSE(backend->ConfigureRetention(good).ok());
}

// --- Spill sidecar primitives ---

TEST(EpochSpillFileTest, AppendedPagesReloadByteIdentically) {
  const std::string path = TempPath("spill_basic.oct2d");
  auto spill = storage::EpochSpillFile::Create(path, /*page_bytes=*/256,
                                               /*pool_bytes=*/1024);
  ASSERT_TRUE(spill.ok()) << spill.status().ToString();

  // A short page is zero-padded to the page size, like the OCT2 writer.
  std::vector<std::byte> content(100);
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<std::byte>(i * 7 + 1);
  }
  auto id = spill.Value()->AppendPage(content);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(id.Value(), 1u);  // page 0 is the header
  ASSERT_TRUE(spill.Value()->Sync().ok());
  EXPECT_EQ(spill.Value()->pages_written(), 1u);

  storage::PageIOStats stats;
  std::vector<std::byte> read_back(256);
  spill.Value()->pool()->CopyOut(id.Value(), 0, 256, read_back.data(),
                                 &stats);
  EXPECT_EQ(stats.page_misses, 1u);
  EXPECT_EQ(std::memcmp(read_back.data(), content.data(), content.size()),
            0);
  for (size_t i = content.size(); i < 256; ++i) {
    EXPECT_EQ(read_back[i], std::byte{0}) << "pad byte " << i;
  }

  // Whole position arrays (the in-memory backend's epochs) round-trip.
  std::vector<Vec3> positions(41);  // not a multiple of 256/12 = 21
  for (size_t i = 0; i < positions.size(); ++i) {
    positions[i] = Vec3(static_cast<float>(i), 2.5f, -1.0f);
  }
  auto first = spill.Value()->AppendPositions(positions);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(spill.Value()->Sync().ok());
  std::vector<Vec3> reloaded(positions.size());
  ASSERT_TRUE(spill.Value()
                  ->ReadPositions(first.Value(), reloaded.size(),
                                  reloaded.data(), &stats)
                  .ok());
  for (size_t i = 0; i < positions.size(); ++i) {
    EXPECT_EQ(std::memcmp(&reloaded[i], &positions[i], sizeof(Vec3)), 0)
        << "vertex " << i;
  }

  // The sidecar is a per-run cache: closing deletes it.
  spill.Value().reset();
  std::FILE* gone = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(gone, nullptr);
  if (gone != nullptr) std::fclose(gone);
}

// --- PositionOverlay tail-page semantics ---

// `num_vertices` deliberately not a multiple of entries-per-page: the
// tail page's comparison must cover exactly the real entries (garbage
// past the end would rewrite the tail every step), its stored bytes
// must match the OCT2 writer's serialization, and resident_bytes must
// count actual entry bytes, not page capacity.
TEST(DeltaOverlayTest, TailPageIsStableAndWriterIdentical) {
  const TetraMesh mesh = MakeBox(6);  // 216 vertices
  const std::string path = TempPath("tail_overlay.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           storage::SnapshotOptions{.page_bytes = 256})
                  .ok());
  auto header = storage::ReadSnapshotHeader(path);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  const storage::SnapshotHeader& h = header.Value();
  const size_t per_page = h.PositionsPerPage();  // 21 with 256B pages
  ASSERT_NE(h.num_vertices % per_page, 0u)
      << "test needs a partial tail page";
  const uint64_t tail_page =
      storage::PagesForEntries(h.num_vertices, sizeof(Vec3),
                               h.page_bytes) -
      1;
  const size_t tail_entries =
      static_cast<size_t>(h.num_vertices - tail_page * per_page);

  // Identical positions: NO page is rewritten — in particular not the
  // tail (the regression a garbage-past-end memcmp would cause).
  size_t rewritten = 99;
  auto unchanged = storage::PositionOverlay::BuildNext(
      h, nullptr, mesh.positions(), mesh.positions(), &rewritten);
  EXPECT_EQ(rewritten, 0u);
  EXPECT_EQ(unchanged->resident_pages(), 0u);
  EXPECT_EQ(unchanged->resident_bytes(), 0u);

  // Displace the last vertex: exactly the tail page is rewritten, and
  // resident_bytes counts its real entries, not the page capacity.
  std::vector<Vec3> moved = mesh.positions();
  moved.back() += Vec3(0.5f, 0, 0);
  auto overlay = storage::PositionOverlay::BuildNext(
      h, nullptr, mesh.positions(), moved, &rewritten);
  EXPECT_EQ(rewritten, 1u);
  EXPECT_EQ(overlay->resident_pages(), 1u);
  EXPECT_EQ(overlay->resident_bytes(), tail_entries * sizeof(Vec3));
  ASSERT_NE(overlay->Lookup(tail_page), nullptr);

  // Writer parity: save a snapshot of the moved positions and compare
  // the overlay's tail page byte-for-byte against the file's — entry
  // region identical, file pad all zero (what a spill would emit).
  TetraMesh moved_mesh = mesh;
  moved_mesh.mutable_positions() = moved;
  const std::string moved_path = TempPath("tail_overlay_moved.oct2");
  ASSERT_TRUE(SaveSnapshot(moved_mesh, moved_path,
                           storage::SnapshotOptions{.page_bytes = 256})
                  .ok());
  storage::FilePtr f = storage::OpenFile(moved_path, "rb");
  ASSERT_NE(f, nullptr);
  std::vector<unsigned char> file_page(h.page_bytes);
  ASSERT_EQ(std::fseek(f.get(),
                       static_cast<long>((h.positions_start_page +
                                          tail_page) *
                                         h.page_bytes),
                       SEEK_SET),
            0);
  ASSERT_EQ(std::fread(file_page.data(), 1, h.page_bytes, f.get()),
            h.page_bytes);
  EXPECT_EQ(std::memcmp(overlay->Lookup(tail_page), file_page.data(),
                        tail_entries * sizeof(Vec3)),
            0);
  for (size_t i = tail_entries * sizeof(Vec3); i < h.page_bytes; ++i) {
    EXPECT_EQ(file_page[i], 0u) << "writer pad byte " << i;
  }

  // A second identical step shares the tail page instead of rewriting.
  auto next = storage::PositionOverlay::BuildNext(h, overlay.get(), moved,
                                                  moved, &rewritten);
  EXPECT_EQ(rewritten, 0u);
  EXPECT_EQ(next->Lookup(tail_page), overlay->Lookup(tail_page));

  std::remove(path.c_str());
  std::remove(moved_path.c_str());
}

// Spilled overlay pages read back byte-identically through ReadBytes,
// and the spill reload is priced as page I/O.
TEST(DeltaOverlayTest, SpilledPagesReadBackIdentically) {
  const TetraMesh mesh = MakeBox(6);
  const std::string snap_path = TempPath("spill_overlay.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, snap_path,
                           storage::SnapshotOptions{.page_bytes = 256})
                  .ok());
  auto header = storage::ReadSnapshotHeader(snap_path);
  ASSERT_TRUE(header.ok());
  const storage::SnapshotHeader& h = header.Value();

  std::vector<Vec3> moved = mesh.positions();
  for (Vec3& p : moved) p += Vec3(0.01f, 0.02f, -0.01f);
  size_t rewritten = 0;
  auto overlay = storage::PositionOverlay::BuildNext(
      h, nullptr, mesh.positions(), moved, &rewritten);
  ASSERT_GT(rewritten, 1u);

  auto spill = storage::EpochSpillFile::Create(
      TempPath("spill_overlay.oct2d"), h.page_bytes, 4 * h.page_bytes);
  ASSERT_TRUE(spill.ok()) << spill.status().ToString();
  std::vector<storage::PageId> ids(overlay->num_page_slots(),
                                   storage::kInvalidPageId);
  for (uint64_t page = 0; page < ids.size(); ++page) {
    if (const std::byte* bytes = overlay->Lookup(page)) {
      auto id = spill.Value()->AppendPage(std::span<const std::byte>(
          bytes, overlay->resident_page_bytes(page)));
      ASSERT_TRUE(id.ok());
      ids[page] = id.Value();
    }
  }
  ASSERT_TRUE(spill.Value()->Sync().ok());
  auto twin = storage::PositionOverlay::SpilledTwin(
      *overlay, std::move(ids), spill.Value()->pool());
  EXPECT_EQ(twin->resident_bytes(), 0u);
  EXPECT_EQ(twin->spilled_pages(), overlay->resident_pages());

  storage::PageIOStats resident_io;
  storage::PageIOStats spilled_io;
  const size_t per_page = h.PositionsPerPage();
  for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
    Vec3 from_resident;
    Vec3 from_spill;
    const uint64_t page = v / per_page;
    const size_t offset = (v % per_page) * sizeof(Vec3);
    if (!overlay->ReadBytes(page, offset, sizeof(Vec3), &from_resident,
                            &resident_io)) {
      continue;
    }
    ASSERT_TRUE(twin->ReadBytes(page, offset, sizeof(Vec3), &from_spill,
                                &spilled_io));
    EXPECT_EQ(std::memcmp(&from_resident, &from_spill, sizeof(Vec3)), 0)
        << "vertex " << v;
  }
  // The reload really went through the sidecar pool (2-page cap over
  // more pages: real misses and evictions, honestly counted).
  EXPECT_GT(spilled_io.page_misses, 0u);
  std::remove(snap_path.c_str());
}

// --- EpochStore retention policy ---

PinnedEpochState InMemoryEpoch(uint64_t epoch, size_t vertices) {
  auto positions = std::make_shared<PositionEpoch>();
  positions->info = engine::EpochInfo{epoch,
                                      static_cast<uint32_t>(epoch)};
  positions->positions.assign(
      vertices, Vec3(static_cast<float>(epoch), 0.5f, -2.0f));
  return PinnedEpochState{positions->info, nullptr, positions};
}

TEST(EpochStoreTest, SpillsPastWindowEvictsPastHistoryPinsExempt) {
  EpochRetentionOptions options;
  options.retention_epochs = 2;
  options.history_epochs = 4;
  options.spill_path = TempPath("store_policy.oct2d");
  options.spill_pool_bytes = 16 * storage::kDefaultPageBytes;
  EpochStore store(storage::kDefaultPageBytes, options);
  ASSERT_TRUE(store.Init().ok());

  constexpr size_t kVertices = 100;
  for (uint64_t e = 0; e <= 6; ++e) {
    store.Publish(InMemoryEpoch(e, kVertices));
    if (e == 3) {
      ASSERT_TRUE(store.AddPin(2).ok());  // pin before it would evict
    }
  }
  // Window of 2 resident; history of 4 (+1 pinned straggler).
  EXPECT_EQ(store.resident_epochs(), 2u);
  EXPECT_LE(store.resident_bytes(), 2 * kVertices * sizeof(Vec3));
  EXPECT_GT(store.spilled_epochs(), 0u);
  EXPECT_GT(store.epochs_evicted(), 0u);
  EXPECT_GT(store.spill_pages_written(), 0u);

  // Newest is resident and exact.
  EXPECT_EQ(store.CurrentInfo().epoch, 6u);
  auto newest = store.PinNewest();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->positions->positions[0].x, 6.0f);

  // A spilled epoch inside the history window rematerializes exactly,
  // with the reload priced as page I/O.
  storage::PageIOStats reload;
  auto spilled = store.PinEpoch(4, &reload);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  ASSERT_EQ(spilled.Value().positions->positions.size(), kVertices);
  EXPECT_EQ(spilled.Value().positions->positions[0].x, 4.0f);
  EXPECT_GT(reload.PageAccesses(), 0u);

  // The pinned epoch survived past the history cap; epoch 0/1 did not.
  auto pinned = store.PinEpoch(2, &reload);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_EQ(pinned.Value().positions->positions[0].x, 2.0f);
  EXPECT_EQ(store.PinEpoch(0, &reload).status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(store.PinEpoch(1, &reload).status().code(),
            Status::Code::kNotFound);

  // Releasing the pin evicts immediately (not at the next publish).
  ASSERT_TRUE(store.ReleasePin(2).ok());
  EXPECT_EQ(store.PinEpoch(2, &reload).status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(store.ReleasePin(2).code(), Status::Code::kNotFound);
}

TEST(EpochStoreTest, ByteCapSpillsEarlyInsideTheCountWindow) {
  EpochRetentionOptions options;
  options.retention_epochs = 8;  // count alone would keep everything
  constexpr size_t kVertices = 200;
  options.retention_bytes = 2 * kVertices * sizeof(Vec3);  // ~2 epochs
  options.history_epochs = 8;
  options.spill_path = TempPath("store_bytecap.oct2d");
  EpochStore store(storage::kDefaultPageBytes, options);
  ASSERT_TRUE(store.Init().ok());
  for (uint64_t e = 0; e <= 5; ++e) {
    store.Publish(InMemoryEpoch(e, kVertices));
  }
  EXPECT_LE(store.resident_bytes(), options.retention_bytes);
  EXPECT_GT(store.spilled_epochs(), 0u);
  // Nothing was lost: every epoch in the history is still queryable.
  storage::PageIOStats reload;
  for (uint64_t e = 0; e <= 5; ++e) {
    auto pinned = store.PinEpoch(e, &reload);
    ASSERT_TRUE(pinned.ok()) << "epoch " << e << ": "
                             << pinned.status().ToString();
    EXPECT_EQ(pinned.Value().positions->positions[0].x,
              static_cast<float>(e));
  }
}

TEST(EpochStoreTest, WithoutSidecarOldEpochsEvictButPinsStayResident) {
  EpochRetentionOptions options;
  options.retention_epochs = 2;
  options.history_epochs = 8;
  options.spill_path.clear();  // spilling disabled
  EpochStore store(storage::kDefaultPageBytes, options);
  ASSERT_TRUE(store.Init().ok());
  store.Publish(InMemoryEpoch(0, 50));
  store.Publish(InMemoryEpoch(1, 50));
  ASSERT_TRUE(store.AddPin(1).ok());
  for (uint64_t e = 2; e <= 5; ++e) {
    store.Publish(InMemoryEpoch(e, 50));
  }
  storage::PageIOStats reload;
  // Unpinned epoch 0 left the window with nowhere to spill: gone.
  EXPECT_EQ(store.PinEpoch(0, &reload).status().code(),
            Status::Code::kNotFound);
  // The pinned epoch stayed resident (the documented memory cost of
  // pinning without a sidecar).
  auto pinned = store.PinEpoch(1, &reload);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned.Value().positions->positions[0].x, 1.0f);
  EXPECT_EQ(reload.PageAccesses(), 0u);  // no sidecar involved
}

// Regression: a pinned epoch that cannot spill (no sidecar) stays
// resident as pin-memory — it must NOT occupy a retention-window slot,
// or the window accounting would evict younger epochs that are well
// inside both the retention and history caps.
TEST(EpochStoreTest, PinnedUnspillableEpochDoesNotStealWindowSlots) {
  EpochRetentionOptions options;
  options.retention_epochs = 2;
  options.history_epochs = 6;
  options.spill_path.clear();  // spilling disabled
  EpochStore store(storage::kDefaultPageBytes, options);
  ASSERT_TRUE(store.Init().ok());
  store.Publish(InMemoryEpoch(0, 50));
  ASSERT_TRUE(store.AddPin(0).ok());
  for (uint64_t e = 1; e <= 3; ++e) store.Publish(InMemoryEpoch(e, 50));

  // Ring: [0 pinned-resident, 2, 3] — epoch 2 is the second-newest,
  // squarely inside the window of 2, and must have survived even
  // though the pinned epoch 0 is also still resident.
  storage::PageIOStats reload;
  auto in_window = store.PinEpoch(2, &reload);
  ASSERT_TRUE(in_window.ok()) << in_window.status().ToString();
  EXPECT_EQ(in_window.Value().positions->positions[0].x, 2.0f);
  EXPECT_TRUE(store.PinEpoch(0, &reload).ok());   // pin-kept
  EXPECT_FALSE(store.PinEpoch(1, &reload).ok());  // left the window
  EXPECT_EQ(store.resident_epochs(), 3u);  // window(2) + pinned(1)
}

// --- The acceptance bound: K >> W steps, memory O(W), history usable ---

void RunBoundedMemoryHistory(bool paged) {
  constexpr uint32_t kWindow = 3;
  constexpr uint32_t kSteps = 24;  // K >> W
  const TetraMesh mesh = MakeBox(6);

  std::unique_ptr<VersionedBackend> backend;
  std::string snap_path;
  if (paged) {
    snap_path = TempPath("bounded_history.oct2");
    ASSERT_TRUE(SaveSnapshot(mesh, snap_path,
                             storage::SnapshotOptions{.page_bytes = 1024})
                    .ok());
    auto opened = VersionedBackend::OpenSnapshot(snap_path, 64 * 1024, 1);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    backend = opened.MoveValue();
  } else {
    backend = VersionedBackend::FromMesh(mesh, 1);
  }
  EpochRetentionOptions retention;
  retention.retention_epochs = kWindow;
  retention.history_epochs = kSteps + 8;  // nothing evicts in this run
  retention.spill_path =
      TempPath(paged ? "bounded_history_p.oct2d" : "bounded_history_m.oct2d");
  ASSERT_TRUE(backend->ConfigureRetention(retention).ok());
  ASSERT_TRUE(backend->BindDeformer(ParitySpec()).ok());

  QueryGenerator gen(mesh);
  Rng rng(0xEB0C);
  const std::vector<AABB> queries = gen.MakeQueries(&rng, 8, 0.01, 0.05);

  // Baseline: the answer at step 1 (epoch 2 — ids start at 1), captured
  // while it is current.
  backend->AdvanceStep();
  auto pinned = backend->PinEpoch(0);  // 0 = pin current (epoch 2)
  ASSERT_TRUE(pinned.ok());
  ASSERT_EQ(pinned.Value().epoch, 2u);
  engine::QueryBatchResult baseline;
  PhaseStats baseline_stats;
  backend->Execute(queries, &baseline, &baseline_stats);
  ASSERT_EQ(baseline.epoch.epoch, 2u);

  // One full-overlay epoch's worth of memory, measured empirically.
  const size_t one_epoch_bytes =
      paged ? backend->epoch_store()->resident_bytes()
            : mesh.num_vertices() * sizeof(Vec3);

  for (uint32_t s = 1; s < kSteps; ++s) backend->AdvanceStep();
  ASSERT_EQ(backend->CurrentEpoch().step, kSteps);

  // O(window): resident overlay bytes stay bounded by the window (+1
  // slack for per-epoch accounting of structurally shared pages), not
  // by the K published epochs.
  const EpochStore* store = backend->epoch_store();
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->resident_epochs(), kWindow);
  EXPECT_LE(store->resident_bytes(), (kWindow + 1) * one_epoch_bytes)
      << "resident overlay memory must scale with the window, not K";
  EXPECT_GE(store->spilled_epochs(), kSteps - kWindow);
  EXPECT_GT(store->spill_pages_written(), 0u);

  // The pinned epoch, long spilled, still answers bit-identically.
  engine::QueryBatchResult historical;
  PhaseStats historical_stats;
  ASSERT_TRUE(backend
                  ->ExecuteAt(2, queries, &historical, &historical_stats)
                  .ok());
  EXPECT_EQ(historical.epoch.epoch, 2u);
  ASSERT_EQ(historical.size(), baseline.size());
  for (size_t q = 0; q < baseline.size(); ++q) {
    EXPECT_EQ(historical.per_query[q], baseline.per_query[q])
        << "query " << q;
  }
  // Reload I/O is priced into the batch stats.
  EXPECT_GT(historical_stats.page_io.PageAccesses(), 0u);

  // Unpin + a retention pass: pinning was the only thing keeping the
  // epoch once the history cap tightens is covered in test_dynamic's
  // wire test; here just verify release works and the epoch (still
  // inside history_epochs) remains queryable.
  ASSERT_TRUE(backend->UnpinEpoch(2).ok());
  engine::QueryBatchResult again;
  PhaseStats again_stats;
  ASSERT_TRUE(backend->ExecuteAt(2, queries, &again, &again_stats).ok());
  EXPECT_EQ(again.per_query, historical.per_query);

  // A never-published epoch is typed NotFound (the wire's EPOCH_GONE).
  engine::QueryBatchResult none;
  PhaseStats none_stats;
  EXPECT_EQ(backend->ExecuteAt(9999, queries, &none, &none_stats).code(),
            Status::Code::kNotFound);

  if (!snap_path.empty()) std::remove(snap_path.c_str());
}

TEST(EpochHistoryTest, BoundedMemoryAcrossManyStepsInMemory) {
  RunBoundedMemoryHistory(/*paged=*/false);
}

TEST(EpochHistoryTest, BoundedMemoryAcrossManyStepsPaged) {
  RunBoundedMemoryHistory(/*paged=*/true);
}

// --- Publication atomicity under a concurrent stepper (satellite 3) ---

// A pin taken mid-AdvanceStep must observe a whole epoch: the EpochInfo
// and the overlay/positions it travels with are swapped together, so
// epoch == step always, ids are monotonic, and executing against the
// pin matches a replay of exactly that stamped step. Run under
// TSan/ASan in CI, where a two-store publication would be a data race.
TEST(EpochHistoryTest, PublicationIsAtomicUnderConcurrentPins) {
  const TetraMesh mesh = MakeBox(5);
  const std::string snap_path = TempPath("atomic_publish.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, snap_path,
                           storage::SnapshotOptions{.page_bytes = 1024})
                  .ok());
  auto opened = VersionedBackend::OpenSnapshot(snap_path, 64 * 1024, 1);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto backend = opened.MoveValue();
  EpochRetentionOptions retention;
  retention.retention_epochs = 2;
  retention.history_epochs = 4;
  retention.spill_path = TempPath("atomic_publish.oct2d");
  ASSERT_TRUE(backend->ConfigureRetention(retention).ok());
  ASSERT_TRUE(backend->BindDeformer(ParitySpec()).ok());

  std::atomic<bool> stop{false};
  std::thread stepper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      backend->AdvanceStep();
    }
  });

  QueryGenerator gen(mesh);
  Rng rng(31337);
  uint64_t last_epoch = 0;
  for (int round = 0; round < 60; ++round) {
    const std::vector<AABB> queries = gen.MakeQueries(&rng, 2, 0.01, 0.05);
    engine::QueryBatchResult out;
    PhaseStats stats;
    backend->Execute(queries, &out, &stats);
    // Whole-epoch observation: the stamp's two halves agree (ids start
    // at 1, so epoch = step + 1), the id never runs backwards, and the
    // stats carry the same staleness.
    EXPECT_EQ(out.epoch.epoch, out.epoch.step + 1);
    EXPECT_GE(out.epoch.epoch, last_epoch);
    EXPECT_EQ(stats.stale_steps, out.epoch.step);
    last_epoch = out.epoch.epoch;

    const engine::EpochInfo current = backend->CurrentEpoch();
    EXPECT_EQ(current.epoch, current.step + 1);
    EXPECT_GE(current.epoch, last_epoch);
  }
  stop.store(true, std::memory_order_release);
  stepper.join();
  EXPECT_GT(backend->CurrentEpoch().step, 0u);
  std::remove(snap_path.c_str());
}

}  // namespace
}  // namespace octopus
