// Copyright 2026 The OCTOPUS Reproduction Authors
// The dynamic dimension, end to end: epoch-versioned backends serving
// queries while a deformer advances the mesh. Copy-on-write epoch
// semantics (pinned buffers never change), OCT2 delta pages (a step
// rewrites only displaced-position pages), K-step epoch parity between
// remote execution and the in-process engine on the same deformer
// trajectory — for both backends and 1/4 threads — and torn-read
// freedom under a stepper thread racing query execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/remote_client.h"
#include "engine/query_engine.h"
#include "mesh/generators/grid_generator.h"
#include "mesh/mesh_io.h"
#include "octopus/query_executor.h"
#include "server/server.h"
#include "server/versioned_backend.h"
#include "sim/deformer_spec.h"
#include "sim/random_deformer.h"
#include "sim/versioned_mesh.h"
#include "sim/workload.h"
#include "storage/delta_overlay.h"
#include "test_util.h"

namespace octopus {
namespace {

using client::RemoteClient;
using server::QueryServer;
using server::ServerOptions;
using server::VersionedBackend;
using testing::BruteForceRangeQuery;
using testing::Sorted;

TetraMesh MakeBox(int n) {
  return GenerateBoxMesh(n, n, n, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
      .MoveValue();
}

/// A spec both sides of a parity check can reconstruct bit-identically
/// (explicit amplitude: nobody measures the mesh).
DeformerSpec ParitySpec(DeformerKind kind) {
  DeformerSpec spec;
  spec.kind = kind;
  spec.amplitude = 0.02f;  // box meshes have ~1/n edges; safe for n <= 10
  spec.seed = 2026;
  return spec;
}

class ServerFixture {
 public:
  explicit ServerFixture(std::unique_ptr<VersionedBackend> backend,
                         ServerOptions options = {}) {
    options.bind_address = "127.0.0.1";
    options.port = 0;
    server_ = std::make_unique<QueryServer>(std::move(backend),
                                            std::move(options));
    const Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    thread_ = std::thread([this] {
      const Status run = server_->Run();
      EXPECT_TRUE(run.ok()) << run.ToString();
    });
  }

  ~ServerFixture() { StopAndJoin(); }

  void StopAndJoin() {
    if (thread_.joinable()) {
      server_->Stop();
      thread_.join();
    }
  }

  uint16_t port() const { return server_->port(); }
  QueryServer& server() { return *server_; }

 private:
  std::unique_ptr<QueryServer> server_;
  std::thread thread_;
};

std::unique_ptr<RemoteClient> MustConnect(uint16_t port) {
  auto connected = RemoteClient::Connect("127.0.0.1", port);
  EXPECT_TRUE(connected.ok()) << connected.status().ToString();
  return connected.MoveValue();
}

// --- Copy-on-write epoch semantics ---

TEST(VersionedMeshTest, PinnedEpochsAreImmutableAcrossSteps) {
  VersionedMesh versioned(MakeBox(5));
  EXPECT_FALSE(versioned.dynamic());
  EXPECT_EQ(versioned.Pin(), nullptr);  // static: zero-overhead path

  ASSERT_TRUE(
      versioned.BindDeformer(ParitySpec(DeformerKind::kRandom)).ok());
  ASSERT_TRUE(versioned.dynamic());
  const auto pin0 = versioned.Pin();
  ASSERT_NE(pin0, nullptr);
  EXPECT_EQ(pin0->info, (engine::EpochInfo{0, 0}));
  const std::vector<Vec3> epoch0_positions = pin0->positions;

  const engine::EpochInfo info1 = versioned.AdvanceStep();
  EXPECT_EQ(info1, (engine::EpochInfo{1, 1}));
  EXPECT_EQ(versioned.CurrentEpoch(), info1);

  // The buffer pinned before the step is bit-identical afterwards:
  // copy-on-write, not in-place mutation.
  ASSERT_EQ(pin0->positions.size(), epoch0_positions.size());
  for (size_t v = 0; v < epoch0_positions.size(); ++v) {
    EXPECT_EQ(pin0->positions[v].x, epoch0_positions[v].x);
    EXPECT_EQ(pin0->positions[v].y, epoch0_positions[v].y);
    EXPECT_EQ(pin0->positions[v].z, epoch0_positions[v].z);
  }

  // The new epoch actually moved (a random deformer displaces ~all).
  const auto pin1 = versioned.Pin();
  ASSERT_EQ(pin1->info.epoch, 1u);
  size_t moved = 0;
  for (size_t v = 0; v < pin1->positions.size(); ++v) {
    if (pin1->positions[v].x != epoch0_positions[v].x) ++moved;
  }
  EXPECT_GT(moved, pin1->positions.size() / 2);

  // Rebinding is refused.
  EXPECT_FALSE(
      versioned.BindDeformer(ParitySpec(DeformerKind::kWave)).ok());
}

// --- OCT2 delta pages ---

TEST(DeltaOverlayTest, StepRewritesOnlyDisplacedPositionPages) {
  const TetraMesh mesh = MakeBox(6);
  const std::string path = ::testing::TempDir() + "/overlay.oct2";
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           storage::SnapshotOptions{.page_bytes = 256})
                  .ok());
  auto header = storage::ReadSnapshotHeader(path);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  const storage::SnapshotHeader& h = header.Value();
  const size_t per_page = h.PositionsPerPage();
  const uint64_t position_pages = storage::PagesForEntries(
      h.num_vertices, sizeof(Vec3), h.page_bytes);
  ASSERT_GT(position_pages, 2u);

  // Step 1: displace exactly one vertex -> exactly one page rewritten.
  std::vector<Vec3> old_positions = mesh.positions();
  std::vector<Vec3> new_positions = old_positions;
  const size_t victim = per_page + 1;  // lives in position page 1
  new_positions[victim] += Vec3(0.5f, 0, 0);
  size_t rewritten = 0;
  auto overlay1 = storage::PositionOverlay::BuildNext(
      h, nullptr, old_positions, new_positions, &rewritten);
  EXPECT_EQ(rewritten, 1u);
  EXPECT_EQ(overlay1->resident_pages(), 1u);
  EXPECT_EQ(overlay1->Lookup(0), nullptr);
  ASSERT_NE(overlay1->Lookup(1), nullptr);
  // The rewritten page carries the OCT2 serialization of the new state.
  Vec3 read_back;
  std::memcpy(&read_back,
              overlay1->Lookup(1) + (victim % per_page) * sizeof(Vec3),
              sizeof(Vec3));
  EXPECT_EQ(read_back.x, new_positions[victim].x);

  // Step 2: displace a vertex of page 0 -> page 1's bytes are shared
  // with epoch 1 (structural copy-on-write), page 0 is fresh.
  std::vector<Vec3> step2 = new_positions;
  step2[0] += Vec3(0, 0.25f, 0);
  auto overlay2 = storage::PositionOverlay::BuildNext(
      h, overlay1.get(), new_positions, step2, &rewritten);
  EXPECT_EQ(rewritten, 1u);
  EXPECT_EQ(overlay2->resident_pages(), 2u);
  EXPECT_EQ(overlay2->Lookup(1), overlay1->Lookup(1));  // shared bytes
  ASSERT_NE(overlay2->Lookup(0), nullptr);
  std::remove(path.c_str());
}

// --- K-step epoch parity: remote vs in-process, both backends ---

/// In-process reference: the stale index is built at step 0 and the
/// same deformer trajectory advances the mesh in place.
struct InProcessReference {
  explicit InProcessReference(const TetraMesh& base, int threads)
      : mesh(base), engine(engine::QueryEngineOptions{.threads = threads}) {
    octopus.Build(mesh);
    auto deformer_result = MakeDeformer(ParitySpec(DeformerKind::kRandom));
    deformer = deformer_result.MoveValue();
    deformer->Bind(mesh);
  }

  void StepTo(uint32_t step) {
    while (current_step < step) {
      ++current_step;
      deformer->ApplyStep(static_cast<int>(current_step), &mesh);
    }
  }

  TetraMesh mesh;
  Octopus octopus;
  engine::QueryEngine engine;
  std::unique_ptr<Deformer> deformer;
  uint32_t current_step = 0;
};

void RunEpochParity(bool paged, int threads) {
  constexpr int kSteps = 4;
  const TetraMesh mesh = MakeBox(7);
  const DeformerSpec spec = ParitySpec(DeformerKind::kRandom);

  std::unique_ptr<VersionedBackend> backend;
  std::string path;
  if (paged) {
    path = ::testing::TempDir() + "/dynamic_parity_" +
           std::to_string(threads) + ".oct2";
    ASSERT_TRUE(SaveSnapshot(mesh, path,
                             storage::SnapshotOptions{.page_bytes = 1024})
                    .ok());
    auto opened =
        VersionedBackend::OpenSnapshot(path, /*pool_bytes=*/64 * 1024,
                                       threads);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    backend = opened.MoveValue();
  } else {
    backend = VersionedBackend::FromMesh(mesh, threads);
  }
  ASSERT_TRUE(backend->BindDeformer(spec).ok());

  ServerFixture fixture(std::move(backend));
  auto remote = MustConnect(fixture.port());
  EXPECT_EQ(remote->server_info().dynamic, 1);

  InProcessReference reference(mesh, /*threads=*/1);
  QueryGenerator gen(mesh);
  Rng rng(0xD1'4A11C + threads);

  for (uint32_t step = 0; step <= kSteps; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    if (step > 0) {
      auto info = remote->Step(1);
      ASSERT_TRUE(info.ok()) << info.status().ToString();
      EXPECT_EQ(info.Value().step, step);
      EXPECT_EQ(info.Value().epoch, step);
      EXPECT_EQ(info.Value().dynamic, 1);
      EXPECT_EQ(info.Value().deformer_kind,
                static_cast<uint8_t>(DeformerKind::kRandom));
      if (paged) {
        // A random deformer displaces every page's worth of positions.
        EXPECT_GT(info.Value().last_step_pages_rewritten, 0u);
      } else {
        EXPECT_EQ(info.Value().last_step_pages_rewritten, 0u);
      }
      reference.StepTo(step);
    }

    const std::vector<AABB> queries = gen.MakeQueries(&rng, 12, 0.005,
                                                      0.03);
    reference.octopus.ResetStats();
    engine::QueryBatchResult expected;
    reference.engine.Execute(reference.octopus, reference.mesh, queries,
                             &expected);

    auto result = remote->ExecuteBatch(queries);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Epoch-stamped: the batch ran at exactly this step.
    EXPECT_EQ(result.Value().stats.epoch,
              (engine::EpochInfo{step, step}));
    EXPECT_EQ(result.Value().results.epoch.step, step);
    ASSERT_EQ(result.Value().results.size(), expected.size());
    for (size_t q = 0; q < expected.size(); ++q) {
      // Bit-identical to the in-process engine on the same trajectory.
      // (Brute force is only a valid oracle on the undeformed mesh: a
      // deformed query region can be graph-disconnected, and the crawl
      // — per the paper — returns the component of its starts.)
      EXPECT_EQ(result.Value().results.per_query[q],
                expected.per_query[q])
          << "query " << q;
      if (step == 0) {
        EXPECT_EQ(Sorted(result.Value().results.per_query[q]),
                  BruteForceRangeQuery(reference.mesh, queries[q]))
            << "query " << q;
      }
    }
    // Non-I/O counters match the in-process engine too; the epoch step
    // is reported as the index staleness.
    const PhaseStats remote_stats =
        result.Value().stats.ToPhaseStats();
    EXPECT_EQ(remote_stats.queries, reference.octopus.stats().queries);
    EXPECT_EQ(remote_stats.probed_vertices,
              reference.octopus.stats().probed_vertices);
    EXPECT_EQ(remote_stats.walk_invocations,
              reference.octopus.stats().walk_invocations);
    EXPECT_EQ(remote_stats.crawl_edges,
              reference.octopus.stats().crawl_edges);
    EXPECT_EQ(remote_stats.result_vertices,
              reference.octopus.stats().result_vertices);
    EXPECT_EQ(remote_stats.stale_steps, step);
  }

  // STATS reports the authoritative step count.
  auto stats = remote->FetchStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.Value().steps_applied, static_cast<uint64_t>(kSteps));

  // Even an empty batch (fast path, no scheduler) is epoch-stamped.
  auto empty = remote->ExecuteBatch({});
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_EQ(empty.Value().stats.epoch,
            (engine::EpochInfo{kSteps, kSteps}));

  // Over-cap step counts fail locally without killing the connection.
  auto over = remote->Step(server::kMaxStepsPerFrame + 1);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), Status::Code::kInvalidArgument);
  ASSERT_TRUE(remote->FetchEpochInfo().ok());

  fixture.StopAndJoin();
  if (!path.empty()) std::remove(path.c_str());
}

TEST(DynamicServingTest, EpochParityInMemory1Thread) {
  RunEpochParity(/*paged=*/false, /*threads=*/1);
}

TEST(DynamicServingTest, EpochParityInMemory4Threads) {
  RunEpochParity(/*paged=*/false, /*threads=*/4);
}

TEST(DynamicServingTest, EpochParityPaged1Thread) {
  RunEpochParity(/*paged=*/true, /*threads=*/1);
}

TEST(DynamicServingTest, EpochParityPaged4Threads) {
  RunEpochParity(/*paged=*/true, /*threads=*/4);
}

// --- STEP frame semantics on a static server ---

TEST(DynamicServingTest, StepOnStaticServerReportsEpochZeroAndRejects) {
  ServerFixture fixture(VersionedBackend::FromMesh(MakeBox(4), 1));
  auto remote = MustConnect(fixture.port());
  EXPECT_EQ(remote->server_info().dynamic, 0);

  // steps = 0 is a pure epoch query, legal everywhere.
  auto info = remote->FetchEpochInfo();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.Value().epoch, 0u);
  EXPECT_EQ(info.Value().step, 0u);
  EXPECT_EQ(info.Value().dynamic, 0);

  // steps > 0 without a deformer is a protocol error (typed, closing).
  auto advanced = remote->Step(1);
  ASSERT_FALSE(advanced.ok());
  EXPECT_EQ(advanced.status().code(), Status::Code::kInvalidArgument)
      << advanced.status().ToString();
}

// --- Queries race an in-flight stepper without blocking or tearing ---

TEST(DynamicServingTest, ConcurrentStepsNeverTearQueryResults) {
  constexpr int kQueryRounds = 40;
  const TetraMesh base = MakeBox(6);
  const DeformerSpec spec = ParitySpec(DeformerKind::kRandom);
  auto backend = VersionedBackend::FromMesh(base, /*threads=*/1);
  ASSERT_TRUE(backend->BindDeformer(spec).ok());

  // Stepper thread: advance as fast as it can while queries execute.
  std::atomic<bool> stop{false};
  std::thread stepper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      backend->AdvanceStep();
    }
  });

  // RandomDeformer is stateless per step (the step index is mixed into
  // the RNG), so the reference can jump straight to any stamped step
  // and replay it through the same stale-index engine. A torn batch —
  // some queries at step s, some at s+1, or half-updated positions —
  // would match the reference at NO single step.
  TetraMesh reference = base;
  RandomDeformer reference_deformer(spec.amplitude, spec.seed);
  reference_deformer.Bind(reference);
  Octopus reference_octopus;
  reference_octopus.Build(base);  // stale, like the backend's
  engine::QueryEngine reference_engine;

  QueryGenerator gen(base);
  Rng rng(77);
  uint32_t max_step_seen = 0;
  bool failed = false;
  for (int round = 0; round < kQueryRounds && !failed; ++round) {
    const std::vector<AABB> queries = gen.MakeQueries(&rng, 4, 0.01,
                                                      0.05);
    engine::QueryBatchResult out;
    PhaseStats stats;
    backend->Execute(queries, &out, &stats);
    const uint32_t step = out.epoch.step;
    max_step_seen = std::max(max_step_seen, step);
    if (step > 0) {
      reference_deformer.ApplyStep(static_cast<int>(step), &reference);
    }
    engine::QueryBatchResult expected;
    reference_engine.Execute(reference_octopus,
                             step == 0 ? base : reference, queries,
                             &expected);
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(out.per_query[q], expected.per_query[q])
          << "round " << round << " query " << q << " at step " << step;
      failed |= out.per_query[q] != expected.per_query[q];
    }
  }
  stop.store(true, std::memory_order_release);
  stepper.join();
  EXPECT_FALSE(failed);
  // The stepper really ran concurrently with the queries.
  EXPECT_GT(backend->CurrentEpoch().step, 0u);
  EXPECT_GT(max_step_seen, 0u);
}

}  // namespace
}  // namespace octopus
