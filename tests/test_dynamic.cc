// Copyright 2026 The OCTOPUS Reproduction Authors
// The dynamic dimension, end to end: epoch-versioned backends serving
// queries while a deformer advances the mesh. Copy-on-write epoch
// semantics (pinned buffers never change), OCT2 delta pages (a step
// rewrites only displaced-position pages), K-step epoch parity between
// remote execution and the in-process engine on the same deformer
// trajectory — for both backends and 1/4 threads — and torn-read
// freedom under a stepper thread racing query execution.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/remote_client.h"
#include "engine/query_engine.h"
#include "mesh/generators/grid_generator.h"
#include "mesh/mesh_io.h"
#include "octopus/query_executor.h"
#include "server/server.h"
#include "server/versioned_backend.h"
#include "sim/deformer_spec.h"
#include "sim/random_deformer.h"
#include "sim/versioned_mesh.h"
#include "sim/workload.h"
#include "storage/delta_overlay.h"
#include "test_util.h"

namespace octopus {
namespace {

using client::RemoteClient;
using server::QueryServer;
using server::ServerOptions;
using server::VersionedBackend;
using testing::BruteForceRangeQuery;
using testing::Sorted;

TetraMesh MakeBox(int n) {
  return GenerateBoxMesh(n, n, n, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
      .MoveValue();
}

/// A spec both sides of a parity check can reconstruct bit-identically
/// (explicit amplitude: nobody measures the mesh).
DeformerSpec ParitySpec(DeformerKind kind) {
  DeformerSpec spec;
  spec.kind = kind;
  spec.amplitude = 0.02f;  // box meshes have ~1/n edges; safe for n <= 10
  spec.seed = 2026;
  return spec;
}

class ServerFixture {
 public:
  explicit ServerFixture(std::unique_ptr<VersionedBackend> backend,
                         ServerOptions options = {}) {
    options.bind_address = "127.0.0.1";
    options.port = 0;
    server_ = std::make_unique<QueryServer>(std::move(backend),
                                            std::move(options));
    const Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    thread_ = std::thread([this] {
      const Status run = server_->Run();
      EXPECT_TRUE(run.ok()) << run.ToString();
    });
  }

  ~ServerFixture() { StopAndJoin(); }

  void StopAndJoin() {
    if (thread_.joinable()) {
      server_->Stop();
      thread_.join();
    }
  }

  uint16_t port() const { return server_->port(); }
  QueryServer& server() { return *server_; }

 private:
  std::unique_ptr<QueryServer> server_;
  std::thread thread_;
};

std::unique_ptr<RemoteClient> MustConnect(uint16_t port) {
  auto connected = RemoteClient::Connect("127.0.0.1", port);
  EXPECT_TRUE(connected.ok()) << connected.status().ToString();
  return connected.MoveValue();
}

// --- Copy-on-write epoch semantics ---

TEST(VersionedMeshTest, PinnedEpochsAreImmutableAcrossSteps) {
  VersionedMesh versioned(MakeBox(5));
  EXPECT_FALSE(versioned.dynamic());
  EXPECT_EQ(versioned.Pin(), nullptr);  // static: zero-overhead path

  ASSERT_TRUE(
      versioned.BindDeformer(ParitySpec(DeformerKind::kRandom)).ok());
  ASSERT_TRUE(versioned.dynamic());
  const auto pin0 = versioned.Pin();
  ASSERT_NE(pin0, nullptr);
  EXPECT_EQ(pin0->info, (engine::EpochInfo{1, 0}));
  const std::vector<Vec3> epoch0_positions = pin0->positions;

  const engine::EpochInfo info1 = versioned.AdvanceStep();
  EXPECT_EQ(info1, (engine::EpochInfo{2, 1}));
  EXPECT_EQ(versioned.CurrentEpoch(), info1);

  // The buffer pinned before the step is bit-identical afterwards:
  // copy-on-write, not in-place mutation.
  ASSERT_EQ(pin0->positions.size(), epoch0_positions.size());
  for (size_t v = 0; v < epoch0_positions.size(); ++v) {
    EXPECT_EQ(pin0->positions[v].x, epoch0_positions[v].x);
    EXPECT_EQ(pin0->positions[v].y, epoch0_positions[v].y);
    EXPECT_EQ(pin0->positions[v].z, epoch0_positions[v].z);
  }

  // The new epoch actually moved (a random deformer displaces ~all).
  const auto pin1 = versioned.Pin();
  ASSERT_EQ(pin1->info.epoch, 2u);
  size_t moved = 0;
  for (size_t v = 0; v < pin1->positions.size(); ++v) {
    if (pin1->positions[v].x != epoch0_positions[v].x) ++moved;
  }
  EXPECT_GT(moved, pin1->positions.size() / 2);

  // Rebinding is refused.
  EXPECT_FALSE(
      versioned.BindDeformer(ParitySpec(DeformerKind::kWave)).ok());
}

// --- OCT2 delta pages ---

TEST(DeltaOverlayTest, StepRewritesOnlyDisplacedPositionPages) {
  const TetraMesh mesh = MakeBox(6);
  const std::string path = ::testing::TempDir() + "/overlay.oct2";
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           storage::SnapshotOptions{.page_bytes = 256})
                  .ok());
  auto header = storage::ReadSnapshotHeader(path);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  const storage::SnapshotHeader& h = header.Value();
  const size_t per_page = h.PositionsPerPage();
  const uint64_t position_pages = storage::PagesForEntries(
      h.num_vertices, sizeof(Vec3), h.page_bytes);
  ASSERT_GT(position_pages, 2u);

  // Step 1: displace exactly one vertex -> exactly one page rewritten.
  std::vector<Vec3> old_positions = mesh.positions();
  std::vector<Vec3> new_positions = old_positions;
  const size_t victim = per_page + 1;  // lives in position page 1
  new_positions[victim] += Vec3(0.5f, 0, 0);
  size_t rewritten = 0;
  auto overlay1 = storage::PositionOverlay::BuildNext(
      h, nullptr, old_positions, new_positions, &rewritten);
  EXPECT_EQ(rewritten, 1u);
  EXPECT_EQ(overlay1->resident_pages(), 1u);
  EXPECT_EQ(overlay1->Lookup(0), nullptr);
  ASSERT_NE(overlay1->Lookup(1), nullptr);
  // The rewritten page carries the OCT2 serialization of the new state.
  Vec3 read_back;
  std::memcpy(&read_back,
              overlay1->Lookup(1) + (victim % per_page) * sizeof(Vec3),
              sizeof(Vec3));
  EXPECT_EQ(read_back.x, new_positions[victim].x);

  // Step 2: displace a vertex of page 0 -> page 1's bytes are shared
  // with epoch 1 (structural copy-on-write), page 0 is fresh.
  std::vector<Vec3> step2 = new_positions;
  step2[0] += Vec3(0, 0.25f, 0);
  auto overlay2 = storage::PositionOverlay::BuildNext(
      h, overlay1.get(), new_positions, step2, &rewritten);
  EXPECT_EQ(rewritten, 1u);
  EXPECT_EQ(overlay2->resident_pages(), 2u);
  EXPECT_EQ(overlay2->Lookup(1), overlay1->Lookup(1));  // shared bytes
  ASSERT_NE(overlay2->Lookup(0), nullptr);
  std::remove(path.c_str());
}

// --- K-step epoch parity: remote vs in-process, both backends ---

/// In-process reference: the stale index is built at step 0 and the
/// same deformer trajectory advances the mesh in place.
struct InProcessReference {
  explicit InProcessReference(const TetraMesh& base, int threads)
      : mesh(base), engine(engine::QueryEngineOptions{.threads = threads}) {
    octopus.Build(mesh);
    auto deformer_result = MakeDeformer(ParitySpec(DeformerKind::kRandom));
    deformer = deformer_result.MoveValue();
    deformer->Bind(mesh);
  }

  void StepTo(uint32_t step) {
    while (current_step < step) {
      ++current_step;
      deformer->ApplyStep(static_cast<int>(current_step), &mesh);
    }
  }

  TetraMesh mesh;
  Octopus octopus;
  engine::QueryEngine engine;
  std::unique_ptr<Deformer> deformer;
  uint32_t current_step = 0;
};

void RunEpochParity(bool paged, int threads) {
  constexpr int kSteps = 4;
  const TetraMesh mesh = MakeBox(7);
  const DeformerSpec spec = ParitySpec(DeformerKind::kRandom);

  std::unique_ptr<VersionedBackend> backend;
  std::string path;
  if (paged) {
    path = ::testing::TempDir() + "/dynamic_parity_" +
           std::to_string(threads) + ".oct2";
    ASSERT_TRUE(SaveSnapshot(mesh, path,
                             storage::SnapshotOptions{.page_bytes = 1024})
                    .ok());
    auto opened =
        VersionedBackend::OpenSnapshot(path, /*pool_bytes=*/64 * 1024,
                                       threads);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    backend = opened.MoveValue();
  } else {
    backend = VersionedBackend::FromMesh(mesh, threads);
  }
  ASSERT_TRUE(backend->BindDeformer(spec).ok());

  ServerFixture fixture(std::move(backend));
  auto remote = MustConnect(fixture.port());
  EXPECT_EQ(remote->server_info().dynamic, 1);

  InProcessReference reference(mesh, /*threads=*/1);
  QueryGenerator gen(mesh);
  Rng rng(0xD1'4A11C + threads);

  for (uint32_t step = 0; step <= kSteps; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    if (step > 0) {
      auto info = remote->Step(1);
      ASSERT_TRUE(info.ok()) << info.status().ToString();
      EXPECT_EQ(info.Value().step, step);
      EXPECT_EQ(info.Value().epoch, step + 1);  // ids start at 1
      EXPECT_EQ(info.Value().dynamic, 1);
      EXPECT_EQ(info.Value().deformer_kind,
                static_cast<uint8_t>(DeformerKind::kRandom));
      if (paged) {
        // A random deformer displaces every page's worth of positions.
        EXPECT_GT(info.Value().last_step_pages_rewritten, 0u);
      } else {
        EXPECT_EQ(info.Value().last_step_pages_rewritten, 0u);
      }
      reference.StepTo(step);
    }

    const std::vector<AABB> queries = gen.MakeQueries(&rng, 12, 0.005,
                                                      0.03);
    reference.octopus.ResetStats();
    engine::QueryBatchResult expected;
    reference.engine.Execute(reference.octopus, reference.mesh, queries,
                             &expected);

    auto result = remote->ExecuteBatch(queries);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Epoch-stamped: the batch ran at exactly this step.
    EXPECT_EQ(result.Value().stats.epoch,
              (engine::EpochInfo{step + 1, step}));
    EXPECT_EQ(result.Value().results.epoch.step, step);
    ASSERT_EQ(result.Value().results.size(), expected.size());
    for (size_t q = 0; q < expected.size(); ++q) {
      // Bit-identical to the in-process engine on the same trajectory.
      // (Brute force is only a valid oracle on the undeformed mesh: a
      // deformed query region can be graph-disconnected, and the crawl
      // — per the paper — returns the component of its starts.)
      EXPECT_EQ(result.Value().results.per_query[q],
                expected.per_query[q])
          << "query " << q;
      if (step == 0) {
        EXPECT_EQ(Sorted(result.Value().results.per_query[q]),
                  BruteForceRangeQuery(reference.mesh, queries[q]))
            << "query " << q;
      }
    }
    // Non-I/O counters match the in-process engine too; the epoch step
    // is reported as the index staleness.
    const PhaseStats remote_stats =
        result.Value().stats.ToPhaseStats();
    EXPECT_EQ(remote_stats.queries, reference.octopus.stats().queries);
    EXPECT_EQ(remote_stats.probed_vertices,
              reference.octopus.stats().probed_vertices);
    EXPECT_EQ(remote_stats.walk_invocations,
              reference.octopus.stats().walk_invocations);
    EXPECT_EQ(remote_stats.crawl_edges,
              reference.octopus.stats().crawl_edges);
    EXPECT_EQ(remote_stats.result_vertices,
              reference.octopus.stats().result_vertices);
    EXPECT_EQ(remote_stats.stale_steps, step);
  }

  // STATS reports the authoritative step count.
  auto stats = remote->FetchStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.Value().steps_applied, static_cast<uint64_t>(kSteps));

  // Even an empty batch (fast path, no scheduler) is epoch-stamped.
  auto empty = remote->ExecuteBatch({});
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_EQ(empty.Value().stats.epoch,
            (engine::EpochInfo{kSteps + 1, kSteps}));

  // Over-cap step counts fail locally without killing the connection.
  auto over = remote->Step(server::kMaxStepsPerFrame + 1);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), Status::Code::kInvalidArgument);
  ASSERT_TRUE(remote->FetchEpochInfo().ok());

  fixture.StopAndJoin();
  if (!path.empty()) std::remove(path.c_str());
}

TEST(DynamicServingTest, EpochParityInMemory1Thread) {
  RunEpochParity(/*paged=*/false, /*threads=*/1);
}

TEST(DynamicServingTest, EpochParityInMemory4Threads) {
  RunEpochParity(/*paged=*/false, /*threads=*/4);
}

TEST(DynamicServingTest, EpochParityPaged1Thread) {
  RunEpochParity(/*paged=*/true, /*threads=*/1);
}

TEST(DynamicServingTest, EpochParityPaged4Threads) {
  RunEpochParity(/*paged=*/true, /*threads=*/4);
}

// --- Pinned repeatable reads over the wire (OCTP v3) ---

/// The acceptance path end to end: pin an epoch, step far past the
/// retention window (the pinned epoch spills to the .oct2d sidecar),
/// re-query it by id — bit-identical to the answer captured while it
/// was current. Unpinned history past the cap is EPOCH_GONE (typed,
/// connection survives), and unpinning the epoch makes it evictable.
void RunRepeatableRead(bool paged) {
  constexpr uint32_t kWindow = 2;
  constexpr uint32_t kHistory = 3;
  constexpr uint32_t kSteps = 10;  // K >> W
  const TetraMesh mesh = MakeBox(6);
  const DeformerSpec spec = ParitySpec(DeformerKind::kRandom);

  std::unique_ptr<VersionedBackend> backend;
  std::string path;
  if (paged) {
    path = ::testing::TempDir() + "/repeatable.oct2";
    ASSERT_TRUE(SaveSnapshot(mesh, path,
                             storage::SnapshotOptions{.page_bytes = 1024})
                    .ok());
    auto opened =
        VersionedBackend::OpenSnapshot(path, /*pool_bytes=*/64 * 1024, 1);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    backend = opened.MoveValue();
  } else {
    backend = VersionedBackend::FromMesh(mesh, 1);
  }
  server::EpochRetentionOptions retention;
  retention.retention_epochs = kWindow;
  retention.history_epochs = kHistory;
  retention.spill_path = ::testing::TempDir() + "/repeatable_" +
                         (paged ? "p" : "m") + ".oct2d";
  ASSERT_TRUE(backend->ConfigureRetention(retention).ok());
  ASSERT_TRUE(backend->BindDeformer(spec).ok());
  VersionedBackend* raw_backend = backend.get();

  ServerFixture fixture(std::move(backend));
  auto remote = MustConnect(fixture.port());

  // Advance one step (epoch 2: ids start at 1 for the initial state)
  // and pin it ("pin what I'm seeing": field 0).
  ASSERT_TRUE(remote->Step(1).ok());
  auto pinned = remote->PinEpoch(0);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_EQ(pinned.Value().epoch, 2u);
  EXPECT_EQ(pinned.Value().step, 1u);

  QueryGenerator gen(mesh);
  Rng rng(0x9E9);
  const std::vector<AABB> queries = gen.MakeQueries(&rng, 10, 0.005,
                                                    0.04);
  auto live = remote->ExecuteBatch(queries);  // epoch 2 is current
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  ASSERT_EQ(live.Value().stats.epoch, (engine::EpochInfo{2, 1}));

  // Step far past the retention window: epoch 2 leaves memory.
  for (uint32_t s = 1; s < kSteps; ++s) {
    ASSERT_TRUE(remote->Step(1).ok());
  }
  const server::EpochStore* store = raw_backend->epoch_store();
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->resident_epochs(), kWindow);
  EXPECT_GT(store->spill_pages_written(), 0u);

  // Repeatable read: the pinned epoch answers bit-identically to its
  // live-epoch answer, spill + reload notwithstanding.
  auto replay = remote->ExecuteBatch(queries, /*epoch=*/2);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay.Value().stats.epoch, (engine::EpochInfo{2, 1}));
  EXPECT_EQ(replay.Value().results.epoch.step, 1u);
  ASSERT_EQ(replay.Value().results.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(replay.Value().results.per_query[q],
              live.Value().results.per_query[q])
        << "query " << q;
  }

  // An unpinned epoch past the history cap is a typed EPOCH_GONE; the
  // connection survives and current-epoch queries still work.
  auto gone = remote->ExecuteBatch(queries, /*epoch=*/3);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), Status::Code::kNotFound)
      << gone.status().ToString();
  auto still_alive = remote->ExecuteBatch(queries);
  ASSERT_TRUE(still_alive.ok()) << still_alive.status().ToString();
  EXPECT_EQ(still_alive.Value().stats.epoch.step, kSteps);

  // Pinning an evicted epoch is EPOCH_GONE too.
  auto pin_gone = remote->PinEpoch(4);
  ASSERT_FALSE(pin_gone.ok());
  EXPECT_EQ(pin_gone.status().code(), Status::Code::kNotFound);
  // Unpinning an epoch this session never pinned is refused.
  auto not_ours = remote->UnpinEpoch(kSteps);
  ASSERT_FALSE(not_ours.ok());
  EXPECT_EQ(not_ours.status().code(), Status::Code::kNotFound);

  // Releasing the pin evicts the (far out of window) epoch immediately.
  auto released = remote->UnpinEpoch(2);
  ASSERT_TRUE(released.ok()) << released.status().ToString();
  auto after_release = remote->ExecuteBatch(queries, /*epoch=*/2);
  ASSERT_FALSE(after_release.ok());
  EXPECT_EQ(after_release.status().code(), Status::Code::kNotFound);

  // A dying session releases its pins: pin from a second connection,
  // drop it, and watch the epoch become evictable at the next step.
  {
    auto doomed = MustConnect(fixture.port());
    auto pin2 = doomed->PinEpoch(0);
    ASSERT_TRUE(pin2.ok()) << pin2.status().ToString();
    EXPECT_EQ(pin2.Value().epoch, kSteps + 1);
  }  // disconnect releases the pin server-side
  for (uint32_t s = 0; s < kHistory + kWindow + 1; ++s) {
    ASSERT_TRUE(remote->Step(1).ok());
  }
  auto dead_pin = remote->ExecuteBatch(queries, /*epoch=*/kSteps + 1);
  ASSERT_FALSE(dead_pin.ok());
  EXPECT_EQ(dead_pin.status().code(), Status::Code::kNotFound)
      << "a dead session's pin must not keep its epoch alive";

  fixture.StopAndJoin();
  if (!path.empty()) std::remove(path.c_str());
}

TEST(DynamicServingTest, PinnedRepeatableReadsInMemory) {
  RunRepeatableRead(/*paged=*/false);
}

TEST(DynamicServingTest, PinnedRepeatableReadsPaged) {
  RunRepeatableRead(/*paged=*/true);
}

// A v2 peer (the epoch-less QUERY_BATCH layout) is rejected in the
// handshake with a typed version error — its frames are never
// misparsed against the v3 layout.
TEST(DynamicServingTest, V2PeerGetsTypedVersionError) {
  ServerFixture fixture(VersionedBackend::FromMesh(MakeBox(4), 1));
  // Hand-roll a v2 HELLO through a raw socket: RemoteClient always
  // speaks the current version.
  server::Buffer hello;
  server::HelloFrame old_peer;
  old_peer.version = 2;
  server::AppendHello(&hello, old_peer);
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fixture.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(send(fd, hello.data(), hello.size(), 0),
            static_cast<ssize_t>(hello.size()));
  uint8_t header[server::kFrameHeaderBytes];
  size_t have = 0;
  while (have < sizeof(header)) {
    const ssize_t n = recv(fd, header + have, sizeof(header) - have, 0);
    ASSERT_GT(n, 0);
    have += static_cast<size_t>(n);
  }
  auto parsed = server::ParseFrameHeader(header);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.Value().type, server::FrameType::kError);
  server::Buffer payload(parsed.Value().payload_bytes);
  have = 0;
  while (have < payload.size()) {
    const ssize_t n =
        recv(fd, payload.data() + have, payload.size() - have, 0);
    ASSERT_GT(n, 0);
    have += static_cast<size_t>(n);
  }
  server::ErrorFrame error;
  ASSERT_TRUE(server::ParseError(payload, &error).ok());
  EXPECT_EQ(error.code, server::ErrorCode::kVersionMismatch)
      << server::ErrorCodeName(error.code);
  close(fd);
}

// Pins on a static server: pinning "current" is a harmless no-op (one
// client code path for both server kinds); naming a historical epoch is
// EPOCH_GONE — a static server has only its load-time state.
TEST(DynamicServingTest, StaticServerPinsAreNoOpsAndHistoryIsGone) {
  ServerFixture fixture(VersionedBackend::FromMesh(MakeBox(4), 1));
  auto remote = MustConnect(fixture.port());
  auto pinned = remote->PinEpoch(0);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_EQ(pinned.Value().epoch, 0u);
  auto gone = remote->ExecuteBatch(
      std::vector<AABB>{AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))}, /*epoch=*/5);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), Status::Code::kNotFound);
}

// --- STEP frame semantics on a static server ---

TEST(DynamicServingTest, StepOnStaticServerReportsEpochZeroAndRejects) {
  ServerFixture fixture(VersionedBackend::FromMesh(MakeBox(4), 1));
  auto remote = MustConnect(fixture.port());
  EXPECT_EQ(remote->server_info().dynamic, 0);

  // steps = 0 is a pure epoch query, legal everywhere.
  auto info = remote->FetchEpochInfo();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.Value().epoch, 0u);
  EXPECT_EQ(info.Value().step, 0u);
  EXPECT_EQ(info.Value().dynamic, 0);

  // steps > 0 without a deformer is a protocol error (typed, closing).
  auto advanced = remote->Step(1);
  ASSERT_FALSE(advanced.ok());
  EXPECT_EQ(advanced.status().code(), Status::Code::kInvalidArgument)
      << advanced.status().ToString();
}

// --- Queries race an in-flight stepper without blocking or tearing ---

TEST(DynamicServingTest, ConcurrentStepsNeverTearQueryResults) {
  constexpr int kQueryRounds = 40;
  const TetraMesh base = MakeBox(6);
  const DeformerSpec spec = ParitySpec(DeformerKind::kRandom);
  auto backend = VersionedBackend::FromMesh(base, /*threads=*/1);
  ASSERT_TRUE(backend->BindDeformer(spec).ok());

  // Stepper thread: advance as fast as it can while queries execute.
  std::atomic<bool> stop{false};
  std::thread stepper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      backend->AdvanceStep();
    }
  });

  // RandomDeformer is stateless per step (the step index is mixed into
  // the RNG), so the reference can jump straight to any stamped step
  // and replay it through the same stale-index engine. A torn batch —
  // some queries at step s, some at s+1, or half-updated positions —
  // would match the reference at NO single step.
  TetraMesh reference = base;
  RandomDeformer reference_deformer(spec.amplitude, spec.seed);
  reference_deformer.Bind(reference);
  Octopus reference_octopus;
  reference_octopus.Build(base);  // stale, like the backend's
  engine::QueryEngine reference_engine;

  QueryGenerator gen(base);
  Rng rng(77);
  uint32_t max_step_seen = 0;
  bool failed = false;
  for (int round = 0; round < kQueryRounds && !failed; ++round) {
    const std::vector<AABB> queries = gen.MakeQueries(&rng, 4, 0.01,
                                                      0.05);
    engine::QueryBatchResult out;
    PhaseStats stats;
    backend->Execute(queries, &out, &stats);
    const uint32_t step = out.epoch.step;
    max_step_seen = std::max(max_step_seen, step);
    if (step > 0) {
      reference_deformer.ApplyStep(static_cast<int>(step), &reference);
    }
    engine::QueryBatchResult expected;
    reference_engine.Execute(reference_octopus,
                             step == 0 ? base : reference, queries,
                             &expected);
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(out.per_query[q], expected.per_query[q])
          << "round " << round << " query " << q << " at step " << step;
      failed |= out.per_query[q] != expected.per_query[q];
    }
  }
  stop.store(true, std::memory_order_release);
  stepper.join();
  EXPECT_FALSE(failed);
  // The stepper really ran concurrently with the queries.
  EXPECT_GT(backend->CurrentEpoch().step, 0u);
  EXPECT_GT(max_step_seen, 0u);
}

}  // namespace
}  // namespace octopus
