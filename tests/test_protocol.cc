// Copyright 2026 The OCTOPUS Reproduction Authors
// Wire-protocol tests: every frame type must round-trip encode -> parse
// bit-exactly, and every class of malformed input (truncation, size
// lies, bad types, oversized payloads) must fail with a Status — never
// crash, never read out of bounds.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <vector>

#include "fuzz/fuzz_targets.h"
#include "server/protocol.h"

namespace octopus::server {
namespace {

/// Splits an encoded buffer into (header, payload) and checks the
/// announced length matches the encoded payload.
struct SplitFrame {
  FrameHeader header;
  std::span<const uint8_t> payload;
};

SplitFrame Split(const Buffer& buffer) {
  auto header = ParseFrameHeader(buffer);
  EXPECT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(buffer.size(),
            kFrameHeaderBytes + header.Value().payload_bytes);
  return {header.Value(),
          std::span<const uint8_t>(buffer).subspan(kFrameHeaderBytes)};
}

TEST(ProtocolTest, HelloRoundTrip) {
  Buffer buffer;
  HelloFrame hello;
  hello.flags = 0x1234;
  AppendHello(&buffer, hello);
  const SplitFrame frame = Split(buffer);
  EXPECT_EQ(frame.header.type, FrameType::kHello);

  HelloFrame parsed;
  ASSERT_TRUE(ParseHello(frame.payload, &parsed).ok());
  EXPECT_EQ(parsed.magic, kProtocolMagic);
  EXPECT_EQ(parsed.version, kProtocolVersion);
  EXPECT_EQ(parsed.flags, 0x1234);
}

TEST(ProtocolTest, WelcomeRoundTrip) {
  Buffer buffer;
  WelcomeFrame welcome;
  welcome.paged = 1;
  welcome.num_vertices = 123456789012345ull;
  welcome.page_bytes = 4096;
  welcome.max_batch_queries = 1024;
  AppendWelcome(&buffer, welcome);
  const SplitFrame frame = Split(buffer);
  EXPECT_EQ(frame.header.type, FrameType::kWelcome);

  WelcomeFrame parsed;
  ASSERT_TRUE(ParseWelcome(frame.payload, &parsed).ok());
  EXPECT_EQ(parsed.version, kProtocolVersion);
  EXPECT_EQ(parsed.paged, 1);
  EXPECT_EQ(parsed.num_vertices, welcome.num_vertices);
  EXPECT_EQ(parsed.page_bytes, welcome.page_bytes);
  EXPECT_EQ(parsed.max_batch_queries, welcome.max_batch_queries);
}

TEST(ProtocolTest, QueryBatchRoundTripBitExact) {
  std::vector<AABB> boxes;
  boxes.push_back(AABB(Vec3(0.1f, -2.5f, 3e-8f), Vec3(1.0f, 2.0f, 3.0f)));
  boxes.push_back(AABB(Vec3(-1e30f, 0.0f, 5.5f),
                       Vec3(std::numeric_limits<float>::max(), 1.0f,
                            6.25f)));
  Buffer buffer;
  AppendQueryBatch(&buffer, 42, boxes);
  const SplitFrame frame = Split(buffer);
  EXPECT_EQ(frame.header.type, FrameType::kQueryBatch);

  uint64_t request_id = 0;
  uint64_t epoch = 99;
  uint64_t span = 99;
  std::vector<AABB> parsed;
  ASSERT_TRUE(ParseQueryBatch(frame.payload, &request_id, &parsed, &epoch,
                              &span)
                  .ok());
  EXPECT_EQ(request_id, 42u);
  EXPECT_EQ(epoch, 0u);  // default: the server's current epoch
  EXPECT_EQ(span, 0u);   // default: no client span (v6)
  ASSERT_EQ(parsed.size(), boxes.size());
  for (size_t i = 0; i < boxes.size(); ++i) {
    // Bit-exact: the query a client sends is the query the engine runs.
    EXPECT_EQ(std::memcmp(&parsed[i], &boxes[i], sizeof(AABB)), 0)
        << "box " << i;
  }
}

TEST(ProtocolTest, QueryBatchCarriesHistoricalEpoch) {
  // v3: a repeatable-read client targets an exact past epoch.
  const std::vector<AABB> boxes = {AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))};
  Buffer buffer;
  AppendQueryBatch(&buffer, 8, boxes, /*epoch=*/987654321098ull);
  const SplitFrame frame = Split(buffer);
  uint64_t request_id = 0;
  uint64_t epoch = 0;
  uint64_t span = 0;
  std::vector<AABB> parsed;
  ASSERT_TRUE(ParseQueryBatch(frame.payload, &request_id, &parsed, &epoch,
                              &span)
                  .ok());
  EXPECT_EQ(request_id, 8u);
  EXPECT_EQ(epoch, 987654321098ull);
  ASSERT_EQ(parsed.size(), 1u);
}

TEST(ProtocolTest, QueryBatchCarriesClientSpanId) {
  // v6: the client's span id travels with the request so the server's
  // slow-query log (and a merged trace) can name the caller's span.
  const std::vector<AABB> boxes = {AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))};
  Buffer buffer;
  AppendQueryBatch(&buffer, 9, boxes, /*epoch=*/5,
                   /*client_span_id=*/0xfeedface12345678ull);
  const SplitFrame frame = Split(buffer);
  uint64_t request_id = 0;
  uint64_t epoch = 0;
  uint64_t span = 0;
  std::vector<AABB> parsed;
  ASSERT_TRUE(ParseQueryBatch(frame.payload, &request_id, &parsed, &epoch,
                              &span)
                  .ok());
  EXPECT_EQ(request_id, 9u);
  EXPECT_EQ(epoch, 5u);
  EXPECT_EQ(span, 0xfeedface12345678ull);
}

TEST(ProtocolTest, EmptyQueryBatchRoundTrip) {
  Buffer buffer;
  AppendQueryBatch(&buffer, 7, {});
  const SplitFrame frame = Split(buffer);
  uint64_t request_id = 0;
  uint64_t epoch = 0;
  uint64_t span = 0;
  std::vector<AABB> parsed = {AABB(Vec3(1, 1, 1), Vec3(2, 2, 2))};
  ASSERT_TRUE(ParseQueryBatch(frame.payload, &request_id, &parsed, &epoch,
                              &span)
                  .ok());
  EXPECT_EQ(request_id, 7u);
  EXPECT_TRUE(parsed.empty());
}

TEST(ProtocolTest, ResultRoundTrip) {
  BatchStatsWire stats;
  stats.probe_nanos = 111;
  stats.walk_nanos = 222;
  stats.crawl_nanos = 333;
  stats.queries = 3;
  stats.probed_vertices = 44;
  stats.walk_invocations = 5;
  stats.walk_vertices = 66;
  stats.crawl_edges = 777;
  stats.result_vertices = 8;
  stats.page_hits = 9;
  stats.page_misses = 10;
  stats.page_evictions = 11;
  stats.lease_hits = 1200;
  stats.pages_leased = 13;
  stats.pages_distinct = 14;
  stats.batch_queries = 3;
  stats.batch_requests = 2;
  stats.epoch = engine::EpochInfo{42, 7};
  stats.trace_id = 0xabcdef0123456789ull;
  const std::vector<std::vector<VertexId>> per_query = {
      {5, 1, 9}, {}, {1234567}};

  Buffer buffer;
  AppendResult(&buffer, 99, stats, per_query);
  const SplitFrame frame = Split(buffer);
  EXPECT_EQ(frame.header.type, FrameType::kResult);

  uint64_t request_id = 0;
  BatchStatsWire parsed_stats;
  std::vector<std::vector<VertexId>> parsed;
  ASSERT_TRUE(
      ParseResult(frame.payload, &request_id, &parsed_stats, &parsed)
          .ok());
  EXPECT_EQ(request_id, 99u);
  EXPECT_EQ(parsed, per_query);
  const PhaseStats round = parsed_stats.ToPhaseStats();
  EXPECT_EQ(round.probe_nanos, 111);
  EXPECT_EQ(round.walk_nanos, 222);
  EXPECT_EQ(round.crawl_nanos, 333);
  EXPECT_EQ(round.queries, 3u);
  EXPECT_EQ(round.probed_vertices, 44u);
  EXPECT_EQ(round.walk_invocations, 5u);
  EXPECT_EQ(round.walk_vertices, 66u);
  EXPECT_EQ(round.crawl_edges, 777u);
  EXPECT_EQ(round.result_vertices, 8u);
  EXPECT_EQ(round.page_io.page_hits, 9u);
  EXPECT_EQ(round.page_io.page_misses, 10u);
  EXPECT_EQ(round.page_io.page_evictions, 11u);
  // v4 lease counters round-trip through the grown stats block.
  EXPECT_EQ(round.page_io.lease_hits, 1200u);
  EXPECT_EQ(round.page_io.pages_leased, 13u);
  EXPECT_EQ(round.page_io.pages_distinct, 14u);
  EXPECT_EQ(parsed_stats.batch_queries, 3u);
  EXPECT_EQ(parsed_stats.batch_requests, 2u);
  // Epoch-stamped RESULT: the id round-trips and doubles as staleness.
  EXPECT_EQ(parsed_stats.epoch, (engine::EpochInfo{42, 7}));
  EXPECT_EQ(round.stale_steps, 7u);
  // v6: the server's flight-recorder id rides in the stats block.
  EXPECT_EQ(parsed_stats.trace_id, 0xabcdef0123456789ull);
}

TEST(ProtocolTest, StepRoundTrip) {
  Buffer buffer;
  AppendStep(&buffer, StepFrame{5});
  const SplitFrame frame = Split(buffer);
  EXPECT_EQ(frame.header.type, FrameType::kStep);
  StepFrame parsed;
  ASSERT_TRUE(ParseStep(frame.payload, &parsed).ok());
  EXPECT_EQ(parsed.steps, 5u);
  // Truncated payload must fail, never read past the end.
  EXPECT_FALSE(
      ParseStep(frame.payload.subspan(0, 4), &parsed).ok());
  // Steps execute inline on the event loop: a count above the cap is
  // rejected at parse time, before any work happens.
  Buffer capped;
  AppendStep(&capped, StepFrame{kMaxStepsPerFrame});
  ASSERT_TRUE(
      ParseStep(Split(capped).payload, &parsed).ok());
  Buffer over;
  AppendStep(&over, StepFrame{kMaxStepsPerFrame + 1});
  EXPECT_FALSE(ParseStep(Split(over).payload, &parsed).ok());
}

TEST(ProtocolTest, PinAndUnpinEpochRoundTrip) {
  for (const bool unpin : {false, true}) {
    SCOPED_TRACE(unpin ? "UNPIN_EPOCH" : "PIN_EPOCH");
    Buffer buffer;
    const PinEpochFrame request{123456789012345ull};
    if (unpin) {
      AppendUnpinEpoch(&buffer, request);
    } else {
      AppendPinEpoch(&buffer, request);
    }
    const SplitFrame frame = Split(buffer);
    EXPECT_EQ(frame.header.type,
              unpin ? FrameType::kUnpinEpoch : FrameType::kPinEpoch);
    EXPECT_EQ(frame.header.payload_bytes, 8u);
    PinEpochFrame parsed;
    ASSERT_TRUE(ParsePinEpoch(frame.payload, &parsed).ok());
    EXPECT_EQ(parsed.epoch, request.epoch);
    // Every truncation point must fail cleanly, never read past the
    // end; trailing bytes are rejected too.
    for (size_t cut = 0; cut < frame.payload.size(); ++cut) {
      EXPECT_FALSE(ParsePinEpoch(frame.payload.first(cut), &parsed).ok())
          << "cut at " << cut;
    }
    Buffer longer(buffer);
    longer.push_back(0);
    EXPECT_FALSE(ParsePinEpoch(std::span<const uint8_t>(longer)
                                   .subspan(kFrameHeaderBytes),
                               &parsed)
                     .ok());
  }
}

TEST(ProtocolTest, EpochGoneErrorRoundTrip) {
  Buffer buffer;
  ErrorFrame error;
  error.code = ErrorCode::kEpochGone;
  error.request_id = 77;
  error.message = "epoch 3 is gone: evicted from the bounded history";
  AppendError(&buffer, error);
  ErrorFrame parsed;
  ASSERT_TRUE(ParseError(std::span<const uint8_t>(buffer)
                             .subspan(kFrameHeaderBytes),
                         &parsed)
                  .ok());
  EXPECT_EQ(parsed.code, ErrorCode::kEpochGone);
  EXPECT_EQ(parsed.request_id, 77u);
  EXPECT_STREQ(ErrorCodeName(parsed.code), "EPOCH_GONE");
  // One past the newest code is still unknown.
  buffer[kFrameHeaderBytes] = 11;
  EXPECT_FALSE(ParseError(std::span<const uint8_t>(buffer)
                              .subspan(kFrameHeaderBytes),
                          &parsed)
                   .ok());
}

TEST(ProtocolTest, EpochInfoRoundTrip) {
  EpochInfoWire info;
  info.epoch = 987654321098ull;
  info.step = 4242;
  info.dynamic = 1;
  info.deformer_kind = 3;
  info.last_step_pages_rewritten = 77;
  Buffer buffer;
  AppendEpochInfo(&buffer, info);
  const SplitFrame frame = Split(buffer);
  EXPECT_EQ(frame.header.type, FrameType::kEpochInfo);
  EpochInfoWire parsed;
  ASSERT_TRUE(ParseEpochInfo(frame.payload, &parsed).ok());
  EXPECT_EQ(parsed.epoch, info.epoch);
  EXPECT_EQ(parsed.step, info.step);
  EXPECT_EQ(parsed.dynamic, 1);
  EXPECT_EQ(parsed.deformer_kind, 3);
  EXPECT_EQ(parsed.last_step_pages_rewritten, 77u);
  EXPECT_FALSE(
      ParseEpochInfo(frame.payload.subspan(0, 12), &parsed).ok());
}

TEST(ProtocolTest, BatchStatsFromPhaseStatsRoundTrip) {
  PhaseStats stats;
  stats.probe_nanos = 1;
  stats.queries = 2;
  stats.probed_vertices = 3;
  stats.crawl_edges = 4;
  stats.page_io.page_misses = 5;
  stats.page_io.lease_hits = 60;
  stats.page_io.pages_leased = 7;
  stats.page_io.pages_distinct = 8;
  const BatchStatsWire wire = BatchStatsWire::FromPhaseStats(
      stats, 7, 2, engine::EpochInfo{12, 3});
  EXPECT_EQ(wire.batch_queries, 7u);
  EXPECT_EQ(wire.batch_requests, 2u);
  EXPECT_EQ(wire.epoch.epoch, 12u);
  EXPECT_EQ(wire.epoch.step, 3u);
  const PhaseStats back = wire.ToPhaseStats();
  EXPECT_EQ(back.probe_nanos, stats.probe_nanos);
  EXPECT_EQ(back.queries, stats.queries);
  EXPECT_EQ(back.probed_vertices, stats.probed_vertices);
  EXPECT_EQ(back.crawl_edges, stats.crawl_edges);
  EXPECT_EQ(back.page_io.page_misses, stats.page_io.page_misses);
  EXPECT_EQ(back.page_io.lease_hits, stats.page_io.lease_hits);
  EXPECT_EQ(back.page_io.pages_leased, stats.page_io.pages_leased);
  EXPECT_EQ(back.page_io.pages_distinct, stats.page_io.pages_distinct);
  // The epoch step doubles as the index-staleness counter.
  EXPECT_EQ(back.stale_steps, 3u);
}

TEST(ProtocolTest, StatsRoundTrip) {
  ServerStatsWire stats;
  stats.connections_accepted = 1;
  stats.connections_active = 2;
  stats.frames_received = 3;
  stats.malformed_frames = 4;
  stats.queries_received = 500;
  stats.queries_rejected = 6;
  stats.queries_executed = 494;
  stats.batches_executed = 100;
  stats.latency_p50_nanos = 1000;
  stats.latency_p95_nanos = 2000;
  stats.latency_p99_nanos = 3000;
  stats.page_hits = 7;
  stats.page_misses = 8;
  stats.page_evictions = 9;
  stats.lease_hits = 10;
  stats.pages_leased = 11;
  stats.pages_distinct = 12;
  stats.steps_applied = 13;

  Buffer buffer;
  AppendStats(&buffer, stats);
  const SplitFrame frame = Split(buffer);
  EXPECT_EQ(frame.header.type, FrameType::kStats);

  ServerStatsWire parsed;
  ASSERT_TRUE(ParseStats(frame.payload, &parsed).ok());
  EXPECT_EQ(parsed.queries_received, 500u);
  EXPECT_EQ(parsed.queries_executed, 494u);
  EXPECT_EQ(parsed.batches_executed, 100u);
  EXPECT_EQ(parsed.latency_p99_nanos, 3000u);
  EXPECT_EQ(parsed.page_evictions, 9u);
  EXPECT_EQ(parsed.lease_hits, 10u);
  EXPECT_EQ(parsed.pages_leased, 11u);
  EXPECT_EQ(parsed.pages_distinct, 12u);
  EXPECT_EQ(parsed.steps_applied, 13u);
  EXPECT_DOUBLE_EQ(parsed.CoalesceFactor(), 4.94);
}

TEST(ProtocolTest, StatsRequestIsEmpty) {
  Buffer buffer;
  AppendStatsRequest(&buffer);
  const SplitFrame frame = Split(buffer);
  EXPECT_EQ(frame.header.type, FrameType::kStatsRequest);
  EXPECT_EQ(frame.header.payload_bytes, 0u);
}

TEST(ProtocolTest, ErrorRoundTrip) {
  Buffer buffer;
  ErrorFrame error;
  error.code = ErrorCode::kOverloaded;
  error.request_id = 321;
  error.message = "pending-query limit reached";
  AppendError(&buffer, error);
  const SplitFrame frame = Split(buffer);
  EXPECT_EQ(frame.header.type, FrameType::kError);

  ErrorFrame parsed;
  ASSERT_TRUE(ParseError(frame.payload, &parsed).ok());
  EXPECT_EQ(parsed.code, ErrorCode::kOverloaded);
  EXPECT_EQ(parsed.request_id, 321u);
  EXPECT_EQ(parsed.message, error.message);
  EXPECT_STREQ(ErrorCodeName(parsed.code), "OVERLOADED");
}

obs::QueryTraceRecord MakeTraceRecord(uint64_t seed) {
  obs::QueryTraceRecord rec;
  rec.trace_id = seed;
  rec.session_id = seed * 3 + 1;
  rec.request_id = seed * 7 + 2;
  rec.epoch = 1'000'000'000'000ull + seed;
  rec.epoch_step = static_cast<uint32_t>(seed + 10);
  rec.queries = static_cast<uint32_t>(seed + 1);
  rec.batch_queries = static_cast<uint32_t>(seed + 4);
  rec.batch_requests = static_cast<uint32_t>(seed % 3 + 1);
  rec.arrival_nanos = static_cast<int64_t>(seed) * 1'000'000;
  rec.queue_wait_nanos = 111 + static_cast<int64_t>(seed);
  rec.probe_nanos = 222;
  rec.walk_nanos = 333;
  rec.crawl_nanos = 444;
  rec.merge_nanos = 55;
  rec.serialize_nanos = 66;
  rec.total_nanos = 1231 + static_cast<int64_t>(seed);
  rec.page_accesses = 77 + seed;
  rec.lease_hits = 88;
  rec.result_vertices = 99 + seed;
  return rec;
}

TEST(ProtocolTest, TraceDumpRequestIsEmpty) {
  Buffer buffer;
  AppendTraceDumpRequest(&buffer);
  const SplitFrame frame = Split(buffer);
  EXPECT_EQ(frame.header.type, FrameType::kTraceDumpRequest);
  EXPECT_EQ(frame.header.payload_bytes, 0u);
}

TEST(ProtocolTest, TraceDumpRoundTripBitExact) {
  TraceDumpWire dump;
  dump.total_recorded = 12345;
  dump.records.push_back(MakeTraceRecord(1));
  dump.records.push_back(MakeTraceRecord(2));
  dump.records.push_back(MakeTraceRecord(3));

  Buffer buffer;
  AppendTraceDump(&buffer, dump);
  const SplitFrame frame = Split(buffer);
  EXPECT_EQ(frame.header.type, FrameType::kTraceDump);
  // Fixed-size records: the payload length is fully determined.
  EXPECT_EQ(frame.header.payload_bytes, 16u + 3 * kTraceRecordBytes);

  TraceDumpWire parsed;
  ASSERT_TRUE(ParseTraceDump(frame.payload, &parsed).ok());
  EXPECT_EQ(parsed.total_recorded, 12345u);
  ASSERT_EQ(parsed.records.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    // Defaulted operator== over every field: bit-exact round trip.
    EXPECT_EQ(parsed.records[i], dump.records[i]) << "record " << i;
  }
}

TEST(ProtocolTest, EmptyTraceDumpRoundTrip) {
  // Tracing disabled on the server: a dump with zero records (and a
  // lifetime count of zero) is a valid answer, not an error.
  TraceDumpWire dump;
  Buffer buffer;
  AppendTraceDump(&buffer, dump);
  TraceDumpWire parsed;
  parsed.records.push_back(MakeTraceRecord(9));
  ASSERT_TRUE(ParseTraceDump(Split(buffer).payload, &parsed).ok());
  EXPECT_EQ(parsed.total_recorded, 0u);
  EXPECT_TRUE(parsed.records.empty());
}

TEST(ProtocolTest, TraceDumpRejectsTruncatedPayload) {
  TraceDumpWire dump;
  dump.total_recorded = 2;
  dump.records.push_back(MakeTraceRecord(1));
  dump.records.push_back(MakeTraceRecord(2));
  Buffer buffer;
  AppendTraceDump(&buffer, dump);
  const std::span<const uint8_t> payload =
      std::span<const uint8_t>(buffer).subspan(kFrameHeaderBytes);
  TraceDumpWire parsed;
  // Every truncation point — through the header fields and through
  // every record byte — must fail cleanly, never read past the end.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(ParseTraceDump(payload.first(cut), &parsed).ok())
        << "cut at " << cut;
  }
  // Trailing garbage must be rejected too.
  Buffer extended(buffer);
  extended.push_back(0);
  EXPECT_FALSE(ParseTraceDump(std::span<const uint8_t>(extended)
                                  .subspan(kFrameHeaderBytes),
                              &parsed)
                   .ok());
}

TEST(ProtocolTest, TraceDumpRejectsCountLie) {
  // A dump claiming 4 billion records in a small payload must fail
  // before allocating anything.
  TraceDumpWire dump;
  dump.records.push_back(MakeTraceRecord(1));
  Buffer buffer;
  AppendTraceDump(&buffer, dump);
  const uint32_t huge = 0xFFFFFFFF;
  std::memcpy(buffer.data() + kFrameHeaderBytes + 8, &huge, sizeof(huge));
  TraceDumpWire parsed;
  EXPECT_FALSE(ParseTraceDump(std::span<const uint8_t>(buffer)
                                  .subspan(kFrameHeaderBytes),
                              &parsed)
                   .ok());
}

TEST(ProtocolTest, TraceDumpRejectsNonzeroReserved) {
  TraceDumpWire dump;
  dump.records.push_back(MakeTraceRecord(1));
  Buffer buffer;
  AppendTraceDump(&buffer, dump);
  buffer[kFrameHeaderBytes + 12] = 1;  // reserved u32 after the count
  TraceDumpWire parsed;
  EXPECT_FALSE(ParseTraceDump(std::span<const uint8_t>(buffer)
                                  .subspan(kFrameHeaderBytes),
                              &parsed)
                   .ok());
}

// --- Malformed input ---

TEST(ProtocolTest, HeaderRejectsUnknownType) {
  Buffer buffer;
  AppendStatsRequest(&buffer);
  buffer[4] = 0;  // below kHello
  EXPECT_FALSE(ParseFrameHeader(buffer).ok());
  buffer[4] = 200;  // far above the known range
  EXPECT_FALSE(ParseFrameHeader(buffer).ok());
  // The v3 frames are inside the range.
  buffer[4] = static_cast<uint8_t>(FrameType::kPinEpoch);
  EXPECT_TRUE(ParseFrameHeader(buffer).ok());
  buffer[4] = static_cast<uint8_t>(FrameType::kUnpinEpoch);
  EXPECT_TRUE(ParseFrameHeader(buffer).ok());
  // The v5 trace frames are the newest; one past them is not.
  buffer[4] = static_cast<uint8_t>(FrameType::kTraceDumpRequest);
  EXPECT_TRUE(ParseFrameHeader(buffer).ok());
  buffer[4] = static_cast<uint8_t>(FrameType::kTraceDump);
  EXPECT_TRUE(ParseFrameHeader(buffer).ok());
  buffer[4] = static_cast<uint8_t>(FrameType::kTraceDump) + 1;
  EXPECT_FALSE(ParseFrameHeader(buffer).ok());
}

TEST(ProtocolTest, HeaderRejectsOversizedPayload) {
  Buffer buffer(kFrameHeaderBytes, 0);
  const uint32_t huge = kMaxFramePayloadBytes + 1;
  std::memcpy(buffer.data(), &huge, sizeof(huge));
  buffer[4] = static_cast<uint8_t>(FrameType::kQueryBatch);
  EXPECT_FALSE(ParseFrameHeader(buffer).ok());
}

TEST(ProtocolTest, HeaderRejectsNonzeroReservedBytes) {
  Buffer buffer;
  AppendStatsRequest(&buffer);
  buffer[5] = 1;  // flags byte
  EXPECT_FALSE(ParseFrameHeader(buffer).ok());
}

TEST(ProtocolTest, HeaderRejectsShortBuffer) {
  const Buffer buffer(kFrameHeaderBytes - 1, 0);
  EXPECT_FALSE(ParseFrameHeader(buffer).ok());
}

TEST(ProtocolTest, QueryBatchRejectsCountMismatch) {
  Buffer buffer;
  const std::vector<AABB> boxes = {AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))};
  AppendQueryBatch(&buffer, 1, boxes);
  // Lie about the count: claim 2 queries but carry bytes for 1.
  buffer[kFrameHeaderBytes + 8] = 2;
  uint64_t request_id = 0;
  uint64_t epoch = 0;
  uint64_t span = 0;
  std::vector<AABB> parsed;
  const std::span<const uint8_t> payload =
      std::span<const uint8_t>(buffer).subspan(kFrameHeaderBytes);
  EXPECT_FALSE(
      ParseQueryBatch(payload, &request_id, &parsed, &epoch, &span).ok());
}

TEST(ProtocolTest, QueryBatchRejectsTruncatedPayload) {
  Buffer buffer;
  const std::vector<AABB> boxes = {AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))};
  AppendQueryBatch(&buffer, 1, boxes);
  const std::span<const uint8_t> payload =
      std::span<const uint8_t>(buffer).subspan(kFrameHeaderBytes);
  uint64_t request_id = 0;
  uint64_t epoch = 0;
  uint64_t span = 0;
  std::vector<AABB> parsed;
  // Every truncation point must fail cleanly — including cuts through
  // the v3 epoch and v6 client-span fields.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(ParseQueryBatch(payload.first(cut), &request_id,
                                 &parsed, &epoch, &span)
                     .ok())
        << "cut at " << cut;
  }
}

TEST(ProtocolTest, ResultRejectsTruncatedIds) {
  BatchStatsWire stats;
  const std::vector<std::vector<VertexId>> per_query = {{1, 2, 3}};
  Buffer buffer;
  AppendResult(&buffer, 5, stats, per_query);
  const std::span<const uint8_t> payload =
      std::span<const uint8_t>(buffer).subspan(kFrameHeaderBytes);
  uint64_t request_id = 0;
  BatchStatsWire parsed_stats;
  std::vector<std::vector<VertexId>> parsed;
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(ParseResult(payload.first(cut), &request_id,
                             &parsed_stats, &parsed)
                     .ok())
        << "cut at " << cut;
  }
  // Trailing garbage must be rejected too.
  Buffer extended(buffer);
  extended.push_back(0);
  EXPECT_FALSE(
      ParseResult(std::span<const uint8_t>(extended)
                      .subspan(kFrameHeaderBytes),
                  &request_id, &parsed_stats, &parsed)
          .ok());
}

TEST(ProtocolTest, ResultRejectsQueryCountLie) {
  // A RESULT claiming 4 billion queries in a small payload must fail
  // before allocating anything, not resize to the announced count.
  BatchStatsWire stats;
  const std::vector<std::vector<VertexId>> per_query = {{1, 2, 3}};
  Buffer buffer;
  AppendResult(&buffer, 5, stats, per_query);
  const uint32_t huge = 0xFFFFFFFF;
  std::memcpy(buffer.data() + kFrameHeaderBytes + 8, &huge, sizeof(huge));
  uint64_t request_id = 0;
  BatchStatsWire parsed_stats;
  std::vector<std::vector<VertexId>> parsed;
  EXPECT_FALSE(ParseResult(std::span<const uint8_t>(buffer)
                               .subspan(kFrameHeaderBytes),
                           &request_id, &parsed_stats, &parsed)
                   .ok());
}

TEST(ProtocolTest, ErrorRejectsLengthLie) {
  Buffer buffer;
  ErrorFrame error;
  error.code = ErrorCode::kInternal;
  error.message = "boom";
  AppendError(&buffer, error);
  // Claim a longer message than the payload carries.
  buffer[kFrameHeaderBytes + 12] = 200;
  ErrorFrame parsed;
  EXPECT_FALSE(ParseError(std::span<const uint8_t>(buffer)
                              .subspan(kFrameHeaderBytes),
                          &parsed)
                   .ok());
}

TEST(ProtocolTest, ErrorRejectsUnknownCode) {
  Buffer buffer;
  ErrorFrame error;
  error.code = ErrorCode::kInternal;
  AppendError(&buffer, error);
  buffer[kFrameHeaderBytes] = 99;  // no such code
  ErrorFrame parsed;
  EXPECT_FALSE(ParseError(std::span<const uint8_t>(buffer)
                              .subspan(kFrameHeaderBytes),
                          &parsed)
                   .ok());
}

TEST(ProtocolTest, HelloRejectsWrongSize) {
  Buffer buffer;
  AppendHello(&buffer, HelloFrame{});
  HelloFrame parsed;
  const std::span<const uint8_t> payload =
      std::span<const uint8_t>(buffer).subspan(kFrameHeaderBytes);
  EXPECT_TRUE(ParseHello(payload, &parsed).ok());
  EXPECT_FALSE(ParseHello(payload.first(7), &parsed).ok());
  Buffer longer(buffer);
  longer.push_back(0);
  EXPECT_FALSE(ParseHello(std::span<const uint8_t>(longer)
                              .subspan(kFrameHeaderBytes),
                          &parsed)
                   .ok());
}

// --- Shared fuzz seed corpus (fuzz/corpus/, tools/gen_fuzz_corpus.py) ---
//
// The truncation/malformation cases above seeded the corpus; replaying
// it through the exact libFuzzer entry points here means the seeds —
// and any crash reproducer later committed next to them — are covered
// by the plain gtest run, with every compiler, in addition to the
// standalone `fuzz_corpus_replay` driver and the CI fuzz smoke.

size_t ReplayCorpusDir(const std::filesystem::path& dir,
                       void (*target)(const uint8_t*, size_t)) {
  size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    EXPECT_TRUE(in.good()) << entry.path();
    const std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    target(bytes.data(), bytes.size());
    ++replayed;
  }
  return replayed;
}

TEST(ProtocolCorpusTest, ProtocolSeedsNeverCrashTheParsers) {
  const std::filesystem::path dir =
      std::filesystem::path(OCTOPUS_SOURCE_DIR) / "fuzz" / "corpus" /
      "protocol";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  // One well-formed frame of every type plus the malformed/truncated
  // boundary cases; a shrinking corpus means seeds were lost.
  EXPECT_GE(ReplayCorpusDir(dir, fuzz::FuzzProtocolFrame), 25u);
}

TEST(ProtocolCorpusTest, HttpSeedsNeverCrashTheRouter) {
  const std::filesystem::path dir =
      std::filesystem::path(OCTOPUS_SOURCE_DIR) / "fuzz" / "corpus" /
      "http";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  EXPECT_GE(ReplayCorpusDir(dir, fuzz::FuzzHttpRequest), 6u);
}

}  // namespace
}  // namespace octopus::server
