// Copyright 2026 The OCTOPUS Reproduction Authors
// Property tests for the OCTOPUS executor: the central invariant is
// exactness — OCTOPUS returns precisely the linear-scan result — across
// mesh types, deformation steps and query shapes. Also covers the
// surface-approximation accuracy trade-off and OCTOPUS-CON.
#include <gtest/gtest.h>

#include "mesh/generators/datasets.h"
#include "mesh/generators/grid_generator.h"
#include "octopus/octopus_con.h"
#include "octopus/query_executor.h"
#include "sim/plasticity_deformer.h"
#include "sim/random_deformer.h"
#include "sim/restructurer.h"
#include "sim/wave_deformer.h"
#include "sim/workload.h"
#include "test_util.h"

namespace octopus {
namespace {

using testing::BruteForceRangeQuery;
using testing::Sorted;

TetraMesh MakeBox(int n) {
  return GenerateBoxMesh(n, n, n, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
      .MoveValue();
}

// ---------- Exactness properties ----------

TEST(OctopusTest, ExactOnStaticConvexMesh) {
  const TetraMesh mesh = MakeBox(10);
  Octopus octopus;
  octopus.Build(mesh);
  QueryGenerator gen(mesh);
  Rng rng(1);
  for (int i = 0; i < 40; ++i) {
    const AABB q = gen.MakeQuery(&rng, 0.002 + 0.02 * rng.NextDouble());
    std::vector<VertexId> got;
    octopus.RangeQuery(mesh, q, &got);
    ASSERT_EQ(Sorted(got), BruteForceRangeQuery(mesh, q)) << "query " << i;
  }
}

// NOTE on query sizes in the exactness tests: the paper's reachability
// argument is geometric; its discrete edge-path version can miss a vertex
// when the query box is only 1-2 edge lengths wide (a vertex can sit
// inside the box with every neighbor outside). Paper-scale queries return
// thousands of results and are dozens of edge lengths wide, so the tests
// use selectivities that keep queries comfortably above that regime
// (>= ~100 results per query). See DESIGN.md "Correctness invariants".

TEST(OctopusTest, ExactOnNonConvexNeuroMeshUnderDeformation) {
  // The headline property: exact results on a deforming, non-convex,
  // disconnected (two-cell) mesh with NO maintenance between steps.
  TetraMesh mesh = MakeNeuroMesh(0, 0.4).MoveValue();
  Octopus octopus;
  octopus.Build(mesh);
  PlasticityDeformer deformer(0.3f * EstimateMeanEdgeLength(mesh));
  deformer.Bind(mesh);
  QueryGenerator gen(mesh);
  Rng rng(2);
  for (int step = 1; step <= 8; ++step) {
    deformer.ApplyStep(step, &mesh);
    octopus.BeforeQueries(mesh);  // no-op by design
    for (int q = 0; q < 6; ++q) {
      const AABB box = gen.MakeQuery(&rng, 0.02 + 0.03 * rng.NextDouble());
      std::vector<VertexId> got;
      octopus.RangeQuery(mesh, box, &got);
      ASSERT_EQ(Sorted(got), BruteForceRangeQuery(mesh, box))
          << "step " << step << " query " << q;
    }
  }
}

TEST(OctopusTest, ExactUnderUnpredictableRandomDeformation) {
  TetraMesh mesh = MakeBox(16);
  Octopus octopus;
  octopus.Build(mesh);
  RandomDeformer deformer(0.015f);  // ~1/4 of the grid spacing
  deformer.Bind(mesh);
  QueryGenerator gen(mesh);
  Rng rng(3);
  for (int step = 1; step <= 10; ++step) {
    deformer.ApplyStep(step, &mesh);
    for (int q = 0; q < 4; ++q) {
      const AABB box = gen.MakeQuery(&rng, 0.05);
      std::vector<VertexId> got;
      octopus.RangeQuery(mesh, box, &got);
      ASSERT_EQ(Sorted(got), BruteForceRangeQuery(mesh, box))
          << "step " << step;
    }
  }
}

TEST(OctopusTest, QuerySplitAcrossDisjointComponents) {
  // Paper Fig. 3 scenario: a query that spans two disjoint sub-meshes must
  // return results from both (each contributes its own surface starts).
  auto r = GenerateMaskedGrid(
      6, 6, 7, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)),
      [](int, int, int k) { return k <= 1 || k >= 5; });  // two slabs
  ASSERT_TRUE(r.ok());
  const TetraMesh& mesh = r.Value();
  Octopus octopus;
  octopus.Build(mesh);
  // A query column crossing the empty gap between the slabs.
  const AABB q(Vec3(0.3f, 0.3f, 0.0f), Vec3(0.7f, 0.7f, 1.0f));
  std::vector<VertexId> got;
  octopus.RangeQuery(mesh, q, &got);
  const auto expected = BruteForceRangeQuery(mesh, q);
  ASSERT_EQ(Sorted(got), expected);
  // Sanity: both slabs contributed (z spans both sides of the gap).
  bool low = false;
  bool high = false;
  for (VertexId v : got) {
    if (mesh.position(v).z < 0.4f) low = true;
    if (mesh.position(v).z > 0.6f) high = true;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(OctopusTest, EnclosedQueryUsesDirectedWalk) {
  // A query strictly inside the mesh volume contains no surface vertex:
  // phase 2 must kick in and the result must still be exact.
  const TetraMesh mesh = MakeBox(12);
  Octopus octopus;
  octopus.Build(mesh);
  const AABB q(Vec3(0.4f, 0.4f, 0.4f), Vec3(0.6f, 0.6f, 0.6f));
  std::vector<VertexId> got;
  octopus.RangeQuery(mesh, q, &got);
  EXPECT_EQ(Sorted(got), BruteForceRangeQuery(mesh, q));
  EXPECT_EQ(octopus.stats().walk_invocations, 1u);
  EXPECT_GT(octopus.stats().walk_vertices, 0u);
}

TEST(OctopusTest, EmptyQueryOutsideMesh) {
  const TetraMesh mesh = MakeBox(6);
  Octopus octopus;
  octopus.Build(mesh);
  const AABB q(Vec3(3, 3, 3), Vec3(4, 4, 4));
  std::vector<VertexId> got;
  octopus.RangeQuery(mesh, q, &got);
  EXPECT_TRUE(got.empty());
}

TEST(OctopusTest, WholeDomainQueryReturnsEverything) {
  const TetraMesh mesh = MakeNeuroMesh(0, 0.02).MoveValue();
  Octopus octopus;
  octopus.Build(mesh);
  AABB everything = mesh.ComputeBounds();
  everything = everything.Inflated(0.1f);
  std::vector<VertexId> got;
  octopus.RangeQuery(mesh, everything, &got);
  EXPECT_EQ(got.size(), mesh.num_vertices());
}

TEST(OctopusTest, ExactAfterRestructuringWithIncrementalMaintenance) {
  TetraMesh mesh = MakeBox(10);
  Octopus octopus(OctopusOptions{.support_restructuring = true});
  octopus.Build(mesh);
  Rng rng(7);
  QueryGenerator gen(mesh);
  for (int round = 0; round < 4; ++round) {
    // Interior refinement.
    auto split = SplitTetAtCentroid(
        &mesh, static_cast<TetId>(rng.NextBelow(mesh.num_tetrahedra())));
    ASSERT_TRUE(split.ok());
    octopus.OnRestructure(mesh, split.Value());
    // Surface growth.
    const SurfaceInfo info = ExtractSurface(mesh);
    const FaceKey face =
        info.surface_faces[rng.NextBelow(info.surface_faces.size())];
    const Vec3 centroid = (mesh.position(face[0]) + mesh.position(face[1]) +
                           mesh.position(face[2])) /
                          3.0f;
    const Vec3 outward = centroid - Vec3(0.5f, 0.5f, 0.5f);
    auto grow = AddTetOnSurfaceFace(&mesh, face, centroid + outward * 0.3f);
    ASSERT_TRUE(grow.ok());
    octopus.OnRestructure(mesh, grow.Value());

    for (int q = 0; q < 5; ++q) {
      const AABB box = gen.MakeQuery(&rng, 0.08 + 0.08 * rng.NextDouble());
      std::vector<VertexId> got;
      octopus.RangeQuery(mesh, box, &got);
      ASSERT_EQ(Sorted(got), BruteForceRangeQuery(mesh, box))
          << "round " << round << " query " << q;
    }
  }
}

// ---------- Phase statistics & footprint ----------

TEST(OctopusTest, StatsAccumulateAcrossQueries) {
  const TetraMesh mesh = MakeBox(8);
  Octopus octopus;
  octopus.Build(mesh);
  QueryGenerator gen(mesh);
  Rng rng(8);
  for (int i = 0; i < 10; ++i) {
    std::vector<VertexId> got;
    octopus.RangeQuery(mesh, gen.MakeQuery(&rng, 0.01), &got);
  }
  const PhaseStats& s = octopus.stats();
  EXPECT_EQ(s.queries, 10u);
  EXPECT_EQ(s.probed_vertices,
            10u * octopus.surface_index().num_surface_vertices());
  EXPECT_GT(s.probe_nanos, 0);
  EXPECT_GT(s.crawl_edges, 0u);
  EXPECT_GT(s.result_vertices, 0u);
  octopus.ResetStats();
  EXPECT_EQ(octopus.stats().queries, 0u);
}

TEST(OctopusTest, FootprintIncludesSurfaceIndexAndScratch) {
  const TetraMesh mesh = MakeBox(8);
  Octopus octopus;
  octopus.Build(mesh);
  EXPECT_GE(octopus.FootprintBytes(),
            octopus.surface_index().FootprintBytes());
  // Far below the mesh itself (the whole point of Fig. 6(b)).
  EXPECT_LT(octopus.FootprintBytes(), mesh.MemoryBytes());
}

// ---------- Surface approximation (Sec. IV-H2) ----------

class ApproximationTest : public ::testing::TestWithParam<double> {};

TEST_P(ApproximationTest, AccuracyDegradesGracefully) {
  TetraMesh mesh = MakeNeuroMesh(1, 0.05).MoveValue();
  const double fraction = GetParam();
  Octopus exact;
  exact.Build(mesh);
  Octopus approx(OctopusOptions{.surface_sample_fraction = fraction});
  approx.Build(mesh);

  QueryGenerator gen(mesh);
  Rng rng(11);
  size_t exact_total = 0;
  size_t approx_total = 0;
  for (int i = 0; i < 15; ++i) {
    const AABB q = gen.MakeQuery(&rng, 0.01);
    std::vector<VertexId> e;
    std::vector<VertexId> a;
    exact.RangeQuery(mesh, q, &e);
    approx.RangeQuery(mesh, q, &a);
    exact_total += e.size();
    approx_total += a.size();
    // Approximation can only miss results, never invent them.
    std::vector<VertexId> se = Sorted(e);
    for (VertexId v : a) {
      ASSERT_TRUE(std::binary_search(se.begin(), se.end(), v));
    }
  }
  ASSERT_GT(exact_total, 0u);
  const double accuracy = static_cast<double>(approx_total) /
                          static_cast<double>(exact_total);
  if (fraction >= 0.05) {
    // Paper Fig. 12(a): accuracy stays >90% even at strong approximation.
    EXPECT_GT(accuracy, 0.9) << "fraction " << fraction;
  } else {
    EXPECT_GT(accuracy, 0.2) << "fraction " << fraction;
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, ApproximationTest,
                         ::testing::Values(0.01, 0.05, 0.2, 1.0));

TEST(ApproximationTest, ProbesFewerVertices) {
  const TetraMesh mesh = MakeBox(10);
  Octopus approx(OctopusOptions{.surface_sample_fraction = 0.1});
  approx.Build(mesh);
  std::vector<VertexId> got;
  approx.RangeQuery(mesh, AABB(Vec3(0.2f, 0.2f, 0.2f), Vec3(0.5f, 0.5f, 0.5f)),
                    &got);
  const size_t surface = approx.surface_index().num_surface_vertices();
  EXPECT_LE(approx.stats().probed_vertices, surface / 9);
}

// ---------- OCTOPUS-CON ----------

TEST(OctopusConTest, ExactOnConvexMeshUnderAffineDeformation) {
  TetraMesh mesh =
      MakeEarthquakeMesh(EarthquakeResolution::kSF2, 0.15).MoveValue();
  OctopusCon con;
  con.Build(mesh);
  WaveDeformer deformer(0.02f, 0.01f);
  deformer.Bind(mesh);
  QueryGenerator gen(mesh);
  Rng rng(13);
  for (int step = 1; step <= 8; ++step) {
    deformer.ApplyStep(step, &mesh);  // grid is now stale — by design
    for (int q = 0; q < 5; ++q) {
      const AABB box = gen.MakeQuery(&rng, 0.002 + 0.01 * rng.NextDouble());
      std::vector<VertexId> got;
      con.RangeQuery(mesh, box, &got);
      ASSERT_EQ(Sorted(got), BruteForceRangeQuery(mesh, box))
          << "step " << step << " query " << q;
    }
  }
}

TEST(OctopusConTest, EmptyQueryOutsideMesh) {
  const TetraMesh mesh = MakeBox(6);
  OctopusCon con;
  con.Build(mesh);
  std::vector<VertexId> got;
  con.RangeQuery(mesh, AABB(Vec3(4, 4, 4), Vec3(5, 5, 5)), &got);
  EXPECT_TRUE(got.empty());
}

TEST(OctopusConTest, FinerGridShortensWalk) {
  // Paper Fig. 9(c): finer grids -> fewer vertices visited in the walk.
  const TetraMesh mesh = MakeBox(16);
  QueryGenerator gen(mesh);

  auto walk_cost = [&](int resolution) {
    OctopusCon con(OctopusConOptions{.grid_resolution = resolution});
    con.Build(mesh);
    Rng rng(17);
    for (int i = 0; i < 30; ++i) {
      std::vector<VertexId> got;
      con.RangeQuery(mesh, gen.MakeQuery(&rng, 0.001), &got);
    }
    return con.stats().walk_vertices;
  };
  const size_t coarse = walk_cost(2);    // 8 cells
  const size_t fine = walk_cost(14);     // 2744 cells
  EXPECT_LT(fine, coarse);
}

TEST(OctopusConTest, GridFootprintGrowsWithResolution) {
  const TetraMesh mesh = MakeBox(8);
  OctopusCon coarse(OctopusConOptions{.grid_resolution = 2});
  OctopusCon fine(OctopusConOptions{.grid_resolution = 18});
  coarse.Build(mesh);
  fine.Build(mesh);
  EXPECT_GT(fine.grid().FootprintBytes(), coarse.grid().FootprintBytes());
}

TEST(OctopusConTest, NoMaintenanceHooks) {
  TetraMesh mesh = MakeBox(5);
  OctopusCon con;
  con.Build(mesh);
  const size_t footprint = con.FootprintBytes();
  con.BeforeQueries(mesh);  // must be a no-op
  EXPECT_EQ(con.FootprintBytes(), footprint);
}

}  // namespace
}  // namespace octopus
