// Copyright 2026 The OCTOPUS Reproduction Authors
// Tests of the out-of-core storage engine: OCT2 snapshot round-trip and
// error paths, the buffer manager's byte cap / pin discipline / eviction
// policies, accessor-vs-mesh data parity, paged query correctness on a
// snapshot several times larger than the pool (the fig6-style workload),
// and the Hilbert layout's page-miss advantage over an arbitrary vertex
// order.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "engine/thread_pool.h"
#include "harness/bench_harness.h"
#include "mesh/generators/grid_generator.h"
#include "mesh/hilbert_layout.h"
#include "mesh/mesh_io.h"
#include "mesh/surface.h"
#include "octopus/paged_executor.h"
#include "octopus/query_executor.h"
#include "sim/workload.h"
#include "storage/buffer_manager.h"
#include "storage/paged_mesh.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace octopus {
namespace {

using storage::BufferManager;
using storage::PagedMeshAccessor;
using storage::PagedMeshStore;
using storage::PageIOStats;
using storage::SnapshotLayout;
using storage::SnapshotOptions;
using testing::BruteForceRangeQuery;
using testing::Sorted;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TetraMesh MakeBox(int n) {
  return GenerateBoxMesh(n, n, n, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
      .MoveValue();
}

/// Deterministic arbitrary-order relabeling (the paper's meshes arrive
/// in arbitrary order; the generator's native order is already fairly
/// coherent).
TetraMesh Shuffled(const TetraMesh& mesh, uint64_t seed) {
  VertexPermutation perm;
  perm.new_to_old.resize(mesh.num_vertices());
  std::iota(perm.new_to_old.begin(), perm.new_to_old.end(), 0u);
  Rng rng(seed);
  for (size_t i = perm.new_to_old.size(); i > 1; --i) {
    std::swap(perm.new_to_old[i - 1],
              perm.new_to_old[rng.NextBelow(i)]);
  }
  perm.old_to_new.resize(perm.new_to_old.size());
  for (size_t n = 0; n < perm.new_to_old.size(); ++n) {
    perm.old_to_new[perm.new_to_old[n]] = static_cast<VertexId>(n);
  }
  return ApplyPermutation(mesh, perm);
}

// ---------- Snapshot format ----------

TEST(SnapshotTest, HeaderRoundTrip) {
  const TetraMesh mesh = MakeBox(6);
  const std::string path = TempPath("snap_header.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           SnapshotOptions{.page_bytes = 512}).ok());
  auto header = storage::ReadSnapshotHeader(path);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  const storage::SnapshotHeader& h = header.Value();
  EXPECT_EQ(h.page_bytes, 512u);
  EXPECT_EQ(h.num_vertices, mesh.num_vertices());
  EXPECT_EQ(h.num_adj_entries, 2 * mesh.num_edges());
  EXPECT_EQ(h.num_tets, mesh.num_tetrahedra());
  EXPECT_EQ(h.num_surface_vertices,
            ExtractSurface(mesh).surface_vertices.size());
  EXPECT_EQ(static_cast<SnapshotLayout>(h.layout),
            SnapshotLayout::kOriginal);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsBadMagicTruncationAndGarbage) {
  const TetraMesh mesh = MakeBox(4);
  const std::string path = TempPath("snap_corrupt.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, path).ok());

  // Truncate to half a page: header read fails.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::vector<unsigned char> bytes(60);
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
    const std::string trunc = TempPath("snap_trunc.oct2");
    f = std::fopen(trunc.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    auto r = storage::ReadSnapshotHeader(trunc);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
    std::remove(trunc.c_str());
  }

  // Flip the magic.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fwrite("NOPE", 1, 4, f);
    std::fclose(f);
    auto r = storage::ReadSnapshotHeader(path);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  }

  // Missing file.
  auto missing = PagedMeshStore::Open(
      "/nonexistent/file.oct2", BufferManager::Options{});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Status::Code::kIOError);
  std::remove(path.c_str());
}

TEST(SnapshotTest, FileSizeMismatchIsCorruption) {
  const TetraMesh mesh = MakeBox(4);
  const std::string path = TempPath("snap_sizemismatch.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           SnapshotOptions{.page_bytes = 256}).ok());
  // Append one stray byte: size no longer num_pages * page_bytes.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputc('x', f);
  std::fclose(f);
  auto r = storage::ReadSnapshotHeader(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(SnapshotTest, TinyPageSizeIsRejected) {
  const TetraMesh mesh = testing::MakeTwoTetMesh();
  const Status st = SaveSnapshot(mesh, TempPath("snap_tiny.oct2"),
                                 SnapshotOptions{.page_bytes = 64});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
}

// ---------- Accessor data parity ----------

TEST(PagedMeshTest, AccessorMatchesMeshExactly) {
  const TetraMesh mesh = MakeBox(5);
  const std::string path = TempPath("snap_parity.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           SnapshotOptions{.page_bytes = 256}).ok());
  auto store = PagedMeshStore::Open(
      path, BufferManager::Options{.pool_bytes = 512});  // 2 pages only
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  PageIOStats stats;
  PagedMeshAccessor accessor(store.Value().get(), &stats);
  ASSERT_EQ(accessor.num_vertices(), mesh.num_vertices());
  for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
    EXPECT_EQ(accessor.position(v), mesh.position(v)) << "vertex " << v;
    const auto paged = accessor.neighbors(v);
    const auto resident = mesh.neighbors(v);
    ASSERT_EQ(paged.size(), resident.size()) << "vertex " << v;
    EXPECT_TRUE(
        std::equal(paged.begin(), paged.end(), resident.begin()));
  }
  EXPECT_GT(stats.page_misses, 0u);
  EXPECT_EQ(store.Value()->surface_vertices(),
            ExtractSurface(mesh).surface_vertices);
  std::remove(path.c_str());
}

// ---------- Buffer manager ----------

TEST(BufferManagerTest, NeverExceedsByteCapAndCountsEvictions) {
  const TetraMesh mesh = MakeBox(8);
  const std::string path = TempPath("snap_cap.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           SnapshotOptions{.page_bytes = 256}).ok());
  auto header = storage::ReadSnapshotHeader(path);
  ASSERT_TRUE(header.ok());
  const size_t snapshot_bytes = header.Value().FileBytes();
  // A pool 4x smaller than the snapshot (at least 2 pages).
  const size_t cap = std::max<size_t>(snapshot_bytes / 4, 512);

  for (const auto eviction :
       {BufferManager::Eviction::kLRU, BufferManager::Eviction::kClock}) {
    SCOPED_TRACE(storage::EvictionName(eviction));
    auto store = PagedMeshStore::Open(
        path, BufferManager::Options{.pool_bytes = cap,
                                     .eviction = eviction});
    ASSERT_TRUE(store.ok());
    BufferManager* pool = store.Value()->buffer_manager();
    EXPECT_GE(pool->max_frames(), 2u);

    // Touch every page of every section several times over.
    PageIOStats stats;
    PagedMeshAccessor accessor(store.Value().get(), &stats);
    for (int round = 0; round < 3; ++round) {
      for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
        accessor.position(v);
        accessor.neighbors(v);
      }
      EXPECT_LE(pool->AllocatedBytes(), cap) << "round " << round;
    }
    // The whole snapshot cannot fit: evictions must have happened, and
    // re-reads of evicted pages show up as misses beyond distinct pages.
    EXPECT_GT(stats.page_evictions, 0u);
    EXPECT_GT(stats.page_misses, header.Value().num_pages);
    // Under the lease discipline repeated reads of a held page are
    // lease hits, not pool hits — pool hits are no longer guaranteed,
    // but the crawl-heavy access pattern must re-serve leased pages.
    EXPECT_GT(stats.lease_hits, 0u);
    EXPECT_GT(stats.pages_leased, 0u);
    const PageIOStats totals = pool->TotalStats();
    EXPECT_EQ(totals.page_hits, stats.page_hits);
    EXPECT_EQ(totals.page_misses, stats.page_misses);
    EXPECT_EQ(totals.page_evictions, stats.page_evictions);
  }
  std::remove(path.c_str());
}

TEST(BufferManagerTest, PoolSmallerThanTwoPagesIsRejected) {
  const TetraMesh mesh = testing::MakeTwoTetMesh();
  const std::string path = TempPath("snap_smallpool.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           SnapshotOptions{.page_bytes = 256}).ok());
  auto store = PagedMeshStore::Open(
      path, BufferManager::Options{.pool_bytes = 511});
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), Status::Code::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(BufferManagerTest, PinKeepsPageResidentAcrossPressure) {
  const TetraMesh mesh = MakeBox(6);
  const std::string path = TempPath("snap_pin.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           SnapshotOptions{.page_bytes = 256}).ok());
  auto store = PagedMeshStore::Open(
      path, BufferManager::Options{.pool_bytes = 3 * 256});
  ASSERT_TRUE(store.ok());
  BufferManager* pool = store.Value()->buffer_manager();
  const auto num_pages =
      static_cast<storage::PageId>(store.Value()->header().num_pages);
  ASSERT_GT(num_pages, 8u);

  PageIOStats stats;
  const std::byte* pinned = pool->Pin(1, &stats);
  std::vector<std::byte> before(pinned, pinned + 64);
  // Cycle every other page through the two remaining frames.
  for (storage::PageId p = 2; p < num_pages; ++p) {
    pool->Pin(p, &stats);
    pool->Unpin(p);
  }
  // Page 1 must still be resident and untouched: a re-pin is a hit.
  const size_t misses_before = stats.page_misses;
  const std::byte* again = pool->Pin(1, &stats);
  EXPECT_EQ(stats.page_misses, misses_before);
  EXPECT_EQ(again, pinned);
  EXPECT_EQ(std::memcmp(before.data(), again, before.size()), 0);
  pool->Unpin(1);
  pool->Unpin(1);
  std::remove(path.c_str());
}

TEST(BufferManagerTest, ConcurrentPinsOnTinyPoolStayConsistent) {
  // Regression for the blocked-Pin path: a thread that waits for a free
  // frame must re-probe residency on wake, or a page can be loaded into
  // two frames and the pin bookkeeping corrupted. Hammer a 2-frame pool
  // from 4 threads and verify every pinned page's content against a
  // directly-read copy of the file.
  const TetraMesh mesh = MakeBox(6);
  const std::string path = TempPath("snap_concurrent.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           SnapshotOptions{.page_bytes = 256}).ok());
  auto header = storage::ReadSnapshotHeader(path);
  ASSERT_TRUE(header.ok());
  const size_t page_bytes = header.Value().page_bytes;
  const auto num_pages =
      static_cast<storage::PageId>(header.Value().num_pages);

  std::vector<unsigned char> file_image(header.Value().FileBytes());
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fread(file_image.data(), 1, file_image.size(), f),
              file_image.size());
    std::fclose(f);
  }

  auto pool = BufferManager::Open(
      path, page_bytes, num_pages,
      BufferManager::Options{.pool_bytes = 2 * page_bytes});
  ASSERT_TRUE(pool.ok());
  BufferManager* manager = pool.Value().get();

  std::atomic<int> mismatches{0};
  auto hammer = [&](uint64_t seed) {
    Rng rng(seed);
    PageIOStats stats;
    for (int i = 0; i < 2000; ++i) {
      const auto page =
          static_cast<storage::PageId>(rng.NextBelow(num_pages));
      const std::byte* data = manager->Pin(page, &stats);
      if (std::memcmp(data, file_image.data() + page * page_bytes,
                      page_bytes) != 0) {
        ++mismatches;
      }
      manager->Unpin(page);
    }
  };
  std::vector<std::thread> threads;
  for (uint64_t t = 0; t < 4; ++t) {
    threads.emplace_back(hammer, 0xC0FFEE + t);
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(manager->AllocatedBytes(), 2 * page_bytes);
  std::remove(path.c_str());
}

// ---------- Out-of-core query execution ----------

/// Runs the fig6-style step workload against a paged snapshot >= 4x the
/// pool and checks every result set against brute force on the resident
/// mesh.
TEST(PagedOctopusTest, Fig6WorkloadOnSnapshotFourTimesThePool) {
  const TetraMesh mesh = MakeBox(10);
  const std::string path = TempPath("snap_fig6.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           SnapshotOptions{.page_bytes = 512}).ok());
  auto header = storage::ReadSnapshotHeader(path);
  ASSERT_TRUE(header.ok());
  const size_t pool_bytes =
      std::max<size_t>(header.Value().FileBytes() / 4, 2 * 512);
  ASSERT_GE(header.Value().FileBytes(), 4 * pool_bytes);

  PagedOctopus::Options options;
  options.pool.pool_bytes = pool_bytes;
  auto paged = PagedOctopus::Open(path, options);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();

  // Fig. 6 benchmark-A-style workload (3 steps of 15 queries, 0.01-0.2%
  // selectivity), generated over the same mesh.
  const bench::StepWorkload workload =
      bench::MakeStepWorkload(mesh, 3, 15, 15, 0.0001, 0.002, 0xF16);
  engine::QueryBatchResult results;
  for (const auto& step : workload.per_step) {
    paged.Value()->RangeQueryBatch(step, &results);
    ASSERT_EQ(results.size(), step.size());
    for (size_t q = 0; q < step.size(); ++q) {
      EXPECT_EQ(Sorted(results.per_query[q]),
                BruteForceRangeQuery(mesh, step[q]))
          << "query " << q;
    }
  }
  const auto* pool =
      paged.Value()->store().buffer_manager();
  EXPECT_LE(pool->AllocatedBytes(), pool_bytes);
  EXPECT_GT(paged.Value()->stats().page_io.page_misses, 0u);
  std::remove(path.c_str());
}

TEST(PagedOctopusTest, TinyPoolAndManyThreadsStayExact) {
  const TetraMesh mesh = MakeBox(7);
  const std::string path = TempPath("snap_tinypool.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           SnapshotOptions{.page_bytes = 512}).ok());

  QueryGenerator gen(mesh);
  Rng rng(3);
  const std::vector<AABB> queries = gen.MakeQueries(&rng, 12, 0.001, 0.02);

  // The degenerate 2-page pool, driven by 1 and 4 threads.
  PagedOctopus::Options options;
  options.pool.pool_bytes = 2 * 512;
  auto paged = PagedOctopus::Open(path, options);
  ASSERT_TRUE(paged.ok());
  for (const int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    engine::ThreadPool pool(threads);
    engine::QueryBatchResult results;
    paged.Value()->RangeQueryBatch(queries, &results,
                                   threads > 1 ? &pool : nullptr);
    ASSERT_EQ(results.size(), queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(Sorted(results.per_query[q]),
                BruteForceRangeQuery(mesh, queries[q]))
          << "query " << q;
    }
  }
  std::remove(path.c_str());
}

TEST(PagedOctopusTest, SingleThreadPageCountersAreDeterministic) {
  const TetraMesh mesh = MakeBox(6);
  const std::string path = TempPath("snap_deterministic.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           SnapshotOptions{.page_bytes = 512}).ok());
  QueryGenerator gen(mesh);
  Rng rng(9);
  const std::vector<AABB> queries = gen.MakeQueries(&rng, 10, 0.001, 0.01);

  storage::PageIOStats runs[2];
  for (auto& run : runs) {
    PagedOctopus::Options options;
    options.pool.pool_bytes = 4 * 512;
    auto paged = PagedOctopus::Open(path, options);
    ASSERT_TRUE(paged.ok());
    engine::QueryBatchResult results;
    paged.Value()->RangeQueryBatch(queries, &results);
    run = paged.Value()->stats().page_io;
    EXPECT_GT(run.PageAccesses(), 0u);
  }
  EXPECT_EQ(runs[0].page_hits, runs[1].page_hits);
  EXPECT_EQ(runs[0].page_misses, runs[1].page_misses);
  EXPECT_EQ(runs[0].page_evictions, runs[1].page_evictions);
  std::remove(path.c_str());
}

// ---------- Hilbert clustering ----------

TEST(HilbertLayoutTest, HilbertSnapshotMissesFewerPagesThanShuffled) {
  // Compare page misses of the same query workload over (a) a snapshot
  // of the mesh in deterministic arbitrary order and (b) the
  // Hilbert-clustered snapshot, both under the same small pool.
  const TetraMesh base = MakeBox(12);
  const TetraMesh shuffled = Shuffled(base, 0xBADC0DE);

  const std::string shuffled_path = TempPath("snap_shuffled.oct2");
  const std::string hilbert_path = TempPath("snap_hilbert.oct2");
  ASSERT_TRUE(SaveSnapshot(shuffled, shuffled_path,
                           SnapshotOptions{.page_bytes = 512}).ok());
  ASSERT_TRUE(
      SaveSnapshot(shuffled, hilbert_path,
                   SnapshotOptions{.page_bytes = 512,
                                   .layout = SnapshotLayout::kHilbert})
          .ok());
  auto hilbert_header = storage::ReadSnapshotHeader(hilbert_path);
  ASSERT_TRUE(hilbert_header.ok());
  EXPECT_EQ(static_cast<SnapshotLayout>(hilbert_header.Value().layout),
            SnapshotLayout::kHilbert);

  // One spatial workload for both runs: the boxes are position-defined
  // and vertex positions are preserved by any permutation.
  QueryGenerator gen(base);
  Rng rng(17);
  const std::vector<AABB> queries = gen.MakeQueries(&rng, 20, 0.001, 0.01);

  auto misses_on = [&queries](const std::string& path,
                              const TetraMesh& mesh) {
    PagedOctopus::Options options;
    options.pool.pool_bytes = 8 * 512;
    auto paged = PagedOctopus::Open(path, options);
    EXPECT_TRUE(paged.ok());
    engine::QueryBatchResult results;
    paged.Value()->RangeQueryBatch(queries, &results);
    // Sanity: exactness is layout-independent.
    size_t total = 0;
    for (size_t q = 0; q < queries.size(); ++q) {
      total += results.per_query[q].size();
      EXPECT_EQ(results.per_query[q].size(),
                BruteForceRangeQuery(mesh, queries[q]).size());
    }
    EXPECT_GT(total, 0u);
    return paged.Value()->stats().page_io.page_misses;
  };

  const size_t shuffled_misses = misses_on(shuffled_path, shuffled);
  const size_t hilbert_misses = misses_on(
      hilbert_path, ApplyPermutation(shuffled,
                                     ComputeHilbertOrder(shuffled)));
  EXPECT_LT(hilbert_misses, shuffled_misses);
  std::remove(shuffled_path.c_str());
  std::remove(hilbert_path.c_str());
}

}  // namespace
}  // namespace octopus
