// Copyright 2026 The OCTOPUS Reproduction Authors
// Tests for the measurement harness: deterministic workloads, honest
// accounting, and cross-approach result agreement under the harness's
// replay protocol.
#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/bench_harness.h"
#include "index/linear_scan.h"
#include "mesh/generators/grid_generator.h"
#include "octopus/query_executor.h"
#include "sim/random_deformer.h"

namespace octopus {
namespace {

namespace bench = octopus::bench;

TetraMesh MakeBox(int n) {
  return GenerateBoxMesh(n, n, n, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
      .MoveValue();
}

TEST(HarnessTest, WorkloadIsDeterministicPerSeed) {
  const TetraMesh mesh = MakeBox(8);
  const bench::StepWorkload a =
      bench::MakeStepWorkload(mesh, 5, 3, 7, 0.001, 0.01, 42);
  const bench::StepWorkload b =
      bench::MakeStepWorkload(mesh, 5, 3, 7, 0.001, 0.01, 42);
  const bench::StepWorkload c =
      bench::MakeStepWorkload(mesh, 5, 3, 7, 0.001, 0.01, 43);
  ASSERT_EQ(a.per_step.size(), 5u);
  ASSERT_EQ(a.TotalQueries(), b.TotalQueries());
  for (size_t s = 0; s < a.per_step.size(); ++s) {
    ASSERT_EQ(a.per_step[s].size(), b.per_step[s].size());
    for (size_t q = 0; q < a.per_step[s].size(); ++q) {
      EXPECT_EQ(a.per_step[s][q].min, b.per_step[s][q].min);
      EXPECT_EQ(a.per_step[s][q].max, b.per_step[s][q].max);
    }
  }
  // A different seed produces a different workload.
  bool any_different = c.TotalQueries() != a.TotalQueries();
  if (!any_different && !a.per_step.empty() && !a.per_step[0].empty() &&
      !c.per_step.empty() && !c.per_step[0].empty()) {
    any_different = !(a.per_step[0][0].min == c.per_step[0][0].min);
  }
  EXPECT_TRUE(any_different);
}

TEST(HarnessTest, QueriesPerStepWithinBounds) {
  const TetraMesh mesh = MakeBox(6);
  const bench::StepWorkload w =
      bench::MakeStepWorkload(mesh, 20, 7, 9, 0.001, 0.002, 7);
  for (const auto& step : w.per_step) {
    EXPECT_GE(step.size(), 7u);
    EXPECT_LE(step.size(), 9u);
  }
}

TEST(HarnessTest, RunApproachLeavesBaseMeshUntouched) {
  const TetraMesh base = MakeBox(6);
  const std::vector<Vec3> before = base.positions();
  const bench::StepWorkload w =
      bench::MakeStepWorkload(base, 4, 2, 2, 0.01, 0.01, 9);
  LinearScan scan;
  bench::RunApproach(&scan, base, bench::NeuroDeformerFactory(base), w);
  EXPECT_EQ(base.positions(), before)
      << "the harness must deform a private copy";
}

TEST(HarnessTest, IdenticalReplayAcrossApproaches) {
  // The core fairness property: two approaches see the same deformation
  // sequence and queries, so their result counts agree exactly.
  // Queries several edge lengths wide (see DESIGN.md section 5).
  const TetraMesh base = MakeBox(16);
  const bench::StepWorkload w =
      bench::MakeStepWorkload(base, 5, 3, 3, 0.05, 0.08, 11);
  const bench::DeformerFactory deformer = []() {
    return std::make_unique<RandomDeformer>(0.01f, 5);
  };
  Octopus octo;
  LinearScan scan;
  const bench::RunResult a = bench::RunApproach(&octo, base, deformer, w);
  const bench::RunResult b = bench::RunApproach(&scan, base, deformer, w);
  EXPECT_EQ(a.total_results, b.total_results);
  EXPECT_GT(a.total_results, 0u);
}

TEST(HarnessTest, AccountingSeparatesBuildMaintenanceQuery) {
  const TetraMesh base = MakeBox(8);
  const bench::StepWorkload w =
      bench::MakeStepWorkload(base, 3, 2, 2, 0.01, 0.01, 13);
  Octopus octo;
  const bench::RunResult r = bench::RunApproach(
      &octo, base, bench::NeuroDeformerFactory(base), w);
  EXPECT_GT(r.build_seconds, 0.0);
  EXPECT_GT(r.query_seconds, 0.0);
  EXPECT_GE(r.maintenance_seconds, 0.0);
  EXPECT_GT(r.footprint_bytes, 0u);
  EXPECT_DOUBLE_EQ(r.TotalSeconds(),
                   r.maintenance_seconds + r.query_seconds);
}

TEST(HarnessTest, MakeAllApproachesMatchesPaperLineup) {
  const auto approaches = bench::MakeAllApproaches();
  ASSERT_EQ(approaches.size(), 5u);
  EXPECT_EQ(approaches[0]->Name(), "OCTOPUS");
  EXPECT_EQ(approaches[1]->Name(), "LinearScan");
  EXPECT_EQ(approaches[2]->Name(), "OCTREE");
  EXPECT_EQ(approaches[3]->Name(), "LUR-Tree");
  EXPECT_EQ(approaches[4]->Name(), "QU-Trade");
}

TEST(HarnessTest, EnvHelpers) {
  ::unsetenv("OCTOPUS_BENCH_SCALE");
  ::unsetenv("OCTOPUS_BENCH_STEPS");
  EXPECT_DOUBLE_EQ(bench::ScaleFromEnv(), 1.0);
  EXPECT_EQ(bench::StepsFromEnv(60), 60);
  ::setenv("OCTOPUS_BENCH_SCALE", "0.25", 1);
  ::setenv("OCTOPUS_BENCH_STEPS", "12", 1);
  EXPECT_DOUBLE_EQ(bench::ScaleFromEnv(), 0.25);
  EXPECT_EQ(bench::StepsFromEnv(60), 12);
  ::setenv("OCTOPUS_BENCH_SCALE", "-3", 1);
  ::setenv("OCTOPUS_BENCH_STEPS", "junk", 1);
  EXPECT_DOUBLE_EQ(bench::ScaleFromEnv(), 1.0);
  EXPECT_EQ(bench::StepsFromEnv(60), 60);
  ::unsetenv("OCTOPUS_BENCH_SCALE");
  ::unsetenv("OCTOPUS_BENCH_STEPS");
}

}  // namespace
}  // namespace octopus
