// Copyright 2026 The OCTOPUS Reproduction Authors
// Unit tests for TetraMesh, MeshBuilder, surface extraction, FaceRegistry,
// mesh stats and mesh IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <unordered_set>

#include "mesh/generators/grid_generator.h"
#include "mesh/mesh_builder.h"
#include "mesh/mesh_io.h"
#include "mesh/mesh_stats.h"
#include "mesh/surface.h"
#include "mesh/tetra_mesh.h"
#include "test_util.h"

namespace octopus {
namespace {

using testing::MakeSingleTetMesh;
using testing::MakeTwoTetMesh;

// ---------- TetraMesh ----------

TEST(TetraMeshTest, SingleTetAdjacency) {
  const TetraMesh mesh = MakeSingleTetMesh();
  EXPECT_EQ(mesh.num_vertices(), 4u);
  EXPECT_EQ(mesh.num_tetrahedra(), 1u);
  EXPECT_EQ(mesh.num_edges(), 6u);
  // Complete graph K4: every vertex has the other three as neighbors.
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(mesh.degree(v), 3u);
    std::unordered_set<VertexId> n(mesh.neighbors(v).begin(),
                                   mesh.neighbors(v).end());
    EXPECT_EQ(n.size(), 3u);
    EXPECT_EQ(n.count(v), 0u) << "self-loop at " << v;
  }
  EXPECT_DOUBLE_EQ(mesh.AverageDegree(), 3.0);
}

TEST(TetraMeshTest, SharedFaceDeduplicatesEdges) {
  const TetraMesh mesh = MakeTwoTetMesh();
  EXPECT_EQ(mesh.num_vertices(), 5u);
  EXPECT_EQ(mesh.num_tetrahedra(), 2u);
  // 6 + 6 edges with the 3 shared-face edges counted once: 9.
  EXPECT_EQ(mesh.num_edges(), 9u);
  // Face vertices v1, v2, v3 connect to everything (degree 4).
  EXPECT_EQ(mesh.degree(1), 4u);
  EXPECT_EQ(mesh.degree(2), 4u);
  EXPECT_EQ(mesh.degree(3), 4u);
  // Apexes connect to the face only.
  EXPECT_EQ(mesh.degree(0), 3u);
  EXPECT_EQ(mesh.degree(4), 3u);
}

TEST(TetraMeshTest, NeighborsAreSortedAndUnique) {
  const TetraMesh mesh = MakeTwoTetMesh();
  for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
    const auto n = mesh.neighbors(v);
    for (size_t i = 1; i < n.size(); ++i) {
      EXPECT_LT(n[i - 1], n[i]);
    }
  }
}

TEST(TetraMeshTest, PositionsMutableInPlace) {
  TetraMesh mesh = MakeSingleTetMesh();
  mesh.set_position(2, Vec3(9, 9, 9));
  EXPECT_EQ(mesh.position(2), Vec3(9, 9, 9));
  mesh.mutable_positions()[0] = Vec3(-1, -1, -1);
  EXPECT_EQ(mesh.position(0), Vec3(-1, -1, -1));
}

TEST(TetraMeshTest, ComputeBounds) {
  const TetraMesh mesh = MakeSingleTetMesh();
  const AABB b = mesh.ComputeBounds();
  EXPECT_EQ(b.min, Vec3(0, 0, 0));
  EXPECT_EQ(b.max, Vec3(1, 1, 1));
}

TEST(TetraMeshTest, IncidentTetCounts) {
  const TetraMesh mesh = MakeTwoTetMesh();
  EXPECT_EQ(mesh.incident_tet_count(0), 1u);
  EXPECT_EQ(mesh.incident_tet_count(1), 2u);
  EXPECT_EQ(mesh.incident_tet_count(4), 1u);
}

TEST(TetraMeshTest, MemoryBytesPositive) {
  const TetraMesh mesh = MakeTwoTetMesh();
  EXPECT_GT(mesh.MemoryBytes(),
            mesh.num_vertices() * sizeof(Vec3));
}

TEST(TetraMeshTest, ApplyRestructureRejectsUnknownTet) {
  TetraMesh mesh = MakeSingleTetMesh();
  RestructureDelta delta;
  delta.removed_tets.push_back(Tet{0, 1, 2, 3});
  delta.removed_tets.push_back(Tet{0, 1, 2, 3});  // duplicate removal
  EXPECT_FALSE(mesh.ApplyRestructure(delta));
  EXPECT_EQ(mesh.num_tetrahedra(), 1u);
}

TEST(TetraMeshTest, ApplyRestructureRejectsOrphaningRemoval) {
  TetraMesh mesh = MakeSingleTetMesh();
  RestructureDelta delta;
  delta.removed_tets.push_back(Tet{0, 1, 2, 3});
  // Removing the only tet orphans all four vertices.
  EXPECT_FALSE(mesh.ApplyRestructure(delta));
}

TEST(TetraMeshTest, ApplyRestructureRemovalAnyCornerOrder) {
  TetraMesh mesh = MakeTwoTetMesh();
  RestructureDelta delta;
  // Remove tet (4,1,2,3) by a permuted corner list, and re-attach v4 with
  // a different tet in the same batch so no vertex is orphaned.
  delta.removed_tets.push_back(Tet{3, 2, 1, 4});
  delta.added_tets.push_back(Tet{0, 1, 2, 4});
  EXPECT_TRUE(mesh.ApplyRestructure(delta));
  EXPECT_EQ(mesh.num_tetrahedra(), 2u);
  EXPECT_EQ(mesh.incident_tet_count(4), 1u);
  EXPECT_EQ(mesh.incident_tet_count(3), 1u);
}

TEST(TetraMeshTest, ApplyRestructureRejectsRemovalThatOrphans) {
  TetraMesh mesh = MakeTwoTetMesh();
  RestructureDelta delta;
  delta.removed_tets.push_back(Tet{4, 1, 2, 3});  // orphans v4
  EXPECT_FALSE(mesh.ApplyRestructure(delta));
  EXPECT_EQ(mesh.num_tetrahedra(), 2u);
}

TEST(TetraMeshTest, ApplyRestructureRejectsOutOfRangeAddedVertex) {
  TetraMesh mesh = MakeSingleTetMesh();
  RestructureDelta delta;
  delta.added_tets.push_back(Tet{0, 1, 2, 99});
  EXPECT_FALSE(mesh.ApplyRestructure(delta));
}

// ---------- MeshBuilder ----------

TEST(MeshBuilderTest, RejectsEmptyMesh) {
  MeshBuilder b;
  EXPECT_FALSE(b.Build().ok());
}

TEST(MeshBuilderTest, RejectsOutOfRangeVertex) {
  MeshBuilder b;
  b.AddVertex(Vec3(0, 0, 0));
  b.AddTet(0, 1, 2, 3);
  const auto result = b.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
}

TEST(MeshBuilderTest, RejectsDegenerateTet) {
  MeshBuilder b;
  const VertexId v0 = b.AddVertex(Vec3(0, 0, 0));
  const VertexId v1 = b.AddVertex(Vec3(1, 0, 0));
  const VertexId v2 = b.AddVertex(Vec3(0, 1, 0));
  b.AddTet(v0, v1, v2, v2);
  EXPECT_FALSE(b.Build().ok());
}

TEST(MeshBuilderTest, RejectsOrphanVertex) {
  MeshBuilder b;
  const VertexId v0 = b.AddVertex(Vec3(0, 0, 0));
  const VertexId v1 = b.AddVertex(Vec3(1, 0, 0));
  const VertexId v2 = b.AddVertex(Vec3(0, 1, 0));
  const VertexId v3 = b.AddVertex(Vec3(0, 0, 1));
  b.AddVertex(Vec3(5, 5, 5));  // never referenced
  b.AddTet(v0, v1, v2, v3);
  EXPECT_FALSE(b.Build().ok());
}

TEST(MeshBuilderTest, LatticeVertexMapDeduplicates) {
  MeshBuilder b;
  LatticeVertexMap lattice(&b);
  const VertexId a = lattice.GetOrCreate(1, 2, 3, Vec3(1, 2, 3));
  const VertexId c = lattice.GetOrCreate(1, 2, 3, Vec3(9, 9, 9));
  EXPECT_EQ(a, c);
  EXPECT_EQ(b.num_vertices(), 1u);
  const VertexId d = lattice.GetOrCreate(-1, 2, 3, Vec3(-1, 2, 3));
  EXPECT_NE(a, d);
  EXPECT_EQ(lattice.size(), 2u);
}

// ---------- Surface extraction ----------

TEST(SurfaceTest, FaceKeyCanonical) {
  EXPECT_EQ(MakeFaceKey(3, 1, 2), (FaceKey{1, 2, 3}));
  EXPECT_EQ(MakeFaceKey(1, 2, 3), (FaceKey{1, 2, 3}));
  EXPECT_EQ(MakeFaceKey(2, 3, 1), (FaceKey{1, 2, 3}));
}

TEST(SurfaceTest, SingleTetAllOnSurface) {
  const TetraMesh mesh = MakeSingleTetMesh();
  const SurfaceInfo s = ExtractSurface(mesh);
  EXPECT_EQ(s.surface_vertices.size(), 4u);
  EXPECT_EQ(s.surface_faces.size(), 4u);
}

TEST(SurfaceTest, TwoTetsSharedFaceIsInterior) {
  const TetraMesh mesh = MakeTwoTetMesh();
  const SurfaceInfo s = ExtractSurface(mesh);
  // All 5 vertices are on the surface, but the shared face is not.
  EXPECT_EQ(s.surface_vertices.size(), 5u);
  EXPECT_EQ(s.surface_faces.size(), 6u);
  const FaceKey shared = MakeFaceKey(1, 2, 3);
  for (const FaceKey& f : s.surface_faces) {
    EXPECT_NE(f, shared);
  }
}

TEST(SurfaceTest, BoxMeshSurfaceIsBoundaryLattice) {
  const int n = 5;
  auto mesh_result =
      GenerateBoxMesh(n, n, n, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)));
  ASSERT_TRUE(mesh_result.ok());
  const TetraMesh& mesh = mesh_result.Value();
  const SurfaceInfo s = ExtractSurface(mesh);
  const size_t total = (n + 1) * (n + 1) * (n + 1);
  const size_t interior = (n - 1) * (n - 1) * (n - 1);
  EXPECT_EQ(mesh.num_vertices(), total);
  EXPECT_EQ(s.surface_vertices.size(), total - interior);
  // Geometric cross-check: surface vertices are exactly those with a
  // coordinate on the domain boundary.
  for (VertexId v : s.surface_vertices) {
    const Vec3& p = mesh.position(v);
    const bool on_boundary = p.x == 0.0f || p.x == 1.0f || p.y == 0.0f ||
                             p.y == 1.0f || p.z == 0.0f || p.z == 1.0f;
    EXPECT_TRUE(on_boundary) << "vertex " << v << " at " << p;
  }
}

// ---------- FaceRegistry ----------

TEST(FaceRegistryTest, MatchesExtractionAfterBuild) {
  const TetraMesh mesh = MakeTwoTetMesh();
  FaceRegistry reg;
  reg.Build(mesh);
  const SurfaceInfo s = ExtractSurface(mesh);
  EXPECT_EQ(reg.num_surface_vertices(), s.surface_vertices.size());
  for (VertexId v : s.surface_vertices) {
    EXPECT_TRUE(reg.IsSurfaceVertex(v));
  }
}

TEST(FaceRegistryTest, DeltaTracksSurfaceTransitions) {
  TetraMesh mesh = MakeSingleTetMesh();
  FaceRegistry reg;
  reg.Build(mesh);

  // Centroid split: remove the tet, add 4 around a new vertex 4. The new
  // vertex is interior; the original 4 stay on the surface.
  RestructureDelta delta;
  delta.removed_tets.push_back(Tet{0, 1, 2, 3});
  const VertexId m = mesh.AddVertexForRestructure(Vec3(0.25f, 0.25f, 0.25f));
  delta.added_vertices.push_back(m);
  delta.added_tets.push_back(Tet{m, 1, 2, 3});
  delta.added_tets.push_back(Tet{0, m, 2, 3});
  delta.added_tets.push_back(Tet{0, 1, m, 3});
  delta.added_tets.push_back(Tet{0, 1, 2, m});
  ASSERT_TRUE(mesh.ApplyRestructure(delta));

  std::vector<FaceRegistry::VertexTransition> transitions;
  reg.ApplyDelta(delta, &transitions);
  EXPECT_TRUE(transitions.empty())
      << "centroid split must not change surface membership";
  for (VertexId v = 0; v < 4; ++v) EXPECT_TRUE(reg.IsSurfaceVertex(v));
  EXPECT_FALSE(reg.IsSurfaceVertex(m));

  // Cross-check against a fresh registry.
  FaceRegistry fresh;
  fresh.Build(mesh);
  EXPECT_EQ(fresh.num_surface_vertices(), reg.num_surface_vertices());
}

TEST(FaceRegistryTest, RemovalExposesInteriorVertex) {
  // Split a tet at its centroid (vertex m becomes interior), then remove
  // one sub-tet: m's interior faces surface and m joins the surface.
  TetraMesh mesh = MakeSingleTetMesh();
  RestructureDelta split;
  split.removed_tets.push_back(Tet{0, 1, 2, 3});
  const VertexId m = mesh.AddVertexForRestructure(Vec3(0.25f, 0.25f, 0.25f));
  split.added_vertices.push_back(m);
  split.added_tets.push_back(Tet{m, 1, 2, 3});
  split.added_tets.push_back(Tet{0, m, 2, 3});
  split.added_tets.push_back(Tet{0, 1, m, 3});
  split.added_tets.push_back(Tet{0, 1, 2, m});
  ASSERT_TRUE(mesh.ApplyRestructure(split));

  FaceRegistry reg;
  reg.Build(mesh);
  ASSERT_FALSE(reg.IsSurfaceVertex(m));

  RestructureDelta removal;
  removal.removed_tets.push_back(Tet{m, 1, 2, 3});
  ASSERT_TRUE(mesh.ApplyRestructure(removal));
  std::vector<FaceRegistry::VertexTransition> transitions;
  reg.ApplyDelta(removal, &transitions);

  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].vertex, m);
  EXPECT_TRUE(transitions[0].now_on_surface);
  EXPECT_TRUE(reg.IsSurfaceVertex(m));

  FaceRegistry fresh;
  fresh.Build(mesh);
  EXPECT_EQ(fresh.num_surface_vertices(), reg.num_surface_vertices());
}

// ---------- MeshStats ----------

TEST(MeshStatsTest, BoxMeshStats) {
  auto mesh_result =
      GenerateBoxMesh(6, 6, 6, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)));
  ASSERT_TRUE(mesh_result.ok());
  const MeshStats s = ComputeMeshStats(mesh_result.Value());
  EXPECT_EQ(s.num_vertices, 343u);
  EXPECT_EQ(s.num_tetrahedra, 6u * 216u);
  EXPECT_GT(s.mesh_degree, 9.0);
  EXPECT_LT(s.mesh_degree, 15.0);
  EXPECT_GT(s.surface_to_volume, 0.0);
  EXPECT_LT(s.surface_to_volume, 1.0);
  EXPECT_EQ(s.num_surface_vertices, 343u - 125u);
  EXPECT_GT(s.memory_bytes, 0u);
}

// ---------- Mesh IO ----------

TEST(MeshIOTest, RoundTrip) {
  const TetraMesh original = MakeTwoTetMesh();
  const std::string path = ::testing::TempDir() + "/octopus_roundtrip.mesh";
  ASSERT_TRUE(SaveMesh(original, path).ok());
  auto loaded = LoadMesh(path);
  ASSERT_TRUE(loaded.ok());
  const TetraMesh& mesh = loaded.Value();
  EXPECT_EQ(mesh.num_vertices(), original.num_vertices());
  EXPECT_EQ(mesh.num_tetrahedra(), original.num_tetrahedra());
  EXPECT_EQ(mesh.num_edges(), original.num_edges());
  for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
    EXPECT_EQ(mesh.position(v), original.position(v));
  }
  std::remove(path.c_str());
}

TEST(MeshIOTest, LoadMissingFileFails) {
  const auto result = LoadMesh("/nonexistent/path/mesh.bin");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kIOError);
}

TEST(MeshIOTest, LoadGarbageFails) {
  const std::string path = ::testing::TempDir() + "/octopus_garbage.mesh";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a mesh file at all", f);
  std::fclose(f);
  const auto result = LoadMesh(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace octopus
