// Copyright 2026 The OCTOPUS Reproduction Authors
// Loopback integration tests of the network query service: remote
// execution must be bit-identical (results and non-I/O counters) to the
// in-process engine on the fig6 workload, in-memory and paged; many
// concurrent clients must each get exactly their own results; the batch
// scheduler must coalesce across connections; malformed frames must be
// rejected with typed errors; and admission control must answer
// overload explicitly while accepted requests still complete across a
// graceful shutdown.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/remote_client.h"
#include "harness/bench_harness.h"
#include "obs/event_journal.h"
#include "obs/trace.h"
#include "server/epoch_store.h"
#include "sim/deformer_spec.h"
#include "mesh/generators/datasets.h"
#include "mesh/generators/grid_generator.h"
#include "mesh/mesh_io.h"
#include "octopus/query_executor.h"
#include "server/versioned_backend.h"
#include "server/batch_scheduler.h"
#include "server/server.h"
#include "sim/workload.h"
#include "test_util.h"

namespace octopus {
namespace {

using client::RemoteClient;
using server::ErrorCode;
using server::FrameType;
using server::VersionedBackend;
using server::QueryServer;
using server::ServerOptions;
using testing::BruteForceRangeQuery;
using testing::Sorted;

TetraMesh MakeBox(int n) {
  return GenerateBoxMesh(n, n, n, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
      .MoveValue();
}

/// Runs a server on an ephemeral loopback port in a background thread;
/// stops and joins on destruction.
class ServerFixture {
 public:
  ServerFixture(std::unique_ptr<VersionedBackend> backend,
                ServerOptions options = {}) {
    options.bind_address = "127.0.0.1";
    options.port = 0;
    server_ = std::make_unique<QueryServer>(std::move(backend),
                                            std::move(options));
    const Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    thread_ = std::thread([this] {
      const Status run = server_->Run();
      EXPECT_TRUE(run.ok()) << run.ToString();
    });
  }

  ~ServerFixture() { StopAndJoin(); }

  void StopAndJoin() {
    if (thread_.joinable()) {
      server_->Stop();
      thread_.join();
    }
  }

  uint16_t port() const { return server_->port(); }
  QueryServer& server() { return *server_; }

 private:
  std::unique_ptr<QueryServer> server_;
  std::thread thread_;
};

std::unique_ptr<RemoteClient> MustConnect(uint16_t port) {
  auto connected = RemoteClient::Connect("127.0.0.1", port);
  EXPECT_TRUE(connected.ok()) << connected.status().ToString();
  return connected.MoveValue();
}

/// The fig6 monitoring workload: per-step batches for every Fig. 5
/// micro-benchmark spec on `mesh`.
std::vector<std::vector<AABB>> Fig6StepBatches(const TetraMesh& mesh,
                                               int steps) {
  std::vector<std::vector<AABB>> batches;
  const auto specs = NeuroscienceBenchmarks();
  for (size_t b = 0; b < specs.size(); ++b) {
    const auto& spec = specs[b];
    const bench::StepWorkload workload = bench::MakeStepWorkload(
        mesh, steps, spec.queries_per_step_min, spec.queries_per_step_max,
        spec.selectivity_min, spec.selectivity_max,
        /*seed=*/0xF16'0000 + b);
    for (const auto& step : workload.per_step) batches.push_back(step);
  }
  return batches;
}

void ExpectNonIoCountersEqual(const PhaseStats& remote,
                              const PhaseStats& local) {
  EXPECT_EQ(remote.queries, local.queries);
  EXPECT_EQ(remote.probed_vertices, local.probed_vertices);
  EXPECT_EQ(remote.walk_invocations, local.walk_invocations);
  EXPECT_EQ(remote.walk_vertices, local.walk_vertices);
  EXPECT_EQ(remote.crawl_edges, local.crawl_edges);
  EXPECT_EQ(remote.result_vertices, local.result_vertices);
}

// Remote execution of the fig6 workload over the in-memory backend must
// return the exact result sets and non-I/O PhaseStats of the in-process
// engine, batch by batch.
TEST(ServerIntegrationTest, Fig6WorkloadParityInMemory) {
  const TetraMesh mesh = MakeNeuroMesh(0, 0.3).MoveValue();
  const auto batches = Fig6StepBatches(mesh, /*steps=*/2);

  // In-process reference.
  Octopus octopus;
  octopus.Build(mesh);
  engine::QueryEngine engine;

  ServerFixture fixture(VersionedBackend::FromMesh(mesh, /*threads=*/1));
  auto remote = MustConnect(fixture.port());
  EXPECT_EQ(remote->server_info().paged, 0);
  EXPECT_EQ(remote->server_info().num_vertices, mesh.num_vertices());

  for (size_t b = 0; b < batches.size(); ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    octopus.ResetStats();
    engine::QueryBatchResult expected;
    engine.Execute(octopus, mesh, batches[b], &expected);

    auto result = remote->ExecuteBatch(batches[b]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result.Value().results.size(), expected.size());
    for (size_t q = 0; q < expected.size(); ++q) {
      EXPECT_EQ(result.Value().results.per_query[q],
                expected.per_query[q])
          << "query " << q;
    }
    // A single connected client: the coalesced batch is exactly this
    // request, so its stats must equal the in-process engine's.
    ExpectNonIoCountersEqual(result.Value().stats.ToPhaseStats(),
                             octopus.stats());
    EXPECT_EQ(result.Value().stats.batch_queries, batches[b].size());
    EXPECT_EQ(result.Value().stats.batch_requests, 1u);
  }
}

// Same parity over the paged (--paged) backend: identical results and
// non-I/O counters to the in-memory engine, plus real page I/O.
TEST(ServerIntegrationTest, Fig6WorkloadParityPaged) {
  const TetraMesh mesh = MakeNeuroMesh(0, 0.3).MoveValue();
  const auto batches = Fig6StepBatches(mesh, /*steps=*/1);
  const std::string path = ::testing::TempDir() + "/server_parity.oct2";
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           storage::SnapshotOptions{.page_bytes = 4096})
                  .ok());

  Octopus octopus;
  octopus.Build(mesh);
  engine::QueryEngine engine;

  auto backend =
      VersionedBackend::OpenSnapshot(path, /*pool_bytes=*/64 * 4096,
                                 /*threads=*/1);
  ASSERT_TRUE(backend.ok()) << backend.status().ToString();
  ServerFixture fixture(backend.MoveValue());
  auto remote = MustConnect(fixture.port());
  EXPECT_EQ(remote->server_info().paged, 1);
  EXPECT_EQ(remote->server_info().page_bytes, 4096u);

  uint64_t total_page_accesses = 0;
  for (size_t b = 0; b < batches.size(); ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    octopus.ResetStats();
    engine::QueryBatchResult expected;
    engine.Execute(octopus, mesh, batches[b], &expected);

    auto result = remote->ExecuteBatch(batches[b]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (size_t q = 0; q < expected.size(); ++q) {
      EXPECT_EQ(result.Value().results.per_query[q],
                expected.per_query[q])
          << "query " << q;
    }
    ExpectNonIoCountersEqual(result.Value().stats.ToPhaseStats(),
                             octopus.stats());
    total_page_accesses +=
        result.Value().stats.page_hits + result.Value().stats.page_misses;
  }
  EXPECT_GT(total_page_accesses, 0u);
  std::remove(path.c_str());
}

// Eight concurrent clients, each with its own workload: every client
// must get exactly its own (brute-force-verified) results back, and the
// server's counters must account for every query.
TEST(ServerIntegrationTest, EightConcurrentClientsGetTheirOwnResults) {
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 5;
  constexpr int kQueriesPerRequest = 10;

  const TetraMesh mesh = MakeBox(8);
  ServerOptions options;
  options.scheduler.window_nanos = 2'000'000;
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1), options);

  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto connected = RemoteClient::Connect("127.0.0.1", fixture.port());
      if (!connected.ok()) {
        failures[c] = connected.status().ToString();
        return;
      }
      QueryGenerator gen(mesh);
      Rng rng(1000 + c);
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const std::vector<AABB> queries =
            gen.MakeQueries(&rng, kQueriesPerRequest, 0.001, 0.02);
        auto result = connected.Value()->ExecuteBatch(queries);
        if (!result.ok()) {
          failures[c] = result.status().ToString();
          return;
        }
        for (size_t q = 0; q < queries.size(); ++q) {
          if (Sorted(result.Value().results.per_query[q]) !=
              BruteForceRangeQuery(mesh, queries[q])) {
            failures[c] = "client " + std::to_string(c) +
                          " got wrong results for query " +
                          std::to_string(q);
            return;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }

  auto stats_client = MustConnect(fixture.port());
  auto stats = stats_client->FetchStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const uint64_t total =
      uint64_t{kClients} * kRequestsPerClient * kQueriesPerRequest;
  EXPECT_EQ(stats.Value().queries_received, total);
  EXPECT_EQ(stats.Value().queries_executed, total);
  EXPECT_EQ(stats.Value().queries_rejected, 0u);
  EXPECT_GE(stats.Value().batches_executed, 1u);
  EXPECT_LE(stats.Value().batches_executed,
            uint64_t{kClients} * kRequestsPerClient);
  EXPECT_GE(stats.Value().CoalesceFactor(),
            static_cast<double>(kQueriesPerRequest));
  EXPECT_LE(stats.Value().latency_p50_nanos,
            stats.Value().latency_p95_nanos);
  EXPECT_LE(stats.Value().latency_p95_nanos,
            stats.Value().latency_p99_nanos);
  EXPECT_EQ(stats.Value().connections_accepted,
            uint64_t{kClients} + 1);

  // Counter self-checks: the accept/close pair can never underflow the
  // derived active gauge, and every executed query was received first.
  fixture.StopAndJoin();
  const server::ServerMetrics& metrics = fixture.server().metrics();
  EXPECT_GE(metrics.connections_accepted, metrics.connections_closed);
  EXPECT_EQ(metrics.connections_active(), 0u);  // all drained
  EXPECT_LE(metrics.queries_executed,
            metrics.queries_received - metrics.queries_rejected);
  EXPECT_GE(metrics.results_sent,
            uint64_t{kClients} * kRequestsPerClient);
}

// Deterministic cross-client coalescing: with a size trigger of exactly
// two requests' worth of queries and a long window, the second client's
// request must execute in the same engine batch as the first's.
TEST(ServerIntegrationTest, CoalescesAcrossConnections) {
  const TetraMesh mesh = MakeBox(6);
  ServerOptions options;
  options.scheduler.window_nanos = 2'000'000'000;  // 2 s: size must win
  options.scheduler.max_batch_queries = 8;
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1), options);

  auto client_a = MustConnect(fixture.port());
  auto client_b = MustConnect(fixture.port());
  QueryGenerator gen(mesh);
  Rng rng(3);
  const std::vector<AABB> queries_a = gen.MakeQueries(&rng, 4, 0.01, 0.02);
  const std::vector<AABB> queries_b = gen.MakeQueries(&rng, 4, 0.01, 0.02);

  // Client A's request parks in the scheduler (4 < 8 queries, window
  // far away); client B's pushes the pending count to the size trigger.
  Result<client::RemoteBatchResult> result_a =
      Status::IOError("not run");
  std::thread thread_a([&] {
    result_a = client_a->ExecuteBatch(queries_a);
  });
  auto result_b = client_b->ExecuteBatch(queries_b);
  thread_a.join();

  ASSERT_TRUE(result_a.ok()) << result_a.status().ToString();
  ASSERT_TRUE(result_b.ok()) << result_b.status().ToString();
  // Both were served by one coalesced batch of both requests.
  EXPECT_EQ(result_a.Value().stats.batch_requests, 2u);
  EXPECT_EQ(result_a.Value().stats.batch_queries, 8u);
  EXPECT_EQ(result_b.Value().stats.batch_requests, 2u);
  for (size_t q = 0; q < queries_a.size(); ++q) {
    EXPECT_EQ(Sorted(result_a.Value().results.per_query[q]),
              BruteForceRangeQuery(mesh, queries_a[q]));
  }
  for (size_t q = 0; q < queries_b.size(); ++q) {
    EXPECT_EQ(Sorted(result_b.Value().results.per_query[q]),
              BruteForceRangeQuery(mesh, queries_b[q]));
  }
}

// --- Malformed-frame rejection, at the raw socket level ---

/// Connects a plain blocking socket to the loopback server.
int RawConnect(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

void SendRaw(int fd, const server::Buffer& bytes) {
  ASSERT_EQ(send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
}

/// Reads one frame; returns false on clean EOF before a full frame.
bool ReadFrameRaw(int fd, FrameType* type, server::Buffer* payload) {
  uint8_t header[server::kFrameHeaderBytes];
  size_t have = 0;
  while (have < sizeof(header)) {
    const ssize_t n = recv(fd, header + have, sizeof(header) - have, 0);
    if (n <= 0) return false;
    have += static_cast<size_t>(n);
  }
  auto parsed = server::ParseFrameHeader(header);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  if (!parsed.ok()) return false;
  *type = parsed.Value().type;
  payload->resize(parsed.Value().payload_bytes);
  have = 0;
  while (have < payload->size()) {
    const ssize_t n =
        recv(fd, payload->data() + have, payload->size() - have, 0);
    if (n <= 0) return false;
    have += static_cast<size_t>(n);
  }
  return true;
}

/// Expects an ERROR frame with `code`, followed by connection close.
void ExpectErrorThenClose(int fd, ErrorCode code) {
  FrameType type;
  server::Buffer payload;
  ASSERT_TRUE(ReadFrameRaw(fd, &type, &payload));
  ASSERT_EQ(type, FrameType::kError);
  server::ErrorFrame error;
  ASSERT_TRUE(server::ParseError(payload, &error).ok());
  EXPECT_EQ(error.code, code) << server::ErrorCodeName(error.code);
  // The server closes after flushing the error: next read is EOF.
  uint8_t byte;
  EXPECT_EQ(recv(fd, &byte, 1, 0), 0);
}

server::Buffer ValidHello() {
  server::Buffer bytes;
  server::AppendHello(&bytes, server::HelloFrame{});
  return bytes;
}

TEST(ServerIntegrationTest, RejectsMalformedFrames) {
  const TetraMesh mesh = MakeBox(4);
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1));

  {
    SCOPED_TRACE("garbage bytes instead of a frame");
    const int fd = RawConnect(fixture.port());
    SendRaw(fd, server::Buffer(16, 'X'));
    ExpectErrorThenClose(fd, ErrorCode::kMalformedFrame);
    close(fd);
  }
  {
    SCOPED_TRACE("oversized announced payload");
    server::Buffer bytes(server::kFrameHeaderBytes, 0);
    const uint32_t huge = server::kMaxFramePayloadBytes + 1;
    std::memcpy(bytes.data(), &huge, sizeof(huge));
    bytes[4] = static_cast<uint8_t>(FrameType::kHello);
    const int fd = RawConnect(fixture.port());
    SendRaw(fd, bytes);
    ExpectErrorThenClose(fd, ErrorCode::kFrameTooLarge);
    close(fd);
  }
  {
    SCOPED_TRACE("HELLO with wrong magic");
    server::Buffer bytes;
    server::HelloFrame hello;
    hello.magic = 0xDEADBEEF;
    server::AppendHello(&bytes, hello);
    const int fd = RawConnect(fixture.port());
    SendRaw(fd, bytes);
    ExpectErrorThenClose(fd, ErrorCode::kBadMagic);
    close(fd);
  }
  {
    SCOPED_TRACE("HELLO with unsupported version");
    server::Buffer bytes;
    server::HelloFrame hello;
    hello.version = 999;
    server::AppendHello(&bytes, hello);
    const int fd = RawConnect(fixture.port());
    SendRaw(fd, bytes);
    ExpectErrorThenClose(fd, ErrorCode::kVersionMismatch);
    close(fd);
  }
  {
    // A previous-generation peer (v4: no trace frames, 144-byte batch
    // stats) must be turned away at the handshake, not mid-stream.
    SCOPED_TRACE("HELLO from a v4 peer");
    server::Buffer bytes;
    server::HelloFrame hello;
    hello.version = server::kProtocolVersion - 1;
    server::AppendHello(&bytes, hello);
    const int fd = RawConnect(fixture.port());
    SendRaw(fd, bytes);
    ExpectErrorThenClose(fd, ErrorCode::kVersionMismatch);
    close(fd);
  }
  {
    SCOPED_TRACE("query before HELLO");
    server::Buffer bytes;
    server::AppendQueryBatch(&bytes, 1, {});
    const int fd = RawConnect(fixture.port());
    SendRaw(fd, bytes);
    ExpectErrorThenClose(fd, ErrorCode::kUnexpectedFrame);
    close(fd);
  }
  {
    SCOPED_TRACE("QUERY_BATCH whose count lies about the payload");
    server::Buffer bytes = ValidHello();
    const std::vector<AABB> one = {AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))};
    server::Buffer query;
    server::AppendQueryBatch(&query, 1, one);
    query[server::kFrameHeaderBytes + 8] = 7;  // count field
    bytes.insert(bytes.end(), query.begin(), query.end());
    const int fd = RawConnect(fixture.port());
    SendRaw(fd, bytes);
    FrameType type;
    server::Buffer payload;
    ASSERT_TRUE(ReadFrameRaw(fd, &type, &payload));
    EXPECT_EQ(type, FrameType::kWelcome);
    ExpectErrorThenClose(fd, ErrorCode::kMalformedFrame);
    close(fd);
  }
  {
    SCOPED_TRACE("server-only frame type from a client");
    server::Buffer bytes = ValidHello();
    server::AppendStats(&bytes, server::ServerStatsWire{});
    const int fd = RawConnect(fixture.port());
    SendRaw(fd, bytes);
    FrameType type;
    server::Buffer payload;
    ASSERT_TRUE(ReadFrameRaw(fd, &type, &payload));
    EXPECT_EQ(type, FrameType::kWelcome);
    ExpectErrorThenClose(fd, ErrorCode::kUnexpectedFrame);
    close(fd);
  }

  // The server survived every abuse: a well-behaved client still works.
  auto remote = MustConnect(fixture.port());
  const std::vector<AABB> queries = {AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))};
  auto result = remote->ExecuteBatch(queries);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Sorted(result.Value().results.per_query[0]),
            BruteForceRangeQuery(mesh, queries[0]));

  // Garbage, oversized and count-lie frames count as malformed (bad
  // magic / version / unexpected type are protocol errors, not framing
  // errors).
  fixture.StopAndJoin();
  EXPECT_GE(fixture.server().metrics().malformed_frames, 3u);
}

// The WELCOME frame must advertise the CONFIGURED coalescing cap. The
// concurrency audit replaced the I/O threads' unlocked read of the
// scheduler (which lives behind sched_mu_) with the server's immutable
// options copy; this pins down that the advertised value is still the
// configured one, not a default that happens to match.
TEST(ServerIntegrationTest, WelcomeAdvertisesConfiguredBatchCap) {
  const TetraMesh mesh = MakeBox(4);
  ServerOptions options;
  options.scheduler.max_batch_queries = 123;  // non-default on purpose
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1), options);

  const int fd = RawConnect(fixture.port());
  SendRaw(fd, ValidHello());
  FrameType type;
  server::Buffer payload;
  ASSERT_TRUE(ReadFrameRaw(fd, &type, &payload));
  ASSERT_EQ(type, FrameType::kWelcome);
  server::WelcomeFrame welcome;
  ASSERT_TRUE(server::ParseWelcome(payload, &welcome).ok());
  EXPECT_EQ(welcome.max_batch_queries, 123u);
  EXPECT_EQ(welcome.version, server::kProtocolVersion);
  close(fd);
}

// Admission control: a full pending queue answers OVERLOADED without
// dropping the connection or the already-accepted request — which still
// completes, even across a graceful shutdown.
TEST(ServerIntegrationTest, OverloadIsExplicitAndAcceptedWorkCompletes) {
  const TetraMesh mesh = MakeBox(6);
  ServerOptions options;
  options.scheduler.window_nanos = 60'000'000'000;  // park requests
  options.scheduler.max_batch_queries = 1000;
  options.scheduler.max_pending_queries = 8;
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1), options);

  QueryGenerator gen(mesh);
  Rng rng(9);
  const std::vector<AABB> queries_a = gen.MakeQueries(&rng, 6, 0.01, 0.02);
  const std::vector<AABB> queries_b = gen.MakeQueries(&rng, 6, 0.01, 0.02);

  auto client_a = MustConnect(fixture.port());
  auto client_b = MustConnect(fixture.port());

  // A's 6 queries park in the scheduler (window is a minute out).
  Result<client::RemoteBatchResult> result_a =
      Status::IOError("not run");
  std::thread thread_a([&] {
    result_a = client_a->ExecuteBatch(queries_a);
  });
  // Wait until the server has actually admitted A's queries.
  while (true) {
    auto stats = client_b->FetchStats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    if (stats.Value().queries_received >= queries_a.size()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // B's 6 would exceed the 8-query admission bound: explicit rejection.
  auto result_b = client_b->ExecuteBatch(queries_b);
  ASSERT_FALSE(result_b.ok());
  EXPECT_EQ(result_b.status().code(),
            Status::Code::kResourceExhausted)
      << result_b.status().ToString();

  // The rejected client's connection is still usable.
  auto stats_after = client_b->FetchStats();
  ASSERT_TRUE(stats_after.ok()) << stats_after.status().ToString();
  EXPECT_EQ(stats_after.Value().queries_rejected, queries_b.size());

  // Graceful shutdown executes A's parked request before closing.
  fixture.StopAndJoin();
  thread_a.join();
  ASSERT_TRUE(result_a.ok()) << result_a.status().ToString();
  for (size_t q = 0; q < queries_a.size(); ++q) {
    EXPECT_EQ(Sorted(result_a.Value().results.per_query[q]),
              BruteForceRangeQuery(mesh, queries_a[q]));
  }
}

// A peer may write its requests and half-close (SHUT_WR) before
// reading: frames buffered at EOF must still be parsed and answered,
// and the session must stay alive until the response is delivered.
TEST(ServerIntegrationTest, HalfClosedClientStillGetsItsResults) {
  const TetraMesh mesh = MakeBox(6);
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1));

  const int fd = RawConnect(fixture.port());
  server::Buffer bytes = ValidHello();
  const std::vector<AABB> queries = {AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))};
  server::AppendQueryBatch(&bytes, 77, queries);
  SendRaw(fd, bytes);
  ASSERT_EQ(shutdown(fd, SHUT_WR), 0);

  FrameType type;
  server::Buffer payload;
  ASSERT_TRUE(ReadFrameRaw(fd, &type, &payload));
  EXPECT_EQ(type, FrameType::kWelcome);
  ASSERT_TRUE(ReadFrameRaw(fd, &type, &payload));
  ASSERT_EQ(type, FrameType::kResult);
  uint64_t request_id = 0;
  server::BatchStatsWire stats;
  std::vector<std::vector<VertexId>> per_query;
  ASSERT_TRUE(
      server::ParseResult(payload, &request_id, &stats, &per_query).ok());
  EXPECT_EQ(request_id, 77u);
  ASSERT_EQ(per_query.size(), 1u);
  EXPECT_EQ(Sorted(per_query[0]), BruteForceRangeQuery(mesh, queries[0]));
  // After delivering everything it owed, the server closes its side.
  uint8_t byte;
  EXPECT_EQ(recv(fd, &byte, 1, 0), 0);
  close(fd);
}

// Silent connections must not pin max_connections slots forever: a
// session that never sends its HELLO (and one that handshakes, then
// goes mute) is answered with a typed TIMEOUT error and closed once the
// idle deadline passes — while a client with a request parked in the
// scheduler is exempt (the server owes IT an answer).
TEST(ServerIntegrationTest, IdleSessionsTimeOutWithTypedError) {
  const TetraMesh mesh = MakeBox(4);
  ServerOptions options;
  options.idle_timeout_nanos = 100'000'000;  // 100 ms
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1), options);

  // Never sends a byte: handshake timeout.
  const int silent_fd = RawConnect(fixture.port());
  // Handshakes, then goes mute: idle timeout.
  const int mute_fd = RawConnect(fixture.port());
  SendRaw(mute_fd, ValidHello());
  FrameType type;
  server::Buffer payload;
  ASSERT_TRUE(ReadFrameRaw(mute_fd, &type, &payload));
  EXPECT_EQ(type, FrameType::kWelcome);

  ExpectErrorThenClose(silent_fd, ErrorCode::kTimeout);
  ExpectErrorThenClose(mute_fd, ErrorCode::kTimeout);
  close(silent_fd);
  close(mute_fd);

  // A session waiting on its own parked request survives deadlines far
  // longer than the timeout: the pending work exempts it.
  ServerOptions parked;
  parked.idle_timeout_nanos = 100'000'000;
  parked.scheduler.window_nanos = 400'000'000;  // 4x the idle timeout
  ServerFixture parked_fixture(VersionedBackend::FromMesh(mesh, 1),
                               parked);
  auto client = MustConnect(parked_fixture.port());
  const std::vector<AABB> queries = {AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))};
  auto result = client->ExecuteBatch(queries);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Sorted(result.Value().results.per_query[0]),
            BruteForceRangeQuery(mesh, queries[0]));
}

// Regression: a session whose request waited out a coalescing window
// LONGER than the idle timeout must not be condemned the moment its
// result is delivered. `last_activity_nanos` used to advance only on
// received frames, so the pending-exemption lapsed at dispatch with the
// activity clock still pointing at the long-gone receive — the next
// loop iteration sent ERROR(TIMEOUT) and closed, right after a
// perfectly served request. Activity now also advances at dispatch.
TEST(ServerIntegrationTest, SlowCoalescingWindowDoesNotCondemnSession) {
  const TetraMesh mesh = MakeBox(4);
  ServerOptions options;
  options.idle_timeout_nanos = 100'000'000;        // 100 ms
  options.scheduler.window_nanos = 300'000'000;    // 3x the idle timeout
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1), options);
  auto client = MustConnect(fixture.port());
  const std::vector<AABB> queries = {AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))};

  // First request parks for the full 300 ms window, then executes.
  auto first = client->ExecuteBatch(queries);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // With the bug, the session is already condemned: the second request
  // would be answered by the buffered ERROR(TIMEOUT) + close instead of
  // a RESULT. With the fix, the idle clock restarted at delivery and
  // the session has a full timeout of headroom.
  auto second = client->ExecuteBatch(queries);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(Sorted(second.Value().results.per_query[0]),
            BruteForceRangeQuery(mesh, queries[0]));
}

// Graceful drain announces itself: instead of a silent EOF, every
// surviving session receives ERROR(SHUTTING_DOWN) after the results it
// is owed.
TEST(ServerIntegrationTest, DrainEmitsTypedShuttingDown) {
  const TetraMesh mesh = MakeBox(4);
  auto fixture = std::make_unique<ServerFixture>(
      VersionedBackend::FromMesh(mesh, 1));

  const int fd = RawConnect(fixture->port());
  server::Buffer bytes = ValidHello();
  const std::vector<AABB> queries = {AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))};
  server::AppendQueryBatch(&bytes, 5, queries);
  SendRaw(fd, bytes);
  FrameType type;
  server::Buffer payload;
  ASSERT_TRUE(ReadFrameRaw(fd, &type, &payload));
  EXPECT_EQ(type, FrameType::kWelcome);
  ASSERT_TRUE(ReadFrameRaw(fd, &type, &payload));
  ASSERT_EQ(type, FrameType::kResult);

  // Stop the server while the connection is alive and fully served.
  fixture->StopAndJoin();

  // The drain delivered a typed goodbye, then closed.
  ASSERT_TRUE(ReadFrameRaw(fd, &type, &payload));
  ASSERT_EQ(type, FrameType::kError);
  server::ErrorFrame error;
  ASSERT_TRUE(server::ParseError(payload, &error).ok());
  EXPECT_EQ(error.code, ErrorCode::kShuttingDown)
      << server::ErrorCodeName(error.code);
  uint8_t byte;
  EXPECT_EQ(recv(fd, &byte, 1, 0), 0);
  close(fd);
}

TEST(ServerIntegrationTest, EmptyBatchReturnsImmediately) {
  const TetraMesh mesh = MakeBox(4);
  ServerOptions options;
  options.scheduler.window_nanos = 60'000'000'000;  // would park forever
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1), options);
  auto remote = MustConnect(fixture.port());
  auto result = remote->ExecuteBatch({});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.Value().results.size(), 0u);
  EXPECT_EQ(result.Value().stats.queries, 0u);
}

TEST(BatchSchedulerTest, CoalescesWholeRequestsUpToTheCap) {
  auto backend = VersionedBackend::FromMesh(MakeBox(4), 1);
  server::SchedulerOptions options;
  options.max_batch_queries = 5;
  options.window_nanos = 1'000'000'000;
  server::BatchScheduler scheduler(options);
  server::ServerMetrics metrics;

  const AABB box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  auto request = [&](uint64_t session, uint64_t id, size_t queries) {
    server::PendingRequest r;
    r.session_id = session;
    r.request_id = id;
    r.boxes.assign(queries, box);
    r.arrival_nanos = 100;
    return r;
  };

  // 3 + 2 fill the cap exactly; the third request waits for the next
  // batch.
  ASSERT_TRUE(scheduler.Enqueue(request(1, 1, 3)));
  ASSERT_TRUE(scheduler.Enqueue(request(2, 2, 2)));
  ASSERT_TRUE(scheduler.Enqueue(request(3, 3, 4)));
  EXPECT_EQ(scheduler.pending_queries(), 9u);
  // Size trigger reached: due immediately regardless of the window.
  EXPECT_EQ(scheduler.NanosUntilDue(101), 0);

  std::vector<server::CompletedRequest> completed;
  scheduler.ExecuteReady(backend.get(), &completed, &metrics);
  ASSERT_EQ(completed.size(), 2u);
  EXPECT_EQ(completed[0].request_id, 1u);
  EXPECT_EQ(completed[1].request_id, 2u);
  EXPECT_EQ(completed[0].stats.batch_queries, 5u);
  EXPECT_EQ(completed[0].stats.batch_requests, 2u);
  EXPECT_EQ(completed[0].per_query.size(), 3u);
  EXPECT_EQ(completed[1].per_query.size(), 2u);
  EXPECT_EQ(metrics.batches_executed, 1u);
  EXPECT_EQ(metrics.queries_executed, 5u);
  EXPECT_EQ(scheduler.pending_queries(), 4u);

  // Remaining request executes when its window expires.
  EXPECT_GT(scheduler.NanosUntilDue(101), 0);
  EXPECT_EQ(scheduler.NanosUntilDue(100 + 1'000'000'000), 0);
  completed.clear();
  scheduler.ExecuteReady(backend.get(), &completed, &metrics);
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].request_id, 3u);
  EXPECT_EQ(completed[0].stats.batch_requests, 1u);
  EXPECT_FALSE(scheduler.HasPending());
}

TEST(BatchSchedulerTest, OversizedRequestExecutesAlone) {
  auto backend = VersionedBackend::FromMesh(MakeBox(4), 1);
  server::SchedulerOptions options;
  options.max_batch_queries = 2;
  server::BatchScheduler scheduler(options);
  server::ServerMetrics metrics;

  server::PendingRequest big;
  big.session_id = 1;
  big.request_id = 1;
  big.boxes.assign(7, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)));
  ASSERT_TRUE(scheduler.Enqueue(std::move(big)));
  std::vector<server::CompletedRequest> completed;
  scheduler.ExecuteReady(backend.get(), &completed, &metrics);
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].per_query.size(), 7u);
  EXPECT_EQ(completed[0].stats.batch_queries, 7u);
}

TEST(BatchSchedulerTest, AdmissionControlAndSessionDrop) {
  server::SchedulerOptions options;
  options.max_pending_queries = 10;
  server::BatchScheduler scheduler(options);

  auto request = [&](uint64_t session, size_t queries) {
    server::PendingRequest r;
    r.session_id = session;
    r.request_id = session;
    r.boxes.assign(queries, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)));
    return r;
  };
  EXPECT_TRUE(scheduler.Enqueue(request(1, 6)));
  EXPECT_FALSE(scheduler.Enqueue(request(2, 6)));  // 12 > 10
  EXPECT_TRUE(scheduler.Enqueue(request(3, 4)));   // fits exactly
  EXPECT_EQ(scheduler.pending_queries(), 10u);

  scheduler.DropSession(1);
  EXPECT_EQ(scheduler.pending_queries(), 4u);
  EXPECT_TRUE(scheduler.Enqueue(request(2, 6)));  // freed capacity
  EXPECT_EQ(scheduler.pending_queries(), 10u);

  // An empty queue admits even a request above the bound by itself, so
  // an oversized batch is served alone, never rejected forever.
  scheduler.DropSession(2);
  scheduler.DropSession(3);
  ASSERT_FALSE(scheduler.HasPending());
  EXPECT_TRUE(scheduler.Enqueue(request(4, 25)));
  EXPECT_EQ(scheduler.pending_queries(), 25u);
  EXPECT_FALSE(scheduler.Enqueue(request(5, 1)));  // bound applies again
}

// --- Observability: /metrics endpoint and flight-recorder dumps ---

/// One blocking HTTP/1.0 GET against the server's metrics port;
/// returns the full response (status line + headers + body).
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = RawConnect(port);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  while (true) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

/// Extracts the value of sample line `name <value>` from exposition
/// text; -1 when the metric is absent.
double MetricValue(const std::string& text, const std::string& name) {
  size_t pos = 0;
  const std::string prefix = name + " ";
  while (pos < text.size()) {
    const size_t end = text.find('\n', pos);
    const std::string line =
        text.substr(pos, end == std::string::npos ? end : end - pos);
    if (line.compare(0, prefix.size(), prefix) == 0) {
      return std::stod(line.substr(prefix.size()));
    }
    if (end == std::string::npos) break;
    pos = end + 1;
  }
  return -1.0;
}

// The tentpole parity requirement: counters scraped over HTTP must be
// exactly the numbers the authoritative OCTP STATS frame reports —
// same single-writer state, two read paths.
TEST(ServerIntegrationTest, MetricsEndpointMatchesOctpStats) {
  const TetraMesh mesh = MakeBox(6);
  ServerOptions options;
  options.metrics_port = 0;  // ephemeral
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1), options);
  const uint16_t metrics_port = fixture.server().metrics_port();
  ASSERT_NE(metrics_port, 0);

  auto remote = MustConnect(fixture.port());
  QueryGenerator gen(mesh);
  Rng rng(21);
  for (int r = 0; r < 3; ++r) {
    auto result =
        remote->ExecuteBatch(gen.MakeQueries(&rng, 5, 0.01, 0.05));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }

  // STATS first: after its reply no further OCTP frames arrive, so the
  // scrape that follows must observe the identical counters.
  auto stats = remote->FetchStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  const std::string response = HttpGet(metrics_port, "/metrics");
  ASSERT_NE(response.find("HTTP/1.0 200"), std::string::npos)
      << response.substr(0, 64);
  ASSERT_NE(response.find("text/plain"), std::string::npos);
  const size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);

  const auto& wire = stats.Value();
  EXPECT_EQ(MetricValue(body, "octopus_connections_accepted_total"),
            static_cast<double>(wire.connections_accepted));
  EXPECT_EQ(MetricValue(body, "octopus_connections_active"),
            static_cast<double>(wire.connections_active));
  EXPECT_EQ(MetricValue(body, "octopus_frames_received_total"),
            static_cast<double>(wire.frames_received));
  EXPECT_EQ(MetricValue(body, "octopus_malformed_frames_total"),
            static_cast<double>(wire.malformed_frames));
  EXPECT_EQ(MetricValue(body, "octopus_queries_received_total"),
            static_cast<double>(wire.queries_received));
  EXPECT_EQ(MetricValue(body, "octopus_queries_rejected_total"),
            static_cast<double>(wire.queries_rejected));
  EXPECT_EQ(MetricValue(body, "octopus_queries_executed_total"),
            static_cast<double>(wire.queries_executed));
  EXPECT_EQ(MetricValue(body, "octopus_batches_executed_total"),
            static_cast<double>(wire.batches_executed));
  EXPECT_EQ(MetricValue(body, "octopus_page_hits_total"),
            static_cast<double>(wire.page_hits));
  EXPECT_EQ(MetricValue(body, "octopus_page_misses_total"),
            static_cast<double>(wire.page_misses));
  EXPECT_EQ(MetricValue(body, "octopus_lease_hits_total"),
            static_cast<double>(wire.lease_hits));
  EXPECT_EQ(MetricValue(body, "octopus_steps_applied_total"),
            static_cast<double>(wire.steps_applied));
  // Histogram plumbing: every executed request is in the histogram.
  EXPECT_EQ(MetricValue(body, "octopus_request_latency_seconds_count"),
            3.0);
  // Tracing is on by default: the ring saw every request too.
  EXPECT_EQ(MetricValue(body, "octopus_trace_records_total"), 3.0);

  // A second scrape must be monotone in every counter it repeats.
  auto again = remote->ExecuteBatch(gen.MakeQueries(&rng, 2, 0.01, 0.05));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  const std::string response2 = HttpGet(metrics_port, "/metrics");
  const std::string body2 =
      response2.substr(response2.find("\r\n\r\n") + 4);
  for (const char* counter :
       {"octopus_queries_received_total", "octopus_frames_received_total",
        "octopus_results_sent_total", "octopus_trace_records_total"}) {
    EXPECT_GE(MetricValue(body2, counter), MetricValue(body, counter))
        << counter;
  }
  EXPECT_EQ(MetricValue(body2, "octopus_queries_received_total"),
            MetricValue(body, "octopus_queries_received_total") + 2);

  // Unknown paths 404; the OCTP plane is untouched by scrapes.
  const std::string missing = HttpGet(metrics_port, "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos)
      << missing.substr(0, 64);
  auto final_stats = remote->FetchStats();
  ASSERT_TRUE(final_stats.ok()) << final_stats.status().ToString();
  EXPECT_EQ(final_stats.Value().queries_received,
            wire.queries_received + 2);
}

// TRACE_DUMP end to end: executed requests must appear in the ring
// with non-zero phase spans, and the CLI's Chrome-trace rendering of
// the dump must carry those spans.
TEST(ServerIntegrationTest, TraceDumpCapturesPhaseTimings) {
  const TetraMesh mesh = MakeBox(6);
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1));
  auto remote = MustConnect(fixture.port());

  // A whole-mesh box guarantees probe, walk/crawl work and a non-empty
  // result set to serialize.
  const std::vector<AABB> queries = {AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)),
                                     AABB(Vec3(0, 0, 0),
                                          Vec3(0.5f, 0.5f, 0.5f))};
  auto result = remote->ExecuteBatch(queries);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto dump = remote->FetchTraceDump();
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_EQ(dump.Value().total_recorded, 1u);
  ASSERT_EQ(dump.Value().records.size(), 1u);
  const obs::QueryTraceRecord& rec = dump.Value().records[0];
  EXPECT_EQ(rec.trace_id, 1u);
  EXPECT_EQ(rec.queries, queries.size());
  EXPECT_EQ(rec.batch_queries, queries.size());
  EXPECT_EQ(rec.batch_requests, 1u);
  EXPECT_GT(rec.probe_nanos, 0);
  EXPECT_GT(rec.crawl_nanos, 0);
  EXPECT_GT(rec.serialize_nanos, 0);
  EXPECT_GT(rec.total_nanos, 0);
  EXPECT_GE(rec.queue_wait_nanos, 0);
  EXPECT_GT(rec.result_vertices, 0u);
  // The trace's wall clock is at least the sum of its engine phases.
  EXPECT_GE(rec.total_nanos, rec.probe_nanos + rec.walk_nanos +
                                 rec.crawl_nanos + rec.serialize_nanos);

  // A second request lands behind the first, ids strictly ordered.
  ASSERT_TRUE(remote->ExecuteBatch(queries).ok());
  auto dump2 = remote->FetchTraceDump();
  ASSERT_TRUE(dump2.ok()) << dump2.status().ToString();
  ASSERT_EQ(dump2.Value().records.size(), 2u);
  EXPECT_EQ(dump2.Value().records[0].trace_id, 1u);
  EXPECT_EQ(dump2.Value().records[1].trace_id, 2u);
  EXPECT_GE(dump2.Value().records[1].arrival_nanos,
            dump2.Value().records[0].arrival_nanos);

  // The Chrome rendering of the live dump carries the spans proved
  // non-zero above (zero-duration spans are elided by design — the
  // full phase-name set is unit-tested in test_obs.cc).
  const std::string json = obs::ChromeTraceJson(dump2.Value().records);
  for (const char* name : {"\"request\"", "\"probe\"", "\"crawl\"",
                           "\"serialize\"", "\"traceEvents\""}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

// serve --trace-ring 0: the dump answers empty instead of erroring,
// and the query path is unaffected.
TEST(ServerIntegrationTest, DisabledTracingAnswersEmptyDump) {
  const TetraMesh mesh = MakeBox(4);
  ServerOptions options;
  options.trace_ring_slots = 0;
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1), options);
  auto remote = MustConnect(fixture.port());
  const std::vector<AABB> queries = {AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))};
  ASSERT_TRUE(remote->ExecuteBatch(queries).ok());
  auto dump = remote->FetchTraceDump();
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_EQ(dump.Value().total_recorded, 0u);
  EXPECT_TRUE(dump.Value().records.empty());
}

// --slow-query-ms: a threshold of one nanosecond classifies every
// request as slow; the counter must say so.
TEST(ServerIntegrationTest, SlowQueryThresholdCountsRequests) {
  const TetraMesh mesh = MakeBox(4);
  ServerOptions options;
  options.slow_query_nanos = 1;
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1), options);
  auto remote = MustConnect(fixture.port());
  const std::vector<AABB> queries = {AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))};
  ASSERT_TRUE(remote->ExecuteBatch(queries).ok());
  ASSERT_TRUE(remote->ExecuteBatch(queries).ok());
  fixture.StopAndJoin();
  EXPECT_EQ(fixture.server().metrics().slow_queries, 2u);
}

/// A retention-configured dynamic backend whose epochs spill and evict
/// within a few steps (window 2, history 4, sidecar under TempDir).
std::unique_ptr<VersionedBackend> MakeDeformingBackend(
    const TetraMesh& mesh, const std::string& spill_name) {
  auto backend = VersionedBackend::FromMesh(mesh, 1);
  server::EpochRetentionOptions retention;
  retention.retention_epochs = 2;
  retention.history_epochs = 4;
  retention.spill_path = ::testing::TempDir() + "/" + spill_name;
  EXPECT_TRUE(backend->ConfigureRetention(retention).ok());
  DeformerSpec spec;
  spec.kind = DeformerKind::kRandom;
  spec.amplitude = 0.02f;
  spec.seed = 2026;
  EXPECT_TRUE(backend->BindDeformer(spec).ok());
  return backend;
}

// The tentpole acceptance bar: driving pin / step / unpin over OCTP
// against a spilling backend must produce an ordered lifecycle stream,
// and /journal must serve exactly what the ring holds.
TEST(ServerIntegrationTest, JournalRecordsLifecycleAndServesIt) {
  const TetraMesh mesh = MakeBox(6);
  obs::EventJournal journal(128);
  ServerOptions options;
  options.metrics_port = 0;
  options.journal = &journal;
  ServerFixture fixture(MakeDeformingBackend(mesh, "journal_life.oct2d"),
                        options);
  const uint16_t metrics_port = fixture.server().metrics_port();
  ASSERT_NE(metrics_port, 0);

  {
    auto remote = MustConnect(fixture.port());
    auto pinned = remote->PinEpoch(0);  // pin the initial epoch
    ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
    EXPECT_EQ(pinned.Value().epoch, 1u);
    // Eight steps push unpinned epochs out of the window (spill) and
    // past the history cap (evict); the pin itself stays resident.
    for (int s = 0; s < 8; ++s) {
      ASSERT_TRUE(remote->Step(1).ok());
    }
    ASSERT_TRUE(remote->UnpinEpoch(1).ok());

    // Quiescent (every OCTP call above is synchronous): the endpoint
    // must serve the ring verbatim.
    const std::string response = HttpGet(metrics_port, "/journal");
    ASSERT_NE(response.find("HTTP/1.0 200"), std::string::npos)
        << response.substr(0, 64);
    ASSERT_NE(response.find("Content-Type: application/json"),
              std::string::npos);
    const std::string body = response.substr(response.find("\r\n\r\n") + 4);
    EXPECT_EQ(body, journal.RenderJson());

    // The lifecycle reads in causal order: the session opened before it
    // pinned, pins precede steps, a step precedes its publication, and
    // spill precedes the eviction of the spilled epoch.
    size_t at = 0;
    for (const char* kind :
         {"\"kind\":\"session_opened\"", "\"kind\":\"epoch_pinned\"",
          "\"kind\":\"step_applied\"", "\"kind\":\"epoch_published\"",
          "\"kind\":\"epoch_spilled\"", "\"kind\":\"epoch_evicted\"",
          "\"kind\":\"epoch_unpinned\""}) {
      const size_t found = body.find(kind, at);
      ASSERT_NE(found, std::string::npos) << kind << " after " << at;
      at = found;
    }

    // /metrics counts the same journal.
    const std::string metrics = HttpGet(metrics_port, "/metrics");
    const std::string metrics_body =
        metrics.substr(metrics.find("\r\n\r\n") + 4);
    EXPECT_EQ(MetricValue(metrics_body, "octopus_journal_events_total"),
              static_cast<double>(journal.total_emitted()));
    EXPECT_EQ(MetricValue(metrics_body, "octopus_journal_ring_events"),
              static_cast<double>(journal.size()));
  }
  fixture.StopAndJoin();

  // The close and the drain made the journal too, with seq gapless.
  std::vector<obs::JournalEvent> events;
  journal.Snapshot(&events);
  ASSERT_FALSE(events.empty());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1) << i;
  }
  bool saw_closed = false, saw_drain_began = false, saw_drain_ended = false;
  for (const obs::JournalEvent& event : events) {
    saw_closed |= event.kind == obs::EventKind::kSessionClosed;
    saw_drain_began |= event.kind == obs::EventKind::kDrainBegan;
    saw_drain_ended |= event.kind == obs::EventKind::kDrainEnded;
  }
  EXPECT_TRUE(saw_closed);
  EXPECT_TRUE(saw_drain_began);
  EXPECT_TRUE(saw_drain_ended);
}

// /epochs must be counter-equal with the EpochStore's own view at a
// quiescent point — same retention ring, two read paths.
TEST(ServerIntegrationTest, EpochsEndpointMatchesTheStoreView) {
  const TetraMesh mesh = MakeBox(6);
  auto backend = MakeDeformingBackend(mesh, "epochs_endpoint.oct2d");
  VersionedBackend* raw = backend.get();
  ServerOptions options;
  options.metrics_port = 0;
  ServerFixture fixture(std::move(backend), options);
  auto remote = MustConnect(fixture.port());
  for (int s = 0; s < 6; ++s) {
    ASSERT_TRUE(remote->Step(1).ok());
  }

  const std::string response =
      HttpGet(fixture.server().metrics_port(), "/epochs");
  ASSERT_NE(response.find("HTTP/1.0 200"), std::string::npos)
      << response.substr(0, 64);
  const std::string body = response.substr(response.find("\r\n\r\n") + 4);

  const server::EpochStoreView view = raw->epoch_store()->View();
  EXPECT_GT(view.evicted_total, 0u);  // the workload actually churned
  EXPECT_GT(view.spill_pages_written, 0u);
  EXPECT_NE(body.find("\"dynamic\":true"), std::string::npos);
  EXPECT_NE(body.find("\"current_epoch\":7"), std::string::npos);
  EXPECT_NE(body.find("\"current_step\":6"), std::string::npos);
  EXPECT_NE(body.find("\"resident_bytes\":" +
                      std::to_string(view.resident_bytes)),
            std::string::npos);
  EXPECT_NE(body.find("\"evicted_total\":" +
                      std::to_string(view.evicted_total)),
            std::string::npos);
  EXPECT_NE(body.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(body.find("\"pages_written\":" +
                      std::to_string(view.spill_pages_written)),
            std::string::npos);
  EXPECT_NE(body.find("\"bytes_written\":" +
                      std::to_string(view.spill_bytes_written)),
            std::string::npos);
  // One JSON entry per retained epoch, no more, no fewer.
  size_t entry_count = 0;
  for (size_t at = body.find("{\"epoch\":"); at != std::string::npos;
       at = body.find("{\"epoch\":", at + 1)) {
    ++entry_count;
  }
  EXPECT_EQ(entry_count, view.entries.size());
}

// A static backend still answers /epochs (one implicit epoch) and
// /readyz (always ready — nothing can stall).
TEST(ServerIntegrationTest, StaticBackendIntrospectionEndpoints) {
  const TetraMesh mesh = MakeBox(4);
  ServerOptions options;
  options.metrics_port = 0;
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1), options);
  const uint16_t metrics_port = fixture.server().metrics_port();

  const std::string health = HttpGet(metrics_port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos);

  const std::string epochs = HttpGet(metrics_port, "/epochs");
  EXPECT_NE(epochs.find("\"dynamic\":false"), std::string::npos);
  EXPECT_NE(epochs.find("\"entries\":[]"), std::string::npos);

  const std::string ready = HttpGet(metrics_port, "/readyz");
  EXPECT_NE(ready.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(ready.find("\"ready\":true"), std::string::npos);
  EXPECT_NE(ready.find("\"publish_lag_seconds\":null"), std::string::npos);

  // No journal configured: the endpoint answers an empty document.
  const std::string journal = HttpGet(metrics_port, "/journal");
  EXPECT_NE(journal.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(journal.find("{\"total\":0,\"capacity\":0,\"events\":[]}"),
            std::string::npos);

  // Unknown paths get the route hint.
  const std::string missing = HttpGet(metrics_port, "/epoch");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);
  EXPECT_NE(missing.find("try /metrics /healthz /readyz /epochs /journal"),
            std::string::npos);
}

// --ready-lag-ms: a 1 ns bound is stale by the time any scrape lands,
// so /readyz must answer 503 with the stall reason.
TEST(ServerIntegrationTest, ReadyzFlips503WhenPublicationStalls) {
  const TetraMesh mesh = MakeBox(4);
  ServerOptions options;
  options.metrics_port = 0;
  options.ready_max_publish_lag_nanos = 1;
  ServerFixture fixture(MakeDeformingBackend(mesh, "readyz_lag.oct2d"),
                        options);
  const std::string ready =
      HttpGet(fixture.server().metrics_port(), "/readyz");
  EXPECT_NE(ready.find("HTTP/1.0 503 Service Unavailable"),
            std::string::npos)
      << ready.substr(0, 64);
  EXPECT_NE(ready.find("\"ready\":false"), std::string::npos);
  EXPECT_NE(ready.find("epoch publication stalled"), std::string::npos);
}

// v6 trace propagation end to end: the RESULT's stats block carries the
// server's flight-recorder id, the client span records it, and the two
// sides merge into one nested Chrome trace.
TEST(ServerIntegrationTest, ResultCarriesTraceIdAndClientSpansRecordIt) {
  const TetraMesh mesh = MakeBox(4);
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1));
  auto remote = MustConnect(fixture.port());
  remote->set_record_spans(true);
  const std::vector<AABB> queries = {AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))};

  auto first = remote->ExecuteBatch(queries);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.Value().stats.trace_id, 1u);
  auto second = remote->ExecuteBatch(queries);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.Value().stats.trace_id, 2u);

  ASSERT_EQ(remote->spans().size(), 2u);
  const obs::ClientCallSpan& span = remote->spans()[0];
  EXPECT_EQ(span.span_id, 1u);
  EXPECT_EQ(span.server_trace_id, 1u);
  EXPECT_EQ(span.queries, queries.size());
  EXPECT_GT(span.start_unix_nanos, 0);
  EXPECT_GE(span.send_nanos, 0);
  EXPECT_GE(span.wait_nanos, 0);
  EXPECT_GE(span.recv_nanos, 0);
  EXPECT_GT(span.send_nanos + span.wait_nanos + span.recv_nanos, 0);
  EXPECT_EQ(remote->spans()[1].span_id, 2u);
  EXPECT_EQ(remote->spans()[1].server_trace_id, 2u);

  // The merged rendering joins on those ids: both client call spans and
  // both matched server request spans appear.
  auto dump = remote->FetchTraceDump();
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  const std::string merged =
      obs::MergedChromeTraceJson(dump.Value().records, remote->spans());
  EXPECT_NE(merged.find("\"name\":\"call\""), std::string::npos);
  EXPECT_NE(merged.find("\"name\":\"request\",\"ph\":\"X\",\"pid\":2"),
            std::string::npos);
  EXPECT_NE(merged.find("\"server_trace_id\":2"), std::string::npos);
}

// An untraced server echoes trace_id 0 — the client must not invent a
// join key where none exists.
TEST(ServerIntegrationTest, UntracedServerEchoesZeroTraceId) {
  const TetraMesh mesh = MakeBox(4);
  ServerOptions options;
  options.trace_ring_slots = 0;
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1), options);
  auto remote = MustConnect(fixture.port());
  remote->set_record_spans(true);
  const std::vector<AABB> queries = {AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))};
  auto result = remote->ExecuteBatch(queries);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.Value().stats.trace_id, 0u);
  ASSERT_EQ(remote->spans().size(), 1u);
  EXPECT_EQ(remote->spans()[0].server_trace_id, 0u);
  EXPECT_EQ(remote->spans()[0].span_id, 1u);
}

// --- Multi-threaded front end (io_threads > 1) ---

// The single-loop tests above all run with the default io_threads = 1;
// this block repeats the load-bearing semantics with sessions sharded
// across four epoll threads: per-client result integrity, cross-
// connection coalescing through the shared scheduler, and the merged
// loop-stall snapshot.
TEST(ServerIntegrationTest, MultiThreadedClientsGetTheirOwnResults) {
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 5;
  constexpr int kQueriesPerRequest = 10;

  const TetraMesh mesh = MakeBox(8);
  ServerOptions options;
  options.io_threads = 4;
  options.scheduler.window_nanos = 2'000'000;
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1), options);

  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto connected = RemoteClient::Connect("127.0.0.1", fixture.port());
      if (!connected.ok()) {
        failures[c] = connected.status().ToString();
        return;
      }
      QueryGenerator gen(mesh);
      Rng rng(4000 + c);
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const std::vector<AABB> queries =
            gen.MakeQueries(&rng, kQueriesPerRequest, 0.001, 0.02);
        auto result = connected.Value()->ExecuteBatch(queries);
        if (!result.ok()) {
          failures[c] = result.status().ToString();
          return;
        }
        for (size_t q = 0; q < queries.size(); ++q) {
          if (Sorted(result.Value().results.per_query[q]) !=
              BruteForceRangeQuery(mesh, queries[q])) {
            failures[c] = "client " + std::to_string(c) +
                          " got wrong results for query " +
                          std::to_string(q);
            return;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }

  auto stats_client = MustConnect(fixture.port());
  auto stats = stats_client->FetchStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const uint64_t total =
      uint64_t{kClients} * kRequestsPerClient * kQueriesPerRequest;
  EXPECT_EQ(stats.Value().queries_received, total);
  EXPECT_EQ(stats.Value().queries_executed, total);
  EXPECT_EQ(stats.Value().queries_rejected, 0u);
  // Sessions live on different epoll threads, but the scheduler is
  // shared: requests still coalesce across connections.
  EXPECT_LE(stats.Value().batches_executed,
            uint64_t{kClients} * kRequestsPerClient);
  EXPECT_GE(stats.Value().CoalesceFactor(),
            static_cast<double>(kQueriesPerRequest));

  fixture.StopAndJoin();
  // The snapshot path merges every I/O thread's stall shard; with this
  // much traffic at least one shard sampled.
  const server::ServerMetrics snapshot = fixture.server().MetricsSnapshot();
  EXPECT_GE(snapshot.loop_stall.count(), 1u);
  EXPECT_EQ(snapshot.connections_active(), 0u);
  EXPECT_LE(snapshot.queries_executed,
            snapshot.queries_received - snapshot.queries_rejected);
}

// Admission control under sharded I/O: the rejecting session and the
// admitted one live on different epoll threads, yet both observe the
// same scheduler backlog — the overload answer is typed, the rejected
// connection stays usable, and the parked request survives a drain.
TEST(ServerIntegrationTest, OverloadIsExplicitAcrossIoThreads) {
  const TetraMesh mesh = MakeBox(6);
  ServerOptions options;
  options.io_threads = 4;
  options.scheduler.window_nanos = 60'000'000'000;  // park requests
  options.scheduler.max_batch_queries = 1000;
  options.scheduler.max_pending_queries = 8;
  ServerFixture fixture(VersionedBackend::FromMesh(mesh, 1), options);

  QueryGenerator gen(mesh);
  Rng rng(41);
  const std::vector<AABB> queries_a = gen.MakeQueries(&rng, 6, 0.01, 0.02);
  const std::vector<AABB> queries_b = gen.MakeQueries(&rng, 6, 0.01, 0.02);

  auto client_a = MustConnect(fixture.port());
  auto client_b = MustConnect(fixture.port());

  Result<client::RemoteBatchResult> result_a =
      Status::IOError("not run");
  std::thread thread_a([&] {
    result_a = client_a->ExecuteBatch(queries_a);
  });
  while (true) {
    auto stats = client_b->FetchStats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    if (stats.Value().queries_received >= queries_a.size()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  auto result_b = client_b->ExecuteBatch(queries_b);
  ASSERT_FALSE(result_b.ok());
  EXPECT_EQ(result_b.status().code(),
            Status::Code::kResourceExhausted)
      << result_b.status().ToString();

  auto stats_after = client_b->FetchStats();
  ASSERT_TRUE(stats_after.ok()) << stats_after.status().ToString();
  EXPECT_EQ(stats_after.Value().queries_rejected, queries_b.size());

  fixture.StopAndJoin();
  thread_a.join();
  ASSERT_TRUE(result_a.ok()) << result_a.status().ToString();
  for (size_t q = 0; q < queries_a.size(); ++q) {
    EXPECT_EQ(Sorted(result_a.Value().results.per_query[q]),
              BruteForceRangeQuery(mesh, queries_a[q]));
  }
}

// A dead session's pins die with it, whichever epoll thread owned the
// session: eight clients pin the initial epoch and vanish without
// UNPIN; the owning threads release every pin, draining the
// sessions-pinned gauge back to zero.
TEST(ServerIntegrationTest, PinsDieWithSessionsAcrossIoThreads) {
  const TetraMesh mesh = MakeBox(4);
  ServerOptions options;
  options.io_threads = 4;
  options.metrics_port = 0;
  ServerFixture fixture(MakeDeformingBackend(mesh, "pins_mt.oct2d"),
                        options);
  const uint16_t metrics_port = fixture.server().metrics_port();
  ASSERT_NE(metrics_port, 0);

  std::vector<std::unique_ptr<RemoteClient>> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(MustConnect(fixture.port()));
    auto pinned = clients.back()->PinEpoch(0);
    ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  }
  {
    const std::string response = HttpGet(metrics_port, "/metrics");
    const std::string body = response.substr(response.find("\r\n\r\n") + 4);
    EXPECT_EQ(MetricValue(body, "octopus_sessions_pinned_epochs"), 8.0);
    EXPECT_EQ(MetricValue(body, "octopus_io_threads"), 4.0);
  }

  clients.clear();  // abrupt closes: no UNPIN ever sent
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  double pins = -1.0;
  while (std::chrono::steady_clock::now() < deadline) {
    const std::string response = HttpGet(metrics_port, "/metrics");
    const std::string body = response.substr(response.find("\r\n\r\n") + 4);
    pins = MetricValue(body, "octopus_sessions_pinned_epochs");
    if (pins == 0.0 &&
        MetricValue(body, "octopus_connections_active") == 0.0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pins, 0.0);
}

// Clients hammering connect/query while Stop() runs must not crash,
// hang, or leak sessions: whatever the race admitted is drained and
// accounted for (accepted == closed once the server exits).
TEST(ServerIntegrationTest, ConcurrentConnectsSurviveStop) {
  const TetraMesh mesh = MakeBox(4);
  ServerOptions options;
  options.io_threads = 4;
  auto fixture = std::make_unique<ServerFixture>(
      VersionedBackend::FromMesh(mesh, 1), options);
  const uint16_t port = fixture->port();

  std::atomic<bool> stop_dialing{false};
  std::vector<std::thread> dialers;
  for (int t = 0; t < 4; ++t) {
    dialers.emplace_back([&] {
      const std::vector<AABB> queries = {
          AABB(Vec3(0, 0, 0), Vec3(0.5f, 0.5f, 0.5f))};
      while (!stop_dialing.load(std::memory_order_relaxed)) {
        auto connected = RemoteClient::Connect("127.0.0.1", port);
        if (!connected.ok()) break;  // listener is gone
        // Failures are expected once the drain begins; only crashes
        // and hangs are bugs here.
        (void)connected.Value()->ExecuteBatch(queries);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  fixture->StopAndJoin();  // races the dialers by design
  stop_dialing.store(true, std::memory_order_relaxed);
  for (auto& t : dialers) t.join();

  const server::ServerMetrics& metrics = fixture->server().metrics();
  EXPECT_EQ(metrics.connections_active(), 0u);
  EXPECT_EQ(metrics.connections_accepted.load(),
            metrics.connections_closed.load());
}

TEST(LatencyHistogramTest, PercentilesAreOrderedAndBounded) {
  server::LatencyHistogram histogram;
  EXPECT_EQ(histogram.PercentileNanos(0.5), 0u);
  for (uint64_t nanos : {100u, 200u, 300u, 400u, 50'000u}) {
    histogram.Record(nanos);
  }
  EXPECT_EQ(histogram.count(), 5u);
  const uint64_t p50 = histogram.PercentileNanos(0.50);
  const uint64_t p95 = histogram.PercentileNanos(0.95);
  const uint64_t p99 = histogram.PercentileNanos(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Log-bucketed: within 2x of the true value, capped at the max.
  EXPECT_GE(p50, 100u);
  EXPECT_LE(p50, 800u);
  EXPECT_EQ(p99, 50'000u);
}

}  // namespace
}  // namespace octopus
