// Copyright 2026 The OCTOPUS Reproduction Authors
// Tests for element quality checking and vertex attributes, plus the
// deformer-validity properties: no deformer may invert mesh elements over
// a realistic simulation horizon.
#include <gtest/gtest.h>

#include "mesh/attributes.h"
#include "mesh/generators/datasets.h"
#include "mesh/generators/grid_generator.h"
#include "mesh/quality.h"
#include "sim/animation_deformer.h"
#include "sim/plasticity_deformer.h"
#include "sim/random_deformer.h"
#include "sim/wave_deformer.h"
#include "test_util.h"

namespace octopus {
namespace {

TetraMesh MakeBox(int n) {
  return GenerateBoxMesh(n, n, n, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
      .MoveValue();
}

// ---------- Signed volume ----------

TEST(SignedVolumeTest, UnitTet) {
  const double v = SignedTetVolume(Vec3(0, 0, 0), Vec3(1, 0, 0),
                                   Vec3(0, 1, 0), Vec3(0, 0, 1));
  EXPECT_NEAR(v, 1.0 / 6.0, 1e-9);
  // Swapping two corners flips the sign.
  const double flipped = SignedTetVolume(Vec3(0, 0, 0), Vec3(0, 1, 0),
                                         Vec3(1, 0, 0), Vec3(0, 0, 1));
  EXPECT_NEAR(flipped, -1.0 / 6.0, 1e-9);
}

TEST(SignedVolumeTest, DegenerateIsZero) {
  EXPECT_NEAR(SignedTetVolume(Vec3(0, 0, 0), Vec3(1, 0, 0), Vec3(2, 0, 0),
                              Vec3(3, 0, 0)),
              0.0, 1e-12);
}

// ---------- QualityChecker ----------

TEST(QualityCheckerTest, PristineMeshIsValid) {
  const TetraMesh mesh = MakeBox(6);
  const QualityChecker checker(mesh);
  const QualityReport report = checker.Check(mesh);
  EXPECT_EQ(report.tets_checked, mesh.num_tetrahedra());
  EXPECT_TRUE(report.AllValid());
  EXPECT_GT(report.min_abs_volume, 0.0);
  EXPECT_GT(report.mean_abs_volume, 0.0);
}

TEST(QualityCheckerTest, DetectsInversion) {
  TetraMesh mesh = MakeBox(4);
  const QualityChecker checker(mesh);
  // Yank one interior vertex across the mesh: surrounding tets invert.
  VertexId victim = 0;
  for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
    if (mesh.incident_tet_count(v) >= 8) {
      victim = v;
      break;
    }
  }
  mesh.set_position(victim, mesh.position(victim) + Vec3(0.9f, 0.9f, 0.9f));
  const QualityReport report = checker.Check(mesh);
  EXPECT_GT(report.inverted, 0u);
  EXPECT_FALSE(report.AllValid());
}

TEST(QualityCheckerTest, RegionalCheckViaQueryResult) {
  const TetraMesh mesh = MakeBox(8);
  const QualityChecker checker(mesh);
  const AABB region(Vec3(0.2f, 0.2f, 0.2f), Vec3(0.5f, 0.5f, 0.5f));
  const auto vertices = testing::BruteForceRangeQuery(mesh, region);
  const auto tets = TetsTouchingVertices(mesh, vertices);
  EXPECT_GT(tets.size(), 0u);
  EXPECT_LT(tets.size(), mesh.num_tetrahedra());
  const QualityReport report = checker.CheckTets(mesh, tets);
  EXPECT_EQ(report.tets_checked, tets.size());
  EXPECT_TRUE(report.AllValid());
}

// ---------- Deformer validity properties ----------

// Every deformer must keep all elements un-inverted over a 60-step run
// with the amplitudes the benches use.
TEST(DeformerValidityTest, RandomDeformerKeepsElementsValid) {
  TetraMesh mesh = MakeBox(10);
  const QualityChecker checker(mesh);
  RandomDeformer deformer(0.25f * EstimateMeanEdgeLength(mesh));
  deformer.Bind(mesh);
  for (int step = 1; step <= 60; ++step) deformer.ApplyStep(step, &mesh);
  EXPECT_EQ(checker.Check(mesh).inverted, 0u);
}

TEST(DeformerValidityTest, PlasticityDriftKeepsElementsValid) {
  TetraMesh mesh = MakeNeuroMesh(0, 0.2).MoveValue();
  const QualityChecker checker(mesh);
  PlasticityDeformer deformer(0.3f * EstimateMeanEdgeLength(mesh));
  deformer.Bind(mesh);
  for (int step = 1; step <= 60; ++step) deformer.ApplyStep(step, &mesh);
  const QualityReport report = checker.Check(mesh);
  EXPECT_EQ(report.inverted, 0u)
      << "drift accumulated enough strain to fold elements";
}

TEST(DeformerValidityTest, WaveDeformerKeepsElementsValid) {
  TetraMesh mesh =
      MakeEarthquakeMesh(EarthquakeResolution::kSF2, 0.2).MoveValue();
  const QualityChecker checker(mesh);
  WaveDeformer deformer(0.02f, 0.01f);
  deformer.Bind(mesh);
  for (int step = 1; step <= 60; ++step) deformer.ApplyStep(step, &mesh);
  EXPECT_EQ(checker.Check(mesh).inverted, 0u);
}

class AnimationValidityTest
    : public ::testing::TestWithParam<AnimationDataset> {};

TEST_P(AnimationValidityTest, KeepsElementsValid) {
  TetraMesh mesh = MakeAnimationMesh(GetParam(), 0.05).MoveValue();
  const QualityChecker checker(mesh);
  AnimationDeformer deformer(GetParam(),
                             2.0f * EstimateMeanEdgeLength(mesh));
  deformer.Bind(mesh);
  const int period = AnimationTimeSteps(GetParam());
  for (int step = 1; step <= period; ++step) {
    deformer.ApplyStep(step, &mesh);
    ASSERT_EQ(checker.Check(mesh).inverted, 0u) << "frame " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSequences, AnimationValidityTest,
    ::testing::Values(AnimationDataset::kHorseGallop,
                      AnimationDataset::kFacialExpression,
                      AnimationDataset::kCamelCompress));

// ---------- VertexAttributes ----------

TEST(AttributesTest, AddAndFill) {
  VertexAttributes attrs(10);
  ASSERT_TRUE(attrs.AddColumn("voltage", -65.0f).ok());
  ASSERT_TRUE(attrs.AddColumn("calcium").ok());
  EXPECT_EQ(attrs.num_columns(), 2u);
  EXPECT_TRUE(attrs.HasColumn("voltage"));
  EXPECT_FALSE(attrs.HasColumn("sodium"));
  auto column = attrs.Column("voltage");
  ASSERT_EQ(column.size(), 10u);
  EXPECT_FLOAT_EQ(column[3], -65.0f);
}

TEST(AttributesTest, DuplicateColumnRejected) {
  VertexAttributes attrs(4);
  ASSERT_TRUE(attrs.AddColumn("x").ok());
  EXPECT_FALSE(attrs.AddColumn("x").ok());
}

TEST(AttributesTest, GatherFollowsQueryResult) {
  VertexAttributes attrs(8);
  ASSERT_TRUE(attrs.AddColumn("value").ok());
  auto column = attrs.Column("value");
  for (size_t v = 0; v < column.size(); ++v) {
    column[v] = static_cast<float>(v * v);
  }
  const std::vector<VertexId> picked = {1, 3, 7};
  std::vector<float> out;
  ASSERT_TRUE(attrs.Gather("value", picked, &out).ok());
  EXPECT_EQ(out, (std::vector<float>{1.0f, 9.0f, 49.0f}));
}

TEST(AttributesTest, GatherErrors) {
  VertexAttributes attrs(4);
  ASSERT_TRUE(attrs.AddColumn("v").ok());
  std::vector<float> out;
  EXPECT_EQ(attrs.Gather("missing", {}, &out).code(),
            Status::Code::kNotFound);
  const std::vector<VertexId> bad = {99};
  EXPECT_EQ(attrs.Gather("v", bad, &out).code(),
            Status::Code::kInvalidArgument);
}

TEST(AttributesTest, MeanStatistic) {
  VertexAttributes attrs(5);
  ASSERT_TRUE(attrs.AddColumn("density").ok());
  auto column = attrs.Column("density");
  for (size_t v = 0; v < column.size(); ++v) {
    column[v] = static_cast<float>(v);
  }
  const std::vector<VertexId> all = {0, 1, 2, 3, 4};
  auto mean = attrs.Mean("density", all);
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(mean.Value(), 2.0);
  EXPECT_FALSE(attrs.Mean("density", {}).ok());
  EXPECT_FALSE(attrs.Mean("nope", all).ok());
}

TEST(AttributesTest, ResizeForRestructuring) {
  VertexAttributes attrs(3);
  ASSERT_TRUE(attrs.AddColumn("tag", 7.0f).ok());
  attrs.Column("tag")[0] = 1.0f;
  attrs.Resize(6);
  auto column = attrs.Column("tag");
  ASSERT_EQ(column.size(), 6u);
  EXPECT_FLOAT_EQ(column[0], 1.0f);   // existing values preserved
  EXPECT_FLOAT_EQ(column[5], 7.0f);   // new slots get the initial value
  EXPECT_GT(attrs.FootprintBytes(), 0u);
}

}  // namespace
}  // namespace octopus
