// Copyright 2026 The OCTOPUS Reproduction Authors
// Unit tests for deformers, restructuring operations, the simulation
// driver and the query-workload generator.
#include <gtest/gtest.h>

#include "mesh/generators/grid_generator.h"
#include "mesh/mesh_stats.h"
#include "mesh/surface.h"
#include "sim/animation_deformer.h"
#include "sim/deformer.h"
#include "sim/plasticity_deformer.h"
#include "sim/random_deformer.h"
#include "sim/restructurer.h"
#include "sim/simulation.h"
#include "sim/wave_deformer.h"
#include "sim/workload.h"
#include "test_util.h"

namespace octopus {
namespace {

TetraMesh MakeBox(int n) {
  return GenerateBoxMesh(n, n, n, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
      .MoveValue();
}

float MaxDisplacement(const std::vector<Vec3>& a,
                      const std::vector<Vec3>& b) {
  float max_d = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    max_d = std::max(max_d, Distance(a[i], b[i]));
  }
  return max_d;
}

size_t CountMoved(const std::vector<Vec3>& a, const std::vector<Vec3>& b) {
  size_t moved = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++moved;
  }
  return moved;
}

TEST(EstimateMeanEdgeLengthTest, MatchesGridSpacing) {
  const TetraMesh mesh = MakeBox(8);
  const float mean = EstimateMeanEdgeLength(mesh);
  // Grid spacing is 1/8; edges are axis (1/8), face diagonal (~0.177) and
  // body diagonal (~0.217). The mean must land between those.
  EXPECT_GT(mean, 0.125f);
  EXPECT_LT(mean, 0.22f);
}

// ---------- RandomDeformer ----------

TEST(RandomDeformerTest, MovesEveryVertexWithinAmplitude) {
  TetraMesh mesh = MakeBox(6);
  const std::vector<Vec3> rest = mesh.positions();
  RandomDeformer deformer(0.01f);
  deformer.Bind(mesh);
  deformer.ApplyStep(1, &mesh);
  EXPECT_GT(CountMoved(rest, mesh.positions()),
            mesh.num_vertices() * 95 / 100);
  EXPECT_LE(MaxDisplacement(rest, mesh.positions()), 0.01f + 1e-6f);
}

TEST(RandomDeformerTest, StepsAreDeterministicAndDistinct) {
  TetraMesh mesh_a = MakeBox(4);
  TetraMesh mesh_b = MakeBox(4);
  RandomDeformer da(0.01f, 5);
  RandomDeformer db(0.01f, 5);
  da.Bind(mesh_a);
  db.Bind(mesh_b);
  da.ApplyStep(3, &mesh_a);
  db.ApplyStep(3, &mesh_b);
  EXPECT_EQ(mesh_a.positions(), mesh_b.positions());
  db.ApplyStep(4, &mesh_b);
  EXPECT_NE(mesh_a.positions(), mesh_b.positions());
}

TEST(RandomDeformerTest, DisplacementBoundedOverManySteps) {
  // Displacements are taken from rest positions, so they never accumulate.
  TetraMesh mesh = MakeBox(4);
  const std::vector<Vec3> rest = mesh.positions();
  RandomDeformer deformer(0.02f);
  deformer.Bind(mesh);
  for (int step = 1; step <= 50; ++step) deformer.ApplyStep(step, &mesh);
  EXPECT_LE(MaxDisplacement(rest, mesh.positions()), 0.02f + 1e-6f);
}

// ---------- PlasticityDeformer ----------

TEST(PlasticityDeformerTest, SmoothInSpace) {
  // Neighboring vertices must move by similar vectors (spatial
  // correlation, the property exploited by surface approximation). The
  // uncorrelated RandomDeformer serves as the contrast baseline.
  auto mean_neighbor_delta = [](Deformer* deformer) {
    TetraMesh mesh = MakeBox(8);
    const std::vector<Vec3> rest = mesh.positions();
    deformer->Bind(mesh);
    deformer->ApplyStep(1, &mesh);
    double total = 0.0;
    size_t count = 0;
    for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
      const Vec3 dv = mesh.position(v) - rest[v];
      for (VertexId n : mesh.neighbors(v)) {
        total += (dv - (mesh.position(n) - rest[n])).Norm();
        ++count;
      }
    }
    return total / static_cast<double>(count);
  };
  PlasticityDeformer smooth(0.01f);
  RandomDeformer rough(0.01f);
  const double smooth_delta = mean_neighbor_delta(&smooth);
  const double rough_delta = mean_neighbor_delta(&rough);
  EXPECT_LT(smooth_delta, 0.5 * rough_delta)
      << "plasticity field must be far smoother than independent jitter";
}

TEST(PlasticityDeformerTest, FieldChangesEveryStep) {
  TetraMesh mesh = MakeBox(5);
  PlasticityDeformer deformer(0.01f);
  deformer.Bind(mesh);
  deformer.ApplyStep(1, &mesh);
  const std::vector<Vec3> after_one = mesh.positions();
  deformer.ApplyStep(2, &mesh);
  EXPECT_NE(after_one, mesh.positions());
}

// ---------- WaveDeformer (convexity) ----------

TEST(WaveDeformerTest, AffineMapPreservesStructure) {
  TetraMesh mesh = MakeBox(6);
  const std::vector<Vec3> rest = mesh.positions();
  WaveDeformer deformer(0.03f, 0.02f);
  deformer.Bind(mesh);
  deformer.ApplyStep(1, &mesh);

  // Affinity check: the strain matrix is shared, so displacement difference
  // between two vertices is a linear function of their rest difference.
  // For vertices with equal rest difference, image difference is equal.
  const Vec3 d01 = mesh.position(1) - mesh.position(0);
  bool found_pair = false;
  for (VertexId v = 0; v + 1 < mesh.num_vertices(); ++v) {
    if (rest[v + 1] - rest[v] == rest[1] - rest[0]) {
      const Vec3 d = mesh.position(v + 1) - mesh.position(v);
      EXPECT_NEAR(d.x, d01.x, 1e-5f);
      EXPECT_NEAR(d.y, d01.y, 1e-5f);
      EXPECT_NEAR(d.z, d01.z, 1e-5f);
      found_pair = true;
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST(WaveDeformerTest, BoundedStrainAndShift) {
  TetraMesh mesh = MakeBox(5);
  const std::vector<Vec3> rest = mesh.positions();
  WaveDeformer deformer(0.02f, 0.01f);
  deformer.Bind(mesh);
  for (int step = 1; step <= 40; ++step) deformer.ApplyStep(step, &mesh);
  // |displacement| <= |E|*|r|*3 + |b| <= 0.02*sqrt(3)*3 + 0.01 ~ 0.114.
  EXPECT_LE(MaxDisplacement(rest, mesh.positions()), 0.12f);
}

// ---------- AnimationDeformer ----------

class AnimationDeformerTest
    : public ::testing::TestWithParam<AnimationDataset> {};

TEST_P(AnimationDeformerTest, PeriodicAndBounded) {
  TetraMesh mesh = MakeBox(5);
  const std::vector<Vec3> rest = mesh.positions();
  AnimationDeformer deformer(GetParam(), 0.05f);
  deformer.Bind(mesh);
  const int period = AnimationTimeSteps(GetParam());

  deformer.ApplyStep(1, &mesh);
  const std::vector<Vec3> frame_one = mesh.positions();
  EXPECT_LE(MaxDisplacement(rest, frame_one), 0.25f);

  // One full period later the pose repeats.
  deformer.ApplyStep(1 + period, &mesh);
  for (size_t v = 0; v < rest.size(); ++v) {
    EXPECT_NEAR(mesh.position(static_cast<VertexId>(v)).x, frame_one[v].x,
                1e-5f);
    EXPECT_NEAR(mesh.position(static_cast<VertexId>(v)).y, frame_one[v].y,
                1e-5f);
    EXPECT_NEAR(mesh.position(static_cast<VertexId>(v)).z, frame_one[v].z,
                1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSequences, AnimationDeformerTest,
    ::testing::Values(AnimationDataset::kHorseGallop,
                      AnimationDataset::kFacialExpression,
                      AnimationDataset::kCamelCompress));

// ---------- Restructurer ----------

TEST(RestructurerTest, SplitTetAtCentroid) {
  TetraMesh mesh = testing::MakeSingleTetMesh();
  auto delta = SplitTetAtCentroid(&mesh, 0);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(mesh.num_vertices(), 5u);
  EXPECT_EQ(mesh.num_tetrahedra(), 4u);
  EXPECT_EQ(delta.Value().added_tets.size(), 4u);
  EXPECT_EQ(delta.Value().removed_tets.size(), 1u);
  // Surface is unchanged: the new vertex is interior.
  const SurfaceInfo s = ExtractSurface(mesh);
  EXPECT_EQ(s.surface_vertices.size(), 4u);
}

TEST(RestructurerTest, SplitRejectsBadId) {
  TetraMesh mesh = testing::MakeSingleTetMesh();
  EXPECT_FALSE(SplitTetAtCentroid(&mesh, 99).ok());
}

TEST(RestructurerTest, AddTetOnSurfaceFaceGrowsSurface) {
  TetraMesh mesh = testing::MakeSingleTetMesh();
  const SurfaceInfo before = ExtractSurface(mesh);
  const FaceKey face = before.surface_faces.front();
  auto delta = AddTetOnSurfaceFace(&mesh, face, Vec3(2, 2, 2));
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(mesh.num_tetrahedra(), 2u);
  EXPECT_EQ(mesh.num_vertices(), 5u);
  const SurfaceInfo after = ExtractSurface(mesh);
  EXPECT_EQ(after.surface_vertices.size(), 5u);
  // The glued face is now interior: 4 + 3 new - the glued one = 6 faces.
  EXPECT_EQ(after.surface_faces.size(), 6u);
}

TEST(RestructurerTest, AddTetRejectsInteriorOrMissingFace) {
  TetraMesh mesh = testing::MakeTwoTetMesh();
  EXPECT_FALSE(
      AddTetOnSurfaceFace(&mesh, MakeFaceKey(1, 2, 3), Vec3(2, 2, 2)).ok())
      << "shared face is interior";
  EXPECT_FALSE(
      AddTetOnSurfaceFace(&mesh, MakeFaceKey(0, 1, 4), Vec3(2, 2, 2)).ok())
      << "face does not exist";
}

TEST(RestructurerTest, RemoveTetRejectsOrphaning) {
  TetraMesh mesh = testing::MakeSingleTetMesh();
  EXPECT_FALSE(RemoveTet(&mesh, 0).ok());
}

TEST(RestructurerTest, RemoveTetAfterSplit) {
  TetraMesh mesh = testing::MakeSingleTetMesh();
  ASSERT_TRUE(SplitTetAtCentroid(&mesh, 0).ok());
  auto delta = RemoveTet(&mesh, 0);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(mesh.num_tetrahedra(), 3u);
}

TEST(RestructurerTest, RandomRefinementBatch) {
  TetraMesh mesh = MakeBox(3);
  const size_t tets_before = mesh.num_tetrahedra();
  const size_t verts_before = mesh.num_vertices();
  Rng rng(1);
  auto delta = RandomRefinement(&mesh, 10, &rng);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(mesh.num_tetrahedra(), tets_before + 3 * 10);
  EXPECT_EQ(mesh.num_vertices(), verts_before + 10);
  // Refinement is interior: surface unchanged.
  const SurfaceInfo s = ExtractSurface(mesh);
  const TetraMesh reference = MakeBox(3);
  EXPECT_EQ(s.surface_vertices.size(),
            ExtractSurface(reference).surface_vertices.size());
}

// ---------- Simulation driver ----------

TEST(SimulationTest, RunsStepsAndInvokesMonitor) {
  TetraMesh mesh = MakeBox(4);
  RandomDeformer deformer(0.005f);
  Simulation sim(&mesh, &deformer);
  int monitored = 0;
  sim.Run(7, [&](int step) {
    ++monitored;
    EXPECT_EQ(step, monitored);
  });
  EXPECT_EQ(monitored, 7);
  EXPECT_EQ(sim.current_step(), 7);
}

// ---------- QueryGenerator ----------

TEST(QueryGeneratorTest, HitsTargetSelectivity) {
  const TetraMesh mesh = MakeBox(14);  // 3375 vertices
  QueryGenerator gen(mesh);
  Rng rng(2);
  for (const double target : {0.001, 0.01, 0.05}) {
    double total_ratio = 0.0;
    const int trials = 20;
    for (int i = 0; i < trials; ++i) {
      const AABB q = gen.MakeQuery(&rng, target);
      const size_t count = testing::BruteForceRangeQuery(mesh, q).size();
      total_ratio += static_cast<double>(count) /
                     static_cast<double>(mesh.num_vertices());
    }
    const double mean = total_ratio / trials;
    EXPECT_GT(mean, target * 0.3) << "target " << target;
    EXPECT_LT(mean, target * 3.0 + 0.002) << "target " << target;
  }
}

TEST(QueryGeneratorTest, QueriesIntersectTheMesh) {
  const TetraMesh mesh = MakeBox(10);
  QueryGenerator gen(mesh);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const AABB q = gen.MakeQuery(&rng, 0.005);
    EXPECT_FALSE(testing::BruteForceRangeQuery(mesh, q).empty());
  }
}

TEST(QueryGeneratorTest, BatchRespectsRange) {
  const TetraMesh mesh = MakeBox(10);
  QueryGenerator gen(mesh);
  Rng rng(5);
  const auto queries = gen.MakeQueries(&rng, 12, 0.001, 0.002);
  EXPECT_EQ(queries.size(), 12u);
}

TEST(WorkloadTest, NeuroscienceBenchmarkSpecs) {
  const auto specs = NeuroscienceBenchmarks();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].queries_per_step_min, 13);
  EXPECT_EQ(specs[0].queries_per_step_max, 17);
  EXPECT_DOUBLE_EQ(specs[2].selectivity_min, 0.0018);
  for (const auto& s : specs) {
    EXPECT_LE(s.selectivity_min, s.selectivity_max);
    EXPECT_LE(s.queries_per_step_min, s.queries_per_step_max);
  }
}

}  // namespace
}  // namespace octopus
