// Copyright 2026 The OCTOPUS Reproduction Authors
// Edge-case tests of the poll-loop-embedded HTTP responder, driven
// directly (CollectPollFds + poll + OnReady) without a QueryServer:
// request heads arriving one byte at a time, oversized requests (400),
// non-GET methods (405), query-string stripping, a slow reader that
// forces the response out through repeated POLLOUT rounds, and the
// kMaxConns admission cap (listener unpolled at the cap, queued
// connections served once a slot frees). The routed endpoints
// themselves (/metrics, /healthz, ...) are covered in test_server.cc
// against a live server.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "obs/http_endpoint.h"

namespace octopus {
namespace {

using obs::HttpTextEndpoint;

/// Routes /ok to a small 200 and /big to a multi-megabyte body (large
/// enough to overflow any socket send buffer, forcing POLLOUT rounds);
/// records the last path seen so tests can assert on query stripping.
class EndpointFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    handler_ = [this](const std::string& path) {
      last_path_ = path;
      if (path == "/ok") {
        HttpTextEndpoint::Response response;
        response.body = "fine\n";
        return response;
      }
      if (path == "/big") {
        HttpTextEndpoint::Response response;
        response.body.assign(8 * 1024 * 1024, 'x');
        return response;
      }
      return HttpTextEndpoint::NotFound();
    };
    ASSERT_TRUE(endpoint_.Listen("127.0.0.1", 0).ok());
  }

  /// One poll round over everything the endpoint wants watched.
  void Pump(int timeout_ms = 20) {
    std::vector<pollfd> fds;
    endpoint_.CollectPollFds(&fds);
    if (fds.empty()) return;
    const int n = poll(fds.data(), fds.size(), timeout_ms);
    if (n <= 0) return;
    for (const pollfd& p : fds) {
      if (p.revents != 0) endpoint_.OnReady(p.fd, p.revents, handler_);
    }
  }

  /// A connected blocking client socket (optionally with a tiny receive
  /// buffer, to model a slow reader).
  int Connect(int rcvbuf_bytes = 0) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    if (rcvbuf_bytes > 0) {
      setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint_.port());
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
              0)
        << std::strerror(errno);
    return fd;
  }

  void SendAll(int fd, const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << std::strerror(errno);
      off += static_cast<size_t>(n);
    }
  }

  /// Pumps the endpoint while draining `fd` until EOF (the endpoint
  /// closes after each response). Empty string on timeout.
  std::string ReadResponse(int fd, int max_rounds = 20000) {
    std::string got;
    char buf[4096];
    for (int round = 0; round < max_rounds; ++round) {
      Pump(1);
      const ssize_t n = recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (n > 0) {
        got.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) return got;  // EOF: response complete
      if (errno != EAGAIN && errno != EWOULDBLOCK) return got;
    }
    ADD_FAILURE() << "response never completed; got " << got.size()
                  << " bytes";
    return got;
  }

  HttpTextEndpoint endpoint_;
  HttpTextEndpoint::Handler handler_;
  std::string last_path_;
};

TEST_F(EndpointFixture, AssemblesARequestArrivingOneWriteAtATime) {
  const int fd = Connect();
  // The head trickles in over five sends with pumps between — the
  // endpoint must buffer across POLLIN rounds, not expect one recv.
  for (const char* piece :
       {"GE", "T /o", "k HTT", "P/1.0\r\n", "\r\n"}) {
    SendAll(fd, piece);
    Pump();
  }
  const std::string response = ReadResponse(fd);
  EXPECT_NE(response.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; charset=utf-8\r\n"),
            std::string::npos);
  EXPECT_NE(response.find("\r\n\r\nfine\n"), std::string::npos);
  close(fd);
}

TEST_F(EndpointFixture, OversizedRequestHeadIsRejectedWith400) {
  const int fd = Connect();
  // Never send the terminating blank line; pad headers until the head
  // crosses kMaxRequestBytes.
  std::string request = "GET /ok HTTP/1.0\r\n";
  while (request.size() <= HttpTextEndpoint::kMaxRequestBytes) {
    request += "X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
  }
  SendAll(fd, request);
  const std::string response = ReadResponse(fd);
  EXPECT_NE(response.find("HTTP/1.0 400 Bad Request\r\n"),
            std::string::npos);
  EXPECT_NE(response.find("request too large\n"), std::string::npos);
  close(fd);
}

TEST_F(EndpointFixture, NonGetMethodIsRejectedWith405) {
  const int fd = Connect();
  SendAll(fd, "POST /ok HTTP/1.0\r\n\r\n");
  const std::string response = ReadResponse(fd);
  EXPECT_NE(response.find("HTTP/1.0 405 Method Not Allowed\r\n"),
            std::string::npos);
  EXPECT_NE(response.find("GET only\n"), std::string::npos);
  // The handler is never consulted for a non-GET.
  EXPECT_TRUE(last_path_.empty());
  close(fd);
}

TEST_F(EndpointFixture, MalformedRequestLineIsRejectedWith400) {
  const int fd = Connect();
  SendAll(fd, "NONSENSE\r\n\r\n");
  const std::string response = ReadResponse(fd);
  EXPECT_NE(response.find("HTTP/1.0 400 Bad Request\r\n"),
            std::string::npos);
  close(fd);
}

TEST_F(EndpointFixture, QueryStringIsStrippedBeforeRouting) {
  const int fd = Connect();
  SendAll(fd, "GET /ok?debug=1&x=2 HTTP/1.0\r\n\r\n");
  const std::string response = ReadResponse(fd);
  EXPECT_NE(response.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_EQ(last_path_, "/ok");
  close(fd);
}

TEST_F(EndpointFixture, SlowReaderDrainsLargeResponseViaPollout) {
  // A 4 KiB client receive buffer against an 8 MiB body: the server's
  // send() must hit EAGAIN and finish over many POLLOUT rounds while
  // the client drains between pumps (ReadResponse interleaves the two).
  const int fd = Connect(/*rcvbuf_bytes=*/4096);
  SendAll(fd, "GET /big HTTP/1.0\r\n\r\n");
  const std::string response = ReadResponse(fd, /*max_rounds=*/200000);
  EXPECT_NE(response.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 8388608\r\n"),
            std::string::npos);
  const size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);
  EXPECT_EQ(body.size(), 8u * 1024 * 1024);
  EXPECT_EQ(body.find_first_not_of('x'), std::string::npos);
  close(fd);
}

TEST_F(EndpointFixture, ListenerIsUnpolledAtTheConnCapAndRecovers) {
  // Fill every slot with idle connections (no request sent).
  std::vector<int> idle;
  for (size_t i = 0; i < HttpTextEndpoint::kMaxConns; ++i) {
    idle.push_back(Connect());
  }
  for (int round = 0; round < 1000; ++round) {
    std::vector<pollfd> fds;
    endpoint_.CollectPollFds(&fds);
    if (fds.size() == HttpTextEndpoint::kMaxConns) break;
    Pump();
  }
  // At the cap the poll set is exactly the connections — the listener
  // is left out, so new arrivals wait in the kernel accept queue.
  std::vector<pollfd> fds;
  endpoint_.CollectPollFds(&fds);
  ASSERT_EQ(fds.size(), HttpTextEndpoint::kMaxConns);

  // A ninth client connects (the backlog takes it) and asks away —
  // but gets no answer while the cap holds.
  const int ninth = Connect();
  SendAll(ninth, "GET /ok HTTP/1.0\r\n\r\n");
  for (int round = 0; round < 50; ++round) Pump(1);
  char buf[256];
  ssize_t n = recv(ninth, buf, sizeof(buf), MSG_DONTWAIT);
  EXPECT_LT(n, 0);
  EXPECT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK);

  // Freeing one slot lets the listener back into the poll set; the
  // queued ninth connection is then accepted and served.
  close(idle[0]);
  const std::string response = ReadResponse(ninth);
  EXPECT_NE(response.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("fine\n"), std::string::npos);
  close(ninth);
  for (size_t i = 1; i < idle.size(); ++i) close(idle[i]);
}

// --- RouteRequestHead: the pure parsing core, no sockets ---
//
// Factored out of the connection loop so the fuzz harness (and these
// tests) can drive it with arbitrary bytes; the socket paths above
// exercise the same code through BuildResponse.

HttpTextEndpoint::Handler RecordingHandler(std::string* last_path) {
  return [last_path](const std::string& path) {
    *last_path = path;
    if (path == "/ok") {
      HttpTextEndpoint::Response response;
      response.body = "fine\n";
      return response;
    }
    return HttpTextEndpoint::NotFound();
  };
}

TEST(RouteRequestHeadTest, RoutesGetAndStripsQueryString) {
  std::string last_path = "<unset>";
  const auto response = HttpTextEndpoint::RouteRequestHead(
      "GET /ok?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n",
      RecordingHandler(&last_path));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "fine\n");
  EXPECT_EQ(last_path, "/ok");
}

TEST(RouteRequestHeadTest, MalformedRequestLineIs400NotHandler) {
  std::string last_path = "<unset>";
  for (const char* head :
       {"GET /ok\r\n\r\n",      // no HTTP version
        "\r\n\r\n",             // empty request line
        "GET\r\n\r\n",          // method only
        "garbage\x01\x02"}) {   // no spaces at all
    const auto response = HttpTextEndpoint::RouteRequestHead(
        head, RecordingHandler(&last_path));
    EXPECT_EQ(response.status, 400) << head;
    EXPECT_EQ(last_path, "<unset>") << head;  // handler never ran
  }
}

TEST(RouteRequestHeadTest, NonGetIs405WithoutReachingHandler) {
  std::string last_path = "<unset>";
  const auto response = HttpTextEndpoint::RouteRequestHead(
      "POST /ok HTTP/1.0\r\n\r\n", RecordingHandler(&last_path));
  EXPECT_EQ(response.status, 405);
  EXPECT_EQ(last_path, "<unset>");
}

}  // namespace
}  // namespace octopus
