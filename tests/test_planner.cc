// Copyright 2026 The OCTOPUS Reproduction Authors
// Tests for the model-driven adaptive executor (paper Sec. VI-B /
// VIII-B: use Eq. 6 to decide when OCTOPUS beats the linear scan).
#include <gtest/gtest.h>

#include "mesh/generators/datasets.h"
#include "mesh/generators/grid_generator.h"
#include "octopus/planner.h"
#include "sim/random_deformer.h"
#include "test_util.h"

namespace octopus {
namespace {

using testing::BruteForceRangeQuery;
using testing::Sorted;

TetraMesh MakeBox(int n) {
  return GenerateBoxMesh(n, n, n, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
      .MoveValue();
}

TEST(PlannerTest, BreakEvenIsCalibrated) {
  // The basin slab has S ~ 0.15: OCTOPUS wins small queries there, so
  // the Eq. 6 threshold must land in (0, 1).
  const TetraMesh mesh =
      MakeEarthquakeMesh(EarthquakeResolution::kSF1, 0.3).MoveValue();
  AdaptiveExecutor adaptive;
  adaptive.Build(mesh);
  EXPECT_GT(adaptive.break_even_selectivity(), 0.0);
  EXPECT_LT(adaptive.break_even_selectivity(), 1.0);
}

TEST(PlannerTest, AlwaysScanWhenProbeCannotWin) {
  // A tiny box mesh is ~1/3 surface: with our calibrated gather constant
  // the probe alone can exceed a scan, Eq. 6 goes non-positive, and the
  // planner must route EVERYTHING to the scan — the model working as
  // intended, not a failure.
  const TetraMesh mesh = MakeBox(10);
  AdaptiveExecutor adaptive;
  adaptive.Build(mesh);
  if (adaptive.break_even_selectivity() <= 0.0) {
    std::vector<VertexId> out;
    const AABB tiny(Vec3(0.45f, 0.45f, 0.45f), Vec3(0.55f, 0.55f, 0.55f));
    adaptive.RangeQuery(mesh, tiny, &out);
    EXPECT_EQ(adaptive.queries_routed_to_scan(), 1u);
    EXPECT_EQ(Sorted(out), BruteForceRangeQuery(mesh, tiny));
  }
}

TEST(PlannerTest, RoutesSmallQueriesToOctopusLargeToScan) {
  const TetraMesh mesh =
      MakeEarthquakeMesh(EarthquakeResolution::kSF1, 0.3).MoveValue();
  AdaptiveExecutor adaptive;
  adaptive.Build(mesh);
  std::vector<VertexId> out;

  // Tiny query: well below any plausible break-even.
  const AABB tiny(Vec3(0.45f, 0.45f, 0.45f), Vec3(0.55f, 0.55f, 0.55f));
  out.clear();
  adaptive.RangeQuery(mesh, tiny, &out);
  EXPECT_EQ(adaptive.queries_routed_to_octopus(), 1u);
  EXPECT_EQ(adaptive.queries_routed_to_scan(), 0u);

  // Whole-mesh query: selectivity ~1, far above break-even.
  const AABB all(Vec3(-1, -1, -1), Vec3(2, 2, 2));
  out.clear();
  adaptive.RangeQuery(mesh, all, &out);
  EXPECT_EQ(adaptive.queries_routed_to_octopus(), 1u);
  EXPECT_EQ(adaptive.queries_routed_to_scan(), 1u);
  EXPECT_EQ(out.size(), mesh.num_vertices());
}

TEST(PlannerTest, ExactEitherWay) {
  TetraMesh mesh =
      MakeEarthquakeMesh(EarthquakeResolution::kSF1, 0.3).MoveValue();
  AdaptiveExecutor adaptive;
  adaptive.Build(mesh);
  RandomDeformer deformer(0.01f);
  deformer.Bind(mesh);
  Rng rng(3);
  for (int step = 1; step <= 4; ++step) {
    deformer.ApplyStep(step, &mesh);
    adaptive.BeforeQueries(mesh);
    for (int q = 0; q < 6; ++q) {
      // Mix of sizes straddling the break-even.
      const float h = rng.NextFloat(0.015f, 0.45f);
      const VertexId center =
          static_cast<VertexId>(rng.NextBelow(mesh.num_vertices()));
      const AABB box = AABB::FromCenterHalfExtent(mesh.position(center),
                                                  Vec3(h, h, h));
      std::vector<VertexId> got;
      adaptive.RangeQuery(mesh, box, &got);
      ASSERT_EQ(Sorted(got), BruteForceRangeQuery(mesh, box))
          << "step " << step << " query " << q;
    }
  }
  // With this size mix, both paths must have been exercised.
  EXPECT_GT(adaptive.queries_routed_to_octopus(), 0u);
  EXPECT_GT(adaptive.queries_routed_to_scan(), 0u);
}

TEST(PlannerTest, FootprintIncludesHistogram) {
  const TetraMesh mesh = MakeBox(8);
  AdaptiveExecutor adaptive;
  adaptive.Build(mesh);
  EXPECT_GT(adaptive.FootprintBytes(),
            adaptive.octopus().FootprintBytes());
}

}  // namespace
}  // namespace octopus
