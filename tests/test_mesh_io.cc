// Copyright 2026 The OCTOPUS Reproduction Authors
// Round-trip and error-path coverage of the OCT1 mesh format: every
// `Result`/`Status` branch of `LoadMesh` (bad magic, truncated header,
// implausible sizes, truncated body, dangling tet references) plus the
// adjacency equivalence of a full save/load cycle. The OCT2 snapshot
// error paths live in test_storage.cc.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "mesh/generators/grid_generator.h"
#include "mesh/mesh_io.h"
#include "test_util.h"

namespace octopus {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteBytes(const std::string& path, const void* data, size_t bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(data, 1, bytes, f), bytes);
  ASSERT_EQ(std::fclose(f), 0);
}

/// A valid OCT1 byte image of `mesh`, for truncation/corruption tests.
std::vector<unsigned char> ValidFileImage(const TetraMesh& mesh) {
  const std::string path = TempPath("oct1_image.mesh");
  EXPECT_TRUE(SaveMesh(mesh, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<unsigned char> bytes(std::ftell(f));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  std::remove(path.c_str());
  return bytes;
}

TEST(MeshIOErrorTest, RoundTripPreservesAdjacency) {
  const TetraMesh original =
      GenerateBoxMesh(4, 4, 4, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
          .MoveValue();
  const std::string path = TempPath("oct1_roundtrip_adj.mesh");
  ASSERT_TRUE(SaveMesh(original, path).ok());
  auto loaded = LoadMesh(path);
  ASSERT_TRUE(loaded.ok());
  const TetraMesh& mesh = loaded.Value();
  ASSERT_EQ(mesh.num_vertices(), original.num_vertices());
  ASSERT_EQ(mesh.num_tetrahedra(), original.num_tetrahedra());
  for (size_t t = 0; t < mesh.num_tetrahedra(); ++t) {
    EXPECT_EQ(mesh.tetrahedra()[t], original.tetrahedra()[t]);
  }
  // Adjacency is derived on load; it must match exactly (same CSR
  // construction over the same tets).
  for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
    ASSERT_EQ(mesh.degree(v), original.degree(v)) << "vertex " << v;
    const auto a = mesh.neighbors(v);
    const auto b = original.neighbors(v);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
  std::remove(path.c_str());
}

TEST(MeshIOErrorTest, BadMagicIsCorruption) {
  const std::vector<unsigned char> image =
      ValidFileImage(testing::MakeTwoTetMesh());
  std::vector<unsigned char> bad = image;
  std::memcpy(bad.data(), "OCTX", 4);
  const std::string path = TempPath("oct1_badmagic.mesh");
  WriteBytes(path, bad.data(), bad.size());
  const auto result = LoadMesh(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(MeshIOErrorTest, TruncatedHeaderIsCorruption) {
  const std::vector<unsigned char> image =
      ValidFileImage(testing::MakeTwoTetMesh());
  // Magic intact, but the counts are cut short.
  const std::string path = TempPath("oct1_truncheader.mesh");
  WriteBytes(path, image.data(), 4 + 3);
  const auto result = LoadMesh(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(MeshIOErrorTest, TruncatedBodyIsCorruption) {
  const std::vector<unsigned char> image =
      ValidFileImage(testing::MakeTwoTetMesh());
  const std::string path = TempPath("oct1_truncbody.mesh");
  // Chop the last tet in half.
  WriteBytes(path, image.data(), image.size() - 8);
  const auto result = LoadMesh(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(MeshIOErrorTest, ImplausibleCountsAreCorruption) {
  std::vector<unsigned char> image =
      ValidFileImage(testing::MakeTwoTetMesh());
  // Claim 2^60 vertices: must be rejected before any allocation.
  const uint64_t absurd = 1ull << 60;
  std::memcpy(image.data() + 4, &absurd, sizeof(absurd));
  const std::string path = TempPath("oct1_absurd.mesh");
  WriteBytes(path, image.data(), image.size());
  const auto result = LoadMesh(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(MeshIOErrorTest, ZeroVerticesIsCorruption) {
  std::vector<unsigned char> image =
      ValidFileImage(testing::MakeTwoTetMesh());
  const uint64_t zero = 0;
  std::memcpy(image.data() + 4, &zero, sizeof(zero));
  const std::string path = TempPath("oct1_zerov.mesh");
  WriteBytes(path, image.data(), image.size());
  const auto result = LoadMesh(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(MeshIOErrorTest, OutOfRangeTetVertexIsCorruption) {
  const TetraMesh mesh = testing::MakeTwoTetMesh();
  std::vector<unsigned char> image = ValidFileImage(mesh);
  // Corrupt the first corner of the first tet to a dangling id. The tet
  // list starts after magic(4) + counts(16) + positions(12 * V).
  const size_t tets_offset = 4 + 16 + 12 * mesh.num_vertices();
  const uint32_t dangling = 1u << 20;
  std::memcpy(image.data() + tets_offset, &dangling, sizeof(dangling));
  const std::string path = TempPath("oct1_dangling.mesh");
  WriteBytes(path, image.data(), image.size());
  const auto result = LoadMesh(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(MeshIOErrorTest, SaveToUnwritablePathIsIOError) {
  const Status st =
      SaveMesh(testing::MakeTwoTetMesh(), "/nonexistent/dir/mesh.bin");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kIOError);
}

TEST(MeshIOErrorTest, ConvertMissingMeshPropagatesIOError) {
  const Status st = ConvertMeshToSnapshot("/nonexistent/in.mesh",
                                          TempPath("never_written.oct2"));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kIOError);
}

}  // namespace
}  // namespace octopus
