// Copyright 2026 The OCTOPUS Reproduction Authors
// Tests for the adaptive two-level hashing baseline (Kwon et al. [12]).
#include <gtest/gtest.h>

#include "index/adaptive_hash.h"
#include "mesh/generators/grid_generator.h"
#include "sim/plasticity_deformer.h"
#include "sim/random_deformer.h"
#include "sim/workload.h"
#include "test_util.h"

namespace octopus {
namespace {

using testing::BruteForceRangeQuery;
using testing::Sorted;

TetraMesh MakeBox(int n) {
  return GenerateBoxMesh(n, n, n, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
      .MoveValue();
}

TEST(AdaptiveHashTest, ExactAfterBuild) {
  const TetraMesh mesh = MakeBox(9);
  AdaptiveHashIndex index;
  index.Build(mesh);
  const AABB q(Vec3(0.15f, 0.25f, 0.05f), Vec3(0.7f, 0.6f, 0.5f));
  std::vector<VertexId> got;
  index.RangeQuery(mesh, q, &got);
  EXPECT_EQ(Sorted(got), BruteForceRangeQuery(mesh, q));
}

TEST(AdaptiveHashTest, TracksDeformationExactly) {
  TetraMesh mesh = MakeBox(8);
  AdaptiveHashIndex index;
  index.Build(mesh);
  RandomDeformer deformer(0.01f);
  deformer.Bind(mesh);
  QueryGenerator gen(mesh);
  Rng rng(31);
  for (int step = 1; step <= 8; ++step) {
    deformer.ApplyStep(step, &mesh);
    index.BeforeQueries(mesh);
    for (int q = 0; q < 5; ++q) {
      const AABB box = gen.MakeQuery(&rng, 0.02);
      std::vector<VertexId> got;
      index.RangeQuery(mesh, box, &got);
      ASSERT_EQ(Sorted(got), BruteForceRangeQuery(mesh, box))
          << "step " << step << " query " << q;
    }
  }
}

TEST(AdaptiveHashTest, FastObjectsMoveToCoarseLevel) {
  TetraMesh mesh = MakeBox(8);
  AdaptiveHashIndex::Options options;
  options.fast_fraction_of_fine_cell = 0.25f;
  AdaptiveHashIndex index(options);
  index.Build(mesh);
  EXPECT_EQ(index.num_fast(), 0u);

  // Move the first quarter of the vertices by a large step: they must be
  // reclassified as fast.
  const size_t movers = mesh.num_vertices() / 4;
  for (size_t v = 0; v < movers; ++v) {
    mesh.mutable_positions()[v] += Vec3(0.2f, 0.0f, 0.0f);
  }
  index.BeforeQueries(mesh);
  EXPECT_EQ(index.num_fast(), movers);

  // Results stay exact with mixed levels.
  const AABB q(Vec3(0, 0, 0), Vec3(0.6f, 0.6f, 0.6f));
  std::vector<VertexId> got;
  index.RangeQuery(mesh, q, &got);
  EXPECT_EQ(Sorted(got), BruteForceRangeQuery(mesh, q));
}

TEST(AdaptiveHashTest, TinyMovesAvoidRebucketing) {
  TetraMesh mesh = MakeBox(10);
  AdaptiveHashIndex index;
  index.Build(mesh);
  // Move every vertex by far less than a fine cell: most stay put.
  RandomDeformer deformer(0.001f);
  deformer.Bind(mesh);
  deformer.ApplyStep(1, &mesh);
  index.BeforeQueries(mesh);
  EXPECT_LT(index.last_rebuckets(), mesh.num_vertices() / 4);
}

TEST(AdaptiveHashTest, SurvivesDriftOutsideOriginalBounds) {
  TetraMesh mesh = MakeBox(6);
  AdaptiveHashIndex index;
  index.Build(mesh);
  // Drift the mesh outside the original bounding box; clamping must keep
  // results exact (just slower).
  for (Vec3& p : mesh.mutable_positions()) p += Vec3(0.9f, 0.9f, 0.9f);
  index.BeforeQueries(mesh);
  const AABB q(Vec3(1.0f, 1.0f, 1.0f), Vec3(1.6f, 1.6f, 1.6f));
  std::vector<VertexId> got;
  index.RangeQuery(mesh, q, &got);
  EXPECT_EQ(Sorted(got), BruteForceRangeQuery(mesh, q));
}

TEST(AdaptiveHashTest, FootprintAccounted) {
  const TetraMesh mesh = MakeBox(8);
  AdaptiveHashIndex index;
  index.Build(mesh);
  EXPECT_GT(index.FootprintBytes(),
            mesh.num_vertices() * sizeof(VertexId));
}

}  // namespace
}  // namespace octopus
