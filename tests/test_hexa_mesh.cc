// Copyright 2026 The OCTOPUS Reproduction Authors
// Unit and property tests for hexahedral meshes and the hexahedral
// OCTOPUS executor (paper Fig. 1(b): the strategy is primitive-agnostic).
#include <gtest/gtest.h>

#include <unordered_set>

#include "mesh/generators/hexa_generator.h"
#include "common/rng.h"
#include "mesh/hexa_mesh.h"
#include "octopus/hex_octopus.h"
#include "sim/deformer.h"

namespace octopus {
namespace {

HexaMesh MakeHexBox(int n) {
  return GenerateHexBoxMesh(n, n, n, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
      .MoveValue();
}

std::vector<VertexId> BruteForce(const HexaMesh& mesh, const AABB& box) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
    if (box.Contains(mesh.position(v))) out.push_back(v);
  }
  return out;
}

std::vector<VertexId> Sorted(std::vector<VertexId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(QuadKeyTest, Canonicalization) {
  EXPECT_EQ(MakeQuadKey(4, 1, 3, 2), (QuadKey{1, 2, 3, 4}));
  EXPECT_EQ(MakeQuadKey(1, 2, 3, 4), (QuadKey{1, 2, 3, 4}));
}

TEST(HexFacesTest, SingleCellFaces) {
  const HexCell cell{0, 1, 2, 3, 4, 5, 6, 7};
  const auto faces = HexFaces(cell);
  // x = 0 face holds corners with bit0 == 0: {0, 2, 4, 6}.
  EXPECT_EQ(faces[0], (QuadKey{0, 2, 4, 6}));
  // x = 1 face: {1, 3, 5, 7}.
  EXPECT_EQ(faces[1], (QuadKey{1, 3, 5, 7}));
  // All six faces distinct.
  std::unordered_set<size_t> hashes;
  for (const QuadKey& f : faces) hashes.insert(QuadKeyHash{}(f));
  EXPECT_EQ(hashes.size(), 6u);
}

TEST(HexaMeshTest, SingleCellTopology) {
  const HexaMesh mesh = MakeHexBox(1);
  EXPECT_EQ(mesh.num_vertices(), 8u);
  EXPECT_EQ(mesh.num_cells(), 1u);
  EXPECT_EQ(mesh.num_edges(), 12u);
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(mesh.degree(v), 3u) << "corner " << v;
  }
  EXPECT_DOUBLE_EQ(mesh.AverageDegree(), 3.0);
}

TEST(HexaMeshTest, InteriorDegreeIsSix) {
  // Hex lattice vertices connect only along axes: interior degree 6 (vs
  // 14 for Kuhn tetrahedra) — the "degrees of freedom" difference the
  // paper attributes to the primitive choice.
  const HexaMesh mesh = MakeHexBox(6);
  const AABB interior(Vec3(0.3f, 0.3f, 0.3f), Vec3(0.7f, 0.7f, 0.7f));
  size_t checked = 0;
  for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
    if (interior.Contains(mesh.position(v))) {
      EXPECT_EQ(mesh.degree(v), 6u);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(HexaMeshTest, BoxMeshCounts) {
  const HexaMesh mesh = MakeHexBox(4);
  EXPECT_EQ(mesh.num_vertices(), 125u);
  EXPECT_EQ(mesh.num_cells(), 64u);
  // Edges of a 4^3 hex lattice: 3 * 4 * 5 * 5 per direction.
  EXPECT_EQ(mesh.num_edges(), 3u * 4u * 5u * 5u);
}

TEST(HexaMeshTest, SharedFaceVerticesDeduplicated) {
  auto r = GenerateHexBoxMesh(2, 1, 1, AABB(Vec3(0, 0, 0), Vec3(2, 1, 1)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.Value().num_vertices(), 12u);  // 3 x 2 x 2 lattice
  EXPECT_EQ(r.Value().num_cells(), 2u);
}

TEST(HexaGeneratorTest, RejectsBadArguments) {
  EXPECT_FALSE(
      GenerateHexBoxMesh(0, 1, 1, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))).ok());
  EXPECT_FALSE(GenerateHexBoxMesh(2, 2, 2, AABB()).ok());
  EXPECT_FALSE(GenerateMaskedHexGrid(2, 2, 2,
                                     AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)),
                                     [](int, int, int) { return false; })
                   .ok());
}

TEST(HexSurfaceTest, SingleCellAllOnSurface) {
  const HexaMesh mesh = MakeHexBox(1);
  const HexSurfaceInfo s = ExtractHexSurface(mesh);
  EXPECT_EQ(s.surface_vertices.size(), 8u);
  EXPECT_EQ(s.surface_faces.size(), 6u);
}

TEST(HexSurfaceTest, BoxSurfaceIsBoundaryLattice) {
  const int n = 5;
  const HexaMesh mesh = MakeHexBox(n);
  const HexSurfaceInfo s = ExtractHexSurface(mesh);
  const size_t total = (n + 1) * (n + 1) * (n + 1);
  const size_t interior = (n - 1) * (n - 1) * (n - 1);
  EXPECT_EQ(s.surface_vertices.size(), total - interior);
  EXPECT_EQ(s.surface_faces.size(), 6u * n * n);
  for (VertexId v : s.surface_vertices) {
    const Vec3& p = mesh.position(v);
    EXPECT_TRUE(p.x == 0.0f || p.x == 1.0f || p.y == 0.0f || p.y == 1.0f ||
                p.z == 0.0f || p.z == 1.0f);
  }
}

TEST(HexSurfaceTest, SharedFaceIsInterior) {
  auto r = GenerateHexBoxMesh(2, 1, 1, AABB(Vec3(0, 0, 0), Vec3(2, 1, 1)));
  ASSERT_TRUE(r.ok());
  const HexSurfaceInfo s = ExtractHexSurface(r.Value());
  // 2 cells x 6 faces = 12 face instances, 1 shared -> 10 surface faces.
  EXPECT_EQ(s.surface_faces.size(), 10u);
  // All 12 vertices still on the surface.
  EXPECT_EQ(s.surface_vertices.size(), 12u);
}

TEST(HexOctopusTest, ExactOnStaticMesh) {
  const HexaMesh mesh = MakeHexBox(10);
  HexOctopus octo;
  octo.Build(mesh);
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    const Vec3 c = rng.NextPointIn(AABB(Vec3(0.1f, 0.1f, 0.1f),
                                        Vec3(0.9f, 0.9f, 0.9f)));
    const float h = rng.NextFloat(0.08f, 0.3f);
    const AABB q = AABB::FromCenterHalfExtent(c, Vec3(h, h, h));
    std::vector<VertexId> got;
    octo.RangeQuery(mesh, q, &got);
    ASSERT_EQ(Sorted(got), BruteForce(mesh, q)) << "query " << i;
  }
}

TEST(HexOctopusTest, ExactUnderDeformation) {
  HexaMesh mesh = MakeHexBox(12);
  HexOctopus octo;
  octo.Build(mesh);
  // In-place bounded jitter around rest positions, like the tetrahedral
  // simulations. (Hex graphs have only the 6 axis neighbors, so the
  // discrete-reachability margin is thinner than for tetrahedra: keep
  // displacements well below the 1/12 spacing.)
  const std::vector<Vec3> rest = mesh.positions();
  Rng rng(6);
  for (int step = 1; step <= 6; ++step) {
    for (size_t v = 0; v < mesh.num_vertices(); ++v) {
      mesh.mutable_positions()[v] =
          rest[v] + rng.NextUnitVector() *
                        (0.012f * static_cast<float>(rng.NextDouble()));
    }
    for (int q = 0; q < 5; ++q) {
      const Vec3 c = rng.NextPointIn(AABB(Vec3(0.15f, 0.15f, 0.15f),
                                          Vec3(0.85f, 0.85f, 0.85f)));
      const AABB box =
          AABB::FromCenterHalfExtent(c, Vec3(0.18f, 0.18f, 0.18f));
      std::vector<VertexId> got;
      octo.RangeQuery(mesh, box, &got);
      ASSERT_EQ(Sorted(got), BruteForce(mesh, box))
          << "step " << step << " query " << q;
    }
  }
}

TEST(HexOctopusTest, DisjointComponentsViaSurfaceProbe) {
  // The Fig. 3 scenario on hexahedra: two slabs, query spanning both.
  auto r = GenerateMaskedHexGrid(
      6, 6, 7, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)),
      [](int, int, int k) { return k <= 1 || k >= 5; });
  ASSERT_TRUE(r.ok());
  const HexaMesh& mesh = r.Value();
  HexOctopus octo;
  octo.Build(mesh);
  const AABB q(Vec3(0.3f, 0.3f, 0.0f), Vec3(0.7f, 0.7f, 1.0f));
  std::vector<VertexId> got;
  octo.RangeQuery(mesh, q, &got);
  EXPECT_EQ(Sorted(got), BruteForce(mesh, q));
}

TEST(HexOctopusTest, EnclosedQueryUsesDirectedWalk) {
  const HexaMesh mesh = MakeHexBox(12);
  HexOctopus octo;
  octo.Build(mesh);
  const AABB q(Vec3(0.4f, 0.4f, 0.4f), Vec3(0.6f, 0.6f, 0.6f));
  std::vector<VertexId> got;
  octo.RangeQuery(mesh, q, &got);
  EXPECT_EQ(Sorted(got), BruteForce(mesh, q));
  EXPECT_EQ(octo.stats().walk_invocations, 1u);
}

TEST(HexOctopusTest, SurfaceApproximationSampling) {
  const HexaMesh mesh = MakeHexBox(12);
  HexOctopus octo(OctopusOptions{.surface_sample_fraction = 0.1});
  octo.Build(mesh);
  std::vector<VertexId> got;
  octo.RangeQuery(mesh, AABB(Vec3(0, 0, 0), Vec3(0.5f, 0.5f, 0.5f)), &got);
  EXPECT_LE(octo.stats().probed_vertices,
            octo.surface_index().num_surface_vertices() / 9);
}

TEST(HexOctopusTest, FootprintBelowMesh) {
  const HexaMesh mesh = MakeHexBox(10);
  HexOctopus octo;
  octo.Build(mesh);
  EXPECT_GT(octo.FootprintBytes(), 0u);
  EXPECT_LT(octo.FootprintBytes(), mesh.MemoryBytes());
}

}  // namespace
}  // namespace octopus
