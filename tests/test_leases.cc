// Copyright 2026 The OCTOPUS Reproduction Authors
// Leased page references, end to end: TryPin's non-blocking contract,
// paged-vs-in-memory result parity with leasing active (static and
// dynamic, 1 and 4 threads), the tiny-pool/many-thread liveness
// guarantee under the lease discipline, and the counter semantics that
// make "page accesses" approximate distinct-pages-touched per batch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/thread_pool.h"
#include "mesh/generators/grid_generator.h"
#include "mesh/mesh_io.h"
#include "octopus/paged_executor.h"
#include "octopus/query_executor.h"
#include "server/versioned_backend.h"
#include "sim/workload.h"
#include "storage/buffer_manager.h"
#include "storage/paged_mesh.h"
#include "storage/snapshot.h"
#include "test_util.h"

namespace octopus {
namespace {

using server::VersionedBackend;
using storage::BufferManager;
using storage::PagedMeshAccessor;
using storage::PagedMeshStore;
using storage::PageIOStats;
using storage::SnapshotLayout;
using storage::SnapshotOptions;
using testing::BruteForceRangeQuery;
using testing::Sorted;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TetraMesh MakeBox(int n) {
  return GenerateBoxMesh(n, n, n, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
      .MoveValue();
}

// ---------- TryPin: the only way leases are acquired ----------

TEST(TryPinTest, NonBlockingAndCountsNothingOnFailure) {
  const TetraMesh mesh = MakeBox(6);
  const std::string path = TempPath("trypin.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           SnapshotOptions{.page_bytes = 256}).ok());
  auto header = storage::ReadSnapshotHeader(path);
  ASSERT_TRUE(header.ok());
  const size_t page_bytes = header.Value().page_bytes;
  const auto num_pages =
      static_cast<storage::PageId>(header.Value().num_pages);
  ASSERT_GT(num_pages, 3u);

  auto opened = BufferManager::Open(
      path, page_bytes, num_pages,
      BufferManager::Options{.pool_bytes = 2 * page_bytes});
  ASSERT_TRUE(opened.ok());
  BufferManager* pool = opened.Value().get();

  // Fill both frames with ordinary pins.
  PageIOStats stats;
  ASSERT_NE(pool->Pin(0, &stats), nullptr);
  ASSERT_NE(pool->Pin(1, &stats), nullptr);
  const PageIOStats full = stats;

  // Non-resident page, no free frame: TryPin must return null
  // immediately and leave every counter untouched — Pin would block.
  EXPECT_EQ(pool->TryPin(2, &stats), nullptr);
  EXPECT_EQ(stats.page_hits, full.page_hits);
  EXPECT_EQ(stats.page_misses, full.page_misses);
  EXPECT_EQ(stats.page_evictions, full.page_evictions);

  // A resident page is a hit even with the pool full (it adds a pin to
  // an existing frame, not a frame).
  const std::byte* resident = pool->TryPin(1, &stats);
  ASSERT_NE(resident, nullptr);
  EXPECT_EQ(stats.page_hits, full.page_hits + 1);
  pool->Unpin(1);

  // Freeing a frame lets TryPin load: priced as a miss, like Pin.
  pool->Unpin(0);
  const std::byte* loaded = pool->TryPin(2, &stats);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(stats.page_misses, full.page_misses + 1);
  pool->Unpin(2);
  pool->Unpin(1);
  std::remove(path.c_str());
}

// ---------- Static parity: leases change costs, never results ----------

/// The paged executor (leases active under a generous pool) must return
/// bit-identical per-query vertex lists to the in-memory executor on the
/// same mesh, at 1 and 4 threads.
TEST(LeaseParityTest, StaticPagedMatchesInMemory1And4Threads) {
  const TetraMesh mesh = MakeBox(9);
  const std::string path = TempPath("lease_parity.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           SnapshotOptions{.page_bytes = 512}).ok());
  auto header = storage::ReadSnapshotHeader(path);
  ASSERT_TRUE(header.ok());

  Octopus reference;
  reference.Build(mesh);

  // A pool large enough that leases and zero-copy spans engage.
  PagedOctopus::Options options;
  options.pool.pool_bytes =
      std::max<size_t>(header.Value().FileBytes() / 2, 64 * 512);
  auto paged = PagedOctopus::Open(path, options);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();

  QueryGenerator gen(mesh);
  Rng rng(0x1EA5E);
  const std::vector<AABB> queries = gen.MakeQueries(&rng, 24, 0.001, 0.02);

  for (const int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    engine::ThreadPool pool(threads);
    engine::ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;

    engine::QueryBatchResult expected;
    reference.RangeQueryBatch(mesh, queries, &expected, pool_ptr);
    engine::QueryBatchResult results;
    paged.Value()->RangeQueryBatch(queries, &results, pool_ptr);

    ASSERT_EQ(results.size(), expected.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(results.per_query[q], expected.per_query[q])
          << "query " << q;
      EXPECT_EQ(Sorted(results.per_query[q]),
                BruteForceRangeQuery(mesh, queries[q]))
          << "query " << q;
    }
  }
  // The workload actually exercised the lease path.
  EXPECT_GT(paged.Value()->stats().page_io.pages_leased, 0u);
  EXPECT_GT(paged.Value()->stats().page_io.lease_hits, 0u);
  std::remove(path.c_str());
}

// ---------- Dynamic parity: leases + overlays, in-memory oracle ----------

/// Both backend kinds advance the same deformer trajectory; at every
/// step the paged backend (leases + delta overlays) must answer
/// bit-identically to the in-memory one.
void RunDynamicLeaseParity(int threads) {
  const TetraMesh mesh = MakeBox(7);
  const std::string path = TempPath("lease_dynparity.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           SnapshotOptions{.page_bytes = 1024}).ok());

  DeformerSpec spec;
  spec.kind = DeformerKind::kRandom;
  spec.amplitude = 0.02f;
  spec.seed = 77;

  auto in_memory = VersionedBackend::FromMesh(mesh, threads);
  ASSERT_TRUE(in_memory->BindDeformer(spec).ok());
  auto opened =
      VersionedBackend::OpenSnapshot(path, /*pool_bytes=*/256 * 1024,
                                     threads);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto paged = opened.MoveValue();
  ASSERT_TRUE(paged->BindDeformer(spec).ok());

  QueryGenerator gen(mesh);
  Rng rng(0xD1A + threads);
  for (uint32_t step = 0; step <= 4; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    if (step > 0) {
      in_memory->AdvanceStep();
      paged->AdvanceStep();
    }
    const std::vector<AABB> queries = gen.MakeQueries(&rng, 10, 0.005,
                                                      0.03);
    engine::QueryBatchResult expected;
    PhaseStats expected_stats;
    in_memory->Execute(queries, &expected, &expected_stats);
    engine::QueryBatchResult results;
    PhaseStats stats;
    paged->Execute(queries, &results, &stats);

    EXPECT_EQ(results.epoch, expected.epoch);
    ASSERT_EQ(results.size(), expected.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(results.per_query[q], expected.per_query[q])
          << "query " << q;
    }
  }
  std::remove(path.c_str());
}

TEST(LeaseParityTest, DynamicPagedMatchesInMemory1Thread) {
  RunDynamicLeaseParity(1);
}

TEST(LeaseParityTest, DynamicPagedMatchesInMemory4Threads) {
  RunDynamicLeaseParity(4);
}

// ---------- Liveness: constrained pools degrade, never deadlock ----------

/// Many threads on pools from degenerate (2 pages: lease cap 0, exact
/// legacy behavior) to barely-roomy must all finish with exact results
/// and never exceed the byte cap — the lease discipline's headroom rules
/// are what make this safe.
TEST(LeaseStressTest, TinyPoolsManyThreadsNoDeadlockCapRespected) {
  const TetraMesh mesh = MakeBox(8);
  const std::string path = TempPath("lease_stress.oct2");
  ASSERT_TRUE(SaveSnapshot(mesh, path,
                           SnapshotOptions{.page_bytes = 512}).ok());

  QueryGenerator gen(mesh);
  Rng rng(11);
  const std::vector<AABB> queries = gen.MakeQueries(&rng, 16, 0.001, 0.02);

  for (const size_t pool_pages : {size_t{2}, size_t{8}, size_t{48}}) {
    SCOPED_TRACE("pool pages " + std::to_string(pool_pages));
    PagedOctopus::Options options;
    options.pool.pool_bytes = pool_pages * 512;
    auto paged = PagedOctopus::Open(path, options);
    ASSERT_TRUE(paged.ok()) << paged.status().ToString();

    engine::ThreadPool pool(8);
    engine::QueryBatchResult results;
    paged.Value()->RangeQueryBatch(queries, &results, &pool);

    ASSERT_EQ(results.size(), queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(Sorted(results.per_query[q]),
                BruteForceRangeQuery(mesh, queries[q]))
          << "query " << q;
    }
    EXPECT_LE(
        paged.Value()->store().buffer_manager()->AllocatedBytes(),
        pool_pages * 512);
  }
  std::remove(path.c_str());
}

// ---------- Counter semantics: accesses ≈ distinct pages ----------

/// On a Hilbert-clustered snapshot with a warm pool, a batch's priced
/// page accesses (hits + misses) must track the distinct pages it
/// touched — the whole point of leasing: repeated reads of a mapped
/// page are free (`lease_hits`), not re-priced.
TEST(LeaseCounterTest, PageAccessesApproximateDistinctPages) {
  const TetraMesh mesh = MakeBox(10);
  const std::string path = TempPath("lease_counters.oct2");
  ASSERT_TRUE(
      SaveSnapshot(mesh, path,
                   SnapshotOptions{.page_bytes = 512,
                                   .layout = SnapshotLayout::kHilbert})
          .ok());
  auto header = storage::ReadSnapshotHeader(path);
  ASSERT_TRUE(header.ok());

  // Pool covers the snapshot: no capacity-driven lease churn.
  PagedOctopus::Options options;
  options.pool.pool_bytes = header.Value().FileBytes() + 4 * 512;
  auto paged = PagedOctopus::Open(path, options);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();

  QueryGenerator gen(mesh);
  Rng rng(0xC0);
  const std::vector<AABB> queries = gen.MakeQueries(&rng, 12, 0.002, 0.02);

  engine::QueryBatchResult results;
  paged.Value()->RangeQueryBatch(queries, &results);  // cold run
  paged.Value()->ResetStats();
  paged.Value()->RangeQueryBatch(queries, &results);  // measured, warm

  const PageIOStats& io = paged.Value()->stats().page_io;
  ASSERT_GT(io.pages_distinct, 0u);
  EXPECT_GT(io.lease_hits, 0u);
  EXPECT_GT(io.pages_leased, 0u);
  // The acceptance bound: priced accesses within 2x of exact distinct.
  EXPECT_LE(io.PageAccesses(), 2 * io.pages_distinct)
      << "hits=" << io.page_hits << " misses=" << io.page_misses
      << " distinct=" << io.pages_distinct;
  // And re-reads vastly outnumber priced accesses on a crawl workload.
  EXPECT_GT(io.lease_hits, io.PageAccesses());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace octopus
