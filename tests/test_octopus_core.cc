// Copyright 2026 The OCTOPUS Reproduction Authors
// Unit tests for the OCTOPUS building blocks: surface index, crawler,
// directed walk, cost model and Hilbert layout.
#include <gtest/gtest.h>

#include <unordered_set>

#include "mesh/generators/datasets.h"
#include "mesh/generators/grid_generator.h"
#include "mesh/mesh_stats.h"
#include "octopus/cost_model.h"
#include "octopus/crawler.h"
#include "octopus/directed_walk.h"
#include "mesh/hilbert_layout.h"
#include "octopus/query_executor.h"
#include "octopus/surface_index.h"
#include "sim/restructurer.h"
#include "test_util.h"

namespace octopus {
namespace {

using testing::BruteForceRangeQuery;
using testing::Sorted;

TetraMesh MakeBox(int n) {
  return GenerateBoxMesh(n, n, n, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
      .MoveValue();
}

// ---------- SurfaceIndex ----------

TEST(SurfaceIndexTest, MatchesExtraction) {
  const TetraMesh mesh = MakeBox(5);
  SurfaceIndex index;
  index.Build(mesh);
  const SurfaceInfo reference = ExtractSurface(mesh);
  EXPECT_EQ(index.num_surface_vertices(), reference.surface_vertices.size());
  for (VertexId v : reference.surface_vertices) {
    EXPECT_TRUE(index.Contains(v));
  }
  // Probe order covers exactly the surface set.
  std::unordered_set<VertexId> probe(index.probe_order().begin(),
                                     index.probe_order().end());
  EXPECT_EQ(probe.size(), reference.surface_vertices.size());
}

TEST(SurfaceIndexTest, ProbeOrderIsSortedForStreamingAccess) {
  // Sorted ids make the probe stream forward through the position array
  // (sequential-scan-like cost CS) and make strided sampling the paper's
  // "equidistant" surface sample.
  const TetraMesh mesh = MakeBox(4);
  SurfaceIndex index;
  index.Build(mesh);
  const auto order = index.probe_order();
  ASSERT_FALSE(order.empty());
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1], order[i]);
  }
}

TEST(SurfaceIndexTest, ProbeOrderStaysSortedAcrossMaintenance) {
  TetraMesh mesh = MakeBox(3);
  SurfaceIndex index(SurfaceIndex::Options{.support_restructuring = true});
  index.Build(mesh);
  Rng rng(3);
  for (int round = 0; round < 3; ++round) {
    auto delta = RandomRefinement(&mesh, 5, &rng);
    ASSERT_TRUE(delta.ok());
    index.ApplyDelta(delta.Value());
    const SurfaceInfo info = ExtractSurface(mesh);
    const FaceKey face =
        info.surface_faces[rng.NextBelow(info.surface_faces.size())];
    auto grow = AddTetOnSurfaceFace(
        &mesh, face,
        (mesh.position(face[0]) + mesh.position(face[1]) +
         mesh.position(face[2])) /
                3.0f +
            Vec3(0.0f, 0.0f, -0.2f));
    if (grow.ok()) index.ApplyDelta(grow.Value());
    const auto order = index.probe_order();
    for (size_t i = 1; i < order.size(); ++i) {
      ASSERT_LT(order[i - 1], order[i]) << "round " << round;
    }
  }
}

TEST(SurfaceIndexTest, IncrementalMaintenanceMatchesRebuild) {
  // Property: after any sequence of restructuring operations, the
  // incrementally maintained index equals a from-scratch rebuild.
  TetraMesh mesh = MakeBox(3);
  SurfaceIndex incremental(
      SurfaceIndex::Options{.support_restructuring = true});
  incremental.Build(mesh);

  Rng rng(5);
  for (int round = 0; round < 5; ++round) {
    // Mix of interior splits and surface extrusions.
    auto split = SplitTetAtCentroid(
        &mesh, static_cast<TetId>(rng.NextBelow(mesh.num_tetrahedra())));
    ASSERT_TRUE(split.ok());
    incremental.ApplyDelta(split.Value());

    const SurfaceInfo current = ExtractSurface(mesh);
    const FaceKey face =
        current.surface_faces[rng.NextBelow(current.surface_faces.size())];
    const Vec3 centroid = (mesh.position(face[0]) + mesh.position(face[1]) +
                           mesh.position(face[2])) /
                          3.0f;
    const Vec3 outward = centroid - Vec3(0.5f, 0.5f, 0.5f);
    auto grow = AddTetOnSurfaceFace(&mesh, face, centroid + outward * 0.4f);
    ASSERT_TRUE(grow.ok());
    incremental.ApplyDelta(grow.Value());

    SurfaceIndex rebuilt;
    rebuilt.Build(mesh);
    ASSERT_EQ(incremental.num_surface_vertices(),
              rebuilt.num_surface_vertices())
        << "round " << round;
    for (VertexId v : rebuilt.probe_order()) {
      ASSERT_TRUE(incremental.Contains(v)) << "round " << round;
    }
  }
}

TEST(SurfaceIndexTest, FootprintScalesWithSurface) {
  const TetraMesh small = MakeBox(3);
  const TetraMesh large = MakeBox(8);
  SurfaceIndex si;
  SurfaceIndex li;
  si.Build(small);
  li.Build(large);
  EXPECT_GT(li.FootprintBytes(), si.FootprintBytes());
  EXPECT_GT(li.HashTableBytes(), 0u);
  EXPECT_LE(li.HashTableBytes(), li.FootprintBytes());
}

// ---------- Crawler ----------

TEST(CrawlerTest, FullCoverageOnConvexMesh) {
  const TetraMesh mesh = MakeBox(8);
  Crawler crawler;
  crawler.EnsureSize(mesh.num_vertices());
  const AABB q(Vec3(0.2f, 0.3f, 0.1f), Vec3(0.7f, 0.8f, 0.6f));
  const auto expected = BruteForceRangeQuery(mesh, q);
  ASSERT_FALSE(expected.empty());
  // Start from a single vertex inside the query.
  std::vector<VertexId> starts = {expected.front()};
  std::vector<VertexId> got;
  const CrawlStats stats = crawler.Crawl(mesh, q, starts, &got);
  EXPECT_EQ(Sorted(got), expected);
  EXPECT_EQ(stats.vertices_inside, expected.size());
  EXPECT_GT(stats.edges_traversed, expected.size());
}

TEST(CrawlerTest, StartsOutsideBoxAreIgnored) {
  const TetraMesh mesh = MakeBox(5);
  Crawler crawler;
  crawler.EnsureSize(mesh.num_vertices());
  const AABB q(Vec3(0.4f, 0.4f, 0.4f), Vec3(0.6f, 0.6f, 0.6f));
  std::vector<VertexId> starts = {0};  // corner vertex, far outside
  ASSERT_FALSE(q.Contains(mesh.position(0)));
  std::vector<VertexId> got;
  crawler.Crawl(mesh, q, starts, &got);
  EXPECT_TRUE(got.empty());
}

TEST(CrawlerTest, DuplicateStartsYieldNoDuplicates) {
  const TetraMesh mesh = MakeBox(5);
  Crawler crawler;
  crawler.EnsureSize(mesh.num_vertices());
  const AABB q(Vec3(0, 0, 0), Vec3(1, 1, 1));
  const VertexId s = 10;
  std::vector<VertexId> starts = {s, s, s};
  std::vector<VertexId> got;
  crawler.Crawl(mesh, q, starts, &got);
  std::unordered_set<VertexId> unique(got.begin(), got.end());
  EXPECT_EQ(unique.size(), got.size());
  EXPECT_EQ(got.size(), mesh.num_vertices());
}

TEST(CrawlerTest, ReusableAcrossQueriesViaEpochs) {
  const TetraMesh mesh = MakeBox(6);
  Crawler crawler;
  crawler.EnsureSize(mesh.num_vertices());
  Rng rng(9);
  for (int i = 0; i < 30; ++i) {
    const Vec3 c = rng.NextPointIn(AABB(Vec3(0.2f, 0.2f, 0.2f),
                                        Vec3(0.8f, 0.8f, 0.8f)));
    const AABB q = AABB::FromCenterHalfExtent(c, Vec3(0.2f, 0.2f, 0.2f));
    const auto expected = BruteForceRangeQuery(mesh, q);
    if (expected.empty()) continue;
    std::vector<VertexId> starts = {expected.front()};
    std::vector<VertexId> got;
    crawler.Crawl(mesh, q, starts, &got);
    ASSERT_EQ(Sorted(got), expected) << "iteration " << i;
  }
}

TEST(CrawlerTest, EpochCounterWraparoundResetsVisitedMarks) {
  // The visited array is never cleared between queries; a per-query
  // epoch stamp makes clearing O(1) — until the uint32 counter wraps,
  // where stale marks from 2^32 crawls ago could alias the fresh epoch.
  // Force the counter to the wrap boundary and verify the reset path
  // produces correct results on, across, and after the wrap.
  const TetraMesh mesh = MakeBox(6);
  const AABB q(Vec3(0.25f, 0.25f, 0.25f), Vec3(0.75f, 0.75f, 0.75f));
  const auto expected = BruteForceRangeQuery(mesh, q);
  ASSERT_FALSE(expected.empty());
  const std::vector<VertexId> starts = {expected.front()};

  Crawler crawler;
  crawler.EnsureSize(mesh.num_vertices());
  // Stamp every reachable vertex with the maximum epoch value — the
  // exact value stale marks would hold right before the wrap.
  crawler.set_epoch_for_testing(0xFFFFFFFEu);
  std::vector<VertexId> got;
  crawler.Crawl(mesh, q, starts, &got);
  EXPECT_EQ(crawler.epoch(), 0xFFFFFFFFu);
  EXPECT_EQ(Sorted(got), expected);

  // This crawl increments 0xFFFFFFFF -> 0: the wrap path must reset all
  // marks (which currently hold the pre-wrap epoch) and restart at 1;
  // without the reset, no vertex stamped 0xFFFFFFFF could alias, but a
  // mark equal to the *new* epoch from eons ago would be skipped.
  got.clear();
  crawler.Crawl(mesh, q, starts, &got);
  EXPECT_EQ(crawler.epoch(), 1u);
  EXPECT_EQ(Sorted(got), expected);

  // And the post-wrap epoch sequence keeps deduplicating correctly: a
  // different query must not see leftover marks from the wrap reset.
  const AABB q2(Vec3(0.0f, 0.0f, 0.0f), Vec3(0.5f, 0.5f, 0.5f));
  const auto expected2 = BruteForceRangeQuery(mesh, q2);
  ASSERT_FALSE(expected2.empty());
  const std::vector<VertexId> starts2 = {expected2.front()};
  got.clear();
  crawler.Crawl(mesh, q2, starts2, &got);
  EXPECT_EQ(crawler.epoch(), 2u);
  EXPECT_EQ(Sorted(got), expected2);
}

TEST(CrawlerTest, CrawlDependsOnResultSizeNotMeshSize) {
  // The scaling claim in one assertion: the same query on a mesh 8x the
  // size touches a similar number of vertices.
  const TetraMesh small = MakeBox(8);
  const TetraMesh large = MakeBox(16);
  const AABB q(Vec3(0.4f, 0.4f, 0.4f), Vec3(0.6f, 0.6f, 0.6f));
  Crawler crawler;

  crawler.EnsureSize(small.num_vertices());
  auto expected_small = BruteForceRangeQuery(small, q);
  const std::vector<VertexId> small_starts = {expected_small.front()};
  std::vector<VertexId> got;
  const CrawlStats s1 = crawler.Crawl(small, q, small_starts, &got);

  crawler.EnsureSize(large.num_vertices());
  auto expected_large = BruteForceRangeQuery(large, q);
  const std::vector<VertexId> large_starts = {expected_large.front()};
  got.clear();
  const CrawlStats s2 = crawler.Crawl(large, q, large_starts, &got);

  // 16^3 mesh has 8x vertices; the fixed-size query has ~8x results, so
  // touched counts scale with result size. Verify touched counts stay
  // proportional to results (within 3x), NOT to mesh size.
  const double ratio1 = static_cast<double>(s1.vertices_touched) /
                        static_cast<double>(expected_small.size());
  const double ratio2 = static_cast<double>(s2.vertices_touched) /
                        static_cast<double>(expected_large.size());
  EXPECT_LT(ratio2, ratio1 * 3.0);
}

// ---------- Crawler visited modes ----------

TEST(CrawlerModeTest, HashSetModeMatchesEpochArray) {
  const TetraMesh mesh = MakeBox(9);
  Crawler fast(VisitedMode::kEpochArray);
  Crawler compact(VisitedMode::kHashSet);
  fast.EnsureSize(mesh.num_vertices());
  compact.EnsureSize(mesh.num_vertices());
  Rng rng(77);
  for (int i = 0; i < 20; ++i) {
    const Vec3 c = rng.NextPointIn(AABB(Vec3(0.2f, 0.2f, 0.2f),
                                        Vec3(0.8f, 0.8f, 0.8f)));
    const AABB q = AABB::FromCenterHalfExtent(c, Vec3(0.2f, 0.2f, 0.2f));
    const auto expected = BruteForceRangeQuery(mesh, q);
    if (expected.empty()) continue;
    const std::vector<VertexId> starts = {expected.front()};
    std::vector<VertexId> a;
    std::vector<VertexId> b;
    const CrawlStats sa = fast.Crawl(mesh, q, starts, &a);
    const CrawlStats sb = compact.Crawl(mesh, q, starts, &b);
    ASSERT_EQ(Sorted(a), Sorted(b));
    EXPECT_EQ(sa.vertices_inside, sb.vertices_inside);
    EXPECT_EQ(sa.edges_traversed, sb.edges_traversed);
  }
}

TEST(CrawlerModeTest, HashSetScratchScalesWithResultNotMesh) {
  // The paper's Fig. 10(b) memory behaviour: crawl scratch proportional
  // to the result neighborhood, not to the mesh.
  const TetraMesh mesh = MakeBox(16);
  const AABB small_q(Vec3(0.45f, 0.45f, 0.45f), Vec3(0.55f, 0.55f, 0.55f));
  const AABB big_q(Vec3(0.1f, 0.1f, 0.1f), Vec3(0.9f, 0.9f, 0.9f));

  auto scratch_after = [&](const AABB& q) {
    Crawler crawler(VisitedMode::kHashSet);
    const auto inside = BruteForceRangeQuery(mesh, q);
    const std::vector<VertexId> starts = {inside.front()};
    std::vector<VertexId> out;
    crawler.Crawl(mesh, q, starts, &out);
    return crawler.ScratchBytes();
  };
  const size_t small_scratch = scratch_after(small_q);
  const size_t big_scratch = scratch_after(big_q);
  EXPECT_LT(small_scratch, big_scratch / 4);
  // And both stay below the O(V) epoch array for small queries.
  EXPECT_LT(small_scratch, mesh.num_vertices() * sizeof(uint32_t) / 4);
}

TEST(CrawlerModeTest, OctopusExactWithHashSetCrawl) {
  const TetraMesh mesh = MakeNeuroMesh(0, 0.2).MoveValue();
  Octopus octo(OctopusOptions{.visited_mode = VisitedMode::kHashSet});
  octo.Build(mesh);
  Rng rng(78);
  for (int i = 0; i < 10; ++i) {
    const VertexId center =
        static_cast<VertexId>(rng.NextBelow(mesh.num_vertices()));
    const AABB q = AABB::FromCenterHalfExtent(mesh.position(center),
                                              Vec3(0.12f, 0.12f, 0.12f));
    std::vector<VertexId> got;
    octo.RangeQuery(mesh, q, &got);
    ASSERT_EQ(Sorted(got), BruteForceRangeQuery(mesh, q)) << "query " << i;
  }
}

// ---------- DirectedWalk ----------

TEST(DirectedWalkTest, FindsInteriorQuery) {
  const TetraMesh mesh = MakeBox(10);
  const AABB q(Vec3(0.45f, 0.45f, 0.45f), Vec3(0.55f, 0.55f, 0.55f));
  // Start from a far corner.
  const WalkResult r = DirectedWalk(mesh, q, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(q.Contains(mesh.position(r.found)));
  EXPECT_GT(r.vertices_visited, 0u);
}

TEST(DirectedWalkTest, StartInsideReturnsImmediately) {
  const TetraMesh mesh = MakeBox(6);
  const AABB q(Vec3(0, 0, 0), Vec3(1, 1, 1));
  const WalkResult r = DirectedWalk(mesh, q, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.found, 5u);
  EXPECT_EQ(r.vertices_visited, 0u);
}

TEST(DirectedWalkTest, ReportsFailureForDisjointQuery) {
  const TetraMesh mesh = MakeBox(6);
  const AABB q(Vec3(5, 5, 5), Vec3(6, 6, 6));  // far outside the mesh
  const WalkResult r = DirectedWalk(mesh, q, 0);
  EXPECT_FALSE(r.ok());
}

TEST(DirectedWalkTest, InvalidStart) {
  const TetraMesh mesh = MakeBox(3);
  const WalkResult r =
      DirectedWalk(mesh, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)), kInvalidVertex);
  EXPECT_FALSE(r.ok());
}

TEST(DirectedWalkTest, RobustToJitterLocalMinima) {
  // Regression: on a jittered mesh, a purely greedy descent can stall in
  // a local minimum of the distance landscape and wrongly report "no
  // intersection" for an interior query. The bounded best-first walk must
  // not. (Observed with this exact setup in the quickstart example.)
  TetraMesh mesh = GenerateBoxMesh(20, 20, 20,
                                   AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)))
                       .MoveValue();
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    // Fresh jitter each trial.
    for (Vec3& p : mesh.mutable_positions()) {
      p += rng.NextUnitVector() *
           (0.01f * static_cast<float>(rng.NextDouble()));
    }
    const Vec3 center = rng.NextPointIn(
        AABB(Vec3(0.3f, 0.3f, 0.3f), Vec3(0.7f, 0.7f, 0.7f)));
    const AABB q =
        AABB::FromCenterHalfExtent(center, Vec3(0.07f, 0.07f, 0.07f));
    const WalkResult r = DirectedWalk(mesh, q, 0);
    ASSERT_TRUE(r.ok()) << "trial " << trial;
    EXPECT_TRUE(q.Contains(mesh.position(r.found)));
  }
}

TEST(DirectedWalkTest, MissExplorationIsBounded) {
  // A clear miss must be detected after exploring only a small shell, not
  // the whole mesh.
  const TetraMesh mesh = MakeBox(14);
  const AABB q(Vec3(2, 0.4f, 0.4f), Vec3(2.2f, 0.6f, 0.6f));
  // Start from the surface vertex closest to the box (as OCTOPUS does).
  VertexId closest = 0;
  float best = std::numeric_limits<float>::max();
  for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
    const float d2 = q.SquaredDistanceTo(mesh.position(v));
    if (d2 < best) {
      best = d2;
      closest = v;
    }
  }
  const WalkResult r = DirectedWalk(mesh, q, closest);
  EXPECT_FALSE(r.ok());
  // The walk explores only the distance-bounded shell facing the query
  // (everything within start-distance + margin), not the whole mesh.
  EXPECT_LT(r.vertices_visited, mesh.num_vertices() / 3);
}

TEST(DirectedWalkTest, CloserStartWalksLess) {
  const TetraMesh mesh = MakeBox(16);
  const AABB q(Vec3(0.47f, 0.47f, 0.47f), Vec3(0.53f, 0.53f, 0.53f));
  // Far corner (vertex 0 is at the domain corner).
  const WalkResult far = DirectedWalk(mesh, q, 0);
  ASSERT_TRUE(far.ok());
  // A vertex near the center: find one within 0.2 of center.
  VertexId near_v = kInvalidVertex;
  for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
    if (Distance(mesh.position(v), Vec3(0.42f, 0.42f, 0.42f)) < 0.05f) {
      near_v = v;
      break;
    }
  }
  ASSERT_NE(near_v, kInvalidVertex);
  const WalkResult near = DirectedWalk(mesh, q, near_v);
  ASSERT_TRUE(near.ok());
  EXPECT_LT(near.vertices_visited, far.vertices_visited);
}

// ---------- CostModel ----------

TEST(CostModelTest, EquationsAreConsistent) {
  const CostConstants k{.cs_seconds = 6.6e-9, .cr_seconds = 2.7e-8};
  const CostModel model(/*surface_to_volume=*/0.03, /*mesh_degree=*/14.5, k);
  const size_t v = 1'000'000;

  // Eq. 3 decomposes into Eq. 1 + Eq. 2.
  const double probe = k.cs_seconds * 0.03 * v;
  const double crawl = k.cr_seconds * 14.5 * 0.001 * v;
  EXPECT_NEAR(model.OctopusSeconds(v, 0.001), probe + crawl, 1e-12);

  // Eq. 5 equals Eq. 4 / Eq. 3.
  EXPECT_NEAR(model.Speedup(0.001),
              model.LinearScanSeconds(v) / model.OctopusSeconds(v, 0.001),
              1e-9);

  // Eq. 6: at the break-even selectivity the speedup is exactly 1.
  const double be = model.BreakEvenSelectivity();
  EXPECT_NEAR(model.Speedup(be), 1.0, 1e-9);
  EXPECT_GT(model.Speedup(be * 0.5), 1.0);
  EXPECT_LT(model.Speedup(be * 2.0), 1.0);
}

TEST(CostModelTest, PaperScaleSanity) {
  // Paper constants: CS = 6.6e-9, CR = 2.7e-8, largest dataset S = 0.03,
  // M = 14.51.
  const CostConstants k{.cs_seconds = 6.6e-9, .cr_seconds = 2.7e-8};
  const CostModel model(0.03, 14.51, k);
  // Break-even selectivity (Eq. 6) reproduces the paper's 1.61% exactly.
  EXPECT_NEAR(model.BreakEvenSelectivity(), 0.0161, 0.0005);
  // Eq. 5 at selectivity 0.01% evaluates to ~27.8 with these inputs. The
  // paper quotes 11.1 for this datapoint; the printed equation and the
  // printed constants are not mutually consistent there (S would need to
  // be ~0.084). We implement the equation as printed; see EXPERIMENTS.md.
  EXPECT_NEAR(model.Speedup(0.0001), 27.8, 0.5);
  // Speedup must decrease with selectivity (Fig. 7(h) trend).
  EXPECT_GT(model.Speedup(0.0001), model.Speedup(0.001));
  EXPECT_GT(model.Speedup(0.001), model.Speedup(0.002));
}

TEST(CostModelTest, CalibrationProducesPlausibleConstants) {
  const TetraMesh mesh = MakeBox(12);
  const CostConstants k = CalibrateCostConstants(mesh, 2);
  EXPECT_GT(k.cs_seconds, 0.0);
  EXPECT_GT(k.cp_seconds, 0.0);
  EXPECT_GT(k.cr_seconds, 0.0);
  // Random adjacency access is slower than a sequential scan.
  EXPECT_GT(k.cr_seconds, k.cs_seconds * 0.5);
  EXPECT_LT(k.cr_seconds, k.cs_seconds * 200.0);
  // The probe gather costs at least as much per vertex as a sequential
  // scan, but not absurdly more.
  EXPECT_GT(k.cp_seconds, k.cs_seconds * 0.5);
  EXPECT_LT(k.cp_seconds, k.cs_seconds * 50.0);
}

TEST(CostModelTest, PaperFormIsCpEqualsCs) {
  // Omitting CP must reduce the refined model to the paper's equations.
  const CostConstants paper{.cs_seconds = 6.6e-9, .cr_seconds = 2.7e-8};
  const CostModel model(0.05, 14.0, paper);
  EXPECT_DOUBLE_EQ(model.constants().cp_seconds, 6.6e-9);
  CostConstants refined = paper;
  refined.cp_seconds = 2.0 * paper.cs_seconds;
  const CostModel refined_model(0.05, 14.0, refined);
  EXPECT_LT(refined_model.Speedup(0.001), model.Speedup(0.001));
  EXPECT_LT(refined_model.BreakEvenSelectivity(),
            model.BreakEvenSelectivity());
}

TEST(CostModelTest, FromMeshPullsDatasetParameters) {
  const TetraMesh mesh = MakeBox(6);
  const MeshStats stats = ComputeMeshStats(mesh);
  const CostConstants k{.cs_seconds = 1e-8, .cr_seconds = 4e-8};
  const CostModel model = CostModel::FromMesh(mesh, k);
  EXPECT_DOUBLE_EQ(model.surface_to_volume(), stats.surface_to_volume);
  EXPECT_DOUBLE_EQ(model.mesh_degree(), stats.mesh_degree);
}

TEST(CostModelTest, SelectivityEstimateFeedsModel) {
  const TetraMesh mesh = MakeBox(10);
  Histogram3D h(16);
  h.Build(mesh.positions());
  const AABB q(Vec3(0.25f, 0.25f, 0.25f), Vec3(0.75f, 0.75f, 0.75f));
  const double est = EstimateQuerySelectivity(h, q);
  const double exact =
      static_cast<double>(BruteForceRangeQuery(mesh, q).size()) /
      static_cast<double>(mesh.num_vertices());
  EXPECT_NEAR(est, exact, 0.05);
}

// ---------- Hilbert layout ----------

TEST(HilbertLayoutTest, PermutationIsBijective) {
  const TetraMesh mesh = MakeBox(6);
  const VertexPermutation perm = ComputeHilbertOrder(mesh);
  ASSERT_EQ(perm.size(), mesh.num_vertices());
  std::vector<bool> seen(perm.size(), false);
  for (VertexId old_id : perm.new_to_old) {
    ASSERT_LT(old_id, perm.size());
    ASSERT_FALSE(seen[old_id]);
    seen[old_id] = true;
  }
  for (size_t v = 0; v < perm.size(); ++v) {
    EXPECT_EQ(perm.old_to_new[perm.new_to_old[v]], v);
  }
}

TEST(HilbertLayoutTest, PermutedMeshIsIsomorphic) {
  const TetraMesh mesh = MakeBox(5);
  const VertexPermutation perm = ComputeHilbertOrder(mesh);
  const TetraMesh permuted = ApplyPermutation(mesh, perm);
  EXPECT_EQ(permuted.num_vertices(), mesh.num_vertices());
  EXPECT_EQ(permuted.num_tetrahedra(), mesh.num_tetrahedra());
  EXPECT_EQ(permuted.num_edges(), mesh.num_edges());
  // Positions moved with their ids.
  for (VertexId new_id = 0; new_id < permuted.num_vertices(); ++new_id) {
    EXPECT_EQ(permuted.position(new_id),
              mesh.position(perm.new_to_old[new_id]));
  }
  // Adjacency is preserved under relabeling.
  for (VertexId old_id = 0; old_id < mesh.num_vertices(); ++old_id) {
    std::vector<VertexId> expected;
    for (VertexId n : mesh.neighbors(old_id)) {
      expected.push_back(perm.old_to_new[n]);
    }
    std::sort(expected.begin(), expected.end());
    const auto got = permuted.neighbors(perm.old_to_new[old_id]);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), expected.begin(),
                           expected.end()));
  }
}

TEST(HilbertLayoutTest, QueryResultsMapThroughPermutation) {
  const TetraMesh mesh = MakeBox(7);
  const VertexPermutation perm = ComputeHilbertOrder(mesh);
  const TetraMesh permuted = ApplyPermutation(mesh, perm);
  const AABB q(Vec3(0.2f, 0.1f, 0.3f), Vec3(0.8f, 0.5f, 0.7f));
  const auto original = BruteForceRangeQuery(mesh, q);
  auto mapped = BruteForceRangeQuery(permuted, q);
  std::vector<VertexId> expected;
  for (VertexId v : original) expected.push_back(perm.old_to_new[v]);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(mapped, expected);
}

TEST(HilbertLayoutTest, ImprovesNeighborLocality) {
  // The point of the optimization: after Hilbert ordering, most graph
  // neighbors live at nearby ids (=> nearby memory in the SoA layout), so
  // the crawl's "random" accesses hit cache. The right metric is the
  // fraction of neighbor pairs within a small id window — the *mean* gap
  // is dominated by the curve's rare long jumps and can even grow.
  const TetraMesh mesh = MakeNeuroMesh(0, 0.03).MoveValue();
  auto near_fraction = [](const TetraMesh& m, double window) {
    size_t near = 0;
    size_t count = 0;
    for (VertexId v = 0; v < m.num_vertices(); ++v) {
      for (VertexId n : m.neighbors(v)) {
        if (std::abs(static_cast<double>(n) - static_cast<double>(v)) <=
            window) {
          ++near;
        }
        ++count;
      }
    }
    return static_cast<double>(near) / static_cast<double>(count);
  };
  const TetraMesh permuted =
      ApplyPermutation(mesh, ComputeHilbertOrder(mesh));
  EXPECT_GT(near_fraction(permuted, 8), near_fraction(mesh, 8));
  EXPECT_GT(near_fraction(permuted, 32), near_fraction(mesh, 32));
}

}  // namespace
}  // namespace octopus
