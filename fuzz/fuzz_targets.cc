// Copyright 2026 The OCTOPUS Reproduction Authors
#include "fuzz/fuzz_targets.h"

#include <cassert>
#include <span>
#include <string>
#include <vector>

#include "obs/http_endpoint.h"
#include "server/protocol.h"

namespace octopus::fuzz {
namespace {

using server::Buffer;
using server::FrameHeader;
using server::FrameType;

/// Runs every parser that could plausibly consume `payload` for
/// `type`. Parsers must reject garbage with a Status — never read out
/// of bounds (ASan's job to disprove) and never crash.
void ParsePayload(FrameType type, std::span<const uint8_t> payload) {
  switch (type) {
    case FrameType::kHello: {
      server::HelloFrame hello;
      (void)server::ParseHello(payload, &hello);
      break;
    }
    case FrameType::kWelcome: {
      server::WelcomeFrame welcome;
      (void)server::ParseWelcome(payload, &welcome);
      break;
    }
    case FrameType::kQueryBatch: {
      uint64_t request_id = 0;
      std::vector<AABB> boxes;
      uint64_t epoch = 0;
      uint64_t span_id = 0;
      const Status st = server::ParseQueryBatch(payload, &request_id,
                                                &boxes, &epoch, &span_id);
      if (st.ok()) {
        // The parser's count word and the boxes it returns must agree;
        // a mismatch would let a peer lie about its payload size.
        assert(payload.size() == server::kQueryBatchFixedBytes +
                                     boxes.size() * server::kQueryBoxBytes);
      }
      break;
    }
    case FrameType::kResult: {
      uint64_t request_id = 0;
      server::BatchStatsWire stats;
      std::vector<std::vector<VertexId>> per_query;
      const Status st =
          server::ParseResult(payload, &request_id, &stats, &per_query);
      if (st.ok()) {
        assert(payload.size() == server::ResultPayloadBytes(per_query));
      }
      break;
    }
    case FrameType::kStats: {
      server::ServerStatsWire stats;
      (void)server::ParseStats(payload, &stats);
      break;
    }
    case FrameType::kError: {
      server::ErrorFrame error;
      (void)server::ParseError(payload, &error);
      break;
    }
    case FrameType::kStep: {
      server::StepFrame step;
      const Status st = server::ParseStep(payload, &step);
      // The inline-execution cap is enforced by the parser itself: an
      // accepted STEP can never carry an unbounded amount of work.
      if (st.ok()) assert(step.steps <= server::kMaxStepsPerFrame);
      break;
    }
    case FrameType::kEpochInfo: {
      server::EpochInfoWire info;
      (void)server::ParseEpochInfo(payload, &info);
      break;
    }
    case FrameType::kPinEpoch:
    case FrameType::kUnpinEpoch: {
      server::PinEpochFrame pin;
      (void)server::ParsePinEpoch(payload, &pin);
      break;
    }
    case FrameType::kTraceDump: {
      server::TraceDumpWire dump;
      const Status st = server::ParseTraceDump(payload, &dump);
      if (st.ok()) {
        assert(payload.size() ==
               server::kTraceDumpFixedBytes +
                   dump.records.size() * server::kTraceRecordBytes);
      }
      break;
    }
    case FrameType::kStatsRequest:
    case FrameType::kTraceDumpRequest:
      // Empty-payload verbs; nothing to parse.
      break;
  }
}

}  // namespace

void FuzzProtocolFrame(const uint8_t* data, size_t size) {
  const std::span<const uint8_t> bytes(data, size);
  if (size >= server::kFrameHeaderBytes) {
    const Result<FrameHeader> header = server::ParseFrameHeader(bytes);
    if (header.ok()) {
      // Feed the declared frame type whatever bytes follow the header
      // — including payloads that disagree with `payload_bytes`, which
      // is exactly what a broken peer would send.
      ParsePayload(header.Value().type,
                   bytes.subspan(server::kFrameHeaderBytes));
    }
  }
  // Truncation sweep: every prefix must fail cleanly too (the framing
  // layer sees partial frames on every short read). Capped so huge
  // inputs don't turn one exec quadratic.
  const size_t cuts = size < 64 ? size : 64;
  for (size_t cut = 0; cut < cuts; ++cut) {
    if (cut >= server::kFrameHeaderBytes) {
      (void)server::ParseFrameHeader(bytes.first(cut));
    }
    ParsePayload(FrameType::kQueryBatch, bytes.first(cut));
    ParsePayload(FrameType::kResult, bytes.first(cut));
    ParsePayload(FrameType::kTraceDump, bytes.first(cut));
  }
}

void FuzzHttpRequest(const uint8_t* data, size_t size) {
  const std::string head(reinterpret_cast<const char*>(data), size);
  bool handled = false;
  const obs::HttpTextEndpoint::Response response =
      obs::HttpTextEndpoint::RouteRequestHead(
          head, [&handled](const std::string& path) {
            handled = true;
            // The router must strip the query string before the
            // handler sees the path — the live server's routes match
            // on exact strings.
            assert(path.find('?') == std::string::npos);
            if (path == "/metrics" || path == "/healthz") {
              obs::HttpTextEndpoint::Response ok;
              ok.body = "ok\n";
              return ok;
            }
            return obs::HttpTextEndpoint::NotFound();
          });
  // Routed requests answer what the handler said; unrouted ones must
  // be a client-error status, never a silent 200.
  assert(handled || response.status == 400 || response.status == 405);
  (void)response;
}

}  // namespace octopus::fuzz
