// Copyright 2026 The OCTOPUS Reproduction Authors
// libFuzzer harness over the introspection endpoint's request parsing.
// Build (clang only):
//   cmake -B build-fuzz -DOCTOPUS_BUILD_FUZZERS=ON \
//         -DCMAKE_CXX_COMPILER=clang++
//   ./build-fuzz/fuzz_http fuzz/corpus/http -max_total_time=60
#include <cstddef>
#include <cstdint>

#include "fuzz/fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  octopus::fuzz::FuzzHttpRequest(data, size);
  return 0;
}
