// Copyright 2026 The OCTOPUS Reproduction Authors
// Plain-main corpus replay: runs every file under the given corpus
// directories through the matching fuzz target, no libFuzzer needed.
// This is what the `fuzz_corpus_replay` CTest entry executes, so the
// checked-in seeds (and any reproducer dropped in by a crash) are
// regression-tested by every build, with every compiler.
//
// Usage: fuzz_replay <corpus-root>...
// Each root must contain `protocol/` and/or `http/` subdirectories;
// files are routed to the target matching their subdirectory name.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/fuzz_targets.h"

namespace {

bool ReadFile(const std::filesystem::path& path,
              std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

int ReplayDir(const std::filesystem::path& dir,
              void (*target)(const uint8_t*, size_t), const char* name) {
  if (!std::filesystem::is_directory(dir)) return 0;
  int replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::vector<uint8_t> bytes;
    if (!ReadFile(entry.path(), &bytes)) {
      std::fprintf(stderr, "fuzz_replay: cannot read %s\n",
                   entry.path().c_str());
      return -1;
    }
    target(bytes.data(), bytes.size());
    ++replayed;
  }
  std::fprintf(stderr, "fuzz_replay: %s: %d inputs ok\n", name, replayed);
  return replayed;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>...\n", argv[0]);
    return 2;
  }
  int total = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path root(argv[i]);
    const int protocol = ReplayDir(root / "protocol",
                                   octopus::fuzz::FuzzProtocolFrame,
                                   "protocol");
    const int http =
        ReplayDir(root / "http", octopus::fuzz::FuzzHttpRequest, "http");
    if (protocol < 0 || http < 0) return 1;
    total += protocol + http;
  }
  if (total == 0) {
    std::fprintf(stderr,
                 "fuzz_replay: no corpus files found (expected "
                 "protocol/ or http/ under the given roots)\n");
    return 1;
  }
  return 0;
}
