// Copyright 2026 The OCTOPUS Reproduction Authors
// The fuzz target bodies, shared by three drivers so they exercise the
// exact same code:
//   * fuzz_protocol.cc / fuzz_http.cc — libFuzzer harnesses (clang
//     only, -DOCTOPUS_BUILD_FUZZERS=ON; see docs/DEVELOPING.md);
//   * replay_driver.cc — a plain main() that replays fuzz/corpus/
//     through the same entry points, built with every compiler and run
//     as the `fuzz_corpus_replay` CTest entry, so the checked-in
//     corpus keeps passing even where libFuzzer does not exist.
//
// Targets must never crash, hang, or trip a sanitizer on ANY input;
// they may (and usually do) return parse errors. Invariant checks that
// hold for all inputs are asserted here so the fuzzer, not just the
// sanitizers, can falsify them.
#ifndef OCTOPUS_FUZZ_FUZZ_TARGETS_H_
#define OCTOPUS_FUZZ_FUZZ_TARGETS_H_

#include <cstddef>
#include <cstdint>

namespace octopus::fuzz {

/// OCTP frame decoding: feeds `data` through `ParseFrameHeader` and —
/// when a plausible header is present — every payload parser the frame
/// type selects, plus a truncation sweep mirroring the protocol tests.
void FuzzProtocolFrame(const uint8_t* data, size_t size);

/// HTTP introspection-endpoint request parsing: feeds `data` as a
/// request head through `HttpTextEndpoint::RouteRequestHead` with a
/// handler covering routed and unrouted paths.
void FuzzHttpRequest(const uint8_t* data, size_t size);

}  // namespace octopus::fuzz

#endif  // OCTOPUS_FUZZ_FUZZ_TARGETS_H_
