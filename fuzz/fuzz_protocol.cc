// Copyright 2026 The OCTOPUS Reproduction Authors
// libFuzzer harness over OCTP frame decoding. Build (clang only):
//   cmake -B build-fuzz -DOCTOPUS_BUILD_FUZZERS=ON \
//         -DCMAKE_CXX_COMPILER=clang++
//   ./build-fuzz/fuzz_protocol fuzz/corpus/protocol -max_total_time=60
#include <cstddef>
#include <cstdint>

#include "fuzz/fuzz_targets.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  octopus::fuzz::FuzzProtocolFrame(data, size);
  return 0;
}
