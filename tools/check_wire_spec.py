#!/usr/bin/env python3
# Copyright 2026 The OCTOPUS Reproduction Authors
"""Cross-checks docs/PROTOCOL.md against src/server/protocol.h.

The wire layout exists in three places: the normative byte tables in
docs/PROTOCOL.md, the named constants + static_asserts in protocol.h
(the wire-layout lint), and the field-by-field encoders in protocol.cc.
The static_asserts tie constants to struct fields at compile time; this
script ties the constants to the document, so a layout change that
forgets either side fails CI instead of shipping a wire break that only
a peer discovers.

Checks performed:
  * every `### FRAME (type N), payload ... bytes` heading matches the
    header's payload-size constants and FrameType enum values;
  * every offset/type table is internally consistent (each row's offset
    is the previous offset plus the previous field's width) and its
    fixed-prefix total matches the matching constant;
  * the batch-stats block and trace-record tables sum to
    kBatchStatsBytes / kTraceRecordBytes;
  * envelope facts: 8-byte frame header, 16 MiB payload cap, protocol
    magic and version, the 1024-step cap.

Runs under plain python3 (no third-party imports) as the
`check_wire_spec` CTest entry and as a CI job.
"""

import argparse
import pathlib
import re
import sys

# Wire widths of the scalar type names used in PROTOCOL.md tables.
TYPE_SIZES = {
    "u8": 1,
    "u16": 2,
    "u32": 4,
    "u64": 8,
    "i64": 8,
    "f32": 4,
}

# Heading frame name -> the header constants its payload expression must
# lead with, in order. Trailing literal numbers (e.g. the per-query
# `4 + 4·k` words in RESULT) are written as ints.
PAYLOAD_EXPECTATIONS = {
    "HELLO": ["kHelloPayloadBytes"],
    "WELCOME": ["kWelcomePayloadBytes"],
    "QUERY_BATCH": ["kQueryBatchFixedBytes", "kQueryBoxBytes"],
    "RESULT": ["kResultFixedBytes", "kBatchStatsBytes", 4, 4],
    "STATS_REQUEST": [0],
    "STATS": ["kStatsPayloadBytes"],
    "ERROR": ["kErrorFixedBytes"],
    "STEP": ["kStepPayloadBytes"],
    "EPOCH_INFO": ["kEpochInfoPayloadBytes"],
    "PIN_EPOCH": ["kPinEpochPayloadBytes"],
    "UNPIN_EPOCH": ["kPinEpochPayloadBytes"],
    "TRACE_DUMP_REQUEST": [0],
    "TRACE_DUMP": ["kTraceDumpFixedBytes", "kTraceRecordBytes"],
}

# Frame name -> the constant its table's fixed prefix must total.
# Frames without an offset table (STATS, the empty verbs) are absent.
TABLE_TOTALS = {
    "HELLO": "kHelloPayloadBytes",
    "WELCOME": "kWelcomePayloadBytes",
    "QUERY_BATCH": "kQueryBatchFixedBytes",
    "RESULT": "kResultFixedBytes",
    "ERROR": "kErrorFixedBytes",
    "STEP": "kStepPayloadBytes",
    "EPOCH_INFO": "kEpochInfoPayloadBytes",
    "PIN_EPOCH": "kPinEpochPayloadBytes",
    "TRACE_DUMP": "kTraceDumpFixedBytes",
}


def parse_header_constants(text):
    """Parses `inline constexpr <type> kName = <expr>;` declarations.

    Expressions may reference earlier constants (e.g.
    kResultMetaBytesBeforeCounts); evaluation is a tiny arithmetic eval
    over already-parsed names.
    """
    consts = {}
    pattern = re.compile(
        r"inline\s+constexpr\s+\w+\s+(k\w+)\s*=\s*([^;]+);")
    for name, expr in pattern.findall(text):
        expr = re.sub(r"(\d)[uUlL]+\b", r"\1", expr)  # strip int suffixes
        expr = re.sub(r"/\*.*?\*/", "", expr, flags=re.S)
        try:
            consts[name] = int(eval(expr, {"__builtins__": {}}, consts))
        except Exception:
            pass  # non-arithmetic constexprs are not wire constants
    return consts


def parse_frame_type_enum(text):
    """Returns {WIRE_NAME: value} from the FrameType enum."""
    match = re.search(r"enum class FrameType[^{]*\{(.*?)\};", text, re.S)
    if not match:
        return {}
    values = {}
    for name, value in re.findall(r"k(\w+)\s*=\s*(\d+)", match.group(1)):
        # kQueryBatch -> QUERY_BATCH
        wire = re.sub(r"(?<!^)(?=[A-Z])", "_", name).upper()
        values[wire] = int(value)
    return values


def parse_md_tables(lines):
    """Yields (start_line_index, rows) for each markdown table."""
    i = 0
    while i < len(lines):
        if lines[i].lstrip().startswith("|"):
            start = i
            rows = []
            while i < len(lines) and lines[i].lstrip().startswith("|"):
                cells = [c.strip() for c in lines[i].strip().strip("|").split("|")]
                if cells and not set(cells[0]) <= {"-", " ", ""}:
                    rows.append(cells)
                i += 1
            yield start, rows
        else:
            i += 1


def fixed_prefix_total(rows, errors, context):
    """Checks offset continuity of an offset/type table; returns the
    byte total of the leading fixed-width rows (stops at the first
    variable-width or placeholder row)."""
    total = 0
    for cells in rows[1:]:  # rows[0] is the header row
        offset_text, type_text = cells[0], cells[1] if len(cells) > 1 else ""
        if not offset_text.isdigit():
            continue
        offset = int(offset_text)
        base_type = type_text.split("×")[0].split("x")[0].strip("` ")
        if offset != total:
            errors.append(
                f"{context}: row at offset {offset} expected offset {total} "
                f"(field widths above it sum to {total})")
            total = offset  # resynchronize so one slip reports once
        if base_type in TYPE_SIZES and "×" not in type_text \
                and "per query" not in " ".join(cells).lower():
            total += TYPE_SIZES[base_type]
        else:
            break  # variable-width tail (boxes, message, records, stats)
    return total


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    root = pathlib.Path(__file__).resolve().parent.parent
    parser.add_argument("--spec", default=str(root / "docs" / "PROTOCOL.md"))
    parser.add_argument("--header",
                        default=str(root / "src" / "server" / "protocol.h"))
    args = parser.parse_args()

    spec = pathlib.Path(args.spec).read_text(encoding="utf-8")
    header = pathlib.Path(args.header).read_text(encoding="utf-8")
    consts = parse_header_constants(header)
    enum = parse_frame_type_enum(header)
    lines = spec.splitlines()
    errors = []
    checked = 0

    def expect(name, doc_value, context):
        nonlocal checked
        checked += 1
        if name not in consts:
            errors.append(f"{context}: constant {name} not found in protocol.h")
        elif consts[name] != doc_value:
            errors.append(f"{context}: PROTOCOL.md says {doc_value}, "
                          f"protocol.h has {name} = {consts[name]}")

    # --- Envelope facts ---------------------------------------------
    match = re.search(r"fixed (\d+)-byte header", spec)
    if match:
        expect("kFrameHeaderBytes", int(match.group(1)), "frame envelope")
    else:
        errors.append("frame envelope: 'fixed N-byte header' sentence missing")

    match = re.search(r"\*\*(\d+) MiB\*\*\s*\(`kMaxFramePayloadBytes`\)", spec)
    if match:
        expect("kMaxFramePayloadBytes", int(match.group(1)) << 20,
               "payload cap")
    else:
        errors.append("payload cap: '**N MiB** (`kMaxFramePayloadBytes`)' missing")

    match = re.search(r"wire protocol \(version (\d+)\)", spec)
    if match:
        expect("kProtocolVersion", int(match.group(1)), "title version")
    else:
        errors.append("title: 'wire protocol (version N)' missing")

    match = re.search(r"`0x([0-9A-Fa-f]{8})`", spec)
    if match:
        expect("kProtocolMagic", int(match.group(1), 16), "protocol magic")
    else:
        errors.append("HELLO: magic constant `0x........` missing")

    match = re.search(r"must not exceed \*\*(\d+)\*\*\s*\(`kMaxStepsPerFrame`\)",
                      spec)
    if match:
        expect("kMaxStepsPerFrame", int(match.group(1)), "STEP cap")
    else:
        errors.append("STEP: 'must not exceed **N** (`kMaxStepsPerFrame`)' missing")

    # --- Frame-type numbering ---------------------------------------
    for number, name in re.findall(
            r"^\|\s*(\d+)\s*\|\s*([A-Z_]+)\s*\|\s*(?:client|server)", spec,
            re.M):
        checked += 1
        if name not in enum:
            errors.append(f"frame table: {name} missing from FrameType enum")
        elif enum[name] != int(number):
            errors.append(f"frame table: {name} is type {number} in the doc "
                          f"but {enum[name]} in FrameType")

    # --- Payload headings -------------------------------------------
    heading_re = re.compile(
        r"^### ([A-Z_]+) \(type (\d+)\)(?: / ([A-Z_]+) \(type (\d+)\))?"
        r", payload ([^\n]*?) bytes")
    headings = []  # (line_index, primary_name)
    for i, line in enumerate(lines):
        match = heading_re.match(line)
        if not match:
            continue
        name, type_a, name_b, type_b, size_expr = match.groups()
        headings.append((i, name))
        for frame, value in ((name, type_a), (name_b, type_b)):
            if frame is None:
                continue
            checked += 1
            if enum.get(frame) != int(value):
                errors.append(f"{frame} heading: type {value} in the doc, "
                              f"{enum.get(frame)} in FrameType")
            expected = PAYLOAD_EXPECTATIONS.get(frame)
            if expected is None:
                errors.append(f"{frame}: no payload expectation registered — "
                              "add it to PAYLOAD_EXPECTATIONS")
                continue
            numbers = [int(n) for n in re.findall(r"\d+", size_expr)]
            if len(numbers) < len(expected):
                errors.append(f"{frame} heading: payload expression "
                              f"'{size_expr}' has {len(numbers)} numbers, "
                              f"expected {len(expected)}")
                continue
            for want, got in zip(expected, numbers):
                value_want = want if isinstance(want, int) else consts.get(want)
                label = want if isinstance(want, str) else f"literal {want}"
                checked += 1
                if value_want != got:
                    errors.append(f"{frame} heading: payload term {got} does "
                                  f"not match {label} = {value_want}")

    missing = set(PAYLOAD_EXPECTATIONS) - {h[1] for h in headings} - {
        name_b for i, _ in enumerate(headings) for name_b in ()}
    # UNPIN_EPOCH rides PIN_EPOCH's heading; drop secondary names found
    # via the combined heading form.
    for line in lines:
        match = heading_re.match(line)
        if match and match.group(3):
            missing.discard(match.group(3))
    if missing:
        errors.append(f"PROTOCOL.md is missing payload headings for: "
                      f"{', '.join(sorted(missing))}")

    # --- Offset tables ----------------------------------------------
    tables = list(parse_md_tables(lines))

    def table_after(line_index):
        for start, rows in tables:
            if start > line_index and rows and rows[0][0].lower() == "offset":
                return start, rows
        return None, None

    # The envelope's own table precedes every frame heading.
    first_heading = headings[0][0] if headings else len(lines)
    for start, rows in tables:
        if start < first_heading and rows[0][0].lower() == "offset":
            total = fixed_prefix_total(rows, errors, "frame-envelope table")
            expect("kFrameHeaderBytes", total, "frame-envelope table total")
            break

    for line_index, name in headings:
        want = TABLE_TOTALS.get(name)
        if want is None:
            continue
        next_heading = min((i for i, _ in headings if i > line_index),
                           default=len(lines))
        start, rows = table_after(line_index)
        if rows is None or start >= next_heading:
            errors.append(f"{name}: offset table missing")
            continue
        total = fixed_prefix_total(rows, errors, f"{name} table")
        expect(want, total, f"{name} table total")
        if name == "RESULT":
            # The per-query row's offset doubles as fixed + stats size.
            for cells in rows[1:]:
                if "per query" in " ".join(cells).lower():
                    expect_value = consts.get("kResultFixedBytes", 0) + \
                        consts.get("kBatchStatsBytes", 0)
                    checked += 1
                    if int(cells[0]) != expect_value:
                        errors.append(
                            f"RESULT table: per-query data starts at "
                            f"{cells[0]}, but kResultFixedBytes + "
                            f"kBatchStatsBytes = {expect_value}")

    # --- Embedded blocks (batch stats, trace record) -----------------
    for marker, const in ((r"\*\*Batch-stats block\*\* \((\d+) bytes\)",
                           "kBatchStatsBytes"),
                          (r"\*\*Trace record\*\* \((\d+) bytes\)",
                           "kTraceRecordBytes")):
        found = False
        for i, line in enumerate(lines):
            match = re.search(marker, line)
            if not match:
                continue
            found = True
            expect(const, int(match.group(1)), f"{const} prose size")
            start, rows = table_after(i)
            if rows is None:
                errors.append(f"{const}: block table missing")
                break
            total = fixed_prefix_total(rows, errors, f"{const} table")
            expect(const, total, f"{const} table total")
            break
        if not found:
            errors.append(f"{const}: block marker missing from PROTOCOL.md")

    # --- STATS field count -------------------------------------------
    match = re.search(r"payload (\d+) bytes — eighteen u64", spec)
    if match:
        checked += 1
        if int(match.group(1)) != 18 * 8:
            errors.append("STATS: 'eighteen u64' disagrees with the payload "
                          f"size {match.group(1)}")
    else:
        errors.append("STATS: 'payload N bytes — eighteen u64' sentence missing")

    if errors:
        for error in errors:
            print(f"FAIL {error}")
        print(f"check_wire_spec: {len(errors)} mismatch(es) "
              f"({checked} checks ran)")
        return 1
    print(f"check_wire_spec: OK ({checked} checks, "
          f"{len(consts)} header constants, {len(enum)} frame types)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
