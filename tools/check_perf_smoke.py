#!/usr/bin/env python3
"""Perf smoke over bench_dynamic's summary record.

Reads BENCH_dynamic.json and enforces the lease-economy guarantees:

  * `access_over_distinct` — priced page accesses per distinct page
    touched. Deterministic (pure counters), so the bound is tight: the
    lease layer must keep a batch's accesses within 2x of the distinct
    pages it crawls. A regression here means pages are being re-priced
    per read again (the pin tax is back).
  * `paged_over_in_memory_warm` — warm-pool paged wall clock over
    in-memory wall clock. Wall-clock on a shared CI runner is noisy, so
    the bound is deliberately loose; it exists to catch the paged path
    falling off a cliff (an accidental per-read pin round trip shows up
    as >3x immediately), not to police single-digit percentages.

When also given BENCH_server.json, additionally enforces:

  * `tracing_overhead` — warm paged loopback wall clock with the
    flight-recorder ring on over the same run with it off (best-of-3
    interleaved single-client runs, from bench_server's server_summary
    record). Tracing is
    one 136-byte record append per request behind a predictable branch;
    it must stay within 5% of free or it is not a flight recorder any
    more.

Usage: check_perf_smoke.py [BENCH_dynamic.json] [BENCH_server.json]
"""

import json
import sys

MAX_ACCESS_OVER_DISTINCT = 2.0
MAX_PAGED_OVER_IN_MEMORY = 3.0
MAX_TRACING_OVERHEAD = 1.05


def check_server(path: str, failures: list) -> None:
    with open(path) as f:
        records = json.load(f)
    summaries = [r for r in records if r.get("name") == "server_summary"]
    if len(summaries) != 1:
        failures.append(f"expected one server_summary record in {path}, "
                        f"found {len(summaries)}")
        return
    overhead = summaries[0].get("tracing_overhead")
    print(f"  tracing_overhead          = "
          f"{overhead if overhead is None else format(overhead, '.3f')} "
          f"(bound {MAX_TRACING_OVERHEAD})")
    if overhead is None or overhead > MAX_TRACING_OVERHEAD:
        failures.append(
            f"tracing_overhead = {overhead} (bound {MAX_TRACING_OVERHEAD}):"
            f" the flight-recorder ring is no longer effectively free")


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_dynamic.json"
    server_path = sys.argv[2] if len(sys.argv) > 2 else None
    with open(path) as f:
        records = json.load(f)
    summaries = [r for r in records if r.get("name") == "dynamic_summary"]
    if len(summaries) != 1:
        print(f"FAIL: expected one dynamic_summary record in {path}, "
              f"found {len(summaries)}")
        return 1
    s = summaries[0]

    failures = []
    access = s.get("access_over_distinct")
    if access is None or access > MAX_ACCESS_OVER_DISTINCT:
        failures.append(
            f"access_over_distinct = {access} "
            f"(bound {MAX_ACCESS_OVER_DISTINCT}): page accesses are no "
            f"longer tracking distinct pages touched")
    slowdown = s.get("paged_over_in_memory_warm")
    if slowdown is None or slowdown > MAX_PAGED_OVER_IN_MEMORY:
        failures.append(
            f"paged_over_in_memory_warm = {slowdown} "
            f"(bound {MAX_PAGED_OVER_IN_MEMORY}): warm-pool paged "
            f"execution fell off a cliff vs in-memory")

    def fmt(v):
        return f"{v:.3f}" if isinstance(v, (int, float)) else str(v)

    print(f"perf smoke ({path}):")
    print(f"  access_over_distinct      = {fmt(access)} "
          f"(bound {MAX_ACCESS_OVER_DISTINCT})")
    print(f"  paged_over_in_memory_warm = {fmt(slowdown)} "
          f"(bound {MAX_PAGED_OVER_IN_MEMORY})")
    if server_path is not None:
        check_server(server_path, failures)
    for msg in failures:
        print(f"FAIL: {msg}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
