#!/usr/bin/env python3
# Copyright 2026 The OCTOPUS Reproduction Authors
"""Generates the checked-in fuzz seed corpus under fuzz/corpus/.

The seeds are deterministic, hand-shaped OCTP frames and HTTP request
heads: one well-formed example of every frame type, the boundary and
malformed cases the protocol tests already exercise (count lies,
over-cap steps, oversized payload announcements, truncations), and the
introspection endpoint's routed/unrouted/malformed request lines. They
give libFuzzer a structured starting population and give the
`fuzz_corpus_replay` CTest entry a fixed regression set that runs with
every compiler, no libFuzzer required.

Re-run after any wire-layout change and commit the result:
    python3 tools/gen_fuzz_corpus.py
"""

import pathlib
import struct
import sys

MAGIC = 0x4F435450
VERSION = 6

HELLO = 1
WELCOME = 2
QUERY_BATCH = 3
RESULT = 4
STATS_REQUEST = 5
STATS = 6
ERROR = 7
STEP = 8
EPOCH_INFO = 9
PIN_EPOCH = 10
UNPIN_EPOCH = 11
TRACE_DUMP_REQUEST = 12
TRACE_DUMP = 13


def frame(frame_type, payload=b"", *, announce=None, flags=0, reserved=0):
    """Header + payload. `announce` overrides the length prefix so seeds
    can lie about their payload size, exactly like a broken peer."""
    length = len(payload) if announce is None else announce
    return struct.pack("<IBBH", length, frame_type, flags, reserved) + payload


def hello(magic=MAGIC, version=VERSION, flags=0):
    return frame(HELLO, struct.pack("<IHH", magic, version, flags))


def query_batch(request_id, boxes, epoch=0, span_id=0, count=None):
    count = len(boxes) if count is None else count
    payload = struct.pack("<QIIQQ", request_id, count, 0, epoch, span_id)
    for box in boxes:
        payload += struct.pack("<6f", *box)
    return frame(QUERY_BATCH, payload)


def batch_stats(trace_id=7):
    return struct.pack("<4q", 1000, 2000, 3000, 40) + \
        struct.pack("<12Q", 2, 64, 2, 640, 1280, 99, 12, 3, 1, 8, 4, 4) + \
        struct.pack("<IIQII", 2, 1, 5, 4, 0) + struct.pack("<Q", trace_id)


def result(request_id, per_query):
    payload = struct.pack("<QII", request_id, len(per_query), 0)
    payload += batch_stats()
    for ids in per_query:
        payload += struct.pack("<I", len(ids))
        payload += struct.pack(f"<{len(ids)}I", *ids)
    return frame(RESULT, payload)


def trace_record(trace_id):
    return struct.pack("<4Q", trace_id, 11, 42, 5) + \
        struct.pack("<4I", 4, 1, 2, 1) + \
        struct.pack("<8q", 1, 2, 3, 4, 5, 6, 7, 28) + \
        struct.pack("<3Q", 12, 8, 99)


def protocol_seeds():
    box = (0.0, 0.0, 0.0, 1.0, 1.0, 1.0)
    seeds = {
        "hello_v6": hello(),
        "hello_bad_magic": hello(magic=0x12345678),
        "hello_old_version": hello(version=5),
        "hello_nonzero_flags": hello(flags=1),
        "welcome": frame(WELCOME,
                         struct.pack("<HBBQII", VERSION, 1, 1, 50000, 4096,
                                     512)),
        "query_batch_two": query_batch(42, [box, box]),
        "query_batch_empty": query_batch(43, []),
        "query_batch_historic": query_batch(44, [box], epoch=5,
                                            span_id=0xABCDEF),
        "query_batch_count_lie": query_batch(45, [box], count=3),
        "result_two_queries": result(42, [[1, 2, 3], []]),
        "stats_request": frame(STATS_REQUEST),
        "stats": frame(STATS, struct.pack("<18Q", *range(18))),
        "error_epoch_gone": frame(ERROR,
                                  struct.pack("<HHQI", 10, 0, 42, 4) +
                                  b"gone"),
        "error_len_lie": frame(ERROR,
                               struct.pack("<HHQI", 3, 0, 0, 100) + b"short"),
        "step_four": frame(STEP, struct.pack("<II", 4, 0)),
        "step_over_cap": frame(STEP, struct.pack("<II", 4096, 0)),
        "epoch_info": frame(EPOCH_INFO,
                            struct.pack("<QIBBHQ", 5, 4, 1, 2, 0, 17)),
        "pin_epoch": frame(PIN_EPOCH, struct.pack("<Q", 5)),
        "unpin_epoch": frame(UNPIN_EPOCH, struct.pack("<Q", 5)),
        "trace_dump_request": frame(TRACE_DUMP_REQUEST),
        "trace_dump_one": frame(TRACE_DUMP,
                                struct.pack("<QII", 9, 1, 0) +
                                trace_record(7)),
        # Envelope rejections: each must fail in ParseFrameHeader before
        # any payload allocation.
        "header_too_large": frame(QUERY_BATCH, announce=(17 << 20)),
        "header_bad_type": frame(99),
        "header_type_zero": frame(0),
        "header_nonzero_flags": frame(STEP, struct.pack("<II", 1, 0),
                                      flags=1),
        "header_nonzero_reserved": frame(STEP, struct.pack("<II", 1, 0),
                                         reserved=7),
    }
    # Truncation sweep seeds, mirroring tests/test_protocol.cc: every
    # prefix of a valid frame must be rejected cleanly, so give the
    # fuzzer a few interesting cut points to mutate from.
    for name, cut in (("query_batch_two", 21), ("result_two_queries", 100),
                      ("trace_dump_one", 30), ("pin_epoch", 11)):
        seeds[f"truncated_{name}_{cut}"] = seeds[name][:cut]
    return seeds


def http_seeds():
    return {
        "get_metrics": b"GET /metrics HTTP/1.0\r\n\r\n",
        "get_healthz": b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n",
        "get_query_string": b"GET /metrics?name=octp_frames HTTP/1.0\r\n\r\n",
        "get_unknown_path": b"GET /nope HTTP/1.0\r\n\r\n",
        "post_rejected": b"POST /metrics HTTP/1.0\r\n\r\n",
        "malformed_no_version": b"GET /metrics\r\n\r\n",
        "malformed_garbage": b"\x00\xff garbage without structure",
        "empty_line_only": b"\r\n\r\n",
    }


def write_corpus(root, name, seeds, suffix):
    directory = root / name
    directory.mkdir(parents=True, exist_ok=True)
    for seed_name, data in sorted(seeds.items()):
        (directory / f"{seed_name}{suffix}").write_bytes(data)
    print(f"{name}: {len(seeds)} seeds -> {directory}")


def main():
    root = pathlib.Path(__file__).resolve().parent.parent / "fuzz" / "corpus"
    write_corpus(root, "protocol", protocol_seeds(), ".bin")
    write_corpus(root, "http", http_seeds(), ".txt")
    return 0


if __name__ == "__main__":
    sys.exit(main())
