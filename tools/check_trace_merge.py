#!/usr/bin/env python3
"""Validates a merged client+server Chrome trace from `octopus_cli
trace dump --merge-client`.

Checks that the file is well-formed trace-event JSON and that the merge
respected its own geometry:

  * both process tracks are named (pid 1 "client", pid 2 "server");
  * every client "call" span (pid 1) contains its send/wait/receive
    children, laid end to end without overlap;
  * every server "request" span (pid 2) joins a call span via
    args.trace_id == the call's args.server_trace_id, and sits inside
    that call's wait window (when clock skew makes the server span
    longer than the wait, it must at least start with it);
  * server phase children (queue/probe/walk/crawl/merge/serialize) nest
    inside a request span on their tid;
  * at least `--require-matched` client/server pairs matched (default
    1) — the round trip actually joined the two sides.

Usage: check_trace_merge.py merged.json [--require-matched N]
"""

import argparse
import json
import sys

EPS_US = 1.0  # one microsecond of float slack on span geometry

CLIENT_PHASES = ("send", "wait", "receive")
SERVER_PHASES = ("queue", "probe", "walk", "crawl", "merge", "serialize")


def span_end(event) -> float:
    return event["ts"] + event.get("dur", 0.0)


def contains(outer, inner, eps=EPS_US) -> bool:
    return (inner["ts"] >= outer["ts"] - eps
            and span_end(inner) <= span_end(outer) + eps)


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Validate a merged client+server Chrome trace.")
    parser.add_argument("trace", help="merged Chrome trace JSON")
    parser.add_argument("--require-matched", type=int, default=1,
                        help="minimum client/server joined pairs")
    args = parser.parse_args()

    failures = []
    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: {args.trace}: not valid JSON: {e}")
        return 1

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print(f"FAIL: {args.trace}: no traceEvents")
        return 1

    track_names = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            track_names[event.get("pid")] = event["args"]["name"]
    if track_names.get(1) != "client" or track_names.get(2) != "server":
        failures.append(f"process tracks not named client/server: "
                        f"{track_names}")

    spans = [e for e in events if e.get("ph") == "X"]
    calls = [e for e in spans if e.get("pid") == 1
             and e.get("name") == "call"]
    requests = [e for e in spans if e.get("pid") == 2
                and e.get("name") == "request"]
    if not calls:
        failures.append("no client call spans")

    # Client children nest inside their call, end to end, in order.
    client_children = [e for e in spans if e.get("pid") == 1
                       and e.get("name") in CLIENT_PHASES]
    for child in client_children:
        if not any(contains(call, child) for call in calls):
            failures.append(f"client {child['name']} span at ts "
                            f"{child['ts']} outside every call span")
    for call in calls:
        inside = sorted((c for c in client_children if contains(call, c)),
                        key=lambda c: c["ts"])
        cursor = call["ts"]
        for child in inside:
            if child["ts"] < cursor - EPS_US:
                failures.append(f"call at ts {call['ts']}: child "
                                f"{child['name']} overlaps its "
                                f"predecessor")
            cursor = max(cursor, span_end(child))

    # Server requests join a call and sit inside its wait window.
    matched = 0
    calls_by_trace = {}
    for call in calls:
        trace_id = (call.get("args") or {}).get("server_trace_id", 0)
        if trace_id:
            calls_by_trace[trace_id] = call
    waits = [e for e in spans if e.get("pid") == 1
             and e.get("name") == "wait"]
    for request in requests:
        trace_id = (request.get("args") or {}).get("trace_id", 0)
        call = calls_by_trace.get(trace_id)
        if call is None:
            failures.append(f"server request trace_id {trace_id} matches "
                            f"no client call (unmatched records should "
                            f"have been omitted)")
            continue
        matched += 1
        wait = next((w for w in waits if contains(call, w)), None)
        window = wait if wait is not None else call
        if request.get("dur", 0.0) <= window.get("dur", 0.0) + EPS_US:
            if not contains(window, request):
                failures.append(
                    f"request trace_id {trace_id} at ts {request['ts']} "
                    f"escapes its wait window [{window['ts']}, "
                    f"{span_end(window)}]")
        elif abs(request["ts"] - window["ts"]) > EPS_US:
            # Clock skew: the merge clamps an oversized span to the
            # window's start rather than centering it.
            failures.append(
                f"oversized request trace_id {trace_id} not clamped to "
                f"its wait window start")

    # Server phase children nest inside a request on their tid.
    for child in (e for e in spans if e.get("pid") == 2
                  and e.get("name") in SERVER_PHASES):
        if not any(r.get("tid") == child.get("tid")
                   and contains(r, child) for r in requests):
            failures.append(f"server {child['name']} span at ts "
                            f"{child['ts']} outside every request span "
                            f"on tid {child.get('tid')}")

    if matched < args.require_matched:
        failures.append(f"only {matched} client/server pairs matched; "
                        f"required {args.require_matched}")

    print(f"check_trace_merge: {len(calls)} calls, {len(requests)} "
          f"server requests, {matched} matched")
    for msg in failures:
        print(f"FAIL: {msg}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
