// Copyright 2026 The OCTOPUS Reproduction Authors
//
// octopus_cli — command-line utility around the OCTOPUS library.
//
//   octopus_cli generate <dataset> <out.mesh> [scale]
//       dataset: neuro0..neuro4 | sf1 | sf2 | horse | face | camel
//   octopus_cli info <mesh>
//       prints the Fig. 4-style characterization of a mesh file
//   octopus_cli query <mesh> <minx miny minz maxx maxy maxz>
//              [--paged --pool-bytes N]
//       runs one OCTOPUS range query and prints the result count +
//       phase breakdown; with --paged, <mesh> is an .oct2 snapshot
//       executed out of core through a byte-capped buffer pool
//   octopus_cli snapshot save <mesh> <out.oct2> [--page-bytes N]
//              [--layout original|hilbert]
//       converts an OCT1 mesh file into a paged OCT2 snapshot
//   octopus_cli snapshot info <file.oct2>
//       prints the snapshot header (pages, sections, layout)
//   octopus_cli export <mesh> <out.obj>
//       writes the mesh surface as a Wavefront OBJ
//   octopus_cli bench <mesh> [--threads N] [--queries N] [--sel F]
//       executes a batch of random range queries through the QueryEngine
//       and prints throughput + phase breakdown
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"
#include "engine/query_engine.h"
#include "mesh/export_obj.h"
#include "mesh/generators/datasets.h"
#include "mesh/mesh_io.h"
#include "mesh/mesh_stats.h"
#include "octopus/paged_executor.h"
#include "octopus/query_executor.h"
#include "sim/workload.h"

namespace {

using namespace octopus;

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage:\n"
      "  octopus_cli generate <neuro0..neuro4|sf1|sf2|horse|face|camel> "
      "<out.mesh> [scale]\n"
      "  octopus_cli info <mesh>\n"
      "  octopus_cli query <mesh> <minx> <miny> <minz> <maxx> <maxy> "
      "<maxz> [--paged --pool-bytes N]\n"
      "      --paged          treat <mesh> as an .oct2 snapshot and "
      "execute out of core\n"
      "      --pool-bytes N   buffer-pool byte cap for --paged "
      "(default 4194304, min 2 pages)\n"
      "  octopus_cli snapshot save <mesh> <out.oct2> [--page-bytes N] "
      "[--layout original|hilbert]\n"
      "  octopus_cli snapshot info <file.oct2>\n"
      "  octopus_cli export <mesh> <out.obj>\n"
      "  octopus_cli bench <mesh> [--threads N] [--queries N] [--sel F]\n"
      "      --threads N      query-execution threads for the batch "
      "(default 1)\n"
      "      --queries N      batch size (default 256)\n"
      "      --sel F          query selectivity (default 0.001)\n");
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

/// Parses a positive byte count (pool or page size); false on garbage,
/// non-positive or implausibly large values.
bool ParseByteCount(const char* arg, size_t* out) {
  char* end = nullptr;
  const long long value = std::strtoll(arg, &end, 10);
  if (end == arg || *end != '\0' || value <= 0 ||
      value > (1ll << 40)) {
    return false;
  }
  *out = static_cast<size_t>(value);
  return true;
}

Result<TetraMesh> GenerateByName(const std::string& name, double scale) {
  if (name.rfind("neuro", 0) == 0 && name.size() == 6) {
    return MakeNeuroMesh(name[5] - '0', scale);
  }
  if (name == "sf1") {
    return MakeEarthquakeMesh(EarthquakeResolution::kSF1, scale);
  }
  if (name == "sf2") {
    return MakeEarthquakeMesh(EarthquakeResolution::kSF2, scale);
  }
  if (name == "horse") {
    return MakeAnimationMesh(AnimationDataset::kHorseGallop, scale);
  }
  if (name == "face") {
    return MakeAnimationMesh(AnimationDataset::kFacialExpression, scale);
  }
  if (name == "camel") {
    return MakeAnimationMesh(AnimationDataset::kCamelCompress, scale);
  }
  return Status::InvalidArgument("unknown dataset: " + name);
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 4) return Usage();
  const double scale = argc > 4 ? std::atof(argv[4]) : 1.0;
  auto mesh = GenerateByName(argv[2], scale);
  if (!mesh.ok()) {
    std::fprintf(stderr, "%s\n", mesh.status().ToString().c_str());
    return 1;
  }
  const Status st = SaveMesh(mesh.Value(), argv[3]);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu vertices, %zu tetrahedra\n", argv[3],
              mesh.Value().num_vertices(), mesh.Value().num_tetrahedra());
  return 0;
}

int CmdInfo(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto mesh = LoadMesh(argv[2]);
  if (!mesh.ok()) {
    std::fprintf(stderr, "%s\n", mesh.status().ToString().c_str());
    return 1;
  }
  const MeshStats s = ComputeMeshStats(mesh.Value());
  Table t(std::string("mesh info: ") + argv[2]);
  t.SetHeader({"metric", "value"});
  t.AddRow({"vertices", Table::Count(s.num_vertices)});
  t.AddRow({"tetrahedra", Table::Count(s.num_tetrahedra)});
  t.AddRow({"edges", Table::Count(s.num_edges)});
  t.AddRow({"surface vertices", Table::Count(s.num_surface_vertices)});
  t.AddRow({"mesh degree (M)", Table::Num(s.mesh_degree, 2)});
  t.AddRow({"surface:volume (S)", Table::Num(s.surface_to_volume, 4)});
  t.AddRow({"memory", Table::Megabytes(s.memory_bytes)});
  t.Print();
  return 0;
}

void PrintPhaseBreakdown(const PhaseStats& stats) {
  std::printf("phases: probe %.3f ms (%zu probed) | walk %.3f ms (%zu "
              "walks) | crawl %.3f ms (%zu edges)\n",
              stats.probe_nanos * 1e-6, stats.probed_vertices,
              stats.walk_nanos * 1e-6, stats.walk_invocations,
              stats.crawl_nanos * 1e-6, stats.crawl_edges);
}

int CmdQuery(int argc, char** argv) {
  if (argc < 9) return Usage();
  bool paged = false;
  size_t pool_bytes = 4u << 20;
  for (int i = 9; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paged") == 0) {
      paged = true;
    } else if (std::strcmp(argv[i], "--pool-bytes") == 0 && i + 1 < argc) {
      if (!ParseByteCount(argv[++i], &pool_bytes)) return Usage();
    } else {
      return Usage();
    }
  }
  const AABB box(Vec3(std::atof(argv[3]), std::atof(argv[4]),
                      std::atof(argv[5])),
                 Vec3(std::atof(argv[6]), std::atof(argv[7]),
                      std::atof(argv[8])));

  if (paged) {
    PagedOctopus::Options options;
    options.pool.pool_bytes = pool_bytes;
    auto octo = PagedOctopus::Open(argv[2], options);
    if (!octo.ok()) {
      std::fprintf(stderr, "%s\n", octo.status().ToString().c_str());
      return 1;
    }
    std::vector<VertexId> result;
    octo.Value()->RangeQuery(box, &result);
    const PhaseStats& stats = octo.Value()->stats();
    std::printf("%zu vertices inside query box (out of core, %s layout)\n",
                result.size(),
                storage::LayoutName(octo.Value()->store().layout()));
    PrintPhaseBreakdown(stats);
    std::printf("page I/O: %zu hits, %zu misses, %zu evictions "
                "(pool cap %zu bytes, allocated %zu)\n",
                stats.page_io.page_hits, stats.page_io.page_misses,
                stats.page_io.page_evictions, pool_bytes,
                octo.Value()->store().buffer_manager()->AllocatedBytes());
    return 0;
  }

  auto mesh = LoadMesh(argv[2]);
  if (!mesh.ok()) {
    std::fprintf(stderr, "%s\n", mesh.status().ToString().c_str());
    return 1;
  }
  Octopus octo;
  octo.Build(mesh.Value());
  std::vector<VertexId> result;
  octo.RangeQuery(mesh.Value(), box, &result);
  std::printf("%zu vertices inside query box\n", result.size());
  PrintPhaseBreakdown(octo.stats());
  return 0;
}

int CmdSnapshot(int argc, char** argv) {
  if (argc < 4) return Usage();
  if (std::strcmp(argv[2], "info") == 0) {
    auto header = storage::ReadSnapshotHeader(argv[3]);
    if (!header.ok()) {
      std::fprintf(stderr, "%s\n", header.status().ToString().c_str());
      return 1;
    }
    const storage::SnapshotHeader& h = header.Value();
    Table t(std::string("snapshot info: ") + argv[3]);
    t.SetHeader({"field", "value"});
    t.AddRow({"layout", storage::LayoutName(
                            static_cast<storage::SnapshotLayout>(
                                h.layout))});
    t.AddRow({"page bytes", Table::Count(h.page_bytes)});
    t.AddRow({"pages", Table::Count(h.num_pages)});
    t.AddRow({"file size", Table::Megabytes(h.FileBytes())});
    t.AddRow({"vertices", Table::Count(h.num_vertices)});
    t.AddRow({"adjacency entries", Table::Count(h.num_adj_entries)});
    t.AddRow({"surface vertices", Table::Count(h.num_surface_vertices)});
    t.AddRow({"tetrahedra (source)", Table::Count(h.num_tets)});
    t.Print();
    return 0;
  }
  if (std::strcmp(argv[2], "save") == 0) {
    if (argc < 5) return Usage();
    storage::SnapshotOptions options;
    for (int i = 5; i < argc; ++i) {
      if (std::strcmp(argv[i], "--page-bytes") == 0 && i + 1 < argc) {
        if (!ParseByteCount(argv[++i], &options.page_bytes)) {
          return Usage();
        }
      } else if (std::strcmp(argv[i], "--layout") == 0 && i + 1 < argc) {
        const char* name = argv[++i];
        if (std::strcmp(name, "hilbert") == 0) {
          options.layout = storage::SnapshotLayout::kHilbert;
        } else if (std::strcmp(name, "original") == 0) {
          options.layout = storage::SnapshotLayout::kOriginal;
        } else {
          return Usage();
        }
      } else {
        return Usage();
      }
    }
    const Status st = ConvertMeshToSnapshot(argv[3], argv[4], options);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    auto header = storage::ReadSnapshotHeader(argv[4]);
    if (!header.ok()) {
      std::fprintf(stderr, "%s\n", header.status().ToString().c_str());
      return 1;
    }
    std::printf("wrote %s: %llu pages of %u bytes (%s layout, %llu "
                "vertices)\n",
                argv[4],
                static_cast<unsigned long long>(header.Value().num_pages),
                header.Value().page_bytes,
                storage::LayoutName(static_cast<storage::SnapshotLayout>(
                    header.Value().layout)),
                static_cast<unsigned long long>(
                    header.Value().num_vertices));
    return 0;
  }
  return Usage();
}

int CmdBench(int argc, char** argv) {
  if (argc < 3) return Usage();
  int threads = 1;
  int queries = 256;
  double selectivity = 0.001;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--sel") == 0 && i + 1 < argc) {
      selectivity = std::atof(argv[++i]);
    } else {
      return Usage();
    }
  }
  if (threads < 1 || queries < 1) return Usage();

  auto mesh = LoadMesh(argv[2]);
  if (!mesh.ok()) {
    std::fprintf(stderr, "%s\n", mesh.status().ToString().c_str());
    return 1;
  }
  Octopus octo;
  Timer build_timer;
  octo.Build(mesh.Value());
  const double build_s = build_timer.ElapsedSeconds();

  QueryGenerator gen(mesh.Value());
  Rng rng(42);
  const engine::QueryBatch batch =
      gen.MakeBatch(&rng, queries, selectivity, selectivity);
  engine::QueryEngine eng(engine::QueryEngineOptions{.threads = threads});
  engine::QueryBatchResult results;

  Timer batch_timer;
  eng.Execute(octo, mesh.Value(), batch, &results);
  const double batch_s = batch_timer.ElapsedSeconds();

  const PhaseStats& stats = octo.stats();
  std::printf("%d queries (sel %.4f) on %d thread(s): %.3f ms total, "
              "%.1f queries/s, %zu results\n",
              queries, selectivity, threads, batch_s * 1e3,
              queries / batch_s, results.TotalResults());
  std::printf("build: %.3f s | phase counts: %zu probed, %zu walks, "
              "%zu crawl edges\n",
              build_s, stats.probed_vertices, stats.walk_invocations,
              stats.crawl_edges);
  return 0;
}

int CmdExport(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto mesh = LoadMesh(argv[2]);
  if (!mesh.ok()) {
    std::fprintf(stderr, "%s\n", mesh.status().ToString().c_str());
    return 1;
  }
  const Status st = ExportSurfaceObj(mesh.Value(), argv[3]);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", argv[3]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0 ||
      std::strcmp(argv[1], "help") == 0) {
    PrintUsage(stdout);
    return 0;
  }
  if (std::strcmp(argv[1], "generate") == 0) return CmdGenerate(argc, argv);
  if (std::strcmp(argv[1], "info") == 0) return CmdInfo(argc, argv);
  if (std::strcmp(argv[1], "query") == 0) return CmdQuery(argc, argv);
  if (std::strcmp(argv[1], "snapshot") == 0) return CmdSnapshot(argc, argv);
  if (std::strcmp(argv[1], "export") == 0) return CmdExport(argc, argv);
  if (std::strcmp(argv[1], "bench") == 0) return CmdBench(argc, argv);
  return Usage();
}
