// Copyright 2026 The OCTOPUS Reproduction Authors
//
// octopus_cli — command-line utility around the OCTOPUS library.
//
//   octopus_cli generate <dataset> <out.mesh> [scale]
//       dataset: neuro0..neuro4 | sf1 | sf2 | horse | face | camel
//   octopus_cli info <mesh>
//       prints the Fig. 4-style characterization of a mesh file
//   octopus_cli query <mesh> <minx miny minz maxx maxy maxz>
//              [--paged --pool-bytes N]
//       runs one OCTOPUS range query and prints the result count +
//       phase breakdown; with --paged, <mesh> is an .oct2 snapshot
//       executed out of core through a byte-capped buffer pool
//   octopus_cli snapshot save <mesh> <out.oct2> [--page-bytes N]
//              [--layout original|hilbert]
//       converts an OCT1 mesh file into a paged OCT2 snapshot
//   octopus_cli snapshot info <file.oct2>
//       prints the snapshot header (pages, sections, layout)
//   octopus_cli export <mesh> <out.obj>
//       writes the mesh surface as a Wavefront OBJ
//   octopus_cli bench <mesh> [--threads N] [--queries N] [--sel F]
//       executes a batch of random range queries through the QueryEngine
//       and prints throughput + phase breakdown
//   octopus_cli serve <mesh|snapshot.oct2> [--port N] [--paged ...]
//              [--deform <kind> --step-every <ms>]
//       runs the OCTP network query service until SIGINT/SIGTERM;
//       with --deform the mesh advances epoch by epoch while serving
//   octopus_cli query --remote <host:port> <minx ... maxz>
//       executes the range query on a remote octopus_cli serve
//   octopus_cli step <host:port> [n]
//       advances a dynamic server n steps (default 1; 0 = just report
//       the current epoch)
//   octopus_cli trace dump <host:port> [--out FILE]
//              [--merge-client SPANLOG]
//       exports a serving instance's flight-recorder ring as Chrome
//       trace-event JSON (chrome://tracing, Perfetto, speedscope);
//       --merge-client folds a query --span-log file into one
//       two-process client+server trace
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "client/remote_client.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"
#include "common/version.h"
#include "engine/query_engine.h"
#include "mesh/export_obj.h"
#include "mesh/generators/datasets.h"
#include "mesh/mesh_io.h"
#include "mesh/mesh_stats.h"
#include "obs/event_journal.h"
#include "obs/trace.h"
#include "octopus/paged_executor.h"
#include "octopus/query_executor.h"
#include "server/server.h"
#include "sim/deformer_spec.h"
#include "sim/workload.h"

namespace {

using namespace octopus;

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage:\n"
      "  octopus_cli generate <neuro0..neuro4|sf1|sf2|horse|face|camel> "
      "<out.mesh> [scale]\n"
      "  octopus_cli info <mesh>\n"
      "  octopus_cli query <mesh> <minx> <miny> <minz> <maxx> <maxy> "
      "<maxz> [--paged --pool-bytes N]\n"
      "      --paged          treat <mesh> as an .oct2 snapshot and "
      "execute out of core\n"
      "      --pool-bytes N   buffer-pool byte cap for --paged "
      "(default 4194304, min 2 pages)\n"
      "  octopus_cli snapshot save <mesh> <out.oct2> [--page-bytes N] "
      "[--layout original|hilbert]\n"
      "  octopus_cli snapshot info <file.oct2> [--json]\n"
      "  octopus_cli export <mesh> <out.obj>\n"
      "  octopus_cli bench <mesh> [--threads N] [--queries N] [--sel F]\n"
      "      --threads N      query-execution threads for the batch "
      "(default 1)\n"
      "      --queries N      batch size (default 256)\n"
      "      --sel F          query selectivity (default 0.001)\n"
      "  octopus_cli serve <mesh> [--port N] [--threads N] "
      "[--io-threads N] [--window-us N] [--max-batch N] [--max-pending N]\n"
      "              [--paged --pool-bytes N] [--deform "
      "<random|wave|plasticity>]\n"
      "              [--step-every MS] [--amplitude F] [--seed N] "
      "[--idle-timeout-s N]\n"
      "              [--retention-epochs N] [--retention-bytes N] "
      "[--history-epochs N] [--spill-path P]\n"
      "              [--metrics-port N] [--trace-ring N] "
      "[--slow-query-ms N]\n"
      "              [--journal N] [--journal-jsonl PATH|stderr] "
      "[--ready-lag-ms N]\n"
      "      runs the OCTP query service (port 0 = ephemeral, printed "
      "on stdout); with --paged,\n"
      "      --io-threads N serves connections from N epoll threads, "
      "sharded by fd (default\n"
      "      min(4, hardware threads); 1 = the single-loop front end); "
      "--threads N sizes the\n"
      "      engine's query pool;\n"
      "      <mesh> is an .oct2 snapshot served out of core. --deform "
      "binds a simulation\n"
      "      deformer (epoch-versioned serving); --step-every advances "
      "it every MS milliseconds\n"
      "      on a stepper thread, concurrently with queries. "
      "--amplitude 0 (default) derives a\n"
      "      safe bound from the mesh. --retention-epochs/-bytes cap "
      "the memory-resident epoch\n"
      "      window (>= 1 epoch); --history-epochs caps total queryable "
      "history; older epochs\n"
      "      spill to --spill-path (default <input>.<pid>.oct2d) and "
      "reload "
      "on demand.\n"
      "      --metrics-port N serves the introspection endpoints "
      "(/metrics, /healthz, /readyz,\n"
      "      /epochs, /journal) at http://<bind>:N (0 = ephemeral, "
      "printed on stdout);\n"
      "      --trace-ring N sizes the flight-recorder ring in records "
      "(default 1024, 0 = tracing\n"
      "      off); --slow-query-ms N logs requests slower than N ms as "
      "structured stderr lines\n"
      "      (0 = off); --journal N keeps the last N lifecycle events "
      "for /journal (0 = off);\n"
      "      --journal-jsonl tails every event to a file (or stderr); "
      "--ready-lag-ms N makes\n"
      "      /readyz answer 503 once no epoch published for N ms "
      "(0 = no lag check)\n"
      "  octopus_cli query --remote <host:port> <minx> <miny> <minz> "
      "<maxx> <maxy> <maxz>\n"
      "              [--epoch N] [--pin] [--span-log FILE]\n"
      "      --epoch N       execute against historical epoch N "
      "(0 = current); EPOCH_GONE if evicted\n"
      "      --pin           pin the target epoch first (released on "
      "disconnect) and print its id\n"
      "      --span-log FILE append the call's client-side span (JSONL) "
      "for trace dump --merge-client\n"
      "  octopus_cli step <host:port> [n]\n"
      "      advances a dynamic server n steps (default 1; 0 = report "
      "the current epoch)\n"
      "  octopus_cli trace dump <host:port> [--out FILE] "
      "[--merge-client SPANLOG]\n"
      "      exports the server's flight-recorder ring as Chrome "
      "trace-event JSON\n"
      "      (stdout by default; load in chrome://tracing, Perfetto or "
      "speedscope);\n"
      "      --merge-client folds a --span-log file into one two-process "
      "client+server trace\n"
      "  octopus_cli --version\n");
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

/// Parses a positive byte count (pool or page size); false on garbage,
/// non-positive or implausibly large values.
bool ParseByteCount(const char* arg, size_t* out) {
  char* end = nullptr;
  const long long value = std::strtoll(arg, &end, 10);
  if (end == arg || *end != '\0' || value <= 0 ||
      value > (1ll << 40)) {
    return false;
  }
  *out = static_cast<size_t>(value);
  return true;
}

Result<TetraMesh> GenerateByName(const std::string& name, double scale) {
  if (name.rfind("neuro", 0) == 0 && name.size() == 6) {
    return MakeNeuroMesh(name[5] - '0', scale);
  }
  if (name == "sf1") {
    return MakeEarthquakeMesh(EarthquakeResolution::kSF1, scale);
  }
  if (name == "sf2") {
    return MakeEarthquakeMesh(EarthquakeResolution::kSF2, scale);
  }
  if (name == "horse") {
    return MakeAnimationMesh(AnimationDataset::kHorseGallop, scale);
  }
  if (name == "face") {
    return MakeAnimationMesh(AnimationDataset::kFacialExpression, scale);
  }
  if (name == "camel") {
    return MakeAnimationMesh(AnimationDataset::kCamelCompress, scale);
  }
  return Status::InvalidArgument("unknown dataset: " + name);
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 4) return Usage();
  const double scale = argc > 4 ? std::atof(argv[4]) : 1.0;
  auto mesh = GenerateByName(argv[2], scale);
  if (!mesh.ok()) {
    std::fprintf(stderr, "%s\n", mesh.status().ToString().c_str());
    return 1;
  }
  const Status st = SaveMesh(mesh.Value(), argv[3]);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu vertices, %zu tetrahedra\n", argv[3],
              mesh.Value().num_vertices(), mesh.Value().num_tetrahedra());
  return 0;
}

int CmdInfo(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto mesh = LoadMesh(argv[2]);
  if (!mesh.ok()) {
    std::fprintf(stderr, "%s\n", mesh.status().ToString().c_str());
    return 1;
  }
  const MeshStats s = ComputeMeshStats(mesh.Value());
  Table t(std::string("mesh info: ") + argv[2]);
  t.SetHeader({"metric", "value"});
  t.AddRow({"vertices", Table::Count(s.num_vertices)});
  t.AddRow({"tetrahedra", Table::Count(s.num_tetrahedra)});
  t.AddRow({"edges", Table::Count(s.num_edges)});
  t.AddRow({"surface vertices", Table::Count(s.num_surface_vertices)});
  t.AddRow({"mesh degree (M)", Table::Num(s.mesh_degree, 2)});
  t.AddRow({"surface:volume (S)", Table::Num(s.surface_to_volume, 4)});
  t.AddRow({"memory", Table::Megabytes(s.memory_bytes)});
  t.Print();
  return 0;
}

void PrintPhaseBreakdown(const PhaseStats& stats) {
  std::printf("phases: probe %.3f ms (%zu probed) | walk %.3f ms (%zu "
              "walks) | crawl %.3f ms (%zu edges)\n",
              stats.probe_nanos * 1e-6, stats.probed_vertices,
              stats.walk_nanos * 1e-6, stats.walk_invocations,
              stats.crawl_nanos * 1e-6, stats.crawl_edges);
}

/// Splits "host:port"; false on a missing/invalid port.
bool ParseHostPort(const std::string& arg, std::string* host,
                   uint16_t* port) {
  const size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= arg.size()) {
    return false;
  }
  char* end = nullptr;
  const long value = std::strtol(arg.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || value < 1 || value > 65535) return false;
  *host = arg.substr(0, colon);
  *port = static_cast<uint16_t>(value);
  return true;
}

/// Up-front `--pool-bytes` validation against the snapshot's page size:
/// the buffer pool must cover at least 2 pages, and a clear message here
/// beats an opaque failure deep inside the buffer manager.
Status ValidatePoolBytes(const std::string& snapshot_path,
                         size_t pool_bytes) {
  auto header = storage::ReadSnapshotHeader(snapshot_path);
  if (!header.ok()) return header.status();
  const size_t min_bytes = 2 * static_cast<size_t>(
                                   header.Value().page_bytes);
  if (pool_bytes < min_bytes) {
    return Status::InvalidArgument(
        "--pool-bytes " + std::to_string(pool_bytes) + " too small: " +
        snapshot_path + " has " +
        std::to_string(header.Value().page_bytes) +
        "-byte pages and the buffer pool must cover at least 2 pages "
        "(>= " +
        std::to_string(min_bytes) + " bytes)");
  }
  return Status::OK();
}

void PrintRemoteBatchInfo(const client::RemoteBatchResult& r) {
  PrintPhaseBreakdown(r.stats.ToPhaseStats());
  std::printf("served in a coalesced batch of %u queries from %u "
              "request(s) at epoch %llu (step %u)\n",
              r.stats.batch_queries, r.stats.batch_requests,
              static_cast<unsigned long long>(r.stats.epoch.epoch),
              r.stats.epoch.step);
  if (r.stats.page_hits + r.stats.page_misses > 0) {
    std::printf("page I/O: %llu hits, %llu misses, %llu evictions\n",
                static_cast<unsigned long long>(r.stats.page_hits),
                static_cast<unsigned long long>(r.stats.page_misses),
                static_cast<unsigned long long>(r.stats.page_evictions));
  }
}

int CmdQueryRemote(int argc, char** argv) {
  // octopus_cli query --remote <host:port> <6 box coords> [--epoch N]
  //             [--pin]
  if (argc < 10) return Usage();
  std::string host;
  uint16_t port = 0;
  if (!ParseHostPort(argv[3], &host, &port)) return Usage();
  const AABB box(Vec3(std::atof(argv[4]), std::atof(argv[5]),
                      std::atof(argv[6])),
                 Vec3(std::atof(argv[7]), std::atof(argv[8]),
                      std::atof(argv[9])));
  unsigned long long epoch = 0;
  bool pin = false;
  const char* span_log = nullptr;
  for (int i = 10; i < argc; ++i) {
    if (std::strcmp(argv[i], "--epoch") == 0 && i + 1 < argc) {
      char* end = nullptr;
      epoch = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') return Usage();
    } else if (std::strcmp(argv[i], "--pin") == 0) {
      pin = true;
    } else if (std::strcmp(argv[i], "--span-log") == 0 && i + 1 < argc) {
      span_log = argv[++i];
    } else {
      return Usage();
    }
  }
  auto connected = client::RemoteClient::Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.status().ToString().c_str());
    return 1;
  }
  client::RemoteClient& remote = *connected.Value();
  if (span_log != nullptr) remote.set_record_spans(true);
  const auto& info = remote.server_info();
  if (pin) {
    // Demonstrates the repeatable-read flow; a pin is per-session, so
    // it releases when this process disconnects. Long-lived monitoring
    // clients hold theirs across batches.
    auto pinned = remote.PinEpoch(epoch);
    if (!pinned.ok()) {
      std::fprintf(stderr, "%s\n", pinned.status().ToString().c_str());
      return 1;
    }
    epoch = pinned.Value().epoch;
    std::printf("pinned epoch %llu (step %u; released on disconnect)\n",
                static_cast<unsigned long long>(pinned.Value().epoch),
                pinned.Value().step);
  }
  auto result = remote.ExecuteBatch(std::span<const AABB>(&box, 1), epoch);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu vertices inside query box (remote %s backend, %llu "
              "vertices)\n",
              result.Value().results.per_query[0].size(),
              info.paged != 0 ? "out-of-core" : "in-memory",
              static_cast<unsigned long long>(info.num_vertices));
  PrintRemoteBatchInfo(result.Value());
  if (span_log != nullptr) {
    // Appended, not truncated: one growing JSONL file accumulates the
    // client half of `trace dump --merge-client` across invocations.
    std::FILE* f = std::fopen(span_log, "ab");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open --span-log %s\n", span_log);
      return 1;
    }
    for (const obs::ClientCallSpan& span : remote.spans()) {
      const std::string line = obs::ClientCallSpanJson(span);
      std::fwrite(line.data(), 1, line.size(), f);
      std::fputc('\n', f);
    }
    if (std::fclose(f) != 0) {
      std::fprintf(stderr, "failed to write --span-log %s\n", span_log);
      return 1;
    }
  }
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[2], "--remote") == 0) {
    return CmdQueryRemote(argc, argv);
  }
  if (argc < 9) return Usage();
  bool paged = false;
  size_t pool_bytes = 4u << 20;
  for (int i = 9; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paged") == 0) {
      paged = true;
    } else if (std::strcmp(argv[i], "--pool-bytes") == 0 && i + 1 < argc) {
      if (!ParseByteCount(argv[++i], &pool_bytes)) return Usage();
    } else {
      return Usage();
    }
  }
  const AABB box(Vec3(std::atof(argv[3]), std::atof(argv[4]),
                      std::atof(argv[5])),
                 Vec3(std::atof(argv[6]), std::atof(argv[7]),
                      std::atof(argv[8])));

  if (paged) {
    const Status valid = ValidatePoolBytes(argv[2], pool_bytes);
    if (!valid.ok()) {
      std::fprintf(stderr, "%s\n", valid.ToString().c_str());
      return 1;
    }
    PagedOctopus::Options options;
    options.pool.pool_bytes = pool_bytes;
    auto octo = PagedOctopus::Open(argv[2], options);
    if (!octo.ok()) {
      std::fprintf(stderr, "%s\n", octo.status().ToString().c_str());
      return 1;
    }
    std::vector<VertexId> result;
    octo.Value()->RangeQuery(box, &result);
    const PhaseStats& stats = octo.Value()->stats();
    std::printf("%zu vertices inside query box (out of core, %s layout)\n",
                result.size(),
                storage::LayoutName(octo.Value()->store().layout()));
    PrintPhaseBreakdown(stats);
    std::printf("page I/O: %zu hits, %zu misses, %zu evictions "
                "(pool cap %zu bytes, allocated %zu)\n",
                stats.page_io.page_hits, stats.page_io.page_misses,
                stats.page_io.page_evictions, pool_bytes,
                octo.Value()->store().buffer_manager()->AllocatedBytes());
    return 0;
  }

  auto mesh = LoadMesh(argv[2]);
  if (!mesh.ok()) {
    std::fprintf(stderr, "%s\n", mesh.status().ToString().c_str());
    return 1;
  }
  Octopus octo;
  octo.Build(mesh.Value());
  std::vector<VertexId> result;
  octo.RangeQuery(mesh.Value(), box, &result);
  std::printf("%zu vertices inside query box\n", result.size());
  PrintPhaseBreakdown(octo.stats());
  return 0;
}

int CmdSnapshot(int argc, char** argv) {
  if (argc < 4) return Usage();
  if (std::strcmp(argv[2], "info") == 0) {
    bool json = false;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        json = true;
      } else {
        return Usage();
      }
    }
    auto header = storage::ReadSnapshotHeader(argv[3]);
    if (!header.ok()) {
      std::fprintf(stderr, "%s\n", header.status().ToString().c_str());
      return 1;
    }
    const storage::SnapshotHeader& h = header.Value();
    if (json) {
      // Machine-readable header dump: one flat JSON object, keys
      // stable. The path is the only caller-controlled string — escape
      // it so the output stays parseable JSON for any filename.
      std::string escaped_path;
      for (const char* p = argv[3]; *p != '\0'; ++p) {
        const unsigned char c = static_cast<unsigned char>(*p);
        if (c == '"' || c == '\\') {
          escaped_path += '\\';
          escaped_path += *p;
        } else if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          escaped_path += buf;
        } else {
          escaped_path += *p;
        }
      }
      std::printf(
          "{\"path\": \"%s\", \"layout\": \"%s\", \"page_bytes\": %u, "
          "\"num_pages\": %llu, \"file_bytes\": %llu, "
          "\"num_vertices\": %llu, \"num_adj_entries\": %llu, "
          "\"num_surface_vertices\": %llu, \"num_tets\": %llu}\n",
          escaped_path.c_str(),
          storage::LayoutName(
              static_cast<storage::SnapshotLayout>(h.layout)),
          h.page_bytes, static_cast<unsigned long long>(h.num_pages),
          static_cast<unsigned long long>(h.FileBytes()),
          static_cast<unsigned long long>(h.num_vertices),
          static_cast<unsigned long long>(h.num_adj_entries),
          static_cast<unsigned long long>(h.num_surface_vertices),
          static_cast<unsigned long long>(h.num_tets));
      return 0;
    }
    Table t(std::string("snapshot info: ") + argv[3]);
    t.SetHeader({"field", "value"});
    t.AddRow({"layout", storage::LayoutName(
                            static_cast<storage::SnapshotLayout>(
                                h.layout))});
    t.AddRow({"page bytes", Table::Count(h.page_bytes)});
    t.AddRow({"pages", Table::Count(h.num_pages)});
    t.AddRow({"file size", Table::Megabytes(h.FileBytes())});
    t.AddRow({"vertices", Table::Count(h.num_vertices)});
    t.AddRow({"adjacency entries", Table::Count(h.num_adj_entries)});
    t.AddRow({"surface vertices", Table::Count(h.num_surface_vertices)});
    t.AddRow({"tetrahedra (source)", Table::Count(h.num_tets)});
    t.Print();
    return 0;
  }
  if (std::strcmp(argv[2], "save") == 0) {
    if (argc < 5) return Usage();
    storage::SnapshotOptions options;
    for (int i = 5; i < argc; ++i) {
      if (std::strcmp(argv[i], "--page-bytes") == 0 && i + 1 < argc) {
        if (!ParseByteCount(argv[++i], &options.page_bytes)) {
          return Usage();
        }
      } else if (std::strcmp(argv[i], "--layout") == 0 && i + 1 < argc) {
        const char* name = argv[++i];
        if (std::strcmp(name, "hilbert") == 0) {
          options.layout = storage::SnapshotLayout::kHilbert;
        } else if (std::strcmp(name, "original") == 0) {
          options.layout = storage::SnapshotLayout::kOriginal;
        } else {
          return Usage();
        }
      } else {
        return Usage();
      }
    }
    const Status st = ConvertMeshToSnapshot(argv[3], argv[4], options);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    auto header = storage::ReadSnapshotHeader(argv[4]);
    if (!header.ok()) {
      std::fprintf(stderr, "%s\n", header.status().ToString().c_str());
      return 1;
    }
    std::printf("wrote %s: %llu pages of %u bytes (%s layout, %llu "
                "vertices)\n",
                argv[4],
                static_cast<unsigned long long>(header.Value().num_pages),
                header.Value().page_bytes,
                storage::LayoutName(static_cast<storage::SnapshotLayout>(
                    header.Value().layout)),
                static_cast<unsigned long long>(
                    header.Value().num_vertices));
    return 0;
  }
  return Usage();
}

int CmdBench(int argc, char** argv) {
  if (argc < 3) return Usage();
  int threads = 1;
  int queries = 256;
  double selectivity = 0.001;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--sel") == 0 && i + 1 < argc) {
      selectivity = std::atof(argv[++i]);
    } else {
      return Usage();
    }
  }
  if (threads < 1 || queries < 1) return Usage();

  auto mesh = LoadMesh(argv[2]);
  if (!mesh.ok()) {
    std::fprintf(stderr, "%s\n", mesh.status().ToString().c_str());
    return 1;
  }
  Octopus octo;
  Timer build_timer;
  octo.Build(mesh.Value());
  const double build_s = build_timer.ElapsedSeconds();

  QueryGenerator gen(mesh.Value());
  Rng rng(42);
  const engine::QueryBatch batch =
      gen.MakeBatch(&rng, queries, selectivity, selectivity);
  engine::QueryEngine eng(engine::QueryEngineOptions{.threads = threads});
  engine::QueryBatchResult results;

  Timer batch_timer;
  eng.Execute(octo, mesh.Value(), batch, &results);
  const double batch_s = batch_timer.ElapsedSeconds();

  const PhaseStats& stats = octo.stats();
  std::printf("%d queries (sel %.4f) on %d thread(s): %.3f ms total, "
              "%.1f queries/s, %zu results\n",
              queries, selectivity, threads, batch_s * 1e3,
              queries / batch_s, results.TotalResults());
  std::printf("build: %.3f s | phase counts: %zu probed, %zu walks, "
              "%zu crawl edges\n",
              build_s, stats.probed_vertices, stats.walk_invocations,
              stats.crawl_edges);
  return 0;
}

// Lock-free atomic: a plain pointer read from a signal handler is UB.
std::atomic<server::QueryServer*> g_server{nullptr};

void HandleStopSignal(int) {
  server::QueryServer* srv = g_server.load(std::memory_order_acquire);
  if (srv != nullptr) srv->Stop();  // one atomic store + one pipe write
}

/// Strict positive-int parse for serve's capacity knobs: trailing
/// garbage ("10k", "2.5") must be rejected, not silently truncated.
bool ParsePositiveInt(const char* arg, long max, long* out) {
  char* end = nullptr;
  const long value = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0' || value < 1 || value > max) {
    return false;
  }
  *out = value;
  return true;
}

int CmdServe(int argc, char** argv) {
  if (argc < 3) return Usage();
  bool paged = false;
  size_t pool_bytes = 4u << 20;
  long threads = 1;
  DeformerSpec deform;
  long step_every_ms = 0;
  server::ServerOptions options;
  // Default: min(4, hardware threads) epoll I/O threads. One thread
  // reproduces the previous single-loop front end exactly.
  options.io_threads = static_cast<int>(
      std::min(4u, std::max(1u, std::thread::hardware_concurrency())));
  server::EpochRetentionOptions retention;
  size_t journal_slots = 0;
  const char* journal_jsonl = nullptr;
  bool retention_flag_seen = false;
  retention.spill_path.clear();  // resolved to <input>.<pid>.oct2d below
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paged") == 0) {
      paged = true;
    } else if (std::strcmp(argv[i], "--pool-bytes") == 0 && i + 1 < argc) {
      if (!ParseByteCount(argv[++i], &pool_bytes)) return Usage();
    } else if (std::strcmp(argv[i], "--retention-epochs") == 0 &&
               i + 1 < argc) {
      long n = 0;
      if (!ParsePositiveInt(argv[++i], 1 << 20, &n)) {
        // Typed message, not a bare usage dump: "0" here silently
        // meaning "unbounded" (or worse, crashing later) is exactly the
        // class of bug this PR sweeps.
        std::fprintf(stderr,
                     "--retention-epochs must be at least 1 epoch "
                     "(got \"%s\")\n",
                     argv[i]);
        return 2;
      }
      retention.retention_epochs = static_cast<size_t>(n);
      retention_flag_seen = true;
    } else if (std::strcmp(argv[i], "--retention-bytes") == 0 &&
               i + 1 < argc) {
      size_t bytes = 0;
      if (!ParseByteCount(argv[++i], &bytes)) {
        std::fprintf(stderr,
                     "--retention-bytes must be a positive byte count "
                     "(got \"%s\")\n",
                     argv[i]);
        return 2;
      }
      retention.retention_bytes = bytes;
      retention_flag_seen = true;
    } else if (std::strcmp(argv[i], "--history-epochs") == 0 &&
               i + 1 < argc) {
      long n = 0;
      if (!ParsePositiveInt(argv[++i], 1 << 20, &n)) {
        std::fprintf(stderr,
                     "--history-epochs must be at least 1 epoch "
                     "(got \"%s\")\n",
                     argv[i]);
        return 2;
      }
      retention.history_epochs = static_cast<size_t>(n);
      retention_flag_seen = true;
    } else if (std::strcmp(argv[i], "--spill-path") == 0 && i + 1 < argc) {
      retention.spill_path = argv[++i];
      retention_flag_seen = true;
    } else if (std::strcmp(argv[i], "--deform") == 0 && i + 1 < argc) {
      if (!ParseDeformerKind(argv[++i], &deform.kind)) return Usage();
    } else if (std::strcmp(argv[i], "--step-every") == 0 && i + 1 < argc) {
      if (!ParsePositiveInt(argv[++i], 3'600'000, &step_every_ms)) {
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--amplitude") == 0 && i + 1 < argc) {
      char* end = nullptr;
      deform.amplitude = std::strtof(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || deform.amplitude < 0.0f) {
        return Usage();
      }
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long seed = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') return Usage();
      deform.seed = seed;
    } else if (std::strcmp(argv[i], "--idle-timeout-s") == 0 &&
               i + 1 < argc) {
      // Strict parse allowing 0 ("disable the timeout"), so garbage
      // must not silently become it.
      char* end = nullptr;
      const long seconds = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || seconds < 0 ||
          seconds > 86'400) {
        return Usage();
      }
      options.idle_timeout_nanos = seconds * 1'000'000'000ll;
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      // Strict parse: 0 means "ephemeral", so a garbage value must not
      // silently become 0 (atoi would).
      char* end = nullptr;
      const long port = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || port < 0 || port > 65535) {
        return Usage();
      }
      options.port = static_cast<uint16_t>(port);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      if (!ParsePositiveInt(argv[++i], 1024, &threads)) return Usage();
    } else if (std::strcmp(argv[i], "--io-threads") == 0 && i + 1 < argc) {
      long n = 0;
      if (!ParsePositiveInt(argv[++i], 64, &n)) {
        std::fprintf(stderr,
                     "--io-threads must be between 1 and 64 (got \"%s\")\n",
                     argv[i]);
        return 2;
      }
      options.io_threads = static_cast<int>(n);
    } else if (std::strcmp(argv[i], "--window-us") == 0 && i + 1 < argc) {
      // Strict like --port: 0 is a meaningful window, so garbage must
      // not silently become it.
      char* end = nullptr;
      const long long us = std::strtoll(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || us < 0) return Usage();
      options.scheduler.window_nanos = us * 1000;
    } else if (std::strcmp(argv[i], "--max-batch") == 0 && i + 1 < argc) {
      long n = 0;
      if (!ParsePositiveInt(argv[++i], 1 << 30, &n)) return Usage();
      options.scheduler.max_batch_queries = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--max-pending") == 0 &&
               i + 1 < argc) {
      long n = 0;
      if (!ParsePositiveInt(argv[++i], 1 << 30, &n)) return Usage();
      options.scheduler.max_pending_queries = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--metrics-port") == 0 &&
               i + 1 < argc) {
      // Like --port: 0 means "ephemeral", so strict parse.
      char* end = nullptr;
      const long port = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || port < 0 || port > 65535) {
        return Usage();
      }
      options.metrics_port = static_cast<int>(port);
    } else if (std::strcmp(argv[i], "--trace-ring") == 0 && i + 1 < argc) {
      // 0 is the "tracing off" knob, so strict parse again. Cap at 2^20
      // records (136 MiB of ring) — far past useful, well short of silly.
      char* end = nullptr;
      const long slots = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || slots < 0 ||
          slots > (1 << 20)) {
        return Usage();
      }
      options.trace_ring_slots = static_cast<size_t>(slots);
    } else if (std::strcmp(argv[i], "--slow-query-ms") == 0 &&
               i + 1 < argc) {
      char* end = nullptr;
      const long long ms = std::strtoll(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || ms < 0 ||
          ms > 3'600'000) {
        return Usage();
      }
      options.slow_query_nanos = ms * 1'000'000;
    } else if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
      // 0 disables the ring (a JSONL sink alone still enables the
      // journal). Cap mirrors --trace-ring.
      char* end = nullptr;
      const long slots = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || slots < 0 ||
          slots > (1 << 20)) {
        return Usage();
      }
      journal_slots = static_cast<size_t>(slots);
    } else if (std::strcmp(argv[i], "--journal-jsonl") == 0 &&
               i + 1 < argc) {
      journal_jsonl = argv[++i];
    } else if (std::strcmp(argv[i], "--ready-lag-ms") == 0 &&
               i + 1 < argc) {
      char* end = nullptr;
      const long long ms = std::strtoll(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || ms < 0 ||
          ms > 86'400'000) {
        return Usage();
      }
      options.ready_max_publish_lag_nanos = ms * 1'000'000;
    } else {
      return Usage();
    }
  }

  if (step_every_ms > 0 && deform.kind == DeformerKind::kNone) {
    std::fprintf(stderr, "--step-every requires --deform\n");
    return 2;
  }

  std::unique_ptr<server::VersionedBackend> backend;
  if (paged) {
    const Status valid = ValidatePoolBytes(argv[2], pool_bytes);
    if (!valid.ok()) {
      std::fprintf(stderr, "%s\n", valid.ToString().c_str());
      return 1;
    }
    auto opened = server::VersionedBackend::OpenSnapshot(
        argv[2], pool_bytes, static_cast<int>(threads));
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    backend = opened.MoveValue();
  } else {
    auto opened = server::VersionedBackend::OpenMeshFile(
        argv[2], static_cast<int>(threads));
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    backend = opened.MoveValue();
  }
  if (retention_flag_seen && deform.kind == DeformerKind::kNone) {
    std::fprintf(stderr,
                 "--retention-*/--history-epochs/--spill-path require "
                 "--deform (a static server has no epoch history)\n");
    return 2;
  }
  // The journal outlives the server (declared before `srv` below) and
  // attaches BEFORE BindDeformer so the initial epoch's publication is
  // its first epoch event.
  std::FILE* journal_sink = nullptr;
  if (journal_jsonl != nullptr) {
    if (std::strcmp(journal_jsonl, "stderr") == 0) {
      journal_sink = stderr;
    } else {
      journal_sink = std::fopen(journal_jsonl, "ab");
      if (journal_sink == nullptr) {
        std::fprintf(stderr, "cannot open --journal-jsonl %s\n",
                     journal_jsonl);
        return 2;
      }
    }
  }
  obs::EventJournal journal(journal_slots, journal_sink);
  if (journal.enabled()) {
    backend->AttachJournal(&journal);
    options.journal = &journal;
  }
  if (deform.kind != DeformerKind::kNone) {
    if (retention.spill_path.empty()) {
      // Per-instance default: two servers over the same input must not
      // truncate each other's live sidecar (Create opens "w+b").
      retention.spill_path = std::string(argv[2]) + "." +
                             std::to_string(getpid()) + ".oct2d";
    }
    const Status configured = backend->ConfigureRetention(retention);
    if (!configured.ok()) {
      std::fprintf(stderr, "%s\n", configured.ToString().c_str());
      return 2;
    }
    const Status bound = backend->BindDeformer(deform);
    if (!bound.ok()) {
      std::fprintf(stderr, "%s\n", bound.ToString().c_str());
      return 1;
    }
  }

  server::QueryServer srv(std::move(backend), options);
  const Status started = srv.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  g_server.store(&srv, std::memory_order_release);
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::printf("octopus_cli %s serving %s (%s, %ld engine thread(s)%s%s) "
              "on port %u\n",
              kVersionString, argv[2],
              paged ? "out-of-core" : "in-memory", threads,
              deform.kind != DeformerKind::kNone ? ", deformer " : "",
              deform.kind != DeformerKind::kNone
                  ? DeformerKindName(deform.kind)
                  : "",
              srv.port());
  if (options.metrics_port >= 0) {
    std::printf("introspection: http://%s:%u{/metrics,/healthz,/readyz,"
                "/epochs,/journal}\n",
                options.bind_address.c_str(), srv.metrics_port());
  }
  if (journal.enabled()) {
    std::printf("journal: %zu ring slot(s)%s%s\n", journal.capacity(),
                journal_jsonl != nullptr ? ", jsonl to " : "",
                journal_jsonl != nullptr ? journal_jsonl : "");
  }
  std::fflush(stdout);

  // The SIMULATE side: a stepper thread advancing the epoch while the
  // loop serves queries — the paper's Fig. 1(e) timeline, live.
  std::atomic<bool> stepper_stop{false};
  std::thread stepper;
  if (step_every_ms > 0) {
    stepper = std::thread([&srv, &stepper_stop, step_every_ms] {
      while (!stepper_stop.load(std::memory_order_acquire)) {
        // Sleep in short slices so shutdown never waits out a long
        // step interval before the join below can complete.
        for (long slept = 0;
             slept < step_every_ms &&
             !stepper_stop.load(std::memory_order_acquire);
             slept += 50) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              std::min<long>(50, step_every_ms - slept)));
        }
        if (stepper_stop.load(std::memory_order_acquire)) break;
        srv.backend()->AdvanceStep();
      }
    });
  }

  const Status run = srv.Run();
  stepper_stop.store(true, std::memory_order_release);
  if (stepper.joinable()) stepper.join();
  g_server.store(nullptr, std::memory_order_release);
  // Every emitter is quiet now (loop drained, stepper joined).
  if (journal_sink != nullptr && journal_sink != stderr) {
    std::fclose(journal_sink);
  }
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.ToString().c_str());
    return 1;
  }
  const server::ServerMetrics& m = srv.metrics();
  std::printf("served %llu queries in %llu batches (coalesce factor "
              "%.2f) over %llu connection(s), %u simulation step(s) "
              "applied\n",
              static_cast<unsigned long long>(m.queries_executed),
              static_cast<unsigned long long>(m.batches_executed),
              m.CoalesceFactor(),
              static_cast<unsigned long long>(m.connections_accepted),
              srv.backend()->CurrentEpoch().step);
  return 0;
}

int CmdStep(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string host;
  uint16_t port = 0;
  if (!ParseHostPort(argv[2], &host, &port)) return Usage();
  long steps = 1;
  if (argc > 3) {
    char* end = nullptr;
    steps = std::strtol(argv[3], &end, 10);
    if (end == argv[3] || *end != '\0' || steps < 0 ||
        steps > static_cast<long>(server::kMaxStepsPerFrame)) {
      return Usage();
    }
  }
  auto connected = client::RemoteClient::Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.status().ToString().c_str());
    return 1;
  }
  auto info = connected.Value()->Step(static_cast<uint32_t>(steps));
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }
  std::printf("epoch %llu, step %u (%s%s)",
              static_cast<unsigned long long>(info.Value().epoch),
              info.Value().step,
              info.Value().dynamic != 0 ? "deformer " : "static mesh",
              info.Value().dynamic != 0
                  ? DeformerKindName(static_cast<DeformerKind>(
                        info.Value().deformer_kind))
                  : "");
  if (info.Value().last_step_pages_rewritten > 0) {
    std::printf(", %llu position page(s) rewritten by the last step",
                static_cast<unsigned long long>(
                    info.Value().last_step_pages_rewritten));
  }
  std::printf("\n");
  return 0;
}

int CmdTrace(int argc, char** argv) {
  // octopus_cli trace dump <host:port> [--out FILE]
  //             [--merge-client SPANLOG]
  if (argc < 4 || std::strcmp(argv[2], "dump") != 0) return Usage();
  std::string host;
  uint16_t port = 0;
  if (!ParseHostPort(argv[3], &host, &port)) return Usage();
  const char* out_path = nullptr;
  const char* merge_client = nullptr;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--merge-client") == 0 &&
               i + 1 < argc) {
      merge_client = argv[++i];
    } else {
      return Usage();
    }
  }
  std::vector<obs::ClientCallSpan> spans;
  if (merge_client != nullptr) {
    std::FILE* f = std::fopen(merge_client, "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open --merge-client %s\n",
                   merge_client);
      return 1;
    }
    char line[1024];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      obs::ClientCallSpan span;
      if (obs::ParseClientCallSpanJson(line, &span)) {
        spans.push_back(span);
      }
    }
    std::fclose(f);
    if (spans.empty()) {
      std::fprintf(stderr, "no client spans in %s (run query --remote "
                   "... --span-log first)\n",
                   merge_client);
      return 1;
    }
  }
  auto connected = client::RemoteClient::Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.status().ToString().c_str());
    return 1;
  }
  auto dump = connected.Value()->FetchTraceDump();
  if (!dump.ok()) {
    std::fprintf(stderr, "%s\n", dump.status().ToString().c_str());
    return 1;
  }
  const std::string json =
      merge_client != nullptr
          ? obs::MergedChromeTraceJson(dump.Value().records, spans)
          : obs::ChromeTraceJson(dump.Value().records);
  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "wb");
    if (f == nullptr ||
        std::fwrite(json.data(), 1, json.size(), f) != json.size() ||
        std::fclose(f) != 0) {
      if (f != nullptr) std::fclose(f);
      std::fprintf(stderr, "failed to write %s\n", out_path);
      return 1;
    }
    std::fprintf(stderr,
                 "wrote %zu trace record(s) (of %llu recorded) to %s\n",
                 dump.Value().records.size(),
                 static_cast<unsigned long long>(
                     dump.Value().total_recorded),
                 out_path);
  } else {
    std::fwrite(json.data(), 1, json.size(), stdout);
    std::fputc('\n', stdout);
  }
  if (dump.Value().records.empty()) {
    std::fprintf(stderr,
                 "note: the server returned no trace records (tracing "
                 "may be disabled: serve --trace-ring 0)\n");
  }
  return 0;
}

int CmdExport(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto mesh = LoadMesh(argv[2]);
  if (!mesh.ok()) {
    std::fprintf(stderr, "%s\n", mesh.status().ToString().c_str());
    return 1;
  }
  const Status st = ExportSurfaceObj(mesh.Value(), argv[3]);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", argv[3]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0 ||
      std::strcmp(argv[1], "help") == 0) {
    PrintUsage(stdout);
    return 0;
  }
  if (std::strcmp(argv[1], "--version") == 0 ||
      std::strcmp(argv[1], "version") == 0) {
    std::printf("octopus_cli %s (OCTP protocol v%u, OCT1/OCT2 formats)\n",
                octopus::kVersionString,
                static_cast<unsigned>(octopus::server::kProtocolVersion));
    return 0;
  }
  if (std::strcmp(argv[1], "generate") == 0) return CmdGenerate(argc, argv);
  if (std::strcmp(argv[1], "info") == 0) return CmdInfo(argc, argv);
  if (std::strcmp(argv[1], "query") == 0) return CmdQuery(argc, argv);
  if (std::strcmp(argv[1], "snapshot") == 0) return CmdSnapshot(argc, argv);
  if (std::strcmp(argv[1], "export") == 0) return CmdExport(argc, argv);
  if (std::strcmp(argv[1], "bench") == 0) return CmdBench(argc, argv);
  if (std::strcmp(argv[1], "serve") == 0) return CmdServe(argc, argv);
  if (std::strcmp(argv[1], "step") == 0) return CmdStep(argc, argv);
  if (std::strcmp(argv[1], "trace") == 0) return CmdTrace(argc, argv);
  return Usage();
}
