#!/usr/bin/env python3
"""Validates a Prometheus /metrics scrape from the OCTOPUS server.

Checks performed on one exposition file:

  * every sample line parses as `name{labels} value` with a legal
    metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`) and a finite value;
  * every sample is preceded by `# HELP` and `# TYPE` comments for its
    family, and the declared type is one of counter/gauge/histogram;
  * counter families end in `_total` (or the histogram-generated
    `_sum`/`_count`/`_bucket` suffixes);
  * histogram families are internally consistent: `_bucket` cumulative
    counts are non-decreasing, the `+Inf` bucket equals `_count`;
  * the required metric set for the query server is present (the names
    `docs/OBSERVABILITY.md` documents).

Given a second scrape taken later from the same server, additionally
checks that every counter present in both is monotone non-decreasing.

Saved bodies of the JSON introspection endpoints are validated too:

  * --healthz FILE  — must be exactly "ok\n";
  * --readyz FILE   — well-formed readiness document, ready == true
    (the CI server is healthy by construction);
  * --epochs FILE   — retention-ring document: entries ascend by epoch,
    per-entry resident bytes sum to the store total, spill counters
    present when spill is enabled;
  * --journal FILE  — event-journal document: known kinds only, seq
    strictly increasing, ring bounded by capacity. Passing --journal
    also adds the two journal metrics to the required /metrics set.

Usage: check_metrics.py scrape.txt [later_scrape.txt]
           [--healthz F] [--readyz F] [--epochs F] [--journal F]
"""

import argparse
import json
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>\S+)$")

REQUIRED = [
    "octopus_connections_accepted_total",
    "octopus_connections_closed_total",
    "octopus_connections_active",
    "octopus_io_threads",
    "octopus_frames_received_total",
    "octopus_malformed_frames_total",
    "octopus_queries_received_total",
    "octopus_queries_rejected_total",
    "octopus_queries_executed_total",
    "octopus_batches_executed_total",
    "octopus_results_sent_total",
    "octopus_errors_sent_total",
    "octopus_slow_queries_total",
    "octopus_serialize_seconds_total",
    "octopus_request_latency_seconds",
    "octopus_loop_stall_seconds",
    "octopus_engine_probe_seconds_total",
    "octopus_engine_walk_seconds_total",
    "octopus_engine_crawl_seconds_total",
    "octopus_engine_merge_seconds_total",
    "octopus_page_hits_total",
    "octopus_page_misses_total",
    "octopus_page_evictions_total",
    "octopus_lease_hits_total",
    "octopus_pages_leased_total",
    "octopus_pages_distinct_total",
    "octopus_lease_revocations_total",
    "octopus_current_epoch",
    "octopus_steps_applied_total",
    "octopus_sessions_pinned_epochs",
    "octopus_trace_records_total",
    "octopus_trace_ring_records",
]

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")

JOURNAL_METRICS = [
    "octopus_journal_events_total",
    "octopus_journal_ring_events",
]

EVENT_KINDS = {
    "step_applied", "epoch_published", "epoch_spilled", "epoch_reloaded",
    "epoch_evicted", "epoch_pinned", "epoch_unpinned", "session_opened",
    "session_closed", "overload_rejected", "drain_began", "drain_ended",
}


def family_of(name: str, types: dict) -> str:
    """Maps a sample name to its declared family (histograms declare
    the bare name but emit suffixed samples)."""
    if name in types:
        return name
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return name


def parse(path: str, failures: list):
    """Returns ({sample_key: value}, {family: type})."""
    samples = {}
    types = {}
    helps = set()
    with open(path) as f:
        lines = f.read().splitlines()
    for i, line in enumerate(lines, 1):
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not NAME_RE.match(parts[2]):
                failures.append(f"{path}:{i}: malformed HELP: {line!r}")
                continue
            helps.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if (len(parts) != 4 or not NAME_RE.match(parts[2])
                    or parts[3] not in ("counter", "gauge", "histogram")):
                failures.append(f"{path}:{i}: malformed TYPE: {line!r}")
                continue
            if parts[2] not in helps:
                failures.append(f"{path}:{i}: TYPE for {parts[2]} "
                                f"without a preceding HELP")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            failures.append(f"{path}:{i}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        try:
            value = float(m.group("value"))
        except ValueError:
            failures.append(f"{path}:{i}: bad value: {line!r}")
            continue
        if not math.isfinite(value):
            failures.append(f"{path}:{i}: non-finite value: {line!r}")
            continue
        family = family_of(name, types)
        if family not in types:
            failures.append(f"{path}:{i}: sample {name} has no TYPE")
            continue
        if (types[family] == "counter" and family == name
                and not name.endswith("_total")):
            failures.append(f"{path}:{i}: counter {name} does not end "
                            f"in _total")
        if value < 0 and types[family] != "gauge":
            failures.append(f"{path}:{i}: negative non-gauge: {line!r}")
        samples[name + (m.group("labels") or "")] = value
    return samples, types


def check_histograms(path, samples, types, failures):
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = []  # (le, cumulative) in exposition order
        for key, value in samples.items():
            if key.startswith(family + "_bucket{le=\""):
                le = key[len(family) + 12:key.rindex("\"")]
                buckets.append((le, value))
        count = samples.get(family + "_count")
        if count is None or samples.get(family + "_sum") is None:
            failures.append(f"{path}: histogram {family} missing "
                            f"_sum/_count")
            continue
        if not buckets or buckets[-1][0] != "+Inf":
            failures.append(f"{path}: histogram {family} missing the "
                            f"+Inf bucket")
            continue
        if buckets[-1][1] != count:
            failures.append(f"{path}: histogram {family}: +Inf bucket "
                            f"{buckets[-1][1]} != _count {count}")
        cumulative = [v for _, v in buckets]
        if cumulative != sorted(cumulative):
            failures.append(f"{path}: histogram {family}: bucket counts "
                            f"are not cumulative")


def load_json(path: str, failures: list):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        failures.append(f"{path}: not valid JSON: {e}")
        return None


def is_uint(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) \
        and value >= 0


def check_healthz(path: str, failures: list):
    try:
        with open(path) as f:
            body = f.read()
    except OSError as e:
        failures.append(f"{path}: {e}")
        return
    if body != "ok\n":
        failures.append(f"{path}: /healthz body is {body!r}, not 'ok\\n'")


def check_readyz(path: str, failures: list):
    doc = load_json(path, failures)
    if doc is None:
        return
    for key, kinds in (("ready", bool), ("dynamic", bool),
                       ("max_publish_lag_seconds", (int, float)),
                       ("spill_failed_epochs", int),
                       ("reason", str)):
        if not isinstance(doc.get(key), kinds):
            failures.append(f"{path}: /readyz field {key} missing or "
                            f"mistyped: {doc.get(key)!r}")
    lag = doc.get("publish_lag_seconds")
    if lag is not None and not isinstance(lag, (int, float)):
        failures.append(f"{path}: publish_lag_seconds must be a number "
                        f"or null, got {lag!r}")
    if doc.get("ready") is not True:
        failures.append(f"{path}: server reports not ready "
                        f"(reason: {doc.get('reason')!r})")


def check_epochs(path: str, failures: list):
    doc = load_json(path, failures)
    if doc is None:
        return
    if not isinstance(doc.get("dynamic"), bool) \
            or not is_uint(doc.get("current_epoch")) \
            or not is_uint(doc.get("current_step")) \
            or not isinstance(doc.get("entries"), list):
        failures.append(f"{path}: /epochs missing dynamic/current_epoch/"
                        f"current_step/entries")
        return
    if not doc["dynamic"]:
        if doc["entries"]:
            failures.append(f"{path}: static backend reports retention "
                            f"entries")
        return
    spill = doc.get("spill")
    if not isinstance(spill, dict) or not isinstance(
            spill.get("enabled"), bool):
        failures.append(f"{path}: /epochs spill block missing")
        spill = {}
    if spill.get("enabled") and not (
            is_uint(spill.get("pages_written"))
            and is_uint(spill.get("bytes_written"))):
        failures.append(f"{path}: spill enabled but counters missing")
    last_epoch = -1
    resident_sum = 0
    for i, entry in enumerate(doc["entries"]):
        for key in ("epoch", "step", "pins", "resident_bytes"):
            if not is_uint(entry.get(key)):
                failures.append(f"{path}: entry {i} field {key} missing "
                                f"or mistyped")
        for key in ("resident", "spilled", "spill_failed"):
            if not isinstance(entry.get(key), bool):
                failures.append(f"{path}: entry {i} field {key} missing "
                                f"or mistyped")
        if entry.get("epoch", 0) <= last_epoch:
            failures.append(f"{path}: entries not ascending at index {i}")
        last_epoch = entry.get("epoch", last_epoch)
        resident_sum += entry.get("resident_bytes", 0)
    if is_uint(doc.get("resident_bytes")) \
            and resident_sum != doc["resident_bytes"]:
        failures.append(
            f"{path}: per-entry resident bytes sum to {resident_sum}, "
            f"header says {doc['resident_bytes']}")


def check_journal(path: str, failures: list):
    doc = load_json(path, failures)
    if doc is None:
        return
    if not is_uint(doc.get("total")) or not is_uint(doc.get("capacity")) \
            or not isinstance(doc.get("events"), list):
        failures.append(f"{path}: /journal missing total/capacity/events")
        return
    events = doc["events"]
    if doc["capacity"] and len(events) > doc["capacity"]:
        failures.append(f"{path}: {len(events)} events exceed the ring "
                        f"capacity {doc['capacity']}")
    if doc["total"] < len(events):
        failures.append(f"{path}: total {doc['total']} below the "
                        f"{len(events)} events held")
    prev_seq = 0
    for i, event in enumerate(events):
        for key in ("seq", "epoch", "session", "a", "b"):
            if not is_uint(event.get(key)):
                failures.append(f"{path}: event {i} field {key} missing "
                                f"or mistyped")
        if not isinstance(event.get("unix_nanos"), int):
            failures.append(f"{path}: event {i} unix_nanos mistyped")
        if event.get("kind") not in EVENT_KINDS:
            failures.append(f"{path}: event {i} has unknown kind "
                            f"{event.get('kind')!r}")
        if event.get("seq", 0) <= prev_seq:
            failures.append(f"{path}: event seq not increasing at "
                            f"index {i}")
        prev_seq = event.get("seq", prev_seq)


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Validate OCTOPUS introspection endpoint bodies.")
    parser.add_argument("scrape", help="/metrics exposition text")
    parser.add_argument("later_scrape", nargs="?",
                        help="a later scrape for monotonicity checks")
    parser.add_argument("--healthz", help="saved /healthz body")
    parser.add_argument("--readyz", help="saved /readyz body")
    parser.add_argument("--epochs", help="saved /epochs body")
    parser.add_argument("--journal", help="saved /journal body")
    args = parser.parse_args()

    failures = []
    samples, types = parse(args.scrape, failures)
    check_histograms(args.scrape, samples, types, failures)
    required = REQUIRED + (JOURNAL_METRICS if args.journal else [])
    for name in required:
        if name not in types:
            failures.append(f"{args.scrape}: required metric {name} "
                            f"is missing")

    if args.later_scrape:
        later, later_types = parse(args.later_scrape, failures)
        check_histograms(args.later_scrape, later, later_types, failures)
        for key, value in samples.items():
            family = family_of(key.split("{")[0], types)
            if types.get(family) == "gauge":
                continue
            if key in later and later[key] < value:
                failures.append(
                    f"counter {key} went backwards between scrapes: "
                    f"{value} -> {later[key]}")
        # Merge consistency for histograms with elided empty buckets:
        # cumulative bucket counts never decrease, so every bucket key
        # the first scrape exposed must still be exposed later — a
        # vanished `le` means a shard was dropped from the merge, not
        # that the bucket emptied.
        for family, kind in types.items():
            if kind != "histogram":
                continue
            prefix = family + "_bucket{"
            earlier_keys = {k for k in samples if k.startswith(prefix)}
            later_keys = {k for k in later if k.startswith(prefix)}
            missing = earlier_keys - later_keys
            if missing:
                failures.append(
                    f"histogram {family}: bucket series vanished "
                    f"between scrapes: {sorted(missing)[:3]}")

    if args.healthz:
        check_healthz(args.healthz, failures)
    if args.readyz:
        check_readyz(args.readyz, failures)
    if args.epochs:
        check_epochs(args.epochs, failures)
    if args.journal:
        check_journal(args.journal, failures)

    print(f"check_metrics: {len(samples)} samples, "
          f"{len(types)} families, "
          f"{len([t for t in types.values() if t == 'histogram'])} "
          f"histograms")
    for msg in failures:
        print(f"FAIL: {msg}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
