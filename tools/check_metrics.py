#!/usr/bin/env python3
"""Validates a Prometheus /metrics scrape from the OCTOPUS server.

Checks performed on one exposition file:

  * every sample line parses as `name{labels} value` with a legal
    metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`) and a finite value;
  * every sample is preceded by `# HELP` and `# TYPE` comments for its
    family, and the declared type is one of counter/gauge/histogram;
  * counter families end in `_total` (or the histogram-generated
    `_sum`/`_count`/`_bucket` suffixes);
  * histogram families are internally consistent: `_bucket` cumulative
    counts are non-decreasing, the `+Inf` bucket equals `_count`;
  * the required metric set for the query server is present (the names
    `docs/OBSERVABILITY.md` documents).

Given a second scrape taken later from the same server, additionally
checks that every counter present in both is monotone non-decreasing.

Usage: check_metrics.py scrape.txt [later_scrape.txt]
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>\S+)$")

REQUIRED = [
    "octopus_connections_accepted_total",
    "octopus_connections_closed_total",
    "octopus_connections_active",
    "octopus_frames_received_total",
    "octopus_malformed_frames_total",
    "octopus_queries_received_total",
    "octopus_queries_rejected_total",
    "octopus_queries_executed_total",
    "octopus_batches_executed_total",
    "octopus_results_sent_total",
    "octopus_errors_sent_total",
    "octopus_slow_queries_total",
    "octopus_serialize_seconds_total",
    "octopus_request_latency_seconds",
    "octopus_loop_stall_seconds",
    "octopus_engine_probe_seconds_total",
    "octopus_engine_walk_seconds_total",
    "octopus_engine_crawl_seconds_total",
    "octopus_engine_merge_seconds_total",
    "octopus_page_hits_total",
    "octopus_page_misses_total",
    "octopus_page_evictions_total",
    "octopus_lease_hits_total",
    "octopus_pages_leased_total",
    "octopus_pages_distinct_total",
    "octopus_lease_revocations_total",
    "octopus_current_epoch",
    "octopus_steps_applied_total",
    "octopus_sessions_pinned_epochs",
    "octopus_trace_records_total",
    "octopus_trace_ring_records",
]

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(name: str, types: dict) -> str:
    """Maps a sample name to its declared family (histograms declare
    the bare name but emit suffixed samples)."""
    if name in types:
        return name
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return name


def parse(path: str, failures: list):
    """Returns ({sample_key: value}, {family: type})."""
    samples = {}
    types = {}
    helps = set()
    with open(path) as f:
        lines = f.read().splitlines()
    for i, line in enumerate(lines, 1):
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not NAME_RE.match(parts[2]):
                failures.append(f"{path}:{i}: malformed HELP: {line!r}")
                continue
            helps.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if (len(parts) != 4 or not NAME_RE.match(parts[2])
                    or parts[3] not in ("counter", "gauge", "histogram")):
                failures.append(f"{path}:{i}: malformed TYPE: {line!r}")
                continue
            if parts[2] not in helps:
                failures.append(f"{path}:{i}: TYPE for {parts[2]} "
                                f"without a preceding HELP")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            failures.append(f"{path}:{i}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        try:
            value = float(m.group("value"))
        except ValueError:
            failures.append(f"{path}:{i}: bad value: {line!r}")
            continue
        if not math.isfinite(value):
            failures.append(f"{path}:{i}: non-finite value: {line!r}")
            continue
        family = family_of(name, types)
        if family not in types:
            failures.append(f"{path}:{i}: sample {name} has no TYPE")
            continue
        if (types[family] == "counter" and family == name
                and not name.endswith("_total")):
            failures.append(f"{path}:{i}: counter {name} does not end "
                            f"in _total")
        if value < 0 and types[family] != "gauge":
            failures.append(f"{path}:{i}: negative non-gauge: {line!r}")
        samples[name + (m.group("labels") or "")] = value
    return samples, types


def check_histograms(path, samples, types, failures):
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = []  # (le, cumulative) in exposition order
        for key, value in samples.items():
            if key.startswith(family + "_bucket{le=\""):
                le = key[len(family) + 12:key.rindex("\"")]
                buckets.append((le, value))
        count = samples.get(family + "_count")
        if count is None or samples.get(family + "_sum") is None:
            failures.append(f"{path}: histogram {family} missing "
                            f"_sum/_count")
            continue
        if not buckets or buckets[-1][0] != "+Inf":
            failures.append(f"{path}: histogram {family} missing the "
                            f"+Inf bucket")
            continue
        if buckets[-1][1] != count:
            failures.append(f"{path}: histogram {family}: +Inf bucket "
                            f"{buckets[-1][1]} != _count {count}")
        cumulative = [v for _, v in buckets]
        if cumulative != sorted(cumulative):
            failures.append(f"{path}: histogram {family}: bucket counts "
                            f"are not cumulative")


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    failures = []
    samples, types = parse(sys.argv[1], failures)
    check_histograms(sys.argv[1], samples, types, failures)
    for name in REQUIRED:
        if name not in types:
            failures.append(f"{sys.argv[1]}: required metric {name} "
                            f"is missing")

    if len(sys.argv) > 2:
        later, later_types = parse(sys.argv[2], failures)
        check_histograms(sys.argv[2], later, later_types, failures)
        for key, value in samples.items():
            family = family_of(key.split("{")[0], types)
            if types.get(family) == "gauge":
                continue
            if key in later and later[key] < value:
                failures.append(
                    f"counter {key} went backwards between scrapes: "
                    f"{value} -> {later[key]}")

    print(f"check_metrics: {len(samples)} samples, "
          f"{len(types)} families, "
          f"{len([t for t in types.values() if t == 'histogram'])} "
          f"histograms")
    for msg in failures:
        print(f"FAIL: {msg}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
