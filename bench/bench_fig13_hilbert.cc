// Copyright 2026 The OCTOPUS Reproduction Authors
// Reproduces paper Fig. 13 — the graph data organization optimization
// (Sec. IV-H1): sorting vertices in Hilbert order to improve the cache
// behaviour of the crawling phase.
//  (a) phase time (probe / crawl) with and without the Hilbert layout
//  (b) relative speedup [%] vs query selectivity
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "mesh/generators/datasets.h"
#include "mesh/hilbert_layout.h"
#include "octopus/query_executor.h"

namespace {
using octopus::Table;
using octopus::TetraMesh;
namespace bench = octopus::bench;
}  // namespace

int main() {
  const double scale = bench::ScaleFromEnv();
  const int steps = bench::StepsFromEnv(60);
  std::printf("OCTOPUS reproduction — Fig. 13: Hilbert data layout "
              "(scale %.3g, %d steps, 15 q/step)\n\n",
              scale, steps);

  auto r = octopus::MakeNeuroMesh(octopus::kNumNeuroLevels - 1, scale);
  if (!r.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 r.status().ToString().c_str());
    return 1;
  }
  const TetraMesh original = r.MoveValue();
  const TetraMesh sorted = octopus::ApplyPermutation(
      original, octopus::ComputeHilbertOrder(original));

  Table t("Fig. 13 — Hilbert layout effect on OCTOPUS phases");
  t.SetHeader({"Selectivity [%]", "Probe w/o [s]", "Probe with [s]",
               "Crawl w/o [s]", "Crawl with [s]", "Total speedup [%]"});

  for (const double sel_pct : {0.01, 0.05, 0.1, 0.15, 0.2}) {
    const double sel = sel_pct / 100.0;

    auto run_on = [&](const TetraMesh& mesh, octopus::PhaseStats* stats) {
      const bench::StepWorkload workload = bench::MakeStepWorkload(
          mesh, steps, 15, 15, sel, sel, 0xD00);
      octopus::Octopus octo;
      const bench::RunResult run = bench::RunApproach(
          &octo, mesh, bench::NeuroDeformerFactory(mesh), workload);
      *stats = octo.stats();
      return run.TotalSeconds();
    };

    octopus::PhaseStats plain_stats;
    octopus::PhaseStats sorted_stats;
    const double plain_s = run_on(original, &plain_stats);
    const double sorted_s = run_on(sorted, &sorted_stats);
    const double speedup_pct = 100.0 * (plain_s - sorted_s) / plain_s;
    t.AddRow({Table::Num(sel_pct, 2),
              Table::Num(plain_stats.probe_nanos * 1e-9, 3),
              Table::Num(sorted_stats.probe_nanos * 1e-9, 3),
              Table::Num(plain_stats.crawl_nanos * 1e-9, 3),
              Table::Num(sorted_stats.crawl_nanos * 1e-9, 3),
              Table::Num(speedup_pct, 1)});
  }
  t.Print();
  std::printf(
      "\nExpected shape (paper Fig. 13): the surface probe is unaffected; "
      "crawling gets faster with the layout,\nand the benefit grows with "
      "selectivity (bigger results -> more traversal -> more cache misses "
      "saved).\nNote: the masked-grid generator already emits spatially "
      "coherent ids, so the gain here is smaller than\nthe paper's (their "
      "meshes arrive in arbitrary order).\n");
  return 0;
}
