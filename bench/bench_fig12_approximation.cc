// Copyright 2026 The OCTOPUS Reproduction Authors
// Reproduces paper Fig. 12 — the surface-approximation optimization
// (Sec. IV-H2): probing only a random fraction of the surface vertices.
//  (a) result accuracy vs approximation fraction
//  (b) speedup over exact OCTOPUS vs approximation fraction
// for selectivities 0.01% and 0.1%.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "mesh/generators/datasets.h"
#include "octopus/query_executor.h"

namespace {
using octopus::Table;
using octopus::TetraMesh;
namespace bench = octopus::bench;
}  // namespace

int main() {
  const double scale = bench::ScaleFromEnv();
  const int steps = bench::StepsFromEnv(60);
  std::printf("OCTOPUS reproduction — Fig. 12: surface approximation "
              "(scale %.3g, %d steps, 15 q/step)\n\n",
              scale, steps);

  auto r = octopus::MakeNeuroMesh(octopus::kNumNeuroLevels - 1, scale);
  if (!r.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 r.status().ToString().c_str());
    return 1;
  }
  const TetraMesh mesh = r.MoveValue();
  const bench::DeformerFactory deformer = bench::NeuroDeformerFactory(mesh);

  Table t("Fig. 12 — Surface approximation: accuracy (a) and speedup (b)");
  t.SetHeader({"Selectivity [%]", "Approximation [%]",
               "Result accuracy [%]", "Speedup vs exact OCTOPUS [x]"});

  for (const double sel_pct : {0.01, 0.1}) {
    const double sel = sel_pct / 100.0;
    const bench::StepWorkload workload = bench::MakeStepWorkload(
        mesh, steps, 15, 15, sel, sel, 0xC00);

    // Exact baseline (approximation fraction 1.0 = probe everything).
    octopus::Octopus exact;
    const bench::RunResult exact_run =
        bench::RunApproach(&exact, mesh, deformer, workload);

    for (const double approx_pct : {0.01, 0.1, 1.0, 10.0, 100.0}) {
      octopus::Octopus approx(octopus::OctopusOptions{
          .surface_sample_fraction = approx_pct / 100.0});
      const bench::RunResult run =
          bench::RunApproach(&approx, mesh, deformer, workload);
      const double accuracy =
          exact_run.total_results == 0
              ? 100.0
              : 100.0 * static_cast<double>(run.total_results) /
                    static_cast<double>(exact_run.total_results);
      const double speedup =
          exact_run.TotalSeconds() / std::max(run.TotalSeconds(), 1e-12);
      t.AddRow({Table::Num(sel_pct, 2), Table::Num(approx_pct, 2),
                Table::Num(accuracy, 1), Table::Num(speedup, 1)});
    }
  }
  t.Print();
  std::printf(
      "\nExpected shape (paper Fig. 12): accuracy stays >90%% down to an "
      "approximation of ~0.1%% of the surface\n(neighboring elements move "
      "together, so a few starts recover the whole result), then collapses; "
      "the\nspeedup grows as the probe shrinks, and is larger for the "
      "lower selectivity (probe-dominated) workload.\n");
  return 0;
}
