// Copyright 2026 The OCTOPUS Reproduction Authors
// Ablation for Sec. IV-E2 / VI-A: surface-index maintenance under mesh
// restructuring. The paper's claim is two-fold: deformation needs NO
// maintenance at all, and the rare connectivity changes are absorbed by
// incremental insert/delete on the hash table instead of a full rebuild.
// This bench measures incremental maintenance vs from-scratch rebuild
// across restructuring batch sizes.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"
#include "mesh/generators/datasets.h"
#include "octopus/surface_index.h"
#include "sim/restructurer.h"

namespace {
using octopus::Table;
namespace bench = octopus::bench;
}  // namespace

int main() {
  const double scale = bench::ScaleFromEnv();
  std::printf("OCTOPUS ablation — restructuring maintenance "
              "(Sec. IV-E2 / VI-A), scale %.3g\n\n",
              scale);

  auto r = octopus::MakeNeuroMesh(2, scale);
  if (!r.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 r.status().ToString().c_str());
    return 1;
  }

  Table t("Surface-index maintenance: incremental vs rebuild");
  t.SetHeader({"Batch [tet splits]", "Incremental [ms]", "Rebuild [ms]",
               "Rebuild / incremental", "Surface verts after"});

  for (const int batch : {1, 10, 100, 1000}) {
    octopus::TetraMesh mesh = r.Value();  // fresh copy per batch size
    octopus::SurfaceIndex incremental(
        octopus::SurfaceIndex::Options{.support_restructuring = true});
    incremental.Build(mesh);

    octopus::Rng rng(0xBA7C4 + batch);
    auto delta = octopus::RandomRefinement(&mesh, batch, &rng);
    if (!delta.ok()) return 1;

    octopus::Timer timer;
    incremental.ApplyDelta(delta.Value());
    const double incremental_ms = timer.ElapsedMillis();

    timer.Restart();
    octopus::SurfaceIndex rebuilt;
    rebuilt.Build(mesh);
    const double rebuild_ms = timer.ElapsedMillis();

    t.AddRow({Table::Count(batch), Table::Num(incremental_ms, 3),
              Table::Num(rebuild_ms, 3),
              Table::Num(rebuild_ms / std::max(incremental_ms, 1e-6), 0) +
                  "x",
              Table::Count(incremental.num_surface_vertices())});
  }
  t.Print();
  std::printf(
      "\nExpected shape: incremental maintenance costs microseconds per "
      "event and stays orders of magnitude\nbelow a rebuild for realistic "
      "(small) restructuring batches; the advantage shrinks as the batch "
      "\napproaches the whole mesh. Deformation-only steps cost exactly "
      "zero maintenance by construction.\n");
  return 0;
}
