// Copyright 2026 The OCTOPUS Reproduction Authors
// Reproduces paper Fig. 7 — sensitivity analysis of OCTOPUS vs LinearScan:
//  (a,b) total response time & speedup vs mesh detail, fixed query volume
//  (c,d) same, with query volume shrunk to keep the result count fixed
//  (e,f) total response time & speedup vs number of time steps
//  (g,h) speedup vs query selectivity
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "index/linear_scan.h"
#include "mesh/generators/datasets.h"
#include "octopus/query_executor.h"
#include "sim/workload.h"

namespace {

using octopus::AABB;
using octopus::LinearScan;
using octopus::Octopus;
using octopus::Table;
using octopus::TetraMesh;
namespace bench = octopus::bench;

struct Pair {
  double octopus_s = 0.0;
  double scan_s = 0.0;
  double Speedup() const { return scan_s / octopus_s; }
};

Pair RunBoth(const TetraMesh& mesh, const bench::StepWorkload& workload) {
  const bench::DeformerFactory deformer = bench::NeuroDeformerFactory(mesh);
  Octopus octopus;
  LinearScan scan;
  Pair p;
  p.octopus_s =
      bench::RunApproach(&octopus, mesh, deformer, workload).TotalSeconds();
  p.scan_s =
      bench::RunApproach(&scan, mesh, deformer, workload).TotalSeconds();
  return p;
}

// Re-targets a workload's query boxes onto `mesh` without changing their
// volumes: recenters each box at a random vertex of `mesh`. Used for the
// fixed-query-volume experiment (a,b), where the same physical query size
// runs against every detail level.
bench::StepWorkload RecenterWorkload(const bench::StepWorkload& base,
                                     const TetraMesh& mesh, uint64_t seed) {
  octopus::Rng rng(seed);
  bench::StepWorkload out = base;
  for (auto& step : out.per_step) {
    for (AABB& q : step) {
      const octopus::Vec3 half = q.Extent() * 0.5f;
      const octopus::Vec3 center = mesh.position(static_cast<octopus::VertexId>(
          rng.NextBelow(mesh.num_vertices())));
      q = AABB::FromCenterHalfExtent(center, half);
    }
  }
  return out;
}

}  // namespace

int main() {
  const double scale = bench::ScaleFromEnv();
  const int steps = bench::StepsFromEnv(60);
  std::printf("OCTOPUS reproduction — Fig. 7 sensitivity analysis "
              "(scale %.3g, %d steps)\n\n",
              scale, steps);

  // Generate all 5 detail levels once.
  std::vector<TetraMesh> levels;
  for (int level = 0; level < octopus::kNumNeuroLevels; ++level) {
    auto r = octopus::MakeNeuroMesh(level, scale);
    if (!r.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    levels.push_back(r.MoveValue());
  }

  // ---- (a,b) mesh detail, fixed query volume ----
  {
    // Queries sized for 0.1% selectivity on the COARSEST mesh, reused at
    // the same physical volume on every level (result count grows).
    const bench::StepWorkload base = bench::MakeStepWorkload(
        levels[0], steps, 15, 15, 0.001, 0.001, 0x71A);
    Table t("Fig. 7(a,b) — Mesh detail, fixed query volume");
    t.SetHeader({"Mesh detail [#verts]", "LinearScan [s]", "OCTOPUS [s]",
                 "Speedup [x]"});
    for (size_t level = 0; level < levels.size(); ++level) {
      const bench::StepWorkload workload =
          RecenterWorkload(base, levels[level], 0x71B + level);
      const Pair p = RunBoth(levels[level], workload);
      t.AddRow({Table::Count(levels[level].num_vertices()),
                Table::Num(p.scan_s, 3), Table::Num(p.octopus_s, 3),
                Table::Num(p.Speedup(), 1)});
    }
    t.Print();
    std::printf("Expected shape: scan time grows ~linearly with mesh size; "
                "OCTOPUS speedup grows with detail\n(paper: 8x -> 10x).\n\n");
  }

  // ---- (c,d) mesh detail, fixed result count ----
  {
    Table t("Fig. 7(c,d) — Mesh detail, fixed result count");
    t.SetHeader({"Mesh detail [#verts]", "LinearScan [s]", "OCTOPUS [s]",
                 "Speedup [x]"});
    // Target count: 0.1% of the coarsest level.
    const double target_count = 0.001 * levels[0].num_vertices();
    for (const TetraMesh& mesh : levels) {
      const double sel = target_count / mesh.num_vertices();
      const bench::StepWorkload workload =
          bench::MakeStepWorkload(mesh, steps, 15, 15, sel, sel, 0x7C0);
      const Pair p = RunBoth(mesh, workload);
      t.AddRow({Table::Count(mesh.num_vertices()), Table::Num(p.scan_s, 3),
                Table::Num(p.octopus_s, 3), Table::Num(p.Speedup(), 1)});
    }
    t.Print();
    std::printf("Expected shape: scan time still grows with mesh size while "
                "OCTOPUS time is decoupled from it;\nspeedup grows strongly "
                "(paper: 8x -> 23x).\n\n");
  }

  // ---- (e,f) number of time steps ----
  {
    Table t("Fig. 7(e,f) — Time steps (mesh: level 2, selectivity 0.1%)");
    t.SetHeader({"Time steps [#]", "LinearScan [s]", "OCTOPUS [s]",
                 "Speedup [x]"});
    const TetraMesh& mesh = levels[2];
    for (const int n : {20, 40, 60, 80, 100}) {
      const bench::StepWorkload workload =
          bench::MakeStepWorkload(mesh, n, 15, 15, 0.001, 0.001, 0x7E0);
      const Pair p = RunBoth(mesh, workload);
      t.AddRow({std::to_string(n), Table::Num(p.scan_s, 3),
                Table::Num(p.octopus_s, 3), Table::Num(p.Speedup(), 1)});
    }
    t.Print();
    std::printf("Expected shape: both grow linearly with step count; the "
                "speedup stays ~constant (paper: 9.5x).\n\n");
  }

  // ---- (g,h) query selectivity ----
  {
    // Uses the most detailed level: its lower surface:volume ratio makes
    // the crawl share (and hence the selectivity trend) visible.
    Table t("Fig. 7(g,h) — Query selectivity (mesh: level 4)");
    t.SetHeader({"Selectivity [%]", "LinearScan [s]", "OCTOPUS [s]",
                 "Speedup [x]"});
    const TetraMesh& mesh = levels[4];
    for (const double sel_pct : {0.01, 0.05, 0.1, 0.15, 0.2}) {
      const double sel = sel_pct / 100.0;
      const bench::StepWorkload workload =
          bench::MakeStepWorkload(mesh, steps, 15, 15, sel, sel, 0x7F0);
      const Pair p = RunBoth(mesh, workload);
      t.AddRow({Table::Num(sel_pct, 2), Table::Num(p.scan_s, 3),
                Table::Num(p.octopus_s, 3), Table::Num(p.Speedup(), 1)});
    }
    t.Print();
    std::printf("Expected shape: scan time flat in selectivity; OCTOPUS "
                "crawling grows with it, so the speedup\ndecreases (paper: "
                "17x -> 7x).\n");
  }
  return 0;
}
