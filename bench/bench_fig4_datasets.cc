// Copyright 2026 The OCTOPUS Reproduction Authors
// Reproduces paper Fig. 4: neuroscience dataset characterization.
// Prints the same columns (size, #tetrahedra, #vertices, mesh degree,
// surface:volume ratio) for the five synthetic detail levels, next to the
// paper's reported values for the real Blue Brain meshes (~1000x larger).
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "mesh/generators/datasets.h"
#include "mesh/mesh_stats.h"

namespace {

struct PaperRow {
  double size_gb;
  double tets_billions;
  double verts_millions;
  double degree;
  double surface_to_volume;
};

// Paper Fig. 4, top to bottom.
constexpr PaperRow kPaperRows[octopus::kNumNeuroLevels] = {
    {3.2, 0.13, 20.5, 14.5, 0.07},  {4.3, 0.17, 27.4, 14.6, 0.06},
    {6.5, 0.26, 41.1, 14.52, 0.05}, {12.0, 0.52, 82.7, 14.4, 0.04},
    {33.0, 1.32, 208.1, 14.51, 0.03},
};

}  // namespace

int main() {
  using octopus::Table;
  const double scale = octopus::bench::ScaleFromEnv();
  std::printf("OCTOPUS reproduction — Fig. 4: neuroscience dataset "
              "characterization (scale %.3g)\n\n",
              scale);

  Table table("Fig. 4 — Neuroscience Dataset Characterization");
  table.SetHeader({"Dataset", "Size [MB]", "# Tetrahedra", "# Vertices",
                   "Mesh Degree", "Surface:Volume",
                   "(paper: verts [M] / degree / S:V)"});
  for (int level = 0; level < octopus::kNumNeuroLevels; ++level) {
    auto mesh = octopus::MakeNeuroMesh(level, scale);
    if (!mesh.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   mesh.status().ToString().c_str());
      return 1;
    }
    const octopus::MeshStats s = octopus::ComputeMeshStats(mesh.Value());
    const PaperRow& p = kPaperRows[level];
    table.AddRow({octopus::NeuroMeshName(level),
                  Table::Num(static_cast<double>(s.memory_bytes) / 1e6, 1),
                  Table::Count(s.num_tetrahedra),
                  Table::Count(s.num_vertices),
                  Table::Num(s.mesh_degree, 2),
                  Table::Num(s.surface_to_volume, 3),
                  Table::Num(p.verts_millions, 1) + " / " +
                      Table::Num(p.degree, 1) + " / " +
                      Table::Num(p.surface_to_volume, 2)});
  }
  table.Print();

  std::printf(
      "\nShape checks (vs paper trends):\n"
      "  * vertex counts ~1/1000 of the paper rows (by construction)\n"
      "  * surface:volume ratio strictly decreases with detail\n"
      "  * mesh degree ~constant across levels (Kuhn tetrahedra)\n");
  return 0;
}
