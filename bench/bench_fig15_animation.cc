// Copyright 2026 The OCTOPUS Reproduction Authors
// Reproduces paper Figs. 14 and 15 — applicability beyond scientific
// simulations: three deforming mesh animation sequences (horse gallop,
// facial expression, camel compress).
//  Fig. 14    dataset characterization
//  Fig. 15(a) average query response time per time step, LinearScan vs
//             OCTOPUS
//  Fig. 15(b) speedup
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/table.h"
#include "index/linear_scan.h"
#include "mesh/generators/datasets.h"
#include "mesh/mesh_stats.h"
#include "octopus/query_executor.h"
#include "sim/animation_deformer.h"
#include "sim/deformer.h"

namespace {
using octopus::AnimationDataset;
using octopus::Table;
using octopus::TetraMesh;
namespace bench = octopus::bench;
}  // namespace

int main() {
  const double scale = bench::ScaleFromEnv();
  std::printf("OCTOPUS reproduction — Figs. 14 & 15: deforming mesh "
              "animations (scale %.3g, 15 q/step, sel 0.1%%)\n\n",
              scale);

  const AnimationDataset datasets[] = {AnimationDataset::kHorseGallop,
                                       AnimationDataset::kFacialExpression,
                                       AnimationDataset::kCamelCompress};
  const double paper_sv[] = {0.023, 0.010, 0.019};

  Table characterization("Fig. 14 — Deforming mesh datasets");
  characterization.SetHeader({"Mesh deformation", "Time steps [#]",
                              "Size [MB]", "# Vertices", "Surface:Volume",
                              "(paper S:V)"});
  Table results("Fig. 15 — Response time per time step and speedup");
  results.SetHeader({"Mesh deformation", "LinearScan [s/step]",
                     "OCTOPUS [s/step]", "Speedup [x]"});

  for (size_t i = 0; i < 3; ++i) {
    auto r = octopus::MakeAnimationMesh(datasets[i], scale);
    if (!r.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    const TetraMesh mesh = r.MoveValue();
    const int steps = octopus::AnimationTimeSteps(datasets[i]);
    const octopus::MeshStats stats = octopus::ComputeMeshStats(mesh);
    characterization.AddRow(
        {octopus::AnimationMeshName(datasets[i]), std::to_string(steps),
         Table::Num(static_cast<double>(stats.memory_bytes) / 1e6, 1),
         Table::Count(stats.num_vertices),
         Table::Num(stats.surface_to_volume, 3),
         Table::Num(paper_sv[i], 3)});

    const bench::StepWorkload workload =
        bench::MakeStepWorkload(mesh, steps, 15, 15, 0.001, 0.001, 0xE00 + i);
    const float amplitude = 2.0f * octopus::EstimateMeanEdgeLength(mesh);
    const AnimationDataset which = datasets[i];
    const bench::DeformerFactory deformer = [which, amplitude]() {
      return std::make_unique<octopus::AnimationDeformer>(which, amplitude);
    };
    octopus::Octopus octo;
    octopus::LinearScan scan;
    const double octo_s =
        bench::RunApproach(&octo, mesh, deformer, workload).TotalSeconds();
    const double scan_s =
        bench::RunApproach(&scan, mesh, deformer, workload).TotalSeconds();
    results.AddRow({octopus::AnimationMeshName(datasets[i]),
                    Table::Num(scan_s / steps, 4),
                    Table::Num(octo_s / steps, 4),
                    Table::Num(scan_s / octo_s, 1)});
  }
  characterization.Print();
  std::printf("\n");
  results.Print();
  std::printf(
      "\nExpected shape (paper Fig. 15): OCTOPUS wins on every sequence; "
      "scan time per step tracks dataset size;\nOCTOPUS's speedup tracks "
      "the surface:volume ratio, so Facial Expression (smallest S:V) gets "
      "the largest\nspeedup (paper: 15-19x; smaller here at laptop-scale "
      "S:V).\n");
  return 0;
}
