// Copyright 2026 The OCTOPUS Reproduction Authors
// "Fig. 14" — the out-of-core extension of the paper's evaluation: the
// paper ran OCTOPUS on disk-resident Blue Brain meshes where the cost
// that matters is page accesses, and used the Hilbert data organization
// (Sec. IV-H1) to cluster the crawl's random adjacency accesses onto few
// pages. This bench reproduces that page-access curve on the paged OCT2
// engine:
//  (a) page misses per query vs buffer-pool size (fractions of the
//      snapshot), for three vertex layouts: shuffled (the arbitrary
//      arrival order of real meshes), generator order, and Hilbert;
//  (b) LRU vs clock eviction at a mid-size pool.
// Results also land in BENCH_outofcore.json for the cross-PR perf
// trajectory.
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"
#include "mesh/generators/datasets.h"
#include "mesh/hilbert_layout.h"
#include "mesh/mesh_io.h"
#include "octopus/paged_executor.h"
#include "sim/workload.h"
#include "storage/snapshot.h"

namespace {

using octopus::AABB;
using octopus::PagedOctopus;
using octopus::Rng;
using octopus::Table;
using octopus::TetraMesh;
using octopus::VertexId;
using octopus::VertexPermutation;
namespace bench = octopus::bench;
namespace storage = octopus::storage;

constexpr size_t kPageBytes = 4096;

TetraMesh Shuffled(const TetraMesh& mesh, uint64_t seed) {
  VertexPermutation perm;
  perm.new_to_old.resize(mesh.num_vertices());
  std::iota(perm.new_to_old.begin(), perm.new_to_old.end(), 0u);
  Rng rng(seed);
  for (size_t i = perm.new_to_old.size(); i > 1; --i) {
    std::swap(perm.new_to_old[i - 1], perm.new_to_old[rng.NextBelow(i)]);
  }
  perm.old_to_new.resize(perm.new_to_old.size());
  for (size_t n = 0; n < perm.new_to_old.size(); ++n) {
    perm.old_to_new[perm.new_to_old[n]] = static_cast<VertexId>(n);
  }
  return octopus::ApplyPermutation(mesh, perm);
}

struct RunStats {
  storage::PageIOStats page_io;
  double seconds = 0.0;
  size_t results = 0;
  size_t pool_allocated = 0;
};

RunStats RunWorkload(const std::string& snapshot,
                     const std::vector<AABB>& queries, size_t pool_bytes,
                     storage::BufferManager::Eviction eviction) {
  PagedOctopus::Options options;
  options.pool.pool_bytes = pool_bytes;
  options.pool.eviction = eviction;
  auto octo = PagedOctopus::Open(snapshot, options);
  if (!octo.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 octo.status().ToString().c_str());
    std::exit(1);
  }
  octopus::engine::QueryBatchResult results;
  octopus::Timer timer;
  octo.Value()->RangeQueryBatch(queries, &results);
  RunStats run;
  run.seconds = timer.ElapsedSeconds();
  run.page_io = octo.Value()->stats().page_io;
  run.results = results.TotalResults();
  run.pool_allocated =
      octo.Value()->store().buffer_manager()->AllocatedBytes();
  return run;
}

}  // namespace

int main() {
  const double scale = bench::ScaleFromEnv();
  const int queries_per_pool = bench::StepsFromEnv(96);
  std::printf(
      "OCTOPUS reproduction — Fig. 14: out-of-core page accesses "
      "(scale %.3g, %d queries, %zu B pages)\n\n",
      scale, queries_per_pool, kPageBytes);

  auto r = octopus::MakeNeuroMesh(octopus::kNumNeuroLevels - 1, scale);
  if (!r.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 r.status().ToString().c_str());
    return 1;
  }
  const TetraMesh generator_order = r.MoveValue();
  const TetraMesh shuffled = Shuffled(generator_order, 0xF14);

  // The three layouts, snapshotted to disk. "original" is the mesh in
  // the arbitrary order real meshes arrive in (shuffled); "generator"
  // is our masked-grid generator's native, already fairly coherent
  // order; "hilbert" clusters the shuffled mesh by the curve — what the
  // paper's data organization step does to an arbitrary-order mesh.
  struct Layout {
    const char* name;
    std::string path;
  };
  const std::vector<Layout> layouts = {
      {"shuffled", "fig14_shuffled.oct2"},
      {"generator", "fig14_generator.oct2"},
      {"hilbert", "fig14_hilbert.oct2"},
  };
  {
    using octopus::SaveSnapshot;
    using storage::SnapshotLayout;
    using storage::SnapshotOptions;
    octopus::Status st = SaveSnapshot(
        shuffled, layouts[0].path,
        SnapshotOptions{.page_bytes = kPageBytes});
    if (st.ok()) {
      st = SaveSnapshot(generator_order, layouts[1].path,
                        SnapshotOptions{.page_bytes = kPageBytes});
    }
    if (st.ok()) {
      st = SaveSnapshot(shuffled, layouts[2].path,
                        SnapshotOptions{.page_bytes = kPageBytes,
                                        .layout =
                                            SnapshotLayout::kHilbert});
    }
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  const auto header = storage::ReadSnapshotHeader(layouts[0].path);
  if (!header.ok()) {
    std::fprintf(stderr, "%s\n", header.status().ToString().c_str());
    return 1;
  }
  const size_t snapshot_bytes = header.Value().FileBytes();
  std::printf("dataset: %zu vertices, snapshot %.1f MB (%llu pages)\n\n",
              generator_order.num_vertices(), snapshot_bytes / 1e6,
              static_cast<unsigned long long>(header.Value().num_pages));

  // One spatial workload for every layout and pool size (the boxes are
  // position-defined; all layouts hold the same positions).
  octopus::QueryGenerator gen(generator_order);
  Rng rng(0xF14F14);
  const std::vector<AABB> queries =
      gen.MakeQueries(&rng, queries_per_pool, 0.0005, 0.002);

  bench::JsonWriter json;
  Table t("Fig. 14(a) — page misses/query vs pool size (LRU)");
  t.SetHeader({"Pool [% of snapshot]", "Pool [KB]", "shuffled",
               "generator", "hilbert", "hilbert saving vs shuffled"});

  for (const double frac : {0.02, 0.05, 0.125, 0.25, 0.5}) {
    const size_t pool_bytes = std::max<size_t>(
        2 * kPageBytes, static_cast<size_t>(snapshot_bytes * frac));
    std::vector<std::string> row = {
        Table::Num(frac * 100.0, 1), Table::Num(pool_bytes / 1024.0, 0)};
    double shuffled_mpq = 0.0;
    double hilbert_mpq = 0.0;
    for (const Layout& layout : layouts) {
      const RunStats run =
          RunWorkload(layout.path, queries, pool_bytes,
                      storage::BufferManager::Eviction::kLRU);
      const double mpq =
          static_cast<double>(run.page_io.page_misses) / queries.size();
      if (std::string(layout.name) == "shuffled") shuffled_mpq = mpq;
      if (std::string(layout.name) == "hilbert") hilbert_mpq = mpq;
      row.push_back(Table::Num(mpq, 1));

      json.BeginObject();
      json.Field("name", std::string("outofcore/") + layout.name);
      json.Field("layout", layout.name);
      json.Field("eviction", "lru");
      json.Field("pool_frac", frac);
      json.Field("pool_bytes", static_cast<int64_t>(pool_bytes));
      json.Field("page_bytes", static_cast<int64_t>(kPageBytes));
      json.Field("snapshot_bytes", static_cast<int64_t>(snapshot_bytes));
      json.Field("queries", static_cast<int64_t>(queries.size()));
      json.Field("page_misses",
                 static_cast<int64_t>(run.page_io.page_misses));
      json.Field("page_hits", static_cast<int64_t>(run.page_io.page_hits));
      json.Field("page_evictions",
                 static_cast<int64_t>(run.page_io.page_evictions));
      json.Field("misses_per_query", mpq);
      json.Field("total_results", static_cast<int64_t>(run.results));
      json.Field("real_time_s", run.seconds);
      json.Field("pool_allocated_bytes",
                 static_cast<int64_t>(run.pool_allocated));
      json.EndObject();
    }
    row.push_back(
        Table::Num(100.0 * (shuffled_mpq - hilbert_mpq) /
                       (shuffled_mpq > 0.0 ? shuffled_mpq : 1.0),
                   1) +
        "%");
    t.AddRow(row);
  }
  t.Print();

  // (b) Eviction-policy comparison at a mid-size pool, Hilbert layout.
  {
    const size_t pool_bytes = std::max<size_t>(
        2 * kPageBytes, static_cast<size_t>(snapshot_bytes * 0.125));
    Table e("Fig. 14(b) — eviction policy at 12.5% pool (hilbert)");
    e.SetHeader({"Policy", "Misses/query", "Hit rate [%]", "Evictions"});
    for (const auto eviction :
         {storage::BufferManager::Eviction::kLRU,
          storage::BufferManager::Eviction::kClock}) {
      const RunStats run = RunWorkload(layouts[2].path, queries,
                                       pool_bytes, eviction);
      const double accesses =
          static_cast<double>(run.page_io.PageAccesses());
      e.AddRow({storage::EvictionName(eviction),
                Table::Num(static_cast<double>(run.page_io.page_misses) /
                               queries.size(),
                           1),
                Table::Num(100.0 * run.page_io.page_hits /
                               (accesses > 0.0 ? accesses : 1.0),
                           2),
                Table::Count(run.page_io.page_evictions)});
      json.BeginObject();
      json.Field("name", std::string("outofcore/eviction/") +
                             storage::EvictionName(eviction));
      json.Field("layout", "hilbert");
      json.Field("eviction", storage::EvictionName(eviction));
      json.Field("pool_bytes", static_cast<int64_t>(pool_bytes));
      json.Field("queries", static_cast<int64_t>(queries.size()));
      json.Field("page_misses",
                 static_cast<int64_t>(run.page_io.page_misses));
      json.Field("page_hits", static_cast<int64_t>(run.page_io.page_hits));
      json.Field("page_evictions",
                 static_cast<int64_t>(run.page_io.page_evictions));
      json.Field("real_time_s", run.seconds);
      json.EndObject();
    }
    e.Print();
  }

  if (!json.WriteTo("BENCH_outofcore.json")) {
    std::fprintf(stderr, "failed to write BENCH_outofcore.json\n");
    return 1;
  }
  std::printf(
      "\nwrote BENCH_outofcore.json (%zu records)\n"
      "Expected shape: misses/query fall as the pool grows; the Hilbert "
      "layout needs markedly fewer\nmisses than the shuffled "
      "(arbitrary-order) layout at every pool size because the crawl's\n"
      "neighborhood accesses cluster onto few pages (paper Sec. IV-H1); "
      "the generator order sits\nbetween the two (our masked-grid "
      "generator already emits fairly coherent ids).\n",
      json.num_objects());
  return 0;
}
