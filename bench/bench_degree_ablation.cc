// Copyright 2026 The OCTOPUS Reproduction Authors
// Ablation for the paper's Sec. VIII-B "Mesh Degree" limitation: crawling
// must follow M edges per result vertex, so the crawl cost scales with
// the mesh degree. We compare the same box domain meshed with Kuhn
// tetrahedra (interior degree 14) and with hexahedra (interior degree 6)
// at matched vertex counts — the hexahedral crawl should traverse ~M_hex
// / M_tet as many edges per result.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "mesh/generators/grid_generator.h"
#include "mesh/generators/hexa_generator.h"
#include "octopus/hex_octopus.h"
#include "octopus/query_executor.h"

namespace {
using octopus::AABB;
using octopus::Table;
using octopus::Vec3;
namespace bench = octopus::bench;
}  // namespace

int main() {
  const double scale = bench::ScaleFromEnv();
  const int n = std::max(4, static_cast<int>(40 * std::cbrt(scale)));
  std::printf("OCTOPUS ablation — mesh degree (Sec. VIII-B): tetrahedra vs "
              "hexahedra on a %d^3 box\n\n",
              n);

  const AABB domain(Vec3(0, 0, 0), Vec3(1, 1, 1));
  const octopus::TetraMesh tet_mesh =
      octopus::GenerateBoxMesh(n, n, n, domain).MoveValue();
  const octopus::HexaMesh hex_mesh =
      octopus::GenerateHexBoxMesh(n, n, n, domain).MoveValue();

  octopus::Octopus tet_octo;
  tet_octo.Build(tet_mesh);
  octopus::HexOctopus hex_octo;
  hex_octo.Build(hex_mesh);

  Table t("Crawl cost vs mesh degree (same lattice, same queries)");
  t.SetHeader({"Selectivity [%]", "Primitive", "Mesh degree",
               "Crawl edges / result", "Crawl time [s]", "Results [#]"});

  for (const double sel_pct : {0.1, 0.5, 2.0}) {
    const float h = 0.5f * std::cbrt(static_cast<float>(sel_pct / 100.0));
    octopus::Rng rng(0xDE6);
    std::vector<AABB> queries;
    for (int i = 0; i < 200; ++i) {
      const Vec3 c = rng.NextPointIn(AABB(Vec3(0.2f, 0.2f, 0.2f),
                                          Vec3(0.8f, 0.8f, 0.8f)));
      queries.push_back(AABB::FromCenterHalfExtent(c, Vec3(h, h, h)));
    }
    tet_octo.ResetStats();
    hex_octo.ResetStats();
    std::vector<octopus::VertexId> sink;
    for (const AABB& q : queries) {
      sink.clear();
      tet_octo.RangeQuery(tet_mesh, q, &sink);
      sink.clear();
      hex_octo.RangeQuery(hex_mesh, q, &sink);
    }
    const octopus::PhaseStats& ts = tet_octo.stats();
    const octopus::PhaseStats& hs = hex_octo.stats();
    t.AddRow({Table::Num(sel_pct, 2), "tetrahedra",
              Table::Num(tet_mesh.AverageDegree(), 1),
              Table::Num(static_cast<double>(ts.crawl_edges) /
                             std::max<size_t>(ts.result_vertices, 1),
                         1),
              Table::Num(ts.crawl_nanos * 1e-9, 4),
              Table::Count(ts.result_vertices)});
    t.AddRow({Table::Num(sel_pct, 2), "hexahedra",
              Table::Num(hex_mesh.AverageDegree(), 1),
              Table::Num(static_cast<double>(hs.crawl_edges) /
                             std::max<size_t>(hs.result_vertices, 1),
                         1),
              Table::Num(hs.crawl_nanos * 1e-9, 4),
              Table::Count(hs.result_vertices)});
  }
  t.Print();
  std::printf(
      "\nExpected shape: crawl edges per result ~= the mesh degree (14 vs "
      "6), so hexahedral crawls traverse\n~2.3x fewer edges for the same "
      "results — the paper's point that a lower-degree primitive crawls "
      "cheaper,\nat the cost of simulation accuracy (fewer degrees of "
      "freedom).\n");
  return 0;
}
