// Copyright 2026 The OCTOPUS Reproduction Authors
// google-benchmark micro-benchmarks of the primitive operations behind the
// figures, plus the tuning-parameter ablations the paper mentions in
// Sec. V-A (R-tree fanout sweep, octree bucket-size sweep, QU-Trade grace
// window): per-op costs of the surface probe, crawl, directed walk, index
// builds and update paths.
// Results are also written to BENCH_micro.json (see main below) so the
// perf trajectory is machine-readable across PRs.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/query_engine.h"
#include "index/linear_scan.h"
#include "index/lur_tree.h"
#include "index/octree.h"
#include "index/qu_trade.h"
#include "index/rtree.h"
#include "mesh/generators/datasets.h"
#include "octopus/crawler.h"
#include "octopus/directed_walk.h"
#include "octopus/query_executor.h"
#include "sim/random_deformer.h"
#include "sim/workload.h"

namespace octopus {
namespace {

// Shared fixture data: one mid-size neuro mesh, built once.
const TetraMesh& BenchMesh() {
  static const TetraMesh mesh = MakeNeuroMesh(1, 0.5).MoveValue();
  return mesh;
}

AABB BenchQuery(double selectivity, uint64_t seed = 1) {
  static QueryGenerator gen(BenchMesh());
  Rng rng(seed);
  return gen.MakeQuery(&rng, selectivity);
}

void BM_LinearScanQuery(benchmark::State& state) {
  const TetraMesh& mesh = BenchMesh();
  LinearScan scan;
  scan.Build(mesh);
  const AABB q = BenchQuery(0.001);
  std::vector<VertexId> out;
  for (auto _ : state) {
    out.clear();
    scan.RangeQuery(mesh, q, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * mesh.num_vertices());
}
BENCHMARK(BM_LinearScanQuery);

void BM_SurfaceProbe(benchmark::State& state) {
  // Probe cost alone: a query that intersects nothing keeps the crawl
  // empty, so the measured time is the pure probe.
  const TetraMesh& mesh = BenchMesh();
  Octopus octo;
  octo.Build(mesh);
  const AABB q(Vec3(50, 50, 50), Vec3(51, 51, 51));
  std::vector<VertexId> out;
  for (auto _ : state) {
    out.clear();
    octo.RangeQuery(mesh, q, &out);
  }
  state.SetItemsProcessed(state.iterations() *
                          octo.surface_index().num_surface_vertices());
}
BENCHMARK(BM_SurfaceProbe);

void BM_OctopusQuery(benchmark::State& state) {
  const TetraMesh& mesh = BenchMesh();
  Octopus octo;
  octo.Build(mesh);
  const AABB q = BenchQuery(state.range(0) / 10000.0);
  std::vector<VertexId> out;
  for (auto _ : state) {
    out.clear();
    octo.RangeQuery(mesh, q, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
// Selectivity 0.01% .. 0.2% in basis points of a percent (range/10000 %).
BENCHMARK(BM_OctopusQuery)->Arg(1)->Arg(10)->Arg(20);

// --- Batched execution through the QueryEngine ---
// The acceptance workload for the engine: a simulation step's worth of
// queries executed as one batch, sharded across the engine's threads.
// Arg = thread count; per-query results are identical across counts.
void BM_OctopusBatchQuery(benchmark::State& state) {
  const TetraMesh& mesh = BenchMesh();
  Octopus octo;
  octo.Build(mesh);
  engine::QueryEngine eng(
      engine::QueryEngineOptions{.threads = static_cast<int>(state.range(0))});
  QueryGenerator gen(mesh);
  Rng rng(7);
  const engine::QueryBatch batch = gen.MakeBatch(&rng, 64, 0.0005, 0.002);
  engine::QueryBatchResult out;
  for (auto _ : state) {
    eng.Execute(octo, mesh, batch, &out);
    benchmark::DoNotOptimize(out.TotalResults());
  }
  state.SetItemsProcessed(state.iterations() * batch.size());
}
BENCHMARK(BM_OctopusBatchQuery)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Engine overhead control: the same batch through the sequential default
// path of a baseline — measures the batching machinery, not parallelism.
void BM_LinearScanBatchQuery(benchmark::State& state) {
  const TetraMesh& mesh = BenchMesh();
  LinearScan scan;
  scan.Build(mesh);
  engine::QueryEngine eng;
  QueryGenerator gen(mesh);
  Rng rng(7);
  const engine::QueryBatch batch = gen.MakeBatch(&rng, 64, 0.0005, 0.002);
  engine::QueryBatchResult out;
  for (auto _ : state) {
    eng.Execute(scan, mesh, batch, &out);
    benchmark::DoNotOptimize(out.TotalResults());
  }
  state.SetItemsProcessed(state.iterations() * batch.size());
}
BENCHMARK(BM_LinearScanBatchQuery)->Unit(benchmark::kMillisecond);

void BM_Crawl(benchmark::State& state) {
  const TetraMesh& mesh = BenchMesh();
  Crawler crawler;
  crawler.EnsureSize(mesh.num_vertices());
  const AABB q = BenchQuery(0.002);
  // One inside start.
  std::vector<VertexId> starts;
  for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
    if (q.Contains(mesh.position(v))) {
      starts.push_back(v);
      break;
    }
  }
  std::vector<VertexId> out;
  size_t edges = 0;
  for (auto _ : state) {
    out.clear();
    edges += crawler.Crawl(mesh, q, starts, &out).edges_traversed;
  }
  state.SetItemsProcessed(static_cast<int64_t>(edges));
}
BENCHMARK(BM_Crawl);

void BM_DirectedWalk(benchmark::State& state) {
  const TetraMesh& mesh = BenchMesh();
  const AABB q = BenchQuery(0.001);
  for (auto _ : state) {
    const WalkResult r = DirectedWalk(mesh, q, 0);
    benchmark::DoNotOptimize(r.found);
  }
}
BENCHMARK(BM_DirectedWalk);

void BM_SurfaceIndexBuild(benchmark::State& state) {
  const TetraMesh& mesh = BenchMesh();
  for (auto _ : state) {
    SurfaceIndex index;
    index.Build(mesh);
    benchmark::DoNotOptimize(index.num_surface_vertices());
  }
}
BENCHMARK(BM_SurfaceIndexBuild);

// --- Octree bucket-size ablation (paper tuned 10,000 via sweep) ---
void BM_OctreeBuild(benchmark::State& state) {
  const TetraMesh& mesh = BenchMesh();
  Octree::Options options;
  options.bucket_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Octree tree(options);
    tree.Build(mesh.positions());
    benchmark::DoNotOptimize(tree.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * mesh.num_vertices());
}
BENCHMARK(BM_OctreeBuild)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Arg(10000);

void BM_OctreeQuery(benchmark::State& state) {
  const TetraMesh& mesh = BenchMesh();
  Octree::Options options;
  options.bucket_size = static_cast<int>(state.range(0));
  Octree tree(options);
  tree.Build(mesh.positions());
  const AABB q = BenchQuery(0.001);
  std::vector<VertexId> out;
  for (auto _ : state) {
    out.clear();
    tree.Query(q, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_OctreeQuery)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Arg(10000);

// --- R-tree fanout ablation (paper tuned 110 via sweep) ---
void BM_RTreeBulkLoad(benchmark::State& state) {
  const TetraMesh& mesh = BenchMesh();
  RTree::Options options;
  options.fanout = static_cast<int>(state.range(0));
  std::vector<RTree::Entry> entries;
  for (size_t v = 0; v < mesh.num_vertices(); ++v) {
    const Vec3& p = mesh.position(static_cast<VertexId>(v));
    entries.push_back({static_cast<VertexId>(v), AABB(p, p)});
  }
  for (auto _ : state) {
    RTree tree(options);
    tree.BulkLoad(entries);
    benchmark::DoNotOptimize(tree.num_nodes());
  }
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(16)->Arg(55)->Arg(110)->Arg(220);

void BM_RTreeQuery(benchmark::State& state) {
  const TetraMesh& mesh = BenchMesh();
  RTree::Options options;
  options.fanout = static_cast<int>(state.range(0));
  RTree tree(options);
  std::vector<RTree::Entry> entries;
  for (size_t v = 0; v < mesh.num_vertices(); ++v) {
    const Vec3& p = mesh.position(static_cast<VertexId>(v));
    entries.push_back({static_cast<VertexId>(v), AABB(p, p)});
  }
  tree.BulkLoad(std::move(entries));
  const AABB q = BenchQuery(0.001);
  std::vector<VertexId> out;
  for (auto _ : state) {
    out.clear();
    tree.QueryIds(q, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RTreeQuery)->Arg(16)->Arg(55)->Arg(110)->Arg(220);

// --- Per-step maintenance cost of the moving-object baselines ---
void BM_LURTreeMaintenanceStep(benchmark::State& state) {
  TetraMesh mesh = BenchMesh();
  LURTree index;
  index.Build(mesh);
  RandomDeformer deformer(0.2f * EstimateMeanEdgeLength(mesh));
  deformer.Bind(mesh);
  int step = 0;
  for (auto _ : state) {
    state.PauseTiming();
    deformer.ApplyStep(++step, &mesh);
    state.ResumeTiming();
    index.BeforeQueries(mesh);
  }
  state.SetItemsProcessed(state.iterations() * mesh.num_vertices());
}
BENCHMARK(BM_LURTreeMaintenanceStep)->Unit(benchmark::kMillisecond);

void BM_QUTradeMaintenanceStep(benchmark::State& state) {
  TetraMesh mesh = BenchMesh();
  QUTrade index;
  index.Build(mesh);
  RandomDeformer deformer(0.2f * EstimateMeanEdgeLength(mesh));
  deformer.Bind(mesh);
  int step = 0;
  for (auto _ : state) {
    state.PauseTiming();
    deformer.ApplyStep(++step, &mesh);
    state.ResumeTiming();
    index.BeforeQueries(mesh);
  }
  state.SetItemsProcessed(state.iterations() * mesh.num_vertices());
}
BENCHMARK(BM_QUTradeMaintenanceStep)->Unit(benchmark::kMillisecond);

// Console output plus a machine-readable record of every run, written to
// BENCH_micro.json at exit so CI and future PRs can diff the numbers.
// google-benchmark < 1.8 exposes Run::error_occurred; 1.8+ replaced it
// with Run::skipped. Detect whichever this build has.
template <typename R>
auto RunWasSkipped(const R& run, int) -> decltype(run.error_occurred) {
  return run.error_occurred;
}
template <typename R>
auto RunWasSkipped(const R& run, long)
    -> decltype(static_cast<bool>(run.skipped)) {
  return static_cast<bool>(run.skipped);
}

class JsonSavingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (RunWasSkipped(run, 0)) continue;
      writer_.BeginObject();
      writer_.Field("name", run.benchmark_name());
      writer_.Field("iterations", static_cast<int64_t>(run.iterations));
      writer_.Field("real_time_ns", run.GetAdjustedRealTime() *
                                        GetTimeUnitMultiplier(run.time_unit));
      writer_.Field("cpu_time_ns", run.GetAdjustedCPUTime() *
                                       GetTimeUnitMultiplier(run.time_unit));
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        writer_.Field("items_per_second",
                      static_cast<double>(items->second));
      }
      writer_.EndObject();
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const bench::JsonWriter& writer() const { return writer_; }

 private:
  // ns per reported unit: runs carry times in their own time unit.
  static double GetTimeUnitMultiplier(benchmark::TimeUnit unit) {
    switch (unit) {
      case benchmark::kNanosecond: return 1.0;
      case benchmark::kMicrosecond: return 1e3;
      case benchmark::kMillisecond: return 1e6;
      case benchmark::kSecond: return 1e9;
    }
    return 1.0;
  }

  bench::JsonWriter writer_;
};

}  // namespace
}  // namespace octopus

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  octopus::JsonSavingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!reporter.writer().WriteTo("BENCH_micro.json")) {
    std::fprintf(stderr, "failed to write BENCH_micro.json\n");
    return 1;
  }
  std::fprintf(stderr, "wrote BENCH_micro.json (%zu records)\n",
               reporter.writer().num_objects());
  benchmark::Shutdown();
  return 0;
}
