// Copyright 2026 The OCTOPUS Reproduction Authors
// Reproduces paper Fig. 11 / Sec. VI-B: validation of the analytical cost
// model. CS and CR are calibrated empirically on the smallest dataset
// (paper protocol), then Eq. 3 / Eq. 4 predictions are compared with
// measured runtimes for selectivities 0.01%, 0.1% and 0.2% on all five
// datasets. Also prints the Eq. 6 break-even selectivity.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "index/linear_scan.h"
#include "mesh/generators/datasets.h"
#include "mesh/mesh_stats.h"
#include "octopus/cost_model.h"
#include "octopus/query_executor.h"

namespace {
using octopus::Table;
using octopus::TetraMesh;
namespace bench = octopus::bench;
}  // namespace

int main() {
  const double scale = bench::ScaleFromEnv();
  const int steps = bench::StepsFromEnv(60);
  std::printf("OCTOPUS reproduction — Fig. 11: analytical model validation "
              "(scale %.3g, %d steps, 15 q/step)\n\n",
              scale, steps);

  std::vector<TetraMesh> levels;
  for (int level = 0; level < octopus::kNumNeuroLevels; ++level) {
    auto r = octopus::MakeNeuroMesh(level, scale);
    if (!r.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    levels.push_back(r.MoveValue());
  }

  // The paper calibrates on the smallest dataset; all its datasets are
  // DRAM-resident, so the constants transfer. At laptop scale the small
  // meshes sit in cache and their constants do NOT transfer upward, so we
  // calibrate on the largest dataset instead (see DESIGN.md 4b).
  const octopus::CostConstants constants =
      octopus::CalibrateCostConstants(levels.back(), /*repetitions=*/5);
  std::printf("calibrated constants: CS = %.3g s/vertex, CP = %.3g "
              "s/surface-vertex, CR = %.3g s/edge\n(CR/CS = %.2f; paper: CS "
              "6.6e-9, CR 2.7e-8, ratio ~4; CP is our gather-cost "
              "refinement, see DESIGN.md)\n\n",
              constants.cs_seconds, constants.cp_seconds,
              constants.cr_seconds,
              constants.cr_seconds / constants.cs_seconds);

  Table t("Fig. 11 — Measured vs predicted query response time [sec]");
  t.SetHeader({"Dataset [#verts]", "Selectivity [%]", "LinearScan measured",
               "LinearScan model", "OCTOPUS measured", "OCTOPUS model",
               "OCTOPUS model error [%]"});

  double worst_error = 0.0;
  for (TetraMesh& mesh : levels) {
    const octopus::CostModel model = octopus::CostModel::FromMesh(
        mesh, constants);
    for (const double sel_pct : {0.01, 0.1, 0.2}) {
      const double sel = sel_pct / 100.0;
      const bench::StepWorkload workload =
          bench::MakeStepWorkload(mesh, steps, 15, 15, sel, sel, 0xB00);
      const size_t queries = workload.TotalQueries();

      octopus::Octopus octo;
      octopus::LinearScan scan;
      const bench::DeformerFactory deformer =
          bench::NeuroDeformerFactory(mesh);
      const double octo_measured =
          bench::RunApproach(&octo, mesh, deformer, workload).TotalSeconds();
      const double scan_measured =
          bench::RunApproach(&scan, mesh, deformer, workload).TotalSeconds();

      const double octo_model =
          queries * model.OctopusSeconds(mesh.num_vertices(), sel);
      const double scan_model =
          queries * model.LinearScanSeconds(mesh.num_vertices());
      const double error =
          100.0 * std::abs(octo_model - octo_measured) / octo_measured;
      worst_error = std::max(worst_error, error);
      t.AddRow({Table::Count(mesh.num_vertices()), Table::Num(sel_pct, 2),
                Table::Num(scan_measured, 3), Table::Num(scan_model, 3),
                Table::Num(octo_measured, 3), Table::Num(octo_model, 3),
                Table::Num(error, 1)});
    }
  }
  t.Print();

  const octopus::CostModel largest_model =
      octopus::CostModel::FromMesh(levels.back(), constants);
  std::printf(
      "\nEq. 6 break-even selectivity for the largest dataset: %.2f%% — the "
      "linear scan only wins above it\n(paper reports 1.61%% for S=0.03; "
      "ours differs with the scaled S:V ratio).\n"
      "Worst OCTOPUS model error observed: %.1f%% (paper: ~2%% on dedicated "
      "hardware; noisy shared machines drift more).\n",
      100.0 * largest_model.BreakEvenSelectivity(), worst_error);
  return 0;
}
