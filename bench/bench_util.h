// Copyright 2026 The OCTOPUS Reproduction Authors
// Back-compat shim: the measurement harness moved into the library
// (harness/bench_harness.h) so it is tested and reusable.
#ifndef OCTOPUS_BENCH_BENCH_UTIL_H_
#define OCTOPUS_BENCH_BENCH_UTIL_H_

#include "harness/bench_harness.h"

#endif  // OCTOPUS_BENCH_BENCH_UTIL_H_
