// Copyright 2026 The OCTOPUS Reproduction Authors
// Back-compat shim for the measurement harness (which moved into the
// library, harness/bench_harness.h, so it is tested and reusable) plus
// bench-side helpers: a tiny JSON writer so benches can emit
// machine-readable results (e.g. BENCH_micro.json) and the perf
// trajectory can be tracked across PRs.
#ifndef OCTOPUS_BENCH_BENCH_UTIL_H_
#define OCTOPUS_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_harness.h"

namespace octopus::bench {

/// \brief Minimal JSON emitter: an array of flat objects, enough for
/// bench records ({"name": ..., "real_time_ns": ...}) without a
/// dependency on a JSON library.
class JsonWriter {
 public:
  void BeginObject() { first_field_ = true; current_ = "{"; }

  void Field(const std::string& name, const std::string& value) {
    AppendKey(name);
    current_ += '"' + Escaped(value) + '"';
  }
  void Field(const std::string& name, const char* value) {
    Field(name, std::string(value));
  }
  void Field(const std::string& name, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    AppendKey(name);
    current_ += buf;
  }
  void Field(const std::string& name, int64_t value) {
    AppendKey(name);
    current_ += std::to_string(value);
  }

  void EndObject() {
    current_ += "}";
    objects_.push_back(current_);
    current_.clear();
  }

  /// The whole document: a JSON array of the finished objects.
  std::string ToString() const {
    std::string doc = "[\n";
    for (size_t i = 0; i < objects_.size(); ++i) {
      doc += "  " + objects_[i];
      if (i + 1 < objects_.size()) doc += ",";
      doc += "\n";
    }
    doc += "]\n";
    return doc;
  }

  /// Writes the document to `path`; returns false on I/O failure.
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string doc = ToString();
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    return std::fclose(f) == 0 && ok;
  }

  size_t num_objects() const { return objects_.size(); }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  void AppendKey(const std::string& name) {
    if (!first_field_) current_ += ", ";
    first_field_ = false;
    current_ += '"' + Escaped(name) + "\": ";
  }

  std::vector<std::string> objects_;
  std::string current_;
  bool first_field_ = true;
};

}  // namespace octopus::bench

#endif  // OCTOPUS_BENCH_BENCH_UTIL_H_
