// Copyright 2026 The OCTOPUS Reproduction Authors
// Loopback benchmark of the network query service: an in-process server
// on an ephemeral 127.0.0.1 port, driven by concurrent blocking clients
// replaying the fig6-style monitoring workload. Reports throughput,
// request latency percentiles (from the server's histogram) and the
// cross-client coalesce factor, and verifies loopback parity against
// the in-process engine — counters and result sets, not wall-clock
// multipliers, so the numbers are meaningful on the 1-core CI runner
// too. Emits BENCH_server.json.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "client/remote_client.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"
#include "mesh/generators/datasets.h"
#include "mesh/mesh_io.h"
#include "octopus/query_executor.h"
#include "server/versioned_backend.h"
#include "server/server.h"
#include "sim/workload.h"
#include "storage/snapshot.h"

namespace {

using namespace octopus;

struct BenchConfig {
  std::string name;
  int clients = 1;
  int requests_per_client = 32;
  int queries_per_request = 16;
  bool paged = false;
  /// Flight-recorder ring slots; 0 = tracing disabled. The throughput
  /// configs run with tracing OFF so their numbers stay comparable to
  /// pre-observability baselines; the `_traced` config prices the ring.
  size_t trace_ring = 0;
  /// Event-journal ring slots; 0 = journal disabled. Priced together
  /// with tracing in the `_traced` config and the overhead ratio, so
  /// check_perf_smoke.py's 1.05x bound covers both observability paths.
  size_t journal_slots = 0;
  /// Epoll threads serving connections (sessions sharded by fd);
  /// 1 reproduces the old single-loop front end.
  int io_threads = 1;
};

struct BenchOutcome {
  double wall_seconds = 0.0;
  server::ServerMetrics metrics;
  uint64_t trace_records = 0;
  uint64_t journal_events = 0;
  bool parity_ok = true;
  /// Per-client fairness: slowest client's wall over the fastest's.
  /// fd-sharded I/O threads must not starve some connections — a ratio
  /// far above ~2 on idle hardware means one shard sat unserved.
  double fairness = 1.0;
};

/// Drives one config against a fresh server; returns the server's
/// post-run metrics plus a client-side parity verdict.
BenchOutcome RunConfig(const BenchConfig& config, const TetraMesh& mesh,
                       const std::string& snapshot_path) {
  std::unique_ptr<server::VersionedBackend> backend;
  if (config.paged) {
    auto opened = server::VersionedBackend::OpenSnapshot(
        snapshot_path, /*pool_bytes=*/256 * 4096, /*threads=*/1);
    if (!opened.ok()) {
      std::fprintf(stderr, "open snapshot: %s\n",
                   opened.status().ToString().c_str());
      std::exit(1);
    }
    backend = opened.MoveValue();
  } else {
    backend = server::VersionedBackend::FromMesh(mesh, /*threads=*/1);
  }

  server::ServerOptions options;
  options.bind_address = "127.0.0.1";
  options.port = 0;
  options.trace_ring_slots = config.trace_ring;
  options.io_threads = config.io_threads;
  // Declared before `srv` (journal must outlive the server using it).
  obs::EventJournal journal(config.journal_slots);
  if (journal.enabled()) options.journal = &journal;
  server::QueryServer srv(std::move(backend), options);
  const Status started = srv.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    std::exit(1);
  }
  std::thread server_thread([&srv] { (void)srv.Run(); });

  // In-process reference for client 0's workload, precomputed OUTSIDE
  // the timed region (the query sequence is seed-deterministic), so
  // parity verification does not skew the throughput comparison.
  Octopus reference;
  reference.Build(mesh);
  engine::QueryEngine reference_engine;
  std::vector<std::vector<AABB>> client0_queries;
  std::vector<engine::QueryBatchResult> client0_expected(
      static_cast<size_t>(config.requests_per_client));
  {
    QueryGenerator gen(mesh);
    Rng rng(0xBE7C);
    for (int r = 0; r < config.requests_per_client; ++r) {
      client0_queries.push_back(gen.MakeQueries(
          &rng, config.queries_per_request, 0.0011, 0.0018));
      reference_engine.Execute(reference, mesh, client0_queries.back(),
                               &client0_expected[r]);
    }
  }

  BenchOutcome outcome;
  std::vector<std::thread> clients;
  // char, not bool: vector<bool> is bit-packed and concurrent writes
  // from client threads would race on shared bytes.
  std::vector<char> client_ok(static_cast<size_t>(config.clients), 1);
  std::vector<double> client_wall(static_cast<size_t>(config.clients),
                                  0.0);
  Timer wall;
  for (int c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      Timer client_timer;
      auto connected =
          client::RemoteClient::Connect("127.0.0.1", srv.port());
      if (!connected.ok()) {
        client_ok[c] = 0;
        return;
      }
      QueryGenerator gen(mesh);
      Rng rng(0xBE7C + static_cast<uint64_t>(c));
      for (int r = 0; r < config.requests_per_client; ++r) {
        const std::vector<AABB> queries =
            c == 0 ? client0_queries[r]
                   : gen.MakeQueries(&rng, config.queries_per_request,
                                     0.0011, 0.0018);
        auto result = connected.Value()->ExecuteBatch(queries);
        if (!result.ok()) {
          client_ok[c] = 0;
          return;
        }
        if (c == 0) {
          // Loopback parity against the precomputed in-process results.
          for (size_t q = 0; q < queries.size(); ++q) {
            if (result.Value().results.per_query[q] !=
                client0_expected[r].per_query[q]) {
              client_ok[c] = 0;
              return;
            }
          }
        }
      }
      client_wall[c] = client_timer.ElapsedSeconds();
    });
  }
  for (auto& t : clients) t.join();
  outcome.wall_seconds = wall.ElapsedSeconds();

  srv.Stop();
  server_thread.join();
  outcome.metrics = srv.MetricsSnapshot();
  outcome.trace_records = srv.recorder().total_recorded();
  outcome.journal_events = journal.total_emitted();
  for (const char ok : client_ok) outcome.parity_ok &= (ok != 0);
  double fastest = 0.0;
  double slowest = 0.0;
  for (const double seconds : client_wall) {
    if (seconds <= 0.0) continue;  // failed client; parity flags it
    if (fastest == 0.0 || seconds < fastest) fastest = seconds;
    if (seconds > slowest) slowest = seconds;
  }
  if (fastest > 0.0) outcome.fairness = slowest / fastest;
  return outcome;
}

}  // namespace

int main() {
  namespace bench = octopus::bench;
  const double scale = bench::ScaleFromEnv();

  auto mesh_result = MakeNeuroMesh(0, 0.5 * scale);
  if (!mesh_result.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 mesh_result.status().ToString().c_str());
    return 1;
  }
  const TetraMesh& mesh = mesh_result.Value();
  std::printf("OCTOPUS network query service — loopback bench (%zu "
              "vertices)\n\n",
              mesh.num_vertices());

  const std::string snapshot_path = "bench_server_tmp.oct2";
  const Status saved =
      SaveSnapshot(mesh, snapshot_path,
                   storage::SnapshotOptions{.page_bytes = 4096});
  if (!saved.ok()) {
    std::fprintf(stderr, "snapshot: %s\n", saved.ToString().c_str());
    return 1;
  }

  const std::vector<BenchConfig> configs = {
      {"loopback_1client", 1, 32, 16, false, 0},
      {"loopback_4clients", 4, 16, 16, false, 0},
      {"loopback_8clients", 8, 8, 16, false, 0},
      {"loopback_16clients_io4", 16, 4, 16, false, 0, 0, 4},
      {"loopback_32clients_io4", 32, 2, 16, false, 0, 0, 4},
      {"loopback_8clients_paged", 8, 8, 16, true, 0},
      {"loopback_8clients_paged_traced", 8, 8, 16, true, 1024, 1024},
  };

  Table table("bench_server — loopback service throughput");
  table.SetHeader({"config", "io", "queries", "queries/s", "p50 [us]",
                   "p95 [us]", "p99 [us]", "coalesce", "fair",
                   "parity"});
  bench::JsonWriter json;
  bool all_parity_ok = true;
  bool p99_bounded = true;
  for (const BenchConfig& config : configs) {
    const BenchOutcome outcome = RunConfig(config, mesh, snapshot_path);
    const server::ServerMetrics& m = outcome.metrics;
    const double qps =
        outcome.wall_seconds > 0
            ? static_cast<double>(m.queries_executed) / outcome.wall_seconds
            : 0.0;
    const double p50 =
        static_cast<double>(m.request_latency.PercentileNanos(0.50)) / 1e3;
    const double p95 =
        static_cast<double>(m.request_latency.PercentileNanos(0.95)) / 1e3;
    const double p99 =
        static_cast<double>(m.request_latency.PercentileNanos(0.99)) / 1e3;
    all_parity_ok &= outcome.parity_ok;
    // Sanity bound, asserted on every machine: no request's latency can
    // exceed the whole run's wall clock.
    if (p99 > outcome.wall_seconds * 1e6) {
      std::fprintf(stderr, "%s: p99 %.0fus exceeds the run's %.0fus wall\n",
                   config.name.c_str(), p99,
                   outcome.wall_seconds * 1e6);
      p99_bounded = false;
    }

    table.AddRow({config.name, Table::Count(config.io_threads),
                  Table::Count(m.queries_executed),
                  Table::Num(qps, 0), Table::Num(p50, 0),
                  Table::Num(p95, 0), Table::Num(p99, 0),
                  Table::Num(m.CoalesceFactor(), 2),
                  Table::Num(outcome.fairness, 2),
                  outcome.parity_ok ? "ok" : "MISMATCH"});

    json.BeginObject();
    json.Field("name", config.name);
    json.Field("clients", static_cast<int64_t>(config.clients));
    json.Field("requests_per_client",
               static_cast<int64_t>(config.requests_per_client));
    json.Field("queries_per_request",
               static_cast<int64_t>(config.queries_per_request));
    json.Field("paged", static_cast<int64_t>(config.paged ? 1 : 0));
    json.Field("io_threads", static_cast<int64_t>(config.io_threads));
    json.Field("client_fairness", outcome.fairness);
    json.Field("queries_executed",
               static_cast<int64_t>(m.queries_executed));
    json.Field("batches_executed",
               static_cast<int64_t>(m.batches_executed));
    json.Field("coalesce_factor", m.CoalesceFactor());
    json.Field("wall_seconds", outcome.wall_seconds);
    json.Field("queries_per_sec", qps);
    json.Field("latency_p50_us", p50);
    json.Field("latency_p95_us", p95);
    json.Field("latency_p99_us", p99);
    json.Field("page_hits",
               static_cast<int64_t>(m.engine_total.page_io.page_hits));
    json.Field("page_misses",
               static_cast<int64_t>(m.engine_total.page_io.page_misses));
    json.Field("lease_hits",
               static_cast<int64_t>(m.engine_total.page_io.lease_hits));
    json.Field("pages_leased",
               static_cast<int64_t>(m.engine_total.page_io.pages_leased));
    json.Field(
        "pages_distinct",
        static_cast<int64_t>(m.engine_total.page_io.pages_distinct));
    // Per-phase engine timing: where the batch sweep's time went.
    json.Field("engine_probe_seconds",
               static_cast<double>(m.engine_total.probe_nanos) / 1e9);
    json.Field("engine_walk_seconds",
               static_cast<double>(m.engine_total.walk_nanos) / 1e9);
    json.Field("engine_crawl_seconds",
               static_cast<double>(m.engine_total.crawl_nanos) / 1e9);
    json.Field("engine_merge_seconds",
               static_cast<double>(m.engine_total.merge_nanos) / 1e9);
    json.Field("serialize_seconds",
               static_cast<double>(m.serialize_nanos_total) / 1e9);
    // Event-loop stall histogram: time the loop thread spent busy
    // between polls while sessions were connected.
    json.Field("stall_count", static_cast<int64_t>(m.loop_stall.count()));
    json.Field("stall_p50_us",
               static_cast<double>(m.loop_stall.PercentileNanos(0.50)) /
                   1e3);
    json.Field("stall_p95_us",
               static_cast<double>(m.loop_stall.PercentileNanos(0.95)) /
                   1e3);
    json.Field("stall_p99_us",
               static_cast<double>(m.loop_stall.PercentileNanos(0.99)) /
                   1e3);
    json.Field("stall_max_us",
               static_cast<double>(m.loop_stall.max_nanos()) / 1e3);
    json.Field("trace_ring", static_cast<int64_t>(config.trace_ring));
    json.Field("trace_records",
               static_cast<int64_t>(outcome.trace_records));
    json.Field("journal_slots",
               static_cast<int64_t>(config.journal_slots));
    json.Field("journal_events",
               static_cast<int64_t>(outcome.journal_events));
    json.Field("parity_ok",
               static_cast<int64_t>(outcome.parity_ok ? 1 : 0));
    json.EndObject();
  }

  // Tracing-overhead summary: best-of-3 interleaved runs of a warm
  // paged single-client config with the ring off and on.
  // Single-client because N client threads on a 1-core runner make
  // wall clock a scheduling lottery — sequential round trips measure
  // the request path itself; best-of-3 shaves the remaining noise.
  // check_perf_smoke.py holds the ratio to <= 1.05 (tracing must stay
  // effectively free).
  {
    BenchConfig off_config{"overhead_paged_untraced", 1, 96, 16, true, 0};
    BenchConfig on_config = off_config;
    on_config.name = "overhead_paged_traced";
    on_config.trace_ring = 1024;
    on_config.journal_slots = 1024;
    double best_off = 0.0;
    double best_on = 0.0;
    for (int round = 0; round < 3; ++round) {
      const BenchOutcome off = RunConfig(off_config, mesh, snapshot_path);
      const BenchOutcome on = RunConfig(on_config, mesh, snapshot_path);
      all_parity_ok &= off.parity_ok && on.parity_ok;
      best_off = round == 0 ? off.wall_seconds
                            : std::min(best_off, off.wall_seconds);
      best_on = round == 0 ? on.wall_seconds
                           : std::min(best_on, on.wall_seconds);
    }
    const double overhead = best_off > 0 ? best_on / best_off : 0.0;

    // I/O-thread scaling: the same 16-client in-memory load through one
    // epoll thread and through four. Recorded on every machine; the
    // monotonicity assertion (four threads must not LOSE throughput)
    // only fires with >= 4 hardware threads — on the 1-core CI runner
    // extra threads are pure scheduling overhead and the ratio is
    // noise, not signal.
    BenchConfig io1{"scaling_16clients_io1", 16, 4, 16, false, 0, 0, 1};
    BenchConfig io4 = io1;
    io4.name = "scaling_16clients_io4";
    io4.io_threads = 4;
    double best_io1 = 0.0;
    double best_io4 = 0.0;
    uint64_t scaling_queries = 0;
    for (int round = 0; round < 2; ++round) {
      const BenchOutcome out1 = RunConfig(io1, mesh, snapshot_path);
      const BenchOutcome out4 = RunConfig(io4, mesh, snapshot_path);
      all_parity_ok &= out1.parity_ok && out4.parity_ok;
      scaling_queries = out1.metrics.queries_executed;
      best_io1 = round == 0 ? out1.wall_seconds
                            : std::min(best_io1, out1.wall_seconds);
      best_io4 = round == 0 ? out4.wall_seconds
                            : std::min(best_io4, out4.wall_seconds);
    }
    const double qps_io1 =
        best_io1 > 0 ? static_cast<double>(scaling_queries) / best_io1
                     : 0.0;
    const double qps_io4 =
        best_io4 > 0 ? static_cast<double>(scaling_queries) / best_io4
                     : 0.0;
    const double scaling = qps_io1 > 0 ? qps_io4 / qps_io1 : 0.0;
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw >= 4 && scaling < 0.9) {
      std::fprintf(stderr,
                   "io-thread scaling regressed: %.0f q/s with 4 "
                   "threads vs %.0f with 1 (%.2fx) on %u cores\n",
                   qps_io4, qps_io1, scaling, hw);
      p99_bounded = false;  // folded into the failing exit code
    }

    json.BeginObject();
    json.Field("name", std::string("server_summary"));
    json.Field("untraced_wall_seconds", best_off);
    json.Field("traced_wall_seconds", best_on);
    json.Field("tracing_overhead", overhead);
    json.Field("hw_concurrency", static_cast<int64_t>(hw));
    json.Field("scaling_qps_io1", qps_io1);
    json.Field("scaling_qps_io4", qps_io4);
    json.Field("io_thread_scaling", scaling);
    json.EndObject();
    std::printf("\nTracing overhead (warm paged, best of 2): %.3fx "
                "(%.4fs traced / %.4fs untraced)\n",
                overhead, best_on, best_off);
    std::printf("I/O-thread scaling (16 clients, 4 vs 1 threads): %.2fx "
                "on %u hardware threads%s\n",
                scaling, hw,
                hw >= 4 ? "" : " (not asserted below 4)");
  }
  table.Print();
  std::printf(
      "\nCoalesce factor = queries per engine batch; > %d means the "
      "scheduler folded requests\nfrom different connections into one "
      "probe->walk->crawl sweep. Parity compares client-0\nresult sets "
      "against the in-process engine, bit for bit.\n",
      16);

  std::remove(snapshot_path.c_str());
  if (!json.WriteTo("BENCH_server.json")) {
    std::fprintf(stderr, "failed to write BENCH_server.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_server.json (%zu records)\n",
              json.num_objects());
  return all_parity_ok && p99_bounded ? 0 : 1;
}
