// Copyright 2026 The OCTOPUS Reproduction Authors
// Reproduces paper Fig. 10 and the Sec. VI-A overhead analysis:
//  (a) per-phase time breakdown (probe / walk / crawl) vs dataset size
//  (b) memory footprint vs number of query results
//  plus the one-time surface index construction cost per dataset.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "mesh/generators/datasets.h"
#include "octopus/query_executor.h"
#include "sim/workload.h"

namespace {
using octopus::Table;
using octopus::TetraMesh;
namespace bench = octopus::bench;
}  // namespace

int main() {
  const double scale = bench::ScaleFromEnv();
  const int steps = bench::StepsFromEnv(60);
  std::printf("OCTOPUS reproduction — Fig. 10 / Sec. VI-A overhead analysis "
              "(scale %.3g, %d steps)\n\n",
              scale, steps);

  // ---- Fig. 10(a): phase breakdown over dataset sizes ----
  {
    Table t("Fig. 10(a) — OCTOPUS phase breakdown vs dataset size [sec]");
    t.SetHeader({"Dataset [#verts]", "Surface Probe", "Directed Walk",
                 "Crawling", "Surface index build [s]"});
    for (int level = 0; level < octopus::kNumNeuroLevels; ++level) {
      auto r = octopus::MakeNeuroMesh(level, scale);
      if (!r.ok()) {
        std::fprintf(stderr, "generation failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      const TetraMesh mesh = r.MoveValue();
      const bench::StepWorkload workload = bench::MakeStepWorkload(
          mesh, steps, 15, 15, 0.001, 0.001, 0xA00 + level);
      octopus::Octopus octo;
      const bench::RunResult run = bench::RunApproach(
          &octo, mesh, bench::NeuroDeformerFactory(mesh), workload);
      const octopus::PhaseStats& s = octo.stats();
      t.AddRow({Table::Count(mesh.num_vertices()),
                Table::Num(s.probe_nanos * 1e-9, 3),
                Table::Num(s.walk_nanos * 1e-9, 3),
                Table::Num(s.crawl_nanos * 1e-9, 3),
                Table::Num(run.build_seconds, 3)});
    }
    t.Print();
    std::printf(
        "Expected shape: probe + crawl dominate; the directed walk barely "
        "contributes (rare). Probe time grows\nsub-linearly (surface share "
        "shrinks); crawl grows with result size (paper Fig. 10(a)). The "
        "one-time surface\nindex build is seconds even for the largest mesh "
        "(paper: 62 s for 33 GB).\n\n");
  }

  // ---- Fig. 10(b): footprint vs number of query results ----
  {
    Table t("Fig. 10(b) — OCTOPUS memory footprint vs query results");
    t.SetHeader({"Total results [#]", "Footprint [MB] (epoch array)",
                 "Footprint [MB] (hash-set crawl)",
                 "(surface index [MB])"});
    auto r = octopus::MakeNeuroMesh(octopus::kNumNeuroLevels - 1, scale);
    if (!r.ok()) return 1;
    const TetraMesh mesh = r.MoveValue();
    for (const double sel : {0.0005, 0.001, 0.002, 0.004, 0.008}) {
      const bench::StepWorkload workload =
          bench::MakeStepWorkload(mesh, 1, 15, 15, sel, sel, 0xA90);
      octopus::Octopus fast;  // default: O(V) epoch array, fastest
      const bench::RunResult fast_run = bench::RunApproach(
          &fast, mesh, bench::NeuroDeformerFactory(mesh), workload);
      // The paper-style configuration: crawl scratch ~ result size, so
      // the footprint correlates with the result count (Fig. 10(b)).
      octopus::Octopus compact(octopus::OctopusOptions{
          .visited_mode = octopus::VisitedMode::kHashSet});
      const bench::RunResult compact_run = bench::RunApproach(
          &compact, mesh, bench::NeuroDeformerFactory(mesh), workload);
      t.AddRow({Table::Count(fast_run.total_results),
                Table::Num(fast_run.footprint_bytes / 1e6, 2),
                Table::Num(compact_run.footprint_bytes / 1e6, 2),
                Table::Num(fast.surface_index().FootprintBytes() / 1e6,
                           2)});
    }
    t.Print();
    std::printf(
        "Expected shape: with the hash-set crawl the footprint is the "
        "fixed surface-index share plus a part\ndirectly correlated with "
        "the result count — paper Fig. 10(b). The default epoch-array "
        "crawl trades a\nflat O(V) scratch for speed (see DESIGN.md).\n");
  }
  return 0;
}
