// Copyright 2026 The OCTOPUS Reproduction Authors
// Epoch-history benchmark: what does bounded, spillable history cost?
// Steps an epoch-versioned backend K >> W epochs with a retention
// window of W, pinning an early epoch, and prices the three sides of
// the trade per step: publish latency (delta build + spill append),
// resident overlay memory (must stay O(W), not O(K)), and the query
// split — current-epoch latency (hot path, must not regress) vs the
// pinned epoch's reload latency and sidecar page I/O (the cost of a
// repeatable read). The pinned epoch's results are parity-checked at
// every step against the answer captured when it was current. Runs
// in-memory and paged; emits BENCH_epoch.json.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"
#include "mesh/generators/datasets.h"
#include "mesh/mesh_io.h"
#include "server/versioned_backend.h"
#include "sim/deformer_spec.h"
#include "sim/workload.h"
#include "storage/snapshot.h"

namespace {

using namespace octopus;

struct StepRecord {
  uint32_t step = 0;
  double publish_seconds = 0.0;
  double current_query_seconds = 0.0;
  double pinned_query_seconds = 0.0;
  uint64_t pinned_page_accesses = 0;
  uint64_t resident_bytes = 0;
  uint64_t spill_bytes_total = 0;
  uint64_t spilled_epochs = 0;
  bool parity_ok = true;
};

}  // namespace

int main() {
  namespace bench = octopus::bench;
  const double scale = bench::ScaleFromEnv();
  const int steps = bench::StepsFromEnv(24);
  constexpr int kQueriesPerStep = 32;
  constexpr size_t kWindow = 4;

  auto mesh_result = MakeNeuroMesh(0, 0.4 * scale);
  if (!mesh_result.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 mesh_result.status().ToString().c_str());
    return 1;
  }
  const TetraMesh& mesh = mesh_result.Value();
  std::printf("OCTOPUS epoch history — %zu vertices, %d steps, window "
              "%zu, %d queries/step\n\n",
              mesh.num_vertices(), steps, kWindow, kQueriesPerStep);

  DeformerSpec spec;
  spec.kind = DeformerKind::kPlasticity;
  spec.amplitude = 0.25f * EstimateMeanEdgeLength(mesh);
  spec.seed = 99;

  const std::string snapshot_path = "bench_epoch_tmp.oct2";
  const Status saved =
      SaveSnapshot(mesh, snapshot_path,
                   storage::SnapshotOptions{.page_bytes = 4096});
  if (!saved.ok()) {
    std::fprintf(stderr, "snapshot: %s\n", saved.ToString().c_str());
    return 1;
  }

  bench::JsonWriter json;
  Table table("bench_epoch_history — retention window vs spilled history");
  table.SetHeader({"backend", "step", "publish ms", "cur q ms",
                   "pinned q ms", "pinned pageIO", "resident MB",
                   "spill MB", "parity"});
  bool all_parity_ok = true;

  for (const bool paged : {false, true}) {
    std::unique_ptr<server::VersionedBackend> backend;
    if (paged) {
      auto opened = server::VersionedBackend::OpenSnapshot(
          snapshot_path, /*pool_bytes=*/256 * 4096, /*threads=*/1);
      if (!opened.ok()) {
        std::fprintf(stderr, "open snapshot: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      backend = opened.MoveValue();
    } else {
      backend = server::VersionedBackend::FromMesh(mesh, /*threads=*/1);
    }
    server::EpochRetentionOptions retention;
    retention.retention_epochs = kWindow;
    retention.history_epochs = static_cast<size_t>(steps) + 8;
    retention.spill_path = std::string("bench_epoch_tmp_") +
                           (paged ? "p" : "m") + ".oct2d";
    Status st = backend->ConfigureRetention(retention);
    if (st.ok()) st = backend->BindDeformer(spec);
    if (!st.ok()) {
      std::fprintf(stderr, "setup: %s\n", st.ToString().c_str());
      return 1;
    }

    QueryGenerator gen(mesh);
    Rng rng(0xE90C);
    const std::vector<AABB> queries =
        gen.MakeQueries(&rng, kQueriesPerStep, 0.0011, 0.0018);

    // Pin epoch 1 and capture its live answer: the repeatable-read
    // baseline every later step must reproduce from the sidecar.
    backend->AdvanceStep();
    auto pinned = backend->PinEpoch(0);
    if (!pinned.ok() || pinned.Value().epoch != 1) {
      std::fprintf(stderr, "pin failed\n");
      return 1;
    }
    engine::QueryBatchResult baseline;
    PhaseStats baseline_stats;
    backend->Execute(queries, &baseline, &baseline_stats);

    std::vector<StepRecord> records;
    engine::QueryBatchResult out;
    for (int step = 2; step <= steps; ++step) {
      StepRecord record;
      record.step = static_cast<uint32_t>(step);

      Timer publish;
      backend->AdvanceStep();
      record.publish_seconds = publish.ElapsedSeconds();

      PhaseStats current_stats;
      Timer current;
      backend->Execute(queries, &out, &current_stats);
      record.current_query_seconds = current.ElapsedSeconds();
      record.parity_ok =
          out.epoch.step == static_cast<uint32_t>(step);

      PhaseStats pinned_stats;
      Timer pinned_timer;
      const Status replay =
          backend->ExecuteAt(1, queries, &out, &pinned_stats);
      record.pinned_query_seconds = pinned_timer.ElapsedSeconds();
      record.pinned_page_accesses = pinned_stats.page_io.PageAccesses();
      record.parity_ok &= replay.ok();
      for (size_t q = 0;
           replay.ok() && q < queries.size() && record.parity_ok; ++q) {
        record.parity_ok = out.per_query[q] == baseline.per_query[q];
      }

      const server::EpochStore* store = backend->epoch_store();
      record.resident_bytes = store->resident_bytes();
      record.spill_bytes_total = store->spill_bytes_written();
      record.spilled_epochs = store->spilled_epochs();
      all_parity_ok &= record.parity_ok;
      records.push_back(record);
    }

    const char* name = paged ? "paged" : "in-memory";
    for (const StepRecord& r : records) {
      if (r.step == 2 || r.step == static_cast<uint32_t>(steps) ||
          r.step == static_cast<uint32_t>(steps) / 2) {
        table.AddRow({name, Table::Count(r.step),
                      Table::Num(r.publish_seconds * 1e3, 2),
                      Table::Num(r.current_query_seconds * 1e3, 2),
                      Table::Num(r.pinned_query_seconds * 1e3, 2),
                      Table::Count(r.pinned_page_accesses),
                      Table::Num(r.resident_bytes / (1024.0 * 1024.0), 2),
                      Table::Num(r.spill_bytes_total / (1024.0 * 1024.0),
                                 2),
                      r.parity_ok ? "ok" : "MISMATCH"});
      }
      json.BeginObject();
      json.Field("name", std::string("epoch_history_") + name);
      json.Field("paged", static_cast<int64_t>(paged ? 1 : 0));
      json.Field("step", static_cast<int64_t>(r.step));
      json.Field("retention_epochs", static_cast<int64_t>(kWindow));
      json.Field("queries_per_step",
                 static_cast<int64_t>(kQueriesPerStep));
      json.Field("publish_seconds", r.publish_seconds);
      json.Field("current_query_seconds", r.current_query_seconds);
      json.Field("pinned_query_seconds", r.pinned_query_seconds);
      json.Field("pinned_page_accesses",
                 static_cast<int64_t>(r.pinned_page_accesses));
      json.Field("resident_overlay_bytes",
                 static_cast<int64_t>(r.resident_bytes));
      json.Field("spill_bytes_total",
                 static_cast<int64_t>(r.spill_bytes_total));
      json.Field("spilled_epochs",
                 static_cast<int64_t>(r.spilled_epochs));
      json.Field("parity_ok",
                 static_cast<int64_t>(r.parity_ok ? 1 : 0));
      json.EndObject();
    }
  }

  table.Print();
  std::printf(
      "\nBounded history: resident overlay memory plateaus at the "
      "retention window while\nspill bytes grow with K — the pinned "
      "epoch stays bit-identical to its live answer,\npaid for in "
      "sidecar page I/O (pinned pageIO) instead of RSS. The hot path "
      "(cur q)\nnever touches the sidecar.\n");

  std::remove(snapshot_path.c_str());
  if (!json.WriteTo("BENCH_epoch.json")) {
    std::fprintf(stderr, "failed to write BENCH_epoch.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_epoch.json (%zu records)\n",
              json.num_objects());
  return all_parity_ok ? 0 : 1;
}
