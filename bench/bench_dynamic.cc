// Copyright 2026 The OCTOPUS Reproduction Authors
// Dynamic-serving benchmark: an epoch-versioned backend advancing a
// deformer for K steps while a fixed-size query batch executes at every
// epoch — the paper's SIMULATE/MONITOR timeline against a stale,
// built-once index. Measures per-step query latency/throughput and the
// stale-start drift (directed-walk work grows as the mesh drifts away
// from the step-0 surface geometry), in-memory and paged (where each
// step's cost is the OCT2 delta pages it rewrites). Every step's
// results are parity-checked against the in-process engine on the same
// trajectory. Emits BENCH_dynamic.json.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"
#include "engine/query_engine.h"
#include "mesh/generators/datasets.h"
#include "mesh/mesh_io.h"
#include "octopus/query_executor.h"
#include "server/versioned_backend.h"
#include "sim/deformer_spec.h"
#include "sim/workload.h"
#include "storage/snapshot.h"

namespace {

using namespace octopus;

struct StepRecord {
  uint32_t step = 0;
  double wall_seconds = 0.0;
  int64_t probe_nanos = 0;
  int64_t walk_nanos = 0;
  int64_t crawl_nanos = 0;
  int64_t merge_nanos = 0;
  uint64_t walk_invocations = 0;
  uint64_t walk_vertices = 0;
  uint64_t crawl_edges = 0;
  uint64_t page_accesses = 0;
  uint64_t lease_hits = 0;
  uint64_t pages_leased = 0;
  uint64_t pages_distinct = 0;
  uint64_t pages_rewritten = 0;
  bool parity_ok = true;
};

struct RunSummary {
  std::vector<StepRecord> steps;
  double total_wall_seconds = 0.0;
  bool parity_ok = true;
};

/// Steps one backend K times, querying at every epoch and checking
/// parity against `reference` (same spec, stepped in lockstep).
RunSummary RunBackend(server::VersionedBackend* backend,
                      const TetraMesh& mesh, const DeformerSpec& spec,
                      int steps, int queries_per_step) {
  RunSummary summary;

  // In-process reference: stale index on a private mesh copy advanced
  // by an identical deformer trajectory.
  TetraMesh reference_mesh = mesh;
  Octopus reference;
  reference.Build(reference_mesh);
  engine::QueryEngine reference_engine;
  auto deformer = MakeDeformer(spec);
  if (!deformer.ok()) {
    std::fprintf(stderr, "deformer: %s\n",
                 deformer.status().ToString().c_str());
    std::exit(1);
  }
  deformer.Value()->Bind(reference_mesh);

  QueryGenerator gen(mesh);
  Rng rng(0xD1A);
  engine::QueryBatchResult out;
  engine::QueryBatchResult expected;
  for (int step = 0; step <= steps; ++step) {
    if (step > 0) {
      backend->AdvanceStep();
      deformer.Value()->ApplyStep(step, &reference_mesh);
    }
    const std::vector<AABB> queries =
        gen.MakeQueries(&rng, queries_per_step, 0.0011, 0.0018);

    PhaseStats stats;
    Timer wall;
    backend->Execute(queries, &out, &stats);
    StepRecord record;
    record.wall_seconds = wall.ElapsedSeconds();
    record.step = static_cast<uint32_t>(step);
    record.probe_nanos = stats.probe_nanos;
    record.walk_nanos = stats.walk_nanos;
    record.crawl_nanos = stats.crawl_nanos;
    record.merge_nanos = stats.merge_nanos;
    record.walk_invocations = stats.walk_invocations;
    record.walk_vertices = stats.walk_vertices;
    record.crawl_edges = stats.crawl_edges;
    record.page_accesses = stats.page_io.PageAccesses();
    record.lease_hits = stats.page_io.lease_hits;
    record.pages_leased = stats.page_io.pages_leased;
    record.pages_distinct = stats.page_io.pages_distinct;
    record.pages_rewritten = backend->last_step_pages_rewritten();
    // Warm-regime accounting: step 0 is the cold batch that faults the
    // whole snapshot in from disk; the steady-state comparison starts
    // once the pool is populated.
    if (step > 0) summary.total_wall_seconds += record.wall_seconds;

    reference.ResetStats();
    reference_engine.Execute(reference, reference_mesh, queries,
                             &expected);
    record.parity_ok = out.epoch.step == static_cast<uint32_t>(step);
    for (size_t q = 0; q < queries.size() && record.parity_ok; ++q) {
      record.parity_ok = out.per_query[q] == expected.per_query[q];
    }
    summary.parity_ok &= record.parity_ok;
    summary.steps.push_back(record);
  }
  return summary;
}

}  // namespace

int main() {
  namespace bench = octopus::bench;
  const double scale = bench::ScaleFromEnv();
  const int steps = bench::StepsFromEnv(24);
  constexpr int kQueriesPerStep = 48;

  auto mesh_result = MakeNeuroMesh(0, 0.4 * scale);
  if (!mesh_result.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 mesh_result.status().ToString().c_str());
    return 1;
  }
  const TetraMesh& mesh = mesh_result.Value();
  std::printf("OCTOPUS dynamic serving — %zu vertices, %d steps, %d "
              "queries/step\n\n",
              mesh.num_vertices(), steps, kQueriesPerStep);

  // Sustained drift (plasticity) is the adversarial case for a stale
  // index: displacement accumulates ~sqrt(t), so the step-0 surface
  // geometry keeps degrading as a probe-start oracle.
  DeformerSpec spec;
  spec.kind = DeformerKind::kPlasticity;
  spec.amplitude = 0.25f * EstimateMeanEdgeLength(mesh);
  spec.seed = 99;

  const std::string snapshot_path = "bench_dynamic_tmp.oct2";
  const Status saved =
      SaveSnapshot(mesh, snapshot_path,
                   storage::SnapshotOptions{.page_bytes = 4096});
  if (!saved.ok()) {
    std::fprintf(stderr, "snapshot: %s\n", saved.ToString().c_str());
    return 1;
  }
  // Warm-pool configuration: the pool covers the snapshot, so after the
  // first batch every access is a pool hit or (with leases) free — this
  // is the regime where the paged path should track in-memory.
  auto snapshot_header = storage::ReadSnapshotHeader(snapshot_path);
  if (!snapshot_header.ok()) {
    std::fprintf(stderr, "header: %s\n",
                 snapshot_header.status().ToString().c_str());
    return 1;
  }
  const size_t pool_bytes =
      snapshot_header.Value().FileBytes() + 16 * 4096;

  bench::JsonWriter json;
  Table table("bench_dynamic — query work vs simulation step");
  table.SetHeader({"backend", "step", "queries/s", "walks", "walk verts",
                   "crawl edges", "page accesses", "pages rewritten",
                   "parity"});
  bool all_parity_ok = true;

  double backend_seconds[2] = {0.0, 0.0};  // [in-memory, paged]
  uint64_t total_page_accesses = 0;
  uint64_t total_pages_distinct = 0;
  uint64_t total_lease_hits = 0;
  for (const bool paged : {false, true}) {
    std::unique_ptr<server::VersionedBackend> backend;
    if (paged) {
      auto opened = server::VersionedBackend::OpenSnapshot(
          snapshot_path, pool_bytes, /*threads=*/1);
      if (!opened.ok()) {
        std::fprintf(stderr, "open snapshot: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      backend = opened.MoveValue();
    } else {
      backend = server::VersionedBackend::FromMesh(mesh, /*threads=*/1);
    }
    const Status bound = backend->BindDeformer(spec);
    if (!bound.ok()) {
      std::fprintf(stderr, "bind: %s\n", bound.ToString().c_str());
      return 1;
    }

    const RunSummary summary =
        RunBackend(backend.get(), mesh, spec, steps, kQueriesPerStep);
    all_parity_ok &= summary.parity_ok;
    backend_seconds[paged ? 1 : 0] = summary.total_wall_seconds;
    if (paged) {
      for (const StepRecord& r : summary.steps) {
        total_page_accesses += r.page_accesses;
        total_pages_distinct += r.pages_distinct;
        total_lease_hits += r.lease_hits;
      }
    }
    const char* name = paged ? "paged" : "in-memory";
    for (const StepRecord& r : summary.steps) {
      // Table: first, mid and last step only (the JSON has every step).
      if (r.step == 0 || r.step == static_cast<uint32_t>(steps) ||
          r.step == static_cast<uint32_t>(steps) / 2) {
        const double qps =
            r.wall_seconds > 0 ? kQueriesPerStep / r.wall_seconds : 0.0;
        table.AddRow({name, Table::Count(r.step), Table::Num(qps, 0),
                      Table::Count(r.walk_invocations),
                      Table::Count(r.walk_vertices),
                      Table::Count(r.crawl_edges),
                      Table::Count(r.page_accesses),
                      Table::Count(r.pages_rewritten),
                      r.parity_ok ? "ok" : "MISMATCH"});
      }
      json.BeginObject();
      json.Field("name", std::string("dynamic_") + name);
      json.Field("paged", static_cast<int64_t>(paged ? 1 : 0));
      json.Field("step", static_cast<int64_t>(r.step));
      json.Field("queries_per_step",
                 static_cast<int64_t>(kQueriesPerStep));
      json.Field("wall_seconds", r.wall_seconds);
      json.Field("queries_per_sec",
                 r.wall_seconds > 0 ? kQueriesPerStep / r.wall_seconds
                                    : 0.0);
      // Per-phase split of the step's batch (merge = batch-end stats
      // and context merging — the phase the flight recorder also
      // reports per request).
      json.Field("probe_seconds",
                 static_cast<double>(r.probe_nanos) / 1e9);
      json.Field("walk_seconds",
                 static_cast<double>(r.walk_nanos) / 1e9);
      json.Field("crawl_seconds",
                 static_cast<double>(r.crawl_nanos) / 1e9);
      json.Field("merge_seconds",
                 static_cast<double>(r.merge_nanos) / 1e9);
      json.Field("walk_invocations",
                 static_cast<int64_t>(r.walk_invocations));
      json.Field("walk_vertices",
                 static_cast<int64_t>(r.walk_vertices));
      json.Field("crawl_edges", static_cast<int64_t>(r.crawl_edges));
      json.Field("page_accesses",
                 static_cast<int64_t>(r.page_accesses));
      json.Field("lease_hits", static_cast<int64_t>(r.lease_hits));
      json.Field("pages_leased", static_cast<int64_t>(r.pages_leased));
      json.Field("pages_distinct",
                 static_cast<int64_t>(r.pages_distinct));
      json.Field("pages_rewritten",
                 static_cast<int64_t>(r.pages_rewritten));
      json.Field("parity_ok",
                 static_cast<int64_t>(r.parity_ok ? 1 : 0));
      json.EndObject();
    }
  }

  // Headline lease-economy numbers: how far the warm-pool paged path is
  // from in-memory (wall clock), and how close priced page accesses are
  // to exact distinct-pages-touched. The CI perf smoke reads this
  // record from the committed JSON.
  const double slowdown = backend_seconds[0] > 0
                              ? backend_seconds[1] / backend_seconds[0]
                              : 0.0;
  const double access_ratio =
      total_pages_distinct > 0
          ? static_cast<double>(total_page_accesses) /
                static_cast<double>(total_pages_distinct)
          : 0.0;
  json.BeginObject();
  json.Field("name", std::string("dynamic_summary"));
  json.Field("in_memory_warm_seconds", backend_seconds[0]);
  json.Field("paged_warm_seconds", backend_seconds[1]);
  json.Field("paged_over_in_memory_warm", slowdown);
  json.Field("page_accesses", static_cast<int64_t>(total_page_accesses));
  json.Field("pages_distinct",
             static_cast<int64_t>(total_pages_distinct));
  json.Field("lease_hits", static_cast<int64_t>(total_lease_hits));
  json.Field("access_over_distinct", access_ratio);
  json.EndObject();

  table.Print();
  std::printf(
      "\nLease economy (paged, warm pool): %.2fx in-memory wall clock; "
      "%llu page accesses\nfor %llu distinct pages (%.2fx); %llu reads "
      "served from held leases.\n",
      slowdown,
      static_cast<unsigned long long>(total_page_accesses),
      static_cast<unsigned long long>(total_pages_distinct),
      access_ratio,
      static_cast<unsigned long long>(total_lease_hits));
  std::printf(
      "\nStale-start drift: the index is built once at step 0 and never "
      "maintained; walk\ninvocations/vertices grow as accumulated drift "
      "degrades the probe's start quality,\nwhile results stay exact "
      "(parity vs the in-process engine at every epoch).\nPages "
      "rewritten = OCT2 delta pages per step (position pages only; "
      "adjacency is never\nrewritten).\n");

  std::remove(snapshot_path.c_str());
  if (!json.WriteTo("BENCH_dynamic.json")) {
    std::fprintf(stderr, "failed to write BENCH_dynamic.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_dynamic.json (%zu records)\n",
              json.num_objects());
  return all_parity_ok ? 0 : 1;
}
