// Copyright 2026 The OCTOPUS Reproduction Authors
// Reproduces paper Figs. 5 and 6: the four neuroscience monitoring
// micro-benchmarks (A: structural validation, B: mesh quality, C/D:
// visualization) executed on the most detailed neuroscience mesh for 60
// simulated time steps, comparing OCTOPUS, LinearScan, throwaway OCTREE,
// LUR-Tree and QU-Trade on
//   (a) total query response time (incl. index rebuild/maintenance), and
//   (b) memory footprint.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "mesh/generators/datasets.h"
#include "mesh/mesh_stats.h"
#include "octopus/cost_model.h"
#include "sim/workload.h"

int main() {
  using octopus::Table;
  namespace bench = octopus::bench;

  const double scale = bench::ScaleFromEnv();
  const int steps = bench::StepsFromEnv(60);
  const int threads = bench::ThreadsFromEnv(1);
  std::printf(
      "OCTOPUS reproduction — Figs. 5 & 6 (scale %.3g, %d steps, "
      "%d query threads)\n\n",
      scale, steps, threads);
  octopus::engine::QueryEngine query_engine(
      octopus::engine::QueryEngineOptions{.threads = threads});

  // --- Fig. 5: the benchmark definitions ---
  const auto specs = octopus::NeuroscienceBenchmarks();
  {
    Table t("Fig. 5 — Neuroscience Benchmarks");
    t.SetHeader({"Micro-benchmark", "Queries/step [#]", "Selectivity [%]"});
    for (const auto& s : specs) {
      const std::string queries =
          s.queries_per_step_min == s.queries_per_step_max
              ? std::to_string(s.queries_per_step_min)
              : std::to_string(s.queries_per_step_min) + " to " +
                    std::to_string(s.queries_per_step_max);
      t.AddRow({s.name, queries,
                Table::Num(s.selectivity_min * 100.0, 2) + " to " +
                    Table::Num(s.selectivity_max * 100.0, 2)});
    }
    t.Print();
    std::printf("\n");
  }

  // --- The most detailed neuroscience mesh (paper: 33 GB / 1.32 B tets).
  auto mesh_result =
      octopus::MakeNeuroMesh(octopus::kNumNeuroLevels - 1, scale);
  if (!mesh_result.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 mesh_result.status().ToString().c_str());
    return 1;
  }
  const octopus::TetraMesh& mesh = mesh_result.Value();
  std::printf("dataset: %s vertices, %s tetrahedra\n\n",
              Table::Count(mesh.num_vertices()).c_str(),
              Table::Count(mesh.num_tetrahedra()).c_str());
  const bench::DeformerFactory deformer = bench::NeuroDeformerFactory(mesh);

  Table time_table("Fig. 6(a) — Query Response Time [sec]");
  time_table.SetHeader({"Benchmark", "OCTOPUS", "LinearScan", "OCTREE",
                        "LUR-Tree", "QU-Trade", "OCTOPUS speedup vs scan"});
  Table mem_table("Fig. 6(b) — Memory Footprint [MB]");
  mem_table.SetHeader({"Benchmark", "OCTOPUS", "LinearScan", "OCTREE",
                       "LUR-Tree", "QU-Trade"});

  for (size_t b = 0; b < specs.size(); ++b) {
    const auto& spec = specs[b];
    const bench::StepWorkload workload = bench::MakeStepWorkload(
        mesh, steps, spec.queries_per_step_min, spec.queries_per_step_max,
        spec.selectivity_min, spec.selectivity_max,
        /*seed=*/0xF16'0000 + b);

    std::vector<std::string> time_row = {spec.name};
    std::vector<std::string> mem_row = {spec.name};
    double octopus_s = 0.0;
    double scan_s = 0.0;
    for (auto& index : bench::MakeAllApproaches()) {
      const bench::RunResult r = bench::RunApproach(
          index.get(), mesh, deformer, workload, &query_engine);
      time_row.push_back(Table::Num(r.TotalSeconds(), 2));
      mem_row.push_back(Table::Num(r.footprint_bytes / 1e6, 2));
      if (index->Name() == "OCTOPUS") octopus_s = r.TotalSeconds();
      if (index->Name() == "LinearScan") scan_s = r.TotalSeconds();
      std::fprintf(stderr, "  [%s] %-10s total=%.3fs (maint %.3fs, query "
                           "%.3fs) results=%zu\n",
                   spec.name.c_str(), index->Name().c_str(),
                   r.TotalSeconds(), r.maintenance_seconds, r.query_seconds,
                   r.total_results);
    }
    time_row.push_back(Table::Num(scan_s / octopus_s, 1) + "x");
    time_table.AddRow(time_row);
    mem_table.AddRow(mem_row);
  }
  time_table.Print();
  std::printf("\n");
  mem_table.Print();
  std::printf(
      "\nExpected shape (paper Fig. 6): OCTOPUS fastest on every benchmark "
      "(paper speedups 7.3-9.2x at S=0.03;\nsmaller here because the scaled "
      "mesh has a larger surface:volume ratio), LinearScan beats all "
      "index-maintenance\napproaches, and OCTOPUS uses less memory than "
      "every approach except the zero-overhead LinearScan.\n\n");

  // --- Extrapolation to paper scale via the (Fig. 11-validated) model ---
  const octopus::CostConstants constants =
      octopus::CalibrateCostConstants(mesh, 2);
  const octopus::MeshStats stats = octopus::ComputeMeshStats(mesh);
  const octopus::CostModel here(stats.surface_to_volume, stats.mesh_degree,
                                constants);
  const octopus::CostModel paper_scale(0.03, 14.51, constants);
  Table extrapolation(
      "Model extrapolation: speedup vs LinearScan at paper-scale S = 0.03");
  extrapolation.SetHeader({"Selectivity [%]",
                           "model @ our S = " +
                               Table::Num(stats.surface_to_volume, 2),
                           "model @ paper S = 0.03", "paper measured"});
  extrapolation.AddRow({"0.12 (benchmark D)",
                        Table::Num(here.Speedup(0.0012), 1) + "x",
                        Table::Num(paper_scale.Speedup(0.0012), 1) + "x",
                        "7.3x"});
  extrapolation.AddRow({"0.13 (benchmark A mid)",
                        Table::Num(here.Speedup(0.0013), 1) + "x",
                        Table::Num(paper_scale.Speedup(0.0013), 1) + "x",
                        "9.2x"});
  extrapolation.Print();
  return 0;
}
