// Copyright 2026 The OCTOPUS Reproduction Authors
// Reproduces paper Figs. 8 and 9 — convex (earthquake) mesh experiments:
//  Fig. 8    dataset characterization of the SF2/SF1 basin meshes
//  Fig. 9(a) total response time: OCTOPUS-CON vs OCTOPUS vs LinearScan
//  Fig. 9(b) phase breakdown (surface probe / directed walk / crawling)
//  Fig. 9(c) directed-walk vertices visited vs grid resolution
//  Fig. 9(d) grid memory overhead vs grid resolution
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/table.h"
#include "index/linear_scan.h"
#include "mesh/generators/datasets.h"
#include "mesh/mesh_stats.h"
#include "octopus/octopus_con.h"
#include "octopus/query_executor.h"
#include "sim/wave_deformer.h"

namespace {

using octopus::EarthquakeResolution;
using octopus::Table;
using octopus::TetraMesh;
namespace bench = octopus::bench;

bench::DeformerFactory QuakeDeformer() {
  return []() {
    // Affine ground shaking: convexity-preserving (Sec. IV-F requirement).
    return std::make_unique<octopus::WaveDeformer>(0.02f, 0.01f);
  };
}

}  // namespace

int main() {
  const double scale = bench::ScaleFromEnv();
  const int steps = bench::StepsFromEnv(60);
  std::printf("OCTOPUS reproduction — Figs. 8 & 9: convex earthquake meshes "
              "(scale %.3g, %d steps, 15 queries/step, sel 0.1%%)\n\n",
              scale, steps);

  std::vector<TetraMesh> meshes;
  std::vector<std::string> names;
  for (const auto res :
       {EarthquakeResolution::kSF2, EarthquakeResolution::kSF1}) {
    auto r = octopus::MakeEarthquakeMesh(res, scale);
    if (!r.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    meshes.push_back(r.MoveValue());
    names.push_back(octopus::EarthquakeMeshName(res));
  }

  // ---- Fig. 8: dataset characterization ----
  {
    Table t("Fig. 8 — Earthquake convex mesh datasets");
    t.SetHeader({"Dataset", "Size [MB]", "# Tetrahedra", "# Vertices",
                 "Mesh Degree", "Surface:Volume", "(paper S:V)"});
    const double paper_sv[2] = {0.16, 0.09};
    for (size_t i = 0; i < meshes.size(); ++i) {
      const octopus::MeshStats s = octopus::ComputeMeshStats(meshes[i]);
      t.AddRow({names[i],
                Table::Num(static_cast<double>(s.memory_bytes) / 1e6, 1),
                Table::Count(s.num_tetrahedra), Table::Count(s.num_vertices),
                Table::Num(s.mesh_degree, 2),
                Table::Num(s.surface_to_volume, 3),
                Table::Num(paper_sv[i], 2)});
    }
    t.Print();
    std::printf("\n");
  }

  // ---- Fig. 9(a,b): approach comparison + phase breakdown ----
  {
    Table a("Fig. 9(a) — Query response time on convex meshes [sec]");
    a.SetHeader({"Dataset", "OCTOPUS-CON", "OCTOPUS", "LinearScan",
                 "CON speedup", "OCTOPUS speedup"});
    Table b("Fig. 9(b) — Phase time breakdown [sec]");
    b.SetHeader({"Dataset", "Approach", "Surface Probe", "Directed Walk",
                 "Crawling"});
    for (size_t i = 0; i < meshes.size(); ++i) {
      const TetraMesh& mesh = meshes[i];
      const bench::StepWorkload workload = bench::MakeStepWorkload(
          mesh, steps, 15, 15, 0.001, 0.001, 0x900 + i);
      const bench::DeformerFactory deformer = QuakeDeformer();

      octopus::OctopusCon con;
      octopus::Octopus octo;
      octopus::LinearScan scan;
      const double con_s =
          bench::RunApproach(&con, mesh, deformer, workload).TotalSeconds();
      const double octo_s =
          bench::RunApproach(&octo, mesh, deformer, workload).TotalSeconds();
      const double scan_s =
          bench::RunApproach(&scan, mesh, deformer, workload).TotalSeconds();
      a.AddRow({names[i], Table::Num(con_s, 3), Table::Num(octo_s, 3),
                Table::Num(scan_s, 3), Table::Num(scan_s / con_s, 1) + "x",
                Table::Num(scan_s / octo_s, 1) + "x"});

      const octopus::PhaseStats& os = octo.stats();
      b.AddRow({names[i], "OCTOPUS", Table::Num(os.probe_nanos * 1e-9, 3),
                Table::Num(os.walk_nanos * 1e-9, 3),
                Table::Num(os.crawl_nanos * 1e-9, 3)});
      const octopus::PhaseStats& cs = con.stats();
      b.AddRow({names[i], "OCTOPUS-CON", "0 (skipped)",
                Table::Num(cs.walk_nanos * 1e-9, 3),
                Table::Num(cs.crawl_nanos * 1e-9, 3)});
    }
    a.Print();
    std::printf("Expected shape: OCTOPUS-CON fastest (paper: 15.5x on both "
                "datasets, insensitive to S:V);\nOCTOPUS speedup higher on "
                "SF1 than SF2 (smaller S:V -> cheaper probe).\n\n");
    b.Print();
    std::printf("Expected shape: crawling time ~equal for both approaches; "
                "OCTOPUS-CON eliminates the surface probe\n(paper Fig. "
                "9(b)).\n\n");
  }

  // ---- Fig. 9(c,d): grid resolution sweep (SF1) ----
  {
    Table c("Fig. 9(c,d) — Grid resolution trade-off (dataset SF1)");
    c.SetHeader({"Grid [# cells]", "Directed walk [# vertices visited]",
                 "Walk time [s]", "Grid memory [MB]"});
    const TetraMesh& mesh = meshes[1];
    const bench::StepWorkload workload =
        bench::MakeStepWorkload(mesh, steps, 15, 15, 0.001, 0.001, 0x9C0);
    for (const int res : {2, 6, 10, 14, 18}) {  // 8..5832 cells, as paper
      octopus::OctopusCon con(
          octopus::OctopusConOptions{.grid_resolution = res});
      bench::RunApproach(&con, mesh, QuakeDeformer(), workload);
      c.AddRow({Table::Count(static_cast<uint64_t>(res) * res * res),
                Table::Count(con.stats().walk_vertices),
                Table::Num(con.stats().walk_nanos * 1e-9, 3),
                Table::Num(con.grid().FootprintBytes() / 1e6, 3)});
    }
    c.Print();
    std::printf("Expected shape: vertices visited during the walk drop "
                "sharply with grid resolution while grid\nmemory grows "
                "(paper Fig. 9(c,d)); even 8 cells beat no grid by a large "
                "factor.\n");
  }
  return 0;
}
