// Copyright 2026 The OCTOPUS Reproduction Authors
//
// Synaptic rewiring (paper Secs. III-B and IV-E2): the motivating Blue
// Brain simulation constantly *rewires* neurons — plasticity not only
// deforms the mesh but occasionally adds/removes structure (synapses).
// Deformation costs OCTOPUS nothing; the rare connectivity changes are
// absorbed by incremental insert/delete maintenance of the surface index
// (`Octopus::OnRestructure`). This example runs both kinds of change in
// one simulation, carries a per-vertex attribute payload along, and
// verifies exactness against a linear scan at every step.
//
//   $ ./examples/synapse_rewiring [steps]
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "index/linear_scan.h"
#include "mesh/attributes.h"
#include "mesh/generators/datasets.h"
#include "mesh/surface.h"
#include "octopus/query_executor.h"
#include "sim/plasticity_deformer.h"
#include "sim/restructurer.h"
#include "sim/workload.h"

int main(int argc, char** argv) {
  using namespace octopus;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 12;

  auto mesh_result = MakeNeuroMesh(/*level=*/0, /*scale=*/0.25);
  if (!mesh_result.ok()) {
    std::fprintf(stderr, "mesh generation failed: %s\n",
                 mesh_result.status().ToString().c_str());
    return 1;
  }
  TetraMesh mesh = mesh_result.MoveValue();
  std::printf("neuron mesh: %zu vertices, %zu tetrahedra\n\n",
              mesh.num_vertices(), mesh.num_tetrahedra());

  // OCTOPUS with restructuring maintenance enabled.
  Octopus octopus(OctopusOptions{.support_restructuring = true});
  octopus.Build(mesh);
  LinearScan scan;

  // Simulation state: a voltage-like attribute per vertex.
  VertexAttributes attributes(mesh.num_vertices());
  if (!attributes.AddColumn("voltage", -65.0f).ok()) return 1;

  PlasticityDeformer deformer(0.2f * EstimateMeanEdgeLength(mesh));
  deformer.Bind(mesh);
  QueryGenerator queries(mesh);
  Rng rng(4242);

  size_t rewirings = 0;
  size_t mismatches = 0;
  std::vector<VertexId> got;
  std::vector<VertexId> expected;
  std::vector<float> voltages;

  for (int step = 1; step <= steps; ++step) {
    // SIMULATE: deform every vertex in place.
    deformer.ApplyStep(step, &mesh);

    // Occasionally the plasticity process rewires: grow a bouton-like tet
    // on a random surface face (connectivity change!).
    if (step % 3 == 0) {
      const SurfaceInfo surface = ExtractSurface(mesh);
      const FaceKey face =
          surface.surface_faces[rng.NextBelow(surface.surface_faces.size())];
      const Vec3 centroid = (mesh.position(face[0]) + mesh.position(face[1]) +
                             mesh.position(face[2])) /
                            3.0f;
      // Grow outward, away from the nearer soma.
      const Vec3 soma = centroid.x < 0.5f ? Vec3(0.25f, 0.28f, 0.28f)
                                          : Vec3(0.75f, 0.72f, 0.72f);
      Vec3 dir = centroid - soma;
      const float norm = dir.Norm();
      if (norm > 1e-6f) dir = dir / norm;
      auto delta = AddTetOnSurfaceFace(&mesh, face,
                                       centroid + dir * 0.015f);
      if (delta.ok()) {
        ++rewirings;
        octopus.OnRestructure(mesh, delta.Value());  // incremental!
        attributes.Resize(mesh.num_vertices());
        // NOTE: the deformer must re-bind after connectivity changes.
        deformer.Bind(mesh);
      }
    }

    // MONITOR: density query + attribute statistics, verified vs scan.
    const AABB box = queries.MakeQuery(&rng, 0.02);
    got.clear();
    expected.clear();
    octopus.RangeQuery(mesh, box, &got);
    scan.RangeQuery(mesh, box, &expected);
    if (got.size() != expected.size()) ++mismatches;

    if (!attributes.Gather("voltage", got, &voltages).ok()) return 1;
    const auto mean = attributes.Mean("voltage", got);
    std::printf("step %2d: %4zu vertices in probe, mean voltage %.1f mV, "
                "surface size %zu%s\n",
                step, got.size(), mean.ok() ? mean.Value() : 0.0,
                octopus.surface_index().num_surface_vertices(),
                step % 3 == 0 ? "  <- rewired" : "");
  }

  std::printf(
      "\n%zu rewiring events handled with incremental surface-index "
      "maintenance (no rebuild);\nexactness vs linear scan: %zu mismatches "
      "(expect 0).\n",
      rewirings, mismatches);
  return mismatches == 0 ? 0 : 1;
}
