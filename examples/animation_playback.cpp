// Copyright 2026 The OCTOPUS Reproduction Authors
//
// Volumetric animation rendering (paper Sec. VIII): play back a deforming
// mesh animation sequence and retrieve a moving "camera box" with OCTOPUS
// at every frame — the access pattern a volumetric renderer uses to pull
// the visible subset of the model. Also demonstrates the surface
// approximation optimization the paper recommends for visualization.
//
//   $ ./examples/animation_playback [horse|face|camel]
#include <cstdio>
#include <cstring>

#include "mesh/generators/datasets.h"
#include "octopus/query_executor.h"
#include "sim/animation_deformer.h"
#include "sim/simulation.h"

int main(int argc, char** argv) {
  using namespace octopus;

  AnimationDataset which = AnimationDataset::kHorseGallop;
  if (argc > 1 && std::strcmp(argv[1], "face") == 0) {
    which = AnimationDataset::kFacialExpression;
  } else if (argc > 1 && std::strcmp(argv[1], "camel") == 0) {
    which = AnimationDataset::kCamelCompress;
  }

  auto mesh_result = MakeAnimationMesh(which, /*scale=*/0.3);
  if (!mesh_result.ok()) {
    std::fprintf(stderr, "mesh generation failed: %s\n",
                 mesh_result.status().ToString().c_str());
    return 1;
  }
  TetraMesh mesh = mesh_result.MoveValue();
  const int frames = AnimationTimeSteps(which);
  std::printf("%s: %zu vertices, %zu tetrahedra, %d frames\n\n",
              AnimationMeshName(which).c_str(), mesh.num_vertices(),
              mesh.num_tetrahedra(), frames);

  // Exact executor, and an approximate one probing 1% of the surface —
  // the trade the paper suggests for visualization workloads (Fig. 12).
  Octopus exact;
  exact.Build(mesh);
  Octopus approximate(OctopusOptions{.surface_sample_fraction = 0.01});
  approximate.Build(mesh);

  AnimationDeformer deformer(which, 2.0f * EstimateMeanEdgeLength(mesh));
  Simulation sim(&mesh, &deformer);

  std::vector<VertexId> exact_result;
  std::vector<VertexId> approx_result;
  size_t exact_total = 0;
  size_t approx_total = 0;
  sim.Run(frames, [&](int frame) {
    // Camera box orbiting the model.
    const float t = static_cast<float>(frame) / frames;
    const Vec3 center(0.5f + 0.2f * std::cos(6.28f * t),
                      0.5f + 0.2f * std::sin(6.28f * t), 0.5f);
    const AABB camera = AABB::FromCenterHalfExtent(
        center, Vec3(0.15f, 0.15f, 0.15f));
    exact_result.clear();
    approx_result.clear();
    exact.RangeQuery(mesh, camera, &exact_result);
    approximate.RangeQuery(mesh, camera, &approx_result);
    exact_total += exact_result.size();
    approx_total += approx_result.size();
    if (frame % 8 == 1) {
      std::printf("frame %2d: camera box holds %5zu vertices (approx "
                  "retrieved %5zu)\n",
                  frame, exact_result.size(), approx_result.size());
    }
  });

  std::printf(
      "\nplayback done: exact retrieved %zu vertices total; 1%%-surface "
      "approximation retrieved %.1f%% of them\nwith %.1fx less probe work "
      "(%zu vs %zu vertices probed).\n",
      exact_total,
      exact_total == 0 ? 100.0 : 100.0 * approx_total / exact_total,
      static_cast<double>(exact.stats().probed_vertices) /
          std::max<size_t>(approximate.stats().probed_vertices, 1),
      exact.stats().probed_vertices, approximate.stats().probed_vertices);
  return 0;
}
