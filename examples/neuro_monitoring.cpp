// Copyright 2026 The OCTOPUS Reproduction Authors
//
// Neuroscience monitoring (paper Sec. III-B): a two-cell neuron mesh is
// deformed by a plasticity-style simulation; three monitoring tools run
// after every step, each issuing range queries on the live mesh:
//   * structural validation — vertex density statistics inside probes
//   * mesh quality          — inter-cell proximity in dense regions
//   * visualization         — a moving view-frustum-like box
//
//   $ ./examples/neuro_monitoring [steps]
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "mesh/generators/datasets.h"
#include "octopus/query_executor.h"
#include "sim/plasticity_deformer.h"
#include "sim/simulation.h"
#include "sim/workload.h"

int main(int argc, char** argv) {
  using namespace octopus;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 10;

  auto mesh_result = MakeNeuroMesh(/*level=*/1, /*scale=*/0.3);
  if (!mesh_result.ok()) {
    std::fprintf(stderr, "mesh generation failed: %s\n",
                 mesh_result.status().ToString().c_str());
    return 1;
  }
  TetraMesh mesh = mesh_result.MoveValue();
  std::printf("two-cell neuron mesh: %zu vertices, %zu tetrahedra\n\n",
              mesh.num_vertices(), mesh.num_tetrahedra());

  Octopus octopus;
  octopus.Build(mesh);

  PlasticityDeformer deformer(0.2f * EstimateMeanEdgeLength(mesh));
  Simulation sim(&mesh, &deformer);
  QueryGenerator queries(mesh);
  Rng rng(2026);

  std::vector<VertexId> result;
  sim.Run(steps, [&](int step) {
    // --- Structural validation: density in random sample volumes ---
    double density_sum = 0.0;
    for (int probe = 0; probe < 5; ++probe) {
      const AABB box = queries.MakeQuery(&rng, /*selectivity=*/0.002);
      result.clear();
      octopus.RangeQuery(mesh, box, &result);
      density_sum += static_cast<double>(result.size()) /
                     std::max(box.Volume(), 1e-12);
    }

    // --- Mesh quality: check the corridor between the two cells for
    //     intersection artifacts (vertices from both cells in one box) ---
    const AABB corridor(Vec3(0.42f, 0.42f, 0.42f),
                        Vec3(0.58f, 0.58f, 0.58f));
    result.clear();
    octopus.RangeQuery(mesh, corridor, &result);
    const size_t corridor_vertices = result.size();

    // --- Visualization: a slowly panning view box ---
    const float pan = 0.2f + 0.4f * static_cast<float>(step) / steps;
    const AABB frustum(Vec3(pan, 0.2f, 0.2f),
                       Vec3(pan + 0.25f, 0.75f, 0.75f));
    result.clear();
    octopus.RangeQuery(mesh, frustum, &result);

    std::printf("step %2d: density %.0f verts/unit^3 | corridor %zu verts "
                "| frustum %zu verts\n",
                step, density_sum / 5.0, corridor_vertices, result.size());
  });

  const PhaseStats& stats = octopus.stats();
  std::printf("\n%zu queries executed; %.2f ms total query time, zero "
              "index maintenance.\n",
              stats.queries,
              (stats.probe_nanos + stats.walk_nanos + stats.crawl_nanos) *
                  1e-6);
  return 0;
}
