// Copyright 2026 The OCTOPUS Reproduction Authors
//
// Quickstart: build a mesh, deform it like a simulation, and run exact
// range queries with OCTOPUS — no index maintenance between steps.
//
//   $ ./examples/quickstart
//
// Walks through the three core API pieces:
//   1. TetraMesh + generators   (the simulation substrate)
//   2. Deformer + Simulation    (the in-place SIMULATE phase)
//   3. Octopus                  (the MONITOR phase: exact range queries)
#include <cstdio>

#include "mesh/generators/grid_generator.h"
#include "octopus/query_executor.h"
#include "sim/random_deformer.h"
#include "sim/simulation.h"

int main() {
  using namespace octopus;

  // 1. A convex 20x20x20 box mesh (48k tetrahedra) over the unit cube.
  auto mesh_result =
      GenerateBoxMesh(20, 20, 20, AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)));
  if (!mesh_result.ok()) {
    std::fprintf(stderr, "mesh generation failed: %s\n",
                 mesh_result.status().ToString().c_str());
    return 1;
  }
  TetraMesh mesh = mesh_result.MoveValue();
  std::printf("mesh: %zu vertices, %zu tetrahedra, degree %.1f\n",
              mesh.num_vertices(), mesh.num_tetrahedra(),
              mesh.AverageDegree());

  // 2. OCTOPUS preprocessing: build the surface index ONCE. Deformation
  //    never invalidates it.
  Octopus octopus;
  octopus.Build(mesh);
  std::printf("surface index: %zu surface vertices (%.1f%% of the mesh)\n",
              octopus.surface_index().num_surface_vertices(),
              100.0 * octopus.surface_index().num_surface_vertices() /
                  mesh.num_vertices());

  // 3. Simulate: every vertex moves unpredictably at every time step.
  RandomDeformer deformer(/*amplitude=*/0.01f);
  Simulation sim(&mesh, &deformer);

  const AABB query(Vec3(0.30f, 0.30f, 0.30f), Vec3(0.45f, 0.45f, 0.45f));
  std::vector<VertexId> result;
  sim.Run(5, [&](int step) {
    // MONITOR phase: no BeforeQueries / rebuild needed — just query.
    result.clear();
    octopus.RangeQuery(mesh, query, &result);
    std::printf("step %d: %zu vertices inside the query box\n", step,
                result.size());
  });

  // Per-phase statistics accumulated over the five queries.
  const PhaseStats& stats = octopus.stats();
  std::printf(
      "\nphase totals over %zu queries:\n"
      "  surface probe: %.3f ms (%zu vertices probed)\n"
      "  directed walk: %.3f ms (%zu invocations)\n"
      "  crawling:      %.3f ms (%zu edges traversed, %zu results)\n",
      stats.queries, stats.probe_nanos * 1e-6, stats.probed_vertices,
      stats.walk_nanos * 1e-6, stats.walk_invocations,
      stats.crawl_nanos * 1e-6, stats.crawl_edges, stats.result_vertices);
  return 0;
}
