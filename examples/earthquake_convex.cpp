// Copyright 2026 The OCTOPUS Reproduction Authors
//
// Convex-mesh monitoring (paper Sec. IV-F): an earthquake-style basin
// slab deforms affinely (ground shaking). Because the mesh stays convex,
// OCTOPUS-CON skips the surface probe entirely and uses a deliberately
// STALE uniform grid — built once, never updated — to seed the directed
// walk. The example contrasts it with full OCTOPUS and verifies both
// against a linear scan.
//
//   $ ./examples/earthquake_convex [steps]
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "index/linear_scan.h"
#include "mesh/generators/datasets.h"
#include "octopus/octopus_con.h"
#include "octopus/query_executor.h"
#include "sim/simulation.h"
#include "sim/wave_deformer.h"
#include "sim/workload.h"

int main(int argc, char** argv) {
  using namespace octopus;
  const int steps = argc > 1 ? std::atoi(argv[1]) : 15;

  auto mesh_result =
      MakeEarthquakeMesh(EarthquakeResolution::kSF2, /*scale=*/1.0);
  if (!mesh_result.ok()) {
    std::fprintf(stderr, "mesh generation failed: %s\n",
                 mesh_result.status().ToString().c_str());
    return 1;
  }
  TetraMesh mesh = mesh_result.MoveValue();
  std::printf("basin mesh SF2: %zu vertices, %zu tetrahedra\n\n",
              mesh.num_vertices(), mesh.num_tetrahedra());

  OctopusCon con(OctopusConOptions{.grid_resolution = 10});  // 1000 cells
  con.Build(mesh);  // grid snapshot of the INITIAL positions
  Octopus octopus;
  octopus.Build(mesh);
  LinearScan scan;

  WaveDeformer deformer(/*strain_amplitude=*/0.02f,
                        /*shift_amplitude=*/0.01f);
  Simulation sim(&mesh, &deformer);
  QueryGenerator queries(mesh);
  Rng rng(7);

  size_t mismatches = 0;
  std::vector<VertexId> got_con;
  std::vector<VertexId> got_scan;
  sim.Run(steps, [&](int step) {
    const AABB box = queries.MakeQuery(&rng, /*selectivity=*/0.001);
    got_con.clear();
    got_scan.clear();
    con.RangeQuery(mesh, box, &got_con);
    scan.RangeQuery(mesh, box, &got_scan);
    if (got_con.size() != got_scan.size()) ++mismatches;
    std::printf("step %2d: %5zu results (grid is %d steps stale)\n", step,
                got_con.size(), step);
  });

  const PhaseStats& cs = con.stats();
  const PhaseStats& os = octopus.stats();
  (void)os;
  std::printf(
      "\nOCTOPUS-CON over %zu queries: walk %.2f ms (%zu vertices), crawl "
      "%.2f ms — no surface probe at all.\n"
      "exactness vs linear scan: %zu mismatches (expect 0; convexity "
      "guarantees internal reachability).\n",
      cs.queries, cs.walk_nanos * 1e-6, cs.walk_vertices,
      cs.crawl_nanos * 1e-6, mismatches);
  return mismatches == 0 ? 0 : 1;
}
