// Copyright 2026 The OCTOPUS Reproduction Authors
#include "client/remote_client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace octopus::client {
namespace {

using server::Buffer;
using server::ErrorCode;
using server::FrameType;

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

int64_t SteadyNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t WallNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<std::unique_ptr<RemoteClient>> RemoteClient::Connect(
    const std::string& host, uint16_t port, const Options& options) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = getaddrinfo(host.c_str(), port_str.c_str(), &hints,
                             &resolved);
  if (rc != 0) {
    return Status::IOError("resolve " + host + ": " + gai_strerror(rc));
  }

  int fd = -1;
  Status last = Status::IOError("no addresses for " + host);
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last = Errno("connect " + host + ":" + port_str);
    close(fd);
    fd = -1;
  }
  freeaddrinfo(resolved);
  if (fd < 0) return last;

  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options.io_timeout_nanos > 0) {
    timeval tv{};
    tv.tv_sec = options.io_timeout_nanos / 1'000'000'000;
    tv.tv_usec = (options.io_timeout_nanos % 1'000'000'000) / 1'000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }

  std::unique_ptr<RemoteClient> client(new RemoteClient(fd));
  Buffer hello;
  server::AppendHello(&hello, server::HelloFrame{});
  OCTOPUS_RETURN_NOT_OK(client->SendAll(hello));

  FrameType type;
  Buffer payload;
  OCTOPUS_RETURN_NOT_OK(client->ReadFrame(&type, &payload));
  if (type == FrameType::kError) {
    server::ErrorFrame error;
    OCTOPUS_RETURN_NOT_OK(server::ParseError(payload, &error));
    return client->StatusFromError(error);
  }
  if (type != FrameType::kWelcome) {
    return Status::IOError("handshake: expected WELCOME frame");
  }
  OCTOPUS_RETURN_NOT_OK(server::ParseWelcome(payload, &client->welcome_));
  if (client->welcome_.version != server::kProtocolVersion) {
    return Status::IOError("server protocol version " +
                           std::to_string(client->welcome_.version) +
                           " unsupported");
  }
  return client;
}

RemoteClient::~RemoteClient() { Close(); }

void RemoteClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status RemoteClient::SendAll(const Buffer& data) {
  if (fd_ < 0) return Status::IOError("connection closed");
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    return Errno("send");
  }
  return Status::OK();
}

Status RemoteClient::ReadFrame(FrameType* type, Buffer* payload,
                               int64_t* first_byte_nanos) {
  if (fd_ < 0) return Status::IOError("connection closed");
  uint8_t header[server::kFrameHeaderBytes];
  size_t have = 0;
  while (have < sizeof(header)) {
    const ssize_t n = recv(fd_, header + have, sizeof(header) - have, 0);
    if (n > 0) {
      if (have == 0 && first_byte_nanos != nullptr) {
        *first_byte_nanos = SteadyNanos();
      }
      have += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    return n == 0 ? Status::IOError("connection closed by server")
                  : Errno("recv");
  }
  auto parsed = server::ParseFrameHeader(header);
  if (!parsed.ok()) {
    Close();
    return parsed.status();
  }
  *type = parsed.Value().type;
  payload->resize(parsed.Value().payload_bytes);
  have = 0;
  while (have < payload->size()) {
    const ssize_t n =
        recv(fd_, payload->data() + have, payload->size() - have, 0);
    if (n > 0) {
      have += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    return n == 0 ? Status::IOError("connection closed mid-frame")
                  : Errno("recv");
  }
  return Status::OK();
}

Status RemoteClient::StatusFromError(const server::ErrorFrame& error) {
  const std::string text = std::string("server error ") +
                           server::ErrorCodeName(error.code) + ": " +
                           error.message;
  if (error.code == ErrorCode::kOverloaded) {
    // Request-scoped rejection: the connection remains usable.
    return Status::ResourceExhausted(text);
  }
  if (error.code == ErrorCode::kInternal) {
    // Also request-scoped (e.g. a result set over the frame cap): the
    // stream stays framed, so keep the connection.
    return Status::IOError(text);
  }
  if (error.code == ErrorCode::kEpochGone) {
    // Request-scoped: the epoch fell out of the bounded history (or was
    // never pinned); current-epoch queries on this connection still
    // work.
    return Status::NotFound(text);
  }
  Close();
  switch (error.code) {
    case ErrorCode::kBadMagic:
    case ErrorCode::kVersionMismatch:
    case ErrorCode::kMalformedFrame:
    case ErrorCode::kFrameTooLarge:
    case ErrorCode::kUnexpectedFrame:
      return Status::InvalidArgument(text);
    case ErrorCode::kShuttingDown:
    case ErrorCode::kTimeout:
      return Status::ResourceExhausted(text);
    default:
      return Status::IOError(text);
  }
}

Result<RemoteBatchResult> RemoteClient::ExecuteBatch(
    std::span<const AABB> boxes, uint64_t epoch) {
  const uint64_t request_id = next_request_id_++;
  const uint64_t span_id = record_spans_ ? next_span_id_++ : 0;
  const int64_t start_wall = record_spans_ ? WallNanos() : 0;
  const int64_t call_start = record_spans_ ? SteadyNanos() : 0;
  Buffer out;
  server::AppendQueryBatch(&out, request_id, boxes, epoch, span_id);
  OCTOPUS_RETURN_NOT_OK(SendAll(out));
  const int64_t sent_at = record_spans_ ? SteadyNanos() : 0;

  // Responses to a blocking client arrive in request order; skip
  // nothing, but verify the id actually matches.
  FrameType type;
  Buffer payload;
  int64_t first_byte_at = 0;
  OCTOPUS_RETURN_NOT_OK(
      ReadFrame(&type, &payload,
                record_spans_ ? &first_byte_at : nullptr));
  if (type == FrameType::kError) {
    server::ErrorFrame error;
    OCTOPUS_RETURN_NOT_OK(server::ParseError(payload, &error));
    return StatusFromError(error);
  }
  if (type != FrameType::kResult) {
    Close();
    return Status::IOError("expected RESULT frame");
  }
  uint64_t got_id = 0;
  RemoteBatchResult result;
  std::vector<std::vector<VertexId>> per_query;
  OCTOPUS_RETURN_NOT_OK(
      server::ParseResult(payload, &got_id, &result.stats, &per_query));
  if (got_id != request_id) {
    Close();
    return Status::IOError("RESULT for request " + std::to_string(got_id) +
                           ", expected " + std::to_string(request_id));
  }
  if (per_query.size() != boxes.size()) {
    Close();
    return Status::IOError("RESULT query count mismatch");
  }
  result.results.per_query = std::move(per_query);
  result.results.epoch = result.stats.epoch;
  if (record_spans_) {
    const int64_t done_at = SteadyNanos();
    // A response so small the kernel delivered it whole can make the
    // first-byte stamp and the completion stamp collapse; the split is
    // then simply zero receive time, never negative.
    if (first_byte_at < sent_at) first_byte_at = sent_at;
    obs::ClientCallSpan span;
    span.span_id = span_id;
    span.request_id = request_id;
    span.server_trace_id = result.stats.trace_id;
    span.start_unix_nanos = start_wall;
    span.send_nanos = sent_at - call_start;
    span.wait_nanos = first_byte_at - sent_at;
    span.recv_nanos = done_at - first_byte_at;
    span.queries = boxes.size();
    span.epoch = epoch;
    spans_.push_back(span);
  }
  return result;
}

Result<server::EpochInfoWire> RemoteClient::RoundTripEpochInfo(
    const Buffer& request) {
  OCTOPUS_RETURN_NOT_OK(SendAll(request));
  FrameType type;
  Buffer payload;
  OCTOPUS_RETURN_NOT_OK(ReadFrame(&type, &payload));
  if (type == FrameType::kError) {
    server::ErrorFrame error;
    OCTOPUS_RETURN_NOT_OK(server::ParseError(payload, &error));
    return StatusFromError(error);
  }
  if (type != FrameType::kEpochInfo) {
    Close();
    return Status::IOError("expected EPOCH_INFO frame");
  }
  server::EpochInfoWire info;
  OCTOPUS_RETURN_NOT_OK(server::ParseEpochInfo(payload, &info));
  return info;
}

Result<server::EpochInfoWire> RemoteClient::Step(uint32_t steps) {
  if (steps > server::kMaxStepsPerFrame) {
    // Statically detectable: fail locally instead of letting the
    // server reject the frame as malformed and close the connection.
    return Status::InvalidArgument(
        "steps exceeds the per-frame cap of " +
        std::to_string(server::kMaxStepsPerFrame) +
        "; send multiple STEP frames");
  }
  Buffer out;
  server::AppendStep(&out, server::StepFrame{steps});
  return RoundTripEpochInfo(out);
}

Result<server::EpochInfoWire> RemoteClient::PinEpoch(uint64_t epoch) {
  Buffer out;
  server::AppendPinEpoch(&out, server::PinEpochFrame{epoch});
  return RoundTripEpochInfo(out);
}

Result<server::EpochInfoWire> RemoteClient::UnpinEpoch(uint64_t epoch) {
  Buffer out;
  server::AppendUnpinEpoch(&out, server::PinEpochFrame{epoch});
  return RoundTripEpochInfo(out);
}

Result<server::ServerStatsWire> RemoteClient::FetchStats() {
  Buffer out;
  server::AppendStatsRequest(&out);
  OCTOPUS_RETURN_NOT_OK(SendAll(out));
  FrameType type;
  Buffer payload;
  OCTOPUS_RETURN_NOT_OK(ReadFrame(&type, &payload));
  if (type == FrameType::kError) {
    server::ErrorFrame error;
    OCTOPUS_RETURN_NOT_OK(server::ParseError(payload, &error));
    return StatusFromError(error);
  }
  if (type != FrameType::kStats) {
    Close();
    return Status::IOError("expected STATS frame");
  }
  server::ServerStatsWire stats;
  OCTOPUS_RETURN_NOT_OK(server::ParseStats(payload, &stats));
  return stats;
}

Result<server::TraceDumpWire> RemoteClient::FetchTraceDump() {
  Buffer out;
  server::AppendTraceDumpRequest(&out);
  OCTOPUS_RETURN_NOT_OK(SendAll(out));
  FrameType type;
  Buffer payload;
  OCTOPUS_RETURN_NOT_OK(ReadFrame(&type, &payload));
  if (type == FrameType::kError) {
    server::ErrorFrame error;
    OCTOPUS_RETURN_NOT_OK(server::ParseError(payload, &error));
    return StatusFromError(error);
  }
  if (type != FrameType::kTraceDump) {
    Close();
    return Status::IOError("expected TRACE_DUMP frame");
  }
  server::TraceDumpWire dump;
  OCTOPUS_RETURN_NOT_OK(server::ParseTraceDump(payload, &dump));
  return dump;
}

}  // namespace octopus::client
