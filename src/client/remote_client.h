// Copyright 2026 The OCTOPUS Reproduction Authors
// Blocking client library for the OCTP query service: connect +
// handshake, send query batches, receive demultiplexed results and
// server stats. One instance per connection, not thread-safe (open one
// client per driving thread — the server coalesces across connections).
#ifndef OCTOPUS_CLIENT_REMOTE_CLIENT_H_
#define OCTOPUS_CLIENT_REMOTE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/aabb.h"
#include "common/status.h"
#include "engine/query_batch.h"
#include "obs/trace.h"
#include "server/protocol.h"

namespace octopus::client {

/// Result of one remote batch: per-query result sets in request order
/// plus the executing batch's stats (see `server::BatchStatsWire` for
/// the coalescing caveat). `results.epoch` (== `stats.epoch`) is the
/// mesh epoch the whole batch executed against — epoch-consistent by
/// construction, and bit-comparable to an in-process engine run at the
/// same step of the same deformer trajectory.
struct RemoteBatchResult {
  engine::QueryBatchResult results;
  server::BatchStatsWire stats;
};

struct RemoteClientOptions {
  /// Socket receive/send timeout; 0 disables (block forever).
  int64_t io_timeout_nanos = 30'000'000'000;
};

class RemoteClient {
 public:
  using Options = RemoteClientOptions;

  /// Connects to `host:port` (IPv4 literal or resolvable name) and
  /// performs the OCTP handshake.
  static Result<std::unique_ptr<RemoteClient>> Connect(
      const std::string& host, uint16_t port,
      const Options& options = Options());

  ~RemoteClient();

  RemoteClient(const RemoteClient&) = delete;
  RemoteClient& operator=(const RemoteClient&) = delete;

  /// What the server reported in its WELCOME frame.
  const server::WelcomeFrame& server_info() const { return welcome_; }

  /// Executes `boxes` remotely; blocks until the RESULT arrives.
  /// `epoch` 0 (the default) runs against the server's current epoch;
  /// any other value runs against that exact historical epoch — the
  /// repeatable-read path, which requires the epoch to still be in the
  /// server's bounded history (pin it to be sure). An OVERLOADED
  /// rejection surfaces as `ResourceExhausted`, an EPOCH_GONE as
  /// `NotFound` (the connection stays usable in both cases); other
  /// error frames and transport failures surface as their mapped
  /// Status and poison the connection.
  Result<RemoteBatchResult> ExecuteBatch(std::span<const AABB> boxes,
                                         uint64_t epoch = 0);

  /// Pins an epoch (0 = current) against history eviction until
  /// `UnpinEpoch` or disconnect; returns the pinned epoch's identity —
  /// the id to pass to `ExecuteBatch` for repeatable reads across
  /// steps. EPOCH_GONE (`NotFound`) when it was already evicted.
  Result<server::EpochInfoWire> PinEpoch(uint64_t epoch = 0);
  /// Releases one pin taken by this session; answers the server's
  /// current epoch. `NotFound` when this session holds no such pin.
  Result<server::EpochInfoWire> UnpinEpoch(uint64_t epoch);

  /// Enables per-call span recording: every subsequent successful
  /// `ExecuteBatch` assigns a span id, sends it in the QUERY_BATCH (v6,
  /// so the server's slow-query log can quote it), times the call's
  /// send / wait / receive split and keeps an `obs::ClientCallSpan`
  /// carrying the server's echoed trace id — the client half of
  /// `octopus_cli trace dump --merge-client`.
  void set_record_spans(bool on) { record_spans_ = on; }
  bool record_spans() const { return record_spans_; }
  /// Spans recorded so far, in call order.
  const std::vector<obs::ClientCallSpan>& spans() const { return spans_; }

  /// Fetches the server's metrics snapshot.
  Result<server::ServerStatsWire> FetchStats();

  /// Fetches the server's flight-recorder ring (oldest record first).
  /// An empty dump is a valid answer — the server may be running with
  /// tracing disabled (`serve --trace-ring 0`).
  Result<server::TraceDumpWire> FetchTraceDump();

  /// Advances the server's simulation `steps` steps (requires a dynamic
  /// server for steps > 0) and returns the resulting epoch. The
  /// control-plane verb behind `octopus_cli step`.
  Result<server::EpochInfoWire> Step(uint32_t steps);

  /// Current epoch + deformer info without advancing anything (legal on
  /// static servers too: epoch {0, 0}, dynamic = 0).
  Result<server::EpochInfoWire> FetchEpochInfo() { return Step(0); }

  void Close();

 private:
  explicit RemoteClient(int fd) : fd_(fd) {}

  Status SendAll(const server::Buffer& data);
  /// Sends one encoded frame and reads the EPOCH_INFO answer (the
  /// shared shape of STEP, PIN_EPOCH and UNPIN_EPOCH).
  Result<server::EpochInfoWire> RoundTripEpochInfo(
      const server::Buffer& request);
  /// Reads exactly one frame (header + payload) into `payload`/`type`.
  /// When `first_byte_nanos` is non-null, it receives the monotonic
  /// instant the first response byte arrived (the wait/receive split).
  Status ReadFrame(server::FrameType* type, server::Buffer* payload,
                   int64_t* first_byte_nanos = nullptr);
  /// Maps an ERROR frame to a Status (and closes unless it is a
  /// request-scoped overload rejection).
  Status StatusFromError(const server::ErrorFrame& error);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  server::WelcomeFrame welcome_;
  bool record_spans_ = false;
  uint64_t next_span_id_ = 1;
  std::vector<obs::ClientCallSpan> spans_;
};

}  // namespace octopus::client

#endif  // OCTOPUS_CLIENT_REMOTE_CLIENT_H_
