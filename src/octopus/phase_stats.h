// Copyright 2026 The OCTOPUS Reproduction Authors
// Per-phase statistics of the OCTOPUS executor (probe / walk / crawl).
// Lives in its own header so the engine layer's `ExecutionContext` can
// hold a thread-local copy without pulling in the executor itself.
#ifndef OCTOPUS_OCTOPUS_PHASE_STATS_H_
#define OCTOPUS_OCTOPUS_PHASE_STATS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "storage/page.h"

namespace octopus {

/// \brief Accumulated per-phase statistics across queries.
///
/// Thread-safety invariant: a `PhaseStats` instance is never shared
/// between concurrently executing queries. During a parallel batch each
/// execution context accumulates into its own local instance; the locals
/// are merged (`Merge`) into the index-level aggregate on the calling
/// thread after all workers have joined, in deterministic shard order.
struct PhaseStats {
  int64_t probe_nanos = 0;
  int64_t walk_nanos = 0;
  int64_t crawl_nanos = 0;
  /// Batch-end fold of per-context stats into the aggregate (the merge
  /// phase of a sharded batch). Timed on the calling thread by
  /// `engine::ContextPool::MergeStats`, so it lands in the aggregate —
  /// not in any context-local instance — and is zero for single-query
  /// paths that never fold.
  int64_t merge_nanos = 0;
  size_t queries = 0;
  size_t probed_vertices = 0;   ///< surface vertices inspected
  size_t walk_invocations = 0;  ///< queries that needed a directed walk
  size_t walk_vertices = 0;     ///< vertices expanded during walks
  size_t crawl_edges = 0;       ///< adjacency entries inspected
  size_t result_vertices = 0;
  /// Staleness of the spatial structures when these queries ran:
  /// simulation steps advanced since the surface index was built (the
  /// index is never rebuilt on deformation — the paper's point — so
  /// this is the epoch step of a versioned backend, 0 for a static
  /// mesh). Merged as a max: the most-stale state the merged span
  /// executed against.
  size_t stale_steps = 0;
  /// Page-I/O counters of out-of-core execution (all zero when queries
  /// run over the in-memory accessor). Merged in shard order like every
  /// other counter; see `storage::PageIOStats` for the determinism
  /// caveat under a shared pool.
  storage::PageIOStats page_io;

  void Reset() { *this = PhaseStats{}; }

  /// Adds `other`'s counters into this instance (batch-end merge).
  void Merge(const PhaseStats& other) {
    probe_nanos += other.probe_nanos;
    walk_nanos += other.walk_nanos;
    crawl_nanos += other.crawl_nanos;
    merge_nanos += other.merge_nanos;
    queries += other.queries;
    probed_vertices += other.probed_vertices;
    walk_invocations += other.walk_invocations;
    walk_vertices += other.walk_vertices;
    crawl_edges += other.crawl_edges;
    result_vertices += other.result_vertices;
    stale_steps = std::max(stale_steps, other.stale_steps);
    page_io.Merge(other.page_io);
  }

  int64_t TotalNanos() const {
    return probe_nanos + walk_nanos + crawl_nanos + merge_nanos;
  }
};

}  // namespace octopus

#endif  // OCTOPUS_OCTOPUS_PHASE_STATS_H_
