// Copyright 2026 The OCTOPUS Reproduction Authors
#include "octopus/crawler.h"

namespace octopus {

void Crawler::EnsureSize(size_t num_vertices) {
  if (mode_ == VisitedMode::kEpochArray &&
      visit_epoch_.size() < num_vertices) {
    visit_epoch_.resize(num_vertices, 0);
  }
}

bool Crawler::MarkVisited(VertexId v) {
  if (mode_ == VisitedMode::kEpochArray) {
    if (visit_epoch_[v] == epoch_) return false;
    visit_epoch_[v] = epoch_;
    return true;
  }
  return visited_set_.insert(v).second;
}

}  // namespace octopus
