// Copyright 2026 The OCTOPUS Reproduction Authors
#include "octopus/crawler.h"

#include <cassert>

namespace octopus {

void Crawler::EnsureSize(size_t num_vertices) {
  if (mode_ == VisitedMode::kEpochArray &&
      visit_epoch_.size() < num_vertices) {
    visit_epoch_.resize(num_vertices, 0);
  }
}

bool Crawler::MarkVisited(VertexId v) {
  if (mode_ == VisitedMode::kEpochArray) {
    if (visit_epoch_[v] == epoch_) return false;
    visit_epoch_[v] = epoch_;
    return true;
  }
  return visited_set_.insert(v).second;
}

CrawlStats Crawler::Crawl(const MeshGraphView& mesh, const AABB& box,
                          std::span<const VertexId> starts,
                          std::vector<VertexId>* out) {
  CrawlStats stats;
  if (mode_ == VisitedMode::kEpochArray) {
    assert(visit_epoch_.size() >= mesh.num_vertices() &&
           "EnsureSize not called for this mesh");
    if (++epoch_ == 0) {
      // Epoch counter wrapped: reset all stamps once, then continue.
      std::fill(visit_epoch_.begin(), visit_epoch_.end(), 0u);
      epoch_ = 1;
    }
  } else {
    visited_set_.clear();
  }

  queue_.clear();
  for (VertexId s : starts) {
    if (!MarkVisited(s)) continue;
    ++stats.vertices_touched;
    if (!box.Contains(mesh.position(s))) continue;
    queue_.push_back(s);
    out->push_back(s);
    ++stats.vertices_inside;
  }

  // BFS; queue_ doubles as the FIFO with a moving head index.
  for (size_t head = 0; head < queue_.size(); ++head) {
    const VertexId v = queue_[head];
    for (VertexId n : mesh.neighbors(v)) {
      ++stats.edges_traversed;
      if (!MarkVisited(n)) continue;
      ++stats.vertices_touched;
      // Stop criteria: do not expand past vertices outside the query.
      if (!box.Contains(mesh.position(n))) continue;
      queue_.push_back(n);
      out->push_back(n);
      ++stats.vertices_inside;
    }
  }
  return stats;
}

}  // namespace octopus
