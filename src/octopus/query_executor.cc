// Copyright 2026 The OCTOPUS Reproduction Authors
#include "octopus/query_executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/timer.h"
#include "engine/thread_pool.h"

namespace octopus {

void ExecuteOctopusQuery(const MeshGraphView& graph,
                         const SurfaceIndex& surface_index,
                         const OctopusOptions& options, const AABB& box,
                         engine::ExecutionContext* context,
                         std::vector<VertexId>* out) {
  Timer timer;
  PhaseStats* stats = &context->stats;
  ++stats->queries;

  // --- Phase 1: surface probe (Sec. IV-C) ---
  // Scan the surface vertices in ascending-id order (streaming access over
  // the position array); collect those inside the query as crawl starts,
  // and track the closest one as a fallback walk start. Under surface
  // approximation (Sec. IV-H2) only every `stride`-th vertex is probed —
  // the paper's "equidistant sample" of the surface.
  std::vector<VertexId>* start_scratch = &context->start_scratch;
  start_scratch->clear();
  const std::span<const VertexId> surface = surface_index.probe_order();
  const size_t stride =
      options.surface_sample_fraction >= 1.0
          ? 1
          : std::max<size_t>(
                1, static_cast<size_t>(std::llround(
                       1.0 / options.surface_sample_fraction)));
  VertexId closest = kInvalidVertex;
  float closest_d2 = std::numeric_limits<float>::max();
  size_t probed = 0;
  const Vec3* positions = graph.positions.data();
  constexpr size_t kPrefetchAhead = 16;
  for (size_t i = 0; i < surface.size(); i += stride) {
    // The probe is a strided gather through the position array; software
    // prefetch hides most of the per-entry miss latency.
    if (i + kPrefetchAhead * stride < surface.size()) {
      __builtin_prefetch(positions + surface[i + kPrefetchAhead * stride]);
    }
    const VertexId v = surface[i];
    ++probed;
    const float d2 = box.SquaredDistanceTo(positions[v]);
    if (d2 == 0.0f) {
      start_scratch->push_back(v);
    } else if (start_scratch->empty() && d2 < closest_d2) {
      closest_d2 = d2;
      closest = v;
    }
  }
  stats->probed_vertices += probed;
  stats->probe_nanos += timer.ElapsedNanos();

  // --- Phase 2: directed walk (Sec. IV-D), only if the probe was dry ---
  if (start_scratch->empty()) {
    timer.Restart();
    ++stats->walk_invocations;
    const WalkResult walk = DirectedWalk(graph, box, closest);
    stats->walk_vertices += walk.vertices_visited;
    stats->walk_nanos += timer.ElapsedNanos();
    if (!walk.ok()) {
      return;  // query does not intersect the mesh: empty result
    }
    start_scratch->push_back(walk.found);
  }

  // --- Phase 3: crawling (Sec. IV-B) ---
  timer.Restart();
  const CrawlStats crawl =
      context->crawler.Crawl(graph, box, *start_scratch, out);
  stats->crawl_edges += crawl.edges_traversed;
  stats->result_vertices += crawl.vertices_inside;
  stats->crawl_nanos += timer.ElapsedNanos();
}

void ExecuteOctopusBatch(const MeshGraphView& graph,
                         const SurfaceIndex& surface_index,
                         const OctopusOptions& options,
                         std::span<const AABB> boxes,
                         engine::QueryBatchResult* out,
                         engine::ThreadPool* pool,
                         engine::ContextPool* contexts) {
  out->Reset(boxes.size());
  const int shards =
      pool == nullptr
          ? 1
          : static_cast<int>(
                std::min<size_t>(pool->threads(),
                                 std::max<size_t>(boxes.size(), 1)));
  // Contexts are created/sized on the calling thread, before forking.
  contexts->Ensure(shards);

  auto run_shard = [&](int shard) {
    // The pool always invokes one call per pool thread; threads beyond
    // the (batch-size-clamped) shard count have no work.
    if (shard >= shards) return;
    // Contiguous sharding: shard s owns queries [s*n/T, (s+1)*n/T).
    const size_t begin = boxes.size() * shard / shards;
    const size_t end = boxes.size() * (shard + 1) / shards;
    engine::ExecutionContext* context = contexts->context(shard);
    for (size_t q = begin; q < end; ++q) {
      ExecuteOctopusQuery(graph, surface_index, options, boxes[q], context,
                          &out->per_query[q]);
    }
  };

  if (shards == 1) {
    run_shard(0);
  } else {
    pool->Run(run_shard);
  }

  // Deterministic merge at batch end, on the calling thread: counts are
  // identical for any thread count (timings naturally vary).
  contexts->MergeStats(shards);
}

Octopus::Octopus(OctopusOptions options)
    : options_(options), contexts_(options.visited_mode) {
  assert(options_.surface_sample_fraction > 0.0 &&
         options_.surface_sample_fraction <= 1.0);
  surface_index_ = SurfaceIndex(SurfaceIndex::Options{
      .support_restructuring = options_.support_restructuring,
  });
}

void Octopus::Build(const TetraMesh& mesh) {
  surface_index_.Build(mesh);
  contexts_.set_num_vertices(mesh.num_vertices());
  contexts_.Ensure(1);
}

void Octopus::RangeQuery(const TetraMesh& mesh, const AABB& box,
                         std::vector<VertexId>* out) const {
  contexts_.Ensure(1);
  ExecuteOctopusQuery(mesh.Graph(), surface_index_, options_, box,
                      contexts_.context(0), out);
  // Single-query path: fold the context delta into the aggregate
  // immediately so `stats()` stays live between calls, as it was when the
  // stats lived inside the index.
  contexts_.MergeStats(1);
}

void Octopus::RangeQueryBatch(const TetraMesh& mesh,
                              std::span<const AABB> boxes,
                              engine::QueryBatchResult* out,
                              engine::ThreadPool* pool) const {
  ExecuteOctopusBatch(mesh.Graph(), surface_index_, options_, boxes, out,
                      pool, &contexts_);
}

size_t Octopus::FootprintBytes() const {
  return surface_index_.FootprintBytes() + contexts_.ScratchBytes();
}

void Octopus::OnRestructure(const TetraMesh& mesh,
                            const RestructureDelta& delta) {
  surface_index_.ApplyDelta(delta);
  contexts_.set_num_vertices(mesh.num_vertices());
}

}  // namespace octopus
