// Copyright 2026 The OCTOPUS Reproduction Authors
#include "octopus/query_executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/timer.h"

namespace octopus {

void ExecuteOctopusQuery(const MeshGraphView& graph,
                         const SurfaceIndex& surface_index,
                         const OctopusOptions& options, const AABB& box,
                         Crawler* crawler,
                         std::vector<VertexId>* start_scratch,
                         PhaseStats* stats, std::vector<VertexId>* out) {
  Timer timer;
  ++stats->queries;

  // --- Phase 1: surface probe (Sec. IV-C) ---
  // Scan the surface vertices in ascending-id order (streaming access over
  // the position array); collect those inside the query as crawl starts,
  // and track the closest one as a fallback walk start. Under surface
  // approximation (Sec. IV-H2) only every `stride`-th vertex is probed —
  // the paper's "equidistant sample" of the surface.
  start_scratch->clear();
  const std::span<const VertexId> surface = surface_index.probe_order();
  const size_t stride =
      options.surface_sample_fraction >= 1.0
          ? 1
          : std::max<size_t>(
                1, static_cast<size_t>(std::llround(
                       1.0 / options.surface_sample_fraction)));
  VertexId closest = kInvalidVertex;
  float closest_d2 = std::numeric_limits<float>::max();
  size_t probed = 0;
  const Vec3* positions = graph.positions.data();
  constexpr size_t kPrefetchAhead = 16;
  for (size_t i = 0; i < surface.size(); i += stride) {
    // The probe is a strided gather through the position array; software
    // prefetch hides most of the per-entry miss latency.
    if (i + kPrefetchAhead * stride < surface.size()) {
      __builtin_prefetch(positions + surface[i + kPrefetchAhead * stride]);
    }
    const VertexId v = surface[i];
    ++probed;
    const float d2 = box.SquaredDistanceTo(positions[v]);
    if (d2 == 0.0f) {
      start_scratch->push_back(v);
    } else if (start_scratch->empty() && d2 < closest_d2) {
      closest_d2 = d2;
      closest = v;
    }
  }
  stats->probed_vertices += probed;
  stats->probe_nanos += timer.ElapsedNanos();

  // --- Phase 2: directed walk (Sec. IV-D), only if the probe was dry ---
  if (start_scratch->empty()) {
    timer.Restart();
    ++stats->walk_invocations;
    const WalkResult walk = DirectedWalk(graph, box, closest);
    stats->walk_vertices += walk.vertices_visited;
    stats->walk_nanos += timer.ElapsedNanos();
    if (!walk.ok()) {
      return;  // query does not intersect the mesh: empty result
    }
    start_scratch->push_back(walk.found);
  }

  // --- Phase 3: crawling (Sec. IV-B) ---
  timer.Restart();
  const CrawlStats crawl = crawler->Crawl(graph, box, *start_scratch, out);
  stats->crawl_edges += crawl.edges_traversed;
  stats->result_vertices += crawl.vertices_inside;
  stats->crawl_nanos += timer.ElapsedNanos();
}

Octopus::Octopus(OctopusOptions options)
    : options_(options), crawler_(options.visited_mode) {
  assert(options_.surface_sample_fraction > 0.0 &&
         options_.surface_sample_fraction <= 1.0);
  surface_index_ = SurfaceIndex(SurfaceIndex::Options{
      .support_restructuring = options_.support_restructuring,
  });
}

void Octopus::Build(const TetraMesh& mesh) {
  surface_index_.Build(mesh);
  crawler_.EnsureSize(mesh.num_vertices());
}

void Octopus::RangeQuery(const TetraMesh& mesh, const AABB& box,
                         std::vector<VertexId>* out) {
  ExecuteOctopusQuery(mesh.Graph(), surface_index_, options_, box, &crawler_,
                      &start_scratch_, &stats_, out);
}

size_t Octopus::FootprintBytes() const {
  return surface_index_.FootprintBytes() + crawler_.ScratchBytes() +
         start_scratch_.capacity() * sizeof(VertexId);
}

void Octopus::OnRestructure(const TetraMesh& mesh,
                            const RestructureDelta& delta) {
  surface_index_.ApplyDelta(delta);
  crawler_.EnsureSize(mesh.num_vertices());
}

}  // namespace octopus
