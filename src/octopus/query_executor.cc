// Copyright 2026 The OCTOPUS Reproduction Authors
#include "octopus/query_executor.h"

#include <cassert>

namespace octopus {

void ExecuteOctopusQuery(const MeshGraphView& graph,
                         const SurfaceIndex& surface_index,
                         const OctopusOptions& options, const AABB& box,
                         engine::ExecutionContext* context,
                         std::vector<VertexId>* out) {
  storage::InMemoryMeshAccessor accessor(graph);
  ExecuteOctopusQuery(accessor, surface_index, options, box, context, out);
}

void ExecuteOctopusBatch(const MeshGraphView& graph,
                         const SurfaceIndex& surface_index,
                         const OctopusOptions& options,
                         std::span<const AABB> boxes,
                         engine::QueryBatchResult* out,
                         engine::ThreadPool* pool,
                         engine::ContextPool* contexts) {
  ExecuteOctopusBatch(
      [&graph](engine::ExecutionContext*) {
        return storage::InMemoryMeshAccessor(graph);
      },
      surface_index, options, boxes, out, pool, contexts);
}

Octopus::Octopus(OctopusOptions options)
    : options_(options), contexts_(options.visited_mode) {
  assert(options_.surface_sample_fraction > 0.0 &&
         options_.surface_sample_fraction <= 1.0);
  surface_index_ = SurfaceIndex(SurfaceIndex::Options{
      .support_restructuring = options_.support_restructuring,
  });
}

void Octopus::Build(const TetraMesh& mesh) {
  surface_index_.Build(mesh);
  contexts_.set_num_vertices(mesh.num_vertices());
  contexts_.Ensure(1);
}

void Octopus::RangeQuery(const TetraMesh& mesh, const AABB& box,
                         std::vector<VertexId>* out) const {
  contexts_.Ensure(1);
  ExecuteOctopusQuery(mesh.Graph(), surface_index_, options_, box,
                      contexts_.context(0), out);
  // Single-query path: fold the context delta into the aggregate
  // immediately so `stats()` stays live between calls, as it was when the
  // stats lived inside the index.
  contexts_.MergeStats(1);
}

void Octopus::RangeQueryBatch(const TetraMesh& mesh,
                              std::span<const AABB> boxes,
                              engine::QueryBatchResult* out,
                              engine::ThreadPool* pool) const {
  ExecuteOctopusBatch(mesh.Graph(), surface_index_, options_, boxes, out,
                      pool, &contexts_);
}

size_t Octopus::FootprintBytes() const {
  return surface_index_.FootprintBytes() + contexts_.ScratchBytes();
}

void Octopus::OnRestructure(const TetraMesh& mesh,
                            const RestructureDelta& delta) {
  surface_index_.ApplyDelta(delta);
  contexts_.set_num_vertices(mesh.num_vertices());
}

}  // namespace octopus
