// Copyright 2026 The OCTOPUS Reproduction Authors
// The analytical cost model of paper Sec. IV-G (Equations 1-6):
//   Cost(SurfaceProbe) = CS * S * V                                  (1)
//   Cost(Crawling)     = CR * M * sel * V                            (2)
//   Cost(OCTOPUS)      = CS * V * { S + M * sel / (CS/CR) }          (3)
//   Cost(LinearScan)   = CS * V                                      (4)
//   Speedup            = { S + M * sel / (CS/CR) }^-1                (5)
//   Break-even         : sel < (1 - S) * (CS/CR) / M                 (6)
//
// Refinement over the paper: the paper charges the surface probe at the
// sequential-scan constant CS, but a probe is a strided *gather* through
// the position array and costs measurably more per vertex. We calibrate a
// third constant CP for it; setting CP = CS recovers the paper's
// equations exactly. With the refinement the model validates within a few
// percent (paper: 2%); with CP = CS it overstates OCTOPUS by the
// gather/scan cost ratio.
#ifndef OCTOPUS_OCTOPUS_COST_MODEL_H_
#define OCTOPUS_OCTOPUS_COST_MODEL_H_

#include "common/histogram3d.h"
#include "mesh/tetra_mesh.h"

namespace octopus {

/// \brief Machine-dependent runtime constants, measured empirically
/// (paper: CS = 6.6e-9 s, CR = 2.7e-8 s on their Xeon; CR/CS ~ 4).
struct CostConstants {
  double cs_seconds = 0.0;  ///< per sequentially scanned vertex (Eq. 4)
  double cp_seconds = 0.0;  ///< per probed surface vertex (gathered read)
  double cr_seconds = 0.0;  ///< per adjacency-list edge traversal

  double ScanToCrawlRatio() const { return cs_seconds / cr_seconds; }
};

/// Measures CS with linear scans, CP with surface probes and CR with
/// query-sized crawls over `mesh` (the paper calibrates "by averaging a
/// long run of a linear scan and graph traversal over the smallest
/// dataset").
CostConstants CalibrateCostConstants(const TetraMesh& mesh,
                                     int repetitions = 3);

/// \brief Predicts OCTOPUS / linear-scan runtimes for a dataset.
class CostModel {
 public:
  /// \param surface_to_volume the dataset's S.
  /// \param mesh_degree the dataset's M.
  CostModel(double surface_to_volume, double mesh_degree,
            CostConstants constants)
      : s_(surface_to_volume), m_(mesh_degree), k_(constants) {
    if (k_.cp_seconds <= 0.0) k_.cp_seconds = k_.cs_seconds;  // paper form
  }

  /// Convenience: derive S and M from the mesh itself.
  static CostModel FromMesh(const TetraMesh& mesh, CostConstants constants);

  /// Eq. 3 (with the CP refinement). `selectivity` is a fraction in
  /// [0, 1].
  double OctopusSeconds(size_t num_vertices, double selectivity) const {
    const double v = static_cast<double>(num_vertices);
    return k_.cp_seconds * s_ * v +
           k_.cr_seconds * m_ * selectivity * v;
  }

  /// Eq. 4.
  double LinearScanSeconds(size_t num_vertices) const {
    return k_.cs_seconds * static_cast<double>(num_vertices);
  }

  /// Eq. 5 — independent of V.
  double Speedup(double selectivity) const {
    return k_.cs_seconds /
           (k_.cp_seconds * s_ + k_.cr_seconds * m_ * selectivity);
  }

  /// Eq. 6: the selectivity above which the linear scan wins. Negative if
  /// the probe alone already exceeds a scan (OCTOPUS never wins).
  double BreakEvenSelectivity() const {
    return (k_.cs_seconds - k_.cp_seconds * s_) / (k_.cr_seconds * m_);
  }

  double surface_to_volume() const { return s_; }
  double mesh_degree() const { return m_; }
  const CostConstants& constants() const { return k_; }

 private:
  double s_;
  double m_;
  CostConstants k_;
};

/// Histogram-based selectivity estimate for a query (the paper uses the
/// technique of Acharya et al. [2] to feed Eq. 3 without executing the
/// query).
double EstimateQuerySelectivity(const Histogram3D& histogram,
                                const AABB& query);

}  // namespace octopus

#endif  // OCTOPUS_OCTOPUS_COST_MODEL_H_
