// Copyright 2026 The OCTOPUS Reproduction Authors
#include "octopus/directed_walk.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>
#include <vector>

namespace octopus {

namespace {

// Mean length of the edges incident to `v` — a cheap local scale estimate
// for the backtracking margin.
float LocalMeanEdgeLength(const MeshGraphView& mesh, VertexId v) {
  const Vec3& p = mesh.position(v);
  float total = 0.0f;
  size_t count = 0;
  for (VertexId n : mesh.neighbors(v)) {
    total += Distance(p, mesh.position(n));
    ++count;
  }
  return count == 0 ? 0.0f : total / static_cast<float>(count);
}

struct Frontier {
  float d2;
  VertexId vertex;
  bool operator>(const Frontier& o) const { return d2 > o.d2; }
};

}  // namespace

WalkResult DirectedWalk(const MeshGraphView& mesh, const AABB& box,
                        VertexId start) {
  WalkResult result;
  if (start == kInvalidVertex || mesh.num_vertices() == 0) return result;

  // Best-first walk: always expand the frontier vertex closest to the
  // query box (the paper's "always picking the edge that leads to a
  // vertex closer to the query region", made robust against the local
  // minima a purely greedy descent hits on jittered meshes).
  //
  // Termination: success when a vertex inside the box (distance 0) pops;
  // failure when even the CLOSEST frontier vertex is farther than the
  // start distance plus a few local edge lengths — on a convex mesh that
  // means the query does not intersect the mesh, and the explored shell
  // stays small because it is distance-bounded.
  const float start_d2 = box.SquaredDistanceTo(mesh.position(start));
  if (start_d2 == 0.0f) {
    result.found = start;
    return result;
  }
  const float margin = 3.0f * LocalMeanEdgeLength(mesh, start);
  const float limit = std::sqrt(start_d2) + margin;
  const float limit_d2 = limit * limit;

  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> heap;
  std::unordered_set<VertexId> visited;
  heap.push({start_d2, start});
  visited.insert(start);

  while (!heap.empty()) {
    const Frontier current = heap.top();
    heap.pop();
    if (current.d2 == 0.0f) {
      result.found = current.vertex;
      return result;
    }
    if (current.d2 > limit_d2) {
      // The nearest reachable vertex is receding: no intersection.
      return result;
    }
    ++result.vertices_visited;
    for (VertexId n : mesh.neighbors(current.vertex)) {
      if (visited.insert(n).second) {
        heap.push({box.SquaredDistanceTo(mesh.position(n)), n});
      }
    }
  }
  return result;  // exhausted the component without entering the box
}

}  // namespace octopus
