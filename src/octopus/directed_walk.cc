// Copyright 2026 The OCTOPUS Reproduction Authors
#include "octopus/directed_walk.h"

namespace octopus {

WalkResult DirectedWalk(const MeshGraphView& graph, const AABB& box,
                        VertexId start) {
  storage::InMemoryMeshAccessor accessor(graph);
  return DirectedWalk(accessor, box, start);
}

}  // namespace octopus
