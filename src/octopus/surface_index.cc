// Copyright 2026 The OCTOPUS Reproduction Authors
#include "octopus/surface_index.h"

#include <algorithm>
#include <cassert>

namespace octopus {

SurfaceIndex::SurfaceIndex() : options_(Options{}) {}

void SurfaceIndex::Build(const TetraMesh& mesh) {
  set_.clear();
  probe_order_.clear();

  SurfaceInfo info = ExtractSurface(mesh);
  probe_order_ = std::move(info.surface_vertices);  // already sorted
  set_.reserve(probe_order_.size());
  set_.insert(probe_order_.begin(), probe_order_.end());

  if (options_.support_restructuring) {
    registry_.Build(mesh);
    registry_built_ = true;
  }
}

void SurfaceIndex::BuildFromSurfaceVertices(
    std::vector<VertexId> surface_vertices) {
  assert(!options_.support_restructuring &&
         "restructuring maintenance requires the tetrahedral Build()");
  std::sort(surface_vertices.begin(), surface_vertices.end());
  surface_vertices.erase(
      std::unique(surface_vertices.begin(), surface_vertices.end()),
      surface_vertices.end());
  probe_order_ = std::move(surface_vertices);
  set_.clear();
  set_.reserve(probe_order_.size());
  set_.insert(probe_order_.begin(), probe_order_.end());
  registry_built_ = false;
}

void SurfaceIndex::InsertVertex(VertexId v) {
  if (!set_.insert(v).second) return;
  probe_order_.insert(
      std::lower_bound(probe_order_.begin(), probe_order_.end(), v), v);
}

void SurfaceIndex::EraseVertex(VertexId v) {
  if (set_.erase(v) == 0) return;
  const auto it =
      std::lower_bound(probe_order_.begin(), probe_order_.end(), v);
  assert(it != probe_order_.end() && *it == v);
  probe_order_.erase(it);
}

void SurfaceIndex::ApplyDelta(const RestructureDelta& delta) {
  assert(registry_built_ &&
         "SurfaceIndex::ApplyDelta requires support_restructuring");
  std::vector<FaceRegistry::VertexTransition> transitions;
  registry_.ApplyDelta(delta, &transitions);
  for (const auto& t : transitions) {
    if (t.now_on_surface) {
      InsertVertex(t.vertex);
    } else {
      EraseVertex(t.vertex);
    }
  }
}

size_t SurfaceIndex::HashTableBytes() const {
  // id + typical unordered_set node/bucket overhead.
  return set_.size() * (sizeof(VertexId) + 16);
}

size_t SurfaceIndex::FootprintBytes() const {
  size_t bytes =
      HashTableBytes() + probe_order_.capacity() * sizeof(VertexId);
  if (registry_built_) bytes += registry_.FootprintBytes();
  return bytes;
}

}  // namespace octopus
