// Copyright 2026 The OCTOPUS Reproduction Authors
// The directed-walk phase (paper Sec. IV-D): when no surface vertex lies
// inside the query (query fully interior, or not intersecting the mesh),
// walk mesh edges from a start vertex toward the query box until a vertex
// inside is reached or the whole frontier is receding (-> empty result).
// Implemented as a bounded best-first search rather than the paper's pure
// greedy descent; see DESIGN.md 4b for the rationale (greedy stalls in
// local minima on jittered meshes).
//
// Like the crawler, the walk is a template over any
// `storage::MeshAccessor`: identical code (and identical expansion
// order, hence identical counters) in memory and out of core.
#ifndef OCTOPUS_OCTOPUS_DIRECTED_WALK_H_
#define OCTOPUS_OCTOPUS_DIRECTED_WALK_H_

#include <cmath>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/aabb.h"
#include "mesh/graph_view.h"
#include "mesh/tetra_mesh.h"
#include "mesh/types.h"
#include "storage/mesh_accessor.h"

namespace octopus {

/// \brief Outcome of a directed walk.
struct WalkResult {
  /// A vertex inside the query box, or kInvalidVertex if the walk reached
  /// a local minimum first (on convex meshes that means the query does not
  /// intersect the mesh).
  VertexId found = kInvalidVertex;
  /// Vertices whose neighbor lists were expanded (paper Fig. 9(c) metric).
  size_t vertices_visited = 0;

  bool ok() const { return found != kInvalidVertex; }
};

namespace internal {

// Mean length of the edges incident to `v` — a cheap local scale estimate
// for the backtracking margin.
template <storage::MeshAccessor Accessor>
float LocalMeanEdgeLength(Accessor& mesh, VertexId v) {
  const Vec3 p = mesh.position(v);
  float total = 0.0f;
  size_t count = 0;
  for (VertexId n : mesh.neighbors(v)) {
    total += Distance(p, mesh.position(n));
    ++count;
  }
  return count == 0 ? 0.0f : total / static_cast<float>(count);
}

struct WalkFrontier {
  float d2;
  VertexId vertex;
  bool operator>(const WalkFrontier& o) const { return d2 > o.d2; }
};

}  // namespace internal

/// Walk from `start` toward `box` using current vertex positions.
/// Primitive- and residency-agnostic (works on any `MeshAccessor`).
template <storage::MeshAccessor Accessor>
WalkResult DirectedWalk(Accessor& mesh, const AABB& box, VertexId start) {
  WalkResult result;
  if (start == kInvalidVertex || mesh.num_vertices() == 0) return result;

  // Best-first walk: always expand the frontier vertex closest to the
  // query box (the paper's "always picking the edge that leads to a
  // vertex closer to the query region", made robust against the local
  // minima a purely greedy descent hits on jittered meshes).
  //
  // Termination: success when a vertex inside the box (distance 0) pops;
  // failure when even the CLOSEST frontier vertex is farther than the
  // start distance plus a few local edge lengths — on a convex mesh that
  // means the query does not intersect the mesh, and the explored shell
  // stays small because it is distance-bounded.
  const float start_d2 = box.SquaredDistanceTo(mesh.position(start));
  if (start_d2 == 0.0f) {
    result.found = start;
    return result;
  }
  const float margin = 3.0f * internal::LocalMeanEdgeLength(mesh, start);
  const float limit = std::sqrt(start_d2) + margin;
  const float limit_d2 = limit * limit;

  std::priority_queue<internal::WalkFrontier,
                      std::vector<internal::WalkFrontier>, std::greater<>>
      heap;
  std::unordered_set<VertexId> visited;
  heap.push({start_d2, start});
  visited.insert(start);

  while (!heap.empty()) {
    const internal::WalkFrontier current = heap.top();
    heap.pop();
    if (current.d2 == 0.0f) {
      result.found = current.vertex;
      return result;
    }
    if (current.d2 > limit_d2) {
      // The nearest reachable vertex is receding: no intersection.
      return result;
    }
    ++result.vertices_visited;
    for (VertexId n : mesh.neighbors(current.vertex)) {
      if (visited.insert(n).second) {
        heap.push({box.SquaredDistanceTo(mesh.position(n)), n});
      }
    }
  }
  return result;  // exhausted the component without entering the box
}

/// Resident-mesh convenience overloads.
WalkResult DirectedWalk(const MeshGraphView& graph, const AABB& box,
                        VertexId start);

inline WalkResult DirectedWalk(const TetraMesh& mesh, const AABB& box,
                               VertexId start) {
  return DirectedWalk(mesh.Graph(), box, start);
}

}  // namespace octopus

#endif  // OCTOPUS_OCTOPUS_DIRECTED_WALK_H_
