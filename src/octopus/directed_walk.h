// Copyright 2026 The OCTOPUS Reproduction Authors
// The directed-walk phase (paper Sec. IV-D): when no surface vertex lies
// inside the query (query fully interior, or not intersecting the mesh),
// walk mesh edges from a start vertex toward the query box until a vertex
// inside is reached or the whole frontier is receding (-> empty result).
// Implemented as a bounded best-first search rather than the paper's pure
// greedy descent; see DESIGN.md 4b for the rationale (greedy stalls in
// local minima on jittered meshes).
#ifndef OCTOPUS_OCTOPUS_DIRECTED_WALK_H_
#define OCTOPUS_OCTOPUS_DIRECTED_WALK_H_

#include "common/aabb.h"
#include "mesh/graph_view.h"
#include "mesh/tetra_mesh.h"
#include "mesh/types.h"

namespace octopus {

/// \brief Outcome of a directed walk.
struct WalkResult {
  /// A vertex inside the query box, or kInvalidVertex if the walk reached
  /// a local minimum first (on convex meshes that means the query does not
  /// intersect the mesh).
  VertexId found = kInvalidVertex;
  /// Vertices whose neighbor lists were expanded (paper Fig. 9(c) metric).
  size_t vertices_visited = 0;

  bool ok() const { return found != kInvalidVertex; }
};

/// Walk from `start` toward `box` using current vertex positions.
/// Primitive-agnostic (works on any `MeshGraphView`).
WalkResult DirectedWalk(const MeshGraphView& graph, const AABB& box,
                        VertexId start);

inline WalkResult DirectedWalk(const TetraMesh& mesh, const AABB& box,
                               VertexId start) {
  return DirectedWalk(mesh.Graph(), box, start);
}

}  // namespace octopus

#endif  // OCTOPUS_OCTOPUS_DIRECTED_WALK_H_
