// Copyright 2026 The OCTOPUS Reproduction Authors
#include "octopus/hex_octopus.h"

#include <cassert>

namespace octopus {

HexOctopus::HexOctopus(OctopusOptions options)
    : options_(options), contexts_(options.visited_mode) {
  assert(options_.surface_sample_fraction > 0.0 &&
         options_.surface_sample_fraction <= 1.0);
  assert(!options_.support_restructuring &&
         "hexahedral restructuring maintenance is not implemented");
}

void HexOctopus::Build(const HexaMesh& mesh) {
  HexSurfaceInfo info = ExtractHexSurface(mesh);
  surface_index_.BuildFromSurfaceVertices(std::move(info.surface_vertices));
  contexts_.set_num_vertices(mesh.num_vertices());
  contexts_.Ensure(1);
}

void HexOctopus::RangeQuery(const HexaMesh& mesh, const AABB& box,
                            std::vector<VertexId>* out) const {
  contexts_.Ensure(1);
  ExecuteOctopusQuery(mesh.Graph(), surface_index_, options_, box,
                      contexts_.context(0), out);
  contexts_.MergeStats(1);
}

void HexOctopus::RangeQueryBatch(const HexaMesh& mesh,
                                 std::span<const AABB> boxes,
                                 engine::QueryBatchResult* out,
                                 engine::ThreadPool* pool) const {
  ExecuteOctopusBatch(mesh.Graph(), surface_index_, options_, boxes, out,
                      pool, &contexts_);
}

size_t HexOctopus::FootprintBytes() const {
  return surface_index_.FootprintBytes() + contexts_.ScratchBytes();
}

}  // namespace octopus
