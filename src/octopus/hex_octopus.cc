// Copyright 2026 The OCTOPUS Reproduction Authors
#include "octopus/hex_octopus.h"

#include <cassert>

namespace octopus {

HexOctopus::HexOctopus(OctopusOptions options)
    : options_(options), crawler_(options.visited_mode) {
  assert(options_.surface_sample_fraction > 0.0 &&
         options_.surface_sample_fraction <= 1.0);
  assert(!options_.support_restructuring &&
         "hexahedral restructuring maintenance is not implemented");
}

void HexOctopus::Build(const HexaMesh& mesh) {
  HexSurfaceInfo info = ExtractHexSurface(mesh);
  surface_index_.BuildFromSurfaceVertices(std::move(info.surface_vertices));
  crawler_.EnsureSize(mesh.num_vertices());
}

void HexOctopus::RangeQuery(const HexaMesh& mesh, const AABB& box,
                            std::vector<VertexId>* out) {
  ExecuteOctopusQuery(mesh.Graph(), surface_index_, options_, box, &crawler_,
                      &start_scratch_, &stats_, out);
}

size_t HexOctopus::FootprintBytes() const {
  return surface_index_.FootprintBytes() + crawler_.ScratchBytes() +
         start_scratch_.capacity() * sizeof(VertexId);
}

}  // namespace octopus
