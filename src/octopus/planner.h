// Copyright 2026 The OCTOPUS Reproduction Authors
// Model-driven approach selection (paper Sec. VI-B / VIII-B): "Equations
// 5 and 6 help us to decide when to use OCTOPUS given that we know the
// workload characteristics (M and S) and the runtime constants". The
// planner estimates each query's selectivity with the histogram technique
// of Acharya et al. [2] and routes it to OCTOPUS or the linear scan,
// whichever the cost model predicts to be faster.
#ifndef OCTOPUS_OCTOPUS_PLANNER_H_
#define OCTOPUS_OCTOPUS_PLANNER_H_

#include <memory>
#include <vector>

#include "common/histogram3d.h"
#include "index/linear_scan.h"
#include "index/spatial_index.h"
#include "octopus/cost_model.h"
#include "octopus/query_executor.h"

namespace octopus {

/// \brief Per-query adaptive executor: OCTOPUS below the break-even
/// selectivity, linear scan above it.
class AdaptiveExecutor : public SpatialIndex {
 public:
  struct Options {
    OctopusOptions octopus;
    /// Histogram resolution for selectivity estimation.
    int histogram_resolution = 24;
    /// Calibration repetitions for the cost constants.
    int calibration_repetitions = 2;
  };

  AdaptiveExecutor();  // default options
  explicit AdaptiveExecutor(Options options);

  std::string Name() const override { return "OCTOPUS-Adaptive"; }

  /// Builds the OCTOPUS surface index, the selectivity histogram and
  /// calibrates the cost model on this mesh.
  void Build(const TetraMesh& mesh) override;

  /// No-op (neither sub-approach needs per-step maintenance).
  void BeforeQueries(const TetraMesh& mesh) override { (void)mesh; }

  /// Routes through `Octopus::RangeQuery` (context 0); `const` but not
  /// safe to call concurrently. Inherits the sequential batch default.
  void RangeQuery(const TetraMesh& mesh, const AABB& box,
                  std::vector<VertexId>* out) const override;

  size_t FootprintBytes() const override;

  /// The Eq. 6 routing threshold currently in force.
  double break_even_selectivity() const { return break_even_; }
  size_t queries_routed_to_octopus() const { return to_octopus_; }
  size_t queries_routed_to_scan() const { return to_scan_; }
  const Octopus& octopus() const { return octopus_; }

 private:
  Options options_;
  Octopus octopus_;
  LinearScan scan_;
  Histogram3D histogram_;
  double break_even_ = 1.0;
  // Routing telemetry mutated by the const query path.
  mutable size_t to_octopus_ = 0;
  mutable size_t to_scan_ = 0;
};

}  // namespace octopus

#endif  // OCTOPUS_OCTOPUS_PLANNER_H_
