// Copyright 2026 The OCTOPUS Reproduction Authors
// The crawling phase (paper Sec. IV-B): breadth-first traversal of the
// mesh edges from the start vertices, never expanding past a vertex that
// lies outside the query region. Visits O(result-neighborhood) vertices —
// the reason OCTOPUS scales sublinearly with dataset size.
#ifndef OCTOPUS_OCTOPUS_CRAWLER_H_
#define OCTOPUS_OCTOPUS_CRAWLER_H_

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/aabb.h"
#include "mesh/graph_view.h"
#include "mesh/tetra_mesh.h"
#include "mesh/types.h"

namespace octopus {

/// How the crawler tracks visited vertices.
enum class VisitedMode {
  /// O(V) epoch-stamped array: fastest, memory proportional to the mesh.
  kEpochArray,
  /// Hash set of visited ids: memory proportional to the *result
  /// neighborhood* — the behaviour behind the paper's Fig. 10(b)
  /// footprint-vs-results correlation — at some speed cost.
  kHashSet,
};

/// \brief Per-crawl counters (feed the analytical model and Fig. 10).
struct CrawlStats {
  size_t vertices_inside = 0;    ///< result size
  size_t vertices_touched = 0;   ///< inside + frontier vertices tested
  size_t edges_traversed = 0;    ///< adjacency entries inspected
};

/// \brief Reusable BFS engine with epoch-stamped visited marks.
///
/// The visited array is O(V) but is *not* cleared between queries — a per
/// -query epoch stamp makes clearing O(1). This scratch space is counted
/// in OCTOPUS's memory footprint (paper Fig. 10(b)).
class Crawler {
 public:
  Crawler() = default;
  explicit Crawler(VisitedMode mode) : mode_(mode) {}

  /// Grows the scratch arrays to cover `num_vertices` (no-op in
  /// kHashSet mode).
  void EnsureSize(size_t num_vertices);

  VisitedMode mode() const { return mode_; }

  /// BFS from `starts`; appends every vertex inside `box` reachable from a
  /// start through vertices inside `box`. Starts outside the box are
  /// ignored. Duplicate starts are fine. Primitive-agnostic: any mesh
  /// exposing a `MeshGraphView` can be crawled (paper Sec. IV-B).
  CrawlStats Crawl(const MeshGraphView& graph, const AABB& box,
                   std::span<const VertexId> starts,
                   std::vector<VertexId>* out);

  CrawlStats Crawl(const TetraMesh& mesh, const AABB& box,
                   std::span<const VertexId> starts,
                   std::vector<VertexId>* out) {
    return Crawl(mesh.Graph(), box, starts, out);
  }

  /// Bytes of visited marks + queue.
  size_t ScratchBytes() const {
    return visit_epoch_.capacity() * sizeof(uint32_t) +
           queue_.capacity() * sizeof(VertexId) +
           visited_set_.size() * (sizeof(VertexId) + 16);
  }

 private:
  bool MarkVisited(VertexId v);

  VisitedMode mode_ = VisitedMode::kEpochArray;
  std::vector<uint32_t> visit_epoch_;
  uint32_t epoch_ = 0;
  std::unordered_set<VertexId> visited_set_;
  std::vector<VertexId> queue_;
};

}  // namespace octopus

#endif  // OCTOPUS_OCTOPUS_CRAWLER_H_
