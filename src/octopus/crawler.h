// Copyright 2026 The OCTOPUS Reproduction Authors
// The crawling phase (paper Sec. IV-B): breadth-first traversal of the
// mesh edges from the start vertices, never expanding past a vertex that
// lies outside the query region. Visits O(result-neighborhood) vertices —
// the reason OCTOPUS scales sublinearly with dataset size.
//
// The BFS core is a template over any `storage::MeshAccessor`, so the
// same code crawls the resident mesh (zero overhead — the in-memory
// accessor inlines to the historical loads) and a paged out-of-core
// snapshot (every access routed through the buffer pool).
#ifndef OCTOPUS_OCTOPUS_CRAWLER_H_
#define OCTOPUS_OCTOPUS_CRAWLER_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/aabb.h"
#include "mesh/graph_view.h"
#include "mesh/tetra_mesh.h"
#include "mesh/types.h"
#include "storage/mesh_accessor.h"

namespace octopus {

/// How the crawler tracks visited vertices.
enum class VisitedMode {
  /// O(V) epoch-stamped array: fastest, memory proportional to the mesh.
  kEpochArray,
  /// Hash set of visited ids: memory proportional to the *result
  /// neighborhood* — the behaviour behind the paper's Fig. 10(b)
  /// footprint-vs-results correlation — at some speed cost.
  kHashSet,
};

/// \brief Per-crawl counters (feed the analytical model and Fig. 10).
struct CrawlStats {
  size_t vertices_inside = 0;    ///< result size
  size_t vertices_touched = 0;   ///< inside + frontier vertices tested
  size_t edges_traversed = 0;    ///< adjacency entries inspected
};

/// \brief Reusable BFS engine with epoch-stamped visited marks.
///
/// The visited array is O(V) but is *not* cleared between queries — a per
/// -query epoch stamp makes clearing O(1). This scratch space is counted
/// in OCTOPUS's memory footprint (paper Fig. 10(b)).
class Crawler {
 public:
  Crawler() = default;
  explicit Crawler(VisitedMode mode) : mode_(mode) {}

  /// Grows the scratch arrays to cover `num_vertices` (no-op in
  /// kHashSet mode).
  void EnsureSize(size_t num_vertices);

  VisitedMode mode() const { return mode_; }

  /// BFS from `starts`; appends every vertex inside `box` reachable from
  /// a start through vertices inside `box`. Starts outside the box are
  /// ignored. Duplicate starts are fine. Primitive- and residency-
  /// agnostic: any `MeshAccessor` can be crawled (paper Sec. IV-B).
  template <storage::MeshAccessor Accessor>
  CrawlStats Crawl(Accessor& mesh, const AABB& box,
                   std::span<const VertexId> starts,
                   std::vector<VertexId>* out) {
    CrawlStats stats;
    if (mode_ == VisitedMode::kEpochArray) {
      assert(visit_epoch_.size() >= mesh.num_vertices() &&
             "EnsureSize not called for this mesh");
      if (++epoch_ == 0) {
        // Epoch counter wrapped: reset all stamps once, then continue.
        std::fill(visit_epoch_.begin(), visit_epoch_.end(), 0u);
        epoch_ = 1;
      }
    } else {
      visited_set_.clear();
    }

    queue_.clear();
    for (VertexId s : starts) {
      if (!MarkVisited(s)) continue;
      ++stats.vertices_touched;
      if (!box.Contains(mesh.position(s))) continue;
      queue_.push_back(s);
      out->push_back(s);
      ++stats.vertices_inside;
    }

    // BFS; queue_ doubles as the FIFO with a moving head index.
    constexpr size_t kPrefetchAhead = 8;
    for (size_t head = 0; head < queue_.size(); ++head) {
      const VertexId v = queue_[head];
      const std::span<const VertexId> ns = mesh.neighbors(v);
      for (size_t i = 0; i < ns.size(); ++i) {
        // Look ahead within the neighbor run: in memory a cache-line
        // prefetch, out of core a lease of the next position page before
        // the frontier demands it (Hilbert layout keeps runs page-local,
        // so this is the paper's sequential-crawl advantage made real).
        if (i + kPrefetchAhead < ns.size()) {
          mesh.PrefetchPosition(ns[i + kPrefetchAhead]);
        }
        const VertexId n = ns[i];
        ++stats.edges_traversed;
        if (!MarkVisited(n)) continue;
        ++stats.vertices_touched;
        // Stop criteria: do not expand past vertices outside the query.
        if (!box.Contains(mesh.position(n))) continue;
        queue_.push_back(n);
        out->push_back(n);
        ++stats.vertices_inside;
      }
    }
    return stats;
  }

  /// Resident-mesh convenience overloads.
  CrawlStats Crawl(const MeshGraphView& graph, const AABB& box,
                   std::span<const VertexId> starts,
                   std::vector<VertexId>* out) {
    storage::InMemoryMeshAccessor accessor(graph);
    return Crawl(accessor, box, starts, out);
  }

  CrawlStats Crawl(const TetraMesh& mesh, const AABB& box,
                   std::span<const VertexId> starts,
                   std::vector<VertexId>* out) {
    return Crawl(mesh.Graph(), box, starts, out);
  }

  /// Current visited-mark epoch (kEpochArray mode). Exposed with the
  /// setter below so tests can drive the counter to its wraparound
  /// (2^32 crawls would otherwise be needed to reach the reset path).
  uint32_t epoch() const { return epoch_; }
  void set_epoch_for_testing(uint32_t epoch) { epoch_ = epoch; }

  /// Bytes of visited marks + queue.
  size_t ScratchBytes() const {
    return visit_epoch_.capacity() * sizeof(uint32_t) +
           queue_.capacity() * sizeof(VertexId) +
           visited_set_.size() * (sizeof(VertexId) + 16);
  }

 private:
  bool MarkVisited(VertexId v);

  VisitedMode mode_ = VisitedMode::kEpochArray;
  std::vector<uint32_t> visit_epoch_;
  uint32_t epoch_ = 0;
  std::unordered_set<VertexId> visited_set_;
  std::vector<VertexId> queue_;
};

}  // namespace octopus

#endif  // OCTOPUS_OCTOPUS_CRAWLER_H_
