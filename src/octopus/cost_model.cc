// Copyright 2026 The OCTOPUS Reproduction Authors
#include "octopus/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/timer.h"
#include "index/linear_scan.h"
#include "mesh/mesh_stats.h"
#include "octopus/query_executor.h"


namespace octopus {

CostConstants CalibrateCostConstants(const TetraMesh& mesh,
                                     int repetitions) {
  CostConstants k;
  repetitions = std::max(repetitions, 1);
  const AABB bounds = mesh.ComputeBounds();

  // --- CS: sequential scan cost per vertex ---
  {
    LinearScan scan;
    std::vector<VertexId> sink;
    // A low-selectivity box, like real monitoring queries: the scan's
    // branch pattern is "almost never inside".
    const AABB probe_box =
        AABB::FromCenterHalfExtent(bounds.Center(), bounds.Extent() * 0.05f);
    Timer timer;
    for (int r = 0; r < repetitions; ++r) {
      sink.clear();
      scan.RangeQuery(mesh, probe_box, &sink);
    }
    k.cs_seconds = timer.ElapsedSeconds() /
                   (static_cast<double>(repetitions) *
                    static_cast<double>(mesh.num_vertices()));
  }

  // --- CP and CR: self-calibrated from the executor's own phase
  // counters, so the constants reflect the production loops (branches,
  // result pushes, cache state) rather than an idealized kernel. ---
  {
    Octopus octo;
    octo.Build(mesh);
    // Query-sized boxes around random vertices, ~0.1% of the domain
    // volume each (a typical monitoring query).
    Rng rng(0xCA11B);
    const Vec3 half = bounds.Extent() * (0.5f * 0.1f);  // 0.1^3 = 0.1%
    std::vector<VertexId> sink;
    for (int r = 0; r < repetitions * 16; ++r) {
      const VertexId v =
          static_cast<VertexId>(rng.NextBelow(mesh.num_vertices()));
      const AABB box = AABB::FromCenterHalfExtent(mesh.position(v), half);
      sink.clear();
      octo.RangeQuery(mesh, box, &sink);
    }
    const PhaseStats& stats = octo.stats();
    k.cp_seconds = stats.probed_vertices == 0
                       ? k.cs_seconds
                       : static_cast<double>(stats.probe_nanos) * 1e-9 /
                             static_cast<double>(stats.probed_vertices);
    k.cr_seconds = stats.crawl_edges == 0
                       ? 0.0
                       : static_cast<double>(stats.crawl_nanos) * 1e-9 /
                             static_cast<double>(stats.crawl_edges);
  }
  return k;
}

CostModel CostModel::FromMesh(const TetraMesh& mesh,
                              CostConstants constants) {
  const MeshStats stats = ComputeMeshStats(mesh);
  return CostModel(stats.surface_to_volume, stats.mesh_degree, constants);
}

double EstimateQuerySelectivity(const Histogram3D& histogram,
                                const AABB& query) {
  return histogram.EstimateSelectivity(query);
}

}  // namespace octopus
