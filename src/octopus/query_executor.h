// Copyright 2026 The OCTOPUS Reproduction Authors
// The OCTOPUS query execution strategy (paper Sec. IV, Algorithm 1):
// surface probe -> (directed walk if needed) -> crawling. No maintenance
// on deformation; incremental surface-index maintenance on restructuring.
#ifndef OCTOPUS_OCTOPUS_QUERY_EXECUTOR_H_
#define OCTOPUS_OCTOPUS_QUERY_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "index/spatial_index.h"
#include "octopus/crawler.h"
#include "octopus/directed_walk.h"
#include "octopus/surface_index.h"

namespace octopus {

/// \brief Accumulated per-phase statistics across queries.
struct PhaseStats {
  int64_t probe_nanos = 0;
  int64_t walk_nanos = 0;
  int64_t crawl_nanos = 0;
  size_t queries = 0;
  size_t probed_vertices = 0;   ///< surface vertices inspected
  size_t walk_invocations = 0;  ///< queries that needed a directed walk
  size_t walk_vertices = 0;     ///< vertices expanded during walks
  size_t crawl_edges = 0;       ///< adjacency entries inspected
  size_t result_vertices = 0;

  void Reset() { *this = PhaseStats{}; }
  int64_t TotalNanos() const {
    return probe_nanos + walk_nanos + crawl_nanos;
  }
};

/// \brief Configuration of the OCTOPUS executor.
struct OctopusOptions {
  /// Fraction of the surface probed per query (Sec. IV-H2 surface
  /// approximation): probing every k-th surface vertex realizes the
  /// paper's "sample of equidistant vertices on the surface". 1.0 = exact
  /// (probe everything); smaller values trade result accuracy for probe
  /// time.
  double surface_sample_fraction = 1.0;
  /// Keep the face registry so restructuring deltas can be applied
  /// incrementally via `OnRestructure`.
  bool support_restructuring = false;
  /// Visited-tracking strategy of the crawl: the default epoch array is
  /// fastest but holds O(V) scratch; `kHashSet` makes the crawl scratch
  /// proportional to the result size, which is the memory behaviour the
  /// paper reports in Fig. 10(b).
  VisitedMode visited_mode = VisitedMode::kEpochArray;
};

/// Core of Algorithm 1 over any mesh graph: surface probe (with optional
/// equidistant sampling) -> directed walk fallback -> crawl. Appends the
/// result to `out` and accumulates into `stats`. `crawler` must be sized
/// for the graph; `start_scratch` is caller-owned scratch. Shared by the
/// tetrahedral `Octopus` and the hexahedral `HexOctopus`.
void ExecuteOctopusQuery(const MeshGraphView& graph,
                         const SurfaceIndex& surface_index,
                         const OctopusOptions& options, const AABB& box,
                         Crawler* crawler,
                         std::vector<VertexId>* start_scratch,
                         PhaseStats* stats, std::vector<VertexId>* out);

/// \brief OCTOPUS: range-query execution for unpredictably deforming
/// meshes.
///
/// Implements `SpatialIndex`, so benches compare it directly against the
/// baselines. `BeforeQueries` is a no-op — that is the entire point: mesh
/// deformation requires no index maintenance.
class Octopus : public SpatialIndex {
 public:
  explicit Octopus(OctopusOptions options = {});

  std::string Name() const override { return "OCTOPUS"; }

  /// Builds the surface index (one-time preprocessing; paper reports 62 s
  /// for the 33 GB mesh). Time it with a Timer if needed for reports.
  void Build(const TetraMesh& mesh) override;

  /// No-op: deformation never invalidates OCTOPUS's structures.
  void BeforeQueries(const TetraMesh& mesh) override { (void)mesh; }

  void RangeQuery(const TetraMesh& mesh, const AABB& box,
                  std::vector<VertexId>* out) override;

  /// Surface index + crawl scratch (paper Fig. 10(b) accounting).
  size_t FootprintBytes() const override;

  /// Incremental maintenance after a mesh restructuring step. Requires
  /// `support_restructuring` in the options.
  void OnRestructure(const TetraMesh& mesh, const RestructureDelta& delta);

  const SurfaceIndex& surface_index() const { return surface_index_; }
  const PhaseStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  OctopusOptions options_;
  SurfaceIndex surface_index_;
  Crawler crawler_;
  PhaseStats stats_;
  std::vector<VertexId> start_scratch_;
};

}  // namespace octopus

#endif  // OCTOPUS_OCTOPUS_QUERY_EXECUTOR_H_
