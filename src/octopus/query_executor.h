// Copyright 2026 The OCTOPUS Reproduction Authors
// The OCTOPUS query execution strategy (paper Sec. IV, Algorithm 1):
// surface probe -> (directed walk if needed) -> crawling. No maintenance
// on deformation; incremental surface-index maintenance on restructuring.
//
// The phase cores are templates over `storage::MeshAccessor`, so the
// identical algorithm executes over the resident mesh (zero overhead)
// and over a paged out-of-core snapshot (see octopus/paged_executor.h).
//
// Thread-safety invariant (engine layer): after `Build`, the index object
// (`options_`, `surface_index_`) is read-only during query execution. All
// mutable query state — crawler visited-epochs, start scratch, phase
// stats — lives in per-thread `engine::ExecutionContext`s. During a
// parallel `RangeQueryBatch`, each shard accumulates stats into its own
// context-local `PhaseStats`; the locals are merged into the index-level
// aggregate `stats_` on the calling thread after the pool joins, in
// shard order — never shared mutation while queries are in flight. The
// single-query `RangeQuery` is `const` but routes through context 0, so
// it must not be called concurrently; use `RangeQueryBatch` for that.
#ifndef OCTOPUS_OCTOPUS_QUERY_EXECUTOR_H_
#define OCTOPUS_OCTOPUS_QUERY_EXECUTOR_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/timer.h"
#include "engine/execution_context.h"
#include "engine/thread_pool.h"
#include "index/spatial_index.h"
#include "octopus/crawler.h"
#include "octopus/directed_walk.h"
#include "octopus/phase_stats.h"
#include "octopus/surface_index.h"

namespace octopus {

/// \brief Configuration of the OCTOPUS executor.
struct OctopusOptions {
  /// Fraction of the surface probed per query (Sec. IV-H2 surface
  /// approximation): probing every k-th surface vertex realizes the
  /// paper's "sample of equidistant vertices on the surface". 1.0 = exact
  /// (probe everything); smaller values trade result accuracy for probe
  /// time.
  double surface_sample_fraction = 1.0;
  /// Keep the face registry so restructuring deltas can be applied
  /// incrementally via `OnRestructure`.
  bool support_restructuring = false;
  /// Visited-tracking strategy of the crawl: the default epoch array is
  /// fastest but holds O(V) scratch; `kHashSet` makes the crawl scratch
  /// proportional to the result size, which is the memory behaviour the
  /// paper reports in Fig. 10(b).
  VisitedMode visited_mode = VisitedMode::kEpochArray;
};

/// Core of Algorithm 1 over any mesh accessor: surface probe (with
/// optional equidistant sampling) -> directed walk fallback -> crawl.
/// Appends the result to `out` and accumulates into `context->stats`.
/// Re-entrant: concurrent calls are safe as long as each uses its own
/// context and accessor (the backing store and surface index are only
/// read).
template <storage::MeshAccessor Accessor>
void ExecuteOctopusQuery(Accessor& mesh, const SurfaceIndex& surface_index,
                         const OctopusOptions& options, const AABB& box,
                         engine::ExecutionContext* context,
                         std::vector<VertexId>* out) {
  Timer timer;
  PhaseStats* stats = &context->stats;
  ++stats->queries;

  // --- Phase 1: surface probe (Sec. IV-C) ---
  // Scan the surface vertices in ascending-id order (streaming access over
  // the position array); collect those inside the query as crawl starts,
  // and track the closest one as a fallback walk start. Under surface
  // approximation (Sec. IV-H2) only every `stride`-th vertex is probed —
  // the paper's "equidistant sample" of the surface.
  std::vector<VertexId>* start_scratch = &context->start_scratch;
  start_scratch->clear();
  const std::span<const VertexId> surface = surface_index.probe_order();
  const size_t stride =
      options.surface_sample_fraction >= 1.0
          ? 1
          : std::max<size_t>(
                1, static_cast<size_t>(std::llround(
                       1.0 / options.surface_sample_fraction)));
  VertexId closest = kInvalidVertex;
  float closest_d2 = std::numeric_limits<float>::max();
  size_t probed = 0;
  constexpr size_t kPrefetchAhead = 16;
  for (size_t i = 0; i < surface.size(); i += stride) {
    // The probe is a strided gather through the probe-order positions;
    // software prefetch hides most of the per-entry miss latency. The
    // probe-specific read path matters out of core: the paged accessor
    // serves undeformed probe positions from index-resident data, so
    // probing costs page accesses only for overlay-covered (deformed)
    // pages.
    if (i + kPrefetchAhead * stride < surface.size()) {
      const size_t ahead = i + kPrefetchAhead * stride;
      if constexpr (requires { mesh.PrefetchProbePosition(ahead,
                                                          surface[ahead]); }) {
        mesh.PrefetchProbePosition(ahead, surface[ahead]);
      }
    }
    const VertexId v = surface[i];
    ++probed;
    const float d2 = box.SquaredDistanceTo(mesh.ProbePosition(i, v));
    if (d2 == 0.0f) {
      start_scratch->push_back(v);
    } else if (start_scratch->empty() && d2 < closest_d2) {
      closest_d2 = d2;
      closest = v;
    }
  }
  stats->probed_vertices += probed;
  stats->probe_nanos += timer.ElapsedNanos();

  // --- Phase 2: directed walk (Sec. IV-D), only if the probe was dry ---
  if (start_scratch->empty()) {
    timer.Restart();
    ++stats->walk_invocations;
    const WalkResult walk = DirectedWalk(mesh, box, closest);
    stats->walk_vertices += walk.vertices_visited;
    stats->walk_nanos += timer.ElapsedNanos();
    if (!walk.ok()) {
      return;  // query does not intersect the mesh: empty result
    }
    start_scratch->push_back(walk.found);
  }

  // --- Phase 3: crawling (Sec. IV-B) ---
  timer.Restart();
  const CrawlStats crawl =
      context->crawler.Crawl(mesh, box, *start_scratch, out);
  stats->crawl_edges += crawl.edges_traversed;
  stats->result_vertices += crawl.vertices_inside;
  stats->crawl_nanos += timer.ElapsedNanos();
}

/// Batch core shared by every OCTOPUS executor (`Octopus`, `HexOctopus`,
/// `PagedOctopus`): resets `out`, clamps the shard count to min(pool
/// width, batch size), runs each shard's contiguous query range on its
/// own context (grown via `contexts->Ensure` on the calling thread
/// before forking), and merges per-shard stats into the pool's aggregate
/// in deterministic shard order after the pool joins. `pool` may be null
/// (sequential). `make_accessor(context)` supplies the shard's mesh
/// accessor — by value for the free in-memory view, by reference for a
/// context-owned paged accessor. Per-query results are independent of
/// the shard count.
template <typename MakeAccessor>
void ExecuteOctopusBatch(const MakeAccessor& make_accessor,
                         const SurfaceIndex& surface_index,
                         const OctopusOptions& options,
                         std::span<const AABB> boxes,
                         engine::QueryBatchResult* out,
                         engine::ThreadPool* pool,
                         engine::ContextPool* contexts) {
  out->Reset(boxes.size());
  const int shards =
      pool == nullptr
          ? 1
          : static_cast<int>(
                std::min<size_t>(pool->threads(),
                                 std::max<size_t>(boxes.size(), 1)));
  // Contexts are created/sized on the calling thread, before forking.
  contexts->Ensure(shards);

  auto run_shard = [&](int shard) {
    // The pool always invokes one call per pool thread; threads beyond
    // the (batch-size-clamped) shard count have no work.
    if (shard >= shards) return;
    // Contiguous sharding: shard s owns queries [s*n/T, (s+1)*n/T).
    const size_t begin = boxes.size() * shard / shards;
    const size_t end = boxes.size() * (shard + 1) / shards;
    engine::ExecutionContext* context = contexts->context(shard);
    decltype(auto) accessor = make_accessor(context);
    for (size_t q = begin; q < end; ++q) {
      ExecuteOctopusQuery(accessor, surface_index, options, boxes[q],
                          context, &out->per_query[q]);
    }
    // Batch-scoped leases (paged accessors) are released before the
    // shard retires: deterministic counters, and an idle accessor holds
    // no pool resources between batches.
    if constexpr (requires { accessor.EndBatch(); }) {
      accessor.EndBatch();
    }
  };

  if (shards == 1) {
    run_shard(0);
  } else {
    pool->Run(run_shard);
  }

  // Deterministic merge at batch end, on the calling thread: counts are
  // identical for any thread count (timings naturally vary).
  contexts->MergeStats(shards);
}

/// Resident-mesh wrappers (the historical entry points).
void ExecuteOctopusQuery(const MeshGraphView& graph,
                         const SurfaceIndex& surface_index,
                         const OctopusOptions& options, const AABB& box,
                         engine::ExecutionContext* context,
                         std::vector<VertexId>* out);

void ExecuteOctopusBatch(const MeshGraphView& graph,
                         const SurfaceIndex& surface_index,
                         const OctopusOptions& options,
                         std::span<const AABB> boxes,
                         engine::QueryBatchResult* out,
                         engine::ThreadPool* pool,
                         engine::ContextPool* contexts);

/// \brief OCTOPUS: range-query execution for unpredictably deforming
/// meshes.
///
/// Implements `SpatialIndex`, so benches compare it directly against the
/// baselines. `BeforeQueries` is a no-op — that is the entire point: mesh
/// deformation requires no index maintenance.
class Octopus : public SpatialIndex {
 public:
  explicit Octopus(OctopusOptions options = {});

  std::string Name() const override { return "OCTOPUS"; }

  /// Builds the surface index (one-time preprocessing; paper reports 62 s
  /// for the 33 GB mesh). Time it with a Timer if needed for reports.
  void Build(const TetraMesh& mesh) override;

  /// No-op: deformation never invalidates OCTOPUS's structures.
  void BeforeQueries(const TetraMesh& mesh) override { (void)mesh; }

  /// Single-query convenience path through context 0. Not safe to call
  /// concurrently (see the header invariant); `RangeQueryBatch` is.
  void RangeQuery(const TetraMesh& mesh, const AABB& box,
                  std::vector<VertexId>* out) const override;

  /// The parallel path: shards `boxes` contiguously across `pool` (or
  /// runs sequentially when `pool` is null), one execution context per
  /// shard. Per-query results are independent of the thread count;
  /// per-shard stats merge into `stats()` in deterministic shard order.
  void RangeQueryBatch(const TetraMesh& mesh, std::span<const AABB> boxes,
                       engine::QueryBatchResult* out,
                       engine::ThreadPool* pool = nullptr) const override;

  /// Surface index + per-context crawl scratch (paper Fig. 10(b)
  /// accounting). Honest accounting: the sum covers EVERY allocated
  /// execution context, so after a T-thread batch the crawl-scratch term
  /// is T× the sequential one (that memory is really held). The paper's
  /// figures correspond to the default single-threaded configuration.
  size_t FootprintBytes() const override;

  /// Incremental maintenance after a mesh restructuring step. Requires
  /// `support_restructuring` in the options.
  void OnRestructure(const TetraMesh& mesh, const RestructureDelta& delta);

  const SurfaceIndex& surface_index() const { return surface_index_; }
  const PhaseStats& stats() const { return contexts_.stats(); }
  void ResetStats() const { contexts_.ResetStats(); }

 private:
  OctopusOptions options_;
  SurfaceIndex surface_index_;
  // Per-shard execution contexts (lazily created, reused across batches)
  // and the merged aggregate. `mutable`: queries are logically const —
  // they never change the index structure — but need scratch + stats.
  mutable engine::ContextPool contexts_;
};

}  // namespace octopus

#endif  // OCTOPUS_OCTOPUS_QUERY_EXECUTOR_H_
