// Copyright 2026 The OCTOPUS Reproduction Authors
// The OCTOPUS query execution strategy (paper Sec. IV, Algorithm 1):
// surface probe -> (directed walk if needed) -> crawling. No maintenance
// on deformation; incremental surface-index maintenance on restructuring.
//
// Thread-safety invariant (engine layer): after `Build`, the index object
// (`options_`, `surface_index_`) is read-only during query execution. All
// mutable query state — crawler visited-epochs, start scratch, phase
// stats — lives in per-thread `engine::ExecutionContext`s. During a
// parallel `RangeQueryBatch`, each shard accumulates stats into its own
// context-local `PhaseStats`; the locals are merged into the index-level
// aggregate `stats_` on the calling thread after the pool joins, in
// shard order — never shared mutation while queries are in flight. The
// single-query `RangeQuery` is `const` but routes through context 0, so
// it must not be called concurrently; use `RangeQueryBatch` for that.
#ifndef OCTOPUS_OCTOPUS_QUERY_EXECUTOR_H_
#define OCTOPUS_OCTOPUS_QUERY_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/execution_context.h"
#include "index/spatial_index.h"
#include "octopus/crawler.h"
#include "octopus/directed_walk.h"
#include "octopus/phase_stats.h"
#include "octopus/surface_index.h"

namespace octopus {

/// \brief Configuration of the OCTOPUS executor.
struct OctopusOptions {
  /// Fraction of the surface probed per query (Sec. IV-H2 surface
  /// approximation): probing every k-th surface vertex realizes the
  /// paper's "sample of equidistant vertices on the surface". 1.0 = exact
  /// (probe everything); smaller values trade result accuracy for probe
  /// time.
  double surface_sample_fraction = 1.0;
  /// Keep the face registry so restructuring deltas can be applied
  /// incrementally via `OnRestructure`.
  bool support_restructuring = false;
  /// Visited-tracking strategy of the crawl: the default epoch array is
  /// fastest but holds O(V) scratch; `kHashSet` makes the crawl scratch
  /// proportional to the result size, which is the memory behaviour the
  /// paper reports in Fig. 10(b).
  VisitedMode visited_mode = VisitedMode::kEpochArray;
};

/// Core of Algorithm 1 over any mesh graph: surface probe (with optional
/// equidistant sampling) -> directed walk fallback -> crawl. Appends the
/// result to `out` and accumulates into `context->stats`. Re-entrant:
/// concurrent calls are safe as long as each uses its own context (the
/// graph and surface index are only read).
void ExecuteOctopusQuery(const MeshGraphView& graph,
                         const SurfaceIndex& surface_index,
                         const OctopusOptions& options, const AABB& box,
                         engine::ExecutionContext* context,
                         std::vector<VertexId>* out);

/// Batch core shared by `Octopus` and `HexOctopus`: resets `out`, clamps
/// the shard count to min(pool width, batch size), runs each shard's
/// contiguous query range on its own context (grown via
/// `contexts->Ensure` on the calling thread before forking), and merges
/// per-shard stats into the pool's aggregate in deterministic shard
/// order after the pool joins. `pool` may be null (sequential).
/// Per-query results are independent of the shard count.
void ExecuteOctopusBatch(const MeshGraphView& graph,
                         const SurfaceIndex& surface_index,
                         const OctopusOptions& options,
                         std::span<const AABB> boxes,
                         engine::QueryBatchResult* out,
                         engine::ThreadPool* pool,
                         engine::ContextPool* contexts);

/// \brief OCTOPUS: range-query execution for unpredictably deforming
/// meshes.
///
/// Implements `SpatialIndex`, so benches compare it directly against the
/// baselines. `BeforeQueries` is a no-op — that is the entire point: mesh
/// deformation requires no index maintenance.
class Octopus : public SpatialIndex {
 public:
  explicit Octopus(OctopusOptions options = {});

  std::string Name() const override { return "OCTOPUS"; }

  /// Builds the surface index (one-time preprocessing; paper reports 62 s
  /// for the 33 GB mesh). Time it with a Timer if needed for reports.
  void Build(const TetraMesh& mesh) override;

  /// No-op: deformation never invalidates OCTOPUS's structures.
  void BeforeQueries(const TetraMesh& mesh) override { (void)mesh; }

  /// Single-query convenience path through context 0. Not safe to call
  /// concurrently (see the header invariant); `RangeQueryBatch` is.
  void RangeQuery(const TetraMesh& mesh, const AABB& box,
                  std::vector<VertexId>* out) const override;

  /// The parallel path: shards `boxes` contiguously across `pool` (or
  /// runs sequentially when `pool` is null), one execution context per
  /// shard. Per-query results are independent of the thread count;
  /// per-shard stats merge into `stats()` in deterministic shard order.
  void RangeQueryBatch(const TetraMesh& mesh, std::span<const AABB> boxes,
                       engine::QueryBatchResult* out,
                       engine::ThreadPool* pool = nullptr) const override;

  /// Surface index + per-context crawl scratch (paper Fig. 10(b)
  /// accounting). Honest accounting: the sum covers EVERY allocated
  /// execution context, so after a T-thread batch the crawl-scratch term
  /// is T× the sequential one (that memory is really held). The paper's
  /// figures correspond to the default single-threaded configuration.
  size_t FootprintBytes() const override;

  /// Incremental maintenance after a mesh restructuring step. Requires
  /// `support_restructuring` in the options.
  void OnRestructure(const TetraMesh& mesh, const RestructureDelta& delta);

  const SurfaceIndex& surface_index() const { return surface_index_; }
  const PhaseStats& stats() const { return contexts_.stats(); }
  void ResetStats() const { contexts_.ResetStats(); }

 private:
  OctopusOptions options_;
  SurfaceIndex surface_index_;
  // Per-shard execution contexts (lazily created, reused across batches)
  // and the merged aggregate. `mutable`: queries are logically const —
  // they never change the index structure — but need scratch + stats.
  mutable engine::ContextPool contexts_;
};

}  // namespace octopus

#endif  // OCTOPUS_OCTOPUS_QUERY_EXECUTOR_H_
