// Copyright 2026 The OCTOPUS Reproduction Authors
#include "octopus/octopus_con.h"

#include "common/timer.h"

namespace octopus {

void OctopusCon::Build(const TetraMesh& mesh) {
  grid_.Build(mesh.positions());
  num_vertices_ = mesh.num_vertices();
  context_.EnsureSize(num_vertices_);
}

void OctopusCon::RangeQuery(const TetraMesh& mesh, const AABB& box,
                            std::vector<VertexId>* out) const {
  Timer timer;
  ++stats_.queries;

  // --- Directed walk from a grid-suggested start ---
  // The grid maps the query center to a vertex that was nearby when the
  // grid was built. Even stale, it is a far better start than a random
  // vertex; the walk covers the remaining (drift) distance.
  ++stats_.walk_invocations;
  const VertexId hint = grid_.FindNearbyVertex(box.Center());
  const WalkResult walk = DirectedWalk(mesh, box, hint);
  stats_.walk_vertices += walk.vertices_visited;
  stats_.walk_nanos += timer.ElapsedNanos();
  if (!walk.ok()) {
    return;  // convex mesh + failed walk => query misses the mesh
  }

  // --- Crawl from the single interior start ---
  timer.Restart();
  context_.EnsureSize(num_vertices_);
  context_.start_scratch.assign(1, walk.found);
  const CrawlStats crawl =
      context_.crawler.Crawl(mesh, box, context_.start_scratch, out);
  stats_.crawl_edges += crawl.edges_traversed;
  stats_.result_vertices += crawl.vertices_inside;
  stats_.crawl_nanos += timer.ElapsedNanos();
}

size_t OctopusCon::FootprintBytes() const {
  return grid_.FootprintBytes() + context_.ScratchBytes();
}

}  // namespace octopus
