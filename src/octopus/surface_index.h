// Copyright 2026 The OCTOPUS Reproduction Authors
// The mesh-surface index (paper Sec. IV-E): a hash table over the vertices
// that lie on the mesh surface. It is *geometrical*, not spatial — it knows
// which vertices are on the surface, not where they are — so deformation
// (position-only change) never invalidates it. Only the rare mesh
// restructuring events require insert/delete maintenance.
#ifndef OCTOPUS_OCTOPUS_SURFACE_INDEX_H_
#define OCTOPUS_OCTOPUS_SURFACE_INDEX_H_

#include <span>
#include <unordered_set>
#include <vector>

#include "mesh/surface.h"
#include "mesh/tetra_mesh.h"

namespace octopus {

/// \brief Hash index of the surface vertices plus an id-sorted probe array.
///
/// The probe array is kept sorted by vertex id: the surface probe then
/// streams forward through the position array instead of gathering at
/// random, which is what lets its per-vertex cost approach the sequential
/// scan cost CS assumed by the analytical model (Sec. IV-G). Probing every
/// k-th entry yields the "sample of equidistant vertices on the surface"
/// of the surface-approximation optimization (Sec. IV-H2).
class SurfaceIndex {
 public:
  struct Options {
    /// Keep the face-multiplicity registry after build so `ApplyDelta`
    /// can maintain the index incrementally under restructuring. Costs
    /// O(#faces) memory; leave off for deformation-only simulations.
    bool support_restructuring = false;
  };

  SurfaceIndex();  // default options
  explicit SurfaceIndex(Options options) : options_(options) {}

  /// Extracts the surface and builds the hash table. One-time cost,
  /// reported separately by the benches (paper: 62 s for the 33 GB mesh).
  void Build(const TetraMesh& mesh);

  /// Builds directly from a precomputed surface vertex set (sorted or
  /// not) — used by non-tetrahedral meshes (e.g. `HexaMesh`), whose
  /// surface extraction lives with their face type. Restructuring support
  /// is unavailable through this path.
  void BuildFromSurfaceVertices(std::vector<VertexId> surface_vertices);

  /// All surface vertices, ascending by id.
  std::span<const VertexId> probe_order() const { return probe_order_; }

  bool Contains(VertexId v) const { return set_.find(v) != set_.end(); }

  size_t num_surface_vertices() const { return probe_order_.size(); }

  /// Incremental maintenance for a restructuring step. Requires
  /// `support_restructuring`; asserts otherwise.
  void ApplyDelta(const RestructureDelta& delta);

  /// Bytes of the hash table + probe array (+ face registry if kept).
  size_t FootprintBytes() const;
  /// The surface hash table alone, as the paper reports it (27 MB for the
  /// largest neuroscience mesh).
  size_t HashTableBytes() const;

 private:
  void InsertVertex(VertexId v);
  void EraseVertex(VertexId v);

  Options options_;
  // The paper's hash table of surface vertices.
  std::unordered_set<VertexId> set_;
  // Same contents, sorted ascending for cache-friendly probing.
  std::vector<VertexId> probe_order_;
  FaceRegistry registry_;  // populated only if support_restructuring
  bool registry_built_ = false;
};

}  // namespace octopus

#endif  // OCTOPUS_OCTOPUS_SURFACE_INDEX_H_
