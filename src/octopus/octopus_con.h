// Copyright 2026 The OCTOPUS Reproduction Authors
// OCTOPUS-CON (paper Sec. IV-F): the convex-mesh variant. Convex meshes
// satisfy internal reachability, so the surface probe is unnecessary —
// any single vertex inside the query seeds a complete crawl. A uniform
// grid built ONCE over the initial positions (and deliberately never
// updated — "stale") supplies a start vertex near the query center for
// the directed walk.
#ifndef OCTOPUS_OCTOPUS_OCTOPUS_CON_H_
#define OCTOPUS_OCTOPUS_OCTOPUS_CON_H_

#include <vector>

#include "engine/execution_context.h"
#include "index/spatial_index.h"
#include "index/uniform_grid.h"
#include "octopus/crawler.h"
#include "octopus/directed_walk.h"
#include "octopus/phase_stats.h"

namespace octopus {

/// \brief Configuration of OCTOPUS-CON.
struct OctopusConOptions {
  /// Grid cells per axis; total cells = resolution^3. The paper sweeps
  /// 8..5832 total cells (Fig. 9(c,d)) and uses 1000 (= 10^3) by default.
  int grid_resolution = 10;
};

/// \brief OCTOPUS-CON: stale-grid + directed walk + crawl, for meshes
/// that remain convex throughout the simulation.
///
/// Correctness requires convexity; on non-convex meshes use `Octopus`.
class OctopusCon : public SpatialIndex {
 public:
  explicit OctopusCon(OctopusConOptions options = {})
      : options_(options), grid_(options.grid_resolution) {}

  std::string Name() const override { return "OCTOPUS-CON"; }

  /// Builds the uniform grid over the *initial* vertex positions. The
  /// grid is never rebuilt; it may go arbitrarily stale (Sec. IV-F: "the
  /// index is built once and never updated").
  void Build(const TetraMesh& mesh) override;

  /// No-op, like OCTOPUS.
  void BeforeQueries(const TetraMesh& mesh) override { (void)mesh; }

  /// Single-query path through the cached execution context; `const`
  /// but not safe to call concurrently (`RangeQueryBatch` inherits the
  /// sequential default).
  void RangeQuery(const TetraMesh& mesh, const AABB& box,
                  std::vector<VertexId>* out) const override;

  size_t FootprintBytes() const override;

  const UniformGrid& grid() const { return grid_; }
  const PhaseStats& stats() const { return stats_; }
  void ResetStats() const { stats_.Reset(); }

 private:
  OctopusConOptions options_;
  UniformGrid grid_;
  size_t num_vertices_ = 0;
  // Query scratch + stats, per the engine-layer mutation model: the grid
  // is read-only after Build, queries only touch the context.
  mutable engine::ExecutionContext context_;
  mutable PhaseStats stats_;
};

}  // namespace octopus

#endif  // OCTOPUS_OCTOPUS_OCTOPUS_CON_H_
