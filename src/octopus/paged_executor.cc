// Copyright 2026 The OCTOPUS Reproduction Authors
#include "octopus/paged_executor.h"

namespace octopus {

Result<std::unique_ptr<PagedOctopus>> PagedOctopus::Open(
    const std::string& snapshot_path, const Options& options) {
  auto store = storage::PagedMeshStore::Open(snapshot_path, options.pool);
  if (!store.ok()) return store.status();
  return std::unique_ptr<PagedOctopus>(
      new PagedOctopus(store.MoveValue(), options));
}

PagedOctopus::PagedOctopus(std::unique_ptr<storage::PagedMeshStore> store,
                           const Options& options)
    : options_(options),
      store_(std::move(store)),
      contexts_(options.executor.visited_mode) {
  surface_index_.BuildFromSurfaceVertices(store_->surface_vertices());
  contexts_.set_num_vertices(store_->num_vertices());
  contexts_.Ensure(1);
}

storage::PagedMeshAccessor& PagedOctopus::AccessorFor(
    engine::ExecutionContext* context,
    const storage::PositionOverlay* overlay, size_t shards) const {
  if (context->paged_accessor == nullptr ||
      &context->paged_accessor->store() != store_.get()) {
    context->paged_accessor = std::make_unique<storage::PagedMeshAccessor>(
        store_.get(), &context->stats.page_io);
  } else {
    context->paged_accessor->set_stats(&context->stats.page_io);
  }
  // Opens the batch scope: binds the overlay and sizes the lease budget
  // so `shards` concurrent accessors can never exhaust the shared pool.
  context->paged_accessor->BeginBatch(overlay, shards);
  return *context->paged_accessor;
}

void PagedOctopus::RangeQuery(const AABB& box,
                              std::vector<VertexId>* out) const {
  contexts_.Ensure(1);
  engine::ExecutionContext* context = contexts_.context(0);
  storage::PagedMeshAccessor& accessor = AccessorFor(context, nullptr, 1);
  ExecuteOctopusQuery(accessor, surface_index_, options_.executor, box,
                      context, out);
  accessor.EndBatch();
  contexts_.MergeStats(1);
}

void PagedOctopus::RangeQueryBatch(
    std::span<const AABB> boxes, engine::QueryBatchResult* out,
    engine::ThreadPool* pool,
    const storage::PositionOverlay* overlay) const {
  const size_t shards_hint = pool != nullptr ? pool->threads() : 1;
  ExecuteOctopusBatch(
      [this, overlay, shards_hint](engine::ExecutionContext* context)
          -> storage::PagedMeshAccessor& {
        return AccessorFor(context, overlay, shards_hint);
      },
      surface_index_, options_.executor, boxes, out, pool, &contexts_);
}

size_t PagedOctopus::FootprintBytes() const {
  return surface_index_.FootprintBytes() +
         store_->buffer_manager()->AllocatedBytes() +
         store_->ResidentBytes() + contexts_.ScratchBytes();
}

}  // namespace octopus
