// Copyright 2026 The OCTOPUS Reproduction Authors
// OCTOPUS on hexahedral meshes: the same three-phase strategy (surface
// probe, directed walk, crawl) over the hexahedral vertex graph. The
// paper's key observation (Sec. IV-B) is that the strategy is independent
// of the polyhedral primitive — this executor demonstrates it, sharing the
// crawler and directed walk with the tetrahedral one via `MeshGraphView`.
// The same execution-context model applies: the object is read-only after
// `Build`, all query scratch lives in per-shard contexts, so
// `RangeQueryBatch` parallelizes exactly like the tetrahedral `Octopus`.
#ifndef OCTOPUS_OCTOPUS_HEX_OCTOPUS_H_
#define OCTOPUS_OCTOPUS_HEX_OCTOPUS_H_

#include <memory>
#include <span>
#include <vector>

#include "engine/execution_context.h"
#include "engine/query_batch.h"
#include "mesh/hexa_mesh.h"
#include "octopus/crawler.h"
#include "octopus/directed_walk.h"
#include "octopus/phase_stats.h"
#include "octopus/query_executor.h"  // OctopusOptions
#include "octopus/surface_index.h"

namespace octopus {

namespace engine {
class ThreadPool;
}  // namespace engine

/// \brief OCTOPUS query executor over a `HexaMesh`.
///
/// Restructuring maintenance is not wired up for hexahedra (the paper
/// notes restructuring "is rarely implemented in practice"); rebuild via
/// `Build` if connectivity changes.
class HexOctopus {
 public:
  explicit HexOctopus(OctopusOptions options = {});

  /// Builds the surface index from the hexahedral quad-face surface.
  void Build(const HexaMesh& mesh);

  /// Appends the ids of exactly the vertices inside `box`. Single-query
  /// convenience path through context 0; not safe to call concurrently.
  void RangeQuery(const HexaMesh& mesh, const AABB& box,
                  std::vector<VertexId>* out) const;

  /// Batch path, sharded across `pool` when given (null = sequential).
  void RangeQueryBatch(const HexaMesh& mesh, std::span<const AABB> boxes,
                       engine::QueryBatchResult* out,
                       engine::ThreadPool* pool = nullptr) const;

  size_t FootprintBytes() const;

  const SurfaceIndex& surface_index() const { return surface_index_; }
  const PhaseStats& stats() const { return contexts_.stats(); }
  void ResetStats() const { contexts_.ResetStats(); }

 private:
  OctopusOptions options_;
  SurfaceIndex surface_index_;
  mutable engine::ContextPool contexts_;
};

}  // namespace octopus

#endif  // OCTOPUS_OCTOPUS_HEX_OCTOPUS_H_
