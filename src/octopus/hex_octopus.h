// Copyright 2026 The OCTOPUS Reproduction Authors
// OCTOPUS on hexahedral meshes: the same three-phase strategy (surface
// probe, directed walk, crawl) over the hexahedral vertex graph. The
// paper's key observation (Sec. IV-B) is that the strategy is independent
// of the polyhedral primitive — this executor demonstrates it, sharing the
// crawler and directed walk with the tetrahedral one via `MeshGraphView`.
#ifndef OCTOPUS_OCTOPUS_HEX_OCTOPUS_H_
#define OCTOPUS_OCTOPUS_HEX_OCTOPUS_H_

#include <vector>

#include "mesh/hexa_mesh.h"
#include "octopus/crawler.h"
#include "octopus/directed_walk.h"
#include "octopus/query_executor.h"  // OctopusOptions, PhaseStats
#include "octopus/surface_index.h"

namespace octopus {

/// \brief OCTOPUS query executor over a `HexaMesh`.
///
/// Restructuring maintenance is not wired up for hexahedra (the paper
/// notes restructuring "is rarely implemented in practice"); rebuild via
/// `Build` if connectivity changes.
class HexOctopus {
 public:
  explicit HexOctopus(OctopusOptions options = {});

  /// Builds the surface index from the hexahedral quad-face surface.
  void Build(const HexaMesh& mesh);

  /// Appends the ids of exactly the vertices inside `box`.
  void RangeQuery(const HexaMesh& mesh, const AABB& box,
                  std::vector<VertexId>* out);

  size_t FootprintBytes() const;

  const SurfaceIndex& surface_index() const { return surface_index_; }
  const PhaseStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  OctopusOptions options_;
  SurfaceIndex surface_index_;
  Crawler crawler_;
  PhaseStats stats_;
  std::vector<VertexId> start_scratch_;
};

}  // namespace octopus

#endif  // OCTOPUS_OCTOPUS_HEX_OCTOPUS_H_
