// Copyright 2026 The OCTOPUS Reproduction Authors
// PagedOctopus: the OCTOPUS executor over an out-of-core OCT2 snapshot.
// The same probe -> walk -> crawl cores as the in-memory `Octopus`
// (identical algorithm, identical results, identical non-I/O counters)
// executed through per-thread `storage::PagedMeshAccessor`s that read
// positions and adjacency from a byte-capped buffer pool — the
// configuration the paper actually evaluates (disk-resident Blue Brain
// meshes, Sec. IV-H1), where the interesting cost is page accesses.
//
// Not a `SpatialIndex`: there is no resident `TetraMesh` to pass around,
// and a snapshot cannot deform — it is the frozen state of one
// simulation step, queried out of core.
#ifndef OCTOPUS_OCTOPUS_PAGED_EXECUTOR_H_
#define OCTOPUS_OCTOPUS_PAGED_EXECUTOR_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/execution_context.h"
#include "engine/query_batch.h"
#include "octopus/query_executor.h"
#include "octopus/surface_index.h"
#include "storage/paged_mesh.h"

namespace octopus {

/// \brief Out-of-core OCTOPUS over a paged snapshot.
///
/// Same mutation model as `Octopus`: read-only after `Open`, all query
/// scratch in per-shard contexts, `RangeQueryBatch` parallel-safe,
/// single-query `RangeQuery` routed through context 0 (not concurrent).
/// The buffer pool is shared by all shards; per-context page-I/O
/// counters merge into `stats().page_io` in shard order.
class PagedOctopus {
 public:
  struct Options {
    OctopusOptions executor;
    storage::BufferManager::Options pool;
  };

  /// Opens `snapshot_path` and builds the surface index from the
  /// snapshot's stored surface vertex list (no tetrahedra needed — the
  /// surface was extracted at snapshot time).
  static Result<std::unique_ptr<PagedOctopus>> Open(
      const std::string& snapshot_path, const Options& options = {});

  std::string Name() const { return "OCTOPUS-PAGED"; }

  /// Single-query convenience path through context 0; not safe to call
  /// concurrently.
  void RangeQuery(const AABB& box, std::vector<VertexId>* out) const;

  /// Batch path, sharded across `pool` when given (null = sequential).
  /// Per-query results are independent of the thread count and equal to
  /// the in-memory results on the same (layout-permuted) mesh.
  ///
  /// `overlay` pins the batch to a position epoch: every shard's
  /// accessor reads displaced-position delta pages from it instead of
  /// the base snapshot (see storage/delta_overlay.h). Null = the base
  /// snapshot's own positions (epoch 0). The caller keeps the overlay
  /// alive for the duration of the batch.
  void RangeQueryBatch(std::span<const AABB> boxes,
                       engine::QueryBatchResult* out,
                       engine::ThreadPool* pool = nullptr,
                       const storage::PositionOverlay* overlay =
                           nullptr) const;

  /// Surface index + buffer pool frames actually allocated + per-context
  /// scratch: everything resident, honestly counted — the number the
  /// paper's out-of-core story is about (bounded regardless of mesh
  /// size).
  size_t FootprintBytes() const;

  const storage::PagedMeshStore& store() const { return *store_; }
  const SurfaceIndex& surface_index() const { return surface_index_; }
  const PhaseStats& stats() const { return contexts_.stats(); }
  void ResetStats() const { contexts_.ResetStats(); }

 private:
  PagedOctopus(std::unique_ptr<storage::PagedMeshStore> store,
               const Options& options);

  /// Returns the context's paged accessor, creating or rebinding it to
  /// this store on first use (contexts are reused across executors),
  /// with a batch begun against `overlay` (may be null = base positions)
  /// and a lease budget sized for `shards` concurrent accessors.
  storage::PagedMeshAccessor& AccessorFor(
      engine::ExecutionContext* context,
      const storage::PositionOverlay* overlay, size_t shards) const;

  Options options_;
  std::unique_ptr<storage::PagedMeshStore> store_;
  SurfaceIndex surface_index_;
  mutable engine::ContextPool contexts_;
};

}  // namespace octopus

#endif  // OCTOPUS_OCTOPUS_PAGED_EXECUTOR_H_
