// Copyright 2026 The OCTOPUS Reproduction Authors
#include "octopus/planner.h"

namespace octopus {

AdaptiveExecutor::AdaptiveExecutor() : AdaptiveExecutor(Options{}) {}

AdaptiveExecutor::AdaptiveExecutor(Options options)
    : options_(options),
      octopus_(options.octopus),
      histogram_(options.histogram_resolution) {}

void AdaptiveExecutor::Build(const TetraMesh& mesh) {
  octopus_.Build(mesh);
  // Histogram over the initial positions: deformation amplitudes are
  // small relative to the mesh, so estimates stay representative (and
  // routing only needs the right order of magnitude).
  histogram_.Build(mesh.positions());
  const CostConstants constants =
      CalibrateCostConstants(mesh, options_.calibration_repetitions);
  const CostModel model = CostModel::FromMesh(mesh, constants);
  break_even_ = model.BreakEvenSelectivity();
  to_octopus_ = 0;
  to_scan_ = 0;
}

void AdaptiveExecutor::RangeQuery(const TetraMesh& mesh, const AABB& box,
                                  std::vector<VertexId>* out) const {
  const double selectivity = histogram_.EstimateSelectivity(box);
  if (selectivity < break_even_) {
    ++to_octopus_;
    octopus_.RangeQuery(mesh, box, out);
  } else {
    ++to_scan_;
    scan_.RangeQuery(mesh, box, out);
  }
}

size_t AdaptiveExecutor::FootprintBytes() const {
  return octopus_.FootprintBytes() + histogram_.FootprintBytes();
}

}  // namespace octopus
