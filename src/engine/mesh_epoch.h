// Copyright 2026 The OCTOPUS Reproduction Authors
// Epoch identity of a dynamic mesh: every published position state of a
// versioned backend carries one. Queries pin an epoch and execute
// entirely against it (copy-on-write publication, see
// sim/versioned_mesh.h), so a result set is always internally consistent
// — no torn positions — while the spatial structures (surface index,
// octree) stay stale per the paper's central claim. Lives at the engine
// layer so batch results can carry it without depending on sim/ or
// server/.
#ifndef OCTOPUS_ENGINE_MESH_EPOCH_H_
#define OCTOPUS_ENGINE_MESH_EPOCH_H_

#include <cstdint>

namespace octopus::engine {

/// Monotonic identifier of one published position state. Published ids
/// start at 1 — epoch 1 is the load-time state (the one the stale index
/// was built from) — and every `AdvanceStep` publishes a fresh, strictly
/// larger id. Id 0 is never published: the wire protocol uses it as the
/// "whatever is current" sentinel, and a default `EpochInfo{}` (epoch 0)
/// marks a static backend's unversioned state.
using EpochId = uint64_t;

/// \brief Identity of the mesh state a batch executed against.
struct EpochInfo {
  EpochId epoch = 0;
  /// Simulation step the positions correspond to. Equals the staleness
  /// of the load-time index in steps (the index is never rebuilt).
  uint32_t step = 0;

  friend bool operator==(const EpochInfo&, const EpochInfo&) = default;
};

}  // namespace octopus::engine

#endif  // OCTOPUS_ENGINE_MESH_EPOCH_H_
