// Copyright 2026 The OCTOPUS Reproduction Authors
// The batched query engine: the single entry point through which the
// harness, benches and tools execute a simulation step's worth of range
// queries against any `SpatialIndex`. Owns a small internal thread pool;
// indexes whose batch path is parallel (OCTOPUS) shard the batch across
// it, baselines fall back to the sequential default transparently.
//
// OCTOPUS's probe -> walk -> crawl phases are read-only over the mesh and
// the surface index, so a batch is embarrassingly parallel: each shard
// executes on its own `ExecutionContext` and per-shard `PhaseStats` are
// merged deterministically at batch end (see execution_context.h).
#ifndef OCTOPUS_ENGINE_QUERY_ENGINE_H_
#define OCTOPUS_ENGINE_QUERY_ENGINE_H_

#include <span>

#include "common/aabb.h"
#include "engine/query_batch.h"
#include "engine/thread_pool.h"
#include "index/spatial_index.h"
#include "mesh/tetra_mesh.h"

namespace octopus {
class PagedOctopus;
}  // namespace octopus

namespace octopus::engine {

/// \brief Engine configuration.
struct QueryEngineOptions {
  /// Total query-execution parallelism, including the calling thread.
  /// 1 = fully sequential (no worker threads are created).
  int threads = 1;
};

/// \brief Executes query batches against a `SpatialIndex`.
///
/// Construct once, reuse across steps: the worker threads and the
/// per-query result slots are recycled. One engine serves any number of
/// indexes. Not thread-safe itself: one engine per driving thread.
class QueryEngine {
 public:
  explicit QueryEngine(QueryEngineOptions options = {});

  int threads() const { return pool_.threads(); }

  /// Executes `boxes` against `index`, filling `out` with one result set
  /// per query in batch order. Equivalent to calling `RangeQuery` per box
  /// on a quiescent index — but parallel when the index supports it and
  /// `threads > 1`.
  void Execute(const SpatialIndex& index, const TetraMesh& mesh,
               std::span<const AABB> boxes, QueryBatchResult* out);

  void Execute(const SpatialIndex& index, const TetraMesh& mesh,
               const QueryBatch& batch, QueryBatchResult* out) {
    Execute(index, mesh, batch.View(), out);
  }

  /// Out-of-core path: executes `boxes` against a paged snapshot
  /// executor (which carries its own mesh view — no resident
  /// `TetraMesh` exists). Sharding and stats merge work exactly as in
  /// the in-memory path.
  void Execute(const PagedOctopus& index, std::span<const AABB> boxes,
               QueryBatchResult* out);

  /// The worker pool for callers that drive executor cores directly
  /// (the versioned backend pins an epoch first, then shards over it);
  /// null when the engine is configured sequential.
  ThreadPool* pool() { return pool_.threads() > 1 ? &pool_ : nullptr; }

 private:
  ThreadPool pool_;
};

}  // namespace octopus::engine

#endif  // OCTOPUS_ENGINE_QUERY_ENGINE_H_
