// Copyright 2026 The OCTOPUS Reproduction Authors
// A small fixed-size fork/join pool for sharded batch execution. The
// calling thread participates as shard 0, so a 1-thread pool spawns no
// workers and adds no synchronization to the sequential path.
#ifndef OCTOPUS_ENGINE_THREAD_POOL_H_
#define OCTOPUS_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace octopus::engine {

/// \brief Fixed-width fork/join executor.
///
/// `Run(fn)` invokes `fn(shard)` for every shard in `[0, threads())`
/// concurrently and returns when all invocations have finished. Workers
/// are created once and parked between runs. `Run` is not re-entrant and
/// must always be called from the same (owning) thread. If any shard
/// throws, `Run` still joins every in-flight shard before rethrowing one
/// of the exceptions, so the pool stays usable.
class ThreadPool {
 public:
  /// \param threads total parallelism including the calling thread;
  ///   clamped to >= 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  void Run(const std::function<void(int shard)>& fn);

 private:
  void WorkerLoop(int shard);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* fn_ = nullptr;  // valid during a Run
  std::exception_ptr worker_error_;               // first worker throw
  uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

}  // namespace octopus::engine

#endif  // OCTOPUS_ENGINE_THREAD_POOL_H_
