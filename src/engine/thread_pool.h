// Copyright 2026 The OCTOPUS Reproduction Authors
// A small fixed-size fork/join pool for sharded batch execution. The
// calling thread participates as shard 0, so a 1-thread pool spawns no
// workers and adds no synchronization to the sequential path.
#ifndef OCTOPUS_ENGINE_THREAD_POOL_H_
#define OCTOPUS_ENGINE_THREAD_POOL_H_

#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace octopus::engine {

/// \brief Fixed-width fork/join executor.
///
/// `Run(fn)` invokes `fn(shard)` for every shard in `[0, threads())`
/// concurrently and returns when all invocations have finished. Workers
/// are created once and parked between runs. `Run` is not re-entrant and
/// must always be called from the same (owning) thread. If any shard
/// throws, `Run` still joins every in-flight shard before rethrowing one
/// of the exceptions, so the pool stays usable.
class ThreadPool {
 public:
  /// \param threads total parallelism including the calling thread;
  ///   clamped to >= 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  void Run(const std::function<void(int shard)>& fn);

 private:
  void WorkerLoop(int shard);

  std::vector<std::thread> workers_;  // const after construction
  common::Mutex mu_;
  common::CondVar work_cv_;
  common::CondVar done_cv_;
  /// Valid during a Run.
  const std::function<void(int)>* fn_ GUARDED_BY(mu_) = nullptr;
  std::exception_ptr worker_error_ GUARDED_BY(mu_);  // first worker throw
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  int pending_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace octopus::engine

#endif  // OCTOPUS_ENGINE_THREAD_POOL_H_
