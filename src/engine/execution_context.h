// Copyright 2026 The OCTOPUS Reproduction Authors
// Per-thread mutable query-execution state. All scratch that the seed
// kept inside the index objects (crawler visited-epoch array, start
// scratch, phase stats) lives here instead, making the index objects
// read-only during query execution and a batch embarrassingly parallel:
// one context per shard, zero shared mutation.
#ifndef OCTOPUS_ENGINE_EXECUTION_CONTEXT_H_
#define OCTOPUS_ENGINE_EXECUTION_CONTEXT_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/timer.h"
#include "mesh/types.h"
#include "octopus/crawler.h"
#include "octopus/phase_stats.h"
#include "storage/paged_mesh.h"

namespace octopus::engine {

/// \brief Everything one executing thread needs to run OCTOPUS queries:
/// a crawler (with its visited-epoch scratch), the probe's start-vertex
/// scratch, a local `PhaseStats` accumulator, and — for out-of-core
/// execution — the thread's paged mesh accessor.
///
/// Contexts are never shared between concurrently executing queries.
/// After a parallel batch, per-context stats are merged into the
/// index-level aggregate in deterministic shard order.
struct ExecutionContext {
  Crawler crawler;
  std::vector<VertexId> start_scratch;
  PhaseStats stats;
  /// The per-thread out-of-core read handle, created (and rebound) by
  /// `PagedOctopus` on first use of this context and reused across
  /// batches. Null while queries run over the in-memory accessor.
  std::unique_ptr<storage::PagedMeshAccessor> paged_accessor;

  ExecutionContext() = default;
  explicit ExecutionContext(VisitedMode mode) : crawler(mode) {}

  /// Grows the crawler scratch to cover `num_vertices`.
  void EnsureSize(size_t num_vertices) { crawler.EnsureSize(num_vertices); }

  /// Bytes of scratch held by this context (footprint accounting).
  size_t ScratchBytes() const {
    return crawler.ScratchBytes() +
           start_scratch.capacity() * sizeof(VertexId) +
           (paged_accessor ? paged_accessor->ScratchBytes() : 0);
  }
};

/// \brief Lazily grown set of per-shard contexts plus the merged stats
/// aggregate — the executor-side state shared by `Octopus` and
/// `HexOctopus`.
///
/// `Ensure` must run on the calling thread before shards fork; after a
/// batch, `MergeStats` folds per-context stats into the aggregate in
/// shard order (deterministic counts for any thread count) and resets
/// the locals, upholding the no-shared-mutation-in-flight invariant.
class ContextPool {
 public:
  ContextPool() = default;
  explicit ContextPool(VisitedMode mode) : mode_(mode) {}

  /// Sets the graph size contexts must cover; resizes existing contexts.
  void set_num_vertices(size_t n) {
    num_vertices_ = n;
    for (const auto& context : contexts_) {
      if (context) context->EnsureSize(n);
    }
  }

  /// Guarantees contexts `[0, count)` exist and are sized. Calling
  /// thread only — never concurrently with executing shards.
  void Ensure(size_t count) {
    if (contexts_.size() < count) contexts_.resize(count);
    for (size_t i = 0; i < count; ++i) {
      if (!contexts_[i]) {
        contexts_[i] = std::make_unique<ExecutionContext>(mode_);
      }
      contexts_[i]->EnsureSize(num_vertices_);
    }
  }

  ExecutionContext* context(size_t i) { return contexts_[i].get(); }

  /// Folds contexts `[0, shards)` into the aggregate, in shard order,
  /// and resets their local stats. The fold itself is the batch's merge
  /// phase; its wall clock lands in the aggregate's `merge_nanos` (the
  /// one phase timer no context can hold — it runs after the contexts
  /// retire).
  void MergeStats(size_t shards) {
    Timer timer;
    for (size_t i = 0; i < shards; ++i) {
      stats_.Merge(contexts_[i]->stats);
      contexts_[i]->stats.Reset();
    }
    stats_.merge_nanos += timer.ElapsedNanos();
  }

  const PhaseStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Scratch across every allocated context (honest accounting: after a
  /// T-thread batch this is T crawlers' worth of memory, really held).
  size_t ScratchBytes() const {
    size_t bytes = 0;
    for (const auto& context : contexts_) {
      if (context) bytes += context->ScratchBytes();
    }
    return bytes;
  }

 private:
  VisitedMode mode_ = VisitedMode::kEpochArray;
  size_t num_vertices_ = 0;
  std::vector<std::unique_ptr<ExecutionContext>> contexts_;
  PhaseStats stats_;
};

}  // namespace octopus::engine

#endif  // OCTOPUS_ENGINE_EXECUTION_CONTEXT_H_
