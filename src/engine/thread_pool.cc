// Copyright 2026 The OCTOPUS Reproduction Authors
#include "engine/thread_pool.h"

#include <algorithm>

namespace octopus::engine {

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(threads, 1) - 1;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, shard = i + 1] { WorkerLoop(shard); });
  }
}

ThreadPool::~ThreadPool() {
  {
    common::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Run(const std::function<void(int)>& fn) {
  if (workers_.empty()) {
    fn(0);
    return;
  }
  {
    common::MutexLock lock(mu_);
    fn_ = &fn;
    worker_error_ = nullptr;
    pending_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.NotifyAll();
  // The calling thread is shard 0. If it throws, the workers must still
  // be awaited before unwinding: they hold a pointer to `fn`, and the
  // pool would otherwise be left with pending work forever.
  std::exception_ptr error;
  try {
    fn(0);
  } catch (...) {
    error = std::current_exception();
  }
  {
    common::MutexLock lock(mu_);
    while (pending_ != 0) done_cv_.Wait(mu_);
    fn_ = nullptr;
    if (error == nullptr) error = worker_error_;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void ThreadPool::WorkerLoop(int shard) {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    {
      common::MutexLock lock(mu_);
      while (!stop_ && generation_ == seen_generation) work_cv_.Wait(mu_);
      if (stop_) return;
      seen_generation = generation_;
      fn = fn_;
    }
    std::exception_ptr error;
    try {
      (*fn)(shard);
    } catch (...) {
      error = std::current_exception();
    }
    {
      common::MutexLock lock(mu_);
      if (error != nullptr && worker_error_ == nullptr) {
        worker_error_ = error;
      }
      if (--pending_ == 0) done_cv_.NotifyOne();
    }
  }
}

}  // namespace octopus::engine
