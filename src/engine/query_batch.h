// Copyright 2026 The OCTOPUS Reproduction Authors
// Batch-of-queries value types shared by the `SpatialIndex` batch entry
// point and the `QueryEngine`. Dependency-wise these sit at the common
// layer (they only know about AABBs and vertex ids), so the index layer
// can use them without depending on the engine's execution machinery.
#ifndef OCTOPUS_ENGINE_QUERY_BATCH_H_
#define OCTOPUS_ENGINE_QUERY_BATCH_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/aabb.h"
#include "engine/mesh_epoch.h"
#include "mesh/types.h"

namespace octopus::engine {

/// \brief An ordered batch of AABB range queries issued together, as a
/// simulation step does (paper Sec. V-A: tens to hundreds of queries per
/// time step).
struct QueryBatch {
  std::vector<AABB> boxes;

  QueryBatch() = default;
  explicit QueryBatch(std::vector<AABB> b) : boxes(std::move(b)) {}

  void Add(const AABB& box) { boxes.push_back(box); }
  size_t size() const { return boxes.size(); }
  bool empty() const { return boxes.empty(); }

  std::span<const AABB> View() const { return boxes; }
  operator std::span<const AABB>() const { return boxes; }  // NOLINT
};

/// \brief Per-query result sets of a batch, in batch order.
///
/// Each query owns a distinct slot, so parallel executors can write
/// results concurrently without synchronization; the layout (and thus the
/// content per query) is identical regardless of how many threads
/// produced it.
struct QueryBatchResult {
  std::vector<std::vector<VertexId>> per_query;
  /// The mesh epoch every query of this batch executed against. A batch
  /// is epoch-consistent by construction: the executor pins one epoch
  /// before the first query and never observes a concurrent step.
  /// Stays {0, 0} on the static (non-versioned) execution paths.
  EpochInfo epoch;

  /// Clears and resizes to `num_queries` empty result sets. Reuses slot
  /// capacity across batches.
  void Reset(size_t num_queries) {
    for (auto& slot : per_query) slot.clear();
    per_query.resize(num_queries);
    epoch = EpochInfo{};
  }

  size_t size() const { return per_query.size(); }

  size_t TotalResults() const {
    size_t n = 0;
    for (const auto& slot : per_query) n += slot.size();
    return n;
  }
};

}  // namespace octopus::engine

#endif  // OCTOPUS_ENGINE_QUERY_BATCH_H_
