// Copyright 2026 The OCTOPUS Reproduction Authors
#include "engine/query_engine.h"

#include "octopus/paged_executor.h"

namespace octopus::engine {

QueryEngine::QueryEngine(QueryEngineOptions options)
    : pool_(options.threads) {}

void QueryEngine::Execute(const SpatialIndex& index, const TetraMesh& mesh,
                          std::span<const AABB> boxes,
                          QueryBatchResult* out) {
  index.RangeQueryBatch(mesh, boxes, out,
                        pool_.threads() > 1 ? &pool_ : nullptr);
}

void QueryEngine::Execute(const PagedOctopus& index,
                          std::span<const AABB> boxes,
                          QueryBatchResult* out) {
  index.RangeQueryBatch(boxes, out, pool_.threads() > 1 ? &pool_ : nullptr);
}

}  // namespace octopus::engine
