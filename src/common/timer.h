// Copyright 2026 The OCTOPUS Reproduction Authors
// Wall-clock timing helpers used by the benchmark harness and by the
// per-phase breakdown statistics of the OCTOPUS query executor.
#ifndef OCTOPUS_COMMON_TIMER_H_
#define OCTOPUS_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace octopus {

/// \brief Monotonic stopwatch with nanosecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last `Restart`.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates elapsed time across many start/stop intervals.
///
/// The query executor keeps one per phase (surface probe, directed walk,
/// crawling) to reproduce the paper's Fig. 9(b)/10(a) breakdowns.
class AccumulatingTimer {
 public:
  void Start() { timer_.Restart(); }
  void Stop() { total_nanos_ += timer_.ElapsedNanos(); }
  void Reset() { total_nanos_ = 0; }

  int64_t TotalNanos() const { return total_nanos_; }
  double TotalSeconds() const {
    return static_cast<double>(total_nanos_) * 1e-9;
  }

 private:
  Timer timer_;
  int64_t total_nanos_ = 0;
};

/// RAII guard that stops an AccumulatingTimer on scope exit.
class ScopedTimer {
 public:
  explicit ScopedTimer(AccumulatingTimer* t) : t_(t) { t_->Start(); }
  ~ScopedTimer() { t_->Stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  AccumulatingTimer* t_;
};

}  // namespace octopus

#endif  // OCTOPUS_COMMON_TIMER_H_
