// Copyright 2026 The OCTOPUS Reproduction Authors
// Uniform 3D equi-width histogram for spatial selectivity estimation.
// The paper's analytical model (Sec. IV-G) estimates query selectivity with
// the histogram technique of Acharya, Poosala & Ramaswamy (SIGMOD '99); this
// is the equi-width variant specialized to point data.
#ifndef OCTOPUS_COMMON_HISTOGRAM3D_H_
#define OCTOPUS_COMMON_HISTOGRAM3D_H_

#include <cstdint>
#include <vector>

#include "common/aabb.h"
#include "common/vec3.h"

namespace octopus {

/// \brief Equi-width 3D histogram over point counts.
///
/// Built once over a snapshot of the vertex positions; the cost model uses
/// it to estimate `Selectivity%` of a query box without executing it. Small
/// estimation error is expected and tolerated by the model (paper reports
/// ~2% end-to-end model error).
class Histogram3D {
 public:
  /// \param resolution number of buckets per axis (>= 1).
  explicit Histogram3D(int resolution = 16);

  /// Rebuild over the given points. Bounds are the tight AABB of `points`
  /// unless `bounds` is supplied non-empty.
  void Build(const std::vector<Vec3>& points, const AABB& bounds = AABB());

  /// Estimated number of points inside `query`, assuming uniform density
  /// inside each bucket (fractional-overlap weighting).
  double EstimateCount(const AABB& query) const;

  /// Estimated selectivity in [0, 1]: EstimateCount / total points.
  double EstimateSelectivity(const AABB& query) const;

  int resolution() const { return resolution_; }
  uint64_t total_points() const { return total_; }
  const AABB& bounds() const { return bounds_; }

  /// Memory held by the bucket array, in bytes.
  size_t FootprintBytes() const {
    return buckets_.capacity() * sizeof(uint32_t);
  }

 private:
  size_t BucketIndex(int bx, int by, int bz) const {
    return (static_cast<size_t>(bz) * resolution_ + by) * resolution_ + bx;
  }

  int resolution_;
  AABB bounds_;
  Vec3 bucket_size_;
  uint64_t total_ = 0;
  std::vector<uint32_t> buckets_;
};

}  // namespace octopus

#endif  // OCTOPUS_COMMON_HISTOGRAM3D_H_
