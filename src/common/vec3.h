// Copyright 2026 The OCTOPUS Reproduction Authors
// 3D vector type used for mesh vertex positions and geometric math.
#ifndef OCTOPUS_COMMON_VEC3_H_
#define OCTOPUS_COMMON_VEC3_H_

#include <cmath>
#include <iosfwd>
#include <ostream>

namespace octopus {

/// \brief A 3-component single-precision vector.
///
/// Vertex positions in simulation meshes are stored as `Vec3` in a
/// struct-of-arrays layout (see `TetraMesh`). Single precision matches what
/// simulation codes typically keep in memory and halves the scan bandwidth
/// relative to doubles; all accumulations that need precision (e.g. cost
/// calibration) are done in double.
struct Vec3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Vec3() = default;
  constexpr Vec3(float px, float py, float pz) : x(px), y(py), z(pz) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return Vec3(x + o.x, y + o.y, z + o.z);
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return Vec3(x - o.x, y - o.y, z - o.z);
  }
  constexpr Vec3 operator*(float s) const { return Vec3(x * s, y * s, z * s); }
  constexpr Vec3 operator/(float s) const { return Vec3(x / s, y / s, z / s); }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(float s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3& o) const {
    return x == o.x && y == o.y && z == o.z;
  }
  constexpr bool operator!=(const Vec3& o) const { return !(*this == o); }

  constexpr float Dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 Cross(const Vec3& o) const {
    return Vec3(y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x);
  }
  constexpr float SquaredNorm() const { return Dot(*this); }
  float Norm() const { return std::sqrt(SquaredNorm()); }

  /// Component-wise minimum.
  static constexpr Vec3 Min(const Vec3& a, const Vec3& b) {
    return Vec3(a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y,
                a.z < b.z ? a.z : b.z);
  }
  /// Component-wise maximum.
  static constexpr Vec3 Max(const Vec3& a, const Vec3& b) {
    return Vec3(a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y,
                a.z > b.z ? a.z : b.z);
  }
};

inline constexpr Vec3 operator*(float s, const Vec3& v) { return v * s; }

inline float SquaredDistance(const Vec3& a, const Vec3& b) {
  return (a - b).SquaredNorm();
}

inline float Distance(const Vec3& a, const Vec3& b) {
  return (a - b).Norm();
}

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

}  // namespace octopus

#endif  // OCTOPUS_COMMON_VEC3_H_
