// Copyright 2026 The OCTOPUS Reproduction Authors
// Clang thread-safety annotations plus a CAPABILITY-annotated mutex
// wrapper — the compile-time locking contract of the concurrent stack.
//
// Every mutex-protected class declares which lock guards which field
// (`GUARDED_BY`) and which lock each helper expects held (`REQUIRES`);
// clang's `-Wthread-safety` analysis then rejects, at compile time, any
// access that violates the declared discipline. The CI job
// `thread-safety` builds src/server, src/obs, src/storage and
// src/engine with `-Wthread-safety -Werror`, so a mis-locked access is
// a build break, not a TSan lottery ticket.
//
// Under compilers without the capability attributes (g++ — the tier-1
// build), every macro expands to nothing and `Mutex`/`MutexLock`/
// `CondVar` are zero-overhead veneers over `std::mutex`,
// `std::lock_guard` and `std::condition_variable`.
//
// Conventions (see docs/DEVELOPING.md for the full guide):
//   * `GUARDED_BY(mu_)` on a field: every read and write must hold mu_.
//   * `REQUIRES(mu_)` on a private helper: the caller locks; `Locked`
//     name suffixes keep the convention visible at call sites.
//   * `EXCLUDES(mu_)` on a public method: callers must NOT hold mu_
//     (the method takes it itself) — documents non-reentrancy.
//   * `ACQUIRE`/`RELEASE` only appear inside the wrapper types below;
//     application code uses scoped `MutexLock`s.
#ifndef OCTOPUS_COMMON_THREAD_ANNOTATIONS_H_
#define OCTOPUS_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define OCTOPUS_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef OCTOPUS_THREAD_ANNOTATION_
#define OCTOPUS_THREAD_ANNOTATION_(x)  // not clang: no-op
#endif

#define CAPABILITY(x) OCTOPUS_THREAD_ANNOTATION_(capability(x))
#define SCOPED_CAPABILITY OCTOPUS_THREAD_ANNOTATION_(scoped_lockable)
#define GUARDED_BY(x) OCTOPUS_THREAD_ANNOTATION_(guarded_by(x))
#define PT_GUARDED_BY(x) OCTOPUS_THREAD_ANNOTATION_(pt_guarded_by(x))
#define REQUIRES(...) \
  OCTOPUS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  OCTOPUS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  OCTOPUS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RELEASE(...) \
  OCTOPUS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  OCTOPUS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) OCTOPUS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define ACQUIRED_BEFORE(...) \
  OCTOPUS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  OCTOPUS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define RETURN_CAPABILITY(x) OCTOPUS_THREAD_ANNOTATION_(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  OCTOPUS_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace octopus::common {

/// \brief `std::mutex` annotated as a capability, so the analysis can
/// track who holds it. Prefer scoped `MutexLock`s; the bare
/// `Lock`/`Unlock` pair exists for the release-around-I/O pattern
/// inside `REQUIRES`-annotated helpers (see EpochStore::SpillOne).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief Scoped lock over `Mutex` — `std::lock_guard` with two
/// extensions the codebase needs: explicit `Unlock`/`Lock` for
/// critical sections that release around blocking work (BufferManager
/// hands out a pinned frame pointer after unlocking; CopyOut memcpys
/// outside the lock), and condition-variable waits via `CondVar`.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (the destructor then does nothing). The guarded
  /// state must not be touched until `Lock` re-acquires.
  void Unlock() RELEASE() {
    held_ = false;
    mu_.Unlock();
  }
  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// \brief Condition variable paired with `Mutex`. `Wait` atomically
/// releases the (held) mutex, blocks, and re-acquires before
/// returning; the analysis models it as "capability held throughout",
/// which is exactly the invariant guarded state relies on. Predicate
/// waits are written as explicit `while` loops at the call sites so
/// the guarded reads inside the predicate stay visible to the
/// analysis (lambdas are opaque to it).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's MutexLock
  }

  /// Returns false on timeout (like `std::cv_status::timeout`).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu,
               const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace octopus::common

#endif  // OCTOPUS_COMMON_THREAD_ANNOTATIONS_H_
