// Copyright 2026 The OCTOPUS Reproduction Authors
// 3D Hilbert space-filling curve used by the graph data-organization
// optimization (paper Sec. IV-H1): sorting vertices by Hilbert index places
// spatially close vertices close in memory, improving cache hit rates of the
// crawling phase.
#ifndef OCTOPUS_COMMON_HILBERT_H_
#define OCTOPUS_COMMON_HILBERT_H_

#include <cstdint>

#include "common/aabb.h"
#include "common/vec3.h"

namespace octopus {

/// \brief Encoder for the 3D Hilbert curve on a 2^bits grid per axis.
class HilbertCurve3D {
 public:
  /// \param bits precision per axis (1..21; 21 bits * 3 axes = 63-bit keys).
  explicit HilbertCurve3D(int bits = 10);

  int bits() const { return bits_; }

  /// Distance along the curve of integer grid cell (x, y, z).
  /// Coordinates must be < 2^bits.
  uint64_t Encode(uint32_t x, uint32_t y, uint32_t z) const;

  /// Inverse of `Encode`.
  void Decode(uint64_t d, uint32_t* x, uint32_t* y, uint32_t* z) const;

  /// Curve distance of a point, after normalizing it into `bounds`.
  /// Points outside the bounds are clamped to the boundary cells.
  uint64_t EncodePoint(const Vec3& p, const AABB& bounds) const;

 private:
  int bits_;
};

}  // namespace octopus

#endif  // OCTOPUS_COMMON_HILBERT_H_
