// Copyright 2026 The OCTOPUS Reproduction Authors
// Minimal Status/Result error-propagation types in the Arrow/RocksDB idiom:
// recoverable errors travel as values, never as exceptions.
#ifndef OCTOPUS_COMMON_STATUS_H_
#define OCTOPUS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace octopus {

/// \brief Outcome of a fallible operation (IO, validation, configuration).
///
/// Hot-path query code never returns `Status`; invariant violations there are
/// programming errors and are guarded with assertions instead.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kIOError,
    kNotFound,
    kCorruption,
    kUnimplemented,
    kResourceExhausted,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "Unknown";
    switch (code_) {
      case Code::kOk:
        name = "OK";
        break;
      case Code::kInvalidArgument:
        name = "InvalidArgument";
        break;
      case Code::kIOError:
        name = "IOError";
        break;
      case Code::kNotFound:
        name = "NotFound";
        break;
      case Code::kCorruption:
        name = "Corruption";
        break;
      case Code::kUnimplemented:
        name = "Unimplemented";
        break;
      case Code::kResourceExhausted:
        name = "ResourceExhausted";
        break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// \brief Either a value of type `T` or an error `Status`.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, mirrors
  // arrow::Result so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& Value() const& {
    assert(ok());
    return *value_;
  }
  T& Value() & {
    assert(ok());
    return *value_;
  }
  T&& MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

/// Propagate a non-OK status to the caller (Arrow's ARROW_RETURN_NOT_OK).
#define OCTOPUS_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::octopus::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (false)

}  // namespace octopus

#endif  // OCTOPUS_COMMON_STATUS_H_
