// Copyright 2026 The OCTOPUS Reproduction Authors
// Fixed-width ASCII table printer. The benchmark harness prints one table
// per paper figure; this keeps the output layout consistent and diffable.
#ifndef OCTOPUS_COMMON_TABLE_H_
#define OCTOPUS_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace octopus {

/// \brief Column-aligned table with a title, printed to stdout.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before adding rows.
  void SetHeader(std::vector<std::string> header);

  /// Appends one row; cells beyond the header width are dropped, missing
  /// cells are rendered empty.
  void AddRow(std::vector<std::string> row);

  /// Renders the table to a string (also used by tests).
  std::string ToString() const;

  /// Prints `ToString()` to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

  /// Formats a double with `precision` decimal digits.
  static std::string Num(double v, int precision = 2);
  /// Formats an integer with thousands separators (1234567 -> "1,234,567").
  static std::string Count(uint64_t v);
  /// Formats a byte count using MB with two decimals.
  static std::string Megabytes(size_t bytes);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace octopus

#endif  // OCTOPUS_COMMON_TABLE_H_
