// Copyright 2026 The OCTOPUS Reproduction Authors
// Axis-aligned bounding box: the query shape of the paper and the bounding
// volume used by all tree indexes.
#ifndef OCTOPUS_COMMON_AABB_H_
#define OCTOPUS_COMMON_AABB_H_

#include <algorithm>
#include <limits>
#include <ostream>

#include "common/vec3.h"

namespace octopus {

/// \brief Axis-aligned box `[min, max]` (closed on both ends).
///
/// Used both as the rectangular range-query region (Sec. I of the paper)
/// and as the bounding volume inside the R-tree family of baselines.
struct AABB {
  Vec3 min;
  Vec3 max;

  /// Default box is *empty*: min = +inf, max = -inf, so that `Extend`
  /// starting from an empty box yields the tight bound of the points fed in.
  constexpr AABB()
      : min(std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max()),
        max(std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest()) {}
  constexpr AABB(const Vec3& mn, const Vec3& mx) : min(mn), max(mx) {}

  /// Box centered at `c` with half-extent `h` in every axis.
  static constexpr AABB FromCenterHalfExtent(const Vec3& c, const Vec3& h) {
    return AABB(c - h, c + h);
  }

  constexpr bool Empty() const {
    return min.x > max.x || min.y > max.y || min.z > max.z;
  }

  constexpr Vec3 Center() const { return (min + max) * 0.5f; }
  constexpr Vec3 Extent() const { return max - min; }

  double Volume() const {
    if (Empty()) return 0.0;
    const Vec3 e = Extent();
    return static_cast<double>(e.x) * e.y * e.z;
  }

  /// Surface-area-like margin used by some R-tree split heuristics.
  double Margin() const {
    if (Empty()) return 0.0;
    const Vec3 e = Extent();
    return 2.0 * (static_cast<double>(e.x) + e.y + e.z);
  }

  constexpr bool Contains(const Vec3& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y &&
           p.z >= min.z && p.z <= max.z;
  }

  constexpr bool Contains(const AABB& o) const {
    return o.min.x >= min.x && o.max.x <= max.x && o.min.y >= min.y &&
           o.max.y <= max.y && o.min.z >= min.z && o.max.z <= max.z;
  }

  constexpr bool Intersects(const AABB& o) const {
    return min.x <= o.max.x && max.x >= o.min.x && min.y <= o.max.y &&
           max.y >= o.min.y && min.z <= o.max.z && max.z >= o.min.z;
  }

  void Extend(const Vec3& p) {
    min = Vec3::Min(min, p);
    max = Vec3::Max(max, p);
  }

  void Extend(const AABB& o) {
    min = Vec3::Min(min, o.min);
    max = Vec3::Max(max, o.max);
  }

  /// Smallest box covering both inputs.
  static AABB Union(const AABB& a, const AABB& b) {
    AABB r = a;
    r.Extend(b);
    return r;
  }

  /// Grow by `d` in every direction (used by QU-Trade grace windows).
  AABB Inflated(float d) const {
    return AABB(min - Vec3(d, d, d), max + Vec3(d, d, d));
  }

  /// Squared euclidean distance from `p` to this box; 0 if `p` is inside.
  /// This is the `distance(v, q)` of the paper's directed walk.
  float SquaredDistanceTo(const Vec3& p) const {
    const float dx = std::max({min.x - p.x, 0.0f, p.x - max.x});
    const float dy = std::max({min.y - p.y, 0.0f, p.y - max.y});
    const float dz = std::max({min.z - p.z, 0.0f, p.z - max.z});
    return dx * dx + dy * dy + dz * dz;
  }
};

inline std::ostream& operator<<(std::ostream& os, const AABB& b) {
  return os << "[" << b.min << " .. " << b.max << "]";
}

}  // namespace octopus

#endif  // OCTOPUS_COMMON_AABB_H_
