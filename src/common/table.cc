// Copyright 2026 The OCTOPUS Reproduction Authors
#include "common/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace octopus {

void Table::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::AddRow(std::vector<std::string> row) {
  if (row.size() > header_.size()) row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "| " << cell << std::string(widths[c] - cell.size(), ' ') << " ";
    }
    os << "|\n";
  };
  auto emit_rule = [&]() {
    for (size_t c = 0; c < header_.size(); ++c) {
      os << "+" << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

void Table::Print() const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Count(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int pos = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it, ++pos) {
    if (pos > 0 && pos % 3 == 0) out.push_back(',');
    out.push_back(*it);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string Table::Megabytes(size_t bytes) {
  return Num(static_cast<double>(bytes) / (1024.0 * 1024.0), 2) + " MB";
}

}  // namespace octopus
