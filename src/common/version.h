// Copyright 2026 The OCTOPUS Reproduction Authors
// Single source of truth for the library/CLI version string, so tools
// can answer `--version` without inventing their own numbers.
#ifndef OCTOPUS_COMMON_VERSION_H_
#define OCTOPUS_COMMON_VERSION_H_

namespace octopus {

/// Library version, bumped per PR milestone: 0.1 batched engine,
/// 0.2 out-of-core storage, 0.3 network query service, 0.4 epoch-
/// versioned dynamic serving, 0.5 bounded epoch history with
/// disk-spilled overlays and pinned repeatable reads.
inline constexpr const char kVersionString[] = "0.5.0";

}  // namespace octopus

#endif  // OCTOPUS_COMMON_VERSION_H_
