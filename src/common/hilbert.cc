// Copyright 2026 The OCTOPUS Reproduction Authors
#include "common/hilbert.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace octopus {

HilbertCurve3D::HilbertCurve3D(int bits) : bits_(bits) {
  assert(bits >= 1 && bits <= 21);
}

namespace {

// Skilling's transform: convert between Hilbert-transposed form and axes.
// Reference: J. Skilling, "Programming the Hilbert curve", AIP 2004.
void AxesToTranspose(uint32_t* x, int b, int n) {
  uint32_t m = 1u << (b - 1);
  // Inverse undo.
  for (uint32_t q = m; q > 1; q >>= 1) {
    const uint32_t p = q - 1;
    for (int i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert
      } else {
        const uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < n; ++i) x[i] ^= x[i - 1];
  uint32_t t = 0;
  for (uint32_t q = m; q > 1; q >>= 1) {
    if (x[n - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < n; ++i) x[i] ^= t;
}

void TransposeToAxes(uint32_t* x, int b, int n) {
  const uint32_t m = 2u << (b - 1);
  // Gray decode by H ^ (H/2).
  uint32_t t = x[n - 1] >> 1;
  for (int i = n - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (uint32_t q = 2; q != m; q <<= 1) {
    const uint32_t p = q - 1;
    for (int i = n - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
}

}  // namespace

uint64_t HilbertCurve3D::Encode(uint32_t px, uint32_t py, uint32_t pz) const {
  assert(px < (1u << bits_) && py < (1u << bits_) && pz < (1u << bits_));
  uint32_t x[3] = {px, py, pz};
  AxesToTranspose(x, bits_, 3);
  // Interleave the transposed words, MSB first, into a single key.
  uint64_t d = 0;
  for (int bit = bits_ - 1; bit >= 0; --bit) {
    for (int i = 0; i < 3; ++i) {
      d = (d << 1) | ((x[i] >> bit) & 1u);
    }
  }
  return d;
}

void HilbertCurve3D::Decode(uint64_t d, uint32_t* px, uint32_t* py,
                            uint32_t* pz) const {
  uint32_t x[3] = {0, 0, 0};
  for (int bit = bits_ - 1; bit >= 0; --bit) {
    for (int i = 0; i < 3; ++i) {
      x[i] = (x[i] << 1) | static_cast<uint32_t>(
                               (d >> (3 * bit + (2 - i))) & 1u);
    }
  }
  TransposeToAxes(x, bits_, 3);
  *px = x[0];
  *py = x[1];
  *pz = x[2];
}

uint64_t HilbertCurve3D::EncodePoint(const Vec3& p, const AABB& bounds) const {
  const uint32_t cells = 1u << bits_;
  const Vec3 ext = bounds.Extent();
  auto quantize = [cells](float v, float lo, float extent) -> uint32_t {
    if (extent <= 0.0f) return 0;
    float t = (v - lo) / extent;
    t = std::clamp(t, 0.0f, 1.0f);
    uint32_t q = static_cast<uint32_t>(t * static_cast<float>(cells));
    return std::min(q, cells - 1);
  };
  return Encode(quantize(p.x, bounds.min.x, ext.x),
                quantize(p.y, bounds.min.y, ext.y),
                quantize(p.z, bounds.min.z, ext.z));
}

}  // namespace octopus
