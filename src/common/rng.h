// Copyright 2026 The OCTOPUS Reproduction Authors
// Deterministic pseudo-random generator for mesh generation, deformation and
// query workloads. Every experiment in the harness is reproducible from a
// seed; std::mt19937_64 would also do but a hand-rolled xoshiro keeps the
// header dependency-free and its output stable across standard libraries.
#ifndef OCTOPUS_COMMON_RNG_H_
#define OCTOPUS_COMMON_RNG_H_

#include <cstdint>

#include "common/aabb.h"
#include "common/vec3.h"

namespace octopus {

/// \brief xoshiro256** generator; deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x0C70B05ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n) { return NextU64() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float NextFloat(float lo, float hi) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

  /// Uniform point inside `box`.
  Vec3 NextPointIn(const AABB& box) {
    return Vec3(NextFloat(box.min.x, box.max.x),
                NextFloat(box.min.y, box.max.y),
                NextFloat(box.min.z, box.max.z));
  }

  /// Uniform direction on the unit sphere (rejection-free, marsaglia).
  Vec3 NextUnitVector() {
    float a, b, s;
    do {
      a = NextFloat(-1.0f, 1.0f);
      b = NextFloat(-1.0f, 1.0f);
      s = a * a + b * b;
    } while (s >= 1.0f || s == 0.0f);
    const float r = 2.0f * std::sqrt(1.0f - s);
    return Vec3(a * r, b * r, 1.0f - 2.0f * s);
  }

  /// Approximately normal(0, 1) via sum of uniforms (fast, tail-free; all
  /// uses are small jitter where exact tails do not matter).
  float NextGaussian() {
    float acc = 0.0f;
    for (int i = 0; i < 12; ++i) acc += static_cast<float>(NextDouble());
    return acc - 6.0f;
  }

 private:
  static uint64_t Rotl(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace octopus

#endif  // OCTOPUS_COMMON_RNG_H_
