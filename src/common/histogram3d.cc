// Copyright 2026 The OCTOPUS Reproduction Authors
#include "common/histogram3d.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace octopus {

Histogram3D::Histogram3D(int resolution) : resolution_(resolution) {
  assert(resolution >= 1);
}

void Histogram3D::Build(const std::vector<Vec3>& points, const AABB& bounds) {
  if (!bounds.Empty()) {
    bounds_ = bounds;
  } else {
    bounds_ = AABB();
    for (const Vec3& p : points) bounds_.Extend(p);
  }
  total_ = points.size();
  buckets_.assign(
      static_cast<size_t>(resolution_) * resolution_ * resolution_, 0);
  if (points.empty() || bounds_.Empty()) return;

  const Vec3 ext = bounds_.Extent();
  bucket_size_ = Vec3(ext.x / resolution_, ext.y / resolution_,
                      ext.z / resolution_);
  auto clamp_bucket = [this](float v, float lo, float size) -> int {
    if (size <= 0.0f) return 0;
    int b = static_cast<int>((v - lo) / size);
    return std::clamp(b, 0, resolution_ - 1);
  };
  for (const Vec3& p : points) {
    const int bx = clamp_bucket(p.x, bounds_.min.x, bucket_size_.x);
    const int by = clamp_bucket(p.y, bounds_.min.y, bucket_size_.y);
    const int bz = clamp_bucket(p.z, bounds_.min.z, bucket_size_.z);
    ++buckets_[BucketIndex(bx, by, bz)];
  }
}

double Histogram3D::EstimateCount(const AABB& query) const {
  if (total_ == 0 || bounds_.Empty() || !query.Intersects(bounds_)) return 0.0;

  // Range of buckets overlapped by the query on each axis.
  auto bucket_range = [this](float qlo, float qhi, float lo,
                             float size) -> std::pair<int, int> {
    if (size <= 0.0f) return {0, 0};
    int b0 = static_cast<int>(std::floor((qlo - lo) / size));
    int b1 = static_cast<int>(std::floor((qhi - lo) / size));
    return {std::clamp(b0, 0, resolution_ - 1),
            std::clamp(b1, 0, resolution_ - 1)};
  };
  const auto [x0, x1] =
      bucket_range(query.min.x, query.max.x, bounds_.min.x, bucket_size_.x);
  const auto [y0, y1] =
      bucket_range(query.min.y, query.max.y, bounds_.min.y, bucket_size_.y);
  const auto [z0, z1] =
      bucket_range(query.min.z, query.max.z, bounds_.min.z, bucket_size_.z);

  // Fraction of a bucket interval [b*size, (b+1)*size) covered by the query.
  auto overlap_frac = [](int b, float qlo, float qhi, float lo,
                         float size) -> double {
    if (size <= 0.0f) return 1.0;
    const float blo = lo + b * size;
    const float bhi = blo + size;
    const float olo = std::max(qlo, blo);
    const float ohi = std::min(qhi, bhi);
    if (ohi <= olo) return 0.0;
    return static_cast<double>(ohi - olo) / size;
  };

  double count = 0.0;
  for (int bz = z0; bz <= z1; ++bz) {
    const double fz =
        overlap_frac(bz, query.min.z, query.max.z, bounds_.min.z,
                     bucket_size_.z);
    for (int by = y0; by <= y1; ++by) {
      const double fy =
          overlap_frac(by, query.min.y, query.max.y, bounds_.min.y,
                       bucket_size_.y);
      for (int bx = x0; bx <= x1; ++bx) {
        const double fx =
            overlap_frac(bx, query.min.x, query.max.x, bounds_.min.x,
                         bucket_size_.x);
        count += buckets_[BucketIndex(bx, by, bz)] * fx * fy * fz;
      }
    }
  }
  return count;
}

double Histogram3D::EstimateSelectivity(const AABB& query) const {
  if (total_ == 0) return 0.0;
  return EstimateCount(query) / static_cast<double>(total_);
}

}  // namespace octopus
