// Copyright 2026 The OCTOPUS Reproduction Authors
#include "obs/metrics_registry.h"

#include <cinttypes>
#include <cstdio>

namespace octopus::obs {

namespace {

/// %.17g round-trips every double; trims to a compact form for the
/// common integral values.
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

void MetricsRegistry::Header(const std::string& name,
                             const std::string& help, const char* type) {
  text_.append("# HELP ").append(name).append(" ").append(help).append(
      "\n");
  text_.append("# TYPE ").append(name).append(" ").append(type).append(
      "\n");
}

void MetricsRegistry::AddCounter(const std::string& name,
                                 const std::string& help, uint64_t value) {
  Header(name, help, "counter");
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
  text_.append(name).append(buf);
}

void MetricsRegistry::AddCounterSeconds(const std::string& name,
                                        const std::string& help,
                                        double seconds) {
  Header(name, help, "counter");
  text_.append(name).append(" ").append(FormatDouble(seconds)).append("\n");
}

void MetricsRegistry::AddGauge(const std::string& name,
                               const std::string& help, double value) {
  Header(name, help, "gauge");
  text_.append(name).append(" ").append(FormatDouble(value)).append("\n");
}

void MetricsRegistry::AddNanosHistogram(
    const std::string& name, const std::string& help,
    std::span<const uint64_t> bucket_counts,
    std::span<const uint64_t> upper_bounds_nanos, double sum_seconds) {
  Header(name, help, "histogram");
  // Empty buckets are elided entirely: a zero-count bucket's cumulative
  // series line would repeat its predecessor's value, and counts never
  // decrease, so a later scrape's bucket keys are always a superset of
  // an earlier one's (tools/check_metrics.py relies on this).
  uint64_t cumulative = 0;
  const size_t n = bucket_counts.size() < upper_bounds_nanos.size()
                       ? bucket_counts.size()
                       : upper_bounds_nanos.size();
  for (size_t i = 0; i < n; ++i) {
    if (bucket_counts[i] == 0) continue;
    cumulative += bucket_counts[i];
    const double le_seconds =
        static_cast<double>(upper_bounds_nanos[i]) / 1e9;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "{le=\"%.17g\"} %" PRIu64 "\n",
                  le_seconds, cumulative);
    text_.append(name).append("_bucket").append(buf);
  }
  const uint64_t count = cumulative;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{le=\"+Inf\"} %" PRIu64 "\n", count);
  text_.append(name).append("_bucket").append(buf);
  text_.append(name).append("_sum ").append(FormatDouble(sum_seconds))
      .append("\n");
  std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", count);
  text_.append(name).append("_count").append(buf);
}

}  // namespace octopus::obs
