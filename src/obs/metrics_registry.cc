// Copyright 2026 The OCTOPUS Reproduction Authors
#include "obs/metrics_registry.h"

#include <cinttypes>
#include <cstdio>

namespace octopus::obs {

namespace {

/// %.17g round-trips every double; trims to a compact form for the
/// common integral values.
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

void MetricsRegistry::Header(const std::string& name,
                             const std::string& help, const char* type) {
  text_.append("# HELP ").append(name).append(" ").append(help).append(
      "\n");
  text_.append("# TYPE ").append(name).append(" ").append(type).append(
      "\n");
}

void MetricsRegistry::AddCounter(const std::string& name,
                                 const std::string& help, uint64_t value) {
  Header(name, help, "counter");
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
  text_.append(name).append(buf);
}

void MetricsRegistry::AddCounterSeconds(const std::string& name,
                                        const std::string& help,
                                        double seconds) {
  Header(name, help, "counter");
  text_.append(name).append(" ").append(FormatDouble(seconds)).append("\n");
}

void MetricsRegistry::AddGauge(const std::string& name,
                               const std::string& help, double value) {
  Header(name, help, "gauge");
  text_.append(name).append(" ").append(FormatDouble(value)).append("\n");
}

void MetricsRegistry::AddLog2NanosHistogram(
    const std::string& name, const std::string& help,
    std::span<const uint64_t> bucket_counts, uint64_t count,
    double sum_seconds) {
  Header(name, help, "histogram");
  // Elide the empty tail: every bucket past the last occupied one would
  // repeat the same cumulative value `+Inf` already carries.
  size_t last = bucket_counts.size();
  while (last > 0 && bucket_counts[last - 1] == 0) --last;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < last; ++i) {
    cumulative += bucket_counts[i];
    // Bucket i spans nanos in [2^i, 2^(i+1)-1] (bucket 0 from 0), so
    // its inclusive upper bound is (2^(i+1)-1) ns.
    const double le_seconds =
        static_cast<double>((uint64_t{2} << i) - 1) / 1e9;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "{le=\"%.17g\"} %" PRIu64 "\n",
                  le_seconds, cumulative);
    text_.append(name).append("_bucket").append(buf);
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{le=\"+Inf\"} %" PRIu64 "\n", count);
  text_.append(name).append("_bucket").append(buf);
  text_.append(name).append("_sum ").append(FormatDouble(sum_seconds))
      .append("\n");
  std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", count);
  text_.append(name).append("_count").append(buf);
}

}  // namespace octopus::obs
