// Copyright 2026 The OCTOPUS Reproduction Authors
#include "obs/http_endpoint.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace octopus::obs {
namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string WrapResponse(const HttpTextEndpoint::Response& response) {
  std::string out = "HTTP/1.0 ";
  out.append(std::to_string(response.status));
  out.push_back(' ');
  out.append(HttpTextEndpoint::StatusReason(response.status));
  out.append("\r\nContent-Type: " + response.content_type +
             "\r\nContent-Length: " + std::to_string(response.body.size()) +
             "\r\nConnection: close\r\n\r\n");
  out.append(response.body);
  return out;
}

HttpTextEndpoint::Response PlainText(int status, std::string body) {
  HttpTextEndpoint::Response response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

}  // namespace

HttpTextEndpoint::Response HttpTextEndpoint::NotFound() {
  return PlainText(404,
                   "try /metrics /healthz /readyz /epochs /journal\n");
}

const char* HttpTextEndpoint::StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
  }
  return "Unknown";
}

HttpTextEndpoint::~HttpTextEndpoint() { CloseAll(); }

Status HttpTextEndpoint::Listen(const std::string& bind_address,
                                uint16_t port, int backlog) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket(metrics)");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad metrics bind address: " +
                                   bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind(metrics) " + bind_address + ":" +
                 std::to_string(port));
  }
  if (listen(listen_fd_, backlog) != 0) return Errno("listen(metrics)");
  if (!SetNonBlocking(listen_fd_)) return Errno("fcntl(metrics listener)");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Errno("getsockname(metrics)");
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

void HttpTextEndpoint::CollectPollFds(std::vector<pollfd>* fds) const {
  if (listen_fd_ >= 0 && conns_.size() < kMaxConns) {
    fds->push_back({listen_fd_, POLLIN, 0});
  }
  for (const Conn& conn : conns_) {
    fds->push_back(
        {conn.fd, static_cast<short>(conn.responding ? POLLOUT : POLLIN),
         0});
  }
}

bool HttpTextEndpoint::OwnsFd(int fd) const {
  if (fd < 0) return false;
  if (fd == listen_fd_) return true;
  return std::any_of(conns_.begin(), conns_.end(),
                     [fd](const Conn& c) { return c.fd == fd; });
}

void HttpTextEndpoint::OnReady(int fd, short revents,
                               const Handler& handler) {
  if (fd == listen_fd_) {
    AcceptNew();
    return;
  }
  auto it = std::find_if(conns_.begin(), conns_.end(),
                         [fd](const Conn& c) { return c.fd == fd; });
  if (it == conns_.end()) return;
  Advance(&*it, revents, handler);
  if (it->fd < 0) conns_.erase(it);
}

void HttpTextEndpoint::AcceptNew() {
  while (conns_.size() < kMaxConns) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a per-connection failure: poll again later
    }
    if (!SetNonBlocking(fd)) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn conn;
    conn.fd = fd;
    conns_.push_back(std::move(conn));
  }
}

void HttpTextEndpoint::Advance(Conn* conn, short revents,
                               const Handler& handler) {
  if ((revents & (POLLERR | POLLNVAL)) != 0 ||
      ((revents & POLLHUP) != 0 && !conn->responding)) {
    close(conn->fd);
    conn->fd = -1;
    return;
  }
  if (!conn->responding && (revents & POLLIN) != 0) {
    char buf[2048];
    while (true) {
      const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->in.append(buf, static_cast<size_t>(n));
        if (conn->in.size() > kMaxRequestBytes) {
          conn->out = WrapResponse(PlainText(400, "request too large\n"));
          conn->responding = true;
          break;
        }
        if (conn->in.find("\r\n\r\n") != std::string::npos) {
          BuildResponse(conn, handler);
          break;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      // EOF before a complete request: nothing to answer.
      close(conn->fd);
      conn->fd = -1;
      return;
    }
  }
  while (conn->responding && conn->out_offset < conn->out.size()) {
    const ssize_t n =
        send(conn->fd, conn->out.data() + conn->out_offset,
             conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    break;  // peer went away mid-response
  }
  if (conn->responding) {
    close(conn->fd);
    conn->fd = -1;
  }
}

HttpTextEndpoint::Response HttpTextEndpoint::RouteRequestHead(
    const std::string& head, const Handler& handler) {
  // Request line: METHOD SP PATH SP VERSION.
  const size_t line_end = head.find("\r\n");
  const std::string line = head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return PlainText(400, "malformed request line\n");
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  if (method != "GET") {
    return PlainText(405, "GET only\n");
  }
  return handler(path);
}

void HttpTextEndpoint::BuildResponse(Conn* conn, const Handler& handler) {
  conn->responding = true;
  conn->out = WrapResponse(RouteRequestHead(conn->in, handler));
}

void HttpTextEndpoint::CloseAll() {
  for (Conn& conn : conns_) {
    if (conn.fd >= 0) close(conn.fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace octopus::obs
