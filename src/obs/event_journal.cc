// Copyright 2026 The OCTOPUS Reproduction Authors
#include "obs/event_journal.h"

#include <ctime>

namespace octopus::obs {
namespace {

int64_t WallNanos() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kStepApplied: return "step_applied";
    case EventKind::kEpochPublished: return "epoch_published";
    case EventKind::kEpochSpilled: return "epoch_spilled";
    case EventKind::kEpochReloaded: return "epoch_reloaded";
    case EventKind::kEpochEvicted: return "epoch_evicted";
    case EventKind::kEpochPinned: return "epoch_pinned";
    case EventKind::kEpochUnpinned: return "epoch_unpinned";
    case EventKind::kSessionOpened: return "session_opened";
    case EventKind::kSessionClosed: return "session_closed";
    case EventKind::kOverloadRejected: return "overload_rejected";
    case EventKind::kDrainBegan: return "drain_began";
    case EventKind::kDrainEnded: return "drain_ended";
  }
  return "unknown";
}

std::string JournalEventJson(const JournalEvent& event) {
  std::string out = "{\"seq\":";
  out += std::to_string(event.seq);
  out += ",\"unix_nanos\":";
  out += std::to_string(event.unix_nanos);
  out += ",\"kind\":\"";
  out += EventKindName(event.kind);
  out += "\",\"epoch\":";
  out += std::to_string(event.epoch);
  out += ",\"session\":";
  out += std::to_string(event.session);
  out += ",\"a\":";
  out += std::to_string(event.a);
  out += ",\"b\":";
  out += std::to_string(event.b);
  out += "}";
  return out;
}

uint64_t EventJournal::total_emitted() const {
  common::MutexLock lock(mu_);
  return total_;
}

size_t EventJournal::size() const {
  common::MutexLock lock(mu_);
  return ring_.size();
}

void EventJournal::EmitSlow(EventKind kind, uint64_t epoch, uint64_t session,
                            uint64_t a, uint64_t b) {
  JournalEvent event;
  event.unix_nanos = WallNanos();
  event.kind = kind;
  event.epoch = epoch;
  event.session = session;
  event.a = a;
  event.b = b;
  common::MutexLock lock(mu_);
  event.seq = ++total_;
  if (capacity_ != 0) {
    if (ring_.size() < capacity_) {
      ring_.push_back(event);
    } else {
      ring_[next_] = event;
      next_ = (next_ + 1) % capacity_;
    }
  }
  if (sink_ != nullptr) {
    const std::string line = JournalEventJson(event);
    std::fwrite(line.data(), 1, line.size(), sink_);
    std::fputc('\n', sink_);
    std::fflush(sink_);
  }
}

void EventJournal::Snapshot(std::vector<JournalEvent>* out) const {
  out->clear();
  common::MutexLock lock(mu_);
  out->reserve(ring_.size());
  // Oldest first: the overwrite cursor points at the oldest slot once
  // the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out->push_back(ring_[(next_ + i) % ring_.size()]);
  }
}

std::string EventJournal::RenderJson(size_t max_events) const {
  std::vector<JournalEvent> events;
  Snapshot(&events);
  uint64_t total = 0;
  {
    common::MutexLock lock(mu_);
    total = total_;
  }
  size_t first = 0;
  if (max_events != 0 && events.size() > max_events) {
    first = events.size() - max_events;  // keep the newest
  }
  std::string out = "{\"total\":";
  out += std::to_string(total);
  out += ",\"capacity\":";
  out += std::to_string(capacity_);
  out += ",\"events\":[";
  for (size_t i = first; i < events.size(); ++i) {
    if (i != first) out += ",";
    out += JournalEventJson(events[i]);
  }
  out += "]}";
  return out;
}

}  // namespace octopus::obs
