// Copyright 2026 The OCTOPUS Reproduction Authors
// Flight recorder: a fixed-size ring of per-request trace records kept
// by the query server. One record per executed request (the unit that
// has an arrival time and a response frame) capturing where its wall
// clock went — queue wait under the coalescing window, the engine's
// per-phase split (probe / walk / crawl / merge), serialization — plus
// the epoch it ran against and its page/lease economy.
//
// Thread model since the multi-threaded front end: the serialization
// thread is the sole `Record` / `ReserveId` caller (which keeps trace
// ids sequential with result delivery), while TRACE_DUMP handlers on
// I/O threads call `Snapshot`/`size` concurrently — the ring is guarded
// by a mutex and `total_recorded` is an atomic. The ring is bounded;
// once full, each new record overwrites the oldest.
//
// Tracing is zero-cost when disabled, twice over:
//   * compile time: building with -DOCTOPUS_TRACING_ENABLED=0 turns
//     `Record` into an inlined constant-false branch (no ring, no
//     stores);
//   * run time: a ring of capacity 0 (serve --trace-ring 0) makes
//     `enabled()` false and `Record` a single predictable branch —
//     this is the knob bench_server prices (see check_perf_smoke.py).
#ifndef OCTOPUS_OBS_TRACE_H_
#define OCTOPUS_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

#ifndef OCTOPUS_TRACING_ENABLED
#define OCTOPUS_TRACING_ENABLED 1
#endif

namespace octopus::obs {

/// \brief One executed request's timing breakdown. All nanosecond
/// fields are on the server's monotonic clock; phase nanos are summed
/// over the coalesced batch the request rode in (the engine executes
/// whole batches — see `BatchStatsWire` for the shared-cost caveat).
struct QueryTraceRecord {
  uint64_t trace_id = 0;    ///< monotone 1-based sequence number
  uint64_t session_id = 0;
  uint64_t request_id = 0;
  uint64_t epoch = 0;       ///< epoch the batch executed against
  uint32_t epoch_step = 0;  ///< simulation step of that epoch
  uint32_t queries = 0;     ///< queries in THIS request
  uint32_t batch_queries = 0;   ///< queries in the coalesced batch
  uint32_t batch_requests = 0;  ///< requests coalesced into the batch
  int64_t arrival_nanos = 0;    ///< request frame fully parsed
  int64_t queue_wait_nanos = 0;  ///< arrival -> batch dispatch
  int64_t probe_nanos = 0;       ///< surface-probe phase (batch)
  int64_t walk_nanos = 0;        ///< directed-walk phase (batch)
  int64_t crawl_nanos = 0;       ///< crawl phase (batch)
  int64_t merge_nanos = 0;       ///< batch-end stats/context merge
  int64_t serialize_nanos = 0;   ///< RESULT frame encoding
  int64_t total_nanos = 0;       ///< arrival -> response enqueued
  uint64_t page_accesses = 0;    ///< priced page accesses (batch)
  uint64_t lease_hits = 0;       ///< free re-reads via held leases
  uint64_t result_vertices = 0;  ///< vertices returned to THIS request

  friend bool operator==(const QueryTraceRecord&,
                         const QueryTraceRecord&) = default;
};

/// \brief Bounded single-writer ring of `QueryTraceRecord`s.
class FlightRecorder {
 public:
  /// `capacity` slots; 0 disables recording entirely.
  explicit FlightRecorder(size_t capacity) : capacity_(capacity) {}

  bool enabled() const {
#if OCTOPUS_TRACING_ENABLED
    return capacity_ != 0;
#else
    return false;
#endif
  }

  /// Appends a record (overwriting the oldest once full), assigning and
  /// returning its trace id. Returns 0 without touching anything when
  /// tracing is disabled.
  uint64_t Record(const QueryTraceRecord& record) {
#if OCTOPUS_TRACING_ENABLED
    if (capacity_ == 0) return 0;
    return RecordSlow(record);
#else
    (void)record;
    return 0;
#endif
  }

  /// The trace id the NEXT `Record` call will assign (0 when tracing is
  /// disabled). Lets a caller put the id on the wire before the record
  /// is complete — the server serializes a RESULT (which must carry the
  /// id) before it knows the serialization cost the record captures.
  /// Valid only until someone else records, which never happens between
  /// a Reserve and its Record: the serialization thread is the only
  /// caller of either.
  uint64_t ReserveId() const {
#if OCTOPUS_TRACING_ENABLED
    return capacity_ == 0 ? 0
                          : total_.load(std::memory_order_relaxed) + 1;
#else
    return 0;
#endif
  }

  size_t capacity() const { return capacity_; }
  /// Lifetime records written (>= size of the ring once wrapped).
  uint64_t total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }
  size_t size() const;

  /// Copies the ring into `*out`, oldest record first.
  void Snapshot(std::vector<QueryTraceRecord>* out) const;

 private:
  uint64_t RecordSlow(const QueryTraceRecord& record);

  size_t capacity_;  // const after construction
  mutable common::Mutex mu_;
  /// Grown lazily up to capacity_.
  std::vector<QueryTraceRecord> ring_ GUARDED_BY(mu_);
  size_t next_ GUARDED_BY(mu_) = 0;  // overwrite cursor once full
  std::atomic<uint64_t> total_{0};
};

/// Renders records as Chrome trace-event JSON (one "request" span per
/// record on its session's track, with queue/probe/walk/crawl/merge/
/// serialize child spans laid end to end). Load via chrome://tracing,
/// Perfetto, or speedscope.
std::string ChromeTraceJson(const std::vector<QueryTraceRecord>& records);

/// \brief One client-side remote call, as timed by `RemoteClient`: the
/// wall the caller saw, split into send (encode + write), wait (write
/// complete -> first response byte) and receive (first byte -> frame
/// complete). `server_trace_id` is the id echoed in the RESULT's
/// batch-stats block (v6), 0 when the server ran untraced — the join
/// key against a later TRACE_DUMP.
struct ClientCallSpan {
  uint64_t span_id = 0;    ///< monotone 1-based, per client connection
  uint64_t request_id = 0;
  uint64_t server_trace_id = 0;
  int64_t start_unix_nanos = 0;  ///< wall clock at call entry
  int64_t send_nanos = 0;
  int64_t wait_nanos = 0;
  int64_t recv_nanos = 0;
  uint64_t queries = 0;
  uint64_t epoch = 0;  ///< epoch requested (0 = current)

  friend bool operator==(const ClientCallSpan&,
                         const ClientCallSpan&) = default;
};

/// Renders one span as a single-line JSON object (no trailing newline)
/// — the `--span-log` JSONL line format.
std::string ClientCallSpanJson(const ClientCallSpan& span);

/// Parses a `ClientCallSpanJson` line back (flat object, numeric
/// fields only; unknown keys ignored). Returns false on anything that
/// does not carry a span_id — blank lines and comments included — so a
/// reader can skip junk without dying.
bool ParseClientCallSpanJson(const std::string& line, ClientCallSpan* out);

/// Renders one merged Chrome trace from both sides of the wire: client
/// call spans (pid 1, with send/wait/receive children) on the client's
/// wall clock, and each server record whose `trace_id` matches a span's
/// `server_trace_id` (pid 2, with the usual phase children) placed
/// inside that span's wait window, centered under a symmetric-network
/// assumption — the gap on each side of the server span is the one-way
/// wire time. Server records matching no client span are omitted (they
/// belong to other clients); timestamps are rebased so the first client
/// span starts at 0.
std::string MergedChromeTraceJson(
    const std::vector<QueryTraceRecord>& server_records,
    const std::vector<ClientCallSpan>& client_spans);

}  // namespace octopus::obs

#endif  // OCTOPUS_OBS_TRACE_H_
