// Copyright 2026 The OCTOPUS Reproduction Authors
#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace octopus::obs {

uint64_t FlightRecorder::RecordSlow(const QueryTraceRecord& record) {
  QueryTraceRecord stamped = record;
  stamped.trace_id = ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(stamped);
  } else {
    ring_[next_] = stamped;
    next_ = (next_ + 1) % capacity_;
  }
  return stamped.trace_id;
}

void FlightRecorder::Snapshot(std::vector<QueryTraceRecord>* out) const {
  out->clear();
  out->reserve(ring_.size());
  // Once wrapped, `next_` points at the oldest record.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out->push_back(ring_[(next_ + i) % ring_.size()]);
  }
}

namespace {

/// One complete ("X") trace event. Chrome's timestamps are microseconds;
/// fractional values keep nanosecond resolution.
void AppendEvent(std::string* out, bool* first, const char* name,
                 uint64_t tid, int64_t ts_nanos, int64_t dur_nanos,
                 const std::string& args_json) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,"
                "\"tid\":%" PRIu64 ",\"ts\":%.3f,\"dur\":%.3f",
                *first ? "" : ",\n", name, tid,
                static_cast<double>(ts_nanos) / 1e3,
                static_cast<double>(dur_nanos) / 1e3);
  *first = false;
  out->append(buf);
  if (!args_json.empty()) {
    out->append(",\"args\":");
    out->append(args_json);
  }
  out->push_back('}');
}

}  // namespace

std::string ChromeTraceJson(const std::vector<QueryTraceRecord>& records) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const QueryTraceRecord& r : records) {
    char args[256];
    std::snprintf(args, sizeof(args),
                  "{\"trace_id\":%" PRIu64 ",\"request_id\":%" PRIu64
                  ",\"epoch\":%" PRIu64 ",\"step\":%u,\"queries\":%u,"
                  "\"batch_queries\":%u,\"batch_requests\":%u,"
                  "\"page_accesses\":%" PRIu64 ",\"lease_hits\":%" PRIu64
                  ",\"result_vertices\":%" PRIu64 "}",
                  r.trace_id, r.request_id, r.epoch, r.epoch_step,
                  r.queries, r.batch_queries, r.batch_requests,
                  r.page_accesses, r.lease_hits, r.result_vertices);
    AppendEvent(&out, &first, "request", r.session_id, r.arrival_nanos,
                r.total_nanos, args);
    // Children laid end to end under the request span: the queue wait,
    // then the engine phases (batch-scoped — coalesced requests show
    // identical engine spans), then serialization.
    int64_t cursor = r.arrival_nanos;
    const struct {
      const char* name;
      int64_t dur;
    } phases[] = {
        {"queue", r.queue_wait_nanos}, {"probe", r.probe_nanos},
        {"walk", r.walk_nanos},        {"crawl", r.crawl_nanos},
        {"merge", r.merge_nanos},      {"serialize", r.serialize_nanos},
    };
    for (const auto& phase : phases) {
      if (phase.dur > 0) {
        AppendEvent(&out, &first, phase.name, r.session_id, cursor,
                    phase.dur, "");
      }
      cursor += phase.dur;
    }
  }
  out.append("\n]}\n");
  return out;
}

}  // namespace octopus::obs
