// Copyright 2026 The OCTOPUS Reproduction Authors
#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace octopus::obs {

uint64_t FlightRecorder::RecordSlow(const QueryTraceRecord& record) {
  QueryTraceRecord stamped = record;
  stamped.trace_id = total_.fetch_add(1, std::memory_order_relaxed) + 1;
  common::MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(stamped);
  } else {
    ring_[next_] = stamped;
    next_ = (next_ + 1) % capacity_;
  }
  return stamped.trace_id;
}

size_t FlightRecorder::size() const {
  common::MutexLock lock(mu_);
  return ring_.size();
}

void FlightRecorder::Snapshot(std::vector<QueryTraceRecord>* out) const {
  common::MutexLock lock(mu_);
  out->clear();
  out->reserve(ring_.size());
  // Once wrapped, `next_` points at the oldest record.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out->push_back(ring_[(next_ + i) % ring_.size()]);
  }
}

namespace {

/// One complete ("X") trace event. Chrome's timestamps are microseconds;
/// fractional values keep nanosecond resolution.
void AppendEventPid(std::string* out, bool* first, const char* name,
                    uint64_t pid, uint64_t tid, int64_t ts_nanos,
                    int64_t dur_nanos, const std::string& args_json) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%" PRIu64
                ",\"tid\":%" PRIu64 ",\"ts\":%.3f,\"dur\":%.3f",
                *first ? "" : ",\n", name, pid, tid,
                static_cast<double>(ts_nanos) / 1e3,
                static_cast<double>(dur_nanos) / 1e3);
  *first = false;
  out->append(buf);
  if (!args_json.empty()) {
    out->append(",\"args\":");
    out->append(args_json);
  }
  out->push_back('}');
}

void AppendEvent(std::string* out, bool* first, const char* name,
                 uint64_t tid, int64_t ts_nanos, int64_t dur_nanos,
                 const std::string& args_json) {
  AppendEventPid(out, first, name, 1, tid, ts_nanos, dur_nanos, args_json);
}

/// Chrome "M" metadata event naming a pid's track.
void AppendProcessName(std::string* out, bool* first, uint64_t pid,
                       const char* name) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%" PRIu64
                ",\"args\":{\"name\":\"%s\"}}",
                *first ? "" : ",\n", pid, name);
  *first = false;
  out->append(buf);
}

/// Lays the server record's phase children end to end from `start` on
/// (pid, record.session_id), eliding zero-duration phases.
void AppendServerPhases(std::string* out, bool* first, uint64_t pid,
                        const QueryTraceRecord& r, int64_t start) {
  int64_t cursor = start;
  const struct {
    const char* name;
    int64_t dur;
  } phases[] = {
      {"queue", r.queue_wait_nanos}, {"probe", r.probe_nanos},
      {"walk", r.walk_nanos},        {"crawl", r.crawl_nanos},
      {"merge", r.merge_nanos},      {"serialize", r.serialize_nanos},
  };
  for (const auto& phase : phases) {
    if (phase.dur > 0) {
      AppendEventPid(out, first, phase.name, pid, r.session_id, cursor,
                     phase.dur, "");
    }
    cursor += phase.dur;
  }
}

std::string ServerRequestArgs(const QueryTraceRecord& r) {
  char args[256];
  std::snprintf(args, sizeof(args),
                "{\"trace_id\":%" PRIu64 ",\"request_id\":%" PRIu64
                ",\"epoch\":%" PRIu64 ",\"step\":%u,\"queries\":%u,"
                "\"batch_queries\":%u,\"batch_requests\":%u,"
                "\"page_accesses\":%" PRIu64 ",\"lease_hits\":%" PRIu64
                ",\"result_vertices\":%" PRIu64 "}",
                r.trace_id, r.request_id, r.epoch, r.epoch_step, r.queries,
                r.batch_queries, r.batch_requests, r.page_accesses,
                r.lease_hits, r.result_vertices);
  return args;
}

}  // namespace

std::string ChromeTraceJson(const std::vector<QueryTraceRecord>& records) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const QueryTraceRecord& r : records) {
    AppendEvent(&out, &first, "request", r.session_id, r.arrival_nanos,
                r.total_nanos, ServerRequestArgs(r));
    // Children laid end to end under the request span: the queue wait,
    // then the engine phases (batch-scoped — coalesced requests show
    // identical engine spans), then serialization.
    AppendServerPhases(&out, &first, 1, r, r.arrival_nanos);
  }
  out.append("\n]}\n");
  return out;
}

std::string ClientCallSpanJson(const ClientCallSpan& span) {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "{\"span_id\":%" PRIu64 ",\"request_id\":%" PRIu64
                ",\"server_trace_id\":%" PRIu64
                ",\"start_unix_nanos\":%" PRIi64 ",\"send_nanos\":%" PRIi64
                ",\"wait_nanos\":%" PRIi64 ",\"recv_nanos\":%" PRIi64
                ",\"queries\":%" PRIu64 ",\"epoch\":%" PRIu64 "}",
                span.span_id, span.request_id, span.server_trace_id,
                span.start_unix_nanos, span.send_nanos, span.wait_nanos,
                span.recv_nanos, span.queries, span.epoch);
  return buf;
}

namespace {

/// Finds `"key":` in `line` and parses the number after it. Returns
/// `fallback` when the key is absent — optional fields stay optional.
int64_t JsonField(const std::string& line, const char* key,
                  int64_t fallback) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return fallback;
  return std::strtoll(line.c_str() + at + needle.size(), nullptr, 10);
}

}  // namespace

bool ParseClientCallSpanJson(const std::string& line, ClientCallSpan* out) {
  const int64_t span_id = JsonField(line, "span_id", 0);
  if (span_id <= 0) return false;
  out->span_id = static_cast<uint64_t>(span_id);
  out->request_id =
      static_cast<uint64_t>(JsonField(line, "request_id", 0));
  out->server_trace_id =
      static_cast<uint64_t>(JsonField(line, "server_trace_id", 0));
  out->start_unix_nanos = JsonField(line, "start_unix_nanos", 0);
  out->send_nanos = JsonField(line, "send_nanos", 0);
  out->wait_nanos = JsonField(line, "wait_nanos", 0);
  out->recv_nanos = JsonField(line, "recv_nanos", 0);
  out->queries = static_cast<uint64_t>(JsonField(line, "queries", 0));
  out->epoch = static_cast<uint64_t>(JsonField(line, "epoch", 0));
  return true;
}

std::string MergedChromeTraceJson(
    const std::vector<QueryTraceRecord>& server_records,
    const std::vector<ClientCallSpan>& client_spans) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  AppendProcessName(&out, &first, 1, "client");
  AppendProcessName(&out, &first, 2, "server");

  // Rebase to the earliest client call so timestamps stay readable.
  int64_t base = 0;
  for (const ClientCallSpan& span : client_spans) {
    if (base == 0 || span.start_unix_nanos < base) {
      base = span.start_unix_nanos;
    }
  }

  for (const ClientCallSpan& span : client_spans) {
    const int64_t ts = span.start_unix_nanos - base;
    const int64_t total = span.send_nanos + span.wait_nanos + span.recv_nanos;

    // The matching server record, if the dump still holds it.
    const QueryTraceRecord* rec = nullptr;
    if (span.server_trace_id != 0) {
      for (const QueryTraceRecord& r : server_records) {
        if (r.trace_id == span.server_trace_id) {
          rec = &r;
          break;
        }
      }
    }
    // Wire time: what the client waited beyond the server's own wall.
    const int64_t slack =
        rec == nullptr ? 0 : span.wait_nanos - rec->total_nanos;

    char args[256];
    std::snprintf(args, sizeof(args),
                  "{\"span_id\":%" PRIu64 ",\"request_id\":%" PRIu64
                  ",\"server_trace_id\":%" PRIu64 ",\"queries\":%" PRIu64
                  ",\"epoch\":%" PRIu64 ",\"wire_nanos\":%" PRIi64 "}",
                  span.span_id, span.request_id, span.server_trace_id,
                  span.queries, span.epoch, slack > 0 ? slack : 0);
    AppendEventPid(&out, &first, "call", 1, 1, ts, total, args);
    int64_t cursor = ts;
    const struct {
      const char* name;
      int64_t dur;
    } phases[] = {
        {"send", span.send_nanos},
        {"wait", span.wait_nanos},
        {"receive", span.recv_nanos},
    };
    for (const auto& phase : phases) {
      if (phase.dur > 0) {
        AppendEventPid(&out, &first, phase.name, 1, 1, cursor, phase.dur,
                       "");
      }
      cursor += phase.dur;
    }

    if (rec != nullptr) {
      // Center the server's wall inside the wait window: the symmetric
      // leftover on each side is the one-way wire time. Clock skew can
      // make the server span longer than the wait — clamp to its start.
      const int64_t wait_start = ts + span.send_nanos;
      const int64_t server_start =
          wait_start + (slack > 0 ? slack / 2 : 0);
      AppendEventPid(&out, &first, "request", 2, rec->session_id,
                     server_start, rec->total_nanos,
                     ServerRequestArgs(*rec));
      AppendServerPhases(&out, &first, 2, *rec, server_start);
    }
  }
  out.append("\n]}\n");
  return out;
}

}  // namespace octopus::obs
