// Copyright 2026 The OCTOPUS Reproduction Authors
// A deliberately tiny HTTP/1.0 GET responder for text/JSON introspection
// endpoints (/metrics, /healthz, /readyz, /epochs, /journal), designed
// to live INSIDE an existing poll loop rather than own a thread: the
// loop asks it for pollfds each round and hands back the ready ones.
// Requests are routed by path through a handler that picks the status,
// Content-Type and body per route. Non-blocking throughout, bounded
// per-connection buffers, `Connection: close` semantics — a scraper,
// not a web server.
#ifndef OCTOPUS_OBS_HTTP_ENDPOINT_H_
#define OCTOPUS_OBS_HTTP_ENDPOINT_H_

#include <poll.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace octopus::obs {

/// \brief Poll-loop-embedded HTTP/1.0 GET handler.
///
/// Single-threaded by construction: every method runs on the owning
/// loop's thread. The render callback runs synchronously inside
/// `OnReady`, so it may freely read loop-thread state (the single-writer
/// metrics) without locks.
class HttpTextEndpoint {
 public:
  /// \brief One route's answer: status + media type + body. The
  /// endpoint writes the status line and headers; handlers never
  /// hand-assemble HTTP.
  struct Response {
    int status = 200;  ///< 200/404/405/503/... (see `StatusReason`)
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  /// `handler(path)` returns the full response for a GET of `path`
  /// (query string already stripped). Unknown paths should answer
  /// `NotFound()`. Non-GET methods never reach the handler (405).
  using Handler = std::function<Response(const std::string& path)>;

  /// Canonical 404 for paths the handler does not route.
  static Response NotFound();
  /// The reason phrase for a status code ("OK", "Not Found", ...).
  static const char* StatusReason(int status);

  /// A request head is one short line + a few headers; anything larger
  /// is answered 400 and closed.
  static constexpr size_t kMaxRequestBytes = 8 * 1024;
  /// Concurrent scraper connections; a poll-loop guest stays tiny. At
  /// the cap the listener is simply not polled — excess connections
  /// wait in the accept queue until a slot frees.
  static constexpr size_t kMaxConns = 8;

  HttpTextEndpoint() = default;
  ~HttpTextEndpoint();

  HttpTextEndpoint(const HttpTextEndpoint&) = delete;
  HttpTextEndpoint& operator=(const HttpTextEndpoint&) = delete;

  /// Binds and listens (port 0 = ephemeral; see `port()`).
  Status Listen(const std::string& bind_address, uint16_t port,
                int backlog = 8);

  bool listening() const { return listen_fd_ >= 0; }
  uint16_t port() const { return port_; }

  /// Appends the listener and every live connection to `fds` with the
  /// events each currently wants.
  void CollectPollFds(std::vector<pollfd>* fds) const;

  /// True if `fd` is the listener or one of this endpoint's connections.
  bool OwnsFd(int fd) const;

  /// Advances whichever connection (or the listener) `fd` is. Call for
  /// each ready fd this endpoint owns.
  void OnReady(int fd, short revents, const Handler& handler);

  /// Closes the listener and every connection.
  void CloseAll();

  /// Pure request-head routing: parses the first line of `head`
  /// (METHOD SP PATH SP VERSION), strips the query string, and returns
  /// the response — 400 on a malformed request line, 405 on non-GET,
  /// otherwise whatever `handler(path)` answers. Factored out of the
  /// socket loop so tests and fuzzers can drive the parser with
  /// arbitrary bytes, no connection required.
  static Response RouteRequestHead(const std::string& head,
                                   const Handler& handler);

 private:
  struct Conn {
    int fd = -1;
    std::string in;       ///< request bytes until the blank line
    std::string out;      ///< full response once the request parsed
    size_t out_offset = 0;
    bool responding = false;  ///< request parsed, writing the response
  };

  void AcceptNew();
  void Advance(Conn* conn, short revents, const Handler& handler);
  /// Parses the buffered request head and builds `conn->out`.
  void BuildResponse(Conn* conn, const Handler& handler);

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<Conn> conns_;
};

}  // namespace octopus::obs

#endif  // OCTOPUS_OBS_HTTP_ENDPOINT_H_
