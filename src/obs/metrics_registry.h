// Copyright 2026 The OCTOPUS Reproduction Authors
// Typed metric registry with a Prometheus text-exposition writer
// (format 0.0.4: `# HELP` / `# TYPE` comment pairs, one sample line per
// series, histograms as cumulative `_bucket{le="..."}` series plus
// `_sum`/`_count`).
//
// Usage model is build-render-discard: the scrape handler constructs a
// fresh registry, adds every metric from the live single-writer
// sources (`ServerMetrics`, `EpochStore`, `BufferManager`, ...), and
// renders it. No retained state means no second writer and no staleness
// — the scrape sees exactly the counters of the moment it was served,
// the same values an OCTP STATS frame would carry (parity-tested in
// tests/test_obs.cc).
#ifndef OCTOPUS_OBS_METRICS_REGISTRY_H_
#define OCTOPUS_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <span>
#include <string>

namespace octopus::obs {

/// \brief Append-only collection of typed metrics rendering to
/// Prometheus text exposition. Metric names must match
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` (validated by tools/check_metrics.py in
/// CI; the registry itself trusts its callers).
class MetricsRegistry {
 public:
  /// Monotone counter. By convention the name ends in `_total`.
  void AddCounter(const std::string& name, const std::string& help,
                  uint64_t value);

  /// Monotone time counter in seconds (Prometheus base unit). By
  /// convention the name ends in `_seconds_total`.
  void AddCounterSeconds(const std::string& name, const std::string& help,
                         double seconds);

  /// Point-in-time value.
  void AddGauge(const std::string& name, const std::string& help,
                double value);

  /// Histogram over explicit nanosecond buckets: `bucket_counts[i]`
  /// holds samples whose value is <= `upper_bounds_nanos[i]` and above
  /// the previous bound (the repo's `server::LatencyHistogram` supplies
  /// its log-linear bounds via `BucketUpperBounds()`). Rendered as
  /// cumulative `_bucket` series with `le` in seconds, empty buckets
  /// elided (a zero-count bucket repeats the cumulative value of its
  /// predecessor, so eliding it loses nothing and keeps the ~1000-line
  /// worst case off the scrape), plus the implicit `+Inf` bucket,
  /// `_sum` and `_count` (both totals derived from `bucket_counts`).
  void AddNanosHistogram(const std::string& name, const std::string& help,
                         std::span<const uint64_t> bucket_counts,
                         std::span<const uint64_t> upper_bounds_nanos,
                         double sum_seconds);

  /// The accumulated exposition text.
  const std::string& ExpositionText() const { return text_; }

 private:
  void Header(const std::string& name, const std::string& help,
              const char* type);

  std::string text_;
};

}  // namespace octopus::obs

#endif  // OCTOPUS_OBS_METRICS_REGISTRY_H_
