// Copyright 2026 The OCTOPUS Reproduction Authors
// Lifecycle event journal: a bounded ring of structured events marking
// the moments an operator asks about after the fact — a step applied,
// an epoch published / spilled / reloaded / evicted, a pin taken or
// released, a session opened or closed, an admission-control rejection,
// a drain beginning and ending. Emitters are `VersionedBackend` (step),
// `EpochStore` (epoch lifecycle) and `QueryServer` (sessions, overload,
// drain); consumers are the `/journal` HTTP endpoint, two `/metrics`
// counters, and an optional JSONL sink for tailing.
//
// Unlike the single-writer `FlightRecorder`, the journal IS internally
// synchronized: epoch publication/spill/eviction events fire on the
// stepper thread while session/pin/overload events fire on the event
// loop. Emission is one short critical section (plus the sink write
// when a sink is configured). Zero-cost when disabled: with no
// capacity and no sink, `Emit` is a single predictable branch.
#ifndef OCTOPUS_OBS_EVENT_JOURNAL_H_
#define OCTOPUS_OBS_EVENT_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace octopus::obs {

/// \brief What happened. Wire-stable names via `EventKindName`.
enum class EventKind : uint8_t {
  kStepApplied = 1,    ///< a=step applied, b=pages rewritten (paged)
  kEpochPublished,     ///< epoch=id, a=step, b=resident bytes after
  kEpochSpilled,       ///< epoch=id, a=pages written, b=bytes written
  kEpochReloaded,      ///< epoch=id (spilled epoch pinned back resident)
  kEpochEvicted,       ///< epoch=id, a=step, b=1 if it was spilled
  kEpochPinned,        ///< epoch=id, session=pinner, a=session pin count
  kEpochUnpinned,      ///< epoch=id, session=unpinner, a=session pin count
  kSessionOpened,      ///< session=id, a=active connections after
  kSessionClosed,      ///< session=id, a=active after, b=pins released
  kOverloadRejected,   ///< session=id, a=request id, b=queries rejected
  kDrainBegan,         ///< a=live sessions at drain start
  kDrainEnded,         ///< a=sessions remaining (0 = clean), b=forced
};

/// Stable snake_case name for `kind` ("step_applied", ...); "unknown"
/// for out-of-range values (a journal never crashes its reader).
const char* EventKindName(EventKind kind);

/// \brief One journal entry. `seq` is a monotone 1-based id that never
/// changes as the ring wraps, so "last N of M" is exact; `unix_nanos`
/// is wall-clock (CLOCK_REALTIME) so lines correlate with external
/// logs. The meaning of `a`/`b` is per-kind (see `EventKind`).
struct JournalEvent {
  uint64_t seq = 0;
  int64_t unix_nanos = 0;
  EventKind kind = EventKind::kStepApplied;
  uint64_t epoch = 0;    ///< epoch id, or 0 when not epoch-scoped
  uint64_t session = 0;  ///< session id, or 0 when not session-scoped
  uint64_t a = 0;
  uint64_t b = 0;

  friend bool operator==(const JournalEvent&, const JournalEvent&) = default;
};

/// Renders one event as a single-line JSON object (no trailing
/// newline): {"seq":..,"unix_nanos":..,"kind":"..","epoch":..,
/// "session":..,"a":..,"b":..}.
std::string JournalEventJson(const JournalEvent& event);

/// \brief Bounded, internally synchronized ring of `JournalEvent`s with
/// an optional line-per-event JSONL sink.
class EventJournal {
 public:
  /// `capacity` ring slots (0 = no ring). `sink`, when non-null, gets
  /// one JSONL line per event (unbuffered beyond stdio; the caller
  /// keeps the FILE* alive and closes it after the journal falls
  /// silent). Either alone enables the journal.
  explicit EventJournal(size_t capacity = 0, std::FILE* sink = nullptr)
      : capacity_(capacity), sink_(sink) {}

  /// True when events are being kept or sunk. Constant after
  /// construction, so emitters may check it without the lock.
  bool enabled() const { return capacity_ != 0 || sink_ != nullptr; }

  /// Records one event, stamping `seq` and the wall clock. A single
  /// predictable branch when disabled. Safe from any thread.
  void Emit(EventKind kind, uint64_t epoch = 0, uint64_t session = 0,
            uint64_t a = 0, uint64_t b = 0) {
    if (!enabled()) return;
    EmitSlow(kind, epoch, session, a, b);
  }

  size_t capacity() const { return capacity_; }
  /// Lifetime events emitted (>= ring size once wrapped).
  uint64_t total_emitted() const;
  /// Events currently held in the ring.
  size_t size() const;

  /// Copies the ring into `*out`, oldest event first.
  void Snapshot(std::vector<JournalEvent>* out) const;

  /// The ring (oldest first, at most `max_events` newest when capped)
  /// as a JSON document: {"total":N,"capacity":C,"events":[...]}.
  std::string RenderJson(size_t max_events = 0) const;

 private:
  void EmitSlow(EventKind kind, uint64_t epoch, uint64_t session,
                uint64_t a, uint64_t b);

  const size_t capacity_;
  std::FILE* const sink_;  // the stream, guarded by mu_ like the ring
  mutable common::Mutex mu_;
  /// Grown lazily up to capacity_.
  std::vector<JournalEvent> ring_ GUARDED_BY(mu_);
  size_t next_ GUARDED_BY(mu_) = 0;    // overwrite cursor once full
  uint64_t total_ GUARDED_BY(mu_) = 0;
};

}  // namespace octopus::obs

#endif  // OCTOPUS_OBS_EVENT_JOURNAL_H_
