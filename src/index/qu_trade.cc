// Copyright 2026 The OCTOPUS Reproduction Authors
#include "index/qu_trade.h"

#include <algorithm>

namespace octopus {

QUTrade::QUTrade() : options_(Options{}) {}

void QUTrade::Build(const TetraMesh& mesh) {
  if (options_.initial_window > 0.0f) {
    window_ = options_.initial_window;
  } else {
    // Heuristic start: 1% of the largest domain extent. The adaptive loop
    // converges from here within a few steps.
    const Vec3 ext = mesh.ComputeBounds().Extent();
    window_ = 0.01f * std::max({ext.x, ext.y, ext.z, 1e-6f});
  }
  RebuildAll(mesh);
}

void QUTrade::RebuildAll(const TetraMesh& mesh) {
  grace_.assign(mesh.num_vertices(), AABB());
  std::vector<RTree::Entry> entries;
  entries.reserve(mesh.num_vertices());
  for (size_t v = 0; v < mesh.num_vertices(); ++v) {
    const Vec3& p = mesh.position(static_cast<VertexId>(v));
    const AABB box = AABB(p, p).Inflated(window_);
    grace_[v] = box;
    entries.push_back({static_cast<VertexId>(v), box});
  }
  tree_.BulkLoad(std::move(entries));
}

void QUTrade::BeforeQueries(const TetraMesh& mesh) {
  const std::vector<Vec3>& current = mesh.positions();
  if (current.size() > grace_.size()) {
    grace_.resize(current.size(), AABB());  // restructure-added vertices
  }
  size_t triggers = 0;
  for (size_t v = 0; v < current.size(); ++v) {
    const Vec3& p = current[v];
    if (grace_[v].Contains(p)) continue;  // inside grace window: free
    ++triggers;
    const VertexId id = static_cast<VertexId>(v);
    const AABB box = AABB(p, p).Inflated(window_);
    grace_[v] = box;
    tree_.Delete(id);  // no-op for brand-new vertices
    tree_.Insert(id, box);
  }
  last_trigger_rate_ = current.empty()
                           ? 0.0
                           : static_cast<double>(triggers) /
                                 static_cast<double>(current.size());
  if (options_.adaptive) {
    // Grow the window when too many updates trigger maintenance; shrink it
    // when triggers are far below target (tighter boxes = cheaper queries).
    if (last_trigger_rate_ > options_.target_trigger_rate) {
      window_ *= static_cast<float>(options_.adapt_factor);
    } else if (last_trigger_rate_ <
               options_.target_trigger_rate / 8.0) {
      window_ /= static_cast<float>(options_.adapt_factor);
    }
  }
}

void QUTrade::RangeQuery(const TetraMesh& mesh, const AABB& box,
                         std::vector<VertexId>* out) const {
  // Grace boxes over-approximate positions: fetch candidates, then filter
  // by the actual current position (the paper's "filter the objects that
  // intersect with the grid cell but not the query" analog).
  const size_t first = out->size();
  tree_.QueryIds(box, out);
  size_t kept = first;
  for (size_t i = first; i < out->size(); ++i) {
    if (box.Contains(mesh.position((*out)[i]))) {
      (*out)[kept++] = (*out)[i];
    }
  }
  out->resize(kept);
}

size_t QUTrade::FootprintBytes() const {
  return tree_.FootprintBytes() + grace_.capacity() * sizeof(AABB);
}

}  // namespace octopus
