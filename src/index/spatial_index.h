// Copyright 2026 The OCTOPUS Reproduction Authors
// Uniform interface for every query-execution approach compared in the
// paper: OCTOPUS, linear scan, throwaway Octree, LUR-Tree and QU-Trade.
// The benchmark harness drives them all through this interface and times
// `BeforeQueries` (per-step maintenance) plus `RangeQueryBatch` calls,
// matching the paper's "total query response time including the time to
// rebuild or update the index".
#ifndef OCTOPUS_INDEX_SPATIAL_INDEX_H_
#define OCTOPUS_INDEX_SPATIAL_INDEX_H_

#include <span>
#include <string>
#include <vector>

#include "common/aabb.h"
#include "engine/query_batch.h"
#include "mesh/tetra_mesh.h"
#include "mesh/types.h"

namespace octopus {

namespace engine {
class ThreadPool;
}  // namespace engine

/// \brief A strategy for executing exact vertex range queries on a mesh
/// that deforms in place every simulation step.
///
/// Mutation model: `Build` and `BeforeQueries` are the only mutating
/// entry points. Query execution (`RangeQuery`, `RangeQueryBatch`) is
/// `const` — all scratch lives in per-thread execution contexts, not in
/// the index — so a batch of queries may be executed concurrently by an
/// implementation that overrides `RangeQueryBatch` with a parallel path.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Approach name for reports ("OCTOPUS", "LinearScan", ...).
  virtual std::string Name() const = 0;

  /// One-time preprocessing after the mesh is loaded, before the
  /// simulation starts. Reported separately; not part of query response
  /// time (paper Sec. V-A).
  virtual void Build(const TetraMesh& mesh) = 0;

  /// Per-step maintenance, called after the simulation finished updating
  /// vertex positions and before the step's queries: Octree rebuilds here,
  /// LUR-Tree/QU-Trade process the position updates, OCTOPUS and the
  /// linear scan do nothing.
  virtual void BeforeQueries(const TetraMesh& mesh) = 0;

  /// Appends the ids of exactly the vertices whose *current* position lies
  /// inside `box` to `out` (order unspecified). `const`, but single-query
  /// convenience only — implementations may route it through one cached
  /// execution context, so calls are NOT safe to issue concurrently. Use
  /// `RangeQueryBatch` for concurrent execution.
  virtual void RangeQuery(const TetraMesh& mesh, const AABB& box,
                          std::vector<VertexId>* out) const = 0;

  /// Executes all of `boxes` and fills `out` with one result set per
  /// query, in batch order. The default implementation resets `out` and
  /// runs the queries sequentially through `RangeQuery`, ignoring `pool`
  /// — every baseline works through the engine unchanged. OCTOPUS
  /// overrides this with a sharded parallel path that uses `pool` (may
  /// be null, meaning sequential). Result sets per query are identical
  /// regardless of thread count.
  virtual void RangeQueryBatch(const TetraMesh& mesh,
                               std::span<const AABB> boxes,
                               engine::QueryBatchResult* out,
                               engine::ThreadPool* pool = nullptr) const;

  /// Bytes of auxiliary data structures beyond the mesh itself
  /// (paper Fig. 6(b)).
  virtual size_t FootprintBytes() const = 0;
};

}  // namespace octopus

#endif  // OCTOPUS_INDEX_SPATIAL_INDEX_H_
