// Copyright 2026 The OCTOPUS Reproduction Authors
// Uniform interface for every query-execution approach compared in the
// paper: OCTOPUS, linear scan, throwaway Octree, LUR-Tree and QU-Trade.
// The benchmark harness drives them all through this interface and times
// `BeforeQueries` (per-step maintenance) plus `RangeQuery` calls, matching
// the paper's "total query response time including the time to rebuild or
// update the index".
#ifndef OCTOPUS_INDEX_SPATIAL_INDEX_H_
#define OCTOPUS_INDEX_SPATIAL_INDEX_H_

#include <string>
#include <vector>

#include "common/aabb.h"
#include "mesh/tetra_mesh.h"
#include "mesh/types.h"

namespace octopus {

/// \brief A strategy for executing exact vertex range queries on a mesh
/// that deforms in place every simulation step.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Approach name for reports ("OCTOPUS", "LinearScan", ...).
  virtual std::string Name() const = 0;

  /// One-time preprocessing after the mesh is loaded, before the
  /// simulation starts. Reported separately; not part of query response
  /// time (paper Sec. V-A).
  virtual void Build(const TetraMesh& mesh) = 0;

  /// Per-step maintenance, called after the simulation finished updating
  /// vertex positions and before the step's queries: Octree rebuilds here,
  /// LUR-Tree/QU-Trade process the position updates, OCTOPUS and the
  /// linear scan do nothing.
  virtual void BeforeQueries(const TetraMesh& mesh) = 0;

  /// Appends the ids of exactly the vertices whose *current* position lies
  /// inside `box` to `out` (order unspecified).
  virtual void RangeQuery(const TetraMesh& mesh, const AABB& box,
                          std::vector<VertexId>* out) = 0;

  /// Bytes of auxiliary data structures beyond the mesh itself
  /// (paper Fig. 6(b)).
  virtual size_t FootprintBytes() const = 0;
};

}  // namespace octopus

#endif  // OCTOPUS_INDEX_SPATIAL_INDEX_H_
