// Copyright 2026 The OCTOPUS Reproduction Authors
#include "index/linear_scan.h"

namespace octopus {

void LinearScan::RangeQuery(const TetraMesh& mesh, const AABB& box,
                            std::vector<VertexId>* out) const {
  const std::vector<Vec3>& positions = mesh.positions();
  for (size_t v = 0; v < positions.size(); ++v) {
    if (box.Contains(positions[v])) {
      out->push_back(static_cast<VertexId>(v));
    }
  }
}

}  // namespace octopus
