// Copyright 2026 The OCTOPUS Reproduction Authors
#include "index/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace octopus {

RTree::RTree() : options_(Options{}) {}

void RTree::Clear() {
  nodes_.clear();
  leaf_of_.clear();
  root_ = -1;
}

int32_t RTree::NewNode(bool is_leaf) {
  Node n;
  n.is_leaf = is_leaf;
  nodes_.push_back(std::move(n));
  return static_cast<int32_t>(nodes_.size() - 1);
}

int RTree::WidestAxis(const AABB& box) {
  const Vec3 e = box.Extent();
  if (e.x >= e.y && e.x >= e.z) return 0;
  return e.y >= e.z ? 1 : 2;
}

void RTree::BulkLoad(std::vector<Entry> entries) {
  Clear();
  if (entries.empty()) {
    root_ = NewNode(true);
    return;
  }
  const size_t fanout = static_cast<size_t>(options_.fanout);

  // --- Sort-Tile-Recursive leaf packing ---
  const size_t num_leaves = (entries.size() + fanout - 1) / fanout;
  const size_t slabs_x = static_cast<size_t>(
      std::ceil(std::cbrt(static_cast<double>(num_leaves))));
  auto center = [](const Entry& e, int axis) {
    const Vec3 c = e.box.Center();
    return axis == 0 ? c.x : (axis == 1 ? c.y : c.z);
  };
  std::sort(entries.begin(), entries.end(),
            [&](const Entry& a, const Entry& b) {
              return center(a, 0) < center(b, 0);
            });
  const size_t slab_x_size =
      (entries.size() + slabs_x - 1) / slabs_x;

  std::vector<int32_t> leaves;
  for (size_t x0 = 0; x0 < entries.size(); x0 += slab_x_size) {
    const size_t x1 = std::min(x0 + slab_x_size, entries.size());
    std::sort(entries.begin() + x0, entries.begin() + x1,
              [&](const Entry& a, const Entry& b) {
                return center(a, 1) < center(b, 1);
              });
    const size_t leaves_in_slab =
        ((x1 - x0) + fanout - 1) / fanout;
    const size_t slabs_y = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(leaves_in_slab))));
    const size_t slab_y_size = ((x1 - x0) + slabs_y - 1) / slabs_y;
    for (size_t y0 = x0; y0 < x1; y0 += slab_y_size) {
      const size_t y1 = std::min(y0 + slab_y_size, x1);
      std::sort(entries.begin() + y0, entries.begin() + y1,
                [&](const Entry& a, const Entry& b) {
                  return center(a, 2) < center(b, 2);
                });
      for (size_t z0 = y0; z0 < y1; z0 += fanout) {
        const size_t z1 = std::min(z0 + fanout, y1);
        const int32_t leaf = NewNode(true);
        nodes_[leaf].entries.assign(entries.begin() + z0,
                                    entries.begin() + z1);
        AABB mbr;
        for (const Entry& e : nodes_[leaf].entries) mbr.Extend(e.box);
        nodes_[leaf].mbr = mbr;
        RegisterEntries(leaf);
        leaves.push_back(leaf);
      }
    }
  }

  // --- Pack upper levels from consecutive (STR-ordered) nodes ---
  std::vector<int32_t> level = std::move(leaves);
  while (level.size() > 1) {
    std::vector<int32_t> next;
    for (size_t i = 0; i < level.size(); i += fanout) {
      const size_t j = std::min(i + fanout, level.size());
      const int32_t parent = NewNode(false);
      AABB mbr;
      for (size_t k = i; k < j; ++k) {
        nodes_[parent].children.push_back(level[k]);
        nodes_[level[k]].parent = parent;
        mbr.Extend(nodes_[level[k]].mbr);
      }
      nodes_[parent].mbr = mbr;
      next.push_back(parent);
    }
    level = std::move(next);
  }
  root_ = level[0];
}

void RTree::RegisterEntries(int32_t leaf) {
  for (const Entry& e : nodes_[leaf].entries) {
    leaf_of_[e.id] = leaf;
  }
}

int32_t RTree::ChooseLeaf(const AABB& box) const {
  int32_t n = root_;
  while (!nodes_[n].is_leaf) {
    const Node& node = nodes_[n];
    int32_t best = node.children.front();
    double best_enlargement = std::numeric_limits<double>::max();
    double best_volume = std::numeric_limits<double>::max();
    for (int32_t child : node.children) {
      const double volume = nodes_[child].mbr.Volume();
      const double enlarged =
          AABB::Union(nodes_[child].mbr, box).Volume() - volume;
      if (enlarged < best_enlargement ||
          (enlarged == best_enlargement && volume < best_volume)) {
        best_enlargement = enlarged;
        best_volume = volume;
        best = child;
      }
    }
    n = best;
  }
  return n;
}

void RTree::ExtendUpward(int32_t node, const AABB& box) {
  for (int32_t n = node; n >= 0; n = nodes_[n].parent) {
    nodes_[n].mbr.Extend(box);
  }
}

void RTree::SplitIfOverflowing(int32_t node) {
  const size_t fanout = static_cast<size_t>(options_.fanout);
  const size_t size = nodes_[node].is_leaf ? nodes_[node].entries.size()
                                           : nodes_[node].children.size();
  if (size <= fanout) return;

  const bool is_leaf = nodes_[node].is_leaf;
  const int axis = WidestAxis(nodes_[node].mbr);
  auto box_center = [&](const AABB& b) {
    const Vec3 c = b.Center();
    return axis == 0 ? c.x : (axis == 1 ? c.y : c.z);
  };

  const int32_t sibling = NewNode(is_leaf);
  // NOTE: NewNode may reallocate nodes_; take references only after it.
  Node& self = nodes_[node];
  Node& other = nodes_[sibling];

  if (is_leaf) {
    std::sort(self.entries.begin(), self.entries.end(),
              [&](const Entry& a, const Entry& b) {
                return box_center(a.box) < box_center(b.box);
              });
    const size_t half = self.entries.size() / 2;
    other.entries.assign(self.entries.begin() + half, self.entries.end());
    self.entries.resize(half);
    RegisterEntries(sibling);
  } else {
    std::sort(self.children.begin(), self.children.end(),
              [&](int32_t a, int32_t b) {
                return box_center(nodes_[a].mbr) < box_center(nodes_[b].mbr);
              });
    const size_t half = self.children.size() / 2;
    other.children.assign(self.children.begin() + half, self.children.end());
    self.children.resize(half);
    for (int32_t child : other.children) nodes_[child].parent = sibling;
  }

  // Recompute tight MBRs of both halves.
  auto recompute = [&](Node& n) {
    AABB mbr;
    if (n.is_leaf) {
      for (const Entry& e : n.entries) mbr.Extend(e.box);
    } else {
      for (int32_t c : n.children) mbr.Extend(nodes_[c].mbr);
    }
    n.mbr = mbr;
  };
  recompute(self);
  recompute(other);

  if (node == root_) {
    const int32_t new_root = NewNode(false);
    nodes_[new_root].children = {node, sibling};
    nodes_[new_root].mbr = AABB::Union(nodes_[node].mbr, nodes_[sibling].mbr);
    nodes_[node].parent = new_root;
    nodes_[sibling].parent = new_root;
    root_ = new_root;
    return;
  }
  const int32_t parent = nodes_[node].parent;
  nodes_[sibling].parent = parent;
  nodes_[parent].children.push_back(sibling);
  // Parent MBR already covers both halves (they partition the old node).
  SplitIfOverflowing(parent);
}

void RTree::Insert(VertexId id, const AABB& box) {
  assert(leaf_of_.find(id) == leaf_of_.end() && "duplicate id insert");
  if (root_ < 0) root_ = NewNode(true);
  const int32_t leaf = ChooseLeaf(box);
  nodes_[leaf].entries.push_back(Entry{id, box});
  leaf_of_[id] = leaf;
  ExtendUpward(leaf, box);
  SplitIfOverflowing(leaf);
}

bool RTree::Delete(VertexId id) {
  auto it = leaf_of_.find(id);
  if (it == leaf_of_.end()) return false;
  std::vector<Entry>& entries = nodes_[it->second].entries;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].id == id) {
      entries[i] = entries.back();
      entries.pop_back();
      leaf_of_.erase(it);
      // MBRs are left unshrunk: still covering, so queries stay correct.
      return true;
    }
  }
  assert(false && "leaf_of_ points to a leaf without the entry");
  return false;
}

bool RTree::TryUpdateInPlace(VertexId id, const AABB& new_box) {
  auto it = leaf_of_.find(id);
  if (it == leaf_of_.end()) return false;
  Node& leaf = nodes_[it->second];
  if (!leaf.mbr.Contains(new_box)) return false;
  for (Entry& e : leaf.entries) {
    if (e.id == id) {
      e.box = new_box;
      return true;
    }
  }
  assert(false && "leaf_of_ points to a leaf without the entry");
  return false;
}

const AABB* RTree::FindEntryBox(VertexId id) const {
  auto it = leaf_of_.find(id);
  if (it == leaf_of_.end()) return nullptr;
  for (const Entry& e : nodes_[it->second].entries) {
    if (e.id == id) return &e.box;
  }
  return nullptr;
}

void RTree::Query(const AABB& query, std::vector<Entry>* out) const {
  if (root_ < 0) return;
  // Explicit stack; recursion depth is modest but this is the hot path.
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const int32_t n = stack.back();
    stack.pop_back();
    const Node& node = nodes_[n];
    if (!query.Intersects(node.mbr)) continue;
    if (node.is_leaf) {
      for (const Entry& e : node.entries) {
        if (query.Intersects(e.box)) out->push_back(e);
      }
    } else {
      for (int32_t child : node.children) {
        if (query.Intersects(nodes_[child].mbr)) stack.push_back(child);
      }
    }
  }
}

void RTree::QueryIds(const AABB& query, std::vector<VertexId>* out) const {
  if (root_ < 0) return;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const int32_t n = stack.back();
    stack.pop_back();
    const Node& node = nodes_[n];
    if (!query.Intersects(node.mbr)) continue;
    if (node.is_leaf) {
      for (const Entry& e : node.entries) {
        if (query.Intersects(e.box)) out->push_back(e.id);
      }
    } else {
      for (int32_t child : node.children) {
        if (query.Intersects(nodes_[child].mbr)) stack.push_back(child);
      }
    }
  }
}

int RTree::height() const {
  if (root_ < 0) return 0;
  int h = 1;
  int32_t n = root_;
  while (!nodes_[n].is_leaf) {
    n = nodes_[n].children.front();
    ++h;
  }
  return h;
}

size_t RTree::FootprintBytes() const {
  size_t bytes = nodes_.capacity() * sizeof(Node);
  for (const Node& n : nodes_) {
    bytes += n.children.capacity() * sizeof(int32_t);
    bytes += n.entries.capacity() * sizeof(Entry);
  }
  // Hash map: id, node index, plus typical node/bucket overhead.
  bytes += leaf_of_.size() * (sizeof(VertexId) + sizeof(int32_t) + 16);
  return bytes;
}

bool RTree::CheckInvariants() const {
  if (root_ < 0) return true;
  for (size_t n = 0; n < nodes_.size(); ++n) {
    const Node& node = nodes_[n];
    if (node.is_leaf) {
      for (const Entry& e : node.entries) {
        if (!node.mbr.Contains(e.box)) return false;
        auto it = leaf_of_.find(e.id);
        if (it == leaf_of_.end() ||
            it->second != static_cast<int32_t>(n)) {
          return false;
        }
      }
    } else {
      if (node.children.empty()) return false;
      for (int32_t child : node.children) {
        if (!node.mbr.Contains(nodes_[child].mbr)) return false;
        if (nodes_[child].parent != static_cast<int32_t>(n)) return false;
      }
    }
  }
  return true;
}

}  // namespace octopus
