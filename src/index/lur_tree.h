// Copyright 2026 The OCTOPUS Reproduction Authors
// LUR-Tree baseline (Kwon, Lee & Lee, "Indexing the current positions of
// moving objects using the lazy update R-tree", MDM 2002): position
// updates that stay inside the containing leaf's MBR are applied in place
// without restructuring; only escapes pay delete + reinsert.
#ifndef OCTOPUS_INDEX_LUR_TREE_H_
#define OCTOPUS_INDEX_LUR_TREE_H_

#include <vector>

#include "index/rtree.h"
#include "index/spatial_index.h"

namespace octopus {

/// \brief Lazy-update R-tree over the vertex positions.
///
/// `BeforeQueries` consumes the simulation step's position updates (the
/// diff between the index's last-seen positions and the mesh's current
/// ones — every vertex in a mesh simulation). This per-step maintenance is
/// what dominates its response time in the paper (~80%, Fig. 6 analysis).
class LURTree : public SpatialIndex {
 public:
  LURTree() = default;
  explicit LURTree(RTree::Options options) : tree_(options) {}

  std::string Name() const override { return "LUR-Tree"; }
  void Build(const TetraMesh& mesh) override;
  void BeforeQueries(const TetraMesh& mesh) override;
  void RangeQuery(const TetraMesh& mesh, const AABB& box,
                  std::vector<VertexId>* out) const override;
  size_t FootprintBytes() const override;

  /// Fraction of updates in the last `BeforeQueries` that escaped their
  /// leaf MBR and paid delete + reinsert.
  double last_reinsert_fraction() const { return last_reinsert_fraction_; }

  const RTree& tree() const { return tree_; }

 private:
  RTree tree_;
  std::vector<Vec3> last_positions_;
  double last_reinsert_fraction_ = 0.0;
};

}  // namespace octopus

#endif  // OCTOPUS_INDEX_LUR_TREE_H_
