// Copyright 2026 The OCTOPUS Reproduction Authors
// The baseline of the paper: test every vertex against the query box.
// Zero maintenance, zero memory overhead, O(V) per query.
#ifndef OCTOPUS_INDEX_LINEAR_SCAN_H_
#define OCTOPUS_INDEX_LINEAR_SCAN_H_

#include "index/spatial_index.h"

namespace octopus {

/// \brief Full scan over the position array for every query.
class LinearScan : public SpatialIndex {
 public:
  std::string Name() const override { return "LinearScan"; }
  void Build(const TetraMesh& mesh) override { (void)mesh; }
  void BeforeQueries(const TetraMesh& mesh) override { (void)mesh; }
  void RangeQuery(const TetraMesh& mesh, const AABB& box,
                  std::vector<VertexId>* out) const override;
  size_t FootprintBytes() const override { return 0; }
};

}  // namespace octopus

#endif  // OCTOPUS_INDEX_LINEAR_SCAN_H_
