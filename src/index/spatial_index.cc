// Copyright 2026 The OCTOPUS Reproduction Authors
#include "index/spatial_index.h"

namespace octopus {

void SpatialIndex::RangeQueryBatch(const TetraMesh& mesh,
                                   std::span<const AABB> boxes,
                                   engine::QueryBatchResult* out,
                                   engine::ThreadPool* pool) const {
  (void)pool;  // sequential default: per-query overhead, no concurrency
  out->Reset(boxes.size());
  for (size_t q = 0; q < boxes.size(); ++q) {
    RangeQuery(mesh, boxes[q], &out->per_query[q]);
  }
}

}  // namespace octopus
