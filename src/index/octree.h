// Copyright 2026 The OCTOPUS Reproduction Authors
// Lightweight "throwaway" bucket octree (Dittrich et al., SSTD '09 style):
// rebuilt from scratch at every simulation step, queried a few times, then
// discarded. The paper uses it as the strongest index-based competitor
// (bucket threshold 10,000 vertices at their scale, tuned via sweep).
#ifndef OCTOPUS_INDEX_OCTREE_H_
#define OCTOPUS_INDEX_OCTREE_H_

#include <cstdint>
#include <vector>

#include "index/spatial_index.h"

namespace octopus {

/// \brief Bucket PR octree over vertex positions.
///
/// Nodes own contiguous ranges of a single id array (built by in-place
/// octant partitioning), so full-covered subtrees append results with one
/// bulk copy.
class Octree {
 public:
  struct Options {
    /// A node with more points than this splits into 8 children.
    int bucket_size = 1024;
    /// Hard recursion bound (duplicate points cannot split forever).
    int max_depth = 24;
  };

  Octree();  // default options
  explicit Octree(Options options) : options_(options) {}

  /// Rebuilds the tree over `points` (positions captured by value into the
  /// partition order; `points` may change afterwards).
  void Build(const std::vector<Vec3>& points, const AABB& bounds = AABB());

  /// Appends ids of all indexed points inside `box`.
  void Query(const AABB& box, std::vector<VertexId>* out) const;

  size_t FootprintBytes() const;
  size_t num_nodes() const { return nodes_.size(); }
  const Options& options() const { return options_; }

 private:
  struct Node {
    AABB box;
    uint32_t begin = 0;           // range into ids_ / coords_
    uint32_t end = 0;
    int32_t first_child = -1;     // 8 consecutive children, or -1 for leaf
  };

  void BuildNode(uint32_t node_index, int depth);
  void QueryNode(uint32_t node_index, const AABB& box,
                 std::vector<VertexId>* out) const;

  Options options_;
  std::vector<Node> nodes_;
  std::vector<VertexId> ids_;
  std::vector<Vec3> coords_;  // permuted copy, parallel to ids_
};

/// \brief SpatialIndex adapter: rebuild-per-step throwaway octree.
class ThrowawayOctree : public SpatialIndex {
 public:
  ThrowawayOctree() = default;
  explicit ThrowawayOctree(Octree::Options options) : tree_(options) {}

  std::string Name() const override { return "OCTREE"; }
  void Build(const TetraMesh& mesh) override { BeforeQueries(mesh); }
  void BeforeQueries(const TetraMesh& mesh) override {
    tree_.Build(mesh.positions());
  }
  void RangeQuery(const TetraMesh& mesh, const AABB& box,
                  std::vector<VertexId>* out) const override {
    (void)mesh;
    tree_.Query(box, out);
  }
  size_t FootprintBytes() const override { return tree_.FootprintBytes(); }

 private:
  Octree tree_;
};

}  // namespace octopus

#endif  // OCTOPUS_INDEX_OCTREE_H_
