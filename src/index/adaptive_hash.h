// Copyright 2026 The OCTOPUS Reproduction Authors
// Adaptive two-level hashing index for moving objects (Kwon, Lee, Choi &
// Lee, DKE 2006 — paper Sec. II-B related work): slow-moving objects are
// hashed into a fine grid, fast-moving ones into a coarse grid, so fast
// objects change cells (and thus pay updates) less often. Queries fetch
// all cells intersecting the box from both levels and filter candidates
// by their actual position.
//
// Not part of the paper's Fig. 6 comparison (the paper discusses it as
// related work); included as an additional moving-object baseline.
#ifndef OCTOPUS_INDEX_ADAPTIVE_HASH_H_
#define OCTOPUS_INDEX_ADAPTIVE_HASH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "index/spatial_index.h"

namespace octopus {

/// \brief Two-level grid hash over vertex positions with speed-based
/// level assignment.
class AdaptiveHashIndex : public SpatialIndex {
 public:
  struct Options {
    int fine_resolution = 32;    ///< cells per axis, slow objects
    int coarse_resolution = 8;   ///< cells per axis, fast objects
    /// An object whose last per-step displacement exceeds this fraction
    /// of a fine cell is classified fast.
    float fast_fraction_of_fine_cell = 0.5f;
  };

  AdaptiveHashIndex();  // default options
  explicit AdaptiveHashIndex(Options options) : options_(options) {}

  std::string Name() const override { return "AdaptiveHash"; }
  void Build(const TetraMesh& mesh) override;
  void BeforeQueries(const TetraMesh& mesh) override;
  void RangeQuery(const TetraMesh& mesh, const AABB& box,
                  std::vector<VertexId>* out) const override;
  size_t FootprintBytes() const override;

  /// Objects currently assigned to the fast (coarse) level.
  size_t num_fast() const { return num_fast_; }
  /// Cell re-bucketings performed in the last `BeforeQueries`.
  size_t last_rebuckets() const { return last_rebuckets_; }

 private:
  struct Record {
    uint8_t level = 0;       // 0 = fine, 1 = coarse
    uint32_t cell = 0;       // linear cell index within its level
    uint32_t slot = 0;       // position inside the cell bucket
  };

  struct Level {
    int resolution = 0;
    std::vector<std::vector<VertexId>> buckets;  // resolution^3 cells

    uint32_t CellOf(const Vec3& p, const AABB& bounds) const;
    void CellRange(const AABB& box, const AABB& bounds, int* lo,
                   int* hi) const;  // per-axis cell ranges, lo/hi[3]
  };

  void InsertInto(uint8_t level, VertexId id, const Vec3& p);
  void RemoveFrom(VertexId id);

  Options options_;
  AABB bounds_;  // fixed at Build; slightly inflated
  Level levels_[2];
  std::vector<Record> records_;
  std::vector<Vec3> last_positions_;
  size_t num_fast_ = 0;
  size_t last_rebuckets_ = 0;
};

}  // namespace octopus

#endif  // OCTOPUS_INDEX_ADAPTIVE_HASH_H_
