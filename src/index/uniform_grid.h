// Copyright 2026 The OCTOPUS Reproduction Authors
// Uniform 3D grid over vertex positions. OCTOPUS-CON builds it once before
// the simulation and never updates it (paper Sec. IV-F): even stale, it
// supplies a starting vertex near the query center for the directed walk.
#ifndef OCTOPUS_INDEX_UNIFORM_GRID_H_
#define OCTOPUS_INDEX_UNIFORM_GRID_H_

#include <cstdint>
#include <vector>

#include "common/aabb.h"
#include "common/vec3.h"
#include "mesh/types.h"

namespace octopus {

/// \brief CSR-bucketed uniform grid of vertex ids.
class UniformGrid {
 public:
  /// \param resolution cells per axis (total cells = resolution^3,
  ///   matching the paper's Fig. 9(c) "# of grid cells" axis).
  explicit UniformGrid(int resolution = 10) : resolution_(resolution) {}

  /// Assigns every point to the cell enclosing it. `bounds` defaults to
  /// the tight box of `points`.
  void Build(const std::vector<Vec3>& points, const AABB& bounds = AABB());

  /// Some vertex spatially near `p`: the first vertex found when scanning
  /// the cell enclosing `p` and then growing shells of neighboring cells
  /// (paper: "if no vertex exists the neighboring cells are recursively
  /// checked until a vertex is found"). kInvalidVertex if the grid is
  /// empty.
  VertexId FindNearbyVertex(const Vec3& p) const;

  /// Appends all ids whose *indexed* (possibly stale) position falls in
  /// cells overlapping `box`. Candidates only — callers must filter by
  /// current position.
  void CollectCandidates(const AABB& box, std::vector<VertexId>* out) const;

  int resolution() const { return resolution_; }
  size_t num_points() const { return ids_.size(); }

  /// Bytes of cell offsets + id array (paper Fig. 9(d) memory overhead).
  size_t FootprintBytes() const {
    return offsets_.capacity() * sizeof(uint32_t) +
           ids_.capacity() * sizeof(VertexId);
  }

 private:
  int CellCoord(float v, float lo, float inv_cell) const;
  size_t CellIndex(int cx, int cy, int cz) const {
    return (static_cast<size_t>(cz) * resolution_ + cy) * resolution_ + cx;
  }

  int resolution_;
  AABB bounds_;
  Vec3 inv_cell_;  // 1 / cell size per axis
  std::vector<uint32_t> offsets_;  // res^3 + 1
  std::vector<VertexId> ids_;
};

}  // namespace octopus

#endif  // OCTOPUS_INDEX_UNIFORM_GRID_H_
