// Copyright 2026 The OCTOPUS Reproduction Authors
#include "index/adaptive_hash.h"

#include <algorithm>
#include <cassert>

namespace octopus {

AdaptiveHashIndex::AdaptiveHashIndex() : options_(Options{}) {}

uint32_t AdaptiveHashIndex::Level::CellOf(const Vec3& p,
                                          const AABB& bounds) const {
  const Vec3 ext = bounds.Extent();
  auto coord = [this](float v, float lo, float extent) {
    if (extent <= 0.0f) return 0;
    int c = static_cast<int>((v - lo) / extent * resolution);
    return std::clamp(c, 0, resolution - 1);
  };
  const int cx = coord(p.x, bounds.min.x, ext.x);
  const int cy = coord(p.y, bounds.min.y, ext.y);
  const int cz = coord(p.z, bounds.min.z, ext.z);
  return static_cast<uint32_t>((cz * resolution + cy) * resolution + cx);
}

void AdaptiveHashIndex::Level::CellRange(const AABB& box, const AABB& bounds,
                                         int* lo, int* hi) const {
  const Vec3 ext = bounds.Extent();
  auto coord = [this](float v, float b, float extent) {
    if (extent <= 0.0f) return 0;
    int c = static_cast<int>((v - b) / extent * resolution);
    return std::clamp(c, 0, resolution - 1);
  };
  lo[0] = coord(box.min.x, bounds.min.x, ext.x);
  hi[0] = coord(box.max.x, bounds.min.x, ext.x);
  lo[1] = coord(box.min.y, bounds.min.y, ext.y);
  hi[1] = coord(box.max.y, bounds.min.y, ext.y);
  lo[2] = coord(box.min.z, bounds.min.z, ext.z);
  hi[2] = coord(box.max.z, bounds.min.z, ext.z);
}

void AdaptiveHashIndex::InsertInto(uint8_t level, VertexId id,
                                   const Vec3& p) {
  Level& grid = levels_[level];
  const uint32_t cell = grid.CellOf(p, bounds_);
  std::vector<VertexId>& bucket = grid.buckets[cell];
  records_[id] = Record{level, cell,
                        static_cast<uint32_t>(bucket.size())};
  bucket.push_back(id);
}

void AdaptiveHashIndex::RemoveFrom(VertexId id) {
  const Record rec = records_[id];
  std::vector<VertexId>& bucket = levels_[rec.level].buckets[rec.cell];
  assert(rec.slot < bucket.size() && bucket[rec.slot] == id);
  const VertexId moved = bucket.back();
  bucket[rec.slot] = moved;
  bucket.pop_back();
  if (moved != id) records_[moved].slot = rec.slot;
}

void AdaptiveHashIndex::Build(const TetraMesh& mesh) {
  // Fixed grid extent, inflated so moderate drift stays in range (points
  // outside clamp to boundary cells, which stays correct, just slower).
  bounds_ = mesh.ComputeBounds();
  const Vec3 pad = bounds_.Extent() * 0.25f;
  bounds_ = AABB(bounds_.min - pad, bounds_.max + pad);

  levels_[0].resolution = options_.fine_resolution;
  levels_[1].resolution = options_.coarse_resolution;
  for (Level& level : levels_) {
    level.buckets.assign(static_cast<size_t>(level.resolution) *
                             level.resolution * level.resolution,
                         {});
  }
  records_.assign(mesh.num_vertices(), Record{});
  num_fast_ = 0;
  // Everything starts slow (fine grid); reclassification happens as
  // movement is observed.
  for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
    InsertInto(0, v, mesh.position(v));
  }
  last_positions_ = mesh.positions();
}

void AdaptiveHashIndex::BeforeQueries(const TetraMesh& mesh) {
  const std::vector<Vec3>& current = mesh.positions();
  if (current.size() > records_.size()) {
    // Restructuring added vertices: register them as slow.
    records_.resize(current.size());
    for (VertexId v = static_cast<VertexId>(last_positions_.size());
         v < current.size(); ++v) {
      InsertInto(0, v, current[v]);
    }
  }
  const float fine_cell =
      bounds_.Extent().x / static_cast<float>(options_.fine_resolution);
  const float fast_threshold2 =
      (options_.fast_fraction_of_fine_cell * fine_cell) *
      (options_.fast_fraction_of_fine_cell * fine_cell);

  last_rebuckets_ = 0;
  const size_t known = std::min(last_positions_.size(), current.size());
  for (VertexId v = 0; v < known; ++v) {
    const Vec3& p = current[v];
    if (p == last_positions_[v]) continue;
    // Speed classification from the observed per-step displacement.
    const float d2 = SquaredDistance(p, last_positions_[v]);
    const uint8_t wanted_level = d2 > fast_threshold2 ? 1 : 0;
    const Record rec = records_[v];
    const uint32_t new_cell = levels_[wanted_level].CellOf(p, bounds_);
    if (wanted_level == rec.level && new_cell == rec.cell) {
      continue;  // still in its cell: no index work (the whole point)
    }
    if (wanted_level != rec.level) {
      num_fast_ += wanted_level == 1 ? 1 : -1;
    }
    RemoveFrom(v);
    InsertInto(wanted_level, v, p);
    ++last_rebuckets_;
  }
  last_positions_ = current;
}

void AdaptiveHashIndex::RangeQuery(const TetraMesh& mesh, const AABB& box,
                                   std::vector<VertexId>* out) const {
  // Fetch all cells intersecting the query from both levels, filter each
  // candidate by its actual current position (paper Sec. II-B: "filter
  // the objects that intersect with the grid cell but not the query").
  for (const Level& level : levels_) {
    int lo[3];
    int hi[3];
    level.CellRange(box, bounds_, lo, hi);
    for (int z = lo[2]; z <= hi[2]; ++z) {
      for (int y = lo[1]; y <= hi[1]; ++y) {
        for (int x = lo[0]; x <= hi[0]; ++x) {
          const size_t cell =
              (static_cast<size_t>(z) * level.resolution + y) *
                  level.resolution +
              x;
          for (VertexId id : level.buckets[cell]) {
            if (box.Contains(mesh.position(id))) out->push_back(id);
          }
        }
      }
    }
  }
}

size_t AdaptiveHashIndex::FootprintBytes() const {
  size_t bytes = records_.capacity() * sizeof(Record) +
                 last_positions_.capacity() * sizeof(Vec3);
  for (const Level& level : levels_) {
    bytes += level.buckets.capacity() * sizeof(std::vector<VertexId>);
    for (const auto& bucket : level.buckets) {
      bytes += bucket.capacity() * sizeof(VertexId);
    }
  }
  return bytes;
}

}  // namespace octopus
