// Copyright 2026 The OCTOPUS Reproduction Authors
#include "index/lur_tree.h"

namespace octopus {

void LURTree::Build(const TetraMesh& mesh) {
  std::vector<RTree::Entry> entries;
  entries.reserve(mesh.num_vertices());
  for (size_t v = 0; v < mesh.num_vertices(); ++v) {
    const Vec3& p = mesh.position(static_cast<VertexId>(v));
    entries.push_back({static_cast<VertexId>(v), AABB(p, p)});
  }
  tree_.BulkLoad(std::move(entries));
  last_positions_ = mesh.positions();
}

void LURTree::BeforeQueries(const TetraMesh& mesh) {
  const std::vector<Vec3>& current = mesh.positions();
  size_t updates = 0;
  size_t reinserts = 0;
  for (size_t v = 0; v < current.size(); ++v) {
    const Vec3& p = current[v];
    if (v < last_positions_.size() && p == last_positions_[v]) continue;
    ++updates;
    const AABB box(p, p);
    const VertexId id = static_cast<VertexId>(v);
    if (!tree_.TryUpdateInPlace(id, box)) {
      ++reinserts;
      tree_.Delete(id);
      tree_.Insert(id, box);
    }
  }
  // Vertices added by restructuring enter through the same path: the
  // in-place update misses (id unknown), Delete is a no-op, Insert adds.
  last_positions_ = current;
  last_reinsert_fraction_ =
      updates == 0 ? 0.0
                   : static_cast<double>(reinserts) /
                         static_cast<double>(updates);
}

void LURTree::RangeQuery(const TetraMesh& mesh, const AABB& box,
                         std::vector<VertexId>* out) const {
  (void)mesh;  // entry boxes are the exact current positions
  tree_.QueryIds(box, out);
}

size_t LURTree::FootprintBytes() const {
  return tree_.FootprintBytes() + last_positions_.capacity() * sizeof(Vec3);
}

}  // namespace octopus
