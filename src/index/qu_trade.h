// Copyright 2026 The OCTOPUS Reproduction Authors
// QU-Trade baseline (Tzoumas, Yiu & Jensen, "Workload-aware indexing of
// continuously moving objects", VLDB 2009): instead of the object position,
// the R-tree indexes a *grace window* around it. Updates that stay inside
// the window cost nothing; queries must fetch candidates and filter by the
// actual current position. Growing/shrinking the window trades update cost
// against query cost.
#ifndef OCTOPUS_INDEX_QU_TRADE_H_
#define OCTOPUS_INDEX_QU_TRADE_H_

#include <vector>

#include "index/rtree.h"
#include "index/spatial_index.h"

namespace octopus {

/// \brief Grace-window R-tree over the vertex positions.
class QUTrade : public SpatialIndex {
 public:
  struct Options {
    RTree::Options rtree;
    /// Initial grace-window half-extent as a multiple of the first step's
    /// maximum displacement (tuned up at Build/first steps).
    float initial_window = 0.0f;  // 0 = derive from data at first step
    /// Target fraction of updates allowed to trigger R-tree maintenance
    /// (the paper tunes "fewer than 1% of the location updates").
    double target_trigger_rate = 0.01;
    /// Multiplicative adaptation step for the window size.
    double adapt_factor = 1.3;
    bool adaptive = true;
  };

  QUTrade();  // default options
  explicit QUTrade(Options options) : options_(options) {}

  std::string Name() const override { return "QU-Trade"; }
  void Build(const TetraMesh& mesh) override;
  void BeforeQueries(const TetraMesh& mesh) override;
  void RangeQuery(const TetraMesh& mesh, const AABB& box,
                  std::vector<VertexId>* out) const override;
  size_t FootprintBytes() const override;

  float window() const { return window_; }
  double last_trigger_rate() const { return last_trigger_rate_; }
  const RTree& tree() const { return tree_; }

 private:
  void RebuildAll(const TetraMesh& mesh);

  Options options_;
  RTree tree_{options_.rtree};
  float window_ = 0.0f;
  // Grace boxes mirrored outside the tree for O(1) containment checks.
  std::vector<AABB> grace_;
  double last_trigger_rate_ = 0.0;
};

}  // namespace octopus

#endif  // OCTOPUS_INDEX_QU_TRADE_H_
