// Copyright 2026 The OCTOPUS Reproduction Authors
#include "index/uniform_grid.h"

#include <algorithm>
#include <cassert>

namespace octopus {

int UniformGrid::CellCoord(float v, float lo, float inv_cell) const {
  const int c = static_cast<int>((v - lo) * inv_cell);
  return std::clamp(c, 0, resolution_ - 1);
}

void UniformGrid::Build(const std::vector<Vec3>& points, const AABB& bounds) {
  assert(resolution_ >= 1);
  bounds_ = bounds.Empty() ? AABB() : bounds;
  if (bounds_.Empty()) {
    for (const Vec3& p : points) bounds_.Extend(p);
  }
  const size_t num_cells =
      static_cast<size_t>(resolution_) * resolution_ * resolution_;
  offsets_.assign(num_cells + 1, 0);
  ids_.assign(points.size(), 0);
  if (points.empty()) return;

  const Vec3 ext = bounds_.Extent();
  inv_cell_ = Vec3(ext.x > 0 ? resolution_ / ext.x : 0.0f,
                   ext.y > 0 ? resolution_ / ext.y : 0.0f,
                   ext.z > 0 ? resolution_ / ext.z : 0.0f);

  // Counting sort of points into cells (CSR layout).
  auto cell_of = [this](const Vec3& p) {
    return CellIndex(CellCoord(p.x, bounds_.min.x, inv_cell_.x),
                     CellCoord(p.y, bounds_.min.y, inv_cell_.y),
                     CellCoord(p.z, bounds_.min.z, inv_cell_.z));
  };
  for (const Vec3& p : points) ++offsets_[cell_of(p) + 1];
  for (size_t c = 1; c <= num_cells; ++c) offsets_[c] += offsets_[c - 1];
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (size_t i = 0; i < points.size(); ++i) {
    ids_[cursor[cell_of(points[i])]++] = static_cast<VertexId>(i);
  }
}

VertexId UniformGrid::FindNearbyVertex(const Vec3& p) const {
  if (ids_.empty()) return kInvalidVertex;
  const int cx = CellCoord(p.x, bounds_.min.x, inv_cell_.x);
  const int cy = CellCoord(p.y, bounds_.min.y, inv_cell_.y);
  const int cz = CellCoord(p.z, bounds_.min.z, inv_cell_.z);

  // Growing Chebyshev shells around the home cell. The grid is non-empty,
  // so a shell radius of at most `resolution_` always finds a vertex.
  for (int r = 0; r < resolution_; ++r) {
    for (int dz = -r; dz <= r; ++dz) {
      const int z = cz + dz;
      if (z < 0 || z >= resolution_) continue;
      for (int dy = -r; dy <= r; ++dy) {
        const int y = cy + dy;
        if (y < 0 || y >= resolution_) continue;
        for (int dx = -r; dx <= r; ++dx) {
          // Only the shell boundary (interior was scanned at smaller r).
          if (std::max({std::abs(dx), std::abs(dy), std::abs(dz)}) != r) {
            continue;
          }
          const int x = cx + dx;
          if (x < 0 || x >= resolution_) continue;
          const size_t c = CellIndex(x, y, z);
          if (offsets_[c + 1] > offsets_[c]) {
            return ids_[offsets_[c]];
          }
        }
      }
    }
  }
  return kInvalidVertex;
}

void UniformGrid::CollectCandidates(const AABB& box,
                                    std::vector<VertexId>* out) const {
  if (ids_.empty()) return;
  const int x0 = CellCoord(box.min.x, bounds_.min.x, inv_cell_.x);
  const int x1 = CellCoord(box.max.x, bounds_.min.x, inv_cell_.x);
  const int y0 = CellCoord(box.min.y, bounds_.min.y, inv_cell_.y);
  const int y1 = CellCoord(box.max.y, bounds_.min.y, inv_cell_.y);
  const int z0 = CellCoord(box.min.z, bounds_.min.z, inv_cell_.z);
  const int z1 = CellCoord(box.max.z, bounds_.min.z, inv_cell_.z);
  for (int z = z0; z <= z1; ++z) {
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        const size_t c = CellIndex(x, y, z);
        out->insert(out->end(), ids_.begin() + offsets_[c],
                    ids_.begin() + offsets_[c + 1]);
      }
    }
  }
}

}  // namespace octopus
