// Copyright 2026 The OCTOPUS Reproduction Authors
// In-memory R-tree over (id, box) entries. This is the shared substrate of
// the two moving-object baselines: the LUR-Tree (Kwon et al., MDM '02)
// indexes vertex positions directly and patches them in place while they
// stay inside their leaf MBR; QU-Trade (Tzoumas et al., VLDB '09) indexes
// inflated "grace windows" around positions. Both use the same R-tree with
// fanout 110 in the paper (Sec. V-A).
#ifndef OCTOPUS_INDEX_RTREE_H_
#define OCTOPUS_INDEX_RTREE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/aabb.h"
#include "mesh/types.h"

namespace octopus {

/// \brief Array-based R-tree with STR bulk loading, insert, delete and
/// LUR-style in-place updates.
///
/// Simplifications relative to a disk R-tree, documented for honesty:
/// * Deletion does not shrink ancestor MBRs (they stay *covering*, which
///   preserves query correctness; stale MBRs only cost query time) and
///   does not condense underfull nodes.
/// * Node split sorts entries on the widest MBR axis and cuts in half
///   (linear-cost split).
class RTree {
 public:
  struct Options {
    int fanout = 110;  ///< max entries per node (paper's tuned value)
  };

  struct Entry {
    VertexId id;
    AABB box;
  };

  RTree();  // default options
  explicit RTree(Options options) : options_(options) {}

  void Clear();

  /// Bulk loads with Sort-Tile-Recursive packing. Replaces any content.
  void BulkLoad(std::vector<Entry> entries);

  /// Inserts an entry (id must not currently be present).
  void Insert(VertexId id, const AABB& box);

  /// Removes the entry with `id`; false if not present.
  bool Delete(VertexId id);

  /// LUR-Tree fast path: if `new_box` lies inside the MBR of the leaf that
  /// holds `id`, overwrite the entry box without any structural change and
  /// return true. Otherwise return false (caller must Delete + Insert).
  bool TryUpdateInPlace(VertexId id, const AABB& new_box);

  /// Pointer to the stored box of `id`, or nullptr. Invalidated by any
  /// mutation.
  const AABB* FindEntryBox(VertexId id) const;

  /// Appends all entries whose box intersects `query`.
  void Query(const AABB& query, std::vector<Entry>* out) const;
  /// Appends only the ids of intersecting entries.
  void QueryIds(const AABB& query, std::vector<VertexId>* out) const;

  size_t num_entries() const { return leaf_of_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  int height() const;
  size_t FootprintBytes() const;

  /// Internal invariant check for tests: every entry is covered by its
  /// leaf MBR and every node MBR by its parent's. O(size).
  bool CheckInvariants() const;

 private:
  struct Node {
    AABB mbr;
    int32_t parent = -1;
    bool is_leaf = true;
    std::vector<int32_t> children;  // internal nodes
    std::vector<Entry> entries;     // leaf nodes
  };

  int32_t NewNode(bool is_leaf);
  int32_t ChooseLeaf(const AABB& box) const;
  void ExtendUpward(int32_t node, const AABB& box);
  void SplitIfOverflowing(int32_t node);
  void RegisterEntries(int32_t leaf);
  static int WidestAxis(const AABB& box);

  Options options_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  std::unordered_map<VertexId, int32_t> leaf_of_;
};

}  // namespace octopus

#endif  // OCTOPUS_INDEX_RTREE_H_
