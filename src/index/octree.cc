// Copyright 2026 The OCTOPUS Reproduction Authors
#include "index/octree.h"

#include <algorithm>
#include <cassert>

namespace octopus {

Octree::Octree() : options_(Options{}) {}

void Octree::Build(const std::vector<Vec3>& points, const AABB& bounds) {
  nodes_.clear();
  ids_.resize(points.size());
  coords_.assign(points.begin(), points.end());
  for (size_t i = 0; i < points.size(); ++i) {
    ids_[i] = static_cast<VertexId>(i);
  }

  AABB root_box = bounds;
  if (root_box.Empty()) {
    for (const Vec3& p : points) root_box.Extend(p);
  }
  Node root;
  root.box = root_box;
  root.begin = 0;
  root.end = static_cast<uint32_t>(points.size());
  nodes_.push_back(root);
  if (!points.empty()) BuildNode(0, 0);
}

void Octree::BuildNode(uint32_t node_index, int depth) {
  // NOTE: nodes_ may reallocate inside recursion; re-read by index.
  const uint32_t begin = nodes_[node_index].begin;
  const uint32_t end = nodes_[node_index].end;
  if (end - begin <= static_cast<uint32_t>(options_.bucket_size) ||
      depth >= options_.max_depth) {
    return;
  }
  const AABB box = nodes_[node_index].box;
  const Vec3 center = box.Center();

  // In-place partition into 8 octants: split by x, then y within each
  // half, then z within each quarter. Keeps ids_/coords_ in sync.
  auto partition = [this](uint32_t lo, uint32_t hi, auto pred) -> uint32_t {
    uint32_t i = lo;
    for (uint32_t j = lo; j < hi; ++j) {
      if (pred(coords_[j])) {
        std::swap(coords_[i], coords_[j]);
        std::swap(ids_[i], ids_[j]);
        ++i;
      }
    }
    return i;
  };

  uint32_t cut[9];
  cut[0] = begin;
  cut[8] = end;
  cut[4] = partition(begin, end,
                     [&](const Vec3& p) { return p.x < center.x; });
  cut[2] = partition(cut[0], cut[4],
                     [&](const Vec3& p) { return p.y < center.y; });
  cut[6] = partition(cut[4], cut[8],
                     [&](const Vec3& p) { return p.y < center.y; });
  cut[1] = partition(cut[0], cut[2],
                     [&](const Vec3& p) { return p.z < center.z; });
  cut[3] = partition(cut[2], cut[4],
                     [&](const Vec3& p) { return p.z < center.z; });
  cut[5] = partition(cut[4], cut[6],
                     [&](const Vec3& p) { return p.z < center.z; });
  cut[7] = partition(cut[6], cut[8],
                     [&](const Vec3& p) { return p.z < center.z; });

  const int32_t first_child = static_cast<int32_t>(nodes_.size());
  nodes_[node_index].first_child = first_child;
  for (int c = 0; c < 8; ++c) {
    // Octant index c = (xhi<<2) | (yhi<<1) | zhi matching the cuts above.
    const bool xhi = (c & 4) != 0;
    const bool yhi = (c & 2) != 0;
    const bool zhi = (c & 1) != 0;
    Node child;
    child.box.min = Vec3(xhi ? center.x : box.min.x,
                         yhi ? center.y : box.min.y,
                         zhi ? center.z : box.min.z);
    child.box.max = Vec3(xhi ? box.max.x : center.x,
                         yhi ? box.max.y : center.y,
                         zhi ? box.max.z : center.z);
    child.begin = cut[c];
    child.end = cut[c + 1];
    nodes_.push_back(child);
  }
  for (int c = 0; c < 8; ++c) {
    if (nodes_[first_child + c].end > nodes_[first_child + c].begin) {
      BuildNode(first_child + c, depth + 1);
    }
  }
}

void Octree::QueryNode(uint32_t node_index, const AABB& box,
                       std::vector<VertexId>* out) const {
  const Node& node = nodes_[node_index];
  if (node.begin == node.end || !box.Intersects(node.box)) return;
  if (box.Contains(node.box)) {
    // Whole subtree inside the query: bulk-append its contiguous range.
    out->insert(out->end(), ids_.begin() + node.begin,
                ids_.begin() + node.end);
    return;
  }
  if (node.first_child < 0) {
    for (uint32_t i = node.begin; i < node.end; ++i) {
      if (box.Contains(coords_[i])) out->push_back(ids_[i]);
    }
    return;
  }
  for (int c = 0; c < 8; ++c) {
    QueryNode(node.first_child + c, box, out);
  }
}

void Octree::Query(const AABB& box, std::vector<VertexId>* out) const {
  if (nodes_.empty()) return;
  QueryNode(0, box, out);
}

size_t Octree::FootprintBytes() const {
  return nodes_.capacity() * sizeof(Node) +
         ids_.capacity() * sizeof(VertexId) +
         coords_.capacity() * sizeof(Vec3);
}

}  // namespace octopus
