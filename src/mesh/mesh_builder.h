// Copyright 2026 The OCTOPUS Reproduction Authors
// Incremental construction of TetraMesh instances; used by the synthetic
// dataset generators and the binary loader.
#ifndef OCTOPUS_MESH_MESH_BUILDER_H_
#define OCTOPUS_MESH_MESH_BUILDER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/vec3.h"
#include "mesh/tetra_mesh.h"
#include "mesh/types.h"

namespace octopus {

/// \brief Accumulates vertices and tetrahedra, validates, then builds the
/// CSR-form `TetraMesh` in one shot.
class MeshBuilder {
 public:
  MeshBuilder() = default;

  /// Reserve capacity upfront when the generator knows the final size.
  void Reserve(size_t vertices, size_t tets);

  /// Appends a vertex, returns its id.
  VertexId AddVertex(const Vec3& p);

  /// Appends a tetrahedron over four previously added, distinct vertices.
  void AddTet(VertexId a, VertexId b, VertexId c, VertexId d);

  size_t num_vertices() const { return positions_.size(); }
  size_t num_tets() const { return tets_.size(); }

  /// Validates (ids in range, no degenerate tets, no orphan vertices) and
  /// produces the mesh. The builder is left empty afterwards.
  Result<TetraMesh> Build();

 private:
  std::vector<Vec3> positions_;
  std::vector<Tet> tets_;
};

/// \brief Helper that deduplicates vertices on an integer lattice.
///
/// The voxel-mask generators emit each grid corner once per incident cell;
/// this maps lattice coordinates to a single VertexId.
class LatticeVertexMap {
 public:
  explicit LatticeVertexMap(MeshBuilder* builder) : builder_(builder) {}

  /// Returns the id for lattice point (i, j, k), creating the vertex at
  /// `position` on first use.
  VertexId GetOrCreate(int32_t i, int32_t j, int32_t k, const Vec3& position);

  size_t size() const { return map_.size(); }

 private:
  static uint64_t Key(int32_t i, int32_t j, int32_t k) {
    // 21 bits per axis, offset to keep coordinates non-negative.
    const uint64_t bias = 1u << 20;
    return ((static_cast<uint64_t>(i) + bias) << 42) |
           ((static_cast<uint64_t>(j) + bias) << 21) |
           (static_cast<uint64_t>(k) + bias);
  }

  MeshBuilder* builder_;
  std::unordered_map<uint64_t, VertexId> map_;
};

}  // namespace octopus

#endif  // OCTOPUS_MESH_MESH_BUILDER_H_
