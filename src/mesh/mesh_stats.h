// Copyright 2026 The OCTOPUS Reproduction Authors
// Dataset characterization in the units of the paper's Figs. 4, 8 and 14:
// size, #tetrahedra, #vertices, mesh degree M, surface-to-volume ratio S.
#ifndef OCTOPUS_MESH_MESH_STATS_H_
#define OCTOPUS_MESH_MESH_STATS_H_

#include <cstddef>

#include "common/aabb.h"
#include "mesh/tetra_mesh.h"

namespace octopus {

/// \brief Characterization of one dataset.
struct MeshStats {
  size_t num_vertices = 0;
  size_t num_tetrahedra = 0;
  size_t num_edges = 0;
  size_t num_surface_vertices = 0;
  /// Average number of edges per vertex (the model's M).
  double mesh_degree = 0.0;
  /// Surface vertices / total vertices (the model's S).
  double surface_to_volume = 0.0;
  /// Bytes of the in-memory representation (positions + adjacency + tets).
  size_t memory_bytes = 0;
  AABB bounds;
};

/// Computes all statistics in one pass over the mesh (plus one surface
/// extraction).
MeshStats ComputeMeshStats(const TetraMesh& mesh);

}  // namespace octopus

#endif  // OCTOPUS_MESH_MESH_STATS_H_
