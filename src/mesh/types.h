// Copyright 2026 The OCTOPUS Reproduction Authors
// Fundamental identifier types shared by the mesh substrate and indexes.
#ifndef OCTOPUS_MESH_TYPES_H_
#define OCTOPUS_MESH_TYPES_H_

#include <array>
#include <cstdint>
#include <limits>

namespace octopus {

/// Index of a vertex in a `TetraMesh`. 32 bits bound meshes to ~4.2 billion
/// vertices, comfortably above what fits in memory at our scale.
using VertexId = uint32_t;

/// Index of a tetrahedron in a `TetraMesh`.
using TetId = uint32_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr TetId kInvalidTet = std::numeric_limits<TetId>::max();

/// A tetrahedron as the ids of its four corner vertices.
using Tet = std::array<VertexId, 4>;

/// A triangular face as sorted corner ids; sorting makes the key canonical
/// so the two copies of a face shared by adjacent tetrahedra compare equal.
using FaceKey = std::array<VertexId, 3>;

/// Canonicalizes three vertex ids into a `FaceKey` (ascending order).
inline FaceKey MakeFaceKey(VertexId a, VertexId b, VertexId c) {
  if (a > b) {
    const VertexId t = a;
    a = b;
    b = t;
  }
  if (b > c) {
    const VertexId t = b;
    b = c;
    c = t;
  }
  if (a > b) {
    const VertexId t = a;
    a = b;
    b = t;
  }
  return {a, b, c};
}

struct FaceKeyHash {
  size_t operator()(const FaceKey& f) const {
    // 3x fmix-style avalanche; cheap and well distributed for dense ids.
    uint64_t h = 0x9E3779B97F4A7C15ull;
    for (VertexId v : f) {
      uint64_t k = v;
      k *= 0xFF51AFD7ED558CCDull;
      k ^= k >> 33;
      h = (h ^ k) * 0xC4CEB9FE1A85EC53ull;
    }
    return static_cast<size_t>(h ^ (h >> 29));
  }
};

/// The four faces of tet (v0, v1, v2, v3), each canonicalized.
inline std::array<FaceKey, 4> TetFaces(const Tet& t) {
  return {MakeFaceKey(t[0], t[1], t[2]), MakeFaceKey(t[0], t[1], t[3]),
          MakeFaceKey(t[0], t[2], t[3]), MakeFaceKey(t[1], t[2], t[3])};
}

}  // namespace octopus

#endif  // OCTOPUS_MESH_TYPES_H_
