// Copyright 2026 The OCTOPUS Reproduction Authors
#include "mesh/hilbert_layout.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/hilbert.h"

namespace octopus {

VertexPermutation ComputeHilbertOrder(const TetraMesh& mesh, int bits) {
  const size_t v_count = mesh.num_vertices();
  const AABB bounds = mesh.ComputeBounds();
  if (bits <= 0) {
    // ~2 curve cells per axis per cbrt(V) vertices.
    const double per_axis = 2.0 * std::cbrt(static_cast<double>(v_count));
    bits = 1;
    while ((1 << bits) < per_axis && bits < 21) ++bits;
  }
  const HilbertCurve3D curve(bits);

  std::vector<uint64_t> keys(v_count);
  for (size_t v = 0; v < v_count; ++v) {
    keys[v] = curve.EncodePoint(mesh.position(static_cast<VertexId>(v)),
                                bounds);
  }

  VertexPermutation perm;
  perm.new_to_old.resize(v_count);
  for (size_t v = 0; v < v_count; ++v) {
    perm.new_to_old[v] = static_cast<VertexId>(v);
  }
  std::stable_sort(perm.new_to_old.begin(), perm.new_to_old.end(),
                   [&](VertexId a, VertexId b) { return keys[a] < keys[b]; });
  perm.old_to_new.resize(v_count);
  for (size_t new_id = 0; new_id < v_count; ++new_id) {
    perm.old_to_new[perm.new_to_old[new_id]] =
        static_cast<VertexId>(new_id);
  }
  return perm;
}

TetraMesh ApplyPermutation(const TetraMesh& mesh,
                           const VertexPermutation& permutation) {
  assert(permutation.size() == mesh.num_vertices());
  std::vector<Vec3> positions(mesh.num_vertices());
  for (size_t new_id = 0; new_id < positions.size(); ++new_id) {
    positions[new_id] = mesh.position(permutation.new_to_old[new_id]);
  }
  std::vector<Tet> tets;
  tets.reserve(mesh.num_tetrahedra());
  for (const Tet& t : mesh.tetrahedra()) {
    tets.push_back(Tet{permutation.old_to_new[t[0]],
                       permutation.old_to_new[t[1]],
                       permutation.old_to_new[t[2]],
                       permutation.old_to_new[t[3]]});
  }
  return TetraMesh(std::move(positions), std::move(tets));
}

}  // namespace octopus
