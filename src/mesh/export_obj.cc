// Copyright 2026 The OCTOPUS Reproduction Authors
#include "mesh/export_obj.h"

#include <cstdio>
#include <memory>
#include <unordered_map>

#include "mesh/surface.h"

namespace octopus {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status ExportSurfaceObj(const TetraMesh& mesh, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IOError("cannot open for write: " + path);

  const SurfaceInfo surface = ExtractSurface(mesh);
  // OBJ indexes are 1-based and must be dense: remap surface vertices.
  std::unordered_map<VertexId, size_t> obj_index;
  obj_index.reserve(surface.surface_vertices.size());
  std::fprintf(f.get(), "# OCTOPUS surface export: %zu vertices, %zu faces\n",
               surface.surface_vertices.size(),
               surface.surface_faces.size());
  for (VertexId v : surface.surface_vertices) {
    const Vec3& p = mesh.position(v);
    obj_index.emplace(v, obj_index.size() + 1);
    if (std::fprintf(f.get(), "v %g %g %g\n", p.x, p.y, p.z) < 0) {
      return Status::IOError("short write: " + path);
    }
  }
  for (const FaceKey& face : surface.surface_faces) {
    if (std::fprintf(f.get(), "f %zu %zu %zu\n", obj_index.at(face[0]),
                     obj_index.at(face[1]), obj_index.at(face[2])) < 0) {
      return Status::IOError("short write: " + path);
    }
  }
  return Status::OK();
}

Status ExportPointsObj(const TetraMesh& mesh,
                       std::span<const VertexId> vertices,
                       const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IOError("cannot open for write: " + path);
  std::fprintf(f.get(), "# OCTOPUS query result export: %zu points\n",
               vertices.size());
  for (VertexId v : vertices) {
    if (v >= mesh.num_vertices()) {
      return Status::InvalidArgument("vertex id out of range in export");
    }
    const Vec3& p = mesh.position(v);
    if (std::fprintf(f.get(), "v %g %g %g\n", p.x, p.y, p.z) < 0) {
      return Status::IOError("short write: " + path);
    }
  }
  for (size_t i = 1; i <= vertices.size(); ++i) {
    if (std::fprintf(f.get(), "p %zu\n", i) < 0) {
      return Status::IOError("short write: " + path);
    }
  }
  return Status::OK();
}

}  // namespace octopus
