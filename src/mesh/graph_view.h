// Copyright 2026 The OCTOPUS Reproduction Authors
// Non-owning view of a mesh's vertex graph (positions + CSR adjacency).
// OCTOPUS's query phases only need this view — the key observation of
// paper Sec. IV-B: "meshes share [the graph structure] independently of
// the particular polyhedral primitives used". Tetrahedral and hexahedral
// meshes both expose it, so the crawler and directed walk are shared.
#ifndef OCTOPUS_MESH_GRAPH_VIEW_H_
#define OCTOPUS_MESH_GRAPH_VIEW_H_

#include <span>

#include "common/vec3.h"
#include "mesh/types.h"

namespace octopus {

/// \brief Cheap, copyable view of vertex positions + adjacency.
///
/// Invalidated by restructuring (arrays may reallocate); take a fresh
/// view after `ApplyRestructure`.
struct MeshGraphView {
  std::span<const Vec3> positions;
  std::span<const uint32_t> adj_offsets;  // size num_vertices() + 1
  std::span<const VertexId> adj;

  size_t num_vertices() const { return positions.size(); }

  const Vec3& position(VertexId v) const { return positions[v]; }

  std::span<const VertexId> neighbors(VertexId v) const {
    return adj.subspan(adj_offsets[v], adj_offsets[v + 1] - adj_offsets[v]);
  }
};

}  // namespace octopus

#endif  // OCTOPUS_MESH_GRAPH_VIEW_H_
