// Copyright 2026 The OCTOPUS Reproduction Authors
// Binary serialization of meshes. Generating the larger synthetic datasets
// takes seconds; benches and examples can cache them on disk. Two formats:
//  * OCT1 (`SaveMesh`/`LoadMesh`): the flat source-of-truth mesh file
//    (positions + tets; adjacency is derived on load).
//  * OCT2 (`SaveSnapshot`/`ConvertMeshToSnapshot`): the paged,
//    query-optimized snapshot the out-of-core engine reads through a
//    buffer pool — see storage/snapshot.h for the layout.
#ifndef OCTOPUS_MESH_MESH_IO_H_
#define OCTOPUS_MESH_MESH_IO_H_

#include <string>

#include "common/status.h"
#include "mesh/tetra_mesh.h"
#include "storage/snapshot.h"

namespace octopus {

/// File layout (little endian):
///   magic "OCT1" | uint64 num_vertices | uint64 num_tets |
///   float32 positions [3 * V] | uint32 tets [4 * T]
/// Adjacency is derived, not stored; `LoadMesh` rebuilds it.
Status SaveMesh(const TetraMesh& mesh, const std::string& path);

Result<TetraMesh> LoadMesh(const std::string& path);

/// Writes the paged OCT2 snapshot of `mesh`: positions, CSR adjacency
/// and the extracted surface vertex list, paged at
/// `options.page_bytes`. With `SnapshotLayout::kHilbert` the vertices
/// are first relabeled along the 3D Hilbert curve (paper Sec. IV-H1), so
/// spatially close vertices share pages and the crawl's random adjacency
/// accesses cluster onto few of them; query results over such a snapshot
/// are in the permuted id space. `mesh` itself is not modified.
Status SaveSnapshot(const TetraMesh& mesh, const std::string& path,
                    const storage::SnapshotOptions& options = {});

/// Loads an OCT1 mesh file and writes its OCT2 snapshot — the
/// `octopus_cli snapshot save` path.
Status ConvertMeshToSnapshot(const std::string& mesh_path,
                             const std::string& snapshot_path,
                             const storage::SnapshotOptions& options = {});

}  // namespace octopus

#endif  // OCTOPUS_MESH_MESH_IO_H_
