// Copyright 2026 The OCTOPUS Reproduction Authors
// Binary serialization of meshes. Generating the larger synthetic datasets
// takes seconds; benches and examples can cache them on disk.
#ifndef OCTOPUS_MESH_MESH_IO_H_
#define OCTOPUS_MESH_MESH_IO_H_

#include <string>

#include "common/status.h"
#include "mesh/tetra_mesh.h"

namespace octopus {

/// File layout (little endian):
///   magic "OCT1" | uint64 num_vertices | uint64 num_tets |
///   float32 positions [3 * V] | uint32 tets [4 * T]
/// Adjacency is derived, not stored; `LoadMesh` rebuilds it.
Status SaveMesh(const TetraMesh& mesh, const std::string& path);

Result<TetraMesh> LoadMesh(const std::string& path);

}  // namespace octopus

#endif  // OCTOPUS_MESH_MESH_IO_H_
