// Copyright 2026 The OCTOPUS Reproduction Authors
// Global face list and mesh-surface extraction (paper Sec. IV-E1): a face
// belongs to the mesh surface iff exactly one tetrahedron contains it.
#ifndef OCTOPUS_MESH_SURFACE_H_
#define OCTOPUS_MESH_SURFACE_H_

#include <unordered_map>
#include <vector>

#include "mesh/tetra_mesh.h"
#include "mesh/types.h"

namespace octopus {

/// \brief Result of a surface extraction pass.
struct SurfaceInfo {
  /// Sorted, unique ids of vertices lying on at least one surface face.
  std::vector<VertexId> surface_vertices;
  /// All surface faces (canonicalized corner triples).
  std::vector<FaceKey> surface_faces;
};

/// Extracts the surface by constructing the global face list and keeping
/// faces that occur exactly once. O(#tets) time, O(#faces) transient memory.
SurfaceInfo ExtractSurface(const TetraMesh& mesh);

/// \brief Incremental face-multiplicity registry.
///
/// Maintains, for every face of the mesh, how many tetrahedra contain it
/// (1 = surface face, 2 = interior face). Feeding it `RestructureDelta`s
/// keeps the surface identification current without a full O(#tets) rescan;
/// the `SurfaceIndex` uses the emitted vertex transitions to update its
/// hash table with insert/delete operations (Sec. IV-E2).
class FaceRegistry {
 public:
  /// Per-vertex surface transition caused by a connectivity change.
  struct VertexTransition {
    VertexId vertex;
    bool now_on_surface;  // true = joined surface, false = left surface
  };

  FaceRegistry() = default;

  /// Builds the registry (and per-vertex surface-face counts) from scratch.
  void Build(const TetraMesh& mesh);

  /// Applies a connectivity delta; appends every vertex whose surface
  /// membership changed to `transitions` (each vertex at most once).
  void ApplyDelta(const RestructureDelta& delta,
                  std::vector<VertexTransition>* transitions);

  /// True if `v` currently lies on >= 1 surface face.
  bool IsSurfaceVertex(VertexId v) const {
    auto it = surface_face_count_.find(v);
    return it != surface_face_count_.end() && it->second > 0;
  }

  size_t num_faces() const { return face_count_.size(); }
  size_t num_surface_vertices() const;

  size_t FootprintBytes() const;

 private:
  void ChangeFace(const FaceKey& face, int delta,
                  std::unordered_map<VertexId, bool>* initial_membership);
  void ChangeVertexSurfaceCount(
      VertexId v, int delta,
      std::unordered_map<VertexId, bool>* initial_membership);

  // face -> number of containing tets (1 or 2 in a well-formed mesh).
  std::unordered_map<FaceKey, uint8_t, FaceKeyHash> face_count_;
  // vertex -> number of surface faces it belongs to.
  std::unordered_map<VertexId, uint32_t> surface_face_count_;
};

}  // namespace octopus

#endif  // OCTOPUS_MESH_SURFACE_H_
