// Copyright 2026 The OCTOPUS Reproduction Authors
// Graph data organization (paper Sec. IV-H1): reorder vertices along the
// 3D Hilbert curve so spatially close vertices are close in memory,
// improving the cache hit rate of the crawl's random adjacency accesses.
#ifndef OCTOPUS_MESH_HILBERT_LAYOUT_H_
#define OCTOPUS_MESH_HILBERT_LAYOUT_H_

#include <vector>

#include "mesh/tetra_mesh.h"
#include "mesh/types.h"

namespace octopus {

/// \brief Bijective vertex relabeling.
struct VertexPermutation {
  /// new id -> old id.
  std::vector<VertexId> new_to_old;
  /// old id -> new id.
  std::vector<VertexId> old_to_new;

  size_t size() const { return new_to_old.size(); }
};

/// Permutation ordering vertices by Hilbert index of their current
/// position. `bits` is the grid precision per axis; 0 (default) picks a
/// resolution matched to the vertex density (about two curve cells per
/// vertex spacing) — much coarser quantization loses locality, much finer
/// makes the curve wiggle below the vertex spacing for no benefit.
VertexPermutation ComputeHilbertOrder(const TetraMesh& mesh, int bits = 0);

/// Rebuilds the mesh with vertices relabeled by `permutation`; positions,
/// tets and adjacency are all remapped. Query results on the new mesh are
/// the old results mapped through `old_to_new`.
TetraMesh ApplyPermutation(const TetraMesh& mesh,
                           const VertexPermutation& permutation);

}  // namespace octopus

#endif  // OCTOPUS_MESH_HILBERT_LAYOUT_H_
