// Copyright 2026 The OCTOPUS Reproduction Authors
#include "mesh/mesh_stats.h"

#include "mesh/surface.h"

namespace octopus {

MeshStats ComputeMeshStats(const TetraMesh& mesh) {
  MeshStats s;
  s.num_vertices = mesh.num_vertices();
  s.num_tetrahedra = mesh.num_tetrahedra();
  s.num_edges = mesh.num_edges();
  s.mesh_degree = mesh.AverageDegree();
  s.memory_bytes = mesh.MemoryBytes();
  s.bounds = mesh.ComputeBounds();
  const SurfaceInfo surface = ExtractSurface(mesh);
  s.num_surface_vertices = surface.surface_vertices.size();
  s.surface_to_volume =
      s.num_vertices == 0
          ? 0.0
          : static_cast<double>(s.num_surface_vertices) /
                static_cast<double>(s.num_vertices);
  return s;
}

}  // namespace octopus
