// Copyright 2026 The OCTOPUS Reproduction Authors
#include "mesh/hexa_mesh.h"

#include <algorithm>
#include <unordered_map>

namespace octopus {

QuadKey MakeQuadKey(VertexId a, VertexId b, VertexId c, VertexId d) {
  QuadKey key{a, b, c, d};
  std::sort(key.begin(), key.end());
  return key;
}

std::array<QuadKey, 6> HexFaces(const HexCell& cell) {
  // A face fixes one lattice axis bit to 0 or 1; its four corners are the
  // cell corners with that bit value.
  std::array<QuadKey, 6> faces;
  int out = 0;
  for (int axis = 0; axis < 3; ++axis) {
    for (int side = 0; side < 2; ++side) {
      VertexId corner[4];
      int n = 0;
      for (int c = 0; c < 8; ++c) {
        if (((c >> axis) & 1) == side) corner[n++] = cell[c];
      }
      faces[out++] = MakeQuadKey(corner[0], corner[1], corner[2], corner[3]);
    }
  }
  return faces;
}

namespace {

// The 12 edges of a hex cell: corner index pairs differing in one bit.
constexpr int kHexEdges[12][2] = {
    {0, 1}, {2, 3}, {4, 5}, {6, 7},  // x edges
    {0, 2}, {1, 3}, {4, 6}, {5, 7},  // y edges
    {0, 4}, {1, 5}, {2, 6}, {3, 7},  // z edges
};

}  // namespace

HexaMesh::HexaMesh(std::vector<Vec3> positions, std::vector<HexCell> cells)
    : positions_(std::move(positions)), cells_(std::move(cells)) {
  const size_t v_count = positions_.size();
  std::vector<uint32_t> counts(v_count + 1, 0);
  for (const HexCell& cell : cells_) {
    for (const auto& e : kHexEdges) {
      ++counts[cell[e[0]] + 1];
      ++counts[cell[e[1]] + 1];
    }
  }
  std::vector<uint32_t> offsets(v_count + 1, 0);
  for (size_t i = 1; i <= v_count; ++i) {
    offsets[i] = offsets[i - 1] + counts[i];
  }
  std::vector<VertexId> scratch(offsets[v_count]);
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const HexCell& cell : cells_) {
    for (const auto& e : kHexEdges) {
      const VertexId a = cell[e[0]];
      const VertexId b = cell[e[1]];
      scratch[cursor[a]++] = b;
      scratch[cursor[b]++] = a;
    }
  }
  adj_offsets_.assign(v_count + 1, 0);
  adj_.clear();
  adj_.reserve(scratch.size() / 2);
  for (size_t v = 0; v < v_count; ++v) {
    auto begin = scratch.begin() + offsets[v];
    auto end = scratch.begin() + offsets[v + 1];
    std::sort(begin, end);
    auto last = std::unique(begin, end);
    adj_offsets_[v] = static_cast<uint32_t>(adj_.size());
    adj_.insert(adj_.end(), begin, last);
  }
  adj_offsets_[v_count] = static_cast<uint32_t>(adj_.size());
  adj_.shrink_to_fit();
}

AABB HexaMesh::ComputeBounds() const {
  AABB box;
  for (const Vec3& p : positions_) box.Extend(p);
  return box;
}

double HexaMesh::AverageDegree() const {
  if (positions_.empty()) return 0.0;
  return static_cast<double>(adj_.size()) /
         static_cast<double>(positions_.size());
}

size_t HexaMesh::MemoryBytes() const {
  return positions_.capacity() * sizeof(Vec3) +
         adj_offsets_.capacity() * sizeof(uint32_t) +
         adj_.capacity() * sizeof(VertexId) +
         cells_.capacity() * sizeof(HexCell);
}

HexSurfaceInfo ExtractHexSurface(const HexaMesh& mesh) {
  std::unordered_map<QuadKey, uint8_t, QuadKeyHash> counts;
  counts.reserve(mesh.num_cells() * 3);
  for (const HexCell& cell : mesh.cells()) {
    for (const QuadKey& f : HexFaces(cell)) {
      ++counts[f];
    }
  }
  HexSurfaceInfo info;
  std::vector<bool> on_surface(mesh.num_vertices(), false);
  for (const auto& [face, count] : counts) {
    if (count == 1) {
      info.surface_faces.push_back(face);
      for (VertexId v : face) on_surface[v] = true;
    }
  }
  for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
    if (on_surface[v]) info.surface_vertices.push_back(v);
  }
  std::sort(info.surface_faces.begin(), info.surface_faces.end());
  return info;
}

}  // namespace octopus
