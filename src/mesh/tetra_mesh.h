// Copyright 2026 The OCTOPUS Reproduction Authors
// The memory-resident simulation mesh: adjacency-list representation as
// described in paper Sec. III-A ("the adjacency list stores for each vertex
// the position as well as pointers to neighboring vertices"; a list of
// polyhedra provides the mapping from polyhedra to vertices).
#ifndef OCTOPUS_MESH_TETRA_MESH_H_
#define OCTOPUS_MESH_TETRA_MESH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/aabb.h"
#include "common/vec3.h"
#include "mesh/graph_view.h"
#include "mesh/types.h"

namespace octopus {

/// \brief Connectivity/geometry delta produced by mesh restructuring.
///
/// Deformation (position-only changes) needs no delta — it writes positions
/// in place. Restructuring (split/merge of polyhedra, Sec. IV-E2) is rare
/// and is communicated to interested indexes (e.g. `SurfaceIndex`) through
/// this structure.
struct RestructureDelta {
  /// Tets added, as vertex quadruples (valid ids in the updated mesh).
  std::vector<Tet> added_tets;
  /// Tets removed, as the vertex quadruples they had before removal.
  std::vector<Tet> removed_tets;
  /// Ids of vertices created by this restructuring step.
  std::vector<VertexId> added_vertices;

  bool Empty() const {
    return added_tets.empty() && removed_tets.empty() &&
           added_vertices.empty();
  }
  void Clear() {
    added_tets.clear();
    removed_tets.clear();
    added_vertices.clear();
  }
};

/// \brief Tetrahedral mesh in struct-of-arrays layout with CSR adjacency.
///
/// * `positions()` — vertex coordinates, overwritten in place by the
///   simulation every time step (mesh deformation).
/// * `neighbors(v)` — ids of vertices connected to `v` by a polyhedron edge;
///   this is the graph OCTOPUS crawls.
/// * `tetrahedra()` — the polyhedron list; used to derive faces/surface.
///
/// Connectivity is immutable through the public API except via
/// `ApplyRestructure`, which also returns the delta needed for incremental
/// surface-index maintenance. CSR adjacency is rebuilt on restructuring;
/// this is acceptable because restructuring is rare (the paper notes it "is
/// rarely implemented in practice").
class TetraMesh {
 public:
  TetraMesh() = default;

  /// Constructs from raw arrays; computes CSR adjacency and incidence
  /// counts. Prefer `MeshBuilder` for assembling meshes piecewise.
  TetraMesh(std::vector<Vec3> positions, std::vector<Tet> tets);

  size_t num_vertices() const { return positions_.size(); }
  size_t num_tetrahedra() const { return tets_.size(); }
  size_t num_edges() const { return adj_.size() / 2; }

  const Vec3& position(VertexId v) const { return positions_[v]; }
  void set_position(VertexId v, const Vec3& p) { positions_[v] = p; }

  const std::vector<Vec3>& positions() const { return positions_; }
  /// Mutable access for deformers: the simulation overwrites positions in
  /// place each step (paper Fig. 1(e)).
  std::vector<Vec3>& mutable_positions() { return positions_; }

  const std::vector<Tet>& tetrahedra() const { return tets_; }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {adj_.data() + adj_offsets_[v],
            adj_.data() + adj_offsets_[v + 1]};
  }

  /// Primitive-agnostic view consumed by the crawler and directed walk.
  /// Invalidated by `ApplyRestructure`.
  MeshGraphView Graph() const {
    return MeshGraphView{positions_, adj_offsets_, adj_};
  }
  size_t degree(VertexId v) const {
    return adj_offsets_[v + 1] - adj_offsets_[v];
  }

  /// Number of tetrahedra incident to `v`. Zero means the vertex is
  /// orphaned (never produced by well-formed construction/restructuring).
  uint32_t incident_tet_count(VertexId v) const { return tet_count_[v]; }

  /// Tight bounding box of the current vertex positions. O(V).
  AABB ComputeBounds() const;

  /// Average vertex degree (the paper's mesh degree M).
  double AverageDegree() const;

  /// Bytes held by positions + adjacency + tet list (the "dataset size").
  size_t MemoryBytes() const;

  // --- Restructuring (rare connectivity changes, Sec. IV-E2) ---

  /// Appends a new vertex; returns its id. Only meaningful as part of a
  /// restructuring transaction (see `Restructurer`).
  VertexId AddVertexForRestructure(const Vec3& p);

  /// Applies a batch of tet insertions/removals, rebuilds adjacency and
  /// incidence counts. `delta.removed_tets` entries must match existing
  /// tets exactly (any corner order); duplicates are not supported.
  /// Returns false (and leaves the mesh untouched) if a removed tet does
  /// not exist or a removal would orphan a vertex.
  bool ApplyRestructure(const RestructureDelta& delta);

 private:
  friend class MeshBuilder;

  void RebuildAdjacency();
  void RebuildTetCounts();

  std::vector<Vec3> positions_;
  std::vector<uint32_t> adj_offsets_;  // size V+1
  std::vector<VertexId> adj_;          // concatenated neighbor lists
  std::vector<Tet> tets_;
  std::vector<uint32_t> tet_count_;  // per-vertex incident tet count
};

}  // namespace octopus

#endif  // OCTOPUS_MESH_TETRA_MESH_H_
