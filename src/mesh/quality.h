// Copyright 2026 The OCTOPUS Reproduction Authors
// Element-quality metrics for deforming tetrahedral meshes. The paper's
// "Mesh Quality" monitoring use case (Sec. III-B) analyzes deformation
// artifacts; these are the metrics such a monitor computes over query
// results, and the invariants our deformers are tested against (a
// deformation that inverts elements would invalidate any simulation).
#ifndef OCTOPUS_MESH_QUALITY_H_
#define OCTOPUS_MESH_QUALITY_H_

#include <cstddef>
#include <span>

#include "mesh/tetra_mesh.h"
#include "mesh/types.h"

namespace octopus {

/// Signed volume of tetrahedron (a, b, c, d): positive iff d lies on the
/// positive side of triangle (a, b, c).
double SignedTetVolume(const Vec3& a, const Vec3& b, const Vec3& c,
                       const Vec3& d);

/// Signed volume of tet `t` under the mesh's current positions.
double SignedTetVolume(const TetraMesh& mesh, const Tet& t);

/// \brief Quality summary of (a subset of) the mesh.
struct QualityReport {
  size_t tets_checked = 0;
  /// Elements whose orientation flipped relative to `reference_signs`
  /// (or, without a reference, whose volume is non-positive).
  size_t inverted = 0;
  /// Elements with |volume| below `degenerate_fraction` x mean |volume|.
  size_t degenerate = 0;
  double min_abs_volume = 0.0;
  double mean_abs_volume = 0.0;

  bool AllValid() const { return inverted == 0 && degenerate == 0; }
};

/// \brief Checks element validity of a deforming mesh.
///
/// Capture the reference orientation signs on the undeformed mesh, then
/// call `Check` after any deformation step: an element whose sign flipped
/// has been turned inside out by the deformation.
class QualityChecker {
 public:
  /// Captures per-tet orientation signs and the volume scale.
  explicit QualityChecker(const TetraMesh& mesh);

  /// Evaluates the current positions. `degenerate_fraction` is the
  /// |volume| threshold relative to the reference mean (default 1%).
  QualityReport Check(const TetraMesh& mesh,
                      double degenerate_fraction = 0.01) const;

  /// Evaluates only the given tets (e.g. those touching a query result) —
  /// what the paper's mesh-quality monitor does region by region.
  QualityReport CheckTets(const TetraMesh& mesh, std::span<const TetId> ids,
                          double degenerate_fraction = 0.01) const;

 private:
  std::vector<int8_t> reference_sign_;  // per tet: +1 / -1
  double reference_mean_abs_volume_ = 0.0;
};

/// Ids of the tetrahedra with at least one corner in `vertex_set` — the
/// bridge from a vertex range-query result to the elements a quality
/// monitor inspects. O(#tets).
std::vector<TetId> TetsTouchingVertices(const TetraMesh& mesh,
                                        std::span<const VertexId> vertices);

}  // namespace octopus

#endif  // OCTOPUS_MESH_QUALITY_H_
