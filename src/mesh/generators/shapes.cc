// Copyright 2026 The OCTOPUS Reproduction Authors
#include "mesh/generators/shapes.h"

#include <algorithm>
#include <cmath>

namespace octopus {

float SquaredDistanceToSegment(const Vec3& p, const Vec3& a, const Vec3& b) {
  const Vec3 ab = b - a;
  const float len2 = ab.SquaredNorm();
  if (len2 == 0.0f) return SquaredDistance(p, a);
  const float t = std::clamp((p - a).Dot(ab) / len2, 0.0f, 1.0f);
  return SquaredDistance(p, a + ab * t);
}

bool ImplicitSolid::Contains(const Vec3& p) const {
  for (const TubeSegment& b : balls_) {
    if (SquaredDistance(p, b.a) <= b.radius * b.radius) return true;
  }
  for (const Ellipsoid& e : ellipsoids_) {
    const Vec3 d = p - e.center;
    const float nx = d.x / e.radii.x;
    const float ny = d.y / e.radii.y;
    const float nz = d.z / e.radii.z;
    if (nx * nx + ny * ny + nz * nz <= 1.0f) return true;
  }
  for (const TubeSegment& t : tubes_) {
    if (SquaredDistanceToSegment(p, t.a, t.b) <= t.radius * t.radius) {
      return true;
    }
  }
  return false;
}

CellMask ImplicitSolid::MakeMask(int nx, int ny, int nz,
                                 const AABB& domain) const {
  const Vec3 ext = domain.Extent();
  const Vec3 cell(ext.x / nx, ext.y / ny, ext.z / nz);
  const Vec3 origin = domain.min + cell * 0.5f;
  // Capture by value: the mask may outlive the solid's enclosing scope.
  ImplicitSolid solid = *this;
  return [solid = std::move(solid), origin, cell](int i, int j, int k) {
    return solid.Contains(
        Vec3(origin.x + i * cell.x, origin.y + j * cell.y,
             origin.z + k * cell.z));
  };
}

namespace {

// Clamps `p` into the ball of radius `max_extent` around `center`.
Vec3 ClampToBall(const Vec3& p, const Vec3& center, float max_extent) {
  const Vec3 d = p - center;
  const float norm = d.Norm();
  if (norm <= max_extent || norm == 0.0f) return p;
  return center + d * (max_extent / norm);
}

// Recursively grows a dendrite: a tube segment, then `depth` levels of two
// children each, shrinking in length and radius. All endpoints stay within
// `max_extent` of the soma center so neighboring cells remain disjoint.
void GrowBranch(const Vec3& from, const Vec3& direction, float length,
                float radius, int depth, const Vec3& soma_center,
                float max_extent, Rng* rng, ImplicitSolid* solid) {
  const Vec3 to =
      ClampToBall(from + direction * length, soma_center, max_extent);
  solid->AddTube(from, to, radius);
  if (depth == 0) return;
  for (int child = 0; child < 2; ++child) {
    // Perturb the parent direction to fan the children out.
    Vec3 d = direction + rng->NextUnitVector() * 0.55f;
    const float n = d.Norm();
    if (n < 1e-6f) d = direction;
    else d = d / n;
    GrowBranch(to, d, length * 0.75f, std::max(radius * 0.85f, 0.008f),
               depth - 1, soma_center, max_extent, rng, solid);
  }
}

}  // namespace

void GrowNeuronCell(const NeuronCellParams& params, ImplicitSolid* solid) {
  solid->AddBall(params.soma_center, params.soma_radius);
  Rng rng(params.seed);
  for (int d = 0; d < params.num_dendrites; ++d) {
    const Vec3 dir = rng.NextUnitVector();
    // Trunks start at the soma boundary, pointing outward.
    const Vec3 start =
        params.soma_center + dir * (params.soma_radius * 0.9f);
    GrowBranch(start, dir, params.trunk_length, params.tube_radius,
               params.branch_depth, params.soma_center, params.max_extent,
               &rng, solid);
  }
}

}  // namespace octopus
