// Copyright 2026 The OCTOPUS Reproduction Authors
#include "mesh/generators/grid_generator.h"

#include <array>

#include "mesh/mesh_builder.h"

namespace octopus {

namespace {

// The six tetrahedra of the Kuhn (Freudenthal) subdivision of a unit cube.
// Cube corners are indexed by the bit pattern (x | y<<1 | z<<2). All six
// tets share the main diagonal 000 -> 111, which makes the subdivision
// conforming across face-adjacent cubes.
constexpr int kKuhnTets[6][4] = {
    {0, 1, 3, 7},  // x, then y, then z
    {0, 1, 5, 7},  // x, z, y
    {0, 2, 3, 7},  // y, x, z
    {0, 2, 6, 7},  // y, z, x
    {0, 4, 5, 7},  // z, x, y
    {0, 4, 6, 7},  // z, y, x
};

}  // namespace

Result<TetraMesh> GenerateMaskedGrid(int nx, int ny, int nz,
                                     const AABB& domain,
                                     const CellMask& mask) {
  if (nx < 1 || ny < 1 || nz < 1) {
    return Status::InvalidArgument("grid resolution must be >= 1 per axis");
  }
  if (domain.Empty()) {
    return Status::InvalidArgument("domain box is empty");
  }
  MeshBuilder builder;
  LatticeVertexMap lattice(&builder);
  const Vec3 ext = domain.Extent();
  const Vec3 cell(ext.x / nx, ext.y / ny, ext.z / nz);

  auto corner_position = [&](int i, int j, int k) {
    return Vec3(domain.min.x + i * cell.x, domain.min.y + j * cell.y,
                domain.min.z + k * cell.z);
  };

  size_t active_cells = 0;
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        if (!mask(i, j, k)) continue;
        ++active_cells;
        // The 8 cube corners, lattice-deduplicated.
        VertexId corner_id[8];
        for (int c = 0; c < 8; ++c) {
          const int ci = i + (c & 1);
          const int cj = j + ((c >> 1) & 1);
          const int ck = k + ((c >> 2) & 1);
          corner_id[c] =
              lattice.GetOrCreate(ci, cj, ck, corner_position(ci, cj, ck));
        }
        for (const auto& t : kKuhnTets) {
          builder.AddTet(corner_id[t[0]], corner_id[t[1]], corner_id[t[2]],
                         corner_id[t[3]]);
        }
      }
    }
  }
  if (active_cells == 0) {
    return Status::InvalidArgument("mask selects no cells");
  }
  return builder.Build();
}

Result<TetraMesh> GenerateBoxMesh(int nx, int ny, int nz, const AABB& domain) {
  return GenerateMaskedGrid(nx, ny, nz, domain,
                            [](int, int, int) { return true; });
}

}  // namespace octopus
