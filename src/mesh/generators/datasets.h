// Copyright 2026 The OCTOPUS Reproduction Authors
// Catalog of synthetic datasets mirroring the paper's evaluation datasets:
//  * 5 neuroscience meshes of increasing detail (paper Fig. 4),
//  * 2 convex earthquake-basin meshes SF2/SF1 (paper Fig. 8),
//  * 3 deforming animation meshes (paper Fig. 14).
//
// The paper's datasets are proprietary (Blue Brain neuron meshes, the
// Archimedes LA-basin meshes, Sumner & Popovic animations); we substitute
// procedural analogs that preserve the parameters the analytical model
// says matter — mesh degree M, surface-to-volume ratio S (trend and
// ordering), vertex/tet count ratios — at ~1/1000 scale (see DESIGN.md).
#ifndef OCTOPUS_MESH_GENERATORS_DATASETS_H_
#define OCTOPUS_MESH_GENERATORS_DATASETS_H_

#include <string>

#include "common/status.h"
#include "mesh/tetra_mesh.h"

namespace octopus {

/// Number of neuroscience detail levels (paper Fig. 4 rows).
inline constexpr int kNumNeuroLevels = 5;

/// \brief Two-cell branching neuron mesh at detail `level` in [0, 5).
///
/// Non-convex and disconnected (two cells), the worst case OCTOPUS must
/// handle via the surface probe. `scale` multiplies the target vertex
/// count (resolution scales with cbrt(scale)).
Result<TetraMesh> MakeNeuroMesh(int level, double scale = 1.0);

enum class EarthquakeResolution {
  kSF2,  ///< coarse basin slab (paper: 0.38M vertices, S:V 0.16)
  kSF1,  ///< fine basin slab (paper: 2.46M vertices, S:V 0.09)
};

/// \brief Convex basin-slab mesh (earthquake simulation analog).
Result<TetraMesh> MakeEarthquakeMesh(EarthquakeResolution res,
                                     double scale = 1.0);

enum class AnimationDataset {
  kHorseGallop,       ///< capsule body (paper: 20.0M verts, S:V 0.023)
  kFacialExpression,  ///< large ball head (paper: 83.6M verts, S:V 0.010)
  kCamelCompress,     ///< ellipsoid body (paper: 39.8M verts, S:V 0.019)
};

/// \brief Volumetric animation mesh analog.
Result<TetraMesh> MakeAnimationMesh(AnimationDataset which,
                                    double scale = 1.0);

/// Number of animation frames in the corresponding paper dataset
/// (horse 48, face 9, camel 53) — used as simulation step counts.
int AnimationTimeSteps(AnimationDataset which);

/// Human-readable dataset names for table output.
std::string NeuroMeshName(int level);
std::string EarthquakeMeshName(EarthquakeResolution res);
std::string AnimationMeshName(AnimationDataset which);

}  // namespace octopus

#endif  // OCTOPUS_MESH_GENERATORS_DATASETS_H_
