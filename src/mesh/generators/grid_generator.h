// Copyright 2026 The OCTOPUS Reproduction Authors
// Voxel-mask tetrahedral mesh generator: the workhorse behind every
// synthetic dataset. A domain box is divided into nx*ny*nz cells; each cell
// selected by the mask is subdivided into 6 tetrahedra (Kuhn subdivision).
//
// Kuhn subdivision is conforming across cells and yields the ~14 average
// vertex degree the paper reports for tetrahedral meshes (citing
// O'Hallaron's FEM mesh family), so the model parameter M matches.
#ifndef OCTOPUS_MESH_GENERATORS_GRID_GENERATOR_H_
#define OCTOPUS_MESH_GENERATORS_GRID_GENERATOR_H_

#include <functional>

#include "common/aabb.h"
#include "common/status.h"
#include "mesh/tetra_mesh.h"

namespace octopus {

/// Decides whether grid cell (i, j, k) is part of the meshed domain.
using CellMask = std::function<bool(int i, int j, int k)>;

/// \brief Generates a tetrahedral mesh over the cells selected by `mask`.
///
/// Vertices are created on the lattice of cell corners (shared between
/// adjacent active cells), positions mapped into `domain`. Fails if no cell
/// is active.
Result<TetraMesh> GenerateMaskedGrid(int nx, int ny, int nz,
                                     const AABB& domain, const CellMask& mask);

/// Convex box mesh over the full grid (earthquake-style datasets).
Result<TetraMesh> GenerateBoxMesh(int nx, int ny, int nz, const AABB& domain);

}  // namespace octopus

#endif  // OCTOPUS_MESH_GENERATORS_GRID_GENERATOR_H_
