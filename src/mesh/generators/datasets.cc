// Copyright 2026 The OCTOPUS Reproduction Authors
#include "mesh/generators/datasets.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "mesh/generators/grid_generator.h"
#include "mesh/generators/shapes.h"

namespace octopus {

namespace {

// Grid resolutions tuned so vertex counts land at ~1/1000 of the paper's
// Fig. 4 rows (20.5k, 27.4k, 41.1k, 82.7k, 208k vertices).
constexpr int kNeuroResolution[kNumNeuroLevels] = {67, 74, 85, 107, 146};

int Scaled(int base, double scale) {
  const int n = static_cast<int>(std::lround(base * std::cbrt(scale)));
  return n < 2 ? 2 : n;
}

ImplicitSolid MakeTwoCellNeuronSolid(int grid_resolution) {
  // Dendrite tubes must span at least ~2 grid cells or voxelization breaks
  // them into disconnected specks at coarse resolutions.
  const float tube_radius =
      std::max(0.035f, 2.2f / static_cast<float>(grid_resolution));

  ImplicitSolid solid;
  NeuronCellParams cell_a;
  cell_a.soma_center = Vec3(0.25f, 0.28f, 0.28f);
  cell_a.soma_radius = 0.20f;
  cell_a.tube_radius = tube_radius;
  cell_a.max_extent = 0.26f;
  cell_a.seed = 11;
  GrowNeuronCell(cell_a, &solid);

  NeuronCellParams cell_b;
  cell_b.soma_center = Vec3(0.75f, 0.72f, 0.72f);
  cell_b.soma_radius = 0.20f;
  cell_b.tube_radius = tube_radius;
  cell_b.max_extent = 0.26f;
  cell_b.seed = 23;
  GrowNeuronCell(cell_b, &solid);
  // Soma centers are ~0.81 apart while each cell reaches at most
  // max_extent + tube_radius (< 0.36), so the two cells stay disjoint at
  // every resolution: the dataset is non-convex AND disconnected, the
  // hardest case for connectivity-based query execution (paper Fig. 3).
  return solid;
}

}  // namespace

Result<TetraMesh> MakeNeuroMesh(int level, double scale) {
  if (level < 0 || level >= kNumNeuroLevels) {
    return Status::InvalidArgument("neuro level out of range [0, 5)");
  }
  const int n = Scaled(kNeuroResolution[level], scale);
  const AABB domain(Vec3(0, 0, 0), Vec3(1, 1, 1));
  const ImplicitSolid solid = MakeTwoCellNeuronSolid(n);
  return GenerateMaskedGrid(n, n, n, domain, solid.MakeMask(n, n, n, domain));
}

Result<TetraMesh> MakeEarthquakeMesh(EarthquakeResolution res, double scale) {
  // A basin is a wide, shallow slab; the slab thickness (in cells) sets the
  // surface-to-volume ratio (~2/thickness), tuned to the paper's 0.16/0.09.
  int nx, nz;
  if (res == EarthquakeResolution::kSF2) {
    nx = 60;
    nz = 12;
  } else {
    nx = 110;
    nz = 22;
  }
  nx = Scaled(nx, scale);
  nz = Scaled(nz, scale);
  // Keep physical proportions: a 1 x 1 x 0.2 slab.
  const AABB domain(Vec3(0, 0, 0), Vec3(1, 1, 0.2f));
  return GenerateBoxMesh(nx, nx, nz, domain);
}

Result<TetraMesh> MakeAnimationMesh(AnimationDataset which, double scale) {
  const AABB domain(Vec3(0, 0, 0), Vec3(1, 1, 1));
  ImplicitSolid solid;
  int n = 0;
  switch (which) {
    case AnimationDataset::kHorseGallop:
      // Elongated capsule body.
      solid.AddTube(Vec3(0.15f, 0.5f, 0.5f), Vec3(0.85f, 0.5f, 0.5f), 0.18f);
      n = 64;
      break;
    case AnimationDataset::kFacialExpression:
      // One large ball: the lowest surface-to-volume ratio of the three.
      solid.AddBall(Vec3(0.5f, 0.5f, 0.5f), 0.40f);
      n = 90;
      break;
    case AnimationDataset::kCamelCompress:
      solid.AddEllipsoid(Vec3(0.5f, 0.5f, 0.5f), Vec3(0.35f, 0.28f, 0.24f));
      n = 84;
      break;
  }
  n = Scaled(n, scale);
  return GenerateMaskedGrid(n, n, n, domain, solid.MakeMask(n, n, n, domain));
}

int AnimationTimeSteps(AnimationDataset which) {
  switch (which) {
    case AnimationDataset::kHorseGallop:
      return 48;
    case AnimationDataset::kFacialExpression:
      return 9;
    case AnimationDataset::kCamelCompress:
      return 53;
  }
  return 0;
}

std::string NeuroMeshName(int level) {
  return "neuro-L" + std::to_string(level);
}

std::string EarthquakeMeshName(EarthquakeResolution res) {
  return res == EarthquakeResolution::kSF2 ? "SF2" : "SF1";
}

std::string AnimationMeshName(AnimationDataset which) {
  switch (which) {
    case AnimationDataset::kHorseGallop:
      return "Horse Gallop";
    case AnimationDataset::kFacialExpression:
      return "Facial Expression";
    case AnimationDataset::kCamelCompress:
      return "Camel Compress";
  }
  return "?";
}

}  // namespace octopus
