// Copyright 2026 The OCTOPUS Reproduction Authors
// Implicit shape predicates composed into cell masks for the grid generator:
// balls, ellipsoids, capsules, and branching neuron skeletons.
#ifndef OCTOPUS_MESH_GENERATORS_SHAPES_H_
#define OCTOPUS_MESH_GENERATORS_SHAPES_H_

#include <vector>

#include "common/rng.h"
#include "common/vec3.h"
#include "mesh/generators/grid_generator.h"

namespace octopus {

/// \brief A thick line segment (tube of radius `radius` around [a, b]).
struct TubeSegment {
  Vec3 a;
  Vec3 b;
  float radius;
};

/// Squared distance from point `p` to segment [a, b].
float SquaredDistanceToSegment(const Vec3& p, const Vec3& a, const Vec3& b);

/// \brief Implicit solid described as a union of balls and tube segments.
///
/// `Contains` is evaluated at cell centers by `MakeMask`, so the meshed
/// region is the voxelization of the implicit solid.
class ImplicitSolid {
 public:
  void AddBall(const Vec3& center, float radius) {
    balls_.push_back({center, center, radius});
  }
  void AddEllipsoid(const Vec3& center, const Vec3& radii) {
    ellipsoids_.push_back({center, radii});
  }
  void AddTube(const Vec3& a, const Vec3& b, float radius) {
    tubes_.push_back({a, b, radius});
  }

  bool Contains(const Vec3& p) const;

  /// Cell mask evaluating `Contains` at cell centers of an
  /// `nx * ny * nz` grid over `domain`.
  CellMask MakeMask(int nx, int ny, int nz, const AABB& domain) const;

  bool Empty() const {
    return balls_.empty() && ellipsoids_.empty() && tubes_.empty();
  }

 private:
  struct Ellipsoid {
    Vec3 center;
    Vec3 radii;
  };
  std::vector<TubeSegment> balls_;  // a == b degenerate tubes
  std::vector<Ellipsoid> ellipsoids_;
  std::vector<TubeSegment> tubes_;
};

/// \brief Parameters for a procedurally grown neuron cell.
///
/// A soma ball plus a recursively branching dendritic tree of tube
/// segments. The resulting solid is strongly non-convex, mirroring the
/// neuron meshes of the paper's motivating Blue Brain use case
/// (Fig. 1(c)).
struct NeuronCellParams {
  Vec3 soma_center{0.5f, 0.5f, 0.5f};
  float soma_radius = 0.22f;
  int num_dendrites = 6;       ///< trunks leaving the soma
  int branch_depth = 2;        ///< binary branching levels per trunk
  float trunk_length = 0.22f;  ///< length of first segment
  float tube_radius = 0.035f;  ///< dendrite thickness
  /// Hard cap on how far any dendrite point may lie from the soma center.
  /// Keeps separately placed cells disjoint (two-cell datasets).
  float max_extent = 0.26f;
  uint64_t seed = 1;
};

/// Grows one neuron cell into `solid`.
void GrowNeuronCell(const NeuronCellParams& params, ImplicitSolid* solid);

}  // namespace octopus

#endif  // OCTOPUS_MESH_GENERATORS_SHAPES_H_
