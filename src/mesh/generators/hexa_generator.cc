// Copyright 2026 The OCTOPUS Reproduction Authors
#include "mesh/generators/hexa_generator.h"

#include <unordered_map>

namespace octopus {

Result<HexaMesh> GenerateMaskedHexGrid(int nx, int ny, int nz,
                                       const AABB& domain,
                                       const CellMask& mask) {
  if (nx < 1 || ny < 1 || nz < 1) {
    return Status::InvalidArgument("grid resolution must be >= 1 per axis");
  }
  if (domain.Empty()) {
    return Status::InvalidArgument("domain box is empty");
  }
  const Vec3 ext = domain.Extent();
  const Vec3 cell(ext.x / nx, ext.y / ny, ext.z / nz);

  std::vector<Vec3> positions;
  std::vector<HexCell> cells;
  // Lattice point -> vertex id, shared between adjacent cells.
  std::unordered_map<uint64_t, VertexId> lattice;
  auto key = [](int i, int j, int k) {
    const uint64_t bias = 1u << 20;
    return ((static_cast<uint64_t>(i) + bias) << 42) |
           ((static_cast<uint64_t>(j) + bias) << 21) |
           (static_cast<uint64_t>(k) + bias);
  };

  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        if (!mask(i, j, k)) continue;
        HexCell hex;
        for (int c = 0; c < 8; ++c) {
          const int ci = i + (c & 1);
          const int cj = j + ((c >> 1) & 1);
          const int ck = k + ((c >> 2) & 1);
          auto [it, inserted] =
              lattice.try_emplace(key(ci, cj, ck), kInvalidVertex);
          if (inserted) {
            it->second = static_cast<VertexId>(positions.size());
            positions.push_back(Vec3(domain.min.x + ci * cell.x,
                                     domain.min.y + cj * cell.y,
                                     domain.min.z + ck * cell.z));
          }
          hex[c] = it->second;
        }
        cells.push_back(hex);
      }
    }
  }
  if (cells.empty()) {
    return Status::InvalidArgument("mask selects no cells");
  }
  return HexaMesh(std::move(positions), std::move(cells));
}

Result<HexaMesh> GenerateHexBoxMesh(int nx, int ny, int nz,
                                    const AABB& domain) {
  return GenerateMaskedHexGrid(nx, ny, nz, domain,
                               [](int, int, int) { return true; });
}

}  // namespace octopus
