// Copyright 2026 The OCTOPUS Reproduction Authors
// Hexahedral counterpart of the voxel-mask generator: each active grid
// cell becomes a single 8-corner hexahedron (no subdivision).
#ifndef OCTOPUS_MESH_GENERATORS_HEXA_GENERATOR_H_
#define OCTOPUS_MESH_GENERATORS_HEXA_GENERATOR_H_

#include "common/status.h"
#include "mesh/generators/grid_generator.h"
#include "mesh/hexa_mesh.h"

namespace octopus {

/// \brief Generates a hexahedral mesh over the cells selected by `mask`.
Result<HexaMesh> GenerateMaskedHexGrid(int nx, int ny, int nz,
                                       const AABB& domain,
                                       const CellMask& mask);

/// Convex hexahedral box mesh over the full grid.
Result<HexaMesh> GenerateHexBoxMesh(int nx, int ny, int nz,
                                    const AABB& domain);

}  // namespace octopus

#endif  // OCTOPUS_MESH_GENERATORS_HEXA_GENERATOR_H_
