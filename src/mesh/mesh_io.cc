// Copyright 2026 The OCTOPUS Reproduction Authors
#include "mesh/mesh_io.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "mesh/hilbert_layout.h"
#include "mesh/surface.h"
#include "storage/file_util.h"

namespace octopus {

namespace {

constexpr char kMagic[4] = {'O', 'C', 'T', '1'};

using storage::FilePtr;

}  // namespace

Status SaveMesh(const TetraMesh& mesh, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open for write: " + path);

  const uint64_t v_count = mesh.num_vertices();
  const uint64_t t_count = mesh.num_tetrahedra();
  auto write = [&f](const void* data, size_t bytes) {
    return std::fwrite(data, 1, bytes, f.get()) == bytes;
  };
  if (!write(kMagic, sizeof(kMagic)) || !write(&v_count, sizeof(v_count)) ||
      !write(&t_count, sizeof(t_count)) ||
      !write(mesh.positions().data(), v_count * sizeof(Vec3)) ||
      !write(mesh.tetrahedra().data(), t_count * sizeof(Tet))) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

Result<TetraMesh> LoadMesh(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for read: " + path);

  auto read = [&f](void* data, size_t bytes) {
    return std::fread(data, 1, bytes, f.get()) == bytes;
  };
  char magic[4];
  uint64_t v_count = 0;
  uint64_t t_count = 0;
  if (!read(magic, sizeof(magic)) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!read(&v_count, sizeof(v_count)) || !read(&t_count, sizeof(t_count))) {
    return Status::Corruption("truncated header in " + path);
  }
  // Guard against absurd headers before allocating.
  constexpr uint64_t kMaxCount = 1ull << 33;
  if (v_count == 0 || v_count > kMaxCount || t_count > kMaxCount) {
    return Status::Corruption("implausible mesh sizes in " + path);
  }
  std::vector<Vec3> positions(v_count);
  std::vector<Tet> tets(t_count);
  if (!read(positions.data(), v_count * sizeof(Vec3)) ||
      !read(tets.data(), t_count * sizeof(Tet))) {
    return Status::Corruption("truncated body in " + path);
  }
  for (size_t i = 0; i < tets.size(); ++i) {
    for (VertexId v : tets[i]) {
      if (v >= v_count) {
        return Status::Corruption("tet " + std::to_string(i) +
                                  " references out-of-range vertex in " +
                                  path);
      }
    }
  }
  return TetraMesh(std::move(positions), std::move(tets));
}

Status SaveSnapshot(const TetraMesh& mesh, const std::string& path,
                    const storage::SnapshotOptions& options) {
  const TetraMesh* source = &mesh;
  TetraMesh permuted;
  if (options.layout == storage::SnapshotLayout::kHilbert) {
    permuted = ApplyPermutation(mesh, ComputeHilbertOrder(mesh));
    source = &permuted;
  }
  const SurfaceInfo surface = ExtractSurface(*source);
  const MeshGraphView graph = source->Graph();
  return storage::WriteSnapshot(graph.positions, graph.adj_offsets,
                                graph.adj, surface.surface_vertices,
                                source->num_tetrahedra(), options.layout,
                                options.page_bytes, path);
}

Status ConvertMeshToSnapshot(const std::string& mesh_path,
                             const std::string& snapshot_path,
                             const storage::SnapshotOptions& options) {
  Result<TetraMesh> mesh = LoadMesh(mesh_path);
  if (!mesh.ok()) return mesh.status();
  return SaveSnapshot(mesh.Value(), snapshot_path, options);
}

}  // namespace octopus
