// Copyright 2026 The OCTOPUS Reproduction Authors
// Wavefront OBJ export of mesh surfaces and query results, for the
// visualization monitoring use case (paper Sec. III-B): dump the current
// state of (a part of) the deforming mesh so any 3D viewer can render it.
#ifndef OCTOPUS_MESH_EXPORT_OBJ_H_
#define OCTOPUS_MESH_EXPORT_OBJ_H_

#include <span>
#include <string>

#include "common/status.h"
#include "mesh/tetra_mesh.h"

namespace octopus {

/// Writes the mesh surface (triangles) as an OBJ file. Vertices are
/// written with their *current* positions, so calling this between
/// simulation steps snapshots the deformation.
Status ExportSurfaceObj(const TetraMesh& mesh, const std::string& path);

/// Writes the given vertices as an OBJ point cloud (`v` records plus `p`
/// point elements) — the typical dump of a range-query result.
Status ExportPointsObj(const TetraMesh& mesh,
                       std::span<const VertexId> vertices,
                       const std::string& path);

}  // namespace octopus

#endif  // OCTOPUS_MESH_EXPORT_OBJ_H_
