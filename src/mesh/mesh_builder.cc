// Copyright 2026 The OCTOPUS Reproduction Authors
#include "mesh/mesh_builder.h"

#include <string>

namespace octopus {

void MeshBuilder::Reserve(size_t vertices, size_t tets) {
  positions_.reserve(vertices);
  tets_.reserve(tets);
}

VertexId MeshBuilder::AddVertex(const Vec3& p) {
  positions_.push_back(p);
  return static_cast<VertexId>(positions_.size() - 1);
}

void MeshBuilder::AddTet(VertexId a, VertexId b, VertexId c, VertexId d) {
  tets_.push_back(Tet{a, b, c, d});
}

Result<TetraMesh> MeshBuilder::Build() {
  const size_t v_count = positions_.size();
  if (v_count == 0) {
    return Status::InvalidArgument("mesh has no vertices");
  }
  std::vector<bool> used(v_count, false);
  for (size_t i = 0; i < tets_.size(); ++i) {
    const Tet& t = tets_[i];
    for (VertexId v : t) {
      if (v >= v_count) {
        return Status::InvalidArgument("tet " + std::to_string(i) +
                                       " references vertex " +
                                       std::to_string(v) + " out of range");
      }
      used[v] = true;
    }
    if (t[0] == t[1] || t[0] == t[2] || t[0] == t[3] || t[1] == t[2] ||
        t[1] == t[3] || t[2] == t[3]) {
      return Status::InvalidArgument("tet " + std::to_string(i) +
                                     " is degenerate (repeated vertex)");
    }
  }
  for (size_t v = 0; v < v_count; ++v) {
    if (!used[v]) {
      return Status::InvalidArgument(
          "vertex " + std::to_string(v) +
          " is orphaned (not referenced by any tetrahedron)");
    }
  }
  TetraMesh mesh(std::move(positions_), std::move(tets_));
  positions_ = {};
  tets_ = {};
  return mesh;
}

VertexId LatticeVertexMap::GetOrCreate(int32_t i, int32_t j, int32_t k,
                                       const Vec3& position) {
  const uint64_t key = Key(i, j, k);
  auto [it, inserted] = map_.try_emplace(key, kInvalidVertex);
  if (inserted) {
    it->second = builder_->AddVertex(position);
  }
  return it->second;
}

}  // namespace octopus
