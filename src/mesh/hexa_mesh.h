// Copyright 2026 The OCTOPUS Reproduction Authors
// Hexahedral simulation meshes (paper Fig. 1(b)): OCTOPUS works on any
// polyhedral primitive because it only uses the vertex graph and the
// surface. This module provides the hexahedral counterpart of TetraMesh —
// 8-corner cells, 12 edges per cell, quadrilateral faces.
#ifndef OCTOPUS_MESH_HEXA_MESH_H_
#define OCTOPUS_MESH_HEXA_MESH_H_

#include <array>
#include <vector>

#include "common/aabb.h"
#include "common/vec3.h"
#include "mesh/graph_view.h"
#include "mesh/types.h"

namespace octopus {

/// A hexahedral cell: corner c sits at lattice offset
/// (c & 1, (c >> 1) & 1, (c >> 2) & 1) — the same bit convention as the
/// Kuhn cube corners in the tetrahedral generator.
using HexCell = std::array<VertexId, 8>;

/// A quadrilateral face as its four corner ids in ascending order (the
/// canonical key; a face is shared by at most two cells).
using QuadKey = std::array<VertexId, 4>;

/// Canonicalizes four vertex ids into a QuadKey.
QuadKey MakeQuadKey(VertexId a, VertexId b, VertexId c, VertexId d);

struct QuadKeyHash {
  size_t operator()(const QuadKey& f) const {
    uint64_t h = 0x9E3779B97F4A7C15ull;
    for (VertexId v : f) {
      uint64_t x = v;
      x *= 0xFF51AFD7ED558CCDull;
      x ^= x >> 33;
      h = (h ^ x) * 0xC4CEB9FE1A85EC53ull;
    }
    return static_cast<size_t>(h ^ (h >> 29));
  }
};

/// The six quad faces of a hex cell, canonicalized.
std::array<QuadKey, 6> HexFaces(const HexCell& cell);

/// \brief Hexahedral mesh: SoA positions + CSR vertex adjacency + cells.
///
/// The adjacency graph contains the 12 cell edges per hexahedron (corner
/// pairs differing in exactly one lattice bit); an interior lattice
/// vertex therefore has degree 6.
class HexaMesh {
 public:
  HexaMesh() = default;
  HexaMesh(std::vector<Vec3> positions, std::vector<HexCell> cells);

  size_t num_vertices() const { return positions_.size(); }
  size_t num_cells() const { return cells_.size(); }
  size_t num_edges() const { return adj_.size() / 2; }

  const Vec3& position(VertexId v) const { return positions_[v]; }
  const std::vector<Vec3>& positions() const { return positions_; }
  /// Mutable access for deformers (in-place simulation updates).
  std::vector<Vec3>& mutable_positions() { return positions_; }

  const std::vector<HexCell>& cells() const { return cells_; }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {adj_.data() + adj_offsets_[v],
            adj_.data() + adj_offsets_[v + 1]};
  }
  size_t degree(VertexId v) const {
    return adj_offsets_[v + 1] - adj_offsets_[v];
  }

  /// Primitive-agnostic view consumed by the crawler and directed walk.
  MeshGraphView Graph() const {
    return MeshGraphView{positions_, adj_offsets_, adj_};
  }

  AABB ComputeBounds() const;
  double AverageDegree() const;
  size_t MemoryBytes() const;

 private:
  std::vector<Vec3> positions_;
  std::vector<uint32_t> adj_offsets_;
  std::vector<VertexId> adj_;
  std::vector<HexCell> cells_;
};

/// \brief Surface of a hexahedral mesh: quad faces contained in exactly
/// one cell, and the vertices on them.
struct HexSurfaceInfo {
  std::vector<VertexId> surface_vertices;  // sorted, unique
  std::vector<QuadKey> surface_faces;
};

/// Extracts the surface via the global (quad) face list — the hexahedral
/// analog of `ExtractSurface` (paper Sec. IV-E1).
HexSurfaceInfo ExtractHexSurface(const HexaMesh& mesh);

}  // namespace octopus

#endif  // OCTOPUS_MESH_HEXA_MESH_H_
