// Copyright 2026 The OCTOPUS Reproduction Authors
#include "mesh/attributes.h"

namespace octopus {

Status VertexAttributes::AddColumn(std::string_view name, float initial) {
  std::string key(name);
  if (index_.find(key) != index_.end()) {
    return Status::InvalidArgument("duplicate attribute column: " + key);
  }
  index_.emplace(key, columns_.size());
  ColumnData column;
  column.name = std::move(key);
  column.initial = initial;
  column.values.assign(num_vertices_, initial);
  columns_.push_back(std::move(column));
  return Status::OK();
}

std::span<float> VertexAttributes::Column(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return {};
  return columns_[it->second].values;
}

std::span<const float> VertexAttributes::Column(
    std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return {};
  return columns_[it->second].values;
}

Status VertexAttributes::Gather(std::string_view name,
                                std::span<const VertexId> vertices,
                                std::vector<float>* out) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return Status::NotFound("no attribute column named " +
                            std::string(name));
  }
  const std::vector<float>& values = columns_[it->second].values;
  out->clear();
  out->reserve(vertices.size());
  for (VertexId v : vertices) {
    if (v >= values.size()) {
      return Status::InvalidArgument("vertex id out of range in gather");
    }
    out->push_back(values[v]);
  }
  return Status::OK();
}

Result<double> VertexAttributes::Mean(
    std::string_view name, std::span<const VertexId> vertices) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return Status::NotFound("no attribute column named " +
                            std::string(name));
  }
  if (vertices.empty()) {
    return Status::InvalidArgument("mean over empty vertex set");
  }
  const std::vector<float>& values = columns_[it->second].values;
  double total = 0.0;
  for (VertexId v : vertices) {
    if (v >= values.size()) {
      return Status::InvalidArgument("vertex id out of range in mean");
    }
    total += values[v];
  }
  return total / static_cast<double>(vertices.size());
}

void VertexAttributes::Resize(size_t num_vertices) {
  num_vertices_ = num_vertices;
  for (ColumnData& column : columns_) {
    column.values.resize(num_vertices, column.initial);
  }
}

size_t VertexAttributes::FootprintBytes() const {
  size_t bytes = 0;
  for (const ColumnData& column : columns_) {
    bytes += column.values.capacity() * sizeof(float);
  }
  return bytes;
}

}  // namespace octopus
