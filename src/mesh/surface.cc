// Copyright 2026 The OCTOPUS Reproduction Authors
#include "mesh/surface.h"

#include <algorithm>
#include <cassert>

namespace octopus {

SurfaceInfo ExtractSurface(const TetraMesh& mesh) {
  // Global face list as a multiplicity map. A face is shared by at most two
  // adjacent tets, so values saturate at 2.
  std::unordered_map<FaceKey, uint8_t, FaceKeyHash> counts;
  counts.reserve(mesh.num_tetrahedra() * 2);  // ~2 unique faces per tet
  for (const Tet& t : mesh.tetrahedra()) {
    for (const FaceKey& f : TetFaces(t)) {
      ++counts[f];
    }
  }

  SurfaceInfo info;
  std::vector<bool> on_surface(mesh.num_vertices(), false);
  for (const auto& [face, count] : counts) {
    if (count == 1) {
      info.surface_faces.push_back(face);
      for (VertexId v : face) on_surface[v] = true;
    }
  }
  for (VertexId v = 0; v < mesh.num_vertices(); ++v) {
    if (on_surface[v]) info.surface_vertices.push_back(v);
  }
  // Canonical face order so extraction output is deterministic for tests.
  std::sort(info.surface_faces.begin(), info.surface_faces.end());
  return info;
}

void FaceRegistry::Build(const TetraMesh& mesh) {
  face_count_.clear();
  surface_face_count_.clear();
  face_count_.reserve(mesh.num_tetrahedra() * 2);
  for (const Tet& t : mesh.tetrahedra()) {
    for (const FaceKey& f : TetFaces(t)) {
      ++face_count_[f];
    }
  }
  for (const auto& [face, count] : face_count_) {
    if (count == 1) {
      for (VertexId v : face) ++surface_face_count_[v];
    }
  }
}

size_t FaceRegistry::num_surface_vertices() const {
  size_t n = 0;
  for (const auto& [v, c] : surface_face_count_) {
    if (c > 0) ++n;
  }
  return n;
}

size_t FaceRegistry::FootprintBytes() const {
  // Approximation: hash-node overhead of ~2 pointers per entry.
  const size_t face_entry = sizeof(FaceKey) + sizeof(uint8_t) + 16;
  const size_t vert_entry = sizeof(VertexId) + sizeof(uint32_t) + 16;
  return face_count_.size() * face_entry +
         surface_face_count_.size() * vert_entry;
}

void FaceRegistry::ChangeVertexSurfaceCount(
    VertexId v, int delta,
    std::unordered_map<VertexId, bool>* initial_membership) {
  // Record membership as it was before the first touch within this delta,
  // so transitions can be emitted against the true pre-delta state.
  auto it = surface_face_count_.find(v);
  const uint32_t old_count = it == surface_face_count_.end() ? 0 : it->second;
  initial_membership->try_emplace(v, old_count > 0);
  assert(delta > 0 || old_count >= static_cast<uint32_t>(-delta));
  const uint32_t new_count = old_count + delta;
  if (new_count == 0) {
    if (it != surface_face_count_.end()) surface_face_count_.erase(it);
  } else if (it != surface_face_count_.end()) {
    it->second = new_count;
  } else {
    surface_face_count_.emplace(v, new_count);
  }
}

void FaceRegistry::ChangeFace(
    const FaceKey& face, int delta,
    std::unordered_map<VertexId, bool>* initial_membership) {
  uint8_t& count = face_count_[face];
  const bool was_surface = count == 1;
  assert(delta > 0 || count >= static_cast<uint8_t>(-delta));
  count = static_cast<uint8_t>(count + delta);
  assert(count <= 2 && "face shared by more than two tetrahedra");
  const bool is_surface = count == 1;
  if (was_surface && !is_surface) {
    for (VertexId v : face) {
      ChangeVertexSurfaceCount(v, -1, initial_membership);
    }
  } else if (!was_surface && is_surface) {
    for (VertexId v : face) {
      ChangeVertexSurfaceCount(v, +1, initial_membership);
    }
  }
  if (count == 0) face_count_.erase(face);
}

void FaceRegistry::ApplyDelta(const RestructureDelta& delta,
                              std::vector<VertexTransition>* transitions) {
  std::unordered_map<VertexId, bool> initial_membership;
  for (const Tet& t : delta.removed_tets) {
    for (const FaceKey& f : TetFaces(t)) {
      ChangeFace(f, -1, &initial_membership);
    }
  }
  for (const Tet& t : delta.added_tets) {
    for (const FaceKey& f : TetFaces(t)) {
      ChangeFace(f, +1, &initial_membership);
    }
  }
  if (transitions != nullptr) {
    for (const auto& [v, was_on_surface] : initial_membership) {
      const bool now = IsSurfaceVertex(v);
      if (now != was_on_surface) transitions->push_back({v, now});
    }
  }
}

}  // namespace octopus
