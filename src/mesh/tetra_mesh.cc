// Copyright 2026 The OCTOPUS Reproduction Authors
#include "mesh/tetra_mesh.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace octopus {

namespace {

// Canonical form of a tet for identity comparison (corner order ignored).
Tet SortedTet(Tet t) {
  std::sort(t.begin(), t.end());
  return t;
}

struct TetHash {
  size_t operator()(const Tet& t) const {
    uint64_t h = 0x2545F4914F6CDD1Dull;
    for (VertexId v : t) {
      h ^= v;
      h *= 0x100000001B3ull;
      h ^= h >> 31;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace

TetraMesh::TetraMesh(std::vector<Vec3> positions, std::vector<Tet> tets)
    : positions_(std::move(positions)), tets_(std::move(tets)) {
  RebuildAdjacency();
  RebuildTetCounts();
}

void TetraMesh::RebuildAdjacency() {
  const size_t v_count = positions_.size();
  // Pass 1: count the (undirected) edge endpoints contributed by each tet.
  // Each tet has 6 edges; each edge contributes one neighbor entry to each
  // endpoint. Duplicates across tets are removed in pass 3.
  std::vector<uint32_t> counts(v_count + 1, 0);
  static constexpr int kEdges[6][2] = {{0, 1}, {0, 2}, {0, 3},
                                       {1, 2}, {1, 3}, {2, 3}};
  for (const Tet& t : tets_) {
    for (const auto& e : kEdges) {
      ++counts[t[e[0]] + 1];
      ++counts[t[e[1]] + 1];
    }
  }
  std::vector<uint32_t> offsets(v_count + 1, 0);
  for (size_t i = 1; i <= v_count; ++i) offsets[i] = offsets[i - 1] + counts[i];

  // Pass 2: scatter neighbor ids (with duplicates).
  std::vector<VertexId> adj(offsets[v_count]);
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Tet& t : tets_) {
    for (const auto& e : kEdges) {
      const VertexId a = t[e[0]];
      const VertexId b = t[e[1]];
      adj[cursor[a]++] = b;
      adj[cursor[b]++] = a;
    }
  }

  // Pass 3: sort + unique each vertex's list, compact into final CSR.
  adj_offsets_.assign(v_count + 1, 0);
  adj_.clear();
  adj_.reserve(adj.size() / 2);
  for (size_t v = 0; v < v_count; ++v) {
    auto begin = adj.begin() + offsets[v];
    auto end = adj.begin() + offsets[v + 1];
    std::sort(begin, end);
    auto last = std::unique(begin, end);
    adj_offsets_[v] = static_cast<uint32_t>(adj_.size());
    adj_.insert(adj_.end(), begin, last);
  }
  adj_offsets_[v_count] = static_cast<uint32_t>(adj_.size());
  adj_.shrink_to_fit();
}

void TetraMesh::RebuildTetCounts() {
  tet_count_.assign(positions_.size(), 0);
  for (const Tet& t : tets_) {
    for (VertexId v : t) ++tet_count_[v];
  }
}

AABB TetraMesh::ComputeBounds() const {
  AABB box;
  for (const Vec3& p : positions_) box.Extend(p);
  return box;
}

double TetraMesh::AverageDegree() const {
  if (positions_.empty()) return 0.0;
  return static_cast<double>(adj_.size()) /
         static_cast<double>(positions_.size());
}

size_t TetraMesh::MemoryBytes() const {
  return positions_.capacity() * sizeof(Vec3) +
         adj_offsets_.capacity() * sizeof(uint32_t) +
         adj_.capacity() * sizeof(VertexId) + tets_.capacity() * sizeof(Tet) +
         tet_count_.capacity() * sizeof(uint32_t);
}

VertexId TetraMesh::AddVertexForRestructure(const Vec3& p) {
  positions_.push_back(p);
  tet_count_.push_back(0);
  return static_cast<VertexId>(positions_.size() - 1);
}

bool TetraMesh::ApplyRestructure(const RestructureDelta& delta) {
  if (delta.removed_tets.empty() && delta.added_tets.empty()) return true;

  // Index existing tets by canonical corner set for removal lookup.
  std::unordered_map<Tet, TetId, TetHash> by_corners;
  by_corners.reserve(tets_.size());
  for (TetId i = 0; i < tets_.size(); ++i) {
    by_corners.emplace(SortedTet(tets_[i]), i);
  }

  // Validate first: every removal must exist, and no vertex may be orphaned
  // by the net effect of the batch.
  std::vector<TetId> to_remove;
  to_remove.reserve(delta.removed_tets.size());
  std::unordered_map<VertexId, int32_t> count_change;
  for (const Tet& t : delta.removed_tets) {
    auto it = by_corners.find(SortedTet(t));
    if (it == by_corners.end()) return false;
    to_remove.push_back(it->second);
    by_corners.erase(it);  // also rejects duplicate removals
    for (VertexId v : t) --count_change[v];
  }
  for (const Tet& t : delta.added_tets) {
    for (VertexId v : t) {
      if (v >= positions_.size()) return false;
      ++count_change[v];
    }
  }
  for (const auto& [v, change] : count_change) {
    if (static_cast<int64_t>(tet_count_[v]) + change <= 0) {
      // Newly added vertices must gain incidence; existing ones must keep it.
      return false;
    }
  }

  // Apply removals back-to-front via swap-and-pop.
  std::sort(to_remove.begin(), to_remove.end(), std::greater<TetId>());
  for (TetId id : to_remove) {
    tets_[id] = tets_.back();
    tets_.pop_back();
  }
  tets_.insert(tets_.end(), delta.added_tets.begin(), delta.added_tets.end());

  RebuildAdjacency();
  RebuildTetCounts();
  return true;
}

}  // namespace octopus
