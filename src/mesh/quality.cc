// Copyright 2026 The OCTOPUS Reproduction Authors
#include "mesh/quality.h"

#include <cmath>
#include <unordered_set>

namespace octopus {

double SignedTetVolume(const Vec3& a, const Vec3& b, const Vec3& c,
                       const Vec3& d) {
  const Vec3 ab = b - a;
  const Vec3 ac = c - a;
  const Vec3 ad = d - a;
  return static_cast<double>(ab.Cross(ac).Dot(ad)) / 6.0;
}

double SignedTetVolume(const TetraMesh& mesh, const Tet& t) {
  return SignedTetVolume(mesh.position(t[0]), mesh.position(t[1]),
                         mesh.position(t[2]), mesh.position(t[3]));
}

QualityChecker::QualityChecker(const TetraMesh& mesh) {
  reference_sign_.reserve(mesh.num_tetrahedra());
  double total = 0.0;
  for (const Tet& t : mesh.tetrahedra()) {
    const double v = SignedTetVolume(mesh, t);
    reference_sign_.push_back(v >= 0.0 ? 1 : -1);
    total += std::abs(v);
  }
  reference_mean_abs_volume_ =
      mesh.num_tetrahedra() == 0
          ? 0.0
          : total / static_cast<double>(mesh.num_tetrahedra());
}

namespace {

void Accumulate(const TetraMesh& mesh, TetId id, int8_t reference_sign,
                double degenerate_threshold, QualityReport* report) {
  const double v = SignedTetVolume(mesh, mesh.tetrahedra()[id]);
  const double abs_v = std::abs(v);
  ++report->tets_checked;
  if ((v >= 0.0 ? 1 : -1) != reference_sign) ++report->inverted;
  if (abs_v < degenerate_threshold) ++report->degenerate;
  report->mean_abs_volume += abs_v;
  if (report->tets_checked == 1 || abs_v < report->min_abs_volume) {
    report->min_abs_volume = abs_v;
  }
}

}  // namespace

QualityReport QualityChecker::Check(const TetraMesh& mesh,
                                    double degenerate_fraction) const {
  QualityReport report;
  const double threshold =
      degenerate_fraction * reference_mean_abs_volume_;
  for (TetId id = 0; id < mesh.num_tetrahedra() &&
                     id < reference_sign_.size();
       ++id) {
    Accumulate(mesh, id, reference_sign_[id], threshold, &report);
  }
  if (report.tets_checked > 0) {
    report.mean_abs_volume /= static_cast<double>(report.tets_checked);
  }
  return report;
}

QualityReport QualityChecker::CheckTets(const TetraMesh& mesh,
                                        std::span<const TetId> ids,
                                        double degenerate_fraction) const {
  QualityReport report;
  const double threshold =
      degenerate_fraction * reference_mean_abs_volume_;
  for (TetId id : ids) {
    if (id >= mesh.num_tetrahedra() || id >= reference_sign_.size()) {
      continue;
    }
    Accumulate(mesh, id, reference_sign_[id], threshold, &report);
  }
  if (report.tets_checked > 0) {
    report.mean_abs_volume /= static_cast<double>(report.tets_checked);
  }
  return report;
}

std::vector<TetId> TetsTouchingVertices(
    const TetraMesh& mesh, std::span<const VertexId> vertices) {
  std::unordered_set<VertexId> wanted(vertices.begin(), vertices.end());
  std::vector<TetId> result;
  const auto& tets = mesh.tetrahedra();
  for (TetId id = 0; id < tets.size(); ++id) {
    for (VertexId v : tets[id]) {
      if (wanted.count(v) != 0) {
        result.push_back(id);
        break;
      }
    }
  }
  return result;
}

}  // namespace octopus
