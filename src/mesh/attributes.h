// Copyright 2026 The OCTOPUS Reproduction Authors
// Per-vertex simulation attributes. In the paper's 33 GB dataset, 79%
// is mesh structure and the remaining 21% holds "identifiers and
// attributes of nodes used in the simulation"; monitoring tools retrieve
// those attributes for the vertices a range query returns (structural
// validation computes statistics over them). This module provides that
// payload as named SoA columns.
#ifndef OCTOPUS_MESH_ATTRIBUTES_H_
#define OCTOPUS_MESH_ATTRIBUTES_H_

#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "mesh/types.h"

namespace octopus {

/// \brief Named float columns, one value per vertex (struct-of-arrays).
///
/// Columns are independent of positions: deformation does not touch them;
/// the simulation may overwrite them in place like positions.
class VertexAttributes {
 public:
  explicit VertexAttributes(size_t num_vertices = 0)
      : num_vertices_(num_vertices) {}

  size_t num_vertices() const { return num_vertices_; }
  size_t num_columns() const { return columns_.size(); }

  /// Adds a column filled with `initial`; fails on duplicate names.
  Status AddColumn(std::string_view name, float initial = 0.0f);

  bool HasColumn(std::string_view name) const {
    return index_.find(std::string(name)) != index_.end();
  }

  /// Mutable column data; nullptr if absent.
  std::span<float> Column(std::string_view name);
  std::span<const float> Column(std::string_view name) const;

  /// Gathers `column[v]` for every v in `vertices` into `out` (the
  /// monitoring-side "retrieve parts of the mesh" step after a range
  /// query). Fails if the column is missing or an id is out of range.
  Status Gather(std::string_view name, std::span<const VertexId> vertices,
                std::vector<float>* out) const;

  /// Mean of `column` over `vertices` (a structural-validation statistic).
  Result<double> Mean(std::string_view name,
                      std::span<const VertexId> vertices) const;

  /// Grows all columns to `num_vertices` (restructuring adds vertices);
  /// new slots get the column's registered initial value.
  void Resize(size_t num_vertices);

  size_t FootprintBytes() const;

 private:
  struct ColumnData {
    std::string name;
    float initial;
    std::vector<float> values;
  };

  size_t num_vertices_;
  std::vector<ColumnData> columns_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace octopus

#endif  // OCTOPUS_MESH_ATTRIBUTES_H_
