// Copyright 2026 The OCTOPUS Reproduction Authors
#include "harness/bench_harness.h"

#include <cstdlib>

#include "common/rng.h"
#include "common/timer.h"
#include "index/linear_scan.h"
#include "index/lur_tree.h"
#include "index/octree.h"
#include "index/qu_trade.h"
#include "octopus/query_executor.h"
#include "sim/plasticity_deformer.h"
#include "sim/simulation.h"
#include "sim/workload.h"

namespace octopus::bench {

double ScaleFromEnv() {
  const char* s = std::getenv("OCTOPUS_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0.0 ? v : 1.0;
}

int StepsFromEnv(int fallback) {
  const char* s = std::getenv("OCTOPUS_BENCH_STEPS");
  if (s == nullptr) return fallback;
  const int v = std::atoi(s);
  return v > 0 ? v : fallback;
}

int ThreadsFromEnv(int fallback) {
  const char* s = std::getenv("OCTOPUS_BENCH_THREADS");
  if (s == nullptr) return fallback;
  const int v = std::atoi(s);
  return v > 0 ? v : fallback;
}

StepWorkload MakeStepWorkload(const TetraMesh& mesh, int steps, int qmin,
                              int qmax, double sel_min, double sel_max,
                              uint64_t seed) {
  QueryGenerator gen(mesh);
  Rng rng(seed);
  StepWorkload workload;
  workload.per_step.resize(steps);
  for (auto& step_queries : workload.per_step) {
    const int count =
        qmin + static_cast<int>(rng.NextBelow(qmax - qmin + 1));
    step_queries = gen.MakeQueries(&rng, count, sel_min, sel_max);
  }
  return workload;
}

RunResult RunApproach(SpatialIndex* index, const TetraMesh& base_mesh,
                      const DeformerFactory& make_deformer,
                      const StepWorkload& workload,
                      engine::QueryEngine* engine) {
  TetraMesh mesh = base_mesh;  // private copy: deformed in place below
  std::unique_ptr<Deformer> deformer = make_deformer();

  engine::QueryEngine sequential_engine;
  if (engine == nullptr) engine = &sequential_engine;

  RunResult result;
  Timer build_timer;
  index->Build(mesh);
  result.build_seconds = build_timer.ElapsedSeconds();

  Simulation sim(&mesh, deformer.get());
  engine::QueryBatchResult results;  // slots recycled across steps
  for (const auto& step_queries : workload.per_step) {
    sim.Step();  // SIMULATE phase (not part of query response time)

    Timer maintenance_timer;
    index->BeforeQueries(mesh);
    result.maintenance_seconds += maintenance_timer.ElapsedSeconds();

    Timer query_timer;
    engine->Execute(*index, mesh, step_queries, &results);
    result.query_seconds += query_timer.ElapsedSeconds();
    result.total_results += results.TotalResults();
  }
  result.footprint_bytes = index->FootprintBytes();
  return result;
}

std::vector<std::unique_ptr<SpatialIndex>> MakeAllApproaches() {
  std::vector<std::unique_ptr<SpatialIndex>> v;
  v.push_back(std::make_unique<Octopus>());
  v.push_back(std::make_unique<LinearScan>());
  v.push_back(std::make_unique<ThrowawayOctree>());
  v.push_back(std::make_unique<LURTree>());
  v.push_back(std::make_unique<QUTrade>());
  return v;
}

DeformerFactory NeuroDeformerFactory(const TetraMesh& mesh) {
  const float amplitude = 0.3f * EstimateMeanEdgeLength(mesh);
  return [amplitude]() {
    return std::make_unique<PlasticityDeformer>(amplitude);
  };
}

}  // namespace octopus::bench
